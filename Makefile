# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); keep them in sync.

GO ?= go

.PHONY: build test race lint fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's custom analyzer suite (see DESIGN.md "Enforced
# invariants"): ctxrelease, arenaescape, lockhold, metricnames,
# nakedgen. Exit 1 on any finding. Suppress a single accepted finding
# with `// xpqlint:ignore <analyzer> <reason>` on the flagged line.
lint:
	$(GO) run ./cmd/xpqlint ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

check: fmt vet build lint test
