// BenchmarkAutoSelector pins the cost contract of the observed-latency
// Auto selector (PR 7): the full paper-query matrix over three XMark
// sizes, each query evaluated through the Auto cursor path under two
// regimes —
//
//	static:   the paper's §5 count heuristic decides every time (the
//	          pre-PR-7 behavior, -auto-adaptive=false); the selector
//	          still measures so the bookkeeping cost is identical;
//	adaptive: the per-shape EWMA model decides, with the default
//	          epsilon-greedy exploration floor.
//
// Both variants are warmed past the probe phase before the timer
// starts, so the adaptive rows measure the steady state: a learned
// table lookup plus the same observe() both modes pay. BENCH_auto.json
// is seeded from this benchmark and CI gates the paired geomean of
// adaptive/static ns/op at ≤ 1.00 — learning from observed latency
// must pay for itself on the paper's own workload.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/qcache"
	"repro/internal/xmark"
)

// autoWarmup runs enough Auto evaluations to exhaust the probe phase of
// every eligible candidate and settle the EWMA estimates.
const autoWarmup = 12

func BenchmarkAutoSelector(b *testing.B) {
	for _, scale := range steadyScales {
		w := steadyWorkload(b, scale)
		for _, q := range xmark.Queries() {
			name := fmt.Sprintf("s=%g/%s", scale, q.ID)
			for _, mode := range []struct {
				name     string
				adaptive bool
			}{{"static", false}, {"adaptive", true}} {
				b.Run(name+"/"+mode.name, func(b *testing.B) {
					eng := core.NewWithIndex(w.Doc, w.Index, qcache.New(qcache.DefaultCapacity), "")
					eng.ConfigureAuto(core.AutoConfig{
						Adaptive: mode.adaptive,
						Epsilon:  core.DefaultAutoEpsilon,
					})
					for i := 0; i < autoWarmup; i++ {
						cur, err := eng.EvalCursor(q.XPath, core.Auto)
						if err != nil {
							b.Fatal(err)
						}
						_ = cur.Count()
						cur.Close()
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						cur, err := eng.EvalCursor(q.XPath, core.Auto)
						if err != nil {
							b.Fatal(err)
						}
						_ = cur.Count()
						cur.Close()
					}
				})
			}
		}
	}
}
