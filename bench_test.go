// Benchmarks regenerating the paper's tables and figures (testing.B
// form; cmd/experiments prints the full tables). One benchmark family
// per experiment:
//
//	BenchmarkFigure3Counts   — E1: node-count table (reported via metrics)
//	BenchmarkFigure4/...     — E2: the four evaluation strategies × Q01-Q15
//	BenchmarkFigure5/...     — E3: hybrid vs regular on configs A-D
//	BenchmarkFigure8/...     — E4: engine vs step-wise baseline
//	BenchmarkExampleC1       — E5: ASTA compilation at growing predicate width
//	BenchmarkAblation/...    — E6: factorial ablation of jump/memo/infoprop
//
// Run with:  go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/exp"
	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/stepwise"
	"repro/internal/xmark"
	"repro/internal/xpath"
)

// benchScale sizes the shared XMark document; ~0.05 ≈ 110k nodes keeps
// the full suite fast on one core while preserving the paper's shapes.
const benchScale = 0.05

var (
	workloadOnce sync.Once
	workload     *exp.Workload
)

func benchWorkload(b *testing.B) *exp.Workload {
	b.Helper()
	workloadOnce.Do(func() {
		workload = exp.NewWorkload(benchScale, 1)
	})
	return workload
}

// BenchmarkFigure3Counts measures one pass of the Figure 3 table and
// reports the headline counts of Q05 (the paper's tight-approximation
// showcase) as custom metrics.
func BenchmarkFigure3Counts(b *testing.B) {
	w := benchWorkload(b)
	var rows []exp.Fig3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.Figure3(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.ID == "Q05" {
			b.ReportMetric(float64(r.Selected), "Q05-selected")
			b.ReportMetric(float64(r.VisitedJump), "Q05-visited+j")
			b.ReportMetric(float64(r.VisitedNoJump), "Q05-visited-nj")
		}
	}
}

// BenchmarkFigure4 runs every query under every strategy series of the
// figure.
func BenchmarkFigure4(b *testing.B) {
	w := benchWorkload(b)
	modes := []struct {
		name string
		opt  asta.Options
	}{
		{"Naive", asta.Options{}},
		{"Jumping", asta.Options{Jump: true}},
		{"Memo", asta.Options{Memo: true}},
		{"Opt", asta.Opt()},
	}
	for _, m := range modes {
		for _, q := range xmark.Queries() {
			aut, err := compile.Compile(q.XPath, w.Doc.Names())
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", m.name, q.ID), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = aut.Eval(w.Doc, w.Index, m.opt)
				}
			})
		}
	}
}

// BenchmarkFigure5 compares the hybrid and regular strategies on the
// four synthetic configurations.
func BenchmarkFigure5(b *testing.B) {
	p := xpath.MustParse(xmark.HybridQuery)
	for _, cfg := range xmark.Fig5Configs() {
		d := cfg.Build(0.2)
		ix := index.New(d)
		aut, err := compile.ToASTA(p, d.Names())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.Name+"/Hybrid", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hybrid.Eval(d, ix, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.Name+"/Regular", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = aut.Eval(d, ix, asta.Opt())
			}
		})
	}
}

// BenchmarkFigure8 compares the optimized engine against the step-wise
// baseline on every query.
func BenchmarkFigure8(b *testing.B) {
	w := benchWorkload(b)
	for _, q := range xmark.Queries() {
		p := xpath.MustParse(q.XPath)
		aut, err := compile.ToASTA(p, w.Doc.Names())
		if err != nil {
			b.Fatal(err)
		}
		b.Run("Engine/"+q.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = aut.Eval(w.Doc, w.Index, asta.Opt())
			}
		})
		b.Run("Baseline/"+q.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = stepwise.Eval(w.Doc, p, stepwise.Default())
			}
		})
	}
}

// BenchmarkExampleC1 measures compilation of the wide-predicate query of
// Example C.1 (the runtime stays linear in n where an alternation-free
// automaton would be exponential).
func BenchmarkExampleC1(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := exp.ExampleC1([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if rows[0].DNFTerms == 0 {
					b.Fatal("no DNF terms")
				}
			}
		})
	}
}

// BenchmarkAblation is the factorial ablation of the three §4.4
// techniques on a representative query mix.
func BenchmarkAblation(b *testing.B) {
	w := benchWorkload(b)
	queries := []string{"Q05", "Q08", "Q12"}
	byID := map[string]string{}
	for _, q := range xmark.Queries() {
		byID[q.ID] = q.XPath
	}
	configs := []struct {
		name string
		opt  asta.Options
	}{
		{"none", asta.Options{}},
		{"jump", asta.Options{Jump: true}},
		{"memo", asta.Options{Memo: true}},
		{"infoprop", asta.Options{InfoProp: true}},
		{"jump+memo", asta.Options{Jump: true, Memo: true}},
		{"jump+infoprop", asta.Options{Jump: true, InfoProp: true}},
		{"memo+infoprop", asta.Options{Memo: true, InfoProp: true}},
		{"all", asta.Opt()},
	}
	for _, qid := range queries {
		aut, err := compile.Compile(byID[qid], w.Doc.Names())
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range configs {
			b.Run(qid+"/"+cfg.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = aut.Eval(w.Doc, w.Index, cfg.opt)
				}
			})
		}
	}
}

// BenchmarkIndexBuild measures index construction, the one-time cost the
// jumping strategies amortize.
func BenchmarkIndexBuild(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = index.New(w.Doc)
	}
}
