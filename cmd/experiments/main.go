// Command experiments regenerates the paper's tables and figures:
//
//	experiments -fig all -scale 0.1 -repeats 5
//
// -fig selects 3, 4, 5, 8, c1 or all. Figures 3/4/8 run the fifteen
// queries of Figure 2 over a generated XMark document; Figure 5 builds
// the four synthetic configurations; c1 prints the ASTA-vs-STA
// succinctness table of Example C.1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate: 3|4|5|8|c1|scaling|all")
		scale   = flag.Float64("scale", 0.1, "XMark scale for figures 3/4/8")
		scale5  = flag.Float64("scale5", 1.0, "scale for the figure 5 configurations (1.0 = paper's exact counts)")
		seed    = flag.Int64("seed", 1, "generator seed")
		repeats = flag.Int("repeats", 5, "timing repetitions (best-of, as in the paper)")
	)
	flag.Parse()

	want := func(name string) bool { return *fig == "all" || *fig == name }
	needWorkload := want("3") || want("4") || want("8")

	var w *exp.Workload
	if needWorkload {
		fmt.Fprintf(os.Stderr, "generating XMark document (scale %g)...\n", *scale)
		w = exp.NewWorkload(*scale, *seed)
		fmt.Fprintf(os.Stderr, "document: %d nodes\n\n", w.Doc.NumNodes())
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if want("3") {
		rows, err := exp.Figure3(w)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatFigure3(rows, w.Doc.NumNodes()))
	}
	if want("4") {
		rows, err := exp.Figure4(w, *repeats)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatFigure4(rows))
	}
	if want("5") {
		rows, err := exp.Figure5(*scale5, *repeats)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatFigure5(rows))
	}
	if want("8") {
		rows, err := exp.Figure8(w, *repeats)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatFigure8(rows))
	}
	if want("c1") {
		rows, err := exp.ExampleC1([]int{1, 2, 4, 8, 12, 16, 20})
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatExampleC1(rows))
	}
	if want("scaling") {
		const q = "//listitem//keyword"
		rows, err := exp.Scaling(q, []float64{0.01, 0.02, 0.05, 0.1, 0.2}, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatScaling(q, rows))
	}
	switch *fig {
	case "3", "4", "5", "8", "c1", "scaling", "all":
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
