// Command xmarkgen writes a deterministic XMark-like document to stdout
// or a file:
//
//	xmarkgen -scale 0.05 -seed 1 -out doc.xml
//
// Scale 1.0 approximates the paper's 116MB document (≈5.7M nodes).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.01, "XMark scale factor")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output file (default stdout)")
		stats = flag.Bool("stats", false, "print node statistics to stderr")
	)
	flag.Parse()

	doc := repro.GenerateXMark(*scale, *seed)
	if *stats {
		fmt.Fprintf(os.Stderr, "xmarkgen: scale=%g seed=%d nodes=%d labels=%d\n",
			*scale, *seed, doc.NumNodes(), doc.Names().Size())
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(doc.XMLString()); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
}
