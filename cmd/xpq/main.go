// Command xpq evaluates an XPath query over an XML file with a chosen
// strategy and reports the selected nodes:
//
//	xpq -file doc.xml -query '//listitem//keyword' [-strategy auto] [-paths] [-stats]
//
// With -xmark SCALE a generated XMark document is used instead of a file.
// Documents can be persisted in the compact binary tree format so large
// XMark trees parse once and reload in milliseconds:
//
//	xpq -xmark 1.0 -save auction.xqo            # generate once, save
//	xpq -load auction.xqo -query '//keyword'    # reload instantly
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		file     = flag.String("file", "", "XML input file")
		load     = flag.String("load", "", "binary document file to load (written by -save)")
		save     = flag.String("save", "", "write the loaded document to this binary file")
		xmarkSc  = flag.Float64("xmark", 0, "generate an XMark document at this scale instead of reading a file")
		seed     = flag.Int64("seed", 1, "XMark generator seed")
		query    = flag.String("query", "", "XPath query (required unless only -save)")
		strategy = flag.String("strategy", "auto", "auto|naive|jumping|memoized|optimized|hybrid|topdown-det|stepwise")
		paths    = flag.Bool("paths", false, "print the label path of each selected node")
		stats    = flag.Bool("stats", false, "print evaluation statistics")
		limit    = flag.Int("limit", 20, "maximum selected nodes to print (0 = all)")
	)
	flag.Parse()
	if *query == "" && *save == "" {
		fmt.Fprintln(os.Stderr, "xpq: -query is required (unless only saving with -save)")
		flag.Usage()
		os.Exit(2)
	}

	var doc *repro.Document
	var err error
	switch {
	case *xmarkSc > 0:
		doc = repro.GenerateXMark(*xmarkSc, *seed)
	case *load != "":
		doc, err = repro.LoadDocumentFile(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpq:", err)
			os.Exit(1)
		}
	case *file != "":
		doc, err = repro.ParseXMLFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpq:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "xpq: need -file, -load or -xmark")
		os.Exit(2)
	}

	if *save != "" {
		if err := repro.SaveDocumentFile(*save, doc); err != nil {
			fmt.Fprintln(os.Stderr, "xpq:", err)
			os.Exit(1)
		}
		fmt.Printf("saved %d nodes to %s\n", doc.NumNodes(), *save)
		if *query == "" {
			return
		}
	}

	strat, ok := repro.ParseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "xpq: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	eng := repro.NewEngine(doc)
	start := time.Now()
	ans, err := eng.QueryWith(*query, strat)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpq:", err)
		os.Exit(1)
	}
	fmt.Printf("%d nodes selected (%s, %.3f ms)\n",
		len(ans.Nodes), ans.Strategy, float64(elapsed.Nanoseconds())/1e6)
	if *stats {
		fmt.Printf("document nodes: %d, visited: %d", doc.NumNodes(), ans.Visited)
		if ans.MemoEntries > 0 {
			fmt.Printf(", memo entries: %d", ans.MemoEntries)
		}
		fmt.Println()
	}
	n := len(ans.Nodes)
	if *limit > 0 && n > *limit {
		n = *limit
	}
	for _, v := range ans.Nodes[:n] {
		if *paths {
			fmt.Printf("  node %d  %s\n", v, doc.Path(v))
		} else {
			fmt.Printf("  node %d  <%s>\n", v, doc.LabelName(v))
		}
	}
	if n < len(ans.Nodes) {
		fmt.Printf("  ... and %d more\n", len(ans.Nodes)-n)
	}
}
