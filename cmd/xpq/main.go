// Command xpq evaluates an XPath query over an XML file with a chosen
// strategy and reports the selected nodes:
//
//	xpq -file doc.xml -query '//listitem//keyword' [-strategy auto] [-paths] [-stats]
//
// With -xmark SCALE a generated XMark document is used instead of a file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		file     = flag.String("file", "", "XML input file")
		xmarkSc  = flag.Float64("xmark", 0, "generate an XMark document at this scale instead of reading a file")
		seed     = flag.Int64("seed", 1, "XMark generator seed")
		query    = flag.String("query", "", "XPath query (required)")
		strategy = flag.String("strategy", "auto", "auto|naive|jumping|memoized|optimized|hybrid|topdown-det|stepwise")
		paths    = flag.Bool("paths", false, "print the label path of each selected node")
		stats    = flag.Bool("stats", false, "print evaluation statistics")
		limit    = flag.Int("limit", 20, "maximum selected nodes to print (0 = all)")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "xpq: -query is required")
		flag.Usage()
		os.Exit(2)
	}

	var doc *repro.Document
	var err error
	switch {
	case *xmarkSc > 0:
		doc = repro.GenerateXMark(*xmarkSc, *seed)
	case *file != "":
		doc, err = repro.ParseXMLFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpq:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "xpq: need -file or -xmark")
		os.Exit(2)
	}

	strat, ok := parseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "xpq: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	eng := repro.NewEngine(doc)
	start := time.Now()
	ans, err := eng.QueryWith(*query, strat)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpq:", err)
		os.Exit(1)
	}
	fmt.Printf("%d nodes selected (%s, %.3f ms)\n",
		len(ans.Nodes), ans.Strategy, float64(elapsed.Nanoseconds())/1e6)
	if *stats {
		fmt.Printf("document nodes: %d, visited: %d", doc.NumNodes(), ans.Visited)
		if ans.MemoEntries > 0 {
			fmt.Printf(", memo entries: %d", ans.MemoEntries)
		}
		fmt.Println()
	}
	n := len(ans.Nodes)
	if *limit > 0 && n > *limit {
		n = *limit
	}
	for _, v := range ans.Nodes[:n] {
		if *paths {
			fmt.Printf("  node %d  %s\n", v, doc.Path(v))
		} else {
			fmt.Printf("  node %d  <%s>\n", v, doc.LabelName(v))
		}
	}
	if n < len(ans.Nodes) {
		fmt.Printf("  ... and %d more\n", len(ans.Nodes)-n)
	}
}

func parseStrategy(s string) (repro.Strategy, bool) {
	switch s {
	case "auto":
		return repro.Auto, true
	case "naive":
		return repro.Naive, true
	case "jumping":
		return repro.Jumping, true
	case "memoized":
		return repro.Memoized, true
	case "optimized":
		return repro.Optimized, true
	case "hybrid":
		return repro.Hybrid, true
	case "topdown-det":
		return repro.TopDownDet, true
	case "stepwise":
		return repro.Stepwise, true
	}
	return repro.Auto, false
}
