package main

import (
	"testing"

	"repro"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]repro.Strategy{
		"auto":        repro.Auto,
		"naive":       repro.Naive,
		"jumping":     repro.Jumping,
		"memoized":    repro.Memoized,
		"optimized":   repro.Optimized,
		"hybrid":      repro.Hybrid,
		"topdown-det": repro.TopDownDet,
		"stepwise":    repro.Stepwise,
	}
	for name, want := range cases {
		got, ok := repro.ParseStrategy(name)
		if !ok || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := repro.ParseStrategy("bogus"); ok {
		t.Error("bogus strategy accepted")
	}
}
