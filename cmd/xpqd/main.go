// Command xpqd is the XPath query daemon: an HTTP/JSON front end over
// the multi-document query service (document store + compiled-query LRU
// + batch evaluation + metrics).
//
//	xpqd [-addr localhost:8714] [-shards N] [-cache-size 256] [-cache-bytes N]
//	     [-cache-bytes-total N] [-workers N] [-stream-chunk 512] [-allow-file-loads]
//	     [-log-level info] [-slow-query-ms N] [-flight-records 256] [-pprof]
//	     [-cursor-ttl 60s] [-resident-budget N] [-verify-resident]
//	     [-load id=file.xml ...] [-load-bin id=file.xqo ...]
//	     [-mmap id=file.xqo2 | -mmap corpusdir ...] [-xmark id=scale[:seed] ...]
//
// The document corpus is partitioned over -shards goroutine-affine
// shards by consistent hashing on the document id; each shard owns its
// own compiled-query LRU (-cache-size / -cache-bytes are per shard),
// and -cache-bytes-total adds one global byte budget across all of
// them. GET /docs reports each document's owning shard; GET /stats
// reports per-shard cache, lock-wait and latency metrics.
//
// Endpoints:
//
//	POST   /query      {"doc":"xm","query":"//listitem//keyword","strategy":"auto"}
//	                   optional "limit" + "cursor" page the preorder answer; the
//	                   response's "next" token resumes against the generation it
//	                   pinned (410 once that generation is garbage-collected);
//	                   "asof"/?asof=<gen> time-travels to an older generation;
//	                   ?explain=1 attaches a span-tree profile
//	POST   /query/stream  same body; NDJSON header/chunk/trailer lines,
//	                   flushed per chunk so large answers stream in bounded memory
//	POST   /batch      {"requests":[{...},{...}]}
//	GET    /docs       list resident documents with stats
//	POST   /docs       {"id":"xm","xmark_scale":0.1} | {"id":"d","xml":"<r/>"} |
//	                   {"id":"d","file":"doc.xml"} | {"id":"d","binary_file":"doc.xqo"}
//	                   (the file-path forms require -allow-file-loads)
//	PATCH  /docs/{id}  {"op":"insert|delete|replace","node":N,"before":M,
//	                   "xml":"<frag/>","base_gen":G} — mutate a subtree,
//	                   publishing a new MVCC generation with incrementally
//	                   maintained indexes; open cursors and asof readers keep
//	                   their generation; base_gen makes it compare-and-swap (409)
//	DELETE /docs/{id}  evict a document (purges its compiled queries)
//	GET    /stats      store + cache + latency metrics
//	GET    /metrics    the same numbers in Prometheus text exposition
//	GET    /debug/queries  flight recorder: last queries, ?slow=1 filters
//	GET    /healthz    liveness
//	GET    /debug/pprof/   profiling (only with -pprof)
//
// Logs are structured (log/slog, text format): every query carries its
// request id, document and shard; queries at or above -slow-query-ms
// are logged at Warn with their engine counters. -log-level debug logs
// every query.
//
// SIGINT/SIGTERM drain in-flight requests and exit (graceful shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/store"
)

// multiFlag collects repeated flag occurrences.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// parseLevel maps a -log-level value to a slog.Level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

func main() {
	var (
		addr        = flag.String("addr", "localhost:8714", "listen address")
		shards      = flag.Int("shards", runtime.GOMAXPROCS(0), "document-store shard count (consistent-hash partitions)")
		cacheSize   = flag.Int("cache-size", 256, "per-shard compiled-query LRU capacity (entries)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "per-shard compiled-query LRU byte budget (0 = entries bound only)")
		cacheTotal  = flag.Int64("cache-bytes-total", 0, "global byte budget across all per-shard LRUs (0 = per-shard bounds only)")
		workers     = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		streamChunk = flag.Int("stream-chunk", service.DefaultStreamChunk, "nodes per /query/stream NDJSON chunk")
		allowFiles  = flag.Bool("allow-file-loads", false, "let POST /docs read server-side file paths")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn, error (debug logs every query)")
		slowQueryMS = flag.Int64("slow-query-ms", 100, "flag queries at or above this many milliseconds as slow (0 disables)")
		flightRecs  = flag.Int("flight-records", 0, "flight recorder ring size for /debug/queries (0 = default)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		autoAdapt   = flag.Bool("auto-adaptive", true, "route Auto queries on observed per-shape latency (false = the paper's static count heuristic)")
		autoEps     = flag.Float64("auto-epsilon", core.DefaultAutoEpsilon, "Auto selector exploration floor (fraction of warm decisions spent re-measuring)")
		cursorTTL   = flag.Duration("cursor-ttl", service.DefaultCursorTTL, "how long an unconsumed page/stream cursor keeps its MVCC generation alive")
		residentMax = flag.Int64("resident-budget", 0, "total bytes of mmap'd documents kept hot; colder mappings are released to the OS (0 = unlimited)")
		verifyRes   = flag.Bool("verify-resident", false, "structurally validate every value in -mmap files at open (for files not written by this server; checksums are always verified)")
		loads       multiFlag
		loadBins    multiFlag
		mmaps       multiFlag
		xmarks      multiFlag
	)
	flag.Var(&loads, "load", "preload an XML document, id=path (repeatable)")
	flag.Var(&loadBins, "load-bin", "preload a binary-serialized document, id=path (repeatable)")
	flag.Var(&mmaps, "mmap", "open an XQO2 resident file zero-copy, id=path, or a directory of .xqo2 files (repeatable)")
	flag.Var(&xmarks, "xmark", "pregenerate an XMark document, id=scale[:seed] (repeatable)")
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpqd: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	st := shard.NewStore(*shards)
	st.SetResidentBudget(*residentMax)
	st.SetVerifyResident(*verifyRes)
	if err := preload(st, logger, loads, loadBins, mmaps, xmarks); err != nil {
		logger.Error("preload failed", slog.Any("err", err))
		os.Exit(1)
	}
	svc := service.New(st, service.Options{
		CacheSize:       *cacheSize,
		CacheBytes:      *cacheBytes,
		CacheBytesTotal: *cacheTotal,
		Workers:         *workers,
		SlowQuery:       time.Duration(*slowQueryMS) * time.Millisecond,
		FlightRecords:   *flightRecs,
		Logger:          logger,
		StaticAuto:      !*autoAdapt,
		AutoEpsilon:     *autoEps,
		CursorTTL:       *cursorTTL,
	})

	srv := &http.Server{
		Addr: *addr,
		Handler: service.NewHandler(svc, service.HandlerOptions{
			AllowFileLoads: *allowFiles,
			StreamChunk:    *streamChunk,
			EnablePprof:    *pprofFlag,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			slog.String("addr", *addr),
			slog.Int("shards", st.NumShards()),
			slog.Int("documents", st.Len()),
			slog.Int64("slow_query_ms", *slowQueryMS),
			slog.Bool("pprof", *pprofFlag))
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("server failed", slog.Any("err", err))
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("draining", slog.String("signal", sig.String()))
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("shutdown", slog.Any("err", err))
		}
		logger.Info("bye")
	}
}

// preload loads every -load/-load-bin/-mmap/-xmark document before
// serving, so first queries never pay parse or index latency. Mapped
// opens are near-free (section-table walk plus checksums) — preloading
// a whole corpus directory is how the daemon serves more documents than
// fit in RAM, with the OS paging each document's working set on demand.
func preload(st *shard.Store, logger *slog.Logger, loads, loadBins, mmaps, xmarks []string) error {
	for _, spec := range loads {
		id, path, err := splitSpec(spec, "-load")
		if err != nil {
			return err
		}
		h, err := st.LoadXMLFile(id, path)
		if err != nil {
			return err
		}
		logLoaded(logger, h)
	}
	for _, spec := range loadBins {
		id, path, err := splitSpec(spec, "-load-bin")
		if err != nil {
			return err
		}
		h, err := st.LoadBinaryFile(id, path)
		if err != nil {
			return err
		}
		logLoaded(logger, h)
	}
	for _, spec := range mmaps {
		// Directory form: open every *.xqo2 inside, id = base name.
		if fi, err := os.Stat(spec); err == nil && fi.IsDir() {
			entries, err := os.ReadDir(spec)
			if err != nil {
				return fmt.Errorf("-mmap %q: %w", spec, err)
			}
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".xqo2") {
					continue
				}
				h, err := st.LoadMapped(strings.TrimSuffix(name, ".xqo2"), filepath.Join(spec, name))
				if err != nil {
					return err
				}
				logLoaded(logger, h)
			}
			continue
		}
		id, path, err := splitSpec(spec, "-mmap")
		if err != nil {
			return err
		}
		h, err := st.LoadMapped(id, path)
		if err != nil {
			return err
		}
		logLoaded(logger, h)
	}
	for _, spec := range xmarks {
		id, arg, err := splitSpec(spec, "-xmark")
		if err != nil {
			return err
		}
		scaleStr, seedStr, hasSeed := strings.Cut(arg, ":")
		scale, err := strconv.ParseFloat(scaleStr, 64)
		if err != nil {
			return fmt.Errorf("-xmark %q: bad scale: %w", spec, err)
		}
		seed := int64(1)
		if hasSeed {
			if seed, err = strconv.ParseInt(seedStr, 10, 64); err != nil {
				return fmt.Errorf("-xmark %q: bad seed: %w", spec, err)
			}
		}
		h, err := st.GenerateXMark(id, scale, seed)
		if err != nil {
			return err
		}
		logLoaded(logger, h)
	}
	return nil
}

func splitSpec(spec, flagName string) (id, rest string, err error) {
	id, rest, ok := strings.Cut(spec, "=")
	if !ok || id == "" || rest == "" {
		return "", "", fmt.Errorf("%s %q: want id=value", flagName, spec)
	}
	return id, rest, nil
}

func logLoaded(logger *slog.Logger, h *store.Handle) {
	logger.Info("loaded document",
		slog.String("doc", h.ID),
		slog.Int("nodes", h.Stats.Nodes),
		slog.Int("labels", h.Stats.Labels),
		slog.Int64("mem_bytes", h.Stats.MemBytes),
		slog.String("source", string(h.Stats.Source)))
}
