// Command xpqlint runs the repository's custom analyzer suite (see
// internal/lint and DESIGN.md "Enforced invariants") over the whole
// module:
//
//	go run ./cmd/xpqlint ./...
//
// It is a standalone multichecker rather than a `go vet -vettool`
// plugin: the vettool protocol needs golang.org/x/tools/go/analysis/
// unitchecker, which the offline build image cannot vendor, so the
// driver loads and typechecks the module itself (stdlib go/types with
// the source importer) and accepts the conventional "./..." argument
// for familiarity. Exit status: 0 clean, 1 findings, 2 load failure.
//
// Findings can be suppressed case-by-case with a justified directive
// on the flagged line or the line above:
//
//	// xpqlint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/registry"
)

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xpqlint [-list] [./...]\n\nAnalyzers:\n")
		for _, a := range registry.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range registry.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpqlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpqlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, registry.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpqlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xpqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod — the driver always lints the whole module, so "./..." is
// accepted (and implied) rather than parsed.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
