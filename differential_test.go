package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tree"
	"repro/internal/xmark"
)

// The differential strategy-agreement harness: four independent
// implementations of the same query semantics (step-wise joins, the
// hybrid start-anywhere run, the minimized deterministic TDSTA with
// topdown_jump, and the ASTA evaluator in its four configurations) plus
// the Auto selector, run over the fifteen paper queries at three
// document sizes, must produce identical preorder node sets — both
// through the classic materializing path and through the new cursor
// path. Any divergence is a correctness bug in at least one engine.

var diffSizes = []struct {
	name  string
	scale float64
	seed  int64
}{
	{"small", 0.002, 42},
	{"medium", 0.008, 42},
	{"large", 0.02, 42},
}

// diffStrategies are the cross-checked engines. Hybrid and TopDownDet
// cover restricted fragments: a fragment error on a forced strategy is
// a skip, not a failure (Auto never fails on fragment grounds).
var diffStrategies = []core.Strategy{
	core.Naive, core.Jumping, core.Memoized, core.Optimized,
	core.Hybrid, core.TopDownDet, core.Auto,
}

func fragmentLimited(s core.Strategy) bool {
	return s == core.Hybrid || s == core.TopDownDet
}

func equalNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// collectCursor drains an engine cursor through a deliberately small
// batch buffer, checking strict preorder on the way.
func collectCursor(t *testing.T, cur *core.Cursor, label string) []tree.NodeID {
	t.Helper()
	var out []tree.NodeID
	buf := make([]tree.NodeID, 7)
	for {
		n := cur.NextBatch(buf)
		if n == 0 {
			return out
		}
		for _, v := range buf[:n] {
			if len(out) > 0 && v <= out[len(out)-1] {
				t.Fatalf("%s: cursor not strictly preorder: %d after %d", label, v, out[len(out)-1])
			}
			out = append(out, v)
		}
	}
}

func TestStrategyAgreementDifferential(t *testing.T) {
	sizes := diffSizes
	if testing.Short() {
		sizes = diffSizes[:1]
	}
	for _, sz := range sizes {
		sz := sz
		t.Run(sz.name, func(t *testing.T) {
			t.Parallel()
			doc := xmark.Generate(xmark.Config{Scale: sz.scale, Seed: sz.seed})
			eng := core.New(doc)
			for _, q := range xmark.Queries() {
				// The step-wise engine is the oracle: structurally the
				// simplest implementation, farthest from the automata.
				want, err := eng.QueryWith(q.XPath, core.Stepwise)
				if err != nil {
					t.Fatalf("%s: stepwise oracle: %v", q.ID, err)
				}
				for _, s := range diffStrategies {
					ans, err := eng.QueryWith(q.XPath, s)
					if err != nil {
						if fragmentLimited(s) {
							continue
						}
						t.Errorf("%s under %v: %v", q.ID, s, err)
						continue
					}
					if !equalNodes(ans.Nodes, want.Nodes) {
						t.Errorf("%s: %v answer (%d nodes) != stepwise (%d nodes)",
							q.ID, s, len(ans.Nodes), len(want.Nodes))
						continue
					}
					// Cursor path: same strategy, streamed through a
					// small buffer, must agree node for node and report
					// the same cardinality.
					cur, err := eng.EvalCursor(q.XPath, s)
					if err != nil {
						t.Errorf("%s: EvalCursor under %v: %v", q.ID, s, err)
						continue
					}
					if got := cur.Count(); got != len(want.Nodes) {
						t.Errorf("%s: %v cursor Count()=%d, want %d", q.ID, s, got, len(want.Nodes))
					}
					if got := collectCursor(t, cur, q.ID); !equalNodes(got, want.Nodes) {
						t.Errorf("%s: %v cursor stream (%d nodes) != stepwise (%d nodes)",
							q.ID, s, len(got), len(want.Nodes))
					}
				}
			}
		})
	}
}

// TestCursorPagingMatchesOneShot pages every paper query through the
// service's limit/cursor protocol with a tiny page size and checks that
// the concatenated pages reproduce the one-shot answer exactly, for
// every strategy reachable over the wire.
func TestCursorPagingMatchesOneShot(t *testing.T) {
	svc := service.New(store.New(), service.Options{})
	if _, err := svc.Store().GenerateXMark("xm", 0.004, 9); err != nil {
		t.Fatal(err)
	}
	strategies := []string{"stepwise", "naive", "optimized", "hybrid", "topdown-det", "auto"}
	for _, q := range xmark.Queries() {
		for _, strat := range strategies {
			one := svc.Eval(service.Request{Doc: "xm", Query: q.XPath, Strategy: strat})
			if one.Err != "" {
				if strat == "hybrid" || strat == "topdown-det" {
					continue
				}
				t.Fatalf("%s %s: %s", q.ID, strat, one.Err)
			}
			if one.Next != "" {
				t.Errorf("%s %s: unlimited answer handed out a cursor", q.ID, strat)
			}
			var paged []tree.NodeID
			cursor := ""
			for page := 0; ; page++ {
				resp := svc.Eval(service.Request{
					Doc: "xm", Query: q.XPath, Strategy: strat, Limit: 7, Cursor: cursor,
				})
				if resp.Err != "" {
					t.Fatalf("%s %s page %d: %s", q.ID, strat, page, resp.Err)
				}
				if resp.Count != one.Count {
					t.Fatalf("%s %s page %d: Count=%d, one-shot %d", q.ID, strat, page, resp.Count, one.Count)
				}
				paged = append(paged, resp.Nodes...)
				if resp.Next == "" {
					break
				}
				cursor = resp.Next
				if len(paged) > one.Count {
					t.Fatalf("%s %s: paging ran past the one-shot answer", q.ID, strat)
				}
			}
			if !equalNodes(paged, one.Nodes) {
				t.Errorf("%s %s: paged answer (%d nodes) != one-shot (%d nodes)",
					q.ID, strat, len(paged), len(one.Nodes))
			}
		}
	}
}
