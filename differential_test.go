package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tree"
	"repro/internal/xmark"
)

// The differential strategy-agreement harness: four independent
// implementations of the same query semantics (step-wise joins, the
// hybrid start-anywhere run, the minimized deterministic TDSTA with
// topdown_jump, and the ASTA evaluator in its four configurations) plus
// the Auto selector, run over the fifteen paper queries at three
// document sizes, must produce identical preorder node sets — both
// through the classic materializing path and through the new cursor
// path. Any divergence is a correctness bug in at least one engine.

var diffSizes = []struct {
	name  string
	scale float64
	seed  int64
}{
	{"small", 0.002, 42},
	{"medium", 0.008, 42},
	{"large", 0.02, 42},
}

// diffStrategies are the cross-checked engines. Hybrid and TopDownDet
// cover restricted fragments: a fragment error on a forced strategy is
// a skip, not a failure (Auto never fails on fragment grounds).
var diffStrategies = []core.Strategy{
	core.Naive, core.Jumping, core.Memoized, core.Optimized,
	core.Hybrid, core.TopDownDet, core.Auto,
}

func fragmentLimited(s core.Strategy) bool {
	return s == core.Hybrid || s == core.TopDownDet
}

func equalNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// collectCursor drains an engine cursor through a deliberately small
// batch buffer, checking strict preorder on the way.
func collectCursor(t *testing.T, cur *core.Cursor, label string) []tree.NodeID {
	t.Helper()
	var out []tree.NodeID
	buf := make([]tree.NodeID, 7)
	for {
		n := cur.NextBatch(buf)
		if n == 0 {
			return out
		}
		for _, v := range buf[:n] {
			if len(out) > 0 && v <= out[len(out)-1] {
				t.Fatalf("%s: cursor not strictly preorder: %d after %d", label, v, out[len(out)-1])
			}
			out = append(out, v)
		}
	}
}

func TestStrategyAgreementDifferential(t *testing.T) {
	sizes := diffSizes
	if testing.Short() {
		sizes = diffSizes[:1]
	}
	for _, sz := range sizes {
		sz := sz
		t.Run(sz.name, func(t *testing.T) {
			t.Parallel()
			doc := xmark.Generate(xmark.Config{Scale: sz.scale, Seed: sz.seed})
			eng := core.New(doc)
			for _, q := range xmark.Queries() {
				// The step-wise engine is the oracle: structurally the
				// simplest implementation, farthest from the automata.
				want, err := eng.QueryWith(q.XPath, core.Stepwise)
				if err != nil {
					t.Fatalf("%s: stepwise oracle: %v", q.ID, err)
				}
				for _, s := range diffStrategies {
					ans, err := eng.QueryWith(q.XPath, s)
					if err != nil {
						if fragmentLimited(s) {
							continue
						}
						t.Errorf("%s under %v: %v", q.ID, s, err)
						continue
					}
					if !equalNodes(ans.Nodes, want.Nodes) {
						t.Errorf("%s: %v answer (%d nodes) != stepwise (%d nodes)",
							q.ID, s, len(ans.Nodes), len(want.Nodes))
						continue
					}
					// Cursor path: same strategy, streamed through a
					// small buffer, must agree node for node and report
					// the same cardinality.
					cur, err := eng.EvalCursor(q.XPath, s)
					if err != nil {
						t.Errorf("%s: EvalCursor under %v: %v", q.ID, s, err)
						continue
					}
					if got := cur.Count(); got != len(want.Nodes) {
						t.Errorf("%s: %v cursor Count()=%d, want %d", q.ID, s, got, len(want.Nodes))
					}
					if got := collectCursor(t, cur, q.ID); !equalNodes(got, want.Nodes) {
						t.Errorf("%s: %v cursor stream (%d nodes) != stepwise (%d nodes)",
							q.ID, s, len(got), len(want.Nodes))
					}
				}
			}
		})
	}
}

// TestShardedServiceDifferential runs the fifteen paper queries at all
// three XMark sizes through the sharded service path at 1, 4 and 8
// shards, and checks the answers — materialized and cursor-paged —
// against the single-shard step-wise engine node for node. The three
// documents are registered together in each sharded store, so at 4 and
// 8 shards they spread over distinct partitions with distinct engine
// tables and compiled-query LRUs; identical answers prove routing,
// per-shard caching and shard-qualified paging change nothing about
// query semantics.
func TestShardedServiceDifferential(t *testing.T) {
	sizes := diffSizes
	if testing.Short() {
		sizes = diffSizes[:1]
	}
	// One generation per size, shared by the oracle and every service.
	docs := make(map[string]*tree.Document, len(sizes))
	oracle := make(map[string]map[string][]tree.NodeID, len(sizes))
	for _, sz := range sizes {
		doc := xmark.Generate(xmark.Config{Scale: sz.scale, Seed: sz.seed})
		docs[sz.name] = doc
		eng := core.New(doc)
		byQuery := make(map[string][]tree.NodeID)
		for _, q := range xmark.Queries() {
			want, err := eng.QueryWith(q.XPath, core.Stepwise)
			if err != nil {
				t.Fatalf("%s %s: stepwise oracle: %v", sz.name, q.ID, err)
			}
			byQuery[q.XPath] = want.Nodes
		}
		oracle[sz.name] = byQuery
	}

	for _, shards := range []int{1, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			t.Parallel()
			ss := shard.NewStore(shards)
			svc := service.New(ss, service.Options{})
			for _, sz := range sizes {
				if _, err := ss.Add(sz.name, docs[sz.name], store.SourceDirect); err != nil {
					t.Fatal(err)
				}
			}
			if shards > 1 {
				used := map[int]bool{}
				for _, sz := range sizes {
					used[ss.ShardFor(sz.name)] = true
				}
				if !testing.Short() && len(used) < 2 {
					t.Logf("note: all %d docs landed on one of %d shards", len(sizes), shards)
				}
			}
			for _, sz := range sizes {
				for _, q := range xmark.Queries() {
					want := oracle[sz.name][q.XPath]

					// Materialized: the whole answer in one response.
					one := svc.Eval(service.Request{Doc: sz.name, Query: q.XPath})
					if one.Err != "" {
						t.Fatalf("%s %s: %s", sz.name, q.ID, one.Err)
					}
					if one.Count != len(want) || !equalNodes(one.Nodes, want) {
						t.Errorf("%s %s: sharded answer (%d nodes) != stepwise (%d nodes)",
							sz.name, q.ID, len(one.Nodes), len(want))
						continue
					}

					// Cursor-paged: ~8 pages via shard-qualified tokens.
					limit := len(want)/8 + 1
					var paged []tree.NodeID
					cursor := ""
					for page := 0; ; page++ {
						resp := svc.Eval(service.Request{
							Doc: sz.name, Query: q.XPath, Limit: limit, Cursor: cursor,
						})
						if resp.Err != "" {
							t.Fatalf("%s %s page %d: %s", sz.name, q.ID, page, resp.Err)
						}
						if resp.Count != len(want) {
							t.Fatalf("%s %s page %d: Count=%d, want %d",
								sz.name, q.ID, page, resp.Count, len(want))
						}
						paged = append(paged, resp.Nodes...)
						if resp.Next == "" {
							break
						}
						cursor = resp.Next
						if len(paged) > len(want) {
							t.Fatalf("%s %s: paging ran past the oracle answer", sz.name, q.ID)
						}
					}
					if !equalNodes(paged, want) {
						t.Errorf("%s %s: paged answer (%d nodes) != stepwise (%d nodes)",
							sz.name, q.ID, len(paged), len(want))
					}
				}
			}
		})
	}
}

// TestCursorPagingMatchesOneShot pages every paper query through the
// service's limit/cursor protocol with a tiny page size and checks that
// the concatenated pages reproduce the one-shot answer exactly, for
// every strategy reachable over the wire.
func TestCursorPagingMatchesOneShot(t *testing.T) {
	svc := service.New(shard.NewStore(1), service.Options{})
	if _, err := svc.Store().GenerateXMark("xm", 0.004, 9); err != nil {
		t.Fatal(err)
	}
	strategies := []string{"stepwise", "naive", "optimized", "hybrid", "topdown-det", "auto"}
	for _, q := range xmark.Queries() {
		for _, strat := range strategies {
			one := svc.Eval(service.Request{Doc: "xm", Query: q.XPath, Strategy: strat})
			if one.Err != "" {
				if strat == "hybrid" || strat == "topdown-det" {
					continue
				}
				t.Fatalf("%s %s: %s", q.ID, strat, one.Err)
			}
			if one.Next != "" {
				t.Errorf("%s %s: unlimited answer handed out a cursor", q.ID, strat)
			}
			var paged []tree.NodeID
			cursor := ""
			for page := 0; ; page++ {
				resp := svc.Eval(service.Request{
					Doc: "xm", Query: q.XPath, Strategy: strat, Limit: 7, Cursor: cursor,
				})
				if resp.Err != "" {
					t.Fatalf("%s %s page %d: %s", q.ID, strat, page, resp.Err)
				}
				if resp.Count != one.Count {
					t.Fatalf("%s %s page %d: Count=%d, one-shot %d", q.ID, strat, page, resp.Count, one.Count)
				}
				paged = append(paged, resp.Nodes...)
				if resp.Next == "" {
					break
				}
				cursor = resp.Next
				if len(paged) > one.Count {
					t.Fatalf("%s %s: paging ran past the one-shot answer", q.ID, strat)
				}
			}
			if !equalNodes(paged, one.Nodes) {
				t.Errorf("%s %s: paged answer (%d nodes) != one-shot (%d nodes)",
					q.ID, strat, len(paged), len(one.Nodes))
			}
		}
	}
}

// TestAdaptiveAutoDifferential pins the adaptive selector's safety
// property: whatever engine the observed-latency model routes to — and
// it deliberately probes and explores every eligible candidate — the
// answer must match the step-wise oracle node for node, on all fifteen
// paper queries at every size. Epsilon is cranked high so exploration
// (not just the initial probes) is exercised within the repeat budget,
// and repeats guarantee every eligible candidate of every shape runs
// at least once.
func TestAdaptiveAutoDifferential(t *testing.T) {
	const repeats = 9
	sizes := diffSizes
	if testing.Short() {
		sizes = diffSizes[:1]
	}
	for _, sz := range sizes {
		sz := sz
		t.Run(sz.name, func(t *testing.T) {
			t.Parallel()
			doc := xmark.Generate(xmark.Config{Scale: sz.scale, Seed: sz.seed})
			oracleEng := core.New(doc)
			eng := core.New(doc)
			eng.ConfigureAuto(core.AutoConfig{Adaptive: true, Epsilon: 0.34}) // explore every ~3rd warm decision
			for _, q := range xmark.Queries() {
				want, err := oracleEng.QueryWith(q.XPath, core.Stepwise)
				if err != nil {
					t.Fatalf("%s: stepwise oracle: %v", q.ID, err)
				}
				seen := map[core.Strategy]bool{}
				for i := 0; i < repeats; i++ {
					ans, err := eng.QueryWith(q.XPath, core.Auto)
					if err != nil {
						t.Fatalf("%s repeat %d: adaptive Auto: %v", q.ID, i, err)
					}
					seen[ans.Strategy] = true
					if !equalNodes(ans.Nodes, want.Nodes) {
						t.Fatalf("%s repeat %d: adaptive Auto via %v gave %d nodes, oracle %d",
							q.ID, i, ans.Strategy, len(ans.Nodes), len(want.Nodes))
					}
					// The cursor path under the same churning model.
					cur, err := eng.EvalCursor(q.XPath, core.Auto)
					if err != nil {
						t.Fatalf("%s repeat %d: adaptive Auto cursor: %v", q.ID, i, err)
					}
					if got := collectCursor(t, cur, q.ID); !equalNodes(got, want.Nodes) {
						t.Fatalf("%s repeat %d: adaptive Auto cursor via %v gave %d nodes, oracle %d",
							q.ID, i, cur.Strategy(), len(got), len(want.Nodes))
					}
				}
				// Multi-candidate shapes must actually have tried more
				// than one engine across the probe/explore schedule —
				// otherwise this differential proves less than it claims.
				if q.ID == "Q01" && len(seen) < 2 {
					t.Errorf("%s: adaptive Auto only ever ran %v; probing is not happening", q.ID, seen)
				}
			}
			s := eng.SelectorStats()
			if s.Observations == 0 || s.Shapes == 0 {
				t.Fatalf("selector saw no feedback: %+v", s)
			}
		})
	}
}
