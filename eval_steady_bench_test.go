// BenchmarkEvalSteadyState pins the win of the pooled evaluation
// memory model (PR 5): the full paper-query matrix (Q01-Q15) over
// three XMark sizes, evaluated with the optimized ASTA engine under
// two context regimes —
//
//	cold: a fresh asta.Context per evaluation, the pre-pool behavior
//	      (every run rebuilds interning tables, memo maps, arenas,
//	      cursors from scratch);
//	warm: one Context reused across evaluations, the serving layers'
//	      steady state (memo world persists, arenas rewind in place).
//
// Run with -benchmem: the warm rows are the contract — near-zero
// allocs/op and ≥30% less ns/op than cold on the memo-dominated
// queries. BENCH_eval.json is seeded from this benchmark and the CI
// bench smoke gates the warm-path allocation ceiling.
//
// The warm-traced variant adds the per-query observability work the
// serving layers now do on every (non-explain) request: the nil-trace
// span calls threaded through the engine, the counter lifts, and one
// flight-recorder admission. BENCH_obsv.json is seeded from it and CI
// gates the paired geomean warm-traced/warm at 1.05 with the same ≤5
// allocs/op ceiling — observability must not give back the pooled
// memory model.
package repro_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/exp"
	"repro/internal/obsv"
	"repro/internal/xmark"
)

// steadyScales are the three XMark sizes of the matrix (~22k, ~110k,
// ~220k nodes).
var steadyScales = []float64{0.01, 0.05, 0.1}

var (
	steadyMu        sync.Mutex
	steadyWorkloads = map[float64]*exp.Workload{}
)

func steadyWorkload(b *testing.B, scale float64) *exp.Workload {
	b.Helper()
	steadyMu.Lock()
	defer steadyMu.Unlock()
	w, ok := steadyWorkloads[scale]
	if !ok {
		w = exp.NewWorkload(scale, 1)
		steadyWorkloads[scale] = w
	}
	return w
}

func BenchmarkEvalSteadyState(b *testing.B) {
	for _, scale := range steadyScales {
		w := steadyWorkload(b, scale)
		for _, q := range xmark.Queries() {
			aut, err := compile.Compile(q.XPath, w.Doc.Names())
			if err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("s=%g/%s", scale, q.ID)
			b.Run(name+"/cold", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = aut.EvalLazy(w.Doc, w.Index, asta.Opt())
				}
			})
			b.Run(name+"/warm", func(b *testing.B) {
				ctx := asta.NewContext()
				// Bind and size the arenas outside the measurement so
				// even -benchtime 1x sees the steady state.
				_ = aut.EvalLazyCtx(ctx, w.Doc, w.Index, asta.Opt())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = aut.EvalLazyCtx(ctx, w.Doc, w.Index, asta.Opt())
				}
			})
			b.Run(name+"/warm-traced", func(b *testing.B) {
				ctx := asta.NewContext()
				_ = aut.EvalLazyCtx(ctx, w.Doc, w.Index, asta.Opt())
				// The always-on observability of the serving path: a nil
				// trace (non-explain requests never allocate one — Begin
				// and End are nil-checked no-ops), counters lifted off
				// the result, one flight-recorder admission.
				flight := obsv.NewFlight(obsv.DefaultFlightRecords, 100*time.Millisecond)
				var tr *obsv.Trace
				rec := obsv.Record{
					Doc:        "xm",
					Query:      q.XPath,
					Strategy:   "optimized",
					Outcome:    obsv.OutcomeOK,
					QCacheHit:  true,
					CtxPoolHit: true,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sp := tr.Begin(obsv.SpanRoute)
					tr.End(sp)
					sp = tr.Begin(obsv.SpanEngine)
					tr.End(sp)
					sp = tr.Begin(obsv.SpanCompile)
					tr.End(sp)
					sp = tr.Begin(obsv.SpanRun)
					res := aut.EvalLazyCtx(ctx, w.Doc, w.Index, asta.Opt())
					tr.End(sp)
					rec.Visited = res.Stats.Visited
					rec.MemoHits = res.Stats.MemoHits
					rec.Jumps = res.Stats.Jumps
					flight.Add(rec)
				}
			})
		}
	}
}
