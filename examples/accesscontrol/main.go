// Access control: XPath as a policy language (the XACML use case from
// the paper's introduction). A policy is an ordered list of allow/deny
// XPath rules; the engine evaluates each rule once over the document and
// the example computes, per node, the first matching rule — then redacts
// the document accordingly.
//
//	go run ./examples/accesscontrol
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

const record = `<patients>
  <patient id="p1">
    <name>Ada</name>
    <diagnosis><code>J45</code><notes>stable</notes></diagnosis>
    <billing><card>4111</card><address>1 Main St</address></billing>
  </patient>
  <patient id="p2">
    <name>Grace</name>
    <diagnosis><code>E11</code><notes>review</notes></diagnosis>
    <billing><card>5500</card><address>2 High St</address></billing>
  </patient>
</patients>`

type rule struct {
	allow bool
	query string
	why   string
}

// policy for the "clinician" role: may see diagnoses, never billing
// instruments.
var policy = []rule{
	{false, "//billing/card", "payment instruments are always denied"},
	{true, "//patient/name", "clinicians see names"},
	{true, "//diagnosis", "clinicians see full diagnoses"},
	{true, "//diagnosis//*", "...including nested elements"},
	{false, "//billing", "billing subtree denied"},
	{false, "//billing//*", "...entirely"},
}

func main() {
	doc, err := repro.ParseXMLString(record)
	if err != nil {
		log.Fatal(err)
	}
	eng := repro.NewEngine(doc)

	// Evaluate every rule once; first match wins per node.
	decision := make(map[repro.NodeID]*rule)
	for i := range policy {
		r := &policy[i]
		ans, err := eng.Query(r.query)
		if err != nil {
			log.Fatalf("rule %q: %v", r.query, err)
		}
		for _, v := range ans.Nodes {
			if _, seen := decision[v]; !seen {
				decision[v] = r
			}
		}
	}

	fmt.Println("per-node decisions (undecided elements inherit a deny-by-default):")
	var visible, redacted int
	for v := repro.NodeID(0); int(v) < doc.NumNodes(); v++ {
		name := doc.LabelName(v)
		if strings.HasPrefix(name, "#") || strings.HasPrefix(name, "@") {
			continue
		}
		r, ok := decision[v]
		switch {
		case ok && r.allow:
			visible++
			fmt.Printf("  ALLOW %-28s (%s)\n", doc.Path(v), r.why)
		case ok:
			redacted++
			fmt.Printf("  DENY  %-28s (%s)\n", doc.Path(v), r.why)
		default:
			redacted++
		}
	}
	fmt.Printf("\n%d elements visible, %d redacted\n", visible, redacted)
}
