// Auction report: the XQuery-style analytics workload the paper's
// introduction motivates. Generates an XMark auction document, then
// answers a set of reporting questions with the whole-query optimizer,
// showing which strategy the engine picked and how little of the
// document each query touched.
//
//	go run ./examples/auctionreport [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	scale := flag.Float64("scale", 0.02, "XMark scale factor")
	flag.Parse()

	fmt.Printf("generating auction site data (scale %g)...\n", *scale)
	doc := repro.GenerateXMark(*scale, 42)
	fmt.Printf("document: %d nodes\n\n", doc.NumNodes())
	eng := repro.NewEngine(doc)

	report := []struct {
		question string
		query    string
	}{
		{"items offered in Europe", "/site/regions/europe/item"},
		{"items with dated mail correspondence", "/site/regions/*/item[ mailbox/mail/date ]"},
		{"reachable people (address plus phone or homepage)",
			"/site/people/person[ address and (phone or homepage) ]"},
		{"closed-auction listitems", "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem"},
		{"keywords anywhere in descriptions", "//description//keyword"},
		{"emphasized keywords in item lists", "//listitem//keyword//emph"},
		{"persons with a profile but no listed age", "//person[ profile and not(profile/age) ]"},
	}

	for _, r := range report {
		start := time.Now()
		ans, err := eng.Query(r.query)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("%s: %v", r.query, err)
		}
		frac := 100 * float64(ans.Visited) / float64(doc.NumNodes())
		fmt.Printf("%-52s %6d matches  %8.3f ms  [%s, touched %.1f%% of doc]\n",
			r.question, len(ans.Nodes), float64(elapsed.Nanoseconds())/1e6, ans.Strategy, frac)
	}

	// The paper's fifteen benchmark queries, via the same engine.
	fmt.Println("\npaper benchmark queries:")
	for _, q := range repro.PaperQueries() {
		ans, err := eng.Query(q.XPath)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		fmt.Printf("  %s %-70s %7d nodes [%s]\n", q.ID, q.XPath, len(ans.Nodes), ans.Strategy)
	}
}
