// Automata inspection: compiles queries to the paper's automata and
// prints them — the ASTA of Example 4.1, its state-set jump analysis,
// and a minimized deterministic TDSTA with its relevant-node run. This
// example imports internal packages (it lives inside the module) to
// expose the machinery the public API wraps.
//
//	go run ./examples/automata
package main

import (
	"fmt"
	"log"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/index"
	"repro/internal/tree"
	"repro/internal/xmlparse"
	"repro/internal/xpath"
)

func main() {
	doc, err := xmlparse.ParseString(
		`<x><a><b><c/></b></a><d><b><e/></b><a><b><c/><c/></b></a></d></x>`)
	if err != nil {
		log.Fatal(err)
	}
	ix := index.New(doc)

	// 1. The ASTA of Example 4.1.
	fmt.Println("=== ASTA for //a//b[c] (Example 4.1) ===")
	aut, err := compile.Compile("//a//b[c]", doc.Names())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(aut.String(doc.Names()))

	fmt.Println("\nstate roles:")
	for q := asta.State(0); int(q) < aut.NumStates; q++ {
		role := "search"
		if !aut.Marking(q) {
			role = "predicate check (cannot mark nodes)"
		}
		fmt.Printf("  q%d: %s\n", q, role)
	}

	// 2. The minimized TDSTA for a restricted query, with its jumping
	// run (Theorem 3.1: only relevant nodes are touched).
	fmt.Println("\n=== minimal TDSTA for //a//b ===")
	p := xpath.MustParse("//a//b")
	tdsta, err := compile.ToTDSTA(p, doc.Names())
	if err != nil {
		log.Fatal(err)
	}
	min := tdsta.MinimizeTopDown()
	fmt.Printf("states before/after minimization: %d -> %d\n", tdsta.NumStates, min.NumStates)
	fmt.Println(min.String(doc.Names()))

	full := min.EvalTopDownDet(doc)
	jump := min.EvalTopDownJump(doc, ix)
	fmt.Printf("\nfull run visited %d of %d nodes; topdown_jump visited %d\n",
		full.Visited, doc.NumNodes(), jump.Visited)
	fmt.Printf("selected: %v (both runs agree: %v)\n",
		jump.Selected, equalNodes(full.Selected, jump.Selected))
	relevant := min.RelevantTopDown(doc, full.Run)
	fmt.Printf("top-down relevant nodes (Lemma 3.1): %v\n", relevant)
	for _, v := range relevant {
		fmt.Printf("  node %-3d %-12s state q%d\n", v, doc.Path(v), full.Run[v])
	}
}

func equalNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
