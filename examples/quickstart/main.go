// Quickstart: parse a document, run queries, inspect results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

const catalog = `<catalog>
  <section name="databases">
    <book year="2010">
      <title>XPath Whole Query Optimization</title>
      <author>Maneth</author><author>Nguyen</author>
      <keywords><keyword>xpath</keyword><keyword>automata</keyword></keywords>
    </book>
    <book year="2002">
      <title>Efficient Algorithms for Processing XPath Queries</title>
      <author>Gottlob</author><author>Koch</author><author>Pichler</author>
    </book>
  </section>
  <section name="succinct">
    <book year="2009">
      <title>Fully-Functional Succinct Trees</title>
      <author>Sadakane</author><author>Navarro</author>
      <keywords><keyword>trees</keyword></keywords>
    </book>
  </section>
</catalog>`

func main() {
	doc, err := repro.ParseXMLString(catalog)
	if err != nil {
		log.Fatal(err)
	}
	eng := repro.NewEngine(doc)

	queries := []string{
		"//book/title",
		"//book[keywords]/title",
		"//section/book[author]/author",
		"//book[keywords/keyword]//author",
		"//book[not(keywords)]/title",
	}
	for _, q := range queries {
		ans, err := eng.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("%-40s -> %d nodes (strategy %s)\n", q, len(ans.Nodes), ans.Strategy)
		for _, v := range ans.Nodes {
			// The first child of a title/author element is its text.
			text := ""
			if c := doc.FirstChild(v); c != repro.Nil {
				text = doc.Text(c)
			}
			fmt.Printf("    %-30s %q\n", doc.Path(v), text)
		}
	}

	// The same query under different strategies always selects the same
	// nodes; the effort differs.
	fmt.Println("\nstrategy comparison for //book[keywords]/title:")
	for _, s := range []repro.Strategy{repro.Naive, repro.Optimized, repro.Stepwise} {
		ans, err := eng.QueryWith("//book[keywords]/title", s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-10s selected %d, visited %d of %d nodes\n",
			ans.Strategy, len(ans.Nodes), ans.Visited, doc.NumNodes())
	}
}
