package repro_test

import (
	"bytes"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stepwise"
	"repro/internal/tree"
	"repro/internal/xmark"
	"repro/internal/xmlparse"
)

// TestEndToEndPipeline exercises the full stack the way a user would:
// generate a workload, serialize it to XML, re-parse it, and verify that
// every engine agrees with the oracle on every paper query.
func TestEndToEndPipeline(t *testing.T) {
	gen := xmark.Generate(xmark.Config{Scale: 0.004, Seed: 11})
	src := gen.XMLString()
	doc, err := xmlparse.ParseString(src)
	if err != nil {
		t.Fatalf("re-parse of generated document: %v", err)
	}
	// Adjacent text nodes merge on re-parse, so compare element counts.
	countElems := func(d *tree.Document) int {
		n := 0
		for v := tree.NodeID(0); int(v) < d.NumNodes(); v++ {
			if d.Label(v) != tree.LabelText {
				n++
			}
		}
		return n
	}
	if countElems(doc) != countElems(gen) {
		t.Fatalf("parse round trip changed element count: %d -> %d", countElems(gen), countElems(doc))
	}
	eng := core.New(doc)
	for _, q := range xmark.Queries() {
		want, err := stepwise.EvalString(doc, q.XPath, stepwise.Default())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []core.Strategy{core.Naive, core.Jumping, core.Memoized, core.Optimized, core.Auto} {
			got, err := eng.QueryWith(q.XPath, s)
			if err != nil {
				t.Fatalf("%s (%v): %v", q.ID, s, err)
			}
			if len(got.Nodes) != len(want.Selected) {
				t.Errorf("%s (%v): %d nodes, oracle %d", q.ID, s, len(got.Nodes), len(want.Selected))
				continue
			}
			for i := range want.Selected {
				if got.Nodes[i] != want.Selected[i] {
					t.Errorf("%s (%v): node %d differs", q.ID, s, i)
					break
				}
			}
		}
	}
}

// TestBinarySerializationPipeline: documents survive the binary format
// and evaluate identically afterwards.
func TestBinarySerializationPipeline(t *testing.T) {
	d1 := xmark.Generate(xmark.Config{Scale: 0.003, Seed: 5})
	var buf bytes.Buffer
	if _, err := d1.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := tree.ReadDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := repro.NewEngine(d1), repro.NewEngine(d2)
	for _, q := range []string{"//listitem//keyword", "/site/people/person[ address and (phone or homepage) ]"} {
		a1, err := e1.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := e2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a1.Nodes) != len(a2.Nodes) {
			t.Errorf("%q: %d vs %d after serialization", q, len(a1.Nodes), len(a2.Nodes))
		}
	}
}

// TestExperimentInvariantsSmallScale runs the Figure 3 harness at a tiny
// scale and re-checks its cross-strategy invariants end to end.
func TestExperimentInvariantsSmallScale(t *testing.T) {
	w := exp.NewWorkload(0.002, 3)
	rows, err := exp.Figure3(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Selected > r.VisitedJump || r.VisitedJump > r.VisitedNoJump {
			t.Errorf("%s: count invariants violated: %d/%d/%d",
				r.ID, r.Selected, r.VisitedJump, r.VisitedNoJump)
		}
	}
}
