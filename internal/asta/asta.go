// Package asta implements the alternating selecting tree automata of §4:
// the compact automaton model XPath queries compile into, together with
// the evaluation function of Algorithm 4.1 and the optimizations studied
// in the paper's experiments — on-the-fly top-down approximation of
// relevant nodes with index jumps (Definition 4.2), memoization of
// transition evaluation, and information propagation (§4.4).
//
// States are limited to 64 so that the state sets manipulated by the
// top-down approximation are machine words; the XPath fragment's
// compilation uses one state per query step (§4.2), so this bounds query
// size, not document size.
package asta

import (
	"fmt"
	"strings"

	"repro/internal/labels"
	"repro/internal/tree"
)

// State is an ASTA state.
type State int32

// MaxStates bounds the number of states of one ASTA.
const MaxStates = 64

// StateSet is a set of states as a bit mask; it doubles as a state of the
// deterministic top-down approximation tda(A) (Definition 4.2).
type StateSet uint64

// Has reports q ∈ s.
func (s StateSet) Has(q State) bool { return s&(1<<uint(q)) != 0 }

// With returns s ∪ {q}.
func (s StateSet) With(q State) StateSet { return s | 1<<uint(q) }

// Without returns s \ {q}.
func (s StateSet) Without(q State) StateSet { return s &^ (1 << uint(q)) }

// IsEmpty reports whether the set is empty.
func (s StateSet) IsEmpty() bool { return s == 0 }

// Each calls f for every state in the set, in increasing order.
func (s StateSet) Each(f func(q State)) {
	for q := State(0); s != 0; q++ {
		if s&1 != 0 {
			f(q)
		}
		s >>= 1
	}
}

// String renders the set like {q0,q2}.
func (s StateSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.Each(func(q State) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "q%d", q)
	})
	sb.WriteByte('}')
	return sb.String()
}

// FormulaKind discriminates formula nodes.
type FormulaKind int8

// Formula node kinds, per the EBNF of Definition 4.1:
// φ ::= ⊤ | ⊥ | φ∨φ | φ∧φ | ¬φ | ↓1 q | ↓2 q.
const (
	FTrue FormulaKind = iota
	FFalse
	FAnd
	FOr
	FNot
	FDown // ↓Child q
)

// Formula is a Boolean formula over child moves. Formulas are immutable
// trees; the leaves are ⊤, ⊥ and ↓i q atoms.
type Formula struct {
	Kind        FormulaKind
	Left, Right *Formula // And/Or children; Not uses Left
	Child       int8     // 1 or 2 for FDown
	Q           State    // for FDown
}

// Formula constructors.
var (
	fTrue  = &Formula{Kind: FTrue}
	fFalse = &Formula{Kind: FFalse}
)

// True returns ⊤.
func True() *Formula { return fTrue }

// False returns ⊥.
func False() *Formula { return fFalse }

// And returns l ∧ r.
func And(l, r *Formula) *Formula { return &Formula{Kind: FAnd, Left: l, Right: r} }

// Or returns l ∨ r.
func Or(l, r *Formula) *Formula { return &Formula{Kind: FOr, Left: l, Right: r} }

// Not returns ¬f.
func Not(f *Formula) *Formula { return &Formula{Kind: FNot, Left: f} }

// Down returns ↓child q.
func Down(child int, q State) *Formula {
	return &Formula{Kind: FDown, Child: int8(child), Q: q}
}

// Down1 returns ↓1 q.
func Down1(q State) *Formula { return Down(1, q) }

// Down2 returns ↓2 q.
func Down2(q State) *Formula { return Down(2, q) }

func (f *Formula) String() string {
	switch f.Kind {
	case FTrue:
		return "⊤"
	case FFalse:
		return "⊥"
	case FAnd:
		return "(" + f.Left.String() + " ∧ " + f.Right.String() + ")"
	case FOr:
		return "(" + f.Left.String() + " ∨ " + f.Right.String() + ")"
	case FNot:
		return "¬" + f.Left.String()
	case FDown:
		return fmt.Sprintf("↓%d q%d", f.Child, f.Q)
	}
	return "?"
}

// downs accumulates the states under ↓1 and ↓2 atoms of f.
func (f *Formula) downs(d1, d2 *StateSet) {
	switch f.Kind {
	case FAnd, FOr:
		f.Left.downs(d1, d2)
		f.Right.downs(d1, d2)
	case FNot:
		f.Left.downs(d1, d2)
	case FDown:
		if f.Child == 1 {
			*d1 = d1.With(f.Q)
		} else {
			*d2 = d2.With(f.Q)
		}
	}
}

// Size returns the number of nodes of the formula.
func (f *Formula) Size() int {
	switch f.Kind {
	case FAnd, FOr:
		return 1 + f.Left.Size() + f.Right.Size()
	case FNot:
		return 1 + f.Left.Size()
	default:
		return 1
	}
}

// Transition is (q, L, τ, φ): from state q, on labels L, the formula φ
// must hold of the children; τ = ⇒ (Selecting) marks the node.
type Transition struct {
	From      State
	Guard     labels.Set
	Selecting bool
	Phi       *Formula

	// Derived by Finalize: states under ↓1/↓2 atoms of Phi.
	down1, down2 StateSet
}

// ASTA is an alternating selecting tree automaton (Definition 4.1).
type ASTA struct {
	NumStates int
	Top       StateSet
	Trans     []Transition

	byFrom [][]int32
	// selOf[q] is the union of guards of q's selecting transitions.
	selOf []labels.Set
	// marking[q]: q's sub-automaton can mark nodes (q reaches a
	// selecting transition); used by information propagation to decide
	// which satisfied disjuncts may still carry results.
	marking StateSet
}

// Finalize validates and builds lookup structures; call once after the
// exported fields are set.
func (a *ASTA) Finalize() (*ASTA, error) {
	if a.NumStates > MaxStates {
		return nil, fmt.Errorf("asta: %d states exceeds the maximum of %d", a.NumStates, MaxStates)
	}
	a.byFrom = make([][]int32, a.NumStates)
	a.selOf = make([]labels.Set, a.NumStates)
	for i := range a.selOf {
		a.selOf[i] = labels.None
	}
	for i := range a.Trans {
		t := &a.Trans[i]
		t.down1, t.down2 = 0, 0
		t.Phi.downs(&t.down1, &t.down2)
		a.byFrom[t.From] = append(a.byFrom[t.From], int32(i))
		if t.Selecting {
			a.selOf[t.From] = a.selOf[t.From].Union(t.Guard)
		}
	}
	a.marking = a.computeMarking()
	return a, nil
}

// MustFinalize is Finalize that panics on error.
func (a *ASTA) MustFinalize() *ASTA {
	out, err := a.Finalize()
	if err != nil {
		panic(err)
	}
	return out
}

// computeMarking returns the states from which a selecting transition is
// reachable through formulas.
func (a *ASTA) computeMarking() StateSet {
	var m StateSet
	for _, t := range a.Trans {
		if t.Selecting {
			m = m.With(t.From)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range a.Trans {
			if m.Has(t.From) {
				continue
			}
			if (t.down1|t.down2)&m != 0 {
				m = m.With(t.From)
				changed = true
			}
		}
	}
	return m
}

// SizeBytes estimates the resident size of the compiled automaton:
// transitions with their guard sets and formula trees, plus the lookup
// structures built by Finalize. The byte-weighted compiled-query LRU
// weighs cache entries with it, so the estimate only needs to be
// proportionally honest, not exact.
func (a *ASTA) SizeBytes() int64 {
	const (
		formulaNode = 40 // Kind + two pointers + Child + Q, padded
		transFixed  = 64 // Transition struct less the guard's backing
	)
	b := int64(128) // ASTA header: NumStates, Top, marking, slice headers
	for i := range a.Trans {
		t := &a.Trans[i]
		b += transFixed + t.Guard.SizeBytes()
		if t.Phi != nil {
			b += int64(t.Phi.Size()) * formulaNode
		}
	}
	for _, row := range a.byFrom {
		b += 24 + 4*int64(len(row))
	}
	for _, s := range a.selOf {
		b += s.SizeBytes()
	}
	return b
}

// SelectingLabels returns the labels on which q selects.
func (a *ASTA) SelectingLabels(q State) labels.Set { return a.selOf[q] }

// Marking reports whether q's sub-automaton can mark nodes.
func (a *ASTA) Marking(q State) bool { return a.marking.Has(q) }

// TransOf returns indices of q's transitions.
func (a *ASTA) TransOf(q State) []int32 { return a.byFrom[q] }

// Size returns |δ| counted as total formula size, the measure in the
// exponential-succinctness comparison of Example C.1.
func (a *ASTA) Size() int {
	n := 0
	for _, t := range a.Trans {
		n += 1 + t.Phi.Size()
	}
	return n
}

// String renders the automaton; lt may be nil.
func (a *ASTA) String(lt *tree.LabelTable) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ASTA{states=%d top=%s\n", a.NumStates, a.Top.String())
	for _, t := range a.Trans {
		arrow := "→"
		if t.Selecting {
			arrow = "⇒"
		}
		fmt.Fprintf(&sb, "  q%d, %s %s %s\n", t.From, t.Guard.String(lt), arrow, t.Phi.String())
	}
	sb.WriteString("}")
	return sb.String()
}
