package asta_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/index"
	"repro/internal/stepwise"
	"repro/internal/tgen"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// queryBattery exercises every construct of the fragment; correctness of
// each evaluation strategy is judged against the independent step-wise
// evaluator.
var queryBattery = []string{
	"/a",
	"//a",
	"//a//b",
	"//a/b",
	"/a/b/c",
	"/a/*",
	"//*",
	"//a[b]",
	"//a[.//b]",
	"//a[b and c]",
	"//a[b or c]",
	"//a[not(b)]",
	"//a[not(.//b)]",
	"//a[b][c]",
	"//a//b[c]",
	"/a//b[c]",
	"//a[.//b and .//c]//d",
	"//a[.//b or .//c]//d",
	"//a[b and (c or d)]",
	"//a[not(b or not(c))]",
	"//a/following-sibling::b",
	"//a[following-sibling::b]",
	"//a[.//b[c or d]]",
	"//node()",
	"//text()",
	"//a/text()",
	"//a[.]",
	"//a[.//b]//b",
	"//a[not(.//b) and c]",
	"//*//*",
	"//*[b]//c",
}

var allModes = []struct {
	name string
	opt  asta.Options
}{
	{"naive", asta.Options{}},
	{"jump", asta.Options{Jump: true}},
	{"memo", asta.Options{Memo: true}},
	{"opt", asta.Options{Jump: true, Memo: true}},
	{"naive+ip", asta.Options{InfoProp: true}},
	{"opt+ip", asta.Options{Jump: true, Memo: true, InfoProp: true}},
}

func sameNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAllStrategiesAgainstStepwise is the central correctness property:
// every evaluation strategy selects exactly the node set of the
// independent step-wise oracle, on random documents, for every query of
// the battery.
func TestAllStrategiesAgainstStepwise(t *testing.T) {
	paths := make([]*xpath.Path, len(queryBattery))
	for i, q := range queryBattery {
		paths[i] = xpath.MustParse(q)
	}
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{
			Labels:   []string{"a", "b", "c", "d"},
			MaxNodes: 120,
			TextProb: 0.1,
		})
		ix := index.New(d)
		for qi, p := range paths {
			want := stepwise.Eval(d, p, stepwise.Default()).Selected
			aut, err := compile.ToASTA(p, d.Names())
			if err != nil {
				t.Logf("compile %q: %v", queryBattery[qi], err)
				return false
			}
			for _, m := range allModes {
				got := aut.Eval(d, ix, m.opt)
				if !sameNodes(got.Selected, want) {
					t.Logf("seed=%d query=%q mode=%s\n got=%v\nwant=%v",
						seed, queryBattery[qi], m.name, got.Selected, want)
					return false
				}
				if got.Accepted != (len(want) > 0) {
					t.Logf("seed=%d query=%q mode=%s acceptance mismatch", seed, queryBattery[qi], m.name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestExample41Shape(t *testing.T) {
	// Example 4.1: A_//a//b[c] has three search states (plus the
	// initial #doc state) and the exact transition shapes of the paper.
	lt := tree.NewLabelTable()
	lt.Intern("a")
	lt.Intern("b")
	lt.Intern("c")
	aut, err := compile.Compile("//a//b[c]", lt)
	if err != nil {
		t.Fatal(err)
	}
	if aut.NumStates != 4 {
		t.Errorf("states = %d, want 4 (init + one per step)", aut.NumStates)
	}
	// qI: 1 transition; each search state: match + recursion.
	if len(aut.Trans) != 7 {
		t.Errorf("transitions = %d, want 7:\n%s", len(aut.Trans), aut.String(lt))
	}
	selecting := 0
	for _, tr := range aut.Trans {
		if tr.Selecting {
			selecting++
		}
	}
	if selecting != 1 {
		t.Errorf("selecting transitions = %d, want 1", selecting)
	}
}

func TestKnownAnswers(t *testing.T) {
	// <r><a><b><c/></b><b/></a><b/><a/></r>
	b := tree.NewBuilder()
	b.Open("r")
	b.Open("a")
	b.Open("b")
	b.Open("c")
	b.Close()
	b.Close()
	b.Open("b")
	b.Close()
	b.Close()
	b.Open("b")
	b.Close()
	b.Open("a")
	b.Close()
	b.Close()
	d := b.MustFinish()
	ix := index.New(d)
	// Node ids: 0=#doc 1=r 2=a 3=b 4=c 5=b 6=b 7=a
	cases := []struct {
		query string
		want  []tree.NodeID
	}{
		{"/r", []tree.NodeID{1}},
		{"//a", []tree.NodeID{2, 7}},
		{"//a//b", []tree.NodeID{3, 5}},
		{"//b", []tree.NodeID{3, 5, 6}},
		{"//a//b[c]", []tree.NodeID{3}},
		{"//a[.//c]", []tree.NodeID{2}},
		{"//a[not(.//c)]", []tree.NodeID{7}},
		{"/r/b", []tree.NodeID{6}},
		{"//b[not(c)]", []tree.NodeID{5, 6}},
		{"//a/following-sibling::b", []tree.NodeID{6}},
		{"//c", []tree.NodeID{4}},
		{"/r/a/b/c", []tree.NodeID{4}},
		{"//x", nil},
	}
	for _, tc := range cases {
		aut, err := compile.Compile(tc.query, d.Names())
		if err != nil {
			t.Errorf("%q: %v", tc.query, err)
			continue
		}
		for _, m := range allModes {
			got := aut.Eval(d, ix, m.opt)
			if !sameNodes(got.Selected, tc.want) {
				t.Errorf("%q (%s) = %v, want %v", tc.query, m.name, got.Selected, tc.want)
			}
		}
		// Stepwise agrees too.
		sw, err := stepwise.EvalString(d, tc.query, stepwise.Default())
		if err != nil {
			t.Fatal(err)
		}
		if !sameNodes(sw.Selected, tc.want) {
			t.Errorf("stepwise %q = %v, want %v", tc.query, sw.Selected, tc.want)
		}
	}
}

// TestJumpVisitsFewer checks the headline claim: the jumping evaluator
// touches far fewer nodes than the naive one on selective queries.
func TestJumpVisitsFewer(t *testing.T) {
	// Large document with a small a(b) island among noise.
	bld := tree.NewBuilder()
	bld.Open("r")
	for i := 0; i < 2000; i++ {
		bld.Open("x")
		bld.Open("y")
		bld.Close()
		bld.Close()
	}
	bld.Open("a")
	bld.Open("b")
	bld.Close()
	bld.Close()
	bld.Close()
	d := bld.MustFinish()
	ix := index.New(d)
	aut, err := compile.Compile("//a//b", d.Names())
	if err != nil {
		t.Fatal(err)
	}
	naive := aut.Eval(d, nil, asta.Options{})
	jump := aut.Eval(d, ix, asta.Options{Jump: true})
	if !sameNodes(naive.Selected, jump.Selected) || len(jump.Selected) != 1 {
		t.Fatalf("selection mismatch: %v vs %v", naive.Selected, jump.Selected)
	}
	if naive.Stats.Visited != d.NumNodes() {
		t.Errorf("naive should visit all %d nodes, visited %d", d.NumNodes(), naive.Stats.Visited)
	}
	if jump.Stats.Visited > 10 {
		t.Errorf("jumping visited %d nodes, want <= 10 on a %d-node document",
			jump.Stats.Visited, d.NumNodes())
	}
}

// TestMemoAmortizesQ: with memoization, the number of memoized
// configurations is small and independent of document size.
func TestMemoAmortizesQ(t *testing.T) {
	small := tgen.Random(1, tgen.Config{Labels: []string{"a", "b", "c"}, MaxNodes: 200})
	big := tgen.Random(1, tgen.Config{Labels: []string{"a", "b", "c"}, MaxNodes: 4000})
	for _, q := range []string{"//a//b", "//a[.//b]//c"} {
		autS, err := compile.Compile(q, small.Names())
		if err != nil {
			t.Fatal(err)
		}
		autB, err := compile.Compile(q, big.Names())
		if err != nil {
			t.Fatal(err)
		}
		rs := autS.Eval(small, nil, asta.Options{Memo: true})
		rb := autB.Eval(big, nil, asta.Options{Memo: true})
		if rb.Stats.MemoEntries > 4*rs.Stats.MemoEntries+16 {
			t.Errorf("%q: memo entries grew with document size: %d -> %d",
				q, rs.Stats.MemoEntries, rb.Stats.MemoEntries)
		}
		if rb.Stats.MemoHits < big.NumNodes()/2 {
			t.Errorf("%q: expected most nodes served from memo, hits=%d nodes=%d",
				q, rb.Stats.MemoHits, big.NumNodes())
		}
	}
}

// TestInfoPropReducesWork: with information propagation, predicates stop
// at the first witness, reducing second-child state sets.
func TestInfoPropReducesWork(t *testing.T) {
	// b with many c children: [c] needs only the first.
	bld := tree.NewBuilder()
	bld.Open("a")
	bld.Open("b")
	for i := 0; i < 500; i++ {
		bld.Open("c")
		bld.Close()
	}
	bld.Close()
	bld.Close()
	d := bld.MustFinish()
	aut, err := compile.Compile("//a//b[c]", d.Names())
	if err != nil {
		t.Fatal(err)
	}
	plain := aut.Eval(d, nil, asta.Options{})
	ip := aut.Eval(d, nil, asta.Options{InfoProp: true})
	if !sameNodes(plain.Selected, ip.Selected) {
		t.Fatalf("info propagation changed the result")
	}
	// Both visit all nodes (no jumping), but the point of info
	// propagation is visible with jumping: the c-scan stops early.
	ix := index.New(d)
	jump := aut.Eval(d, ix, asta.Options{Jump: true})
	jumpIP := aut.Eval(d, ix, asta.Options{Jump: true, InfoProp: true})
	if !sameNodes(jump.Selected, jumpIP.Selected) {
		t.Fatalf("info propagation + jump changed the result")
	}
	if jumpIP.Stats.Visited > jump.Stats.Visited {
		t.Errorf("info propagation increased visits: %d > %d", jumpIP.Stats.Visited, jump.Stats.Visited)
	}
}

func TestStateSetOps(t *testing.T) {
	var s asta.StateSet
	s = s.With(3).With(5)
	if !s.Has(3) || !s.Has(5) || s.Has(4) {
		t.Errorf("membership wrong")
	}
	if s.Without(3).Has(3) {
		t.Errorf("Without failed")
	}
	var got []asta.State
	s.Each(func(q asta.State) { got = append(got, q) })
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Each order wrong: %v", got)
	}
	if s.String() != "{q3,q5}" {
		t.Errorf("String = %q", s.String())
	}
	if !asta.StateSet(0).IsEmpty() {
		t.Errorf("empty set not empty")
	}
}

func TestFormulaStringAndSize(t *testing.T) {
	f := asta.And(asta.Or(asta.Down1(1), asta.Down2(2)), asta.Not(asta.True()))
	if f.Size() != 6 {
		t.Errorf("Size = %d, want 6", f.Size())
	}
	if s := f.String(); s == "" {
		t.Errorf("empty String")
	}
}

func TestTooManyStates(t *testing.T) {
	a := &asta.ASTA{NumStates: asta.MaxStates + 1}
	if _, err := a.Finalize(); err == nil {
		t.Error("Finalize should reject >64 states")
	}
}

func TestCompileErrors(t *testing.T) {
	lt := tree.NewLabelTable()
	for _, q := range []string{
		"a",        // relative top-level
		"//a[/b]",  // absolute predicate path
		"//a[\x00", // parse error
	} {
		if _, err := compile.Compile(q, lt); err == nil {
			t.Errorf("Compile(%q) should fail", q)
		}
	}
}

func TestSelectingLabelsAndMarking(t *testing.T) {
	lt := tree.NewLabelTable()
	a := lt.Intern("a")
	lt.Intern("b")
	aut, err := compile.Compile("//a//b[c]", lt)
	if err != nil {
		t.Fatal(err)
	}
	marking := 0
	for q := asta.State(0); int(q) < aut.NumStates; q++ {
		if aut.Marking(q) {
			marking++
		}
	}
	// qI, q_a and q_b can mark (they reach the selecting transition);
	// the predicate state q_c cannot.
	if marking != 3 {
		t.Errorf("marking states = %d, want 3", marking)
	}
	_ = a
}

func BenchmarkEvalNaive(b *testing.B) { benchEval(b, asta.Options{}) }
func BenchmarkEvalJump(b *testing.B)  { benchEval(b, asta.Options{Jump: true}) }
func BenchmarkEvalMemo(b *testing.B)  { benchEval(b, asta.Options{Memo: true}) }
func BenchmarkEvalOpt(b *testing.B)   { benchEval(b, asta.Opt()) }
func benchEval(b *testing.B, opt asta.Options) {
	d := tgen.Random(1, tgen.Config{Labels: []string{"a", "b", "c", "d", "e"}, MaxNodes: 50000})
	ix := index.New(d)
	aut, err := compile.Compile("//a//b[c]", d.Names())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := aut.Eval(d, ix, opt)
		if i == 0 && b.N > 0 {
			_ = fmt.Sprintf("%d", len(res.Selected))
		}
	}
}
