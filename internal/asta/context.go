package asta

// Context is the reusable memory behind an evaluation: every piece of
// scratch EvalLazy used to rebuild per call — interned-set tables,
// transition rows and their recipes, jump analyses, pure label sets,
// the result arena, index cursors, append buffers — owned by one value
// that repeated evaluations recycle. The serving layers run the same
// compiled automaton against the same hot document thousands of times;
// with a warm Context those runs are allocation-free and map-free, and
// the memo world (a pure function of the automaton/document binding)
// is derived once instead of per call.
//
// A Context is bound lazily by EvalLazyCtx: a call with the same
// (automaton, document, index, options) as the previous one is warm
// and reuses everything; any mismatch rebinds from scratch in place.
// A Context must not be used concurrently, and a rope returned by
// EvalLazyCtx is valid only until the Context's next evaluation or
// Reset — release the Context (or copy the answer) first.
type Context struct {
	e evaluator
}

// NewContext returns an empty, unbound Context.
func NewContext() *Context { return &Context{} }

// Reset unbinds the Context and clears all retained evaluation state
// in place, keeping the backing storage for reuse. After Reset the
// Context behaves like a fresh one: the next EvalLazyCtx call rebinds
// and rebuilds the memo world. Use it when handing a pooled Context
// across trust boundaries (e.g. a document generation change) where
// stale memo state must be provably gone.
func (c *Context) Reset() {
	e := &c.e
	e.bound = false
	e.a, e.d, e.ix = nil, nil, nil
	e.opt = Options{}
	e.sets = e.sets[:0]
	e.rows = e.rows[:0]
	e.jumps = e.jumps[:0]
	e.jumpsDone = e.jumpsDone[:0]
	e.setTab.clear()
	e.recTab.clear()
	e.r2Tab.clear()
	e.tis.reset()
	e.i32s.reset()
	e.opsA.reset()
	e.recipes = e.recipes[:0]
	e.jumpCache = nil
	e.pure = pureSets{}
	e.cur = nil
	e.arena.reset()
	e.stats = Stats{}
}

// MemBytes estimates the Context's resident scratch bytes: the arenas
// and tables it would keep alive if pooled. Pools use it to decide
// whether a context that served a huge answer is worth retaining, and
// the serving layer surfaces the pooled total in /stats.
func (c *Context) MemBytes() int64 {
	e := &c.e
	b := e.arena.memBytes() + e.i32s.memBytes(4) + e.opsA.memBytes(12) + e.tis.memBytes()
	b += int64(cap(e.sets))*8 + int64(cap(e.rows))*24
	b += int64(cap(e.jumps))*24 + int64(cap(e.jumpsDone))
	b += e.setTab.memBytes(12) + e.recTab.memBytes(28) + e.r2Tab.memBytes(28)
	b += int64(cap(e.recipes)) * 32
	b += int64(cap(e.transBuf))*4 + int64(cap(e.opBuf))*12 + int64(cap(e.srcBuf))*8
	if e.cur != nil {
		b += e.cur.MemBytes()
	}
	return b
}

// MemoEntries reports the number of live memoized transition rows —
// how much of the memo world the binding has derived so far. Warm
// evaluations keep this stable; it is exposed for tests and stats.
func (c *Context) MemoEntries() int { return int(c.e.tis.n) }
