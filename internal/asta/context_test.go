package asta_test

import (
	"fmt"
	"testing"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/index"
	"repro/internal/tgen"
	"repro/internal/tree"
)

// equalNodes compares two materialized answers.
func equalNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestContextWarmReuseMatchesFresh is the core contract of the pooled
// memory model: re-evaluating through a warm Context — memo tables,
// interned sets, jump analyses, arenas all reused — must yield exactly
// the answer a fresh evaluation computes, for every strategy mode and
// a battery of queries, many times in a row.
func TestContextWarmReuseMatchesFresh(t *testing.T) {
	d := tgen.Random(7, tgen.Config{MaxNodes: 600, Labels: []string{"a", "b", "c", "d"}})
	ix := index.New(d)
	for _, mode := range allModes {
		t.Run(mode.name, func(t *testing.T) {
			for _, q := range queryBattery {
				aut, err := compile.Compile(q, d.Names())
				if err != nil {
					continue // outside the fragment
				}
				want := aut.Eval(d, ix, mode.opt)
				ctx := asta.NewContext()
				for round := 0; round < 4; round++ {
					res := aut.EvalLazyCtx(ctx, d, ix, mode.opt)
					got := res.List.Flatten()
					if !equalNodes(got, want.Selected) {
						t.Fatalf("%s round %d: warm answer diverged: got %d nodes, want %d",
							q, round, len(got), len(want.Selected))
					}
					if res.Accepted != want.Accepted {
						t.Fatalf("%s round %d: Accepted=%v, want %v", q, round, res.Accepted, want.Accepted)
					}
					if res.Stats.Visited != want.Stats.Visited {
						// Memo warmth must not change the traversal, only
						// the per-visit cost.
						t.Fatalf("%s round %d: visited %d, want %d",
							q, round, res.Stats.Visited, want.Stats.Visited)
					}
				}
			}
		})
	}
}

// TestContextRebindAcrossBindings drives one Context through
// interleaved automata, documents and option sets: every switch must
// rebind (discarding the previous memo world) and still produce the
// fresh-evaluation answer — the in-place version of "a pooled context
// never leaks state across documents".
func TestContextRebindAcrossBindings(t *testing.T) {
	docA := tgen.Random(11, tgen.Config{MaxNodes: 400, Labels: []string{"a", "b", "c"}})
	docB := tgen.Random(13, tgen.Config{MaxNodes: 500, Labels: []string{"a", "b", "c"}})
	ixA, ixB := index.New(docA), index.New(docB)
	queries := []string{"//a/b", "//a[.//b]//c", "//a[b and c]", "//*[b]//c"}
	ctx := asta.NewContext()
	for round := 0; round < 3; round++ {
		for qi, q := range queries {
			for di, dix := range []struct {
				d  *tree.Document
				ix *index.Index
			}{{docA, ixA}, {docB, ixB}} {
				aut, err := compile.Compile(q, dix.d.Names())
				if err != nil {
					t.Fatalf("compile %s: %v", q, err)
				}
				opt := asta.Opt()
				if (qi+di+round)%2 == 0 {
					opt = asta.Options{Memo: true} // alternate options too
				}
				want := aut.Eval(dix.d, dix.ix, opt)
				got := aut.EvalLazyCtx(ctx, dix.d, dix.ix, opt).List.Flatten()
				if !equalNodes(got, want.Selected) {
					t.Fatalf("round %d q=%s doc=%d: rebind diverged (got %d, want %d nodes)",
						round, q, di, len(got), len(want.Selected))
				}
			}
		}
	}
}

// TestContextResetForgetsBinding: after Reset the next evaluation
// rebinds from scratch (fresh memo derivation) and is still correct.
func TestContextResetForgetsBinding(t *testing.T) {
	d := tgen.Random(5, tgen.Config{MaxNodes: 300, Labels: []string{"a", "b"}})
	ix := index.New(d)
	aut, err := compile.Compile("//a[b]", d.Names())
	if err != nil {
		t.Fatal(err)
	}
	ctx := asta.NewContext()
	first := aut.EvalLazyCtx(ctx, d, ix, asta.Opt())
	entries := first.Stats.MemoEntries
	if entries == 0 {
		t.Fatal("expected memo entries on a cold run")
	}
	warm := aut.EvalLazyCtx(ctx, d, ix, asta.Opt())
	if warm.Stats.MemoEntries != 0 {
		t.Errorf("warm run derived %d memo entries, want 0", warm.Stats.MemoEntries)
	}
	ctx.Reset()
	if ctx.MemoEntries() != 0 {
		t.Errorf("Reset left %d memo rows", ctx.MemoEntries())
	}
	cold := aut.EvalLazyCtx(ctx, d, ix, asta.Opt())
	if cold.Stats.MemoEntries != entries {
		t.Errorf("post-Reset run derived %d memo entries, want %d (fresh)", cold.Stats.MemoEntries, entries)
	}
}

// TestWarmEvalAllocs pins the steady-state allocation count of a warm
// re-evaluation: after the first (binding) run, EvalLazyCtx must not
// allocate on the heap beyond the pinned ceiling — the whole point of
// the pooled memory model. A future accidental map rebuild or slice
// escape fails here instead of silently regressing latency.
func TestWarmEvalAllocs(t *testing.T) {
	d := tgen.Random(17, tgen.Config{MaxNodes: 2000, Labels: []string{"a", "b", "c", "d"}})
	ix := index.New(d)
	for _, tc := range []struct {
		mode    string
		opt     asta.Options
		ceiling float64
	}{
		// Opt is the serving path: effectively allocation-free warm.
		// (Non-memo modes are excluded: their transition rows are
		// transient per node by design — they are ablation baselines,
		// never the steady-state path.)
		{"opt", asta.Opt(), 2},
		{"memo", asta.Options{Memo: true}, 2},
	} {
		t.Run(tc.mode, func(t *testing.T) {
			for _, q := range []string{"//a/b", "//a[.//b]//c", "//a[b and c]"} {
				aut, err := compile.Compile(q, d.Names())
				if err != nil {
					t.Fatal(err)
				}
				ctx := asta.NewContext()
				aut.EvalLazyCtx(ctx, d, ix, tc.opt) // bind + warm the arenas
				aut.EvalLazyCtx(ctx, d, ix, tc.opt)
				got := testing.AllocsPerRun(50, func() {
					aut.EvalLazyCtx(ctx, d, ix, tc.opt)
				})
				if got > tc.ceiling {
					t.Errorf("%s %s: warm EvalLazyCtx allocates %.1f/op, ceiling %.0f",
						tc.mode, q, got, tc.ceiling)
				}
			}
		})
	}
}

// TestWarmEvalFasterPath sanity-checks (without timing assertions, to
// stay hermetic) that warm evaluations actually reuse the memo world:
// all transition lookups on a warm run are hits.
func TestWarmEvalFasterPath(t *testing.T) {
	d := tgen.Random(23, tgen.Config{MaxNodes: 1500, Labels: []string{"a", "b", "c"}})
	ix := index.New(d)
	aut, err := compile.Compile("//a[.//b]//c", d.Names())
	if err != nil {
		t.Fatal(err)
	}
	ctx := asta.NewContext()
	cold := aut.EvalLazyCtx(ctx, d, ix, asta.Opt())
	warm := aut.EvalLazyCtx(ctx, d, ix, asta.Opt())
	if warm.Stats.MemoEntries != 0 {
		t.Errorf("warm run created %d memo entries", warm.Stats.MemoEntries)
	}
	if warm.Stats.MemoHits <= cold.Stats.MemoHits {
		t.Errorf("warm hits %d not above cold hits %d (memo world not reused?)",
			warm.Stats.MemoHits, cold.Stats.MemoHits)
	}
}

// The evaluator's open-addressed tables replace Go maps; exercise the
// interning table through evaluation at scale: many distinct state
// sets force growth, and growth must preserve every binding (answers
// stay correct). Wide alternations produce the set diversity.
func TestContextTableGrowthCorrect(t *testing.T) {
	d := tgen.Random(29, tgen.Config{MaxNodes: 1200, Labels: []string{"a", "b", "c", "d", "e", "f", "g", "h"}})
	ix := index.New(d)
	// A query with many predicate branches → many live state subsets.
	q := "//a[.//b or .//c][.//d or .//e]//f"
	aut, err := compile.Compile(q, d.Names())
	if err != nil {
		t.Fatal(err)
	}
	want := aut.Eval(d, ix, asta.Opt())
	ctx := asta.NewContext()
	for i := 0; i < 3; i++ {
		got := aut.EvalLazyCtx(ctx, d, ix, asta.Opt()).List.Flatten()
		if !equalNodes(got, want.Selected) {
			t.Fatalf("round %d: answer diverged (%d vs %d nodes)", i, len(got), len(want.Selected))
		}
	}
}

func ExampleASTA_EvalLazyCtx() {
	d := tgen.Star("root", "leaf", 3)
	aut, _ := compile.Compile("//leaf", d.Names())
	ctx := asta.NewContext()
	ix := index.New(d)
	for i := 0; i < 2; i++ {
		res := aut.EvalLazyCtx(ctx, d, ix, asta.Opt())
		fmt.Println(res.List.Distinct())
	}
	// Output:
	// 3
	// 3
}
