package asta

import (
	"repro/internal/index"
	"repro/internal/tree"
)

// Options selects the evaluation strategy, matching the four series of
// Figure 4: zero value = "Naive Eval."; Jump = "Jumping Eval."; Memo =
// "Memo. Eval."; both = "Opt. Eval.". InfoProp enables the information
// propagation of §4.4 (restricting the states verified in the second
// child using the first child's outcome).
type Options struct {
	Jump     bool
	Memo     bool
	InfoProp bool
}

// Opt returns the fully optimized configuration.
func Opt() Options { return Options{Jump: true, Memo: true, InfoProp: true} }

// Stats reports evaluator effort, the quantities tabulated in Figure 3.
type Stats struct {
	// Visited counts the nodes the run function touched (Figure 3,
	// lines (2)/(3)).
	Visited int
	// MemoEntries counts distinct memoized configurations created by
	// this evaluation (Figure 3, line (4): nodes that paid the |Q|
	// factor). A warm Context re-evaluation reports ~0 here — the
	// entries already exist — with the hits showing up in MemoHits.
	MemoEntries int
	// MemoHits counts constant-time lookups served by the tables.
	MemoHits int
	// Jumps counts index jump operations performed.
	Jumps int
}

// Result is the outcome of an ASTA evaluation.
type Result struct {
	// Accepted reports whether some run reaches a top state at the root.
	Accepted bool
	// Selected is A(t) in document order, duplicate-free. EvalLazy
	// leaves it nil; use List (or Walk) to consume the answer without
	// materializing it.
	Selected []tree.NodeID
	// List is the raw result rope in concatenation order, possibly
	// with duplicates. EvalLazy sets it for non-empty answers (nil
	// means empty); Eval clears it after flattening so materialized
	// results do not pin the evaluation arena. The rope shares that
	// arena: for EvalLazy it stays valid as long as the Result, for
	// EvalLazyCtx only until the Context's next evaluation or Reset.
	List *NodeList
	// Stats reports effort counters.
	Stats Stats
}

// Walk calls f for each selected node in document order without
// duplicates, stopping early when f returns false. When the rope is
// already in document order (the common case — evaluation emits nodes
// in preorder) nothing is materialized; otherwise it falls back to one
// Flatten.
func (r *Result) Walk(f func(tree.NodeID) bool) {
	if r.List == nil {
		for _, v := range r.Selected {
			if !f(v) {
				return
			}
		}
		return
	}
	if r.List.IsSorted() {
		last, started := tree.Nil, false
		r.List.Walk(func(v tree.NodeID) bool {
			if started && v == last {
				return true
			}
			last, started = v, true
			return f(v)
		})
		return
	}
	for _, v := range r.List.Flatten() {
		if !f(v) {
			return
		}
	}
}

// Eval runs the automaton over the document with the given options and
// materializes the answer. The index may be nil when Options.Jump is
// false.
func (a *ASTA) Eval(d *tree.Document, ix *index.Index, opt Options) Result {
	return a.EvalCtx(NewContext(), d, ix, opt)
}

// EvalCtx is Eval against a reusable Context: the materialized answer
// does not reference the Context, so the Context may be reused (or
// pooled) immediately after the call returns.
func (a *ASTA) EvalCtx(c *Context, d *tree.Document, ix *index.Index, opt Options) Result {
	res := a.EvalLazyCtx(c, d, ix, opt)
	res.Selected = res.List.flattenInto(&c.e.walkStack)
	// Drop the rope: materialized callers read Selected, and keeping
	// the rope alive would pin every arena chunk it reaches.
	res.List = nil
	return res
}

// EvalLazy is Eval without the final Flatten: the answer is returned as
// the rope Result.List, to be consumed by Walk or a cursor. This is the
// entry point of the streaming path — a ≥100k-node answer never exists
// as one slice. Each call evaluates in a fresh Context, so the rope
// stays valid indefinitely; repeated evaluations of the same automaton
// should use EvalLazyCtx with a reused Context instead.
func (a *ASTA) EvalLazy(d *tree.Document, ix *index.Index, opt Options) Result {
	return a.EvalLazyCtx(NewContext(), d, ix, opt)
}

// EvalLazyCtx is EvalLazy against a reusable Context. The first call
// binds the Context to (automaton, document, options) and builds the
// memo world; later calls with the same binding reuse it — the
// interned-set table, transition rows, recipes and jump analyses
// persist (they are pure functions of the binding), while the result
// arena and index cursors reset in place. A warm call is therefore
// allocation-free in steady state and skips all memo derivation.
//
// The returned rope (Result.List) lives in the Context's arena: it is
// valid only until the next EvalLazyCtx/Reset on the same Context.
func (a *ASTA) EvalLazyCtx(c *Context, d *tree.Document, ix *index.Index, opt Options) Result {
	e := &c.e
	if !e.bound || e.a != a || e.d != d || e.ix != ix || e.opt != opt {
		e.rebind(a, d, ix, opt)
	} else {
		e.resetEval()
	}
	var g RSet
	e.evalChild(d.Root(), a.Top, e.internSet(a.Top), &g)
	res := Result{Stats: e.stats}
	acc := g.Sat & a.Top
	if acc == 0 {
		return res
	}
	res.Accepted = true
	var all *NodeList
	q := State(0)
	for rest := acc; rest != 0; rest >>= 1 {
		if rest&1 != 0 {
			all = rawConcat(all, g.list(q, &e.arena), &e.arena)
		}
		q++
	}
	// Accumulation concatenated in O(1) without balancing; rebuild once
	// into the balanced chunked form so every rope that leaves the
	// evaluator iterates and seeks in O(log n).
	res.List = rebalance(all, &e.arena, &e.walkStack)
	return res
}

// transInfo is the memoized outcome of Line 3 of Algorithm 4.1: the
// active transitions for (r, label) and the child state sets r1, r2
// (their interned ids when memoizing). In memo mode rows live in the
// Context's tiStore under dense ids; the eval_trans recipes and r2
// restrictions are keyed by that id in the Context-level open tables,
// so a transInfo itself carries no per-row maps.
type transInfo struct {
	trans      []int32
	r1, r2     StateSet
	r1ID, r2ID int32
	// id is the dense tiStore id (-1 for transient rows in non-memo
	// modes, which also disables the recipe/r2 tables).
	id int32
}

type r2entry struct {
	r2   StateSet
	r2ID int32
}

// op is one step of a recipe: how a fired transition contributes to Γ.
type opKind int8

const (
	opMark  opKind = iota // add the current node to Γ(target)
	opLeft                // union Γ1(src) into Γ(target)
	opRight               // union Γ2(src) into Γ(target)
)

type op struct {
	target State
	kind   opKind
	src    State
}

// recipe is the memoized outcome of eval_trans for fixed (active
// transitions, sat1, sat2): the satisfied states and the Γ-building
// operations, which are position-independent (only the node id varies).
type recipe struct {
	sat StateSet
	ops []op
}

// evaluator is the complete evaluation state. It lives inside a Context
// and splits into two lifetimes: memo state (interned sets, transition
// rows, recipes, jump analyses, pure sets — pure functions of the
// bound automaton/document) survives across warm evaluations, while
// per-evaluation scratch (result arena, index cursors, stats) resets
// in place at the start of every run.
type evaluator struct {
	a   *ASTA
	d   *tree.Document
	ix  *index.Index
	opt Options
	// bound is set once the evaluator has been initialized for the
	// (a, d, ix, opt) above; a mismatch on the next run triggers a full
	// rebind instead of a warm reset.
	bound bool

	// Memo structures: state sets are interned to dense ids via an
	// open-addressed table; per-set rows are label-indexed slices of
	// transInfo ids for constant-time transition lookup.
	setTab    openTable[StateSet, int32]
	sets      []StateSet
	rows      [][]int32
	jumps     []jumpInfo
	jumpsDone []bool
	numLabels int

	// Flat storage behind the memo structures: transInfo rows, their
	// trans slices and label rows, recipes and their op lists. All of
	// it is retained across warm evaluations and rewound on rebind.
	tis     tiStore
	i32s    sliceArena[int32]
	opsA    sliceArena[op]
	recipes []recipe
	recTab  openTable[recipeKey, int32]
	r2Tab   openTable[r2Key, r2entry]

	pure  pureSets
	arena cellArena
	cur   *index.Cursors
	stats Stats

	// Non-memo fallback cache of jump analyses (tiny: one per distinct
	// descent set).
	jumpCache map[StateSet]jumpInfo

	// Reusable scratch buffers (valid only within one call frame).
	transBuf  []int32
	opBuf     []op
	srcBuf    []srcRef
	walkStack []*NodeList
	// scratchRec is the transient recipe slot for non-memo modes: it
	// aliases opBuf and is consumed by applyTrans before any further
	// computeRecipe call can clobber it.
	scratchRec recipe
}

// rebind points the evaluator at a new (automaton, document, options)
// binding: all memo state is cleared in place (backing storage is
// kept) and the per-binding analyses are rebuilt.
func (e *evaluator) rebind(a *ASTA, d *tree.Document, ix *index.Index, opt Options) {
	e.a, e.d, e.ix, e.opt = a, d, ix, opt
	e.bound = true
	e.sets = e.sets[:0]
	e.rows = e.rows[:0]
	e.jumps = e.jumps[:0]
	e.jumpsDone = e.jumpsDone[:0]
	e.tis.reset()
	e.i32s.reset()
	e.i32s.chunkSize = i32Chunk
	e.opsA.reset()
	e.opsA.chunkSize = opChunk
	e.recipes = e.recipes[:0]
	e.jumpCache = nil
	e.numLabels = 0
	if opt.Memo {
		e.setTab.clear()
		e.recTab.clear()
		if opt.InfoProp {
			e.r2Tab.clear()
		}
		e.numLabels = d.Names().Size()
	}
	if opt.Jump {
		e.initPureSets()
		// Rebinding to a different automaton over the same document
		// (pool churn on a hot document) keeps the cursors: they
		// depend only on the index.
		if e.cur == nil || e.cur.Index() != ix {
			e.cur = ix.NewCursors()
		} else {
			e.cur.Reset()
		}
	} else {
		e.cur = nil
	}
	e.arena.reset()
	e.stats = Stats{}
}

// resetEval prepares a warm re-evaluation: memo state is kept, the
// result arena and cursors rewind in place, stats restart. O(touched)
// for the cursors, O(arena chunks) for the arena — no allocation.
func (e *evaluator) resetEval() {
	e.arena.reset()
	if e.cur != nil {
		e.cur.Reset()
	}
	e.stats = Stats{}
}

// internSet returns the dense id of a state set, registering it on first
// sight. Only used in memo mode; returns -1 otherwise.
func (e *evaluator) internSet(r StateSet) int32 {
	if !e.opt.Memo {
		return -1
	}
	if id, ok := e.setTab.get(r); ok {
		return id
	}
	id := int32(len(e.sets))
	e.setTab.put(r, id)
	e.sets = append(e.sets, r)
	e.rows = append(e.rows, nil)
	e.jumps = append(e.jumps, jumpInfo{})
	e.jumpsDone = append(e.jumpsDone, false)
	return id
}

// eval is Algorithm 4.1 proper: evaluate node v under the incoming state
// set r (with interned id rID in memo mode, else -1), filling out —
// passed down instead of returned so the (large) result sets are not
// copied through every stack frame.
func (e *evaluator) eval(v tree.NodeID, r StateSet, rID int32, out *RSet) {
	e.stats.Visited++
	l := e.d.Label(v)
	ti := e.lookupTrans(r, rID, l)
	if len(ti.trans) == 0 {
		return
	}
	var g1, g2 RSet
	e.evalChild(e.d.BinaryLeft(v), ti.r1, ti.r1ID, &g1)
	r2, r2ID := ti.r2, ti.r2ID
	if e.opt.InfoProp {
		r2, r2ID = e.lookupR2(ti, g1.Sat)
	}
	e.evalChild(e.d.BinaryRight(v), r2, r2ID, &g2)
	e.applyTrans(ti, v, &g1, &g2, out)
}

// evalChild evaluates the subtree at c (which may be the # leaf Nil)
// under r, applying the relevant-node jumps of §4.3 when enabled. out
// must be empty on entry.
func (e *evaluator) evalChild(c tree.NodeID, r StateSet, rID int32, out *RSet) {
	if c == tree.Nil || r == 0 {
		return
	}
	if !e.opt.Jump {
		e.eval(c, r, rID, out)
		return
	}
	ji := e.lookupJump(r, rID)
	if ji.kind != jumpNone && ji.essential.Contains(e.d.Label(c)) {
		e.eval(c, r, rID, out)
		return
	}
	switch ji.kind {
	case jumpTopMost:
		e.jumpTopMostRegion(c, r, rID, ji, out)
	case jumpRightPath:
		e.stats.Jumps++
		u := e.cur.Rt(c, ji.essential)
		if u == index.Nil {
			return
		}
		e.eval(u, r, rID, out)
	case jumpLeftPath:
		e.stats.Jumps++
		u := e.ix.Lt(c, ji.essential)
		if u == index.Nil {
			return
		}
		e.eval(u, r, rID, out)
	default:
		e.eval(c, r, rID, out)
	}
}

// jumpTopMostRegion evaluates a skipped region by enumerating its
// top-most essential nodes (dt/ft jumps) and unioning their results —
// sound because every state of the set loops with ↓1 q ∨ ↓2 q on the
// skipped labels. With information propagation, states that are already
// satisfied by an earlier part of the region and cannot mark nodes are
// dropped for the remaining enumeration — the "only one witness" effect
// that makes the Q13-Q15 predicates of Figure 3 nearly free.
func (e *evaluator) jumpTopMostRegion(c tree.NodeID, r StateSet, rID int32, ji jumpInfo, out *RSet) {
	ids, ok := ji.essential.Finite()
	if !ok {
		e.eval(c, r, rID, out)
		return
	}
	e.stats.Jumps++
	end := e.ix.BinEnd(c)
	after := c
	for {
		best := tree.Nil
		for _, l := range ids {
			if u := e.cur.NextAfter(l, after); u != tree.Nil && u <= end &&
				(best == tree.Nil || u < best) {
				best = u
			}
		}
		if best == tree.Nil {
			return
		}
		var g RSet
		e.eval(best, r, rID, &g)
		out.union(&g, &e.arena)
		after = e.ix.BinEnd(best)
		if !e.opt.InfoProp {
			continue
		}
		// Drop satisfied, non-marking states: the region's disjunction
		// for them is already true and they carry no result lists.
		pruned := r &^ (out.Sat &^ e.a.marking)
		if pruned == r {
			continue
		}
		if pruned == 0 {
			return
		}
		r = pruned
		rID = e.internSet(r)
		nji := e.lookupJump(r, rID)
		if nji.kind == jumpTopMost {
			if nids, ok := nji.essential.Finite(); ok {
				ids = nids
			}
		}
	}
}

// lookupTrans computes (or recalls) Line 3: active transitions and child
// state sets.
func (e *evaluator) lookupTrans(r StateSet, rID int32, l tree.LabelID) *transInfo {
	if !e.opt.Memo {
		return e.computeTransFor(r, l, false)
	}
	row := e.rows[rID]
	if row == nil {
		row = e.newRow(e.rowLen(l))
		e.rows[rID] = row
	} else if int(l) >= len(row) {
		grown := e.newRow(int(l) + 1)
		copy(grown, row)
		row = grown
		e.rows[rID] = row
	}
	if id := row[l]; id >= 0 {
		e.stats.MemoHits++
		return e.tis.at(id)
	}
	ti := e.computeTransFor(r, l, true)
	row[l] = ti.id
	e.stats.MemoEntries++
	return ti
}

// rowLen sizes a fresh label row: the document's label universe, or
// past it for out-of-universe labels (defensive; labels normally come
// from the document itself).
func (e *evaluator) rowLen(l tree.LabelID) int {
	n := e.numLabels
	if int(l) >= n {
		n = int(l) + 1
	}
	return n
}

// newRow carves a label row (transInfo ids, -1 = not yet computed) from
// the int32 arena.
func (e *evaluator) newRow(n int) []int32 {
	row := e.i32s.carveFull(n)
	for i := range row {
		row[i] = -1
	}
	return row
}

// computeTransFor evaluates Line 3 from scratch for one label, paying
// the |Q| factor — the naive cost model. With memo set the row is
// stored in the tiStore with its trans slice in the arena and the child
// sets interned; without it the row is transient (heap, GC'd with the
// evaluation).
func (e *evaluator) computeTransFor(r StateSet, l tree.LabelID, memo bool) *transInfo {
	var ti *transInfo
	if memo {
		ti = e.tis.new()
	} else {
		ti = &transInfo{id: -1, r1ID: -1, r2ID: -1}
	}
	buf := e.transBuf[:0]
	rest := r
	for q := State(0); rest != 0; q++ {
		if rest&1 != 0 {
			for _, idx := range e.a.byFrom[q] {
				t := &e.a.Trans[idx]
				if t.Guard.Contains(l) {
					buf = append(buf, idx)
					ti.r1 |= t.down1
					ti.r2 |= t.down2
				}
			}
		}
		rest >>= 1
	}
	e.transBuf = buf
	if memo {
		ti.trans = e.i32s.copyOf(buf)
		ti.r1ID = e.internSet(ti.r1)
		ti.r2ID = e.internSet(ti.r2)
	} else {
		ti.trans = append([]int32(nil), buf...)
	}
	return ti
}

// lookupR2 applies information propagation: given the satisfied states
// of the first child, restrict the states verified in the second child
// to those still needed for a transition's value or for carrying marked
// nodes.
func (e *evaluator) lookupR2(ti *transInfo, sat1 StateSet) (StateSet, int32) {
	if ti.id >= 0 {
		k := r2Key{ti: ti.id, s1: sat1}
		if ent, ok := e.r2Tab.get(k); ok {
			e.stats.MemoHits++
			return ent.r2, ent.r2ID
		}
		r2 := e.computeR2(ti, sat1)
		ent := r2entry{r2: r2, r2ID: e.internSet(r2)}
		e.r2Tab.put(k, ent)
		e.stats.MemoEntries++
		return ent.r2, ent.r2ID
	}
	return e.computeR2(ti, sat1), -1
}

func (e *evaluator) computeR2(ti *transInfo, sat1 StateSet) StateSet {
	var r2 StateSet
	for _, idx := range ti.trans {
		t := &e.a.Trans[idx]
		tv, need := e.partial(t.Phi, sat1)
		if tv == pF {
			continue // transition cannot fire; its ↓2 moves are dead
		}
		r2 |= need
	}
	return r2
}

// Three-valued logic for partial formula evaluation.
const (
	pF int8 = -1
	pU int8 = 0
	pT int8 = 1
)

// partial evaluates φ knowing only the first child's satisfied states.
// It returns the three-valued outcome and the ↓2 states still needed:
// all undetermined atoms, plus — when the value is already decided — the
// atoms that can still contribute marked nodes (states whose
// sub-automaton selects; existential semantics prunes the rest, which is
// how "only one witness is checked", §4.4).
func (e *evaluator) partial(f *Formula, sat1 StateSet) (int8, StateSet) {
	switch f.Kind {
	case FTrue:
		return pT, 0
	case FFalse:
		return pF, 0
	case FDown:
		if f.Child == 1 {
			if sat1.Has(f.Q) {
				return pT, 0
			}
			return pF, 0
		}
		return pU, StateSet(0).With(f.Q)
	case FNot:
		tv, need := e.partial(f.Left, sat1)
		if tv != pU {
			// Value decided; rule (not) discards marks, so nothing
			// below is needed anymore.
			return -tv, 0
		}
		return pU, need
	case FAnd:
		t1, n1 := e.partial(f.Left, sat1)
		t2, n2 := e.partial(f.Right, sat1)
		switch {
		case t1 == pF || t2 == pF:
			return pF, 0
		case t1 == pT && t2 == pT:
			return pT, (n1 | n2) & e.a.marking
		case t1 == pT:
			return t2, n2 | n1&e.a.marking
		case t2 == pT:
			return t1, n1 | n2&e.a.marking
		default:
			return pU, n1 | n2
		}
	case FOr:
		t1, n1 := e.partial(f.Left, sat1)
		t2, n2 := e.partial(f.Right, sat1)
		switch {
		case t1 == pT || t2 == pT:
			return pT, (n1 | n2) & e.a.marking
		case t1 == pF:
			return t2, n2
		case t2 == pF:
			return t1, n1
		default:
			return pU, n1 | n2
		}
	}
	return pF, 0
}

// applyTrans is eval_trans (Definition C.3): evaluate the active
// transitions' formulas under the children's results and build Γ.
func (e *evaluator) applyTrans(ti *transInfo, v tree.NodeID, g1, g2, out *RSet) {
	var rec *recipe
	if ti.id >= 0 {
		k := recipeKey{ti: ti.id, s1: g1.Sat, s2: g2.Sat}
		if idx, ok := e.recTab.get(k); ok {
			e.stats.MemoHits++
			rec = &e.recipes[idx]
		} else {
			rec = e.computeRecipe(ti, g1.Sat, g2.Sat, true)
			e.recTab.put(k, int32(len(e.recipes)-1))
			e.stats.MemoEntries++
		}
	} else {
		rec = e.computeRecipe(ti, g1.Sat, g2.Sat, false)
	}
	out.Sat = rec.sat
	for _, o := range rec.ops {
		switch o.kind {
		case opMark:
			out.addNode(o.target, v, &e.arena)
		case opLeft:
			out.add(o.target, g1.list(o.src, &e.arena), &e.arena)
		case opRight:
			out.add(o.target, g2.list(o.src, &e.arena), &e.arena)
		}
	}
}

// computeRecipe evaluates every active transition's formula against the
// satisfied sets and records which result lists flow where. The recipe
// depends only on (active transitions, sat1, sat2) — never on the node —
// which is what makes eval_trans memoizable. With store set the recipe
// is appended to the Context's recipe slice with its ops in the op
// arena (the caller indexes it into the recipe table); otherwise the
// returned recipe aliases the scratch buffers and is transient.
func (e *evaluator) computeRecipe(ti *transInfo, sat1, sat2 StateSet, store bool) *recipe {
	ops := e.opBuf[:0]
	var sat StateSet
	for _, idx := range ti.trans {
		t := &e.a.Trans[idx]
		scratch := e.srcBuf[:0]
		ok := evalFormula(t.Phi, sat1, sat2, &scratch)
		e.srcBuf = scratch
		if !ok {
			continue
		}
		sat = sat.With(t.From)
		if t.Selecting {
			ops = append(ops, op{target: t.From, kind: opMark})
		}
		for _, s := range scratch {
			kind := opLeft
			if s.side == 2 {
				kind = opRight
			}
			ops = append(ops, op{target: t.From, kind: kind, src: s.q})
		}
	}
	e.opBuf = ops
	if store {
		e.recipes = append(e.recipes, recipe{sat: sat, ops: e.opsA.copyOf(ops)})
		return &e.recipes[len(e.recipes)-1]
	}
	e.scratchRec = recipe{sat: sat, ops: ops}
	return &e.scratchRec
}

type srcRef struct {
	side int8
	q    State
}

// evalFormula implements the judgement of Figure 7: it returns the truth
// value and appends to ops the ↓i q atoms that evaluated to true in live
// (non-discarded) positions — exactly the result lists the rules union.
func evalFormula(f *Formula, sat1, sat2 StateSet, ops *[]srcRef) bool {
	switch f.Kind {
	case FTrue:
		return true
	case FFalse:
		return false
	case FDown:
		sat := sat1
		if f.Child == 2 {
			sat = sat2
		}
		if sat.Has(f.Q) {
			*ops = append(*ops, srcRef{f.Child, f.Q})
			return true
		}
		return false
	case FNot:
		// Rule (not): value is inverted, collected lists are dropped.
		mark := len(*ops)
		b := evalFormula(f.Left, sat1, sat2, ops)
		*ops = (*ops)[:mark]
		return !b
	case FAnd:
		mark := len(*ops)
		if !evalFormula(f.Left, sat1, sat2, ops) {
			*ops = (*ops)[:mark]
			return false
		}
		if !evalFormula(f.Right, sat1, sat2, ops) {
			*ops = (*ops)[:mark]
			return false
		}
		return true
	case FOr:
		// Rule (or) unions the lists of all true disjuncts; a false
		// disjunct leaves no ops behind (every false case truncates its
		// own contribution), so no compaction is needed.
		b1 := evalFormula(f.Left, sat1, sat2, ops)
		mid := len(*ops)
		b2 := evalFormula(f.Right, sat1, sat2, ops)
		if !b2 {
			*ops = (*ops)[:mid]
		}
		return b1 || b2
	}
	return false
}
