package asta

import (
	"repro/internal/index"
	"repro/internal/tree"
)

// Options selects the evaluation strategy, matching the four series of
// Figure 4: zero value = "Naive Eval."; Jump = "Jumping Eval."; Memo =
// "Memo. Eval."; both = "Opt. Eval.". InfoProp enables the information
// propagation of §4.4 (restricting the states verified in the second
// child using the first child's outcome).
type Options struct {
	Jump     bool
	Memo     bool
	InfoProp bool
}

// Opt returns the fully optimized configuration.
func Opt() Options { return Options{Jump: true, Memo: true, InfoProp: true} }

// Stats reports evaluator effort, the quantities tabulated in Figure 3.
type Stats struct {
	// Visited counts the nodes the run function touched (Figure 3,
	// lines (2)/(3)).
	Visited int
	// MemoEntries counts distinct memoized configurations (Figure 3,
	// line (4): nodes that paid the |Q| factor).
	MemoEntries int
	// MemoHits counts constant-time lookups served by the tables.
	MemoHits int
	// Jumps counts index jump operations performed.
	Jumps int
}

// Result is the outcome of an ASTA evaluation.
type Result struct {
	// Accepted reports whether some run reaches a top state at the root.
	Accepted bool
	// Selected is A(t) in document order, duplicate-free. EvalLazy
	// leaves it nil; use List (or Walk) to consume the answer without
	// materializing it.
	Selected []tree.NodeID
	// List is the raw result rope in concatenation order, possibly
	// with duplicates. EvalLazy sets it for non-empty answers (nil
	// means empty); Eval clears it after flattening so materialized
	// results do not pin the evaluation arena. The rope shares that
	// arena and stays valid for as long as the Result references it.
	List *NodeList
	// Stats reports effort counters.
	Stats Stats
}

// Walk calls f for each selected node in document order without
// duplicates, stopping early when f returns false. When the rope is
// already in document order (the common case — evaluation emits nodes
// in preorder) nothing is materialized; otherwise it falls back to one
// Flatten.
func (r *Result) Walk(f func(tree.NodeID) bool) {
	if r.List == nil {
		for _, v := range r.Selected {
			if !f(v) {
				return
			}
		}
		return
	}
	if r.List.IsSorted() {
		last, started := tree.Nil, false
		r.List.Walk(func(v tree.NodeID) bool {
			if started && v == last {
				return true
			}
			last, started = v, true
			return f(v)
		})
		return
	}
	for _, v := range r.List.Flatten() {
		if !f(v) {
			return
		}
	}
}

// Eval runs the automaton over the document with the given options and
// materializes the answer. The index may be nil when Options.Jump is
// false.
func (a *ASTA) Eval(d *tree.Document, ix *index.Index, opt Options) Result {
	res := a.EvalLazy(d, ix, opt)
	res.Selected = res.List.Flatten()
	// Drop the rope: materialized callers read Selected, and keeping
	// the rope alive would pin every arena chunk it reaches.
	res.List = nil
	return res
}

// EvalLazy is Eval without the final Flatten: the answer is returned as
// the rope Result.List, to be consumed by Walk or a cursor. This is the
// entry point of the streaming path — a ≥100k-node answer never exists
// as one slice.
func (a *ASTA) EvalLazy(d *tree.Document, ix *index.Index, opt Options) Result {
	e := &evaluator{a: a, d: d, ix: ix, opt: opt}
	if opt.Memo {
		e.setIDs = make(map[StateSet]int32, 16)
		e.numLabels = d.Names().Size()
	}
	if opt.Jump {
		e.initPureSets()
		e.cur = ix.NewCursors()
	}
	var g RSet
	e.evalChild(d.Root(), a.Top, e.internSet(a.Top), &g)
	res := Result{Stats: e.stats}
	acc := g.Sat & a.Top
	if acc == 0 {
		return res
	}
	res.Accepted = true
	var all *NodeList
	acc.Each(func(q State) {
		all = rawConcat(all, g.list(q, &e.arena), &e.arena)
	})
	// Accumulation concatenated in O(1) without balancing; rebuild once
	// into the balanced chunked form so every rope that leaves the
	// evaluator iterates and seeks in O(log n).
	res.List = rebalance(all, &e.arena)
	return res
}

// transInfo is the memoized outcome of Line 3 of Algorithm 4.1: the
// active transitions for (r, label), the child state sets r1, r2 (their
// interned ids when memoizing), and the eval_trans recipes keyed by the
// children's satisfied sets.
type transInfo struct {
	trans      []int32
	r1, r2     StateSet
	r1ID, r2ID int32
	// recipes: (sat1, sat2) → recipe; only allocated in memo mode.
	recipes map[satPair]*recipe
	// r2memo: sat1 → restricted r2 (information propagation).
	r2memo map[StateSet]r2entry
}

type satPair struct{ s1, s2 StateSet }

type r2entry struct {
	r2   StateSet
	r2ID int32
}

// op is one step of a recipe: how a fired transition contributes to Γ.
type opKind int8

const (
	opMark  opKind = iota // add the current node to Γ(target)
	opLeft                // union Γ1(src) into Γ(target)
	opRight               // union Γ2(src) into Γ(target)
)

type op struct {
	target State
	kind   opKind
	src    State
}

// recipe is the memoized outcome of eval_trans for fixed (active
// transitions, sat1, sat2): the satisfied states and the Γ-building
// operations, which are position-independent (only the node id varies).
type recipe struct {
	sat StateSet
	ops []op
}

type evaluator struct {
	a   *ASTA
	d   *tree.Document
	ix  *index.Index
	opt Options

	// Memo structures: state sets are interned to dense ids; per-set
	// rows are indexed by label for constant-time transition lookup.
	setIDs    map[StateSet]int32
	sets      []StateSet
	rows      [][]*transInfo
	jumps     []jumpInfo
	jumpsDone []bool
	numLabels int

	pure  pureSets
	arena cellArena
	cur   *index.Cursors
	stats Stats

	// Non-memo fallback cache of jump analyses (tiny: one per distinct
	// descent set).
	jumpCache map[StateSet]jumpInfo
}

// internSet returns the dense id of a state set, registering it on first
// sight. Only used in memo/jump modes; cheap map hit otherwise.
func (e *evaluator) internSet(r StateSet) int32 {
	if e.setIDs == nil {
		return -1
	}
	if id, ok := e.setIDs[r]; ok {
		return id
	}
	id := int32(len(e.sets))
	e.setIDs[r] = id
	e.sets = append(e.sets, r)
	e.rows = append(e.rows, nil)
	e.jumps = append(e.jumps, jumpInfo{})
	e.jumpsDone = append(e.jumpsDone, false)
	return id
}

// eval is Algorithm 4.1 proper: evaluate node v under the incoming state
// set r (with interned id rID in memo mode, else -1), filling out —
// passed down instead of returned so the (large) result sets are not
// copied through every stack frame.
func (e *evaluator) eval(v tree.NodeID, r StateSet, rID int32, out *RSet) {
	e.stats.Visited++
	l := e.d.Label(v)
	ti := e.lookupTrans(r, rID, l)
	if len(ti.trans) == 0 {
		return
	}
	var g1, g2 RSet
	e.evalChild(e.d.BinaryLeft(v), ti.r1, ti.r1ID, &g1)
	r2, r2ID := ti.r2, ti.r2ID
	if e.opt.InfoProp {
		r2, r2ID = e.lookupR2(ti, g1.Sat)
	}
	e.evalChild(e.d.BinaryRight(v), r2, r2ID, &g2)
	e.applyTrans(ti, v, &g1, &g2, out)
}

// evalChild evaluates the subtree at c (which may be the # leaf Nil)
// under r, applying the relevant-node jumps of §4.3 when enabled. out
// must be empty on entry.
func (e *evaluator) evalChild(c tree.NodeID, r StateSet, rID int32, out *RSet) {
	if c == tree.Nil || r == 0 {
		return
	}
	if !e.opt.Jump {
		e.eval(c, r, rID, out)
		return
	}
	ji := e.lookupJump(r, rID)
	if ji.kind != jumpNone && ji.essential.Contains(e.d.Label(c)) {
		e.eval(c, r, rID, out)
		return
	}
	switch ji.kind {
	case jumpTopMost:
		e.jumpTopMostRegion(c, r, rID, ji, out)
	case jumpRightPath:
		e.stats.Jumps++
		u := e.cur.Rt(c, ji.essential)
		if u == index.Nil {
			return
		}
		e.eval(u, r, rID, out)
	case jumpLeftPath:
		e.stats.Jumps++
		u := e.ix.Lt(c, ji.essential)
		if u == index.Nil {
			return
		}
		e.eval(u, r, rID, out)
	default:
		e.eval(c, r, rID, out)
	}
}

// jumpTopMostRegion evaluates a skipped region by enumerating its
// top-most essential nodes (dt/ft jumps) and unioning their results —
// sound because every state of the set loops with ↓1 q ∨ ↓2 q on the
// skipped labels. With information propagation, states that are already
// satisfied by an earlier part of the region and cannot mark nodes are
// dropped for the remaining enumeration — the "only one witness" effect
// that makes the Q13-Q15 predicates of Figure 3 nearly free.
func (e *evaluator) jumpTopMostRegion(c tree.NodeID, r StateSet, rID int32, ji jumpInfo, out *RSet) {
	ids, ok := ji.essential.Finite()
	if !ok {
		e.eval(c, r, rID, out)
		return
	}
	e.stats.Jumps++
	end := e.ix.BinEnd(c)
	after := c
	for {
		best := tree.Nil
		for _, l := range ids {
			if u := e.cur.NextAfter(l, after); u != tree.Nil && u <= end &&
				(best == tree.Nil || u < best) {
				best = u
			}
		}
		if best == tree.Nil {
			return
		}
		var g RSet
		e.eval(best, r, rID, &g)
		out.union(&g, &e.arena)
		after = e.ix.BinEnd(best)
		if !e.opt.InfoProp {
			continue
		}
		// Drop satisfied, non-marking states: the region's disjunction
		// for them is already true and they carry no result lists.
		pruned := r &^ (out.Sat &^ e.a.marking)
		if pruned == r {
			continue
		}
		if pruned == 0 {
			return
		}
		r = pruned
		rID = e.internSet(r)
		nji := e.lookupJump(r, rID)
		if nji.kind == jumpTopMost {
			if nids, ok := nji.essential.Finite(); ok {
				ids = nids
			}
		}
	}
}

// lookupTrans computes (or recalls) Line 3: active transitions and child
// state sets.
func (e *evaluator) lookupTrans(r StateSet, rID int32, l tree.LabelID) *transInfo {
	if !e.opt.Memo {
		return e.computeTransFor(r, l, false)
	}
	row := e.rows[rID]
	if row == nil {
		n := e.numLabels
		if int(l) >= n {
			n = int(l) + 1
		}
		row = make([]*transInfo, n)
		e.rows[rID] = row
	} else if int(l) >= len(row) {
		grown := make([]*transInfo, int(l)+1)
		copy(grown, row)
		row = grown
		e.rows[rID] = row
	}
	if ti := row[l]; ti != nil {
		e.stats.MemoHits++
		return ti
	}
	ti := e.computeTransFor(r, l, true)
	row[l] = ti
	e.stats.MemoEntries++
	return ti
}

// computeTransFor evaluates Line 3 from scratch for one label, paying
// the |Q| factor — the naive cost model. With memo set it also interns
// the child sets and allocates the recipe tables.
func (e *evaluator) computeTransFor(r StateSet, l tree.LabelID, memo bool) *transInfo {
	ti := &transInfo{r1ID: -1, r2ID: -1}
	rest := r
	for q := State(0); rest != 0; q++ {
		if rest&1 != 0 {
			for _, idx := range e.a.byFrom[q] {
				t := &e.a.Trans[idx]
				if t.Guard.Contains(l) {
					ti.trans = append(ti.trans, idx)
					ti.r1 |= t.down1
					ti.r2 |= t.down2
				}
			}
		}
		rest >>= 1
	}
	if memo {
		ti.r1ID = e.internSet(ti.r1)
		ti.r2ID = e.internSet(ti.r2)
		ti.recipes = make(map[satPair]*recipe, 4)
		if e.opt.InfoProp {
			ti.r2memo = make(map[StateSet]r2entry, 4)
		}
	}
	return ti
}

// lookupR2 applies information propagation: given the satisfied states
// of the first child, restrict the states verified in the second child
// to those still needed for a transition's value or for carrying marked
// nodes.
func (e *evaluator) lookupR2(ti *transInfo, sat1 StateSet) (StateSet, int32) {
	if ti.r2memo != nil {
		if ent, ok := ti.r2memo[sat1]; ok {
			e.stats.MemoHits++
			return ent.r2, ent.r2ID
		}
		r2 := e.computeR2(ti, sat1)
		ent := r2entry{r2: r2, r2ID: e.internSet(r2)}
		ti.r2memo[sat1] = ent
		e.stats.MemoEntries++
		return ent.r2, ent.r2ID
	}
	return e.computeR2(ti, sat1), -1
}

func (e *evaluator) computeR2(ti *transInfo, sat1 StateSet) StateSet {
	var r2 StateSet
	for _, idx := range ti.trans {
		t := &e.a.Trans[idx]
		tv, need := e.partial(t.Phi, sat1)
		if tv == pF {
			continue // transition cannot fire; its ↓2 moves are dead
		}
		r2 |= need
	}
	return r2
}

// Three-valued logic for partial formula evaluation.
const (
	pF int8 = -1
	pU int8 = 0
	pT int8 = 1
)

// partial evaluates φ knowing only the first child's satisfied states.
// It returns the three-valued outcome and the ↓2 states still needed:
// all undetermined atoms, plus — when the value is already decided — the
// atoms that can still contribute marked nodes (states whose
// sub-automaton selects; existential semantics prunes the rest, which is
// how "only one witness is checked", §4.4).
func (e *evaluator) partial(f *Formula, sat1 StateSet) (int8, StateSet) {
	switch f.Kind {
	case FTrue:
		return pT, 0
	case FFalse:
		return pF, 0
	case FDown:
		if f.Child == 1 {
			if sat1.Has(f.Q) {
				return pT, 0
			}
			return pF, 0
		}
		return pU, StateSet(0).With(f.Q)
	case FNot:
		tv, need := e.partial(f.Left, sat1)
		if tv != pU {
			// Value decided; rule (not) discards marks, so nothing
			// below is needed anymore.
			return -tv, 0
		}
		return pU, need
	case FAnd:
		t1, n1 := e.partial(f.Left, sat1)
		t2, n2 := e.partial(f.Right, sat1)
		switch {
		case t1 == pF || t2 == pF:
			return pF, 0
		case t1 == pT && t2 == pT:
			return pT, (n1 | n2) & e.a.marking
		case t1 == pT:
			return t2, n2 | n1&e.a.marking
		case t2 == pT:
			return t1, n1 | n2&e.a.marking
		default:
			return pU, n1 | n2
		}
	case FOr:
		t1, n1 := e.partial(f.Left, sat1)
		t2, n2 := e.partial(f.Right, sat1)
		switch {
		case t1 == pT || t2 == pT:
			return pT, (n1 | n2) & e.a.marking
		case t1 == pF:
			return t2, n2
		case t2 == pF:
			return t1, n1
		default:
			return pU, n1 | n2
		}
	}
	return pF, 0
}

// applyTrans is eval_trans (Definition C.3): evaluate the active
// transitions' formulas under the children's results and build Γ.
func (e *evaluator) applyTrans(ti *transInfo, v tree.NodeID, g1, g2, out *RSet) {
	var rec *recipe
	if ti.recipes != nil {
		k := satPair{g1.Sat, g2.Sat}
		if cached, ok := ti.recipes[k]; ok {
			e.stats.MemoHits++
			rec = cached
		} else {
			rec = e.computeRecipe(ti, g1.Sat, g2.Sat)
			ti.recipes[k] = rec
			e.stats.MemoEntries++
		}
	} else {
		rec = e.computeRecipe(ti, g1.Sat, g2.Sat)
	}
	out.Sat = rec.sat
	for _, o := range rec.ops {
		switch o.kind {
		case opMark:
			out.addNode(o.target, v, &e.arena)
		case opLeft:
			out.add(o.target, g1.list(o.src, &e.arena), &e.arena)
		case opRight:
			out.add(o.target, g2.list(o.src, &e.arena), &e.arena)
		}
	}
}

// computeRecipe evaluates every active transition's formula against the
// satisfied sets and records which result lists flow where. The recipe
// depends only on (active transitions, sat1, sat2) — never on the node —
// which is what makes eval_trans memoizable.
func (e *evaluator) computeRecipe(ti *transInfo, sat1, sat2 StateSet) *recipe {
	rec := &recipe{}
	var scratch []srcRef
	for _, idx := range ti.trans {
		t := &e.a.Trans[idx]
		scratch = scratch[:0]
		ok := evalFormula(t.Phi, sat1, sat2, &scratch)
		if !ok {
			continue
		}
		rec.sat = rec.sat.With(t.From)
		if t.Selecting {
			rec.ops = append(rec.ops, op{target: t.From, kind: opMark})
		}
		for _, s := range scratch {
			kind := opLeft
			if s.side == 2 {
				kind = opRight
			}
			rec.ops = append(rec.ops, op{target: t.From, kind: kind, src: s.q})
		}
	}
	return rec
}

type srcRef struct {
	side int8
	q    State
}

// evalFormula implements the judgement of Figure 7: it returns the truth
// value and appends to ops the ↓i q atoms that evaluated to true in live
// (non-discarded) positions — exactly the result lists the rules union.
func evalFormula(f *Formula, sat1, sat2 StateSet, ops *[]srcRef) bool {
	switch f.Kind {
	case FTrue:
		return true
	case FFalse:
		return false
	case FDown:
		sat := sat1
		if f.Child == 2 {
			sat = sat2
		}
		if sat.Has(f.Q) {
			*ops = append(*ops, srcRef{f.Child, f.Q})
			return true
		}
		return false
	case FNot:
		// Rule (not): value is inverted, collected lists are dropped.
		mark := len(*ops)
		b := evalFormula(f.Left, sat1, sat2, ops)
		*ops = (*ops)[:mark]
		return !b
	case FAnd:
		mark := len(*ops)
		if !evalFormula(f.Left, sat1, sat2, ops) {
			*ops = (*ops)[:mark]
			return false
		}
		if !evalFormula(f.Right, sat1, sat2, ops) {
			*ops = (*ops)[:mark]
			return false
		}
		return true
	case FOr:
		// Rule (or) unions the lists of all true disjuncts; a false
		// disjunct leaves no ops behind (every false case truncates its
		// own contribution), so no compaction is needed.
		b1 := evalFormula(f.Left, sat1, sat2, ops)
		mid := len(*ops)
		b2 := evalFormula(f.Right, sat1, sat2, ops)
		if !b2 {
			*ops = (*ops)[:mid]
		}
		return b1 || b2
	}
	return false
}
