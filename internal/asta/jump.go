package asta

import (
	"repro/internal/labels"
)

// This file implements the on-the-fly top-down approximation of relevant
// nodes (§4.3, Definition 4.2): the evaluator's descent carries a state
// set S — a state of the deterministic automaton tda(A) — and before
// recursing into a subtree it analyzes how S behaves on each label. On
// labels where every state of S merely "loops" (its only active
// transition is the recursion form compiled for descendant or sibling
// traversal) no information is gained, so the evaluator jumps straight
// to the top-most nodes carrying an essential label, exactly as in
// Figure 1.

type jumpKind int8

const (
	jumpNone jumpKind = iota
	// jumpTopMost: on non-essential labels every state q ∈ S has the
	// single active transition q, L → ↓1 q ∨ ↓2 q, so the skipped
	// region's result set is the union of the results at the top-most
	// essential nodes (dt/ft jumps).
	jumpTopMost
	// jumpRightPath: every q ∈ S has only q, L → ↓2 q — a sibling scan;
	// the region's result is the result at the first essential node on
	// the rightmost path (rt jump).
	jumpRightPath
	// jumpLeftPath: symmetric with ↓1 (lt jump).
	jumpLeftPath
)

type jumpInfo struct {
	kind      jumpKind
	essential labels.Set
}

// pureSets holds, per state, the labels on which the state's only
// behavior is a given loop form. A label is "pure" for a form when the
// state has a non-selecting transition of exactly that form guarding it
// and no other transition whose guard contains it.
type pureSets struct {
	union, left, right []labels.Set
}

// loopForm classifies a transition as one of the loop shapes, or -1.
func loopForm(t *Transition) int {
	if t.Selecting {
		return -1
	}
	f := t.Phi
	switch f.Kind {
	case FOr:
		l, r := f.Left, f.Right
		if l.Kind == FDown && r.Kind == FDown && l.Q == t.From && r.Q == t.From &&
			((l.Child == 1 && r.Child == 2) || (l.Child == 2 && r.Child == 1)) {
			return 0 // ↓1 q ∨ ↓2 q
		}
	case FDown:
		if f.Q != t.From {
			return -1
		}
		if f.Child == 1 {
			return 1 // ↓1 q
		}
		return 2 // ↓2 q
	}
	return -1
}

func (e *evaluator) initPureSets() {
	n := e.a.NumStates
	e.pure = pureSets{
		union: make([]labels.Set, n),
		left:  make([]labels.Set, n),
		right: make([]labels.Set, n),
	}
	for q := 0; q < n; q++ {
		forms := [3]labels.Set{labels.None, labels.None, labels.None}
		other := labels.None
		for _, idx := range e.a.byFrom[q] {
			t := &e.a.Trans[idx]
			switch loopForm(t) {
			case 0:
				forms[0] = forms[0].Union(t.Guard)
			case 1:
				forms[1] = forms[1].Union(t.Guard)
			case 2:
				forms[2] = forms[2].Union(t.Guard)
			default:
				other = other.Union(t.Guard)
			}
		}
		// A label is pure for a form only if no other transition (of any
		// other form) also fires on it.
		e.pure.union[q] = forms[0].Minus(other).Minus(forms[1]).Minus(forms[2])
		e.pure.left[q] = forms[1].Minus(other).Minus(forms[0]).Minus(forms[2])
		e.pure.right[q] = forms[2].Minus(other).Minus(forms[0]).Minus(forms[1])
	}
}

// lookupJump returns the cached set-level analysis for the tda state r:
// dense by interned id in memo mode, a small map otherwise.
func (e *evaluator) lookupJump(r StateSet, rID int32) jumpInfo {
	if rID >= 0 {
		if e.jumpsDone[rID] {
			return e.jumps[rID]
		}
		ji := e.analyzeSet(r)
		e.jumps[rID] = ji
		e.jumpsDone[rID] = true
		return ji
	}
	if e.jumpCache == nil {
		e.jumpCache = make(map[StateSet]jumpInfo, 8)
	}
	if ji, ok := e.jumpCache[r]; ok {
		return ji
	}
	ji := e.analyzeSet(r)
	e.jumpCache[r] = ji
	return ji
}

// analyzeSet intersects the per-state pure label sets over S and picks a
// jump form whose essential complement is finite (a jump needs concrete
// labels to search for). Preference order follows expected payoff:
// top-most (skips whole regions) before path jumps.
func (e *evaluator) analyzeSet(r StateSet) jumpInfo {
	pu, pl, pr := labels.Any, labels.Any, labels.Any
	r.Each(func(q State) {
		pu = pu.Intersect(e.pure.union[q])
		pl = pl.Intersect(e.pure.left[q])
		pr = pr.Intersect(e.pure.right[q])
	})
	if ess := pu.Complement(); !ess.IsAny() {
		if _, ok := ess.Finite(); ok {
			return jumpInfo{kind: jumpTopMost, essential: ess}
		}
	}
	if ess := pr.Complement(); !ess.IsAny() {
		if _, ok := ess.Finite(); ok {
			return jumpInfo{kind: jumpRightPath, essential: ess}
		}
	}
	if ess := pl.Complement(); !ess.IsAny() {
		// Left-path jumps walk the (short) first-child chain, so a
		// co-finite essential set is still usable.
		return jumpInfo{kind: jumpLeftPath, essential: ess}
	}
	return jumpInfo{kind: jumpNone}
}
