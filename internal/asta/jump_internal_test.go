package asta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/labels"
	"repro/internal/tree"
)

// White-box tests for the jump analysis and the three-valued partial
// evaluation — load-bearing internals otherwise covered only end to end.

func TestLoopForm(t *testing.T) {
	q := State(3)
	cases := []struct {
		phi  *Formula
		sel  bool
		want int
	}{
		{Or(Down1(q), Down2(q)), false, 0},
		{Or(Down2(q), Down1(q)), false, 0}, // either order
		{Down1(q), false, 1},
		{Down2(q), false, 2},
		{Or(Down1(q), Down2(4)), false, -1},  // mixed states
		{Or(Down1(4), Down2(4)), false, -1},  // not the source state
		{Down2(4), false, -1},                // chains another state
		{Or(Down1(q), Down2(q)), true, -1},   // selecting is never a pure loop
		{And(Down1(q), Down2(q)), false, -1}, // conjunction must visit
		{True(), false, -1},
		{Not(Down2(q)), false, -1},
	}
	for i, tc := range cases {
		tr := &Transition{From: q, Phi: tc.phi, Selecting: tc.sel}
		if got := loopForm(tr); got != tc.want {
			t.Errorf("case %d (%s, sel=%v): loopForm = %d, want %d",
				i, tc.phi, tc.sel, got, tc.want)
		}
	}
}

// exampleASTA builds the Example 4.1 automaton by hand.
func exampleASTA(t *testing.T, a, b, c tree.LabelID) *ASTA {
	t.Helper()
	aut := &ASTA{
		NumStates: 3,
		Top:       StateSet(0).With(0),
		Trans: []Transition{
			{From: 0, Guard: labels.Of(a), Phi: Down1(1)},
			{From: 0, Guard: labels.Any, Phi: Or(Down1(0), Down2(0))},
			{From: 1, Guard: labels.Of(b), Phi: Down1(2), Selecting: true},
			{From: 1, Guard: labels.Any, Phi: Or(Down1(1), Down2(1))},
			{From: 2, Guard: labels.Of(c), Phi: True()},
			{From: 2, Guard: labels.Any, Phi: Down2(2)},
		},
	}
	return aut.MustFinalize()
}

func TestAnalyzeSetFigure1(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b, c := lt.Intern("a"), lt.Intern("b"), lt.Intern("c")
	aut := exampleASTA(t, a, b, c)
	e := &evaluator{a: aut}
	e.initPureSets()
	e.jumpCache = make(map[StateSet]jumpInfo)

	// {q0}: jump to top-most a's (Figure 1: "if the destination state
	// for a subtree is {q0} the automaton can jump to the top-most a").
	ji := e.lookupJump(StateSet(0).With(0), -1)
	if ji.kind != jumpTopMost {
		t.Fatalf("{q0} kind = %v", ji.kind)
	}
	if ids, _ := ji.essential.Finite(); len(ids) != 1 || ids[0] != a {
		t.Errorf("{q0} essential = %s, want {a}", ji.essential.String(lt))
	}

	// {q0,q1}: jump to top-most a's and b's.
	ji = e.lookupJump(StateSet(0).With(0).With(1), -1)
	if ji.kind != jumpTopMost {
		t.Fatalf("{q0,q1} kind = %v", ji.kind)
	}
	if ids, _ := ji.essential.Finite(); len(ids) != 2 {
		t.Errorf("{q0,q1} essential = %s, want {a,b}", ji.essential.String(lt))
	}

	// {q2} alone: a following-sibling scan for c (rt jump).
	ji = e.lookupJump(StateSet(0).With(2), -1)
	if ji.kind != jumpRightPath {
		t.Fatalf("{q2} kind = %v", ji.kind)
	}
	if ids, _ := ji.essential.Finite(); len(ids) != 1 || ids[0] != c {
		t.Errorf("{q2} essential = %s, want {c}", ji.essential.String(lt))
	}

	// {q0,q1,q2}: mixed loop shapes — no jump ("no jump is possible,
	// the automaton must perform a firstChild or nextSibling move").
	ji = e.lookupJump(StateSet(0).With(0).With(1).With(2), -1)
	if ji.kind != jumpNone {
		t.Errorf("{q0,q1,q2} kind = %v, want none", ji.kind)
	}
}

// randomFormula builds a random negation-included formula over the given
// number of states.
func randomFormula(rng *rand.Rand, depth, states int) *Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return True()
		case 1:
			return False()
		case 2:
			return Down1(State(rng.Intn(states)))
		default:
			return Down2(State(rng.Intn(states)))
		}
	}
	switch rng.Intn(3) {
	case 0:
		return And(randomFormula(rng, depth-1, states), randomFormula(rng, depth-1, states))
	case 1:
		return Or(randomFormula(rng, depth-1, states), randomFormula(rng, depth-1, states))
	default:
		return Not(randomFormula(rng, depth-1, states))
	}
}

// evalTwoValued is the reference boolean semantics of a formula.
func evalTwoValued(f *Formula, sat1, sat2 StateSet) bool {
	switch f.Kind {
	case FTrue:
		return true
	case FFalse:
		return false
	case FDown:
		if f.Child == 1 {
			return sat1.Has(f.Q)
		}
		return sat2.Has(f.Q)
	case FNot:
		return !evalTwoValued(f.Left, sat1, sat2)
	case FAnd:
		return evalTwoValued(f.Left, sat1, sat2) && evalTwoValued(f.Right, sat1, sat2)
	case FOr:
		return evalTwoValued(f.Left, sat1, sat2) || evalTwoValued(f.Right, sat1, sat2)
	}
	return false
}

// Property: the three-valued partial evaluation is sound — if it decides
// a value from sat1 alone, that value holds for every sat2; and any sat2
// restricted to the reported needed states produces the same final
// formula value as the full sat2.
func TestPartialSoundness(t *testing.T) {
	const states = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phi := randomFormula(rng, 3, states)
		aut := &ASTA{NumStates: states}
		// Random marking set (partial prunes only non-marking states).
		aut.marking = StateSet(rng.Uint64() & ((1 << states) - 1))
		e := &evaluator{a: aut}
		sat1 := StateSet(rng.Uint64() & ((1 << states) - 1))
		tv, need := e.partial(phi, sat1)
		for trial := 0; trial < 16; trial++ {
			sat2 := StateSet(rng.Uint64() & ((1 << states) - 1))
			full := evalTwoValued(phi, sat1, sat2)
			if tv == pT && !full {
				return false
			}
			if tv == pF && full {
				return false
			}
			// Restricting the second child to the needed states must
			// not change the decided value.
			restricted := evalTwoValued(phi, sat1, sat2&need)
			if tv != pU && restricted != full {
				// Value was decided; both must equal the decided value.
				decided := tv == pT
				if full != decided || restricted != decided {
					return false
				}
			}
			if tv == pU && restricted != full {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: evalFormula's value agrees with the reference semantics, and
// its collected ops reference only true atoms of live branches.
func TestEvalFormulaAgainstReference(t *testing.T) {
	const states = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phi := randomFormula(rng, 3, states)
		sat1 := StateSet(rng.Uint64() & ((1 << states) - 1))
		sat2 := StateSet(rng.Uint64() & ((1 << states) - 1))
		var ops []srcRef
		got := evalFormula(phi, sat1, sat2, &ops)
		if got != evalTwoValued(phi, sat1, sat2) {
			return false
		}
		if !got && len(ops) != 0 {
			return false // false formulas contribute no lists
		}
		for _, o := range ops {
			sat := sat1
			if o.side == 2 {
				sat = sat2
			}
			if !sat.Has(o.q) {
				return false // ops must come from true atoms
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
