package asta

import (
	"sort"

	"repro/internal/tree"
)

// NodeList is an immutable rope of nodes — the "simple lists with
// constant time concatenation" of §4.4, upgraded from pointer-per-node
// cells to array-chunked leaves combined into a height-balanced tree.
// Leaves hold up to leafMax node ids in a contiguous block; interior
// nodes are concatenations and always have both children. Concat
// rebalances when sibling heights diverge (the classic AVL join), so
// the tree height — and with it an Iter's stack — stays O(log n) no
// matter how left-leaning the construction order was. Every node caches
// its subtree metadata (element count, adjacent-duplicate count,
// first/last element, sortedness), which makes IsSorted and the
// duplicate-free cardinality O(1), lets Flatten preallocate exactly,
// and turns a paged cursor's seek into a logarithmic descent that skips
// whole subtrees. Sharing is safe because ropes are never mutated.
type NodeList struct {
	// l, r are the interior children; both nil on leaves, both non-nil
	// on interior nodes.
	l, r *NodeList
	// elems is the leaf payload (len >= 1); nil on interior nodes.
	elems []tree.NodeID
	// count is the subtree element count, duplicates included.
	count int32
	// dups counts adjacent-equal pairs in concatenation order; for a
	// sorted subtree count-dups is the duplicate-free cardinality.
	dups int32
	// first, last are the subtree's first and last elements in
	// concatenation order. On a sorted subtree they are the minimum and
	// maximum node id — the bounds the seek descent prunes with.
	first, last tree.NodeID
	// height is 1 for leaves. Exposed ropes are balanced (O(log count));
	// during evaluation raw accumulation chains can be arbitrarily tall,
	// which is why this is not a uint8.
	height int32
	// sorted reports the subtree is non-decreasing in concatenation
	// order, maintained incrementally at construction.
	sorted bool
}

// leafMax is the chunk size: the largest element count a single leaf
// holds. 128 ids = 512 bytes, a few cache lines per leaf.
const leafMax = 128

// Single returns a one-element list.
func Single(v tree.NodeID) *NodeList { return newLeaf([]tree.NodeID{v}, nil) }

// Concat returns the height-balanced concatenation of a and b. Small
// adjacent leaves are merged into one chunk; diverging sibling heights
// are rebalanced on the way, so repeated one-sided concatenation — the
// evaluator's left-accumulating order — still yields an O(log n) tall
// tree. Cost is O(|height(a)-height(b)|).
func Concat(a, b *NodeList) *NodeList { return join(a, b, nil) }

// single and concat are the arena-free internal spellings.
func single(v tree.NodeID) *NodeList  { return Single(v) }
func concat(a, b *NodeList) *NodeList { return Concat(a, b) }

// allocNode takes a rope cell from the arena, or the heap when ar is
// nil (the exported constructors; evaluation always passes its arena).
func allocNode(ar *cellArena) *NodeList {
	if ar != nil {
		return ar.alloc()
	}
	return new(NodeList)
}

// allocIDs returns an empty slice with capacity n for leaf storage.
func allocIDs(ar *cellArena, n int) []tree.NodeID {
	if ar != nil {
		return ar.allocIDs(n)
	}
	return make([]tree.NodeID, 0, n)
}

// newLeaf wraps elems (len >= 1, ownership transferred) in a leaf,
// computing the chunk metadata in one scan.
func newLeaf(elems []tree.NodeID, ar *cellArena) *NodeList {
	n := allocNode(ar)
	*n = NodeList{
		elems:  elems,
		count:  int32(len(elems)),
		first:  elems[0],
		last:   elems[len(elems)-1],
		height: 1,
		sorted: true,
	}
	for i := 1; i < len(elems); i++ {
		switch {
		case elems[i] < elems[i-1]:
			n.sorted = false
		case elems[i] == elems[i-1]:
			n.dups++
		}
	}
	return n
}

// interior builds the concatenation node over a and b (both non-nil),
// combining the cached metadata in O(1). Callers keep the balance
// invariant; interior itself only records heights.
func interior(a, b *NodeList, ar *cellArena) *NodeList {
	n := allocNode(ar)
	*n = NodeList{
		l:      a,
		r:      b,
		count:  a.count + b.count,
		dups:   a.dups + b.dups,
		first:  a.first,
		last:   b.last,
		sorted: a.sorted && b.sorted && a.last <= b.first,
	}
	if a.last == b.first {
		n.dups++
	}
	h := a.height
	if b.height > h {
		h = b.height
	}
	n.height = h + 1
	return n
}

// mergeable decides whether two adjacent leaves fuse into one chunk:
// they must fit, and they must be of similar size. The similarity rule
// is what amortizes the copying — fusing a single onto an ever-growing
// chunk would copy the whole prefix on every append (quadratic in the
// chunk size); requiring the smaller side to be at least half the
// larger means each element is copied O(log leafMax) times before its
// chunk is full, like binary-counter merging.
func mergeable(la, lb int) bool {
	if la+lb > leafMax {
		return false
	}
	if la > lb {
		la, lb = lb, la
	}
	return 2*la >= lb
}

// mergeLeaves fuses two adjacent leaves into one chunk (combined length
// <= leafMax). Metadata combines like interior's, so no rescan.
func mergeLeaves(a, b *NodeList, ar *cellArena) *NodeList {
	elems := allocIDs(ar, len(a.elems)+len(b.elems))
	elems = append(elems, a.elems...)
	elems = append(elems, b.elems...)
	n := allocNode(ar)
	*n = NodeList{
		elems:  elems,
		count:  a.count + b.count,
		dups:   a.dups + b.dups,
		first:  a.first,
		last:   b.last,
		height: 1,
		sorted: a.sorted && b.sorted && a.last <= b.first,
	}
	if a.last == b.first {
		n.dups++
	}
	return n
}

// join is the balanced concatenation: the join algorithm of
// height-balanced (AVL) trees, without a middle key. The shorter side
// is inserted along the taller side's spine and rotations repair any
// height divergence on the way back up, so the result is
// height-balanced whenever the inputs are; the work (and the handful of
// fresh nodes — inputs are never mutated, they may be shared) is
// proportional to the height difference.
func join(a, b *NodeList, ar *cellArena) *NodeList {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.l == nil && b.l == nil && mergeable(len(a.elems), len(b.elems)) {
		return mergeLeaves(a, b, ar)
	}
	switch {
	case a.height > b.height+1:
		return joinRight(a, b, ar)
	case b.height > a.height+1:
		return joinLeft(a, b, ar)
	default:
		return interior(a, b, ar)
	}
}

// joinRight attaches the shorter b along a's right spine
// (a.height > b.height+1, so a is interior).
func joinRight(a, b *NodeList, ar *cellArena) *NodeList {
	l, c := a.l, a.r
	var t *NodeList
	if c.height <= b.height+1 {
		t = join(c, b, ar)
	} else {
		t = joinRight(c, b, ar)
	}
	return balanceRight(l, t, ar)
}

// balanceRight builds interior(l, t) where t may have ended up two
// taller than l; the standard single/double rotation restores the
// invariant.
func balanceRight(l, t *NodeList, ar *cellArena) *NodeList {
	if t.height <= l.height+1 {
		return interior(l, t, ar)
	}
	// t.height == l.height+2, so t is interior with AVL children.
	if t.l.height <= t.r.height {
		return interior(interior(l, t.l, ar), t.r, ar)
	}
	tl := t.l
	return interior(interior(l, tl.l, ar), interior(tl.r, t.r, ar), ar)
}

// rawConcat is the evaluator's O(1) concatenation: one interior cell,
// metadata combined, no rebalancing. Evaluation left-accumulates, so
// raw chains are degenerate (height ~ number of concats); they stay
// private to the evaluator and are rebuilt into the balanced chunked
// form by rebalance before a rope is exposed. Splitting construction
// from balancing keeps the hot loop at old cost (one cell write per
// concat) while every rope a consumer can see is O(log n) tall.
func rawConcat(a, b *NodeList, ar *cellArena) *NodeList {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return interior(a, b, ar)
}

// rebalance rebuilds a raw accumulation chain into the exposed form:
// elements are collected once into a contiguous block, chopped into
// near-equal chunks of up to leafMax, and covered by a perfectly
// balanced interior tree built by bisection. Linear time, one element
// copy, exact allocation. Leaves pass through untouched; every interior
// rope is rebuilt, so exposure guarantees the full balance invariant no
// matter what shape accumulation produced.
// The stack parameter is caller-owned scratch (reused across warm
// evaluations so the rebuild itself allocates nothing on the heap).
func rebalance(nl *NodeList, ar *cellArena, stackp *[]*NodeList) *NodeList {
	if nl == nil || nl.l == nil {
		return nl
	}
	elems := allocIDs(ar, int(nl.count))
	stack := (*stackp)[:0]
	stack = append(stack, nl)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n.l != nil {
			stack = append(stack, n.r)
			n = n.l
		}
		elems = append(elems, n.elems...)
	}
	*stackp = stack
	leaves := (len(elems) + leafMax - 1) / leafMax
	return buildBalanced(elems, leaves, ar)
}

// buildBalanced covers elems with k leaves of near-equal size and a
// bisection tree above them; heights across any split differ by at
// most one, so the result satisfies the AVL invariant.
func buildBalanced(elems []tree.NodeID, k int, ar *cellArena) *NodeList {
	if k <= 1 {
		return newLeaf(elems, ar)
	}
	half := k / 2
	mid := len(elems) * half / k
	return interior(
		buildBalanced(elems[:mid], half, ar),
		buildBalanced(elems[mid:], k-half, ar),
		ar,
	)
}

// joinLeft mirrors joinRight for b.height > a.height+1.
func joinLeft(a, b *NodeList, ar *cellArena) *NodeList {
	c, r := b.l, b.r
	var t *NodeList
	if c.height <= a.height+1 {
		t = join(a, c, ar)
	} else {
		t = joinLeft(a, c, ar)
	}
	return balanceLeft(t, r, ar)
}

// balanceLeft mirrors balanceRight: t may be two taller than r.
func balanceLeft(t, r *NodeList, ar *cellArena) *NodeList {
	if t.height <= r.height+1 {
		return interior(t, r, ar)
	}
	if t.r.height <= t.l.height {
		return interior(t.l, interior(t.r, r, ar), ar)
	}
	tr := t.r
	return interior(interior(t.l, tr.l, ar), interior(tr.r, r, ar), ar)
}

// cellArena chunk-allocates rope cells and leaf storage: result lists
// live only for the duration of one evaluation, so batching their
// allocation removes the dominant per-node GC cost. Addresses are
// stable because a chunk is never grown, only appended to the chunk
// list. The arena is reusable: reset rewinds every chunk in place, so a
// warm evaluation re-fills the same memory instead of allocating — the
// caller (the evaluation Context) guarantees the previous result rope
// is no longer referenced before resetting.
type cellArena struct {
	cells sliceArena[NodeList]
	ids   sliceArena[tree.NodeID]
}

const (
	arenaChunk = 512  // rope cells per chunk (cells now cover up to leafMax elems each)
	idChunk    = 4096 // leaf ids per storage chunk
)

func (a *cellArena) alloc() *NodeList {
	if a.cells.chunkSize == 0 {
		a.cells.chunkSize = arenaChunk
	}
	return &a.cells.carveFull(1)[0]
}

// allocIDs carves an empty, capacity-n window for leaf storage —
// exclusively the caller's, with stable addresses (see sliceArena).
func (a *cellArena) allocIDs(n int) []tree.NodeID {
	if a.ids.chunkSize == 0 {
		a.ids.chunkSize = idChunk
	}
	return a.ids.carve(n)
}

// reset rewinds the arena for the next evaluation, keeping every chunk.
// Stale contents are never read: cells are fully overwritten on alloc
// and id windows only expose what their new owner appends.
func (a *cellArena) reset() {
	a.cells.reset()
	a.ids.reset()
}

// memBytes estimates the arena's resident bytes (capacity, not use).
func (a *cellArena) memBytes() int64 {
	const cellSize = 64 // NodeList struct, padded
	return a.cells.memBytes(cellSize) + a.ids.memBytes(8)
}

// Len returns the total element count, duplicates included, in O(1).
func (nl *NodeList) Len() int {
	if nl == nil {
		return 0
	}
	return int(nl.count)
}

// Distinct returns the element count after adjacent-duplicate removal,
// in O(1). On a sorted rope (where equal elements are necessarily
// adjacent) this is the exact duplicate-free cardinality — what a
// streaming cursor reports without walking anything.
func (nl *NodeList) Distinct() int {
	if nl == nil {
		return 0
	}
	return int(nl.count - nl.dups)
}

// Walk calls f on every leaf element in concatenation order (duplicates
// included), stopping early when f returns false; it reports whether
// the walk ran to completion. Unlike Flatten it allocates no output
// slice, which is what lets large answers be consumed incrementally.
func (nl *NodeList) Walk(f func(tree.NodeID) bool) bool {
	it := nl.Iter()
	for {
		v, ok := it.Next()
		if !ok {
			return true
		}
		if !f(v) {
			return false
		}
	}
}

// IsSorted reports whether the concatenation order is non-decreasing —
// i.e. already document order up to duplicates. The bit is maintained
// at construction, so the check is O(1); it is what lets a cursor
// stream the rope directly.
func (nl *NodeList) IsSorted() bool {
	return nl == nil || nl.sorted
}

// Iter returns a resumable leaf iterator in concatenation order. The
// rope is immutable, so an Iter stays valid for as long as the rope.
func (nl *NodeList) Iter() *Iter {
	it := &Iter{}
	if nl != nil {
		it.stack = append(it.stack, nl)
	}
	return it
}

// IterAfter returns an iterator positioned at the first element > v,
// by a metadata descent instead of a walk: a subtree whose last element
// is <= v is skipped whole, so on a sorted rope (where "first element
// > v" starts a suffix) the seek is O(height) = O(log n) and touches at
// most one leaf. This is what makes resuming a paged cursor cheap: the
// old linear re-walk of every already-delivered page is gone. On an
// unsorted rope the elements > v are not a suffix, so it degrades to a
// plain Iter from the start (callers filter by value as before).
func (nl *NodeList) IterAfter(v tree.NodeID) *Iter {
	if nl == nil || !nl.sorted {
		return nl.Iter()
	}
	it := &Iter{}
	n := nl
	if n.last <= v {
		return it // everything consumed
	}
	for n.l != nil {
		if n.l.last > v {
			it.stack = append(it.stack, n.r)
			n = n.l
		} else {
			n = n.r
		}
	}
	i := sort.Search(len(n.elems), func(i int) bool { return n.elems[i] > v })
	it.leaf = n.elems[i:]
	return it
}

// Iter streams a rope's leaves without materializing them. The stack
// holds the unvisited right subtrees and leaf the rest of the current
// chunk; balancing bounds the stack by the tree height, so iteration
// state is O(log n) even for answers built by the evaluator's
// left-accumulating concatenation order.
type Iter struct {
	stack []*NodeList
	leaf  []tree.NodeID
}

// Next returns the next leaf value, with ok=false once exhausted.
func (it *Iter) Next() (tree.NodeID, bool) {
	if len(it.leaf) > 0 {
		v := it.leaf[0]
		it.leaf = it.leaf[1:]
		return v, true
	}
	if len(it.stack) == 0 {
		return tree.Nil, false
	}
	n := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	for n.l != nil {
		// Interior node: descend left, deferring the right child.
		it.stack = append(it.stack, n.r)
		n = n.l
	}
	it.leaf = n.elems[1:]
	return n.elems[0], true
}

// Flatten returns the nodes of the rope in concatenation order, sorted
// into document order and deduplicated (unions of overlapping result
// lists can repeat a node). The cached count preallocates the output
// exactly; a sorted duplicate-free rope (the common case) is one copy
// with no sort and no dedup scan.
func (nl *NodeList) Flatten() []tree.NodeID {
	var stack []*NodeList
	return nl.flattenInto(&stack)
}

// flattenInto is Flatten with a caller-owned traversal stack, so warm
// materializing evaluations reuse the same scratch; the output slice
// is always fresh (it outlives the evaluation arena by design).
func (nl *NodeList) flattenInto(stackp *[]*NodeList) []tree.NodeID {
	if nl == nil {
		return nil
	}
	out := make([]tree.NodeID, 0, nl.count)
	stack := (*stackp)[:0]
	stack = append(stack, nl)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n.l != nil {
			stack = append(stack, n.r)
			n = n.l
		}
		out = append(out, n.elems...)
	}
	*stackp = stack
	if nl.sorted && nl.dups == 0 {
		return out
	}
	if !nl.sorted {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// RSet is a result set Γ (Definition C.2): the mapping from states to the
// nodes selected under them, plus its domain — the set of states
// satisfied at the current node (↓i q tests membership of q in Dom(Γi)).
// The first two entries are inlined: compiled queries rarely carry node
// lists for more than two states at once, and keeping them out of the
// heap removes the dominant per-node allocation.
type RSet struct {
	// Sat is Dom(Γ): the satisfied states.
	Sat StateSet
	// n counts the live entries across e0, e1 and more.
	n  int32
	e0 rentry
	e1 rentry
	// more holds per-state node lists beyond the first two.
	more []rentry
}

// rentry is one Γ(q). Marked nodes are buffered in tail — an
// arena-backed block this entry exclusively owns — and flushed into the
// rope as one chunk leaf when the block fills or the list is read, so
// the dominant operation (append one node) costs no rope node at all.
// Ownership is what makes the in-place append safe: a rope handed out
// by List (and thus possibly shared) is never touched again.
type rentry struct {
	q    State
	nl   *NodeList
	tail []tree.NodeID
}

// tailInit is the first tail block size; blocks double up to leafMax,
// so entries that collect only a handful of nodes don't pin a full
// chunk of arena storage.
const tailInit = 8

// lookup returns the entry for q, or nil.
func (r *RSet) lookup(q State) *rentry {
	if r.n > 0 && r.e0.q == q {
		return &r.e0
	}
	if r.n > 1 && r.e1.q == q {
		return &r.e1
	}
	for i := range r.more {
		if r.more[i].q == q {
			return &r.more[i]
		}
	}
	return nil
}

// entry returns the entry for q, creating it on first sight.
func (r *RSet) entry(q State) *rentry {
	if e := r.lookup(q); e != nil {
		return e
	}
	switch r.n {
	case 0:
		r.e0 = rentry{q: q}
		r.n++
		return &r.e0
	case 1:
		r.e1 = rentry{q: q}
		r.n++
		return &r.e1
	default:
		r.more = append(r.more, rentry{q: q})
		r.n++
		return &r.more[len(r.more)-1]
	}
}

// flush moves the tail buffer into the rope as one leaf. The leaf takes
// the block as-is (capacity clamped, no copy); the entry starts a fresh
// block on the next append.
func (e *rentry) flush(ar *cellArena) {
	if len(e.tail) == 0 {
		return
	}
	e.nl = rawConcat(e.nl, newLeaf(e.tail[:len(e.tail):len(e.tail)], ar), ar)
	e.tail = nil
}

// List returns Γ(q), which is nil for states without collected nodes.
func (r *RSet) List(q State) *NodeList { return r.list(q, nil) }

func (r *RSet) list(q State, ar *cellArena) *NodeList {
	e := r.lookup(q)
	if e == nil {
		return nil
	}
	e.flush(ar)
	return e.nl
}

// push appends one node to the entry's private tail block: no rope
// cell, no concat, just one slot. Blocks start at tailInit and double;
// a full leafMax block is flushed as one ready-made chunk leaf.
func (e *rentry) push(v tree.NodeID, ar *cellArena) {
	if len(e.tail) == cap(e.tail) {
		if cap(e.tail) >= leafMax {
			e.flush(ar)
			e.tail = allocIDs(ar, leafMax)
		} else {
			next := tailInit
			if c := 2 * cap(e.tail); c > next {
				next = c
			}
			grown := allocIDs(ar, next)
			grown = append(grown, e.tail...)
			e.tail = grown
		}
	}
	e.tail = append(e.tail, v)
}

// addNode appends the single node v to Γ(q) — the opMark fast path.
func (r *RSet) addNode(q State, v tree.NodeID, ar *cellArena) {
	r.entry(q).push(v, ar)
}

// tailAbsorb bounds the leaves add copies into the tail instead of
// concatenating: below it, a rope cell costs more than re-copying the
// elements, and absorbing is what packs the few-node lists flowing up
// the tree into full chunks (each element is re-copied only while its
// group is still below the bound, so the total copying stays linear).
const tailAbsorb = 16

// add concatenates nl onto Γ(q), assuming q will be in Sat. Small
// leaves are absorbed element-wise into the tail block; real ropes
// flush the tail first (keeping concatenation order) and cost one
// O(1) raw concat cell.
func (r *RSet) add(q State, nl *NodeList, ar *cellArena) {
	if nl == nil {
		return
	}
	e := r.entry(q)
	if nl.l == nil && len(nl.elems) <= tailAbsorb {
		for _, v := range nl.elems {
			e.push(v, ar)
		}
		return
	}
	e.flush(ar)
	e.nl = rawConcat(e.nl, nl, ar)
}

// union merges another result set into r (used when combining the
// results of jumped-over sibling regions: the skipped nodes' transitions
// are pure unions, so Γ of the region is the union of the parts).
func (r *RSet) union(o *RSet, ar *cellArena) {
	r.Sat |= o.Sat
	if o.n > 0 {
		r.merge(&o.e0, ar)
	}
	if o.n > 1 {
		r.merge(&o.e1, ar)
	}
	for i := range o.more {
		r.merge(&o.more[i], ar)
	}
}

// merge unions one source entry into r: the rope part concatenates
// (small leaves absorbed, like add), and the source's still-buffered
// tail appends element-wise — flushing it into an intermediate leaf
// just to absorb it back out again would waste an arena block and a
// metadata scan per region merge.
func (r *RSet) merge(src *rentry, ar *cellArena) {
	if src.nl == nil && len(src.tail) == 0 {
		return
	}
	e := r.entry(src.q)
	if src.nl != nil {
		if src.nl.l == nil && len(src.nl.elems) <= tailAbsorb {
			for _, v := range src.nl.elems {
				e.push(v, ar)
			}
		} else {
			e.flush(ar)
			e.nl = rawConcat(e.nl, src.nl, ar)
		}
	}
	for _, v := range src.tail {
		e.push(v, ar)
	}
}
