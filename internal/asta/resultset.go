package asta

import (
	"sort"

	"repro/internal/tree"
)

// NodeList is an immutable rope of nodes with O(1) concatenation — the
// "simple lists with constant time concatenation" of §4.4. Interior nodes
// are concatenations, leaves single nodes; sharing is safe because ropes
// are never mutated.
type NodeList struct {
	v    tree.NodeID
	l, r *NodeList
}

// single returns a one-element list.
func single(v tree.NodeID) *NodeList { return &NodeList{v: v} }

// concat returns the concatenation of a and b in O(1).
func concat(a, b *NodeList) *NodeList {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &NodeList{l: a, r: b}
}

// cellArena chunk-allocates rope cells: result lists live only for the
// duration of one evaluation, so batching their allocation removes the
// dominant per-node GC cost. Addresses are stable because a chunk is
// never grown, only replaced.
type cellArena struct {
	chunk []NodeList
}

const arenaChunk = 2048

func (a *cellArena) alloc() *NodeList {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]NodeList, 0, arenaChunk)
	}
	a.chunk = a.chunk[:len(a.chunk)+1]
	return &a.chunk[len(a.chunk)-1]
}

func (a *cellArena) single(v tree.NodeID) *NodeList {
	c := a.alloc()
	c.v = v
	c.l, c.r = nil, nil
	return c
}

func (a *cellArena) concat(x, y *NodeList) *NodeList {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	c := a.alloc()
	c.l, c.r = x, y
	return c
}

// Walk calls f on every leaf in concatenation order (duplicates
// included), stopping early when f returns false; it reports whether the
// walk ran to completion. Unlike Flatten it allocates no output slice,
// which is what lets large answers be consumed incrementally.
func (nl *NodeList) Walk(f func(tree.NodeID) bool) bool {
	it := nl.Iter()
	for {
		v, ok := it.Next()
		if !ok {
			return true
		}
		if !f(v) {
			return false
		}
	}
}

// IsSorted reports whether the concatenation order is non-decreasing —
// i.e. already document order up to duplicates. Evaluation emits nodes
// in document order for the overwhelming majority of queries (Flatten
// exploits the same property); IsSorted is the O(n), zero-allocation
// check that lets a cursor stream the rope directly.
func (nl *NodeList) IsSorted() bool {
	prev := tree.Nil
	return nl.Walk(func(v tree.NodeID) bool {
		if prev != tree.Nil && v < prev {
			return false
		}
		prev = v
		return true
	})
}

// Iter returns a resumable leaf iterator in concatenation order. The
// rope is immutable, so an Iter stays valid for as long as the rope.
func (nl *NodeList) Iter() *Iter {
	it := &Iter{}
	if nl != nil {
		it.stack = append(it.stack, nl)
	}
	return it
}

// Iter streams a rope's leaves without materializing them. The stack
// holds the unvisited right spines; its depth is bounded by the rope
// height. Evaluation accumulates ropes left-to-right, so answers are
// left-leaning and the first Next can push O(answer) right-child
// pointers — transient and still cheaper than slice+JSON delivery, but
// not O(log n); balancing the rope is a known open item (ROADMAP).
type Iter struct {
	stack []*NodeList
}

// Next returns the next leaf value, with ok=false once exhausted.
func (it *Iter) Next() (tree.NodeID, bool) {
	for len(it.stack) > 0 {
		n := it.stack[len(it.stack)-1]
		it.stack = it.stack[:len(it.stack)-1]
		for {
			if n.l == nil && n.r == nil {
				return n.v, true
			}
			// Interior node: descend left, deferring the right child.
			if n.r != nil {
				it.stack = append(it.stack, n.r)
			}
			if n.l == nil {
				break
			}
			n = n.l
		}
	}
	return tree.Nil, false
}

// Flatten returns the nodes of the rope in concatenation order, sorted
// into document order and deduplicated (unions of overlapping result
// lists can repeat a node).
func (nl *NodeList) Flatten() []tree.NodeID {
	if nl == nil {
		return nil
	}
	var out []tree.NodeID
	var stack []*NodeList
	stack = append(stack, nl)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.l == nil && n.r == nil {
			out = append(out, n.v)
			continue
		}
		// Push right first so left is emitted first.
		if n.r != nil {
			stack = append(stack, n.r)
		}
		if n.l != nil {
			stack = append(stack, n.l)
		}
	}
	sorted := true
	for i := 1; i < len(out); i++ {
		if out[i-1] > out[i] {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// RSet is a result set Γ (Definition C.2): the mapping from states to the
// nodes selected under them, plus its domain — the set of states
// satisfied at the current node (↓i q tests membership of q in Dom(Γi)).
// The first two entries are inlined: compiled queries rarely carry node
// lists for more than two states at once, and keeping them out of the
// heap removes the dominant per-node allocation.
type RSet struct {
	// Sat is Dom(Γ): the satisfied states.
	Sat StateSet
	// n counts the live entries across e0, e1 and more.
	n  int32
	e0 rentry
	e1 rentry
	// more holds per-state node lists beyond the first two.
	more []rentry
}

type rentry struct {
	q  State
	nl *NodeList
}

// emptyRSet is the Γ of a # leaf: nothing satisfied, nothing selected.
var emptyRSet = RSet{}

// List returns Γ(q), which is nil for states without collected nodes.
func (r *RSet) List(q State) *NodeList {
	if r.n > 0 && r.e0.q == q {
		return r.e0.nl
	}
	if r.n > 1 && r.e1.q == q {
		return r.e1.nl
	}
	for _, e := range r.more {
		if e.q == q {
			return e.nl
		}
	}
	return nil
}

// add unions nl into Γ(q), assuming q will be in Sat; rope cells come
// from the arena.
func (r *RSet) add(q State, nl *NodeList, ar *cellArena) {
	if nl == nil {
		return
	}
	if r.n > 0 && r.e0.q == q {
		r.e0.nl = ar.concat(r.e0.nl, nl)
		return
	}
	if r.n > 1 && r.e1.q == q {
		r.e1.nl = ar.concat(r.e1.nl, nl)
		return
	}
	for i := range r.more {
		if r.more[i].q == q {
			r.more[i].nl = ar.concat(r.more[i].nl, nl)
			return
		}
	}
	switch r.n {
	case 0:
		r.e0 = rentry{q, nl}
	case 1:
		r.e1 = rentry{q, nl}
	default:
		r.more = append(r.more, rentry{q, nl})
	}
	r.n++
}

// union merges another result set into r (used when combining the
// results of jumped-over sibling regions: the skipped nodes' transitions
// are pure unions, so Γ of the region is the union of the parts).
func (r *RSet) union(o *RSet, ar *cellArena) {
	r.Sat |= o.Sat
	if o.n > 0 {
		r.add(o.e0.q, o.e0.nl, ar)
	}
	if o.n > 1 {
		r.add(o.e1.q, o.e1.nl, ar)
	}
	for _, e := range o.more {
		r.add(e.q, e.nl, ar)
	}
}
