package asta

import (
	"testing"

	"repro/internal/tree"
)

func ropeOf(ids ...tree.NodeID) *NodeList {
	var nl *NodeList
	for _, v := range ids {
		nl = concat(nl, single(v))
	}
	return nl
}

func TestNodeListWalkAndIter(t *testing.T) {
	nl := concat(ropeOf(1, 3), concat(ropeOf(5), ropeOf(7, 9)))
	var got []tree.NodeID
	if done := nl.Walk(func(v tree.NodeID) bool { got = append(got, v); return true }); !done {
		t.Fatal("full walk must report completion")
	}
	want := []tree.NodeID{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("walked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walked %v, want %v", got, want)
		}
	}
	// Early stop: Walk must report the abort and visit nothing more.
	n := 0
	if done := nl.Walk(func(tree.NodeID) bool { n++; return n < 3 }); done || n != 3 {
		t.Fatalf("early stop: done=%v after %d visits", done, n)
	}
	// Iter agrees with Walk element for element.
	it := nl.Iter()
	for _, w := range want {
		v, ok := it.Next()
		if !ok || v != w {
			t.Fatalf("Iter yielded (%d,%v), want %d", v, ok, w)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("Iter must be exhausted")
	}
	// Nil rope: empty walk, empty iter.
	var empty *NodeList
	if !empty.Walk(func(tree.NodeID) bool { t.Fatal("walked a nil rope"); return true }) {
		t.Fatal("nil walk must complete")
	}
}

func TestNodeListIsSorted(t *testing.T) {
	if !ropeOf(1, 2, 2, 5).IsSorted() {
		t.Error("non-decreasing rope must be sorted")
	}
	if ropeOf(1, 5, 3).IsSorted() {
		t.Error("out-of-order rope must not be sorted")
	}
	var empty *NodeList
	if !empty.IsSorted() {
		t.Error("empty rope is trivially sorted")
	}
}

func TestResultWalk(t *testing.T) {
	collect := func(r *Result) []tree.NodeID {
		var got []tree.NodeID
		r.Walk(func(v tree.NodeID) bool { got = append(got, v); return true })
		return got
	}
	eq := func(got []tree.NodeID, want ...tree.NodeID) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	// Sorted rope: streamed with adjacent-duplicate skipping.
	sorted := &Result{List: ropeOf(1, 2, 2, 5)}
	if got := collect(sorted); !eq(got, 1, 2, 5) {
		t.Errorf("sorted rope walk = %v, want [1 2 5]", got)
	}
	// Unsorted rope: falls back to one Flatten (sorted, deduped).
	unsorted := &Result{List: ropeOf(5, 1, 3, 1)}
	if got := collect(unsorted); !eq(got, 1, 3, 5) {
		t.Errorf("unsorted rope walk = %v, want [1 3 5]", got)
	}
	// Materialized result (Eval cleared the rope): walks Selected.
	mat := &Result{Selected: []tree.NodeID{2, 4}}
	if got := collect(mat); !eq(got, 2, 4) {
		t.Errorf("materialized walk = %v, want [2 4]", got)
	}
	// Early stop on every representation.
	for name, r := range map[string]*Result{"rope": sorted, "slice": mat} {
		n := 0
		r.Walk(func(tree.NodeID) bool { n++; return false })
		if n != 1 {
			t.Errorf("%s: early stop visited %d nodes, want 1", name, n)
		}
	}
}
