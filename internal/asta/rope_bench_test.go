package asta

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/tree"
)

// BenchmarkRopePaging measures the cost of resuming a paged answer —
// seek to a mid-answer position, read one page — as the answer grows.
// The ropes are built exactly the way evaluation builds them:
// adversarially left-leaning, one Concat(rope, Single) per element.
//
//   - resume-seek is the chunked-rope path: IterAfter's metadata
//     descent plus a 64-node page. Per-page cost must stay flat in the
//     answer size (O(page + log n)).
//   - resume-scan is the representation the chunked rope replaced: walk
//     from the start and discard until the resume point, which is
//     O(position) per page and made paging an n-node answer in p pages
//     quadratic.
//
// The BENCH_rope.json trajectory (TestEmitRopeBenchJSON) records both
// series plus the structural numbers (tree height, peak iterator
// stack) that bound the resume cost and the streaming memory.
func BenchmarkRopePaging(b *testing.B) {
	const page = 64
	for _, n := range []int{4096, 65536, 1048576} {
		rope := buildAppendRope(n)
		resumeAt := tree.NodeID(n * 3 / 4)
		b.Run(fmt.Sprintf("resume-seek/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]tree.NodeID, 0, page)
			for i := 0; i < b.N; i++ {
				it := rope.IterAfter(resumeAt)
				buf = buf[:0]
				for len(buf) < page {
					v, ok := it.Next()
					if !ok {
						break
					}
					buf = append(buf, v)
				}
				if len(buf) == 0 || buf[0] != resumeAt+1 {
					b.Fatalf("bad page start: %v", buf[:1])
				}
			}
			b.ReportMetric(float64(rope.height), "tree-height")
		})
		b.Run(fmt.Sprintf("resume-scan/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]tree.NodeID, 0, page)
			for i := 0; i < b.N; i++ {
				it := rope.Iter()
				buf = buf[:0]
				for len(buf) < page {
					v, ok := it.Next()
					if !ok {
						break
					}
					if v <= resumeAt {
						continue
					}
					buf = append(buf, v)
				}
				if len(buf) == 0 || buf[0] != resumeAt+1 {
					b.Fatalf("bad page start: %v", buf[:1])
				}
			}
		})
	}
}

// buildAppendRope builds 0..n-1 by n left-leaning single appends.
func buildAppendRope(n int) *NodeList {
	var nl *NodeList
	for i := 0; i < n; i++ {
		nl = Concat(nl, Single(tree.NodeID(i)))
	}
	return nl
}

// peakIterStack fully iterates the rope and reports the deepest
// iterator stack seen — the streaming-memory bound.
func peakIterStack(nl *NodeList) int {
	it := nl.Iter()
	peak := 0
	for {
		if len(it.stack) > peak {
			peak = len(it.stack)
		}
		if _, ok := it.Next(); !ok {
			return peak
		}
	}
}

// ropeBenchJSON is one trajectory point of the BENCH_rope.json series.
type ropeBenchJSON struct {
	Benchmark string `json:"benchmark"`
	Variant   string `json:"variant"`
	AnswerN   int    `json:"answer_nodes"`
	PageSize  int    `json:"page_size"`
	NsPerOp   int64  `json:"ns_per_op"`
	BytesOp   int64  `json:"alloc_bytes_per_op"`
	AllocsOp  int64  `json:"allocs_per_op"`
	Height    int    `json:"tree_height"`
	PeakStack int    `json:"peak_iter_stack"`
	GoVersion string `json:"go_version"`
}

// TestEmitRopeBenchJSON runs the paging-resume comparison via
// testing.Benchmark and writes the series as JSON. Skipped unless
// BENCH_JSON names the output file:
//
//	BENCH_JSON=BENCH_rope.json go test -run TestEmitRopeBenchJSON ./internal/asta
func TestEmitRopeBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<file> to emit the benchmark trajectory point")
	}
	const page = 64
	var out []ropeBenchJSON
	for _, n := range []int{4096, 65536, 1048576} {
		rope := buildAppendRope(n)
		resumeAt := tree.NodeID(n * 3 / 4)
		variants := []struct {
			name string
			run  func()
		}{
			{"resume-seek", func() {
				it := rope.IterAfter(resumeAt)
				for i := 0; i < page; i++ {
					if _, ok := it.Next(); !ok {
						break
					}
				}
			}},
			{"resume-scan", func() {
				it := rope.Iter()
				got := 0
				for got < page {
					v, ok := it.Next()
					if !ok {
						break
					}
					if v > resumeAt {
						got++
					}
				}
			}},
		}
		height, peak := int(rope.height), peakIterStack(rope)
		for _, v := range variants {
			run := v.run
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					run()
				}
			})
			out = append(out, ropeBenchJSON{
				Benchmark: "BenchmarkRopePaging",
				Variant:   v.name,
				AnswerN:   n,
				PageSize:  page,
				NsPerOp:   r.NsPerOp(),
				BytesOp:   r.AllocedBytesPerOp(),
				AllocsOp:  r.AllocsPerOp(),
				Height:    height,
				PeakStack: peak,
				GoVersion: runtime.Version(),
			})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
