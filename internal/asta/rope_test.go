package asta

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
	"repro/internal/labels"
	"repro/internal/tgen"
	"repro/internal/tree"
)

// brute mirrors a rope as a plain slice: the oracle every metadata and
// traversal property is checked against.
func brute(nl *NodeList) []tree.NodeID {
	var out []tree.NodeID
	nl.Walk(func(v tree.NodeID) bool { out = append(out, v); return true })
	return out
}

// checkInvariants walks the rope structurally and fails on any violated
// construction invariant: AVL balance at interior nodes, non-empty
// bounded leaves, and metadata (count, dups, first/last, sorted,
// height) agreeing with a recomputation from the children.
func checkInvariants(t *testing.T, nl *NodeList) {
	t.Helper()
	var rec func(n *NodeList) (count, dups int32, first, last tree.NodeID, sorted bool, height int32)
	rec = func(n *NodeList) (int32, int32, tree.NodeID, tree.NodeID, bool, int32) {
		if n.l == nil && n.r == nil {
			if len(n.elems) == 0 || len(n.elems) > leafMax {
				t.Fatalf("leaf size %d outside (0, %d]", len(n.elems), leafMax)
			}
			count, dups, sorted := int32(len(n.elems)), int32(0), true
			for i := 1; i < len(n.elems); i++ {
				if n.elems[i] < n.elems[i-1] {
					sorted = false
				}
				if n.elems[i] == n.elems[i-1] {
					dups++
				}
			}
			return count, dups, n.elems[0], n.elems[len(n.elems)-1], sorted, 1
		}
		if n.l == nil || n.r == nil {
			t.Fatal("interior node with a single child")
		}
		lc, ld, lf, ll, ls, lh := rec(n.l)
		rc, rd, rf, rl, rs, rh := rec(n.r)
		if lh-rh > 1 || rh-lh > 1 {
			t.Fatalf("balance violated: sibling heights %d and %d", lh, rh)
		}
		count := lc + rc
		dups := ld + rd
		if ll == rf {
			dups++
		}
		sorted := ls && rs && ll <= rf
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.count != count || n.dups != dups || n.first != lf || n.last != rl ||
			n.sorted != sorted || n.height != h {
			t.Fatalf("metadata mismatch: node{count=%d dups=%d first=%d last=%d sorted=%v height=%d}, recomputed {%d %d %d %d %v %d}",
				n.count, n.dups, n.first, n.last, n.sorted, n.height,
				count, dups, lf, rl, sorted, h)
		}
		return count, dups, lf, rl, sorted, h
	}
	if nl != nil {
		rec(nl)
	}
}

// log2ceil is a helper bound: smallest k with 2^k >= n.
func log2ceil(n int) int {
	k := 0
	for (1 << k) < n {
		k++
	}
	return k
}

// TestConcatBalanceAdversarial is the acceptance property: ropes built
// by the worst construction order — n one-element left-leaning concats,
// exactly the evaluator's accumulation pattern — stay height-balanced,
// so the Iter stack is O(log n) instead of the former O(n).
func TestConcatBalanceAdversarial(t *testing.T) {
	const n = 100000
	build := func(leftLeaning bool) *NodeList {
		var nl *NodeList
		for i := 0; i < n; i++ {
			if leftLeaning {
				nl = Concat(nl, Single(tree.NodeID(i)))
			} else {
				nl = Concat(Single(tree.NodeID(n-1-i)), nl)
			}
		}
		return nl
	}
	for _, dir := range []string{"left-leaning", "right-leaning"} {
		nl := build(dir == "left-leaning")
		checkInvariants(t, nl)
		if nl.Len() != n {
			t.Fatalf("%s: Len = %d, want %d", dir, nl.Len(), n)
		}
		// AVL height bound: 1.44*log2(leafCount) + O(1); be generous but
		// categorical — anything linear blows this immediately.
		maxH := 2*log2ceil(n) + 4
		if int(nl.height) > maxH {
			t.Fatalf("%s: height %d exceeds O(log n) bound %d", dir, nl.height, maxH)
		}
		// Iterate fully, tracking the peak stack depth.
		it := nl.Iter()
		peak := 0
		for i := 0; ; i++ {
			if len(it.stack) > peak {
				peak = len(it.stack)
			}
			v, ok := it.Next()
			if !ok {
				if i != n {
					t.Fatalf("%s: iterated %d elements, want %d", dir, i, n)
				}
				break
			}
			if v != tree.NodeID(i) {
				t.Fatalf("%s: element %d = %d", dir, i, v)
			}
		}
		if peak > int(nl.height) {
			t.Fatalf("%s: Iter stack peaked at %d, above tree height %d", dir, peak, nl.height)
		}
		if !nl.IsSorted() {
			t.Fatalf("%s: ascending rope must report sorted", dir)
		}
		if nl.Distinct() != n {
			t.Fatalf("%s: Distinct = %d, want %d", dir, nl.Distinct(), n)
		}
	}
}

// TestRopeMetadataOracle drives random concat trees — mixed singles,
// runs, duplicates, unsorted segments, shared subtrees — and checks
// every cached metadata field, Walk order, Flatten, Len and Distinct
// against the brute-force slice oracle.
func TestRopeMetadataOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for round := 0; round < 300; round++ {
		// Random forest of small ropes, then random concatenation order.
		var parts []*NodeList
		var oracle [][]tree.NodeID
		for i := 0; i < 2+rng.Intn(12); i++ {
			ln := 1 + rng.Intn(9)
			elems := make([]tree.NodeID, ln)
			base := rng.Intn(1000)
			for j := range elems {
				switch rng.Intn(3) {
				case 0: // ascending run
					elems[j] = tree.NodeID(base + j)
				case 1: // duplicate-heavy
					elems[j] = tree.NodeID(base)
				default: // noise
					elems[j] = tree.NodeID(rng.Intn(2000))
				}
			}
			var p *NodeList
			for _, v := range elems {
				p = Concat(p, Single(v))
			}
			parts = append(parts, p)
			oracle = append(oracle, elems)
		}
		for len(parts) > 1 {
			i := rng.Intn(len(parts) - 1)
			parts[i] = Concat(parts[i], parts[i+1])
			oracle[i] = append(oracle[i], oracle[i+1]...)
			parts = append(parts[:i+1], parts[i+2:]...)
			oracle = append(oracle[:i+1], oracle[i+2:]...)
		}
		nl, want := parts[0], oracle[0]
		checkInvariants(t, nl)

		got := brute(nl)
		if len(got) != len(want) {
			t.Fatalf("round %d: walked %d elements, want %d", round, len(got), len(want))
		}
		sorted, dups := true, 0
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: element %d = %d, want %d", round, i, got[i], want[i])
			}
			if i > 0 && want[i] < want[i-1] {
				sorted = false
			}
			if i > 0 && want[i] == want[i-1] {
				dups++
			}
		}
		if nl.IsSorted() != sorted {
			t.Fatalf("round %d: IsSorted = %v, oracle %v", round, nl.IsSorted(), sorted)
		}
		if nl.Len() != len(want) {
			t.Fatalf("round %d: Len = %d, want %d", round, nl.Len(), len(want))
		}
		if nl.Distinct() != len(want)-dups {
			t.Fatalf("round %d: Distinct = %d, want %d", round, nl.Distinct(), len(want)-dups)
		}

		// Flatten: sorted, duplicate-free, exactly the distinct values.
		flat := nl.Flatten()
		ref := append([]tree.NodeID(nil), want...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		w := 0
		for i, v := range ref {
			if i == 0 || v != ref[w-1] {
				ref[w] = v
				w++
			}
		}
		ref = ref[:w]
		if len(flat) != len(ref) {
			t.Fatalf("round %d: Flatten %d values, want %d", round, len(flat), len(ref))
		}
		for i := range ref {
			if flat[i] != ref[i] {
				t.Fatalf("round %d: Flatten[%d] = %d, want %d", round, i, flat[i], ref[i])
			}
		}
	}
}

// TestIterAfterAgainstOracle checks the logarithmic seek on sorted
// ropes: for every probe value the suffix equals the oracle suffix, the
// descent's stack stays within the tree height, and every stacked
// subtree still contains wanted elements (nothing skipped is ever
// touched, nothing wanted is ever dropped). Unsorted ropes must degrade
// to a full iterator.
func TestIterAfterAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Sorted rope with duplicate runs, built adversarially left-leaning.
	var nl *NodeList
	var want []tree.NodeID
	v := tree.NodeID(0)
	for len(want) < 50000 {
		run := 1 + rng.Intn(3)
		for i := 0; i < run; i++ {
			nl = Concat(nl, Single(v))
			want = append(want, v)
		}
		v += tree.NodeID(1 + rng.Intn(4))
	}
	checkInvariants(t, nl)
	probes := []tree.NodeID{tree.Nil, 0, 1, want[len(want)/2], want[len(want)-1], want[len(want)-1] + 10}
	for i := 0; i < 100; i++ {
		probes = append(probes, want[rng.Intn(len(want))]+tree.NodeID(rng.Intn(3)-1))
	}
	for _, p := range probes {
		it := nl.IterAfter(p)
		if len(it.stack) > int(nl.height) {
			t.Fatalf("probe %d: seek stack %d exceeds height %d", p, len(it.stack), nl.height)
		}
		// Structural no-skipped-leaves property: everything still on the
		// stack (or in the current leaf) contains at least one wanted
		// element, i.e. the descent pruned exactly the consumed prefix.
		for _, sub := range it.stack {
			if sub.last <= p {
				t.Fatalf("probe %d: stacked subtree entirely <= probe (last=%d)", p, sub.last)
			}
		}
		i := sort.Search(len(want), func(i int) bool { return want[i] > p })
		for ; ; i++ {
			v, ok := it.Next()
			if i == len(want) {
				if ok {
					t.Fatalf("probe %d: iterator yielded %d past the oracle end", p, v)
				}
				break
			}
			if !ok || v != want[i] {
				t.Fatalf("probe %d: suffix element %d = (%d,%v), want %d", p, i, v, ok, want[i])
			}
		}
	}

	// Unsorted rope: IterAfter must fall back to the full sequence.
	uns := Concat(Concat(Single(9), Single(2)), Single(5))
	it := uns.IterAfter(4)
	var got []tree.NodeID
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 3 || got[0] != 9 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("unsorted IterAfter = %v, want full sequence [9 2 5]", got)
	}
}

// TestEvalLazyRopeIsBalanced pins the exposure contract: whatever raw
// accumulation shape evaluation produced internally, the rope handed
// out on Result.List satisfies the balance and metadata invariants, so
// every consumer iterates with an O(log n) stack. The //a automaton is
// built by hand (the compiler lives upstream of this package) and run
// over a deep random document whose every node matches — the worst
// left-accumulation case.
func TestEvalLazyRopeIsBalanced(t *testing.T) {
	d := tgen.Random(5, tgen.Config{Labels: []string{"a", "b"}, MaxNodes: 6000})
	ix := index.New(d)
	aID, ok := d.Names().Lookup("a")
	if !ok {
		t.Fatal("no a label")
	}
	// //a: qI reads #doc and launches the descendant search qA, which
	// selects on label a and recurses through both binary children.
	const qI, qA = State(0), State(1)
	aut, err := (&ASTA{
		NumStates: 2,
		Top:       StateSet(0).With(qI),
		Trans: []Transition{
			{From: qI, Guard: labels.Of(tree.LabelDoc), Phi: Down1(qA)},
			{From: qA, Guard: labels.Of(aID), Phi: True(), Selecting: true},
			{From: qA, Guard: labels.Any, Phi: Or(Down1(qA), Down2(qA))},
		},
	}).Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Options{{}, {Jump: true}, {Memo: true}, Opt()} {
		res := aut.EvalLazy(d, ix, mode)
		if res.List == nil {
			t.Fatal("expected a non-empty answer")
		}
		checkInvariants(t, res.List)
		n := res.List.Len()
		if n < 100 {
			t.Fatalf("answer too small (%d) to be interesting", n)
		}
		if maxH := 2*log2ceil(n+2) + 4; int(res.List.height) > maxH {
			t.Errorf("mode %+v: exposed rope height %d above bound %d for %d elements", mode, res.List.height, maxH, n)
		}
		if !res.List.IsSorted() {
			t.Errorf("mode %+v: //a answer must be in document order", mode)
		}
	}
}
