package asta

// Open-addressed hash tables over flat slices for the evaluator's three
// hot-path lookups (set interning, eval_trans recipes, information-
// propagation r2 restrictions). The paper's cost model assumes these
// lookups are effectively free once memoized; Go's built-in map gets
// close for one evaluation but pays hashing overhead, per-entry heap
// cells and a rebuild on every evaluation. The tables here use linear
// probing over power-of-two capacities, store entries inline (no
// per-entry allocation), and clear in O(capacity) only on a full
// Context reset — a warm re-evaluation touches them read-mostly.

// hash64 is the splitmix64 finalizer: a full-avalanche mix for machine
// words, which is exactly what StateSets are.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const tableInitCap = 32 // power of two; small queries stay in one cache line's worth of probes

// hash implements tableKey for interned state sets.
func (s StateSet) hash() uint64 { return hash64(uint64(s)) }

// recipeKey identifies one memoized eval_trans outcome: the transInfo
// (which fixes the active transitions) and the children's satisfied
// sets.
type recipeKey struct {
	ti     int32
	s1, s2 StateSet
}

func (k recipeKey) hash() uint64 {
	h := hash64(uint64(uint32(k.ti))*0x9e3779b97f4a7c15 ^ uint64(k.s1))
	return h ^ hash64(uint64(k.s2)+0x9e3779b97f4a7c15)
}

// r2Key identifies one information-propagation restriction: the
// transInfo and the first child's satisfied set.
type r2Key struct {
	ti int32
	s1 StateSet
}

func (k r2Key) hash() uint64 {
	return hash64(uint64(uint32(k.ti))*0x9e3779b97f4a7c15 ^ uint64(k.s1))
}

// tableKey is what an openTable can be keyed on.
type tableKey interface {
	comparable
	hash() uint64
}

// openTable is the open-addressed map: linear probing over a
// power-of-two capacity, entries stored inline in parallel flat
// slices, occupancy in its own byte slice so any key/value types work
// without sentinel values. Zero value is an empty table; put grows at
// 3/4 load.
type openTable[K tableKey, V any] struct {
	keys []K
	vals []V
	used []bool
	n    int
}

func (t *openTable[K, V]) init(capacity int) {
	if capacity < tableInitCap {
		capacity = tableInitCap
	}
	t.keys = make([]K, capacity)
	t.vals = make([]V, capacity)
	t.used = make([]bool, capacity)
	t.n = 0
}

// clear empties the table in place, keeping the backing arrays.
func (t *openTable[K, V]) clear() {
	for i := range t.used {
		t.used[i] = false
	}
	t.n = 0
}

func (t *openTable[K, V]) get(k K) (V, bool) {
	var zero V
	if len(t.used) == 0 {
		return zero, false
	}
	mask := uint64(len(t.used) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if !t.used[i] {
			return zero, false
		}
		if t.keys[i] == k {
			return t.vals[i], true
		}
	}
}

func (t *openTable[K, V]) put(k K, v V) {
	if len(t.used) == 0 {
		t.init(tableInitCap)
	} else if 4*(t.n+1) > 3*len(t.used) {
		t.grow()
	}
	mask := uint64(len(t.used) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if !t.used[i] {
			t.keys[i], t.vals[i], t.used[i] = k, v, true
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

func (t *openTable[K, V]) grow() {
	oldK, oldV, oldU := t.keys, t.vals, t.used
	t.init(2 * len(oldU))
	mask := uint64(len(t.used) - 1)
	for j, used := range oldU {
		if !used {
			continue
		}
		k := oldK[j]
		for i := k.hash() & mask; ; i = (i + 1) & mask {
			if !t.used[i] {
				t.keys[i], t.vals[i], t.used[i] = k, oldV[j], true
				t.n++
				break
			}
		}
	}
}

// memBytes estimates the table's resident bytes given the per-slot
// key+value size.
func (t *openTable[K, V]) memBytes(slotSize int64) int64 {
	return int64(len(t.used)) * (slotSize + 1)
}

// tiStore holds transInfo rows in fixed-size chunks: dense int32 ids
// for table keys, stable addresses (a chunk is never reallocated) so a
// *transInfo held across the recursive child evaluations stays valid,
// and no per-row allocation in steady state — chunks are retained
// across Context resets.
type tiStore struct {
	chunks [][]transInfo
	n      int32
}

const tiChunk = 64

func (s *tiStore) new() *transInfo {
	ci := int(s.n) / tiChunk
	if ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]transInfo, tiChunk))
	}
	ti := &s.chunks[ci][int(s.n)%tiChunk]
	*ti = transInfo{id: s.n, r1ID: -1, r2ID: -1}
	s.n++
	return ti
}

func (s *tiStore) at(id int32) *transInfo {
	return &s.chunks[id/tiChunk][id%tiChunk]
}

// reset forgets all rows but keeps the chunks for reuse.
func (s *tiStore) reset() { s.n = 0 }

func (s *tiStore) memBytes() int64 {
	const tiSize = 64 // transInfo struct, padded
	return int64(len(s.chunks)) * tiChunk * tiSize
}

// sliceArena chunk-allocates windows out of []T blocks: transition
// lists, per-set label rows, recipe op-lists, rope cells and rope leaf
// storage are carved here instead of per-row make calls. Carved
// windows are never grown — chunks too full for a request are skipped,
// not reallocated — so addresses stay stable; reset rewinds every
// chunk in place for reuse. chunkSize must be set before the first
// carve.
type sliceArena[T any] struct {
	chunks    [][]T
	ci        int
	chunkSize int
}

const (
	i32Chunk = 1024 // int32 arena: transition lists + label rows
	opChunk  = 512  // recipe op-lists
)

// carve returns a zero-length, capacity-n window exclusively the
// caller's: the full-slice-expression cap keeps later carvings (and
// appends past the window) out of it.
func (a *sliceArena[T]) carve(n int) []T {
	for {
		if a.ci == len(a.chunks) {
			c := a.chunkSize
			if n > c {
				c = n
			}
			a.chunks = append(a.chunks, make([]T, 0, c))
		}
		ch := a.chunks[a.ci]
		if cap(ch)-len(ch) >= n {
			base := len(ch)
			a.chunks[a.ci] = ch[: base+n : cap(ch)]
			return ch[base : base : base+n]
		}
		a.ci++
	}
}

// carveFull is carve with the window's length already set to n, for
// callers that index instead of appending.
func (a *sliceArena[T]) carveFull(n int) []T {
	w := a.carve(n)
	return w[:n]
}

func (a *sliceArena[T]) copyOf(src []T) []T {
	if len(src) == 0 {
		return nil
	}
	return append(a.carve(len(src)), src...)
}

func (a *sliceArena[T]) reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.ci = 0
}

func (a *sliceArena[T]) memBytes(elemSize int64) int64 {
	var b int64
	for _, ch := range a.chunks {
		b += elemSize * int64(cap(ch))
	}
	return b
}
