// Package bitvec provides a static bit vector with constant-time rank and
// O(log n) select queries. It is the base layer of the succinct tree
// representation in internal/bp, which in turn backs the jumping tree index
// used by the automata evaluator (the role played by the compressed XML
// indexes of Arroyuelo et al. in the paper).
package bitvec

import (
	"fmt"
	"math/bits"
)

const (
	wordBits = 64
	// superBits is the span of one rank superblock in bits. Ranks are
	// cumulative per superblock, so rank queries read one superblock
	// counter plus at most superBits/wordBits words.
	superBits = 512
	wordsPer  = superBits / wordBits
)

// Builder accumulates bits and produces an immutable Vector.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a Builder with capacity for n bits preallocated.
func NewBuilder(n int) *Builder {
	return &Builder{words: make([]uint64, 0, (n+wordBits-1)/wordBits)}
}

// Append adds one bit to the end of the vector under construction.
func (b *Builder) Append(bit bool) {
	if b.n%wordBits == 0 {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[b.n/wordBits] |= 1 << uint(b.n%wordBits)
	}
	b.n++
}

// AppendN adds the same bit value n times.
func (b *Builder) AppendN(bit bool, n int) {
	for i := 0; i < n; i++ {
		b.Append(bit)
	}
}

// appendBits appends the low nbits of w (nbits in [1, 64]).
func (b *Builder) appendBits(w uint64, nbits int) {
	if nbits < wordBits {
		w &= 1<<uint(nbits) - 1
	}
	off := uint(b.n % wordBits)
	if off == 0 {
		b.words = append(b.words, w)
	} else {
		b.words[len(b.words)-1] |= w << off
		if int(off)+nbits > wordBits {
			b.words = append(b.words, w>>(wordBits-off))
		}
	}
	b.n += nbits
}

// AppendRange appends bits [from, to) of src, copying word-at-a-time
// instead of bit-by-bit — the workhorse of the BP splice, where all but
// a fragment-sized window of the parenthesis sequence is carried over
// unchanged.
func (b *Builder) AppendRange(src *Vector, from, to int) {
	if from < 0 || to > src.n || from > to {
		panic("bitvec: append range out of bounds")
	}
	for from+wordBits <= to {
		b.appendBits(src.word64(from), wordBits)
		from += wordBits
	}
	if rem := to - from; rem > 0 {
		b.appendBits(src.word64(from), rem)
	}
}

// Len reports the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// Build finalizes the bits into an immutable Vector with rank/select
// support. The Builder must not be used afterwards.
func (b *Builder) Build() *Vector {
	v := &Vector{words: b.words, n: b.n}
	v.buildRank()
	b.words = nil
	b.n = 0
	return v
}

// Vector is an immutable bit vector supporting Get, Rank and Select.
type Vector struct {
	words []uint64
	n     int
	// super[i] = number of 1-bits strictly before superblock i.
	super []uint64
	ones  int
}

// FromBools builds a Vector from a boolean slice; useful in tests.
func FromBools(bits []bool) *Vector {
	b := NewBuilder(len(bits))
	for _, bit := range bits {
		b.Append(bit)
	}
	return b.Build()
}

func (v *Vector) buildRank() {
	nSuper := (len(v.words) + wordsPer - 1) / wordsPer
	v.super = make([]uint64, nSuper+1)
	var acc uint64
	for i := 0; i < nSuper; i++ {
		v.super[i] = acc
		end := (i + 1) * wordsPer
		if end > len(v.words) {
			end = len(v.words)
		}
		for _, w := range v.words[i*wordsPer : end] {
			acc += uint64(bits.OnesCount64(w))
		}
	}
	v.super[nSuper] = acc
	v.ones = int(acc)
}

// Len reports the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Ones reports the total number of 1-bits.
func (v *Vector) Ones() int { return v.ones }

// Zeros reports the total number of 0-bits.
func (v *Vector) Zeros() int { return v.n - v.ones }

// Get reports the bit at position i (0-based).
func (v *Vector) Get(i int) bool {
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// word64 reads up to 64 bits starting at bit position i; bits past the
// vector's end are zero.
func (v *Vector) word64(i int) uint64 {
	wi, off := i/wordBits, uint(i%wordBits)
	w := v.words[wi] >> off
	if off != 0 && wi+1 < len(v.words) {
		w |= v.words[wi+1] << (wordBits - off)
	}
	return w
}

// Rank1 returns the number of 1-bits in positions [0, i), i.e. strictly
// before position i. Rank1(Len()) equals Ones().
func (v *Vector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	sb := i / superBits
	r := v.super[sb]
	w := sb * wordsPer
	for ; (w+1)*wordBits <= i; w++ {
		r += uint64(bits.OnesCount64(v.words[w]))
	}
	if rem := i - w*wordBits; rem > 0 {
		r += uint64(bits.OnesCount64(v.words[w] & (1<<uint(rem) - 1)))
	}
	return int(r)
}

// Rank0 returns the number of 0-bits strictly before position i.
func (v *Vector) Rank0(i int) int {
	if i < 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	return i - v.Rank1(i)
}

// Select1 returns the position of the k-th 1-bit (1-based): the smallest p
// with Rank1(p+1) == k. It returns -1 if there are fewer than k ones.
func (v *Vector) Select1(k int) int {
	if k <= 0 || k > v.ones {
		return -1
	}
	// Binary search over superblocks.
	lo, hi := 0, len(v.super)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v.super[mid] < uint64(k) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(v.super[lo])
	w := lo * wordsPer
	for ; w < len(v.words); w++ {
		c := bits.OnesCount64(v.words[w])
		if c >= rem {
			break
		}
		rem -= c
	}
	return w*wordBits + selectInWord(v.words[w], rem)
}

// Select0 returns the position of the k-th 0-bit (1-based), or -1.
func (v *Vector) Select0(k int) int {
	if k <= 0 || k > v.n-v.ones {
		return -1
	}
	lo, hi := 0, v.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Rank0(mid+1) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// selectInWord returns the position (0-63) of the k-th set bit (1-based) in w.
func selectInWord(w uint64, k int) int {
	for i := 1; i < k; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// String renders short vectors as 0/1 strings for debugging.
func (v *Vector) String() string {
	if v.n > 256 {
		return fmt.Sprintf("bitvec.Vector(len=%d, ones=%d)", v.n, v.ones)
	}
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
