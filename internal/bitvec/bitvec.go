// Package bitvec provides a static bit vector with constant-time rank and
// O(log n) select queries. It is the base layer of the succinct tree
// representation in internal/bp, which in turn backs the jumping tree index
// used by the automata evaluator (the role played by the compressed XML
// indexes of Arroyuelo et al. in the paper).
package bitvec

import (
	"fmt"
	"math/bits"
)

const (
	wordBits = 64
	// superBits is the span of one rank superblock in bits. Ranks are
	// cumulative per superblock, so rank queries read one superblock
	// counter plus at most superBits/wordBits words.
	superBits = 512
	wordsPer  = superBits / wordBits
)

// Broadword constants (Vigna, "Broadword implementation of rank/select
// queries"): l8 replicates a byte across the word, h8 marks the high bit
// of every byte.
const (
	l8 = 0x0101010101010101
	h8 = 0x8080808080808080
)

// selByte[b][j] is the position (0-7) of the (j+1)-th set bit of byte b;
// entries past the byte's popcount are unused. 2KB, built once — the
// in-byte half of the branchless word select.
var selByte [256][8]uint8

func init() {
	for b := 0; b < 256; b++ {
		j := 0
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				selByte[b][j] = uint8(i)
				j++
			}
		}
	}
}

// Builder accumulates bits and produces an immutable Vector.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a Builder with capacity for n bits preallocated.
func NewBuilder(n int) *Builder {
	return &Builder{words: make([]uint64, 0, (n+wordBits-1)/wordBits)}
}

// Append adds one bit to the end of the vector under construction.
func (b *Builder) Append(bit bool) {
	if b.n%wordBits == 0 {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[b.n/wordBits] |= 1 << uint(b.n%wordBits)
	}
	b.n++
}

// AppendN adds the same bit value n times.
func (b *Builder) AppendN(bit bool, n int) {
	for i := 0; i < n; i++ {
		b.Append(bit)
	}
}

// appendBits appends the low nbits of w (nbits in [1, 64]).
func (b *Builder) appendBits(w uint64, nbits int) {
	if nbits < wordBits {
		w &= 1<<uint(nbits) - 1
	}
	off := uint(b.n % wordBits)
	if off == 0 {
		b.words = append(b.words, w)
	} else {
		b.words[len(b.words)-1] |= w << off
		if int(off)+nbits > wordBits {
			b.words = append(b.words, w>>(wordBits-off))
		}
	}
	b.n += nbits
}

// AppendRange appends bits [from, to) of src, copying word-at-a-time
// instead of bit-by-bit — the workhorse of the BP splice, where all but
// a fragment-sized window of the parenthesis sequence is carried over
// unchanged.
func (b *Builder) AppendRange(src *Vector, from, to int) {
	if from < 0 || to > src.n || from > to {
		panic("bitvec: append range out of bounds")
	}
	for from+wordBits <= to {
		b.appendBits(src.word64(from), wordBits)
		from += wordBits
	}
	if rem := to - from; rem > 0 {
		b.appendBits(src.word64(from), rem)
	}
}

// Len reports the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// Build finalizes the bits into an immutable Vector with rank/select
// support. The Builder must not be used afterwards.
func (b *Builder) Build() *Vector {
	v := &Vector{words: b.words, n: b.n}
	v.buildRank()
	b.words = nil
	b.n = 0
	return v
}

// Vector is an immutable bit vector supporting Get, Rank and Select.
type Vector struct {
	words []uint64
	n     int
	// super[i] = number of 1-bits strictly before superblock i.
	super []uint64
	ones  int
}

// FromBools builds a Vector from a boolean slice; useful in tests.
func FromBools(bits []bool) *Vector {
	b := NewBuilder(len(bits))
	for _, bit := range bits {
		b.Append(bit)
	}
	return b.Build()
}

func (v *Vector) buildRank() {
	nSuper := (len(v.words) + wordsPer - 1) / wordsPer
	v.super = make([]uint64, nSuper+1)
	var acc uint64
	for i := 0; i < nSuper; i++ {
		v.super[i] = acc
		end := (i + 1) * wordsPer
		if end > len(v.words) {
			end = len(v.words)
		}
		for _, w := range v.words[i*wordsPer : end] {
			acc += uint64(bits.OnesCount64(w))
		}
	}
	v.super[nSuper] = acc
	v.ones = int(acc)
}

// Len reports the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Ones reports the total number of 1-bits.
func (v *Vector) Ones() int { return v.ones }

// Zeros reports the total number of 0-bits.
func (v *Vector) Zeros() int { return v.n - v.ones }

// Get reports the bit at position i (0-based).
func (v *Vector) Get(i int) bool {
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Byte reads the 8 bits starting at bit position i, which must be a
// multiple of 8 (so the read never crosses a word). Bits past the
// vector's end read as zero. The balanced-parentheses excess kernels
// step through blocks with this.
func (v *Vector) Byte(i int) byte {
	return byte(v.words[i>>6] >> (uint(i) & 63))
}

// word64 reads up to 64 bits starting at bit position i; bits past the
// vector's end are zero.
func (v *Vector) word64(i int) uint64 {
	wi, off := i/wordBits, uint(i%wordBits)
	w := v.words[wi] >> off
	if off != 0 && wi+1 < len(v.words) {
		w |= v.words[wi+1] << (wordBits - off)
	}
	return w
}

// Rank1 returns the number of 1-bits in positions [0, i), i.e. strictly
// before position i. Rank1(Len()) equals Ones().
func (v *Vector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	sb := i / superBits
	r := v.super[sb]
	w := sb * wordsPer
	for ; (w+1)*wordBits <= i; w++ {
		r += uint64(bits.OnesCount64(v.words[w]))
	}
	if rem := i - w*wordBits; rem > 0 {
		r += uint64(bits.OnesCount64(v.words[w] & (1<<uint(rem) - 1)))
	}
	return int(r)
}

// Rank0 returns the number of 0-bits strictly before position i.
func (v *Vector) Rank0(i int) int {
	if i < 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	return i - v.Rank1(i)
}

// Select1 returns the position of the k-th 1-bit (1-based): the smallest p
// with Rank1(p+1) == k. It returns -1 if there are fewer than k ones.
func (v *Vector) Select1(k int) int {
	if k <= 0 || k > v.ones {
		return -1
	}
	// Binary search over superblocks.
	lo, hi := 0, len(v.super)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v.super[mid] < uint64(k) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(v.super[lo])
	w := lo * wordsPer
	for ; w < len(v.words); w++ {
		c := bits.OnesCount64(v.words[w])
		if c >= rem {
			break
		}
		rem -= c
	}
	return w*wordBits + selectInWord(v.words[w], rem)
}

// Select0 returns the position of the k-th 0-bit (1-based), or -1. Like
// Select1 it binary-searches the superblock directory (zeros before
// superblock i are i*superBits - super[i]) and finishes with one
// word-level select — not a positional binary search over Rank0 calls.
func (v *Vector) Select0(k int) int {
	if k <= 0 || k > v.n-v.ones {
		return -1
	}
	// zerosBefore(i), capped at the vector's end for the final
	// (possibly partial) superblock.
	zerosBefore := func(i int) int {
		bitsBefore := i * superBits
		if bitsBefore > v.n {
			bitsBefore = v.n
		}
		return bitsBefore - int(v.super[i])
	}
	lo, hi := 0, len(v.super)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if zerosBefore(mid) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - zerosBefore(lo)
	w := lo * wordsPer
	for ; w < len(v.words); w++ {
		// Zeros in this word, not counting storage bits past the
		// vector's end (they read as 0 but are not part of the vector).
		valid := v.n - w*wordBits
		if valid > wordBits {
			valid = wordBits
		}
		c := valid - bits.OnesCount64(v.words[w])
		if c >= rem {
			break
		}
		rem -= c
	}
	return w*wordBits + selectInWord(^v.words[w], rem)
}

// selectInWord returns the position (0-63) of the k-th set bit (1-based)
// in w. Branchless: a byte-parallel popcount prefix locates the byte,
// a 256-entry table resolves the bit within it — no clear-lowest-bit
// loop.
func selectInWord(w uint64, k int) int {
	// s: byte i holds the popcount of byte i of w.
	s := w - ((w >> 1) & 0x5555555555555555)
	s = (s & 0x3333333333333333) + ((s >> 2) & 0x3333333333333333)
	s = (s + (s >> 4)) & 0x0f0f0f0f0f0f0f0f
	// ps: byte i holds the popcount of bytes 0..i (prefix sums).
	ps := s * l8
	// High bit of byte i of ge is set iff prefix(i) >= k; the byte
	// holding the k-th bit is the first such, i.e. 8 minus their count.
	ge := ((ps | h8) - uint64(k)*l8) & h8
	byteIdx := 8 - int(((ge>>7)*l8)>>56)
	// Rank of the target bit within its byte: k minus the previous
	// byte's prefix (shift in a zero for byte 0).
	prev := int((ps << 8) >> (8 * uint(byteIdx)) & 0xff)
	b := byte(w >> (8 * uint(byteIdx)))
	return 8*byteIdx + int(selByte[b][k-prev-1])
}

// RawParts exposes the vector's backing arrays for serialization in
// their in-memory shape (the XQO2 resident format stores them verbatim
// so a mapped file can be aliased back without rebuilding). The slices
// are the live backing store; callers must not modify them.
func (v *Vector) RawParts() (words, super []uint64, n, ones int) {
	return v.words, v.super, v.n, v.ones
}

// FromRawParts reassembles a Vector around existing backing arrays —
// typically slices aliasing an mmap'd XQO2 section — without copying or
// rebuilding the rank directory. It validates the shape invariants
// (array lengths, superblock monotonicity, total count) so a corrupt or
// truncated file fails here instead of panicking later; per-word bit
// counts are vouched for by the layout's checksums.
func FromRawParts(words, super []uint64, n, ones int) (*Vector, error) {
	if n < 0 || ones < 0 || ones > n {
		return nil, fmt.Errorf("bitvec: invalid bit counts n=%d ones=%d", n, ones)
	}
	if want := (n + wordBits - 1) / wordBits; len(words) != want {
		return nil, fmt.Errorf("bitvec: %d words for %d bits (want %d)", len(words), n, want)
	}
	nSuper := (len(words) + wordsPer - 1) / wordsPer
	if len(super) != nSuper+1 {
		return nil, fmt.Errorf("bitvec: %d superblock entries (want %d)", len(super), nSuper+1)
	}
	for i := 1; i < len(super); i++ {
		if super[i] < super[i-1] {
			return nil, fmt.Errorf("bitvec: superblock ranks not monotone at %d", i)
		}
	}
	if super[nSuper] != uint64(ones) {
		return nil, fmt.Errorf("bitvec: superblock total %d != ones %d", super[nSuper], ones)
	}
	return &Vector{words: words, n: n, super: super, ones: ones}, nil
}

// String renders short vectors as 0/1 strings for debugging.
func (v *Vector) String() string {
	if v.n > 256 {
		return fmt.Sprintf("bitvec.Vector(len=%d, ones=%d)", v.n, v.ones)
	}
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
