package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveRank1(bits []bool, i int) int {
	if i > len(bits) {
		i = len(bits)
	}
	r := 0
	for j := 0; j < i; j++ {
		if bits[j] {
			r++
		}
	}
	return r
}

func naiveSelect1(bits []bool, k int) int {
	for i, b := range bits {
		if b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func naiveSelect0(bits []bool, k int) int {
	for i, b := range bits {
		if !b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func TestEmpty(t *testing.T) {
	v := FromBools(nil)
	if v.Len() != 0 || v.Ones() != 0 || v.Zeros() != 0 {
		t.Fatalf("empty vector: len=%d ones=%d zeros=%d", v.Len(), v.Ones(), v.Zeros())
	}
	if got := v.Rank1(0); got != 0 {
		t.Errorf("Rank1(0) = %d, want 0", got)
	}
	if got := v.Select1(1); got != -1 {
		t.Errorf("Select1(1) = %d, want -1", got)
	}
	if got := v.Select0(1); got != -1 {
		t.Errorf("Select0(1) = %d, want -1", got)
	}
}

func TestSingleBits(t *testing.T) {
	v1 := FromBools([]bool{true})
	if v1.Rank1(1) != 1 || v1.Select1(1) != 0 || !v1.Get(0) {
		t.Errorf("single 1-bit vector misbehaves")
	}
	v0 := FromBools([]bool{false})
	if v0.Rank1(1) != 0 || v0.Select0(1) != 0 || v0.Get(0) {
		t.Errorf("single 0-bit vector misbehaves")
	}
}

func TestAllOnes(t *testing.T) {
	const n = 1000
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = true
	}
	v := FromBools(bits)
	if v.Ones() != n {
		t.Fatalf("Ones() = %d, want %d", v.Ones(), n)
	}
	for k := 1; k <= n; k++ {
		if got := v.Select1(k); got != k-1 {
			t.Fatalf("Select1(%d) = %d, want %d", k, got, k-1)
		}
	}
	if v.Select0(1) != -1 {
		t.Errorf("Select0 on all-ones should be -1")
	}
}

func TestAllZeros(t *testing.T) {
	const n = 777
	v := FromBools(make([]bool, n))
	if v.Ones() != 0 || v.Zeros() != n {
		t.Fatalf("ones=%d zeros=%d", v.Ones(), v.Zeros())
	}
	for k := 1; k <= n; k += 97 {
		if got := v.Select0(k); got != k-1 {
			t.Fatalf("Select0(%d) = %d, want %d", k, got, k-1)
		}
	}
}

func TestRankSelectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(3000)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = rng.Intn(3) != 0
		}
		v := FromBools(bits)
		for i := 0; i <= n; i++ {
			if got, want := v.Rank1(i), naiveRank1(bits, i); got != want {
				t.Fatalf("n=%d Rank1(%d) = %d, want %d", n, i, got, want)
			}
		}
		for k := 1; k <= v.Ones(); k++ {
			if got, want := v.Select1(k), naiveSelect1(bits, k); got != want {
				t.Fatalf("n=%d Select1(%d) = %d, want %d", n, k, got, want)
			}
		}
		for k := 1; k <= v.Zeros(); k += 1 + rng.Intn(5) {
			if got, want := v.Select0(k), naiveSelect0(bits, k); got != want {
				t.Fatalf("n=%d Select0(%d) = %d, want %d", n, k, got, want)
			}
		}
	}
}

func TestRankBeyondLen(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	if got := v.Rank1(100); got != 2 {
		t.Errorf("Rank1 past end = %d, want 2", got)
	}
	if got := v.Rank0(100); got != 1 {
		t.Errorf("Rank0 past end = %d, want 1", got)
	}
}

// Property: Rank1(Select1(k)) == k-1 and Get(Select1(k)) == true.
func TestSelectRankInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2000)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = rng.Intn(2) == 0
		}
		v := FromBools(bits)
		for k := 1; k <= v.Ones(); k++ {
			p := v.Select1(k)
			if p < 0 || !v.Get(p) || v.Rank1(p) != k-1 || v.Rank1(p+1) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Rank1(i) + Rank0(i) == i for all i in range.
func TestRankComplement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1500)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = rng.Intn(2) == 0
		}
		v := FromBools(bits)
		for i := 0; i <= n; i += 1 + rng.Intn(7) {
			if v.Rank1(i)+v.Rank0(i) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuilderAppendN(t *testing.T) {
	b := NewBuilder(10)
	b.AppendN(true, 5)
	b.AppendN(false, 3)
	if b.Len() != 8 {
		t.Fatalf("Len = %d, want 8", b.Len())
	}
	v := b.Build()
	if v.Ones() != 5 || v.Zeros() != 3 {
		t.Errorf("ones=%d zeros=%d, want 5,3", v.Ones(), v.Zeros())
	}
}

func TestStringSmall(t *testing.T) {
	v := FromBools([]bool{true, false, true, true})
	if got := v.String(); got != "1011" {
		t.Errorf("String() = %q, want 1011", got)
	}
}

func BenchmarkRank1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	bld := NewBuilder(n)
	for i := 0; i < n; i++ {
		bld.Append(rng.Intn(2) == 0)
	}
	v := bld.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Rank1(i % n)
	}
}

func BenchmarkSelect1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	bld := NewBuilder(n)
	for i := 0; i < n; i++ {
		bld.Append(rng.Intn(2) == 0)
	}
	v := bld.Build()
	ones := v.Ones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Select1(1 + i%ones)
	}
}

// TestAppendRangeRandom cross-checks the word-at-a-time range copy
// against bit-by-bit appends over random vectors, ranges and builder
// phase (the destination's bit offset when the copy starts).
func TestAppendRangeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		n := 1 + r.Intn(400)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = r.Intn(2) == 0
		}
		src := FromBools(bits)
		from := r.Intn(n + 1)
		to := from + r.Intn(n+1-from)
		phase := r.Intn(130) // 0..129 prior bits: covers offsets past two words

		fast := NewBuilder(phase + to - from)
		slow := NewBuilder(phase + to - from)
		for i := 0; i < phase; i++ {
			bit := r.Intn(2) == 0
			fast.Append(bit)
			slow.Append(bit)
		}
		fast.AppendRange(src, from, to)
		for i := from; i < to; i++ {
			slow.Append(src.Get(i))
		}
		fv, sv := fast.Build(), slow.Build()
		if fv.Len() != sv.Len() {
			t.Fatalf("iter %d: len %d != %d", iter, fv.Len(), sv.Len())
		}
		for i := 0; i < fv.Len(); i++ {
			if fv.Get(i) != sv.Get(i) {
				t.Fatalf("iter %d: bit %d differs (phase %d, range [%d,%d) of %d)", iter, i, phase, from, to, n)
			}
		}
		if fv.Ones() != sv.Ones() {
			t.Fatalf("iter %d: ones %d != %d", iter, fv.Ones(), sv.Ones())
		}
	}
}
