package bitvec

import "testing"

// FuzzRankSelect drives the word-level kernels (popcount ranks, the
// broadword in-word select, the superblock directories) from arbitrary
// bytes: each input byte contributes its bits, the final byte's count is
// taken from the first byte so lengths straddle word and superblock
// boundaries. Every rank and select is checked against the per-bit
// oracles, plus the rank/select inverse laws.
func FuzzRankSelect(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0xaa, 0x55, 0x00, 0xff, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 512 {
			t.Skip()
		}
		n := len(data)*8 - int(data[0]%8)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = data[i/8]&(1<<(i%8)) != 0
		}
		v := FromBools(bits)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		ones := naiveRank1(bits, n)
		if v.Ones() != ones || v.Zeros() != n-ones {
			t.Fatalf("ones/zeros = %d/%d, want %d/%d", v.Ones(), v.Zeros(), ones, n-ones)
		}
		for i := 0; i <= n; i++ {
			if got, want := v.Rank1(i), naiveRank1(bits, i); got != want {
				t.Fatalf("Rank1(%d) = %d, want %d", i, got, want)
			}
		}
		for k := 1; k <= ones; k++ {
			p := v.Select1(k)
			if want := naiveSelect1(bits, k); p != want {
				t.Fatalf("Select1(%d) = %d, want %d", k, p, want)
			}
			if v.Rank1(p+1) != k {
				t.Fatalf("Rank1(Select1(%d)+1) = %d", k, v.Rank1(p+1))
			}
		}
		for k := 1; k <= n-ones; k++ {
			p := v.Select0(k)
			if want := naiveSelect0(bits, k); p != want {
				t.Fatalf("Select0(%d) = %d, want %d", k, p, want)
			}
		}
		if v.Select1(ones+1) != -1 || v.Select0(n-ones+1) != -1 {
			t.Fatal("select past the population must return -1")
		}
	})
}
