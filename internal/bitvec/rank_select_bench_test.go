package bitvec

import (
	"math/rand"
	"testing"
)

// Paired rank/select benchmarks: the word-level kernels
// (bits.OnesCount64 ranks, the broadword selectInWord) against the
// pre-rewrite per-bit scans, sharing the superblock directory so the
// pair isolates exactly the in-superblock scanning this PR rewrote.
// CI gates the paired geomean together with the BP kernel rows
// (BENCH_mmap.json pins the seeded values).

// perbitRank1 is the old shape: superblock counter + bit-at-a-time scan
// of the superblock's prefix.
func perbitRank1(v *Vector, i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	sb := i / superBits
	r := int(v.super[sb])
	for p := sb * superBits; p < i; p++ {
		if v.Get(p) {
			r++
		}
	}
	return r
}

// perbitSelect1 is the old shape: superblock binary search + bit-at-a-
// time scan counting set bits.
func perbitSelect1(v *Vector, k int) int {
	if k <= 0 || k > v.ones {
		return -1
	}
	lo, hi := 0, len(v.super)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v.super[mid] < uint64(k) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(v.super[lo])
	for p := lo * superBits; p < v.n; p++ {
		if v.Get(p) {
			rem--
			if rem == 0 {
				return p
			}
		}
	}
	return -1
}

func benchVector(n int) *Vector {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(n)
	// Balanced-parentheses density: exactly half ones, in random order,
	// matching the paren vector the BP layer runs rank/select against.
	ones := n / 2
	for i := 0; i < n; i++ {
		if rng.Intn(n-i) < ones {
			b.Append(true)
			ones--
		} else {
			b.Append(false)
		}
	}
	return b.Build()
}

func BenchmarkKernelsVsPerBit(b *testing.B) {
	v := benchVector(4 << 20)
	rng := rand.New(rand.NewSource(7))
	positions := make([]int, 4096)
	for i := range positions {
		positions[i] = rng.Intn(v.Len() + 1)
	}
	ks := make([]int, 4096)
	for i := range ks {
		ks[i] = 1 + rng.Intn(v.Ones())
	}
	sink := 0

	b.Run("rank/word", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += v.Rank1(positions[i%len(positions)])
		}
	})
	b.Run("rank/perbit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += perbitRank1(v, positions[i%len(positions)])
		}
	})

	b.Run("select/word", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += v.Select1(ks[i%len(ks)])
		}
	})
	b.Run("select/perbit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += perbitSelect1(v, ks[i%len(ks)])
		}
	})

	if sink == 1<<62 {
		b.Fatal("impossible")
	}
}

// TestPerbitBaselinesAgree keeps the paired benchmark honest.
func TestPerbitBaselinesAgree(t *testing.T) {
	v := benchVector(10_000)
	for i := 0; i <= v.Len(); i += 7 {
		if got, want := perbitRank1(v, i), v.Rank1(i); got != want {
			t.Fatalf("perbitRank1(%d) = %d, want %d", i, got, want)
		}
	}
	for k := 1; k <= v.Ones(); k += 13 {
		if got, want := perbitSelect1(v, k), v.Select1(k); got != want {
			t.Fatalf("perbitSelect1(%d) = %d, want %d", k, got, want)
		}
	}
}
