// Package bp implements a balanced-parentheses succinct ordinal tree in the
// style of Sadakane & Navarro ("Fully-functional static and dynamic succinct
// trees", reference [18] of the paper). A tree with n nodes is stored as a
// 2n-bit parenthesis sequence plus o(n)-style block summaries giving
// FindClose/FindOpen/Enclose in O(log n). Nodes are identified by their
// preorder rank (0-based), so the structure composes directly with the
// preorder-indexed label arrays of internal/tree and internal/index.
package bp

import (
	"fmt"

	"repro/internal/bitvec"
)

// blockBits is the span of one min-excess block. Queries scan at most one
// block at each end plus O(log(n/blockBits)) summary nodes.
const blockBits = 256

// Byte-parallel excess tables: for each 8-bit parenthesis group b (bit 0
// first, 1 = open), byteSum[b] is the total excess delta of the group
// and byteMin[b] the minimum prefix excess within it (over prefixes of
// length 1..8, relative to the excess at the group's start). A block
// scan consults these to step 8 positions at a time, touching the bits
// themselves only inside the single byte that contains the answer —
// and there fwdDepth resolves the hit without a bit loop: fwdDepth[b][d-1]
// is the length of the shortest prefix of b with excess exactly -d
// (d in 1..8; 255 = unreachable, excluded by the byteMin test first).
var (
	byteSum  [256]int8
	byteMin  [256]int8
	fwdDepth [256][8]uint8
)

func init() {
	for b := 0; b < 256; b++ {
		for d := range fwdDepth[b] {
			fwdDepth[b][d] = 255
		}
		ex, min := 0, 127
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				ex++
			} else {
				ex--
			}
			if ex < min {
				min = ex
			}
			if ex < 0 && fwdDepth[b][-ex-1] == 255 {
				fwdDepth[b][-ex-1] = uint8(i)
			}
		}
		byteSum[b] = int8(ex)
		byteMin[b] = int8(min)
	}
}

// Tree is an immutable balanced-parentheses tree.
type Tree struct {
	paren *bitvec.Vector // 1 = '(' open, 0 = ')' close
	// Min-excess segment tree over blocks, 1-indexed heap layout.
	// blockMin[i] is the minimum prefix excess within the range, relative
	// to the excess at the start of the range; blockSum[i] is the total
	// excess delta of the range.
	blockMin  []int32
	blockSum  []int32
	numBlocks int
	leafBase  int
	n         int // number of nodes
}

// Builder accumulates a parenthesis sequence.
type Builder struct {
	bits  *bitvec.Builder
	depth int
	n     int
}

// NewBuilder returns a builder with capacity hints for n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{bits: bitvec.NewBuilder(2 * n)}
}

// Open appends an opening parenthesis (entering a new node in preorder).
func (b *Builder) Open() {
	b.bits.Append(true)
	b.depth++
	b.n++
}

// Close appends a closing parenthesis (leaving the current node).
func (b *Builder) Close() {
	b.bits.Append(false)
	b.depth--
}

// Depth reports the current nesting depth (open minus close so far).
func (b *Builder) Depth() int { return b.depth }

// Nodes reports the number of nodes opened so far.
func (b *Builder) Nodes() int { return b.n }

// Build finalizes the sequence. It panics if the parentheses are not
// balanced, since every caller constructs the sequence programmatically.
func (b *Builder) Build() *Tree {
	if b.depth != 0 {
		panic("bp: unbalanced parenthesis sequence")
	}
	t := &Tree{paren: b.bits.Build(), n: b.n}
	t.buildBlocks()
	return t
}

// FromBools builds a tree from an explicit parenthesis bit sequence
// (true = open). Used by tests.
func FromBools(seq []bool) *Tree {
	b := NewBuilder(len(seq) / 2)
	for _, open := range seq {
		if open {
			b.Open()
		} else {
			b.Close()
		}
	}
	return b.Build()
}

func (t *Tree) buildBlocks() {
	m := t.paren.Len()
	t.numBlocks = (m + blockBits - 1) / blockBits
	if t.numBlocks == 0 {
		t.numBlocks = 1
	}
	// Round up to a power of two for a simple heap-shaped segment tree.
	size := 1
	for size < t.numBlocks {
		size *= 2
	}
	t.leafBase = size
	t.blockMin = make([]int32, 2*size)
	t.blockSum = make([]int32, 2*size)
	for i := range t.blockMin {
		t.blockMin[i] = 1 << 30
	}
	for blk := 0; blk < t.numBlocks; blk++ {
		minEx, sum := int32(1<<30), int32(0)
		start, end := blk*blockBits, (blk+1)*blockBits
		if end > m {
			end = m
		}
		// Whole bytes via the excess tables, the ragged tail per bit
		// (block starts are byte-aligned; only the final block can be
		// ragged).
		i := start
		for ; i+8 <= end; i += 8 {
			b := t.paren.Byte(i)
			if me := sum + int32(byteMin[b]); me < minEx {
				minEx = me
			}
			sum += int32(byteSum[b])
		}
		for ; i < end; i++ {
			if t.paren.Get(i) {
				sum++
			} else {
				sum--
			}
			if sum < minEx {
				minEx = sum
			}
		}
		if start >= end {
			minEx, sum = 0, 0
		}
		t.blockMin[t.leafBase+blk] = minEx
		t.blockSum[t.leafBase+blk] = sum
	}
	for i := t.leafBase - 1; i >= 1; i-- {
		l, r := 2*i, 2*i+1
		lm, ls := t.blockMin[l], t.blockSum[l]
		rm := t.blockMin[r]
		if rm == 1<<30 { // right child empty
			t.blockMin[i] = lm
			t.blockSum[i] = ls
			continue
		}
		min := lm
		if ls+rm < min {
			min = ls + rm
		}
		t.blockMin[i] = min
		t.blockSum[i] = ls + t.blockSum[r]
	}
}

// NumNodes reports the number of tree nodes.
func (t *Tree) NumNodes() int { return t.n }

// Excess returns the nesting depth after reading positions [0, i], i.e.
// opens minus closes in the prefix of length i+1.
func (t *Tree) Excess(i int) int {
	return 2*t.paren.Rank1(i+1) - (i + 1)
}

// scanFwd looks for the smallest j in [from, to) with Excess(j) == target,
// given ex = Excess(from-1). It requires ex > target at every position
// before the hit (which holds for fwdSearch's only use, FindClose: excess
// moves in ±1 steps, so it cannot pass below target without equalling it).
// That invariant is what lets whole bytes be skipped: the target is inside
// a byte iff the byte's min prefix excess dips to it, and then fwdDepth
// pinpoints the bit without a scan. Returns the hit and its excess, or
// (-1, Excess(to-1)) if the range has no hit.
func (t *Tree) scanFwd(from, to, ex, target int) (int, int) {
	j := from
	for ; j < to && j&7 != 0; j++ {
		if t.paren.Get(j) {
			ex++
		} else {
			ex--
		}
		if ex == target {
			return j, ex
		}
	}
	for ; j+8 <= to; j += 8 {
		b := t.paren.Byte(j)
		if d := ex - target; d <= 8 && int(byteMin[b]) <= -d {
			return j + int(fwdDepth[b][d-1]), target
		}
		ex += int(byteSum[b])
	}
	for ; j < to; j++ {
		if t.paren.Get(j) {
			ex++
		} else {
			ex--
		}
		if ex == target {
			return j, ex
		}
	}
	return -1, ex
}

// scanBwd looks for the largest q in [lo-1, p-1] with Excess(q) == target,
// given ex = Excess(p). Like scanFwd it byte-steps: a byte can be skipped
// unless the excesses at its interior boundaries dip to target, which under
// bwdSearch's enclosing precondition only happens in the byte holding the
// answer (positions right of the answer all have excess > target). Returns
// (q, true, Excess(q)) on a hit — note q may be -1, meaning position -1
// with Excess(-1) == 0 == target — or (-1, false, Excess(lo-1)) otherwise.
func (t *Tree) scanBwd(p, lo, ex, target int) (int, bool, int) {
	j := p
	for ; j >= lo && j&7 != 7; j-- {
		if t.paren.Get(j) {
			ex--
		} else {
			ex++
		}
		if ex == target {
			return j - 1, true, ex
		}
	}
	for ; j-7 >= lo; j -= 8 {
		b := t.paren.Byte(j - 7)
		m0 := int(byteMin[b])
		if m0 > 0 {
			m0 = 0
		}
		if ex-int(byteSum[b])+m0 <= target {
			// The byte contains the answer; resolve it per bit. The
			// fallthrough is defensive — under the precondition the
			// inner loop always returns.
			bex := ex
			for k := j; k >= j-7; k-- {
				if t.paren.Get(k) {
					bex--
				} else {
					bex++
				}
				if bex == target {
					return k - 1, true, bex
				}
			}
		}
		ex -= int(byteSum[b])
	}
	for ; j >= lo; j-- {
		if t.paren.Get(j) {
			ex--
		} else {
			ex++
		}
		if ex == target {
			return j - 1, true, ex
		}
	}
	return -1, false, ex
}

// fwdSearch finds the smallest j > i such that Excess(j) == target,
// or -1 if none exists.
func (t *Tree) fwdSearch(i int, target int) int {
	m := t.paren.Len()
	ex := t.Excess(i)
	// Scan the rest of i's block.
	blk := (i + 1) / blockBits
	end := (blk + 1) * blockBits
	if end > m {
		end = m
	}
	j, ex := t.scanFwd(i+1, end, ex, target)
	if j >= 0 {
		return j
	}
	if end == m {
		return -1
	}
	// Climb the segment tree to find the first block whose min excess
	// reaches target, tracking the running excess at block boundaries.
	node := t.leafBase + blk
	for {
		// Move to the next subtree to the right.
		for node%2 == 1 { // right child: go up
			node /= 2
			if node == 0 {
				return -1
			}
		}
		node++ // right sibling
		if node >= len(t.blockMin) || t.blockMin[node] == 1<<30 {
			// Empty subtree; keep climbing.
			node--
			node /= 2
			if node == 0 {
				return -1
			}
			continue
		}
		if ex+int(t.blockMin[node]) <= target {
			break // target is inside this subtree
		}
		ex += int(t.blockSum[node])
		node /= 2
		if node == 0 {
			return -1
		}
	}
	// Descend to the leaf block containing the answer.
	for node < t.leafBase {
		l := 2 * node
		if t.blockMin[l] != 1<<30 && ex+int(t.blockMin[l]) <= target {
			node = l
		} else {
			ex += int(t.blockSum[l])
			node = l + 1
		}
	}
	blk = node - t.leafBase
	start := blk * blockBits
	stop := start + blockBits
	if stop > m {
		stop = m
	}
	j, _ = t.scanFwd(start, stop, ex, target)
	return j
}

// bwdSearch finds the largest j < i such that Excess(j) == target, or -1 if
// none exists. It requires the "enclosing" precondition that holds for
// FindOpen and Enclose: every position strictly between the answer and i
// has excess > target. Under that precondition the answer lies in the
// nearest block to the left whose absolute minimum excess is <= target.
func (t *Tree) bwdSearch(i int, target int) int {
	ex := t.Excess(i)
	blk := i / blockBits
	start := blk * blockBits
	j, ok, ex := t.scanBwd(i, start, ex, target)
	if ok {
		return j
	}
	if start == 0 {
		return -1
	}
	// ex is the excess just before the block. Climb the segment tree
	// leftward looking for a subtree whose absolute minimum reaches
	// target; ex tracks the excess at the end of the candidate range.
	node := t.leafBase + blk
	for {
		for node%2 == 0 { // left child: go up
			node /= 2
			if node <= 1 {
				return -1
			}
		}
		if node <= 1 {
			return -1
		}
		node-- // left sibling
		exStart := ex - int(t.blockSum[node])
		if t.blockMin[node] != 1<<30 && exStart+int(t.blockMin[node]) <= target {
			break // answer is inside this subtree
		}
		ex = exStart
		node /= 2
		if node <= 1 {
			return -1
		}
	}
	// Descend, preferring the right child (we want the largest j).
	for node < t.leafBase {
		r := 2*node + 1
		if t.blockMin[r] != 1<<30 && ex-int(t.blockSum[r])+int(t.blockMin[r]) <= target {
			node = r
		} else {
			if t.blockMin[r] != 1<<30 {
				ex -= int(t.blockSum[r])
			}
			node = 2 * node
		}
	}
	blk = node - t.leafBase
	start = blk * blockBits
	stop := start + blockBits
	if stop > t.paren.Len() {
		stop = t.paren.Len()
	}
	// ex is Excess(stop-1); the descent guarantees the hit is in this
	// block. Check the block's last position, then byte-scan the rest.
	if ex == target {
		return stop - 1
	}
	j, ok, _ = t.scanBwd(stop-1, start+1, ex, target)
	if ok {
		return j
	}
	return -1
}

// FindClose returns the position of the closing parenthesis matching the
// open parenthesis at position i.
func (t *Tree) FindClose(i int) int {
	return t.fwdSearch(i, t.Excess(i)-1)
}

// FindOpen returns the position of the open parenthesis matching the
// closing parenthesis at position i.
func (t *Tree) FindOpen(i int) int {
	// The open paren is the last position j < i with Excess(j-1) ==
	// Excess(i); equivalently Excess(j) == Excess(i)+1 and paren[j] is
	// open. bwdSearch for excess(i) then +1.
	j := t.bwdSearch(i, t.Excess(i))
	return j + 1
}

// Enclose returns the position of the open parenthesis of the parent of the
// node whose open parenthesis is at i, or -1 for the root.
func (t *Tree) Enclose(i int) int {
	if i == 0 {
		return -1
	}
	j := t.bwdSearch(i, t.Excess(i)-2)
	return j + 1
}

// Splice returns a new tree whose parenthesis sequence is t's with the
// bit range [at, at+del) replaced by ins (true = open). Both the removed
// range and the inserted sequence must themselves be balanced — which
// every subtree patch guarantees, since a subtree is one matched
// parenthesis pair. The bits are copied word-at-a-time where aligned and
// the block summaries rebuilt in one linear pass, so deriving a patched
// generation's tree costs O(n/w + n/blockBits) words, not a pointer-tree
// walk.
func (t *Tree) Splice(at, del int, ins []bool) *Tree {
	oldLen := t.paren.Len()
	if at < 0 || del < 0 || at+del > oldLen {
		panic("bp: splice range out of bounds")
	}
	b := bitvec.NewBuilder(oldLen - del + len(ins))
	b.AppendRange(t.paren, 0, at)
	for _, open := range ins {
		b.Append(open)
	}
	b.AppendRange(t.paren, at+del, oldLen)
	nt := &Tree{paren: b.Build(), n: t.n - del/2 + len(ins)/2}
	nt.buildBlocks()
	return nt
}

// Raw is the flat decomposition of a Tree: the parenthesis vector's parts
// plus the min-excess segment tree arrays, exactly as held in memory. The
// XQO2 resident format stores these sections verbatim so a mapped file can
// be reassembled with FromRaw without rebuilding anything.
type Raw struct {
	Words    []uint64
	Super    []uint64
	ParenLen int
	Ones     int
	BlockMin []int32
	BlockSum []int32
	NumNodes int
}

// Raw exposes the tree's backing arrays. The slices are the live backing
// store; callers must not modify them.
func (t *Tree) Raw() Raw {
	words, super, n, ones := t.paren.RawParts()
	return Raw{
		Words:    words,
		Super:    super,
		ParenLen: n,
		Ones:     ones,
		BlockMin: t.blockMin,
		BlockSum: t.blockSum,
		NumNodes: t.n,
	}
}

// FromRaw reassembles a Tree around existing backing arrays — typically
// slices aliasing an mmap'd XQO2 section — without copying or rebuilding
// the block summaries. Shape invariants are validated so a corrupt file
// fails here with an error instead of panicking later.
func FromRaw(r Raw) (*Tree, error) {
	v, err := bitvec.FromRawParts(r.Words, r.Super, r.ParenLen, r.Ones)
	if err != nil {
		return nil, fmt.Errorf("bp: paren vector: %w", err)
	}
	if r.ParenLen != 2*r.NumNodes || r.Ones != r.NumNodes {
		return nil, fmt.Errorf("bp: %d paren bits / %d ones for %d nodes", r.ParenLen, r.Ones, r.NumNodes)
	}
	numBlocks := (r.ParenLen + blockBits - 1) / blockBits
	if numBlocks == 0 {
		numBlocks = 1
	}
	leafBase := 1
	for leafBase < numBlocks {
		leafBase *= 2
	}
	if len(r.BlockMin) != 2*leafBase || len(r.BlockSum) != 2*leafBase {
		return nil, fmt.Errorf("bp: segment tree arrays %d/%d entries (want %d)",
			len(r.BlockMin), len(r.BlockSum), 2*leafBase)
	}
	return &Tree{
		paren:     v,
		blockMin:  r.BlockMin,
		blockSum:  r.BlockSum,
		numBlocks: numBlocks,
		leafBase:  leafBase,
		n:         r.NumNodes,
	}, nil
}

// --- Node-level navigation. Nodes are 0-based preorder ranks. ---

// pos returns the position of node v's open parenthesis.
func (t *Tree) pos(v int) int { return t.paren.Select1(v + 1) }

// OpenPos returns the bit position of node v's open parenthesis
// (select1(v+1)); patch splicing and the property tests use it to map
// preorder ranks to sequence positions.
func (t *Tree) OpenPos(v int) int { return t.pos(v) }

// node returns the preorder rank of the node whose open paren is at p.
func (t *Tree) node(p int) int { return t.paren.Rank1(p+1) - 1 }

// Parent returns the preorder rank of v's parent, or -1 for the root.
func (t *Tree) Parent(v int) int {
	p := t.Enclose(t.pos(v))
	if p < 0 {
		return -1
	}
	return t.node(p)
}

// FirstChild returns the preorder rank of v's first child, or -1 if v is a
// leaf.
func (t *Tree) FirstChild(v int) int {
	p := t.pos(v)
	if p+1 < t.paren.Len() && t.paren.Get(p+1) {
		return v + 1
	}
	return -1
}

// NextSibling returns the preorder rank of v's next sibling, or -1.
func (t *Tree) NextSibling(v int) int {
	c := t.FindClose(t.pos(v))
	if c+1 < t.paren.Len() && t.paren.Get(c+1) {
		return t.node(c + 1)
	}
	return -1
}

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v int) bool { return t.FirstChild(v) == -1 }

// SubtreeSize returns the number of nodes in the subtree rooted at v.
func (t *Tree) SubtreeSize(v int) int {
	p := t.pos(v)
	c := t.FindClose(p)
	return (c - p + 1) / 2
}

// LastDescendant returns the preorder rank of the last node (in preorder)
// in v's subtree; equals v itself for leaves.
func (t *Tree) LastDescendant(v int) int {
	return v + t.SubtreeSize(v) - 1
}

// Depth returns the depth of v (root has depth 0).
func (t *Tree) Depth(v int) int {
	return t.Excess(t.pos(v)) - 1
}

// IsAncestor reports whether a is a (proper or improper) ancestor of v.
func (t *Tree) IsAncestor(a, v int) bool {
	return a <= v && v <= t.LastDescendant(a)
}

// LevelAncestor returns the ancestor of v at depth d, or -1 if d exceeds
// the depth of v. LevelAncestor(v, Depth(v)) == v.
func (t *Tree) LevelAncestor(v, d int) int {
	for v != -1 && t.Depth(v) > d {
		v = t.Parent(v)
	}
	if v == -1 || t.Depth(v) != d {
		return -1
	}
	return v
}

// LCA returns the lowest common ancestor of u and v.
func (t *Tree) LCA(u, v int) int {
	if u > v {
		u, v = v, u
	}
	for !t.IsAncestor(u, v) {
		u = t.Parent(u)
	}
	return u
}
