package bp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refTree is a naive pointer-based tree built from the same parenthesis
// sequence, used as the oracle for all navigation operations.
type refTree struct {
	parent      []int
	firstChild  []int
	nextSibling []int
	depth       []int
	subSize     []int
	openPos     []int
	closePos    []int
}

func buildRef(seq []bool) *refTree {
	n := 0
	for _, b := range seq {
		if b {
			n++
		}
	}
	r := &refTree{
		parent:      make([]int, n),
		firstChild:  make([]int, n),
		nextSibling: make([]int, n),
		depth:       make([]int, n),
		subSize:     make([]int, n),
		openPos:     make([]int, n),
		closePos:    make([]int, n),
	}
	for i := range r.firstChild {
		r.firstChild[i] = -1
		r.nextSibling[i] = -1
		r.parent[i] = -1
	}
	var stack []int
	next := 0
	lastClosed := -1
	for p, open := range seq {
		if open {
			v := next
			next++
			r.openPos[v] = p
			if len(stack) > 0 {
				par := stack[len(stack)-1]
				r.parent[v] = par
				if r.firstChild[par] == -1 {
					r.firstChild[par] = v
				} else if lastClosed != -1 {
					r.nextSibling[lastClosed] = v
				}
			} else if lastClosed != -1 {
				r.nextSibling[lastClosed] = v
			}
			r.depth[v] = len(stack)
			stack = append(stack, v)
			lastClosed = -1
		} else {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r.closePos[v] = p
			r.subSize[v] = next - v
			lastClosed = v
		}
	}
	return r
}

// randomSeq produces a random balanced parenthesis sequence with n nodes
// forming a single tree (one root).
func randomSeq(rng *rand.Rand, n int) []bool {
	seq := make([]bool, 0, 2*n)
	seq = append(seq, true) // root open
	opened, closed := 1, 0
	depth := 1
	for opened < n || depth > 1 {
		canOpen := opened < n
		canClose := depth > 1
		if canOpen && (!canClose || rng.Intn(2) == 0) {
			seq = append(seq, true)
			opened++
			depth++
		} else {
			seq = append(seq, false)
			closed++
			depth--
		}
	}
	seq = append(seq, false) // root close
	_ = closed
	return seq
}

func checkAgainstRef(t *testing.T, seq []bool) {
	t.Helper()
	bt := FromBools(seq)
	ref := buildRef(seq)
	n := bt.NumNodes()
	if n != len(ref.parent) {
		t.Fatalf("NumNodes = %d, want %d", n, len(ref.parent))
	}
	for v := 0; v < n; v++ {
		if got := bt.Parent(v); got != ref.parent[v] {
			t.Fatalf("Parent(%d) = %d, want %d", v, got, ref.parent[v])
		}
		if got := bt.FirstChild(v); got != ref.firstChild[v] {
			t.Fatalf("FirstChild(%d) = %d, want %d", v, got, ref.firstChild[v])
		}
		if got := bt.NextSibling(v); got != ref.nextSibling[v] {
			t.Fatalf("NextSibling(%d) = %d, want %d", v, got, ref.nextSibling[v])
		}
		if got := bt.Depth(v); got != ref.depth[v] {
			t.Fatalf("Depth(%d) = %d, want %d", v, got, ref.depth[v])
		}
		if got := bt.SubtreeSize(v); got != ref.subSize[v] {
			t.Fatalf("SubtreeSize(%d) = %d, want %d", v, got, ref.subSize[v])
		}
		if got := bt.FindClose(ref.openPos[v]); got != ref.closePos[v] {
			t.Fatalf("FindClose(%d) = %d, want %d", ref.openPos[v], got, ref.closePos[v])
		}
		if got := bt.FindOpen(ref.closePos[v]); got != ref.openPos[v] {
			t.Fatalf("FindOpen(%d) = %d, want %d", ref.closePos[v], got, ref.openPos[v])
		}
		if got, want := bt.IsLeaf(v), ref.firstChild[v] == -1; got != want {
			t.Fatalf("IsLeaf(%d) = %v, want %v", v, got, want)
		}
		if got, want := bt.LastDescendant(v), v+ref.subSize[v]-1; got != want {
			t.Fatalf("LastDescendant(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestSingleNode(t *testing.T) {
	checkAgainstRef(t, []bool{true, false})
}

func TestPathTree(t *testing.T) {
	// Deep chain: ((((...))))
	const n = 2000
	seq := make([]bool, 0, 2*n)
	for i := 0; i < n; i++ {
		seq = append(seq, true)
	}
	for i := 0; i < n; i++ {
		seq = append(seq, false)
	}
	checkAgainstRef(t, seq)
}

func TestStarTree(t *testing.T) {
	// Root with many leaf children: (()()()...())
	const n = 2000
	seq := []bool{true}
	for i := 0; i < n; i++ {
		seq = append(seq, true, false)
	}
	seq = append(seq, false)
	checkAgainstRef(t, seq)
}

func TestRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(1200)
		checkAgainstRef(t, randomSeq(rng, n))
	}
}

func TestIsAncestor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := randomSeq(rng, 300)
	bt := FromBools(seq)
	ref := buildRef(seq)
	isAnc := func(a, v int) bool {
		for v != -1 {
			if v == a {
				return true
			}
			v = ref.parent[v]
		}
		return false
	}
	for i := 0; i < 2000; i++ {
		a, v := rng.Intn(bt.NumNodes()), rng.Intn(bt.NumNodes())
		if got, want := bt.IsAncestor(a, v), isAnc(a, v); got != want {
			t.Fatalf("IsAncestor(%d,%d) = %v, want %v", a, v, got, want)
		}
	}
}

func TestLCA(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := randomSeq(rng, 300)
	bt := FromBools(seq)
	ref := buildRef(seq)
	ancestors := func(v int) []int {
		var as []int
		for v != -1 {
			as = append(as, v)
			v = ref.parent[v]
		}
		return as
	}
	naiveLCA := func(u, v int) int {
		au := ancestors(u)
		set := make(map[int]bool, len(au))
		for _, a := range au {
			set[a] = true
		}
		for _, a := range ancestors(v) {
			if set[a] {
				return a
			}
		}
		return -1
	}
	for i := 0; i < 1000; i++ {
		u, v := rng.Intn(bt.NumNodes()), rng.Intn(bt.NumNodes())
		if got, want := bt.LCA(u, v), naiveLCA(u, v); got != want {
			t.Fatalf("LCA(%d,%d) = %d, want %d", u, v, got, want)
		}
	}
}

func TestLevelAncestor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seq := randomSeq(rng, 200)
	bt := FromBools(seq)
	ref := buildRef(seq)
	for v := 0; v < bt.NumNodes(); v++ {
		for d := 0; d <= ref.depth[v]; d++ {
			got := bt.LevelAncestor(v, d)
			// Walk up from v to depth d in the reference.
			w := v
			for ref.depth[w] > d {
				w = ref.parent[w]
			}
			if got != w {
				t.Fatalf("LevelAncestor(%d,%d) = %d, want %d", v, d, got, w)
			}
		}
		if got := bt.LevelAncestor(v, ref.depth[v]+1); got != -1 {
			t.Fatalf("LevelAncestor below node = %d, want -1", got)
		}
	}
}

// Property: preorder identity — node v's open paren is the (v+1)-th '(',
// and FindClose is monotone with subtree nesting.
func TestNestingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		seq := randomSeq(rng, n)
		bt := FromBools(seq)
		ref := buildRef(seq)
		for v := 0; v < n; v++ {
			p := ref.parent[v]
			if p == -1 {
				continue
			}
			// Child interval strictly nested in parent interval.
			if !(ref.openPos[p] < ref.openPos[v] && ref.closePos[v] < ref.closePos[p]) {
				return false
			}
			if !bt.IsAncestor(p, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestExcess(t *testing.T) {
	seq := []bool{true, true, false, true, true, false, false, false}
	bt := FromBools(seq)
	want := []int{1, 2, 1, 2, 3, 2, 1, 0}
	for i, w := range want {
		if got := bt.Excess(i); got != w {
			t.Errorf("Excess(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestBuilderPanicsOnUnbalanced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build on unbalanced sequence did not panic")
		}
	}()
	b := NewBuilder(1)
	b.Open()
	b.Build()
}

func BenchmarkParent(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq := randomSeq(rng, 200000)
	bt := FromBools(seq)
	n := bt.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bt.Parent(1 + i%(n-1))
	}
}

func BenchmarkFindClose(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq := randomSeq(rng, 200000)
	bt := FromBools(seq)
	n := bt.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bt.SubtreeSize(i % n)
	}
}
