package bp

import (
	"math/rand"
	"testing"
)

// Paired kernel benchmarks: the byte-parallel excess kernels against the
// pre-rewrite per-bit block scans, on the same trees and the same query
// positions, so CI can gate the paired geomean (BENCH_mmap.json pins it;
// the ci.yml kernel gate enforces ≤0.80). The per-bit variants below are
// faithful copies of fwdSearch/bwdSearch with the byte-stepping block
// scans replaced by bit-at-a-time loops — the segment-tree climb, which
// both generations share, is identical, so the pair isolates exactly the
// block-tail scanning that this PR rewrote.

func perbitScanFwd(t *Tree, from, to, ex, target int) (int, int) {
	for j := from; j < to; j++ {
		if t.paren.Get(j) {
			ex++
		} else {
			ex--
		}
		if ex == target {
			return j, ex
		}
	}
	return -1, ex
}

func perbitScanBwd(t *Tree, p, lo, ex, target int) (int, bool, int) {
	for j := p; j >= lo; j-- {
		if t.paren.Get(j) {
			ex--
		} else {
			ex++
		}
		if ex == target {
			return j - 1, true, ex
		}
	}
	return -1, false, ex
}

func perbitFwdSearch(t *Tree, i, target int) int {
	m := t.paren.Len()
	ex := t.Excess(i)
	blk := (i + 1) / blockBits
	end := (blk + 1) * blockBits
	if end > m {
		end = m
	}
	j, ex := perbitScanFwd(t, i+1, end, ex, target)
	if j >= 0 {
		return j
	}
	if end == m {
		return -1
	}
	node := t.leafBase + blk
	for {
		for node%2 == 1 {
			node /= 2
			if node == 0 {
				return -1
			}
		}
		node++
		if node >= len(t.blockMin) || t.blockMin[node] == 1<<30 {
			node--
			node /= 2
			if node == 0 {
				return -1
			}
			continue
		}
		if ex+int(t.blockMin[node]) <= target {
			break
		}
		ex += int(t.blockSum[node])
		node /= 2
		if node == 0 {
			return -1
		}
	}
	for node < t.leafBase {
		l := 2 * node
		if t.blockMin[l] != 1<<30 && ex+int(t.blockMin[l]) <= target {
			node = l
		} else {
			ex += int(t.blockSum[l])
			node = l + 1
		}
	}
	blk = node - t.leafBase
	start := blk * blockBits
	stop := start + blockBits
	if stop > m {
		stop = m
	}
	j, _ = perbitScanFwd(t, start, stop, ex, target)
	return j
}

func perbitBwdSearch(t *Tree, i, target int) int {
	ex := t.Excess(i)
	blk := i / blockBits
	start := blk * blockBits
	j, ok, ex := perbitScanBwd(t, i, start, ex, target)
	if ok {
		return j
	}
	if start == 0 {
		return -1
	}
	node := t.leafBase + blk
	for {
		for node%2 == 0 {
			node /= 2
			if node <= 1 {
				return -1
			}
		}
		if node <= 1 {
			return -1
		}
		node--
		exStart := ex - int(t.blockSum[node])
		if t.blockMin[node] != 1<<30 && exStart+int(t.blockMin[node]) <= target {
			break
		}
		ex = exStart
		node /= 2
		if node <= 1 {
			return -1
		}
	}
	for node < t.leafBase {
		r := 2*node + 1
		if t.blockMin[r] != 1<<30 && ex-int(t.blockSum[r])+int(t.blockMin[r]) <= target {
			node = r
		} else {
			if t.blockMin[r] != 1<<30 {
				ex -= int(t.blockSum[r])
			}
			node = 2 * node
		}
	}
	blk = node - t.leafBase
	start = blk * blockBits
	stop := start + blockBits
	if stop > t.paren.Len() {
		stop = t.paren.Len()
	}
	if ex == target {
		return stop - 1
	}
	j, ok, _ = perbitScanBwd(t, stop-1, start+1, ex, target)
	if ok {
		return j
	}
	return -1
}

// benchTree builds a document-shaped tree: a shallow spine of sections,
// each holding record subtrees of mixed depth — the shape the XMark
// documents behind BENCH_eval take, where FindClose spans from a few
// positions (leaf records) to whole sections (block-crossing jumps).
func benchTree(nodes int) *Tree {
	rng := rand.New(rand.NewSource(42))
	seq := make([]bool, 0, 2*nodes)
	depth := 0
	open := func() { seq = append(seq, true); depth++ }
	closeTo := func(d int) {
		for depth > d {
			seq = append(seq, false)
			depth--
		}
	}
	open() // root
	n := 1
	for n < nodes {
		open() // section
		n++
		sectionDepth := depth
		records := 20 + rng.Intn(40)
		for r := 0; r < records && n < nodes; r++ {
			levels := 1 + rng.Intn(8)
			width := 1 + rng.Intn(4)
			recordDepth := depth
			open() // record
			n++
			for lvl := 0; lvl < levels && n < nodes; lvl++ {
				for w := 0; w < width && n < nodes; w++ {
					open() // leaf
					closeTo(depth - 1)
					n++
				}
				if lvl < levels-1 && n < nodes {
					open() // nested wrapper
					n++
				}
			}
			closeTo(recordDepth)
		}
		closeTo(sectionDepth - 1)
	}
	closeTo(0)
	return FromBools(seq)
}

func BenchmarkKernelsVsPerBit(b *testing.B) {
	t := benchTree(200_000)
	rng := rand.New(rand.NewSource(7))
	m := t.paren.Len()
	var opens, closes []int
	for len(opens) < 4096 || len(closes) < 4096 {
		p := rng.Intn(m)
		if t.paren.Get(p) {
			if len(opens) < 4096 {
				opens = append(opens, p)
			}
		} else if len(closes) < 4096 {
			closes = append(closes, p)
		}
	}
	sink := 0

	b.Run("findclose/word", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.FindClose(opens[i%len(opens)])
		}
	})
	b.Run("findclose/perbit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := opens[i%len(opens)]
			sink += perbitFwdSearch(t, p, t.Excess(p)-1)
		}
	})

	b.Run("findopen/word", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.FindOpen(closes[i%len(closes)])
		}
	})
	b.Run("findopen/perbit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := closes[i%len(closes)]
			sink += perbitBwdSearch(t, p, t.Excess(p)) + 1
		}
	})

	b.Run("enclose/word", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Enclose(opens[i%len(opens)])
		}
	})
	b.Run("enclose/perbit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := opens[i%len(opens)]
			if p == 0 {
				continue
			}
			sink += perbitBwdSearch(t, p, t.Excess(p)-2) + 1
		}
	})

	if sink == 1<<62 {
		b.Fatal("impossible")
	}
}

// TestPerbitBaselinesAgree keeps the benchmark honest: if the baseline
// copies drift from the live kernels, the paired ratios are meaningless.
func TestPerbitBaselinesAgree(t *testing.T) {
	bt := benchTree(5_000)
	for p := 0; p < bt.paren.Len(); p++ {
		ex := bt.Excess(p)
		if bt.paren.Get(p) {
			if got, want := perbitFwdSearch(bt, p, ex-1), bt.FindClose(p); got != want {
				t.Fatalf("perbitFwdSearch(%d) = %d, want %d", p, got, want)
			}
			if p > 0 {
				if got, want := perbitBwdSearch(bt, p, ex-2)+1, bt.Enclose(p); got != want {
					t.Fatalf("perbit enclose(%d) = %d, want %d", p, got, want)
				}
			}
		} else {
			if got, want := perbitBwdSearch(bt, p, ex)+1, bt.FindOpen(p); got != want {
				t.Fatalf("perbit findopen(%d) = %d, want %d", p, got, want)
			}
		}
	}
}
