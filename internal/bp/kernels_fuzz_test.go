package bp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential tests for the byte-parallel excess kernels: fwdSearch and
// bwdSearch (and through them scanFwd/scanBwd and the byteSum/byteMin/
// fwdDepth tables) are checked against per-bit reference scans on every
// call pattern the tree operations generate — FindClose, FindOpen and
// Enclose — so a table or reachability-condition bug cannot hide behind
// the segment-tree layer above the kernels.

// refFwdSearch is the per-bit oracle: smallest j > i with
// Excess(j) == target, or -1.
func refFwdSearch(t *Tree, i, target int) int {
	ex := t.Excess(i)
	for j := i + 1; j < t.paren.Len(); j++ {
		if t.paren.Get(j) {
			ex++
		} else {
			ex--
		}
		if ex == target {
			return j
		}
	}
	return -1
}

// refBwdSearch is the per-bit oracle: largest j < i with
// Excess(j) == target, or -1 (which, exactly like bwdSearch, also encodes
// a hit at position -1 whose excess is 0 — callers add one either way).
func refBwdSearch(t *Tree, i, target int) int {
	ex := t.Excess(i)
	for j := i; j >= 0; j-- {
		if t.paren.Get(j) {
			ex--
		} else {
			ex++
		}
		if ex == target {
			return j - 1
		}
	}
	return -1
}

// checkKernels runs every kernel invocation the tree navigation emits
// against the per-bit oracles, on both the built tree and its
// Raw→FromRaw reconstruction (the mapped-open path).
func checkKernels(t *testing.T, seq []bool) {
	t.Helper()
	built := FromBools(seq)
	remapped, err := FromRaw(built.Raw())
	if err != nil {
		t.Fatalf("FromRaw: %v", err)
	}
	for _, bt := range []*Tree{built, remapped} {
		m := bt.paren.Len()
		for p := 0; p < m; p++ {
			ex := bt.Excess(p)
			if bt.paren.Get(p) {
				// FindClose pattern.
				if got, want := bt.fwdSearch(p, ex-1), refFwdSearch(bt, p, ex-1); got != want {
					t.Fatalf("fwdSearch(%d, %d) = %d, want %d (len %d)", p, ex-1, got, want, m)
				}
				// Enclose pattern.
				if p > 0 {
					if got, want := bt.bwdSearch(p, ex-2), refBwdSearch(bt, p, ex-2); got != want {
						t.Fatalf("bwdSearch(%d, %d) = %d, want %d (len %d)", p, ex-2, got, want, m)
					}
				}
			} else {
				// FindOpen pattern.
				if got, want := bt.bwdSearch(p, ex), refBwdSearch(bt, p, ex); got != want {
					t.Fatalf("bwdSearch(%d, %d) = %d, want %d (len %d)", p, ex, got, want, m)
				}
			}
		}
	}
}

// boundarySizes are node counts straddling the byte, word and block
// granularities of the kernels (blockBits=256 ⇒ 128 nodes per block).
var boundarySizes = []int{1, 2, 3, 4, 7, 8, 9, 31, 32, 33, 63, 64, 65, 127, 128, 129, 255, 256, 257, 511}

func TestKernelsAtBoundarySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range boundarySizes {
		checkKernels(t, randomSeq(rng, n))
	}
}

func TestKernelsRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		checkKernels(t, randomSeq(rng, 1+rng.Intn(400)))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestKernelsDeepTrees covers the worst case for the excess tables: a
// path tree ("((((...))))") whose excess crosses many byte boundaries in
// one direction, plus a comb that repeatedly returns to low excess.
func TestKernelsDeepTrees(t *testing.T) {
	for _, n := range []int{5, 64, 200, 300} {
		path := make([]bool, 0, 2*n)
		for i := 0; i < n; i++ {
			path = append(path, true)
		}
		for i := 0; i < n; i++ {
			path = append(path, false)
		}
		checkKernels(t, path)

		comb := []bool{true}
		for i := 1; i < n; i++ {
			comb = append(comb, true, false)
		}
		comb = append(comb, false)
		checkKernels(t, comb)
	}
}

// FuzzBPKernels drives the kernels from arbitrary bytes: the input bits
// steer a balanced-sequence builder (open when possible and the bit says
// so, else close), and the resulting tree is checked bit-for-bit against
// the oracles.
func FuzzBPKernels(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x0f, 0xf0})
	f.Add([]byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			t.Skip()
		}
		seq := []bool{true} // root open
		depth := 1
		for i := 0; i < len(data)*8; i++ {
			open := data[i/8]&(1<<(i%8)) != 0
			if open {
				seq = append(seq, true)
				depth++
			} else if depth > 1 {
				seq = append(seq, false)
				depth--
			}
		}
		for ; depth > 0; depth-- {
			seq = append(seq, false)
		}
		checkKernels(t, seq)
	})
}
