// Package compile translates Core XPath ASTs into automata: the full
// forward fragment into alternating selecting tree automata (§4.2,
// Example 4.1), and the restricted child/descendant name-path fragment
// into deterministic top-down STAs (the "extreme |Q|-optimization" of
// §1).
//
// The ASTA compilation follows the paper's scheme: one state per query
// step, at most two transitions per state — a "progress" transition
// whose formula encodes the predicates and the continuation to the next
// step, and a "recursion" transition that moves the search through the
// document (↓1 q ∨ ↓2 q for descendant steps, ↓2 q for child/sibling
// scans).
package compile

import (
	"errors"
	"fmt"

	"repro/internal/asta"
	"repro/internal/labels"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// ErrUnsupported marks queries outside the automata fragment — the
// compile failures an Auto strategy may legitimately route to the
// step-wise engine (backward axes, text functions, §6's black-box
// handling). Errors that do not match it are real failures and must
// surface. Match with errors.Is.
var ErrUnsupported = errors.New("query outside the automata fragment")

// unsupportedf builds a fragment-violation error: errors.Is matches it
// against ErrUnsupported without altering the message text.
func unsupportedf(format string, args ...any) error {
	return &unsupportedError{msg: fmt.Sprintf(format, args...)}
}

type unsupportedError struct{ msg string }

func (e *unsupportedError) Error() string { return e.msg }

func (e *unsupportedError) Is(target error) bool { return target == ErrUnsupported }

// ToASTA compiles a parsed query against a label table (normally the
// document's, so that guards refer to its label ids). Names absent from
// the table yield never-firing guards rather than errors: the query is
// legal, it just selects nothing.
func ToASTA(p *xpath.Path, names *tree.LabelTable) (*asta.ASTA, error) {
	c := &compiler{names: names}
	if !p.Absolute {
		return nil, unsupportedf("compile: top-level query must be absolute, got %q", p.String())
	}
	if len(p.Steps) == 0 {
		return nil, unsupportedf("compile: empty path")
	}
	// The synthetic initial state reads the #doc root and launches the
	// first step at its children.
	qI := c.newState()
	phi, err := c.anchor(p.Steps, true)
	if err != nil {
		return nil, err
	}
	c.trans = append(c.trans, asta.Transition{
		From:  qI,
		Guard: labels.Of(tree.LabelDoc),
		Phi:   phi,
	})
	out := &asta.ASTA{
		NumStates: int(c.next),
		Top:       asta.StateSet(0).With(qI),
		Trans:     c.trans,
	}
	return out.Finalize()
}

// MustToASTA panics on error; for fixed query tables in tests and
// benchmarks.
func MustToASTA(p *xpath.Path, names *tree.LabelTable) *asta.ASTA {
	a, err := ToASTA(p, names)
	if err != nil {
		panic(err)
	}
	return a
}

type compiler struct {
	names *tree.LabelTable
	next  asta.State
	trans []asta.Transition
}

func (c *compiler) newState() asta.State {
	q := c.next
	c.next++
	if int(c.next) > asta.MaxStates {
		panic(fmt.Sprintf("compile: query needs more than %d states", asta.MaxStates))
	}
	return q
}

// guard translates a node test into a label set.
func (c *compiler) guard(t xpath.NodeTest) labels.Set {
	switch t.Kind {
	case xpath.TestName:
		if id, ok := c.names.Lookup(t.Name); ok {
			return labels.Of(id)
		}
		return labels.None
	case xpath.TestStar:
		// * matches elements only: not the synthetic root, not text,
		// not the encoded attributes.
		return labels.Not(c.nonElements(true)...)
	case xpath.TestNode:
		// node() matches anything on the child axis except the encoded
		// attributes (and never the synthetic root).
		return labels.Not(c.nonElements(false)...)
	case xpath.TestText:
		return labels.Of(tree.LabelText)
	}
	return labels.None
}

// nonElements lists #doc, optionally #text, and every attribute label.
func (c *compiler) nonElements(excludeText bool) []tree.LabelID {
	out := []tree.LabelID{tree.LabelDoc}
	if excludeText {
		out = append(out, tree.LabelText)
	}
	for i, name := range c.names.Names() {
		if len(name) > 0 && name[0] == '@' {
			out = append(out, tree.LabelID(i))
		}
	}
	return out
}

// searchKind distinguishes the two recursion shapes of §4.2.
type searchKind int8

const (
	descSearch searchKind = iota // self-or-binary-subtree: ↓1 q ∨ ↓2 q
	sibSearch                    // self-or-right-spine: ↓2 q
)

// searchState allocates the state for one location step: a match
// transition guarded by the node test whose formula is the continuation,
// and the recursion transition of the search kind.
func (c *compiler) searchState(kind searchKind, g labels.Set, cont *asta.Formula, selecting bool) asta.State {
	q := c.newState()
	c.trans = append(c.trans, asta.Transition{
		From: q, Guard: g, Phi: cont, Selecting: selecting,
	})
	var rec *asta.Formula
	if kind == descSearch {
		rec = asta.Or(asta.Down1(q), asta.Down2(q))
	} else {
		rec = asta.Down2(q)
	}
	c.trans = append(c.trans, asta.Transition{
		From: q, Guard: labels.Any, Phi: rec,
	})
	return q
}

// anchor compiles "steps match starting from the context node" into a
// formula evaluated at the context node. selecting marks the main
// selection path: its final step's match transition is the ⇒ form.
func (c *compiler) anchor(steps []xpath.Step, selecting bool) (*asta.Formula, error) {
	if len(steps) == 0 {
		return asta.True(), nil
	}
	st := steps[0]
	if st.Axis == xpath.Self {
		if st.Test.Kind != xpath.TestNode {
			return nil, unsupportedf("compile: self axis supports only node(), got %s", st.Test)
		}
		// "." — the context itself; predicates and the rest of the
		// path apply here directly.
		rest, err := c.anchor(steps[1:], selecting)
		if err != nil {
			return nil, err
		}
		return c.conjoinPreds(st.Preds, rest)
	}
	last := len(steps) == 1
	cont, err := c.anchor(steps[1:], selecting)
	if err != nil {
		return nil, err
	}
	cont, err = c.conjoinPreds(st.Preds, cont)
	if err != nil {
		return nil, err
	}
	g := c.guard(st.Test)
	sel := selecting && last
	switch st.Axis {
	case xpath.Child, xpath.Attribute:
		q := c.searchState(sibSearch, g, cont, sel)
		return asta.Down1(q), nil
	case xpath.Descendant:
		q := c.searchState(descSearch, g, cont, sel)
		return asta.Down1(q), nil
	case xpath.FollowingSibling:
		q := c.searchState(sibSearch, g, cont, sel)
		return asta.Down2(q), nil
	case xpath.Parent, xpath.Ancestor, xpath.AncestorOrSelf:
		// Up-moves are outside the forward fragment's theory (§6); the
		// engine evaluates such queries with the step-wise fallback.
		return nil, unsupportedf("compile: backward axis %v not supported by the automata pipeline", st.Axis)
	}
	return nil, unsupportedf("compile: unsupported axis %v", st.Axis)
}

// conjoinPreds conjoins the step's predicate formulas with the
// continuation.
func (c *compiler) conjoinPreds(preds []xpath.Pred, cont *asta.Formula) (*asta.Formula, error) {
	out := cont
	for i := len(preds) - 1; i >= 0; i-- {
		pf, err := c.pred(preds[i])
		if err != nil {
			return nil, err
		}
		out = asta.And(pf, out)
	}
	return out, nil
}

// pred compiles a predicate to a formula evaluated at the candidate node.
func (c *compiler) pred(p xpath.Pred) (*asta.Formula, error) {
	switch q := p.(type) {
	case *xpath.And:
		l, err := c.pred(q.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.pred(q.Right)
		if err != nil {
			return nil, err
		}
		return asta.And(l, r), nil
	case *xpath.Or:
		l, err := c.pred(q.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.pred(q.Right)
		if err != nil {
			return nil, err
		}
		return asta.Or(l, r), nil
	case *xpath.Not:
		inner, err := c.pred(q.Inner)
		if err != nil {
			return nil, err
		}
		return asta.Not(inner), nil
	case *xpath.PathPred:
		if q.Path.Absolute {
			return nil, unsupportedf("compile: absolute paths in predicates are not supported: %s", q.Path)
		}
		return c.anchor(q.Path.Steps, false)
	case *xpath.Contains:
		// Text predicates are black-box functions to the automaton
		// (§6); the engine evaluates such queries step-wise.
		return nil, unsupportedf("compile: contains() not supported by the automata pipeline")
	}
	return nil, unsupportedf("compile: unknown predicate %T", p)
}

// Compile parses and compiles in one call.
func Compile(query string, names *tree.LabelTable) (*asta.ASTA, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return ToASTA(p, names)
}
