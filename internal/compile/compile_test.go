package compile_test

import (
	"testing"
	"testing/quick"

	"repro/internal/compile"
	"repro/internal/index"
	"repro/internal/stepwise"
	"repro/internal/tgen"
	"repro/internal/tree"
	"repro/internal/xpath"
)

func sameNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TDSTA-eligible queries: child steps then descendant steps, name/* tests.
var tdstaBattery = []string{
	"/a",
	"/a/b",
	"/a/b/c",
	"//a",
	"//a//b",
	"//a//b//c",
	"/a//b",
	"/a/b//c",
	"/a//b//c",
	"/*",
	"/a/*//b",
	"//*",
}

// TestTDSTAAgainstStepwise: the deterministic compilation selects the
// same nodes as the oracle, via the full run, and via topdown_jump on the
// minimized automaton (Theorem 3.1 end to end).
func TestTDSTAAgainstStepwise(t *testing.T) {
	paths := make([]*xpath.Path, len(tdstaBattery))
	for i, q := range tdstaBattery {
		paths[i] = xpath.MustParse(q)
	}
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{
			Labels:   []string{"a", "b", "c"},
			MaxNodes: 150,
		})
		ix := index.New(d)
		for qi, p := range paths {
			want := stepwise.Eval(d, p, stepwise.Default()).Selected
			aut, err := compile.ToTDSTA(p, d.Names())
			if err != nil {
				t.Logf("compile %q: %v", tdstaBattery[qi], err)
				return false
			}
			if !aut.IsTopDownDeterministic() || !aut.IsTopDownComplete() {
				t.Logf("%q: not deterministic/complete", tdstaBattery[qi])
				return false
			}
			full := aut.EvalTopDownDet(d)
			if !sameNodes(full.Selected, want) {
				t.Logf("seed=%d %q full: got %v want %v", seed, tdstaBattery[qi], full.Selected, want)
				return false
			}
			min := aut.MinimizeTopDown()
			jump := min.EvalTopDownJump(d, ix)
			if !sameNodes(jump.Selected, want) {
				t.Logf("seed=%d %q jump: got %v want %v", seed, tdstaBattery[qi], jump.Selected, want)
				return false
			}
			if jump.Visited > full.Visited {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTDSTARejectsOutsideFragment(t *testing.T) {
	lt := tree.NewLabelTable()
	for _, q := range []string{
		"//a/b",                    // child after descendant
		"//a[b]",                   // predicate
		"//a/text()",               // text test
		"/a/@x",                    // attribute axis
		"//a/following-sibling::b", // unsupported axis
	} {
		if _, err := compile.ToTDSTA(xpath.MustParse(q), lt); err == nil {
			t.Errorf("ToTDSTA(%q) should fail", q)
		}
	}
}

func TestTDSTAJumpSkipsIrrelevant(t *testing.T) {
	// /site//keyword on a document where keywords cluster in one region.
	b := tree.NewBuilder()
	b.Open("site")
	for i := 0; i < 500; i++ {
		b.Open("filler")
		b.Close()
	}
	b.Open("region")
	for i := 0; i < 5; i++ {
		b.Open("keyword")
		b.Close()
	}
	b.Close()
	b.Close()
	d := b.MustFinish()
	ix := index.New(d)
	aut := compile.MustToTDSTA(xpath.MustParse("/site//keyword"), d.Names()).MinimizeTopDown()
	res := aut.EvalTopDownJump(d, ix)
	if len(res.Selected) != 5 {
		t.Fatalf("selected %d", len(res.Selected))
	}
	if res.Visited > 12 {
		t.Errorf("visited %d nodes of %d; jumping ineffective", res.Visited, d.NumNodes())
	}
}

func TestCompileStarGuards(t *testing.T) {
	d, _ := tgen.Random(1, tgen.Config{}), 0
	_ = d
	lt := tree.NewLabelTable()
	lt.Intern("a")
	lt.Intern("@href")
	aut, err := compile.Compile("//*", lt)
	if err != nil {
		t.Fatal(err)
	}
	if aut.NumStates != 2 {
		t.Errorf("states = %d", aut.NumStates)
	}
}

func TestMustHelpersPanic(t *testing.T) {
	lt := tree.NewLabelTable()
	defer func() {
		if recover() == nil {
			t.Error("MustToTDSTA should panic on bad input")
		}
	}()
	compile.MustToTDSTA(xpath.MustParse("//a[b]"), lt)
}
