package compile

import (
	"fmt"
	"sort"

	"repro/internal/asta"
	"repro/internal/labels"
	"repro/internal/sta"
	"repro/internal/tree"
)

// Eliminate removes alternation from a negation-free ASTA, producing an
// equivalent nondeterministic selecting tree automaton. This is the
// translation whose exponential cost Example C.1 exhibits (each formula
// is expanded to disjunctive normal form, and states become sets of ASTA
// states); the paper's engine avoids it by evaluating the alternating
// automaton directly, determinizing only the top-down approximation
// on-the-fly. It exists here to (a) demonstrate that blow-up concretely
// and (b) tie the ASTA semantics to the reference STA semantics in the
// tests.
//
// ASTA selection is per transition (the ⇒ form of Definition 4.1) while
// STA selection is per configuration (Definition 2.3), so subset states
// carry a mark bit — the "selecting-unambiguous" split of Appendix A:
// state (S, true) fires only combinations that use a selecting ASTA
// transition and is the one whose configurations select.
//
// maxStates bounds the subset construction; exceeding it (or an ASTA
// using negation, which alternation-free STAs cannot express without
// complementation) returns an error.
func Eliminate(a *asta.ASTA, maxStates int) (*sta.STA, error) {
	elim := &eliminator{ids: make(map[string]sta.State)}
	mentioned := mentionedLabels(a)

	// canSelect[q]: q has at least one selecting transition; dest states
	// (S, true) are only worth materializing when some member can select.
	canSelect := make([]bool, a.NumStates)
	for _, t := range a.Trans {
		if t.Selecting {
			canSelect[t.From] = true
		}
	}

	empty := elim.intern(nil, false)
	out := &sta.STA{Bottom: []sta.State{empty}}
	out.Trans = append(out.Trans, sta.Transition{
		From: empty, Guard: labels.Any, Dest: sta.Pair{Left: empty, Right: empty},
	})

	var queue []setState
	enqueueNew := func(s setState) sta.State {
		if id, ok := elim.lookup(s.states, s.marked); ok {
			return id
		}
		id := elim.intern(s.states, s.marked)
		queue = append(queue, s)
		return id
	}
	a.Top.Each(func(q asta.State) {
		enqueueNew(setState{states: []asta.State{q}})
		if canSelect[q] {
			enqueueNew(setState{states: []asta.State{q}, marked: true})
		}
	})

	guards := make([]labels.Set, 0, len(mentioned)+1)
	rest := labels.Any
	for _, l := range mentioned {
		guards = append(guards, labels.Of(l))
		rest = rest.Minus(labels.Of(l))
	}
	guards = append(guards, rest)

	anySelects := func(s []asta.State) bool {
		for _, q := range s {
			if canSelect[q] {
				return true
			}
		}
		return false
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		from, _ := elim.lookup(cur.states, cur.marked)
		for _, g := range guards {
			l, haveWitness := guardWitness(g, mentioned)
			if !haveWitness {
				continue
			}
			choices := make([][]conjunct, len(cur.states))
			dead := false
			for i, q := range cur.states {
				var opts []conjunct
				for _, ti := range a.TransOf(q) {
					t := &a.Trans[ti]
					if !t.Guard.Contains(l) {
						continue
					}
					cs, err := dnf(t.Phi)
					if err != nil {
						return nil, err
					}
					for ci := range cs {
						cs[ci].selecting = t.Selecting
					}
					opts = append(opts, cs...)
				}
				if len(opts) == 0 {
					dead = true
					break
				}
				choices[i] = opts
			}
			if dead {
				continue
			}
			type destKey struct {
				d1, d2 sta.State
			}
			seenDest := make(map[destKey]bool)
			for _, combo := range cross(choices) {
				mSelf := false
				var s1, s2 []asta.State
				for _, c := range combo {
					mSelf = mSelf || c.selecting
					s1 = append(s1, c.down1...)
					s2 = append(s2, c.down2...)
				}
				if mSelf != cur.marked {
					continue
				}
				s1, s2 = dedupStates(s1), dedupStates(s2)
				// Children may or may not be marked; enumerate the
				// meaningful combinations.
				d1opts := []sta.State{enqueueNew(setState{states: s1})}
				if len(s1) > 0 && anySelects(s1) {
					d1opts = append(d1opts, enqueueNew(setState{states: s1, marked: true}))
				}
				d2opts := []sta.State{enqueueNew(setState{states: s2})}
				if len(s2) > 0 && anySelects(s2) {
					d2opts = append(d2opts, enqueueNew(setState{states: s2, marked: true}))
				}
				if elim.count() > maxStates {
					return nil, fmt.Errorf("compile: alternation elimination exceeded %d states", maxStates)
				}
				for _, d1 := range d1opts {
					for _, d2 := range d2opts {
						k := destKey{d1, d2}
						if seenDest[k] {
							continue
						}
						seenDest[k] = true
						out.Trans = append(out.Trans, sta.Transition{
							From: from, Guard: g,
							Dest:      sta.Pair{Left: d1, Right: d2},
							Selecting: cur.marked,
						})
					}
				}
			}
		}
	}

	out.NumStates = elim.count()
	for key, id := range elim.ids {
		if keyContainsTop(a, key) {
			out.Top = append(out.Top, id)
		}
	}
	sort.Slice(out.Top, func(i, j int) bool { return out.Top[i] < out.Top[j] })
	return out.Finalize(), nil
}

type setState struct {
	states []asta.State
	marked bool
}

// conjunct is one DNF term: the states required below-left and
// below-right, and whether the source transition selects.
type conjunct struct {
	down1, down2 []asta.State
	selecting    bool
}

// dnf expands a negation-free formula to disjunctive normal form. ⊥
// contributes no conjuncts; ⊤ contributes the empty conjunct.
func dnf(f *asta.Formula) ([]conjunct, error) {
	switch f.Kind {
	case asta.FTrue:
		return []conjunct{{}}, nil
	case asta.FFalse:
		return nil, nil
	case asta.FDown:
		c := conjunct{}
		if f.Child == 1 {
			c.down1 = []asta.State{f.Q}
		} else {
			c.down2 = []asta.State{f.Q}
		}
		return []conjunct{c}, nil
	case asta.FOr:
		l, err := dnf(f.Left)
		if err != nil {
			return nil, err
		}
		r, err := dnf(f.Right)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case asta.FAnd:
		l, err := dnf(f.Left)
		if err != nil {
			return nil, err
		}
		r, err := dnf(f.Right)
		if err != nil {
			return nil, err
		}
		var out []conjunct
		for _, cl := range l {
			for _, cr := range r {
				out = append(out, conjunct{
					down1: append(append([]asta.State(nil), cl.down1...), cr.down1...),
					down2: append(append([]asta.State(nil), cl.down2...), cr.down2...),
				})
			}
		}
		return out, nil
	case asta.FNot:
		return nil, fmt.Errorf("compile: cannot eliminate alternation under negation")
	}
	return nil, fmt.Errorf("compile: unknown formula kind %d", f.Kind)
}

// cross expands the per-state choice lists into all combinations.
func cross(choices [][]conjunct) [][]conjunct {
	out := [][]conjunct{nil}
	for _, opts := range choices {
		var next [][]conjunct
		for _, prefix := range out {
			for _, o := range opts {
				row := append(append([]conjunct(nil), prefix...), o)
				next = append(next, row)
			}
		}
		out = next
	}
	return out
}

// eliminator interns (set, mark) pairs as dense STA states.
type eliminator struct {
	ids map[string]sta.State
}

func canonical(s []asta.State, marked bool) string {
	cp := dedupStates(s)
	buf := make([]byte, 0, 2*len(cp)+1)
	if marked {
		buf = append(buf, '!')
	}
	for _, q := range cp {
		buf = append(buf, byte(q), ',')
	}
	return string(buf)
}

func (e *eliminator) lookup(s []asta.State, marked bool) (sta.State, bool) {
	id, ok := e.ids[canonical(s, marked)]
	return id, ok
}

func (e *eliminator) intern(s []asta.State, marked bool) sta.State {
	key := canonical(s, marked)
	if id, ok := e.ids[key]; ok {
		return id
	}
	id := sta.State(len(e.ids))
	e.ids[key] = id
	return id
}

func dedupStates(s []asta.State) []asta.State {
	if len(s) == 0 {
		return nil
	}
	cp := append([]asta.State(nil), s...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	w := 1
	for i := 1; i < len(cp); i++ {
		if cp[i] != cp[w-1] {
			cp[w] = cp[i]
			w++
		}
	}
	return cp[:w]
}

func (e *eliminator) count() int { return len(e.ids) }

// keyContainsTop decodes a canonical key and reports whether its set
// part contains an ASTA top state.
func keyContainsTop(a *asta.ASTA, key string) bool {
	i := 0
	if len(key) > 0 && key[0] == '!' {
		i = 1
	}
	for ; i+1 < len(key); i += 2 {
		if a.Top.Has(asta.State(key[i])) {
			return true
		}
	}
	return false
}

// mentionedLabels collects the labels appearing in any guard.
func mentionedLabels(a *asta.ASTA) []tree.LabelID {
	seen := make(map[tree.LabelID]bool)
	for _, t := range a.Trans {
		if ids, ok := t.Guard.Finite(); ok {
			for _, l := range ids {
				seen[l] = true
			}
		} else if ids, ok := t.Guard.Negated(); ok {
			for _, l := range ids {
				seen[l] = true
			}
		}
	}
	out := make([]tree.LabelID, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// guardWitness picks a representative label from a guard for transition
// activation checks: the finite member, or any label outside the
// mentioned set for the co-finite remainder.
func guardWitness(g labels.Set, mentioned []tree.LabelID) (tree.LabelID, bool) {
	if ids, ok := g.Finite(); ok {
		if len(ids) == 0 {
			return 0, false
		}
		return ids[0], true
	}
	fresh := tree.LabelID(0)
	if len(mentioned) > 0 {
		fresh = mentioned[len(mentioned)-1] + 1
	}
	for !g.Contains(fresh) {
		fresh++
	}
	return fresh, true
}
