package compile_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/compile"
	"repro/internal/stepwise"
	"repro/internal/tgen"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// Negation-free queries for the alternation-elimination battery.
var elimBattery = []string{
	"/a",
	"//a",
	"//a//b",
	"//a/b",
	"//a[b]",
	"//a[.//b]",
	"//a[b and c]",
	"//a[b or c]",
	"//a//b[c]",
	"//a[.//b and .//c]//d",
	"//a[b and (c or d)]",
	"//a[.//b]//b",
}

// TestEliminateAgainstStepwise: the alternation-free automaton produced
// by Eliminate selects exactly the oracle's nodes, evaluated with the
// reference STA semantics — tying ASTA and STA semantics together.
func TestEliminateAgainstStepwise(t *testing.T) {
	paths := make([]*xpath.Path, len(elimBattery))
	for i, q := range elimBattery {
		paths[i] = xpath.MustParse(q)
	}
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{
			Labels:   []string{"a", "b", "c", "d"},
			MaxNodes: 60,
		})
		for qi, p := range paths {
			want := stepwise.Eval(d, p, stepwise.Default()).Selected
			aut, err := compile.ToASTA(p, d.Names())
			if err != nil {
				return false
			}
			nsta, err := compile.Eliminate(aut, 4096)
			if err != nil {
				t.Logf("%q: %v", elimBattery[qi], err)
				return false
			}
			res := nsta.Eval(d)
			if len(res.Selected) != len(want) {
				t.Logf("seed=%d %q: got %v want %v", seed, elimBattery[qi], res.Selected, want)
				return false
			}
			for i := range want {
				if res.Selected[i] != want[i] {
					t.Logf("seed=%d %q: got %v want %v", seed, elimBattery[qi], res.Selected, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestEliminateBlowup reproduces Example C.1 concretely: the number of
// transitions of the alternation-free automaton grows with the DNF (2^n
// conjunct combinations) while the ASTA stays linear.
func TestEliminateBlowup(t *testing.T) {
	build := func(n int) (string, *tree.LabelTable) {
		names := tree.NewLabelTable()
		names.Intern("x")
		var sb strings.Builder
		sb.WriteString("//x[ ")
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(" and ")
			}
			a := names.Name(names.Intern(letter(2 * i)))
			b := names.Name(names.Intern(letter(2*i + 1)))
			sb.WriteString("(" + a + " or " + b + ")")
		}
		sb.WriteString(" ]")
		return sb.String(), names
	}
	var prev int
	for _, n := range []int{1, 2, 3, 4} {
		q, names := build(n)
		aut, err := compile.Compile(q, names)
		if err != nil {
			t.Fatal(err)
		}
		nsta, err := compile.Eliminate(aut, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		// The selecting x-transition multiplies 2^n choices; count the
		// transitions guarded by {x}.
		xID, _ := names.Lookup("x")
		xTrans := 0
		for _, tr := range nsta.Trans {
			if tr.Guard.Contains(xID) && tr.Selecting {
				xTrans++
			}
		}
		if xTrans < 1<<n {
			t.Errorf("n=%d: selecting x-transitions = %d, want >= 2^n = %d", n, xTrans, 1<<n)
		}
		prev = xTrans
		_ = prev
		if aut.Size() > 40*n {
			t.Errorf("n=%d: ASTA size %d not linear", n, aut.Size())
		}
	}
}

func letter(i int) string {
	return string(rune('a'+i%20)) + "p"
}

func TestEliminateRejectsNegation(t *testing.T) {
	lt := tree.NewLabelTable()
	lt.Intern("a")
	lt.Intern("b")
	aut, err := compile.Compile("//a[not(b)]", lt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Eliminate(aut, 1024); err == nil {
		t.Error("Eliminate should reject negation")
	}
}

func TestEliminateStateBound(t *testing.T) {
	lt := tree.NewLabelTable()
	for _, s := range []string{"a", "b", "c", "d", "e", "f"} {
		lt.Intern(s)
	}
	aut, err := compile.Compile("//a[.//b and .//c and .//d and .//e]//f", lt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Eliminate(aut, 3); err == nil {
		t.Error("tiny state bound should trip")
	}
}
