package compile

import (
	"fmt"

	"repro/internal/labels"
	"repro/internal/sta"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// ToTDSTA compiles the restricted fragment — absolute paths of child and
// descendant steps with name or * tests and no predicates — into a
// top-down deterministic selecting tree automaton: the "extreme
// |Q|-optimization" of §1, evaluated with a single lookup per node (or,
// minimized, with topdown_jump visiting only relevant nodes).
//
// The compilation allocates one state per step:
//
//	child step i      q_i, {name} → (q_{i+1}, q_i)    siblings keep scanning
//	                  q_i, other  → (q⊤,     q_i)     subtree irrelevant
//	descendant step i q_i, {name} → (q_{i+1}, q_i)    plus the subtree keeps
//	                  q_i, other  → (q_i,    q_i)     searching below
//
// with the final step's match transition selecting (continuing in q⊤ on
// the left for a child step, or recursively for a descendant step).
func ToTDSTA(p *xpath.Path, names *tree.LabelTable) (*sta.STA, error) {
	if !p.Absolute || len(p.Steps) == 0 {
		return nil, fmt.Errorf("compile: TDSTA fragment requires an absolute non-empty path")
	}
	seenDesc := false
	for _, st := range p.Steps {
		if st.Axis != xpath.Child && st.Axis != xpath.Descendant {
			return nil, fmt.Errorf("compile: TDSTA fragment supports child and descendant only, got %v", st.Axis)
		}
		if st.Test.Kind != xpath.TestName && st.Test.Kind != xpath.TestStar {
			return nil, fmt.Errorf("compile: TDSTA fragment supports name and * tests, got %s", st.Test)
		}
		if len(st.Preds) > 0 {
			return nil, fmt.Errorf("compile: TDSTA fragment does not support predicates")
		}
		if st.Axis == xpath.Descendant {
			seenDesc = true
		} else if seenDesc {
			// A child step after a descendant step needs a subset
			// construction (matches at several depths are live at
			// once); that is what the ASTA pipeline is for.
			return nil, fmt.Errorf("compile: TDSTA fragment requires child steps to precede descendant steps")
		}
	}
	n := len(p.Steps)
	// States: 0 = initial (at #doc), 1..n = step states, n+1 = q⊤,
	// n+2 = q⊥ (only initial can fail: non-#doc root).
	qInit := sta.State(0)
	qStep := func(i int) sta.State { return sta.State(1 + i) }
	qTop := sta.State(n + 1)
	qBot := sta.State(n + 2)
	aut := &sta.STA{
		NumStates: n + 3,
		Top:       []sta.State{qInit},
	}
	// Every state except q⊥ may label a # leaf.
	for q := sta.State(0); q <= qTop; q++ {
		aut.Bottom = append(aut.Bottom, q)
	}
	aut.Trans = append(aut.Trans,
		sta.Transition{From: qInit, Guard: labels.Of(tree.LabelDoc), Dest: sta.Pair{Left: qStep(0), Right: qTop}},
		sta.Transition{From: qInit, Guard: labels.Not(tree.LabelDoc), Dest: sta.Pair{Left: qBot, Right: qBot}},
		sta.Transition{From: qTop, Guard: labels.Any, Dest: sta.Pair{Left: qTop, Right: qTop}},
		sta.Transition{From: qBot, Guard: labels.Any, Dest: sta.Pair{Left: qBot, Right: qBot}},
	)
	c := &compiler{names: names}
	for i, st := range p.Steps {
		q := qStep(i)
		last := i == n-1
		var matchLeft sta.State
		switch {
		case last && st.Axis == xpath.Descendant:
			matchLeft = q // keep searching below a match
		case last:
			matchLeft = qTop
		default:
			matchLeft = qStep(i + 1)
		}
		g := c.guard(st.Test)
		var miss sta.Pair
		if st.Axis == xpath.Descendant {
			miss = sta.Pair{Left: q, Right: q}
		} else {
			miss = sta.Pair{Left: qTop, Right: q}
		}
		aut.Trans = append(aut.Trans,
			sta.Transition{From: q, Guard: g, Dest: sta.Pair{Left: matchLeft, Right: q}, Selecting: last},
			sta.Transition{From: q, Guard: g.Complement(), Dest: miss},
		)
	}
	return aut.Finalize(), nil
}

// MustToTDSTA panics on error.
func MustToTDSTA(p *xpath.Path, names *tree.LabelTable) *sta.STA {
	a, err := ToTDSTA(p, names)
	if err != nil {
		panic(err)
	}
	return a
}
