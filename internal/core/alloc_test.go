package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/xmark"
)

// TestSteadyStateAllocCeilings pins the steady-state (cache-warm,
// pool-warm) allocs/op of the three engine paths the service keeps
// hot: the optimized ASTA evaluator, the deterministic TDSTA, and the
// stepwise baseline. The ceilings carry headroom over measured values
// (ASTA 12-23, TDSTA 24-44, stepwise 10-26 at this scale) but a future
// accidental map rebuild, slice escape, or lost context reuse —
// thousands of allocations per op — fails here instead of silently
// regressing serving latency.
//
// The evaluation itself is allocation-free on the warm ASTA path; what
// remains is answer materialization (Answer + node slice + cursor),
// which scales with the answer, not the document.
func TestSteadyStateAllocCeilings(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc pinning is not meaningful under -short")
	}
	d := xmark.Generate(xmark.Config{Scale: 0.005, Seed: 3})
	e := core.New(d)
	cases := []struct {
		name    string
		query   string
		strat   core.Strategy
		ceiling float64
	}{
		// ASTA Opt: context pool makes evaluation allocation-free; the
		// remainder is the materialized answer.
		{"asta-opt/Q05", "//listitem//keyword", core.Optimized, 64},
		{"asta-opt/Q08", "//listitem[ .//keyword and .//emph]//parlist", core.Optimized, 64},
		{"asta-opt/Q11", "/site//keyword", core.Optimized, 64},
		// TDSTA: compiled automaton cached; run state is per-eval.
		{"tdsta/Q01", "/site/regions", core.TopDownDet, 128},
		{"tdsta/Q04", "/site/regions/*/item", core.TopDownDet, 128},
		// Stepwise baseline: per-step node sets are inherent, but the
		// count must stay bounded per op.
		{"stepwise/Q01", "/site/regions", core.Stepwise, 128},
		{"stepwise/Q05", "//listitem//keyword", core.Stepwise, 256},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm every layer: compiled-query cache, context pool,
			// arenas sized to the answer.
			for i := 0; i < 3; i++ {
				if _, err := e.QueryWith(tc.query, tc.strat); err != nil {
					t.Fatal(err)
				}
			}
			got := testing.AllocsPerRun(20, func() {
				if _, err := e.QueryWith(tc.query, tc.strat); err != nil {
					t.Fatal(err)
				}
			})
			if got > tc.ceiling {
				t.Errorf("%s: %.1f allocs/op, ceiling %.0f", tc.name, got, tc.ceiling)
			}
			t.Logf("%s: %.1f allocs/op (ceiling %.0f)", tc.name, got, tc.ceiling)
		})
	}
}
