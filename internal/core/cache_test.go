package core

import (
	"testing"

	"repro/internal/qcache"
	"repro/internal/xmlparse"
)

// TestEngineCacheSkipsRecompilation pins the LRU rewiring: repeated
// queries hit the compiled-automaton cache instead of recompiling, for
// both the ASTA strategies and the deterministic top-down path.
func TestEngineCacheSkipsRecompilation(t *testing.T) {
	d, err := xmlparse.ParseString("<r><a><b/></a><a><b/></a></r>")
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	for i := 0; i < 4; i++ {
		if _, err := e.QueryWith("//a/b", Optimized); err != nil {
			t.Fatal(err)
		}
	}
	cs := e.CacheStats()
	if cs.Misses != 1 || cs.Hits != 3 {
		t.Errorf("ASTA hits/misses = %d/%d, want 3/1", cs.Hits, cs.Misses)
	}

	// Naive/Jumping/Memoized share the Optimized entry: the compiled
	// automaton is strategy-independent.
	if _, err := e.QueryWith("//a/b", Naive); err != nil {
		t.Fatal(err)
	}
	if cs = e.CacheStats(); cs.Hits != 4 {
		t.Errorf("hits after naive rerun = %d, want 4 (shared entry)", cs.Hits)
	}

	// TopDownDet caches its minimized automaton under a separate kind
	// (its fragment wants child steps before descendant steps).
	for i := 0; i < 2; i++ {
		if _, err := e.QueryWith("/r/a//b", TopDownDet); err != nil {
			t.Fatal(err)
		}
	}
	cs = e.CacheStats()
	if cs.Misses != 2 || cs.Hits != 5 {
		t.Errorf("after tdsta hits/misses = %d/%d, want 5/2", cs.Hits, cs.Misses)
	}
}

// TestEnginesShareCache pins the namespacing contract the service
// relies on: two engines over different documents can share one LRU
// without colliding on identical query text.
func TestEnginesShareCache(t *testing.T) {
	d1, _ := xmlparse.ParseString("<r><a><b/></a></r>")
	d2, _ := xmlparse.ParseString("<r><a><b/><b/></a></r>")
	shared := qcache.New(8)
	e1 := NewWithCache(d1, shared, "one\x00")
	e2 := NewWithCache(d2, shared, "two\x00")
	a1, err := e1.QueryWith("//b", Optimized)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e2.QueryWith("//b", Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Nodes) != 1 || len(a2.Nodes) != 2 {
		t.Errorf("answers = %d/%d nodes, want 1/2", len(a1.Nodes), len(a2.Nodes))
	}
	if st := shared.Stats(); st.Size != 2 || st.Misses != 2 {
		t.Errorf("shared cache stats = %+v, want two independent entries", st)
	}
}
