// Package core is the whole-query optimizer: the paper's primary
// contribution assembled into an engine. Given a document it builds the
// jumping index once; given a query it chooses an execution strategy —
//
//   - the minimized deterministic TDSTA with topdown_jump (§3.1) for the
//     restricted child/descendant fragment,
//   - the hybrid start-anywhere run (§4.4) for label chains where some
//     label's global count is very low (the index answers counts in
//     O(1), §5),
//   - the alternating-automaton evaluator with jumping + memoization +
//     information propagation (§4, "Opt. Eval.") for everything else —
//
// and executes it, reporting which strategy ran and how many nodes it
// touched. Explicit strategies are available for experiments and
// ablations.
package core

import (
	"fmt"

	"repro/internal/asta"
	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/qcache"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// Strategy selects how a query is executed.
type Strategy int

// Strategies. Auto picks per query; the rest force one engine (the
// series of Figure 4 plus the baselines).
const (
	Auto Strategy = iota
	// Naive is Algorithm 4.1 with no optimization.
	Naive
	// Jumping adds the on-the-fly top-down approximation of relevant
	// nodes with index jumps.
	Jumping
	// Memoized adds the transition memo tables instead.
	Memoized
	// Optimized combines jumping, memoization and information
	// propagation ("Opt. Eval.").
	Optimized
	// Hybrid is the start-anywhere run; only chain queries support it.
	Hybrid
	// TopDownDet compiles to a minimized deterministic TDSTA and runs
	// topdown_jump; only the restricted fragment supports it.
	TopDownDet
	// Stepwise is the Koch/Gottlob-style baseline (the MonetDB stand-in
	// of Appendix D).
	Stepwise
	// EmptyChain is an outcome, not a forceable strategy: Auto proved
	// from the index that a chain label does not occur in the document,
	// so the answer is empty and no engine ran at all. ParseStrategy
	// rejects it.
	EmptyChain
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Naive:
		return "naive"
	case Jumping:
		return "jumping"
	case Memoized:
		return "memoized"
	case Optimized:
		return "optimized"
	case Hybrid:
		return "hybrid"
	case TopDownDet:
		return "topdown-det"
	case Stepwise:
		return "stepwise"
	case EmptyChain:
		return "empty-chain"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy maps a strategy name (as printed by String) back to the
// constant; ok is false for unknown names. The empty string is Auto, so
// wire formats can omit the field.
func ParseStrategy(name string) (Strategy, bool) {
	switch name {
	case "", "auto":
		return Auto, true
	case "naive":
		return Naive, true
	case "jumping":
		return Jumping, true
	case "memoized":
		return Memoized, true
	case "optimized":
		return Optimized, true
	case "hybrid":
		return Hybrid, true
	case "topdown-det":
		return TopDownDet, true
	case "stepwise":
		return Stepwise, true
	}
	return Auto, false
}

// hybridCountFraction: the §5 condition — use the hybrid run when the
// cheapest chain label's count is below this fraction of the most
// frequent one ("one of the labels in the query has a low count").
// With the adaptive selector this constant is only the cold-start and
// -auto-adaptive=false behavior; warm shapes route on observed
// latency (see selector.go).
const hybridCountFraction = 0.05

// hybridEval is the hybrid engine entry point, indirect so tests can
// inject failures into Auto's speculative hybrid attempt (the
// error-surfacing contract of autoCursor).
var hybridEval = hybrid.Eval

// Engine evaluates queries over one document. It is safe for concurrent
// use: the document and index are immutable and the compiled-query cache
// is a concurrency-safe LRU (each evaluation carries its own run state).
type Engine struct {
	doc *tree.Document
	ix  *index.Index

	// cache holds compiled automata (*asta.ASTA under kind "asta",
	// minimized *sta.STA under kind "tdsta"), keyed keyPrefix+kind+query.
	// It may be shared across engines (the multi-document service shares
	// one LRU and namespaces each engine by document id).
	cache     *qcache.Cache
	keyPrefix string

	// pool keeps warm evaluation contexts keyed by compiled automaton,
	// stamped with this engine's process-unique generation (see
	// ctxpool.go for the leak-containment invariant).
	pool *ctxPool

	// auto is the observed-latency Auto selector (selector.go). Per
	// engine — and the service builds one engine per (document,
	// generation) — so estimates are implicitly generation-scoped.
	auto *selector
}

// New builds the engine, its index, and a private bounded query cache.
func New(d *tree.Document) *Engine {
	return NewWithCache(d, qcache.New(qcache.DefaultCapacity), "")
}

// NewWithCache builds an engine that stores compiled automata in the
// given (possibly shared) cache, namespacing its keys with keyPrefix.
func NewWithCache(d *tree.Document, c *qcache.Cache, keyPrefix string) *Engine {
	return NewWithIndex(d, index.New(d), c, keyPrefix)
}

// NewWithIndex is NewWithCache for a document whose index is already
// built (the document store builds the index once at load time).
func NewWithIndex(d *tree.Document, ix *index.Index, c *qcache.Cache, keyPrefix string) *Engine {
	return &Engine{doc: d, ix: ix, cache: c, keyPrefix: keyPrefix,
		pool: newCtxPool(), auto: newSelector(DefaultAutoConfig())}
}

// ConfigureAuto replaces the Auto selector configuration, resetting
// its learned state. Call before serving traffic (the selector swap is
// not synchronized against in-flight Auto evaluations).
func (e *Engine) ConfigureAuto(cfg AutoConfig) {
	e.auto = newSelector(cfg)
}

// SelectorStats snapshots the Auto selector: shapes tracked, wins per
// strategy, exploration rate, estimate error, and the per-shape
// candidate tables.
func (e *Engine) SelectorStats() SelectorStats { return e.auto.stats() }

// PoolStats reports the engine's evaluation-context pool counters: the
// steady-state signal for whether repeated queries are hitting warm
// contexts (near-zero allocation) or rebuilding their scratch.
func (e *Engine) PoolStats() PoolStats { return e.pool.stats() }

// Generation returns the engine's process-unique generation stamp,
// the value pooled contexts are guarded with.
func (e *Engine) Generation() uint64 { return e.pool.gen }

// CacheStats reports the compiled-query cache counters. For engines
// built by NewWithCache the numbers cover every engine sharing the LRU.
func (e *Engine) CacheStats() qcache.Stats { return e.cache.Stats() }

func (e *Engine) cacheKey(kind, query string) string {
	return e.keyPrefix + kind + "\x00" + query
}

// Doc returns the engine's document.
func (e *Engine) Doc() *tree.Document { return e.doc }

// Index returns the engine's jumping index.
func (e *Engine) Index() *index.Index { return e.ix }

// Answer is a query outcome.
type Answer struct {
	// Nodes is the selected node set in document order.
	Nodes []tree.NodeID
	// Strategy is the engine that actually ran (never Auto).
	Strategy Strategy
	// Visited counts the nodes the run touched.
	Visited int
	// MemoEntries counts memoized configurations (ASTA engines only).
	MemoEntries int
}

// Query evaluates with the Auto strategy.
func (e *Engine) Query(query string) (*Answer, error) {
	return e.QueryWith(query, Auto)
}

// QueryWith evaluates with an explicit strategy. Forcing Hybrid or
// TopDownDet on a query outside their fragments returns an error; Auto
// never fails on fragment grounds. (Auto falls back to the step-wise
// engine for features outside the automata fragment — backward axes,
// text functions — like the paper's black-box handling of XPath 1.0
// functions, §6.) It is the materializing counterpart of EvalCursor and
// shares its evaluation path.
func (e *Engine) QueryWith(query string, s Strategy) (*Answer, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	c, err := e.evalCursor(query, p, s, nil)
	if err != nil {
		return nil, err
	}
	return c.materialize(), nil
}

func astaOptions(s Strategy) asta.Options {
	switch s {
	case Naive:
		return asta.Options{}
	case Jumping:
		return asta.Options{Jump: true}
	case Memoized:
		return asta.Options{Memo: true}
	default:
		return asta.Opt()
	}
}

// chainCounts returns the min and max global label counts of a chain
// query, and ok=false when the query is outside the chain fragment.
func (e *Engine) chainCounts(p *xpath.Path) (min, max int, ok bool) {
	if !p.Absolute || len(p.Steps) == 0 {
		return 0, 0, false
	}
	min = int(^uint(0) >> 1)
	for _, st := range p.Steps {
		if (st.Axis != xpath.Child && st.Axis != xpath.Descendant) ||
			st.Test.Kind != xpath.TestName || len(st.Preds) > 0 {
			return 0, 0, false
		}
		n := 0
		if id, found := e.doc.Names().Lookup(st.Test.Name); found {
			n = e.ix.Count(id)
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max, true
}
