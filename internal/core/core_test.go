package core_test

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stepwise"
	"repro/internal/tgen"
	"repro/internal/tree"
	"repro/internal/xmark"
)

func sameNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQueryAgainstOracle(t *testing.T) {
	queries := []string{
		"//a", "//a//b", "/a/b", "//a[b]", "//a[.//b and not(c)]//c",
		"//a[b or c]", "//*[a]",
	}
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{Labels: []string{"a", "b", "c"}, MaxNodes: 200})
		e := core.New(d)
		for _, q := range queries {
			want, err := stepwise.EvalString(d, q, stepwise.Default())
			if err != nil {
				return false
			}
			got, err := e.Query(q)
			if err != nil {
				t.Logf("%q: %v", q, err)
				return false
			}
			if !sameNodes(got.Nodes, want.Selected) {
				t.Logf("seed=%d %q: got %v want %v", seed, q, got.Nodes, want.Selected)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	d := xmark.Generate(xmark.Config{Scale: 0.005, Seed: 1})
	e := core.New(d)
	strategies := []core.Strategy{core.Naive, core.Jumping, core.Memoized, core.Optimized, core.Stepwise}
	for _, q := range xmark.Queries() {
		var ref []tree.NodeID
		for i, s := range strategies {
			ans, err := e.QueryWith(q.XPath, s)
			if err != nil {
				t.Fatalf("%s (%v): %v", q.ID, s, err)
			}
			if i == 0 {
				ref = ans.Nodes
				continue
			}
			if !sameNodes(ans.Nodes, ref) {
				t.Errorf("%s: %v selected %d nodes, %v selected %d",
					q.ID, s, len(ans.Nodes), strategies[0], len(ref))
			}
		}
	}
}

func TestAutoPicksHybridForRareLabel(t *testing.T) {
	// Config A: 3 keywords among thousands of listitems.
	d := xmark.Fig5Configs()[0].Build(0.02)
	e := core.New(d)
	ans, err := e.Query(xmark.HybridQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Strategy != core.Hybrid {
		t.Errorf("Auto chose %v, want hybrid", ans.Strategy)
	}
	if len(ans.Nodes) != 4 {
		t.Errorf("selected %d, want 4", len(ans.Nodes))
	}
	// Balanced counts: Auto should use the optimized ASTA engine.
	d2 := xmark.Fig5Configs()[3].Build(0.02)
	e2 := core.New(d2)
	ans2, err := e2.Query(xmark.HybridQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Strategy != core.Optimized {
		t.Errorf("Auto chose %v on config D, want optimized", ans2.Strategy)
	}
}

func TestForcedFragmentErrors(t *testing.T) {
	d := tgen.Star("r", "c", 3)
	e := core.New(d)
	if _, err := e.QueryWith("//c[x]", core.Hybrid); err == nil {
		t.Error("Hybrid on predicate query should fail")
	}
	if _, err := e.QueryWith("//c[x]", core.TopDownDet); err == nil {
		t.Error("TopDownDet on predicate query should fail")
	}
	if _, err := e.QueryWith("//c[x]", core.Auto); err != nil {
		t.Errorf("Auto should always work: %v", err)
	}
	if _, err := e.Query("//c["); err == nil {
		t.Error("parse error not reported")
	}
}

func TestTopDownDetStrategy(t *testing.T) {
	d := xmark.Generate(xmark.Config{Scale: 0.005, Seed: 2})
	e := core.New(d)
	want, _ := e.QueryWith("/site//keyword", core.Stepwise)
	got, err := e.QueryWith("/site//keyword", core.TopDownDet)
	if err != nil {
		t.Fatal(err)
	}
	if !sameNodes(got.Nodes, want.Nodes) {
		t.Errorf("TopDownDet selected %d, stepwise %d", len(got.Nodes), len(want.Nodes))
	}
	if got.Visited >= d.NumNodes() {
		t.Errorf("TopDownDet visited everything (%d)", got.Visited)
	}
}

func TestQueryCaching(t *testing.T) {
	d := tgen.Star("r", "c", 10)
	e := core.New(d)
	a1, err := e.QueryWith("//c", core.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.QueryWith("//c", core.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if !sameNodes(a1.Nodes, a2.Nodes) {
		t.Error("cached compilation changed results")
	}
}

func TestStrategyString(t *testing.T) {
	for s := core.Auto; s <= core.Stepwise; s++ {
		if s.String() == "" {
			t.Errorf("empty name for %d", int(s))
		}
	}
	if core.Strategy(99).String() != "Strategy(99)" {
		t.Error("unknown strategy rendering")
	}
}

// TestAutoFallsBackForExtensions: queries with backward axes or text
// functions run step-wise under Auto (the paper's black-box handling of
// XPath 1.0 features, §6), while explicit automata strategies error.
func TestAutoFallsBackForExtensions(t *testing.T) {
	d := xmark.Generate(xmark.Config{Scale: 0.003, Seed: 2})
	e := core.New(d)
	for _, q := range []string{
		"//keyword/ancestor::listitem",
		"//keyword/..",
		`//item[contains(location, "United")]`,
	} {
		ans, err := e.QueryWith(q, core.Auto)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if ans.Strategy != core.Stepwise {
			t.Errorf("%q: strategy %v, want stepwise fallback", q, ans.Strategy)
		}
		if _, err := e.QueryWith(q, core.Optimized); err == nil {
			t.Errorf("%q: explicit automata strategy should error", q)
		}
		// Cross-check one against a forward equivalent where possible.
	}
	// //keyword/ancestor::listitem must equal //listitem[.//keyword].
	back, err := e.Query("//keyword/ancestor::listitem")
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := e.Query("//listitem[ .//keyword ]")
	if err != nil {
		t.Fatal(err)
	}
	if !sameNodes(back.Nodes, fwd.Nodes) {
		t.Errorf("backward-axis query disagrees with forward rewrite: %d vs %d nodes",
			len(back.Nodes), len(fwd.Nodes))
	}
}

// TestConcurrentQueries: the engine is safe under concurrent use.
func TestConcurrentQueries(t *testing.T) {
	d := xmark.Generate(xmark.Config{Scale: 0.003, Seed: 9})
	e := core.New(d)
	queries := []string{"//listitem//keyword", "/site/regions", "//person[address]"}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := e.Query(queries[(g+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
