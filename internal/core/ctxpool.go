package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/asta"
)

// The evaluation-context pool: each engine keeps warm asta.Contexts
// keyed by the compiled automaton they are bound to, so the steady
// state of the serving layers — the same (document, query) evaluated
// thousands of times — checks out a context whose memo world is
// already derived and whose arenas are already sized, evaluates
// allocation-free, and returns it.
//
// Pools are keyed by (automaton pointer, evaluation options), which is
// exactly keying by (document generation, automaton, options): an
// engine is created per resident document handle (the service rebuilds
// it on every reload, i.e. per document generation), a recompiled
// automaton after an LRU eviction has a new pointer, and the options
// distinguish strategy ablations so mixed-strategy traffic on one
// query pools separately instead of thrashing rebinds that would be
// miscounted as warm hits. On top of that structural guarantee sits an
// explicit
// generation guard: every engine carries a process-unique generation
// stamp, every pooled context records the stamp of the engine that
// created it, and a checkout whose stamps disagree resets the context
// to pristine instead of trusting its memo state. The guard is what
// makes "a pooled context never leaks state across a reloaded or
// evicted document" an invariant of the type rather than a property of
// today's call graph.

// engineGen hands out process-unique engine generation stamps.
var engineGen atomic.Uint64

const (
	// maxPoolKeys bounds the distinct (automaton, options) keys one
	// engine pools contexts for; admitting a key beyond it evicts an
	// arbitrary existing key. Keeps a pathological query mix from
	// pinning unbounded scratch.
	maxPoolKeys = 64
)

// maxPooledCtxBytes drops contexts whose arenas grew past this on
// release: a context that served one huge answer should not pin its
// peak forever. maxPoolResidentBytes additionally caps the pool's
// summed resident scratch per engine, so many moderately sized keys
// can't accumulate unbounded memory below the key cap — everything
// else resident in the system is byte-budgeted, and so is this.
// Variables only so tests can exercise the drop paths.
var (
	maxPooledCtxBytes    = int64(32 << 20)
	maxPoolResidentBytes = int64(128 << 20)
)

// maxPerKey bounds the contexts pooled per automaton: enough for every
// P to run the same hot query concurrently, small enough to bound
// resident scratch.
func maxPerKey() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// pooledCtx is one pool entry: the reusable context, the generation
// stamp of the engine that owns it, and the MemBytes recorded when it
// was pooled (so the resident-bytes gauge subtracts what it added).
type pooledCtx struct {
	ctx   *asta.Context
	gen   uint64
	bytes int64
}

// poolKey identifies one warm binding: a context is only a hit for the
// exact (automaton, options) pair it was bound with — pooling
// mixed-strategy traffic under one key would count full rebinds as
// warm hits and thrash the memo world.
type poolKey struct {
	aut *asta.ASTA
	opt asta.Options
}

// PoolStats is a point-in-time picture of an engine's context pool.
type PoolStats struct {
	// Hits counts checkouts served by a pooled warm context; Misses
	// counts cold checkouts — fresh constructions plus guard-tripped
	// reuses, both of which rebuild the memo world.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// GuardTrips counts checkouts that found a generation-stamp
	// mismatch and reset the context instead of reusing its state.
	// Nonzero means the structural keying was violated somewhere —
	// the guard contained it.
	GuardTrips uint64 `json:"guard_trips"`
	// Drops counts releases that discarded the context (pool full,
	// too many keys, or oversized arenas).
	Drops uint64 `json:"drops"`
	// Resident counts contexts currently parked in the pool;
	// ArenaBytes is their summed MemBytes — the scratch memory kept
	// warm for reuse.
	Resident   int   `json:"resident"`
	ArenaBytes int64 `json:"arena_bytes"`
}

// HitRate returns Hits/(Hits+Misses), 0 when idle.
func (p PoolStats) HitRate() float64 {
	if p.Hits+p.Misses == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Hits+p.Misses)
}

// addTo accumulates p into dst (for per-shard aggregation).
func (p PoolStats) AddTo(dst *PoolStats) {
	dst.Hits += p.Hits
	dst.Misses += p.Misses
	dst.GuardTrips += p.GuardTrips
	dst.Drops += p.Drops
	dst.Resident += p.Resident
	dst.ArenaBytes += p.ArenaBytes
}

// ctxPool is the per-engine pool. All methods are safe for concurrent
// use; the critical sections are a map lookup and a slice push/pop,
// dwarfed by any evaluation.
type ctxPool struct {
	gen uint64

	mu    sync.Mutex
	pools map[poolKey][]pooledCtx

	hits       atomic.Uint64
	misses     atomic.Uint64
	guardTrips atomic.Uint64
	drops      atomic.Uint64
	resident   atomic.Int64
	arenaBytes atomic.Int64
}

func newCtxPool() *ctxPool {
	return &ctxPool{gen: engineGen.Add(1)}
}

// checkout returns a context bound (or bindable) to the key's
// (automaton, options): a warm pooled one when available, a fresh one
// otherwise, plus whether the checkout was warm (the observability
// layer lifts this into per-query records). The caller must hand the
// result back via release exactly once.
func (p *ctxPool) checkout(k poolKey) (pooledCtx, bool) {
	p.mu.Lock()
	if list := p.pools[k]; len(list) > 0 {
		pc := list[len(list)-1]
		p.pools[k] = list[:len(list)-1]
		p.mu.Unlock()
		p.resident.Add(-1)
		p.arenaBytes.Add(-pc.bytes)
		warm := pc.gen == p.gen
		if !warm {
			// Stamp mismatch: this context was created under a
			// different engine (and so possibly a different document
			// generation). Its memo state is untrusted — reset to
			// pristine and adopt it. That makes the checkout cold (the
			// next evaluation rebuilds the memo world), so it counts
			// as a miss, not a hit.
			pc.ctx.Reset()
			pc.gen = p.gen
			p.guardTrips.Add(1)
			p.misses.Add(1)
		} else {
			p.hits.Add(1)
		}
		pc.bytes = 0
		return pc, warm
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return pooledCtx{ctx: asta.NewContext(), gen: p.gen}, false
}

// release parks a checked-out context for reuse, unless the pool for
// its key is full or the context's arenas outgrew the retention cap.
// When the key budget is exhausted an arbitrary existing key is
// evicted to make room: the stale keys are typically automata the
// qcache already dropped (their pointers will never be requested
// again), and letting them squat would both pin their contexts forever
// and permanently disable pooling for every new automaton.
func (p *ctxPool) release(k poolKey, pc pooledCtx) {
	bytes := pc.ctx.MemBytes()
	if bytes > maxPooledCtxBytes ||
		p.arenaBytes.Load()+bytes > maxPoolResidentBytes {
		p.drops.Add(1)
		return
	}
	pc.bytes = bytes
	var evicted []pooledCtx
	p.mu.Lock()
	if p.pools == nil {
		p.pools = make(map[poolKey][]pooledCtx)
	}
	list, ok := p.pools[k]
	if len(list) >= maxPerKey() {
		p.mu.Unlock()
		p.drops.Add(1)
		return
	}
	if !ok && len(p.pools) >= maxPoolKeys {
		for victim, vlist := range p.pools {
			delete(p.pools, victim)
			evicted = vlist
			break
		}
	}
	p.pools[k] = append(list, pc)
	p.mu.Unlock()
	p.resident.Add(1)
	p.arenaBytes.Add(bytes)
	for _, old := range evicted {
		p.resident.Add(-1)
		p.arenaBytes.Add(-old.bytes)
		p.drops.Add(1)
	}
}

// stats snapshots the pool counters.
func (p *ctxPool) stats() PoolStats {
	return PoolStats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		GuardTrips: p.guardTrips.Load(),
		Drops:      p.drops.Load(),
		Resident:   int(p.resident.Load()),
		ArenaBytes: p.arenaBytes.Load(),
	}
}
