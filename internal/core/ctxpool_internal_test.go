package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tree"
	"repro/internal/xmark"
)

func poolTestEngine(t *testing.T) (*Engine, *tree.Document) {
	t.Helper()
	d := xmark.Generate(xmark.Config{Scale: 0.002, Seed: 1})
	return New(d), d
}

// TestPoolCheckoutReusesContext: the second evaluation of the same
// query on the same engine must be served by the pooled context (hit),
// and releases must keep the resident gauge consistent.
func TestPoolCheckoutReusesContext(t *testing.T) {
	e, _ := poolTestEngine(t)
	const q = "//listitem//keyword"
	for i := 0; i < 3; i++ {
		if _, err := e.QueryWith(q, Optimized); err != nil {
			t.Fatal(err)
		}
	}
	ps := e.PoolStats()
	if ps.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one cold construction)", ps.Misses)
	}
	if ps.Hits != 2 {
		t.Errorf("hits = %d, want 2", ps.Hits)
	}
	if ps.Resident != 1 {
		t.Errorf("resident = %d, want 1", ps.Resident)
	}
	if ps.ArenaBytes <= 0 {
		t.Errorf("arena bytes = %d, want > 0 for a resident context", ps.ArenaBytes)
	}
	if ps.GuardTrips != 0 {
		t.Errorf("guard trips = %d, want 0 on a single engine", ps.GuardTrips)
	}
}

// TestPoolCursorHeldContextReturnsOnExhaustionAndClose: a rope cursor
// holds its context until fully read (auto-release) or Closed early;
// both must return exactly one context to the pool.
func TestPoolCursorHeldContextReturnsOnExhaustionAndClose(t *testing.T) {
	e, _ := poolTestEngine(t)
	const q = "//listitem//keyword"

	cur, err := e.EvalCursor(q, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.PoolStats().Resident; got != 0 {
		t.Fatalf("context returned before the cursor finished (resident=%d)", got)
	}
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
	}
	if got := e.PoolStats().Resident; got != 1 {
		t.Errorf("exhaustion did not return the context (resident=%d)", got)
	}

	cur, err = e.EvalCursor(q, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	total := cur.Count()
	if _, ok := cur.Next(); !ok {
		t.Fatal("expected a non-empty answer")
	}
	cur.Close() // abandon mid-answer, like a paged request
	if got := e.PoolStats().Resident; got != 1 {
		t.Errorf("Close did not return the context (resident=%d)", got)
	}
	if cur.Count() != total {
		t.Errorf("Count changed across Close: %d vs %d", cur.Count(), total)
	}
	cur.Close() // idempotent
	if got := e.PoolStats().Resident; got != 1 {
		t.Errorf("double Close corrupted the gauge (resident=%d)", got)
	}
}

// TestPoolCloseStopsRopeCursor: on a cursor still holding its rope
// (sorted answer, context checked out), Close must both return the
// context and leave the cursor exhausted — the rope lives in the
// recycled arena and must never be read again. Only rope-backed
// cursors have this property; cursors that flattened (unsorted ropes)
// own their slice and stay readable.
func TestPoolCloseStopsRopeCursor(t *testing.T) {
	e, _ := poolTestEngine(t)
	// A child-axis chain evaluates without out-of-order region jumps,
	// so its rope is in document order and streams directly.
	const q = "/site/regions/*/item"
	cur, err := e.EvalCursor(q, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Count() == 0 {
		t.Fatal("expected a non-empty answer")
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("first read failed")
	}
	if got := e.PoolStats().Resident; got != 0 {
		t.Skipf("answer did not stream from the rope (resident=%d); query fell back to a slice", got)
	}
	cur.Close()
	if got := e.PoolStats().Resident; got != 1 {
		t.Errorf("Close did not return the context (resident=%d)", got)
	}
	if _, ok := cur.Next(); ok {
		t.Error("closed rope cursor still yields nodes (would read a recycled arena)")
	}
}

// TestPoolKeysByOptions: mixed-strategy traffic on one query pools
// separately per options — each strategy reaches steady-state hits on
// its own warm context instead of thrashing full rebinds that would be
// miscounted as hits.
func TestPoolKeysByOptions(t *testing.T) {
	e, _ := poolTestEngine(t)
	const q = "//listitem//keyword"
	for i := 0; i < 6; i++ {
		s := Optimized
		if i%2 == 1 {
			s = Memoized
		}
		if _, err := e.QueryWith(q, s); err != nil {
			t.Fatal(err)
		}
	}
	ps := e.PoolStats()
	if ps.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one cold context per strategy)", ps.Misses)
	}
	if ps.Hits != 4 {
		t.Errorf("hits = %d, want 4", ps.Hits)
	}
}

// TestPoolEvictsStaleKeysUnderPressure: once more than maxPoolKeys
// distinct bindings have pooled, admitting a new key evicts an old one
// — new automata keep pooling (warm on re-query) instead of being
// permanently cold, and the resident gauge stays bounded.
func TestPoolEvictsStaleKeysUnderPressure(t *testing.T) {
	e, _ := poolTestEngine(t)
	queries := make([]string, 0, maxPoolKeys+4)
	for i := 0; i < maxPoolKeys+4; i++ {
		queries = append(queries, fmt.Sprintf("//listitem//label%03d", i))
	}
	for _, q := range queries {
		if _, err := e.QueryWith(q, Optimized); err != nil {
			t.Fatal(err)
		}
	}
	last := queries[len(queries)-1]
	hits0 := e.PoolStats().Hits
	if _, err := e.QueryWith(last, Optimized); err != nil {
		t.Fatal(err)
	}
	ps := e.PoolStats()
	if ps.Hits != hits0+1 {
		t.Errorf("newest key did not stay pooled under key pressure (hits %d -> %d)", hits0, ps.Hits)
	}
	if ps.Resident > maxPoolKeys {
		t.Errorf("resident %d exceeds key budget %d", ps.Resident, maxPoolKeys)
	}
	if ps.Drops == 0 {
		t.Error("no key eviction recorded despite exceeding the key budget")
	}
}

// TestPoolResidentByteBudget: the pool's summed resident scratch is
// byte-capped; a release that would exceed the budget drops the
// context instead of parking it.
func TestPoolResidentByteBudget(t *testing.T) {
	e, _ := poolTestEngine(t)
	const q = "//listitem//keyword"
	if _, err := e.QueryWith(q, Optimized); err != nil {
		t.Fatal(err)
	}
	k, pc := stealPooled(t, e)
	old := maxPoolResidentBytes
	maxPoolResidentBytes = 1
	defer func() { maxPoolResidentBytes = old }()
	drops0 := e.PoolStats().Drops
	e.pool.release(k, pc)
	ps := e.PoolStats()
	if ps.Drops != drops0+1 || ps.Resident != 0 {
		t.Errorf("budget-exceeding release not dropped: %+v", ps)
	}
}

// TestPoolGenerationGuard: a context stamped by another engine must
// not be trusted — checkout has to reset it (guard trip) and the
// evaluation must still be correct. This simulates the one failure
// mode the stamp exists for: pool plumbing leaking contexts across
// engines (i.e. across document generations).
func TestPoolGenerationGuard(t *testing.T) {
	e1, _ := poolTestEngine(t)
	d2 := xmark.Generate(xmark.Config{Scale: 0.003, Seed: 9})
	e2 := New(d2)
	const q = "//listitem//keyword"

	// Warm a context in e1's pool, then transplant it into e2's pool
	// under e2's automaton key but with e1's (foreign) stamp.
	if _, err := e1.QueryWith(q, Optimized); err != nil {
		t.Fatal(err)
	}
	want, err := e2.QueryWith(q, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	_, pc1 := stealPooled(t, e1)
	key2, _ := stealPooled(t, e2)
	// Put e1's context (with e1's stamp) where e2's should be.
	e2.pool.mu.Lock()
	e2.pool.pools[key2] = append(e2.pool.pools[key2], pooledCtx{ctx: pc1.ctx, gen: pc1.gen})
	e2.pool.mu.Unlock()
	e2.pool.resident.Add(1)

	got, err := e2.QueryWith(q, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("guarded evaluation diverged: %d vs %d nodes", len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("guarded evaluation diverged at %d", i)
		}
	}
	if trips := e2.PoolStats().GuardTrips; trips != 1 {
		t.Errorf("guard trips = %d, want 1", trips)
	}
}

// stealPooled pops the single pooled context of an engine.
func stealPooled(t *testing.T, e *Engine) (poolKey, pooledCtx) {
	t.Helper()
	e.pool.mu.Lock()
	defer e.pool.mu.Unlock()
	for k, list := range e.pool.pools {
		if len(list) == 0 {
			continue
		}
		pc := list[len(list)-1]
		e.pool.pools[k] = list[:len(list)-1]
		e.pool.resident.Add(-1)
		e.pool.arenaBytes.Add(-pc.bytes)
		return k, pc
	}
	t.Fatal("no pooled context to steal")
	return poolKey{}, pooledCtx{}
}

// TestPoolConcurrentCheckouts: concurrent evaluations of the same
// query must each get a private context (no sharing) and produce
// identical answers; afterwards the pool holds at most maxPerKey.
func TestPoolConcurrentCheckouts(t *testing.T) {
	e, _ := poolTestEngine(t)
	const q = "//listitem[ .//keyword and .//emph]//parlist"
	want, err := e.QueryWith(q, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := e.QueryWith(q, Optimized)
				if err != nil {
					errs <- err.Error()
					return
				}
				if len(got.Nodes) != len(want.Nodes) {
					errs <- "answer length diverged under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if got := e.PoolStats().Resident; got > maxPerKey() {
		t.Errorf("resident %d exceeds per-key cap %d", got, maxPerKey())
	}
}

// TestPoolOversizedContextDropped: a context whose arenas outgrew the
// retention cap is dropped on release, not parked.
func TestPoolOversizedContextDropped(t *testing.T) {
	e, _ := poolTestEngine(t)
	const q = "//listitem//keyword"
	if _, err := e.QueryWith(q, Optimized); err != nil {
		t.Fatal(err)
	}
	k, pc := stealPooled(t, e)
	old := maxPooledCtxBytes
	maxPooledCtxBytes = 1 // every real context exceeds this
	defer func() { maxPooledCtxBytes = old }()
	drops0 := e.PoolStats().Drops
	e.pool.release(k, pc)
	ps := e.PoolStats()
	if ps.Drops != drops0+1 {
		t.Errorf("drops = %d, want %d", ps.Drops, drops0+1)
	}
	if ps.Resident != 0 {
		t.Errorf("oversized context was parked (resident=%d)", ps.Resident)
	}
}
