package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/hybrid"
	"repro/internal/obsv"
	"repro/internal/sta"
	"repro/internal/stepwise"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// Cursor is a resumable, preorder-sorted, duplicate-free view of one
// evaluation's answer. It is the engine's streaming surface: ASTA
// answers whose result rope is already in document order (the common
// case) are streamed leaf by leaf without ever materializing the node
// slice; everything else falls back to the materialized slice. A Cursor
// is single-use and not safe for concurrent use; resumption across
// requests re-evaluates (hitting the compiled-automaton cache) and
// seeks with SeekPast.
//
// A rope-backed Cursor holds the pooled evaluation context whose arena
// the rope lives in. The context returns to the engine's pool when the
// cursor is exhausted, materialized, or Closed — callers that may
// abandon a cursor mid-answer (paging) should Close it so the warm
// context is recycled instead of garbage-collected.
type Cursor struct {
	strategy    Strategy
	visited     int
	memoEntries int
	// Observability counters lifted from the run (ASTA engines; zero
	// for the baselines) and from the serving caches: how the answer
	// was produced, for explain profiles and the flight recorder.
	memoHits  int
	jumps     int
	poolHit   bool
	qcacheHit bool

	// Auto-selector feedback (Auto evaluations only): the decision is
	// credited with the cursor's full lifetime cost at the first of
	// Close/materialize/exhaustion — paged and streamed evaluations
	// report end-to-end cost, not just the eval call. sel doubles as
	// the once-guard (nilled after observing). autoShape/autoReason
	// attribute the decision for explain profiles and flight records.
	sel        *selector
	shapeRef   *shapeStats
	obsSlot    int8
	obsStart   time.Time
	autoShape  string
	autoReason string

	// release returns the evaluation context backing rope to its pool;
	// nil for slice-backed cursors and after the first release.
	release func()

	// Rope-backed stream (sorted ASTA answers): it walks rope; last is
	// the most recently emitted (or seeked-past) node for dedup/resume.
	rope    *asta.NodeList
	it      *asta.Iter
	last    tree.NodeID
	started bool
	// ready is set once ensure decided between rope streaming and the
	// slice fallback; the decision is deferred to the first read so
	// materialize() never pays the IsSorted probe.
	ready bool

	// Slice-backed fallback (other strategies, unsorted ropes).
	nodes []tree.NodeID
	pos   int

	// total caches Count; -1 = not yet computed (rope-backed).
	total int
}

func newSliceCursor(nodes []tree.NodeID, s Strategy, visited, memo int) *Cursor {
	nodes = ensureSortedDedup(nodes)
	return &Cursor{strategy: s, visited: visited, memoEntries: memo,
		ready: true, nodes: nodes, total: len(nodes)}
}

// ensureSortedDedup enforces the invariant every slice-backed cursor
// depends on — strictly increasing preorder — rather than trusting the
// producing engine: SeekPast binary-searches and resumed pages silently
// skip or repeat nodes if a slice ever arrives unsorted or with
// duplicates. The engines do emit sorted duplicate-free answers, so the
// common case is one O(n) verification scan; only a violation pays the
// sort/compact.
func ensureSortedDedup(nodes []tree.NodeID) []tree.NodeID {
	sorted, unique := true, true
	for i := 1; i < len(nodes); i++ {
		if nodes[i] < nodes[i-1] {
			sorted = false
			break
		}
		if nodes[i] == nodes[i-1] {
			unique = false
		}
	}
	if sorted && unique {
		return nodes
	}
	if !sorted {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	}
	w := 0
	for i, v := range nodes {
		if i == 0 || v != nodes[w-1] {
			nodes[w] = v
			w++
		}
	}
	return nodes[:w]
}

func newRopeCursor(r *asta.NodeList, s Strategy, visited, memo int) *Cursor {
	return &Cursor{strategy: s, visited: visited, memoEntries: memo,
		rope: r, total: -1}
}

// ensure decides the streaming representation on first read: a rope in
// document order streams in place (adjacent-duplicate skipping doubles
// as dedup), anything else flattens once. IsSorted is an O(1) metadata
// read on the chunked rope, so the decision costs nothing either way.
func (c *Cursor) ensure() {
	if c.ready {
		return
	}
	c.ready = true
	if c.rope.IsSorted() {
		// Rope streaming: the iterator itself is created lazily by the
		// first read (or directly positioned by SeekPast), so a resumed
		// cursor never builds a from-the-start iterator it will discard.
		return
	}
	c.nodes = c.rope.Flatten()
	c.total = len(c.nodes)
	c.rope = nil
	// The flattened slice owns the answer now; the rope's arena — and
	// with it the evaluation context — is free to be reused.
	c.doRelease()
}

// Close returns the cursor's evaluation context to the engine's pool
// without consuming the rest of the answer, and — for Auto
// evaluations — reports the observed cost back to the selector. It is
// idempotent, runs implicitly on exhaustion and materialization, and
// leaves the cursor in the exhausted state (Count stays valid; Next
// reports done).
func (c *Cursor) Close() {
	c.finishObs()
	if c.release == nil {
		return
	}
	// Settle the representation first: an unsorted rope flattens (and
	// releases) inside ensure, leaving the slice-backed form.
	c.ensure()
	if c.release == nil {
		return
	}
	if c.total < 0 {
		// Pin the cardinality before the rope's arena is recycled: an
		// O(1) metadata read, exact because only sorted ropes survive
		// ensure.
		c.total = c.rope.Distinct()
	}
	c.rope, c.it = nil, nil
	c.doRelease()
}

// doRelease hands the evaluation context back exactly once. After it
// runs the rope must never be dereferenced again: its arena may be
// serving another evaluation.
func (c *Cursor) doRelease() {
	if r := c.release; r != nil {
		c.release = nil
		r()
	}
}

// finishObs reports the completed evaluation to the Auto selector
// exactly once: elapsed wall time since the decision plus the visited
// count, credited to the candidate the decision picked. No-op for
// forced strategies (sel is nil) and after the first report.
func (c *Cursor) finishObs() {
	if c.sel == nil {
		return
	}
	sel := c.sel
	c.sel = nil
	sel.observe(c.shapeRef, int(c.obsSlot), time.Since(c.obsStart), c.visited)
}

// Strategy is the strategy that actually ran (never Auto).
func (c *Cursor) Strategy() Strategy { return c.strategy }

// Visited counts the nodes the run touched.
func (c *Cursor) Visited() int { return c.visited }

// MemoEntries counts memoized configurations (ASTA engines only).
func (c *Cursor) MemoEntries() int { return c.memoEntries }

// MemoHits counts constant-time memo-table lookups served during the
// run (ASTA engines only).
func (c *Cursor) MemoHits() int { return c.memoHits }

// Jumps counts index jump operations performed (ASTA engines only).
func (c *Cursor) Jumps() int { return c.jumps }

// CtxPoolHit reports whether the evaluation ran in a warm pooled
// context (allocation-free steady state) rather than a fresh one.
func (c *Cursor) CtxPoolHit() bool { return c.poolHit }

// QCacheHit reports whether the compiled automaton came from the
// compiled-query cache rather than being compiled for this run. It is
// false for strategies that compile nothing (stepwise, hybrid).
func (c *Cursor) QCacheHit() bool { return c.qcacheHit }

// AutoShape is the canonical query shape the Auto selector keyed this
// evaluation by; empty for forced strategies.
func (c *Cursor) AutoShape() string { return c.autoShape }

// AutoReason is why the Auto selector picked this cursor's strategy
// (one of the Reason* constants); empty for forced strategies.
func (c *Cursor) AutoReason() string { return c.autoReason }

// Count returns the full answer cardinality, independent of the read
// position. Rope-backed cursors read it from the rope's cached
// metadata in O(1) (on a sorted rope the adjacent-distinct count is
// the duplicate-free cardinality); slice-backed cursors know their
// length.
func (c *Cursor) Count() int {
	if c.total >= 0 {
		return c.total
	}
	c.ensure()
	if c.total >= 0 {
		return c.total
	}
	c.total = c.rope.Distinct()
	return c.total
}

// SeekPast positions the cursor just after node v in preorder, so the
// next read returns the first answer node > v. It must be called before
// the first Next/NextBatch; it is how a continuation token resumes a
// paged answer. On a rope-backed cursor the seek is a logarithmic
// metadata descent that never visits the skipped leaves, so resuming
// page p of an n-node answer costs O(log n), not O(p·pagesize); the
// slice fallback binary-searches.
func (c *Cursor) SeekPast(v tree.NodeID) {
	c.ensure()
	if c.rope != nil {
		c.it = c.rope.IterAfter(v)
		c.last, c.started = v, true
		return
	}
	c.pos = sort.Search(len(c.nodes), func(i int) bool { return c.nodes[i] > v })
}

// Next returns the next answer node in preorder, with ok=false once the
// answer is exhausted.
func (c *Cursor) Next() (tree.NodeID, bool) {
	c.ensure()
	if c.rope != nil {
		if c.it == nil {
			c.it = c.rope.Iter()
		}
		for {
			v, ok := c.it.Next()
			if !ok {
				// Exhausted: the rope will never be read again, so the
				// evaluation context can go back to work for the next
				// query.
				c.Close()
				return tree.Nil, false
			}
			// Sorted rope: skipping v <= last both deduplicates and
			// implements SeekPast.
			if c.started && v <= c.last {
				continue
			}
			c.last, c.started = v, true
			return v, true
		}
	}
	if c.pos >= len(c.nodes) {
		return tree.Nil, false
	}
	v := c.nodes[c.pos]
	c.pos++
	return v, true
}

// NextBatch fills dst with the next nodes in preorder and returns how
// many were written; 0 means the answer is exhausted.
func (c *Cursor) NextBatch(dst []tree.NodeID) int {
	n := 0
	for n < len(dst) {
		v, ok := c.Next()
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n
}

// materialize converts a freshly created (unread) cursor into the
// classic Answer; rope-backed cursors pay the one Flatten the
// materializing path always paid (and, because ensure has not run,
// nothing else). The flattened slice is heap-owned, so the evaluation
// context is released immediately.
func (c *Cursor) materialize() *Answer {
	nodes := c.nodes
	if nodes == nil && c.rope != nil {
		nodes = c.rope.Flatten()
		c.rope, c.it = nil, nil
		c.ready = true
		c.doRelease()
	}
	c.finishObs()
	return &Answer{
		Nodes:       nodes,
		Strategy:    c.strategy,
		Visited:     c.visited,
		MemoEntries: c.memoEntries,
	}
}

// EvalCursor evaluates a query and returns a cursor over the
// preorder-sorted answer, without materializing it when the strategy's
// result representation allows (ASTA ropes in document order). The
// strategy semantics match QueryWith.
func (e *Engine) EvalCursor(query string, s Strategy) (*Cursor, error) {
	return e.EvalCursorTrace(query, s, nil)
}

// EvalCursorTrace is EvalCursor recording phase spans (parse, strategy
// selection, qcache lookup/compile, automaton run) into tr, which may
// be nil (every trace operation is a nil-safe no-op — this is the same
// code path EvalCursor runs). Engine-effort counters land on the
// returned Cursor either way.
func (e *Engine) EvalCursorTrace(query string, s Strategy, tr *obsv.Trace) (*Cursor, error) {
	sp := tr.Begin(obsv.SpanParse)
	p, err := xpath.Parse(query)
	tr.End(sp)
	if err != nil {
		return nil, err
	}
	return e.evalCursor(query, p, s, tr)
}

// Run-span annotations: which engine a `run` span timed and how it
// ended. Precomputed constants indexed by strategy so annotating on
// the hot path allocates nothing; the explain satellite's contract is
// that a profile with several run spans (a failed speculative attempt
// next to the engine that answered) is unambiguous.
var (
	runSpanOK = [...]string{
		Naive:      "strategy=naive outcome=ok",
		Jumping:    "strategy=jumping outcome=ok",
		Memoized:   "strategy=memoized outcome=ok",
		Optimized:  "strategy=optimized outcome=ok",
		Hybrid:     "strategy=hybrid outcome=ok",
		TopDownDet: "strategy=topdown-det outcome=ok",
		Stepwise:   "strategy=stepwise outcome=ok",
	}
	runSpanFailed = [...]string{
		Hybrid:     "strategy=hybrid outcome=failed",
		TopDownDet: "strategy=topdown-det outcome=failed",
	}
)

func (e *Engine) evalCursor(query string, p *xpath.Path, s Strategy, tr *obsv.Trace) (*Cursor, error) {
	switch s {
	case Stepwise:
		return e.stepwiseCursor(p, tr), nil
	case Hybrid:
		sp := tr.Begin(obsv.SpanRun)
		res, err := hybridEval(e.doc, e.ix, p)
		if err != nil {
			tr.Annotate(sp, runSpanFailed[Hybrid])
			tr.End(sp)
			return nil, err
		}
		tr.Annotate(sp, runSpanOK[Hybrid])
		tr.End(sp)
		return newSliceCursor(res.Selected, Hybrid, res.Stats.Visited, 0), nil
	case TopDownDet:
		return e.tdstaCursor(query, p, tr)
	case Naive, Jumping, Memoized, Optimized:
		return e.astaCursor(query, p, s, tr)
	case Auto:
		return e.autoCursor(query, p, tr)
	}
	return nil, fmt.Errorf("core: unknown strategy %v", s)
}

// stepwiseCursor runs the step-wise baseline (it cannot fail: the
// full XPath subset of the parser is supported).
func (e *Engine) stepwiseCursor(p *xpath.Path, tr *obsv.Trace) *Cursor {
	sp := tr.Begin(obsv.SpanRun)
	res := stepwise.Eval(e.doc, p, stepwise.Default())
	tr.Annotate(sp, runSpanOK[Stepwise])
	tr.End(sp)
	return newSliceCursor(res.Selected, Stepwise, res.Stats.Visited, 0)
}

// tdstaCursor compiles (through the query cache) and runs the
// minimized deterministic TDSTA with topdown_jump.
func (e *Engine) tdstaCursor(query string, p *xpath.Path, tr *obsv.Trace) (*Cursor, error) {
	sp := tr.Begin(obsv.SpanCompile)
	v, hit, err := e.cache.GetOrCompile(e.cacheKey("tdsta", query), func() (any, error) {
		aut, err := compile.ToTDSTA(p, e.doc.Names())
		if err != nil {
			return nil, err
		}
		return aut.MinimizeTopDown(), nil
	})
	tr.End(sp)
	if err != nil {
		return nil, err
	}
	sp = tr.Begin(obsv.SpanRun)
	res := v.(*sta.STA).EvalTopDownJump(e.doc, e.ix)
	tr.Annotate(sp, runSpanOK[TopDownDet])
	tr.End(sp)
	c := newSliceCursor(res.Selected, TopDownDet, res.Visited, 0)
	c.qcacheHit = hit
	return c, nil
}

// astaCursor runs the ASTA evaluator lazily and wraps the result rope:
// sorted ropes stream directly, unsorted ones (rare — out-of-order
// unions from jumped regions) flatten once. Evaluation runs in a
// pooled context: warm checkouts reuse the memo world and arenas of
// previous runs of the same automaton, and the context rides with the
// cursor (its arena holds the rope) until exhaustion or Close.
func (e *Engine) astaCursor(query string, p *xpath.Path, s Strategy, tr *obsv.Trace) (*Cursor, error) {
	sp := tr.Begin(obsv.SpanCompile)
	v, hit, err := e.cache.GetOrCompile(e.cacheKey("asta", query), func() (any, error) {
		return compile.ToASTA(p, e.doc.Names())
	})
	tr.End(sp)
	if err != nil {
		return nil, err
	}
	aut := v.(*asta.ASTA)
	key := poolKey{aut: aut, opt: astaOptions(s)}
	pc, warm := e.pool.checkout(key)
	sp = tr.Begin(obsv.SpanRun)
	res := aut.EvalLazyCtx(pc.ctx, e.doc, e.ix, key.opt)
	tr.Annotate(sp, runSpanOK[s])
	tr.End(sp)
	var c *Cursor
	if res.List == nil {
		e.pool.release(key, pc)
		c = newSliceCursor(nil, s, res.Stats.Visited, res.Stats.MemoEntries)
	} else {
		c = newRopeCursor(res.List, s, res.Stats.Visited, res.Stats.MemoEntries)
		c.release = func() { e.pool.release(key, pc) }
	}
	c.memoHits = res.Stats.MemoHits
	c.jumps = res.Stats.Jumps
	c.poolHit = warm
	c.qcacheHit = hit
	return c, nil
}

// autoCursor implements the Auto strategy (QueryWith's Auto is this
// same code path): the observed-latency selector (selector.go) routes
// each canonical query shape to Hybrid, TopDownDet or Optimized —
// cold shapes fall back to the paper's §5 count heuristic — and the
// step-wise engine runs only for queries the automata fragment cannot
// express (compile.ErrUnsupported — backward axes, text functions,
// §6's black-box handling). A chain whose rarest label is absent from
// the document short-circuits to an empty answer without running any
// engine. Genuine evaluation failures surface instead of silently
// degrading to a different engine; only fragment mismatches on a
// speculative Hybrid/TDSTA attempt degrade to Optimized, with the
// failed attempt's run span annotated as such. The cursor reports the
// decision's observed cost back to the selector when it closes.
func (e *Engine) autoCursor(query string, p *xpath.Path, tr *obsv.Trace) (*Cursor, error) {
	sel := e.auto
	sp := tr.Begin(obsv.SpanSelect)
	st := sel.shapeFor(query, p, e)
	d := sel.decide(st)
	if tr.Detail() {
		tr.Annotate(sp, sel.explain(st, d))
	}
	tr.End(sp)

	if d.strategy == EmptyChain {
		// Proven empty from the index alone: no engine, no visited
		// nodes, no feedback (a zero-cost non-run must not pollute any
		// candidate's estimate).
		c := newSliceCursor(nil, EmptyChain, 0, 0)
		c.autoShape, c.autoReason = st.shape, d.reason
		return c, nil
	}

	start := time.Now()
	var c *Cursor
	switch d.strategy {
	case Hybrid:
		sp = tr.Begin(obsv.SpanRun)
		res, err := hybridEval(e.doc, e.ix, p)
		if err != nil {
			tr.Annotate(sp, runSpanFailed[Hybrid])
			tr.End(sp)
			if !errors.Is(err, hybrid.ErrUnsupported) {
				// A genuine evaluation failure — not a fragment
				// mismatch — surfaces. (This was the silent-swallow
				// bug: every hybrid error used to degrade to
				// Optimized.)
				return nil, err
			}
			// Fragment mismatch on the speculative attempt: evaluate
			// like a non-chain query.
			var aerr error
			if c, aerr = e.astaOrStepwise(query, p, tr); aerr != nil {
				return nil, aerr
			}
		} else {
			tr.Annotate(sp, runSpanOK[Hybrid])
			tr.End(sp)
			c = newSliceCursor(res.Selected, Hybrid, res.Stats.Visited, 0)
		}
	case TopDownDet:
		tc, err := e.tdstaCursor(query, p, tr)
		if err != nil {
			// The selector pre-checked the fragment, so this is a
			// compile-level mismatch (eligibility probe out of sync
			// with the compiler); degrade to Optimized rather than
			// failing a query Auto promised to answer.
			if c, err = e.astaOrStepwise(query, p, tr); err != nil {
				return nil, err
			}
		} else {
			c = tc
		}
	default:
		var err error
		if c, err = e.astaOrStepwise(query, p, tr); err != nil {
			return nil, err
		}
	}
	c.sel, c.shapeRef, c.obsSlot, c.obsStart = sel, st, int8(d.slot), start
	c.autoShape, c.autoReason = st.shape, d.reason
	return c, nil
}

// astaOrStepwise is Auto's default engine: the optimized ASTA
// evaluator, with the step-wise baseline only for queries outside the
// automata fragment (compile.ErrUnsupported). Other failures surface.
func (e *Engine) astaOrStepwise(query string, p *xpath.Path, tr *obsv.Trace) (*Cursor, error) {
	c, err := e.astaCursor(query, p, Optimized, tr)
	if err == nil {
		return c, nil
	}
	if !errors.Is(err, compile.ErrUnsupported) {
		return nil, err
	}
	return e.stepwiseCursor(p, tr), nil
}
