package core

import (
	"errors"
	"testing"

	"repro/internal/compile"
	"repro/internal/tree"
	"repro/internal/xmark"
)

// newSliceCursor must enforce the preorder invariant itself: stepwise,
// hybrid and TDSTA hand over slices they promise are sorted and
// duplicate-free, but SeekPast binary-searches and a violated promise
// would make resumed pages silently skip or repeat nodes. The cursor
// verifies (O(n)) and repairs only on violation.
func TestSliceCursorEnforcesInvariant(t *testing.T) {
	cases := []struct {
		name string
		in   []tree.NodeID
		want []tree.NodeID
	}{
		{"sorted-unique", []tree.NodeID{1, 3, 5}, []tree.NodeID{1, 3, 5}},
		{"unsorted", []tree.NodeID{5, 1, 3}, []tree.NodeID{1, 3, 5}},
		{"dups", []tree.NodeID{1, 1, 3, 3, 5}, []tree.NodeID{1, 3, 5}},
		{"unsorted-dups", []tree.NodeID{5, 1, 5, 3, 1}, []tree.NodeID{1, 3, 5}},
		{"empty", nil, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newSliceCursor(append([]tree.NodeID(nil), tc.in...), Stepwise, 0, 0)
			if got := c.Count(); got != len(tc.want) {
				t.Errorf("Count() = %d, want %d", got, len(tc.want))
			}
			var got []tree.NodeID
			for {
				v, ok := c.Next()
				if !ok {
					break
				}
				got = append(got, v)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("drained %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("drained %v, want %v", got, tc.want)
				}
			}
			// Resume past the first surviving node: must deliver exactly
			// the rest, regardless of how broken the input order was.
			if len(tc.want) > 1 {
				r := newSliceCursor(append([]tree.NodeID(nil), tc.in...), Stepwise, 0, 0)
				r.SeekPast(tc.want[0])
				v, ok := r.Next()
				if !ok || v != tc.want[1] {
					t.Errorf("resume after %d: got (%d,%v), want %d", tc.want[0], v, ok, tc.want[1])
				}
			}
		})
	}
}

// collect drains a cursor.
func collect(t *testing.T, c *Cursor) []tree.NodeID {
	t.Helper()
	var out []tree.NodeID
	for {
		v, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// TestAutoParityWithQueryWith pins that the cursor path and the
// materializing path make identical Auto decisions and surface
// identical errors, on the fifteen paper queries plus an
// out-of-fragment query (which must pick the step-wise engine on both,
// not error). A genuinely broken query must error identically on both.
func TestAutoParityWithQueryWith(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.002, Seed: 7})
	eng := New(doc)
	// Static mode: the adaptive selector intentionally varies decisions
	// across successive calls on one shape (probing unmeasured
	// candidates), and this test pins that the two *code paths* decide
	// identically, not that the online model is stationary. Adaptive
	// answer-parity is covered by the decision-table and differential
	// tests.
	eng.ConfigureAuto(AutoConfig{Adaptive: false})

	queries := make([]string, 0, 16)
	for _, q := range xmark.Queries() {
		queries = append(queries, q.XPath)
	}
	// Backward axis: outside the automata fragment, Auto runs step-wise.
	queries = append(queries, "//keyword/parent::*")

	for _, q := range queries {
		ans, aerr := eng.QueryWith(q, Auto)
		cur, cerr := eng.EvalCursor(q, Auto)
		if (aerr == nil) != (cerr == nil) {
			t.Fatalf("%s: QueryWith err=%v, EvalCursor err=%v", q, aerr, cerr)
		}
		if aerr != nil {
			if aerr.Error() != cerr.Error() {
				t.Errorf("%s: error mismatch: %q vs %q", q, aerr, cerr)
			}
			continue
		}
		if ans.Strategy != cur.Strategy() {
			t.Errorf("%s: QueryWith picked %v, EvalCursor picked %v", q, ans.Strategy, cur.Strategy())
		}
		got := collect(t, cur)
		if len(got) != len(ans.Nodes) {
			t.Fatalf("%s: cursor %d nodes, answer %d nodes", q, len(got), len(ans.Nodes))
		}
		for i := range got {
			if got[i] != ans.Nodes[i] {
				t.Fatalf("%s: node %d: cursor %d != answer %d", q, i, got[i], ans.Nodes[i])
			}
		}
	}

	// The out-of-fragment query must have fallen back to stepwise.
	cur, err := eng.EvalCursor("//keyword/parent::*", Auto)
	if err != nil {
		t.Fatalf("out-of-fragment Auto: %v", err)
	}
	if cur.Strategy() != Stepwise {
		t.Errorf("out-of-fragment Auto picked %v, want %v", cur.Strategy(), Stepwise)
	}

	// A parse failure errors identically through both paths.
	if _, aerr := eng.QueryWith("///", Auto); aerr == nil {
		t.Error("QueryWith: bad query must error")
	} else if _, cerr := eng.EvalCursor("///", Auto); cerr == nil || cerr.Error() != aerr.Error() {
		t.Errorf("EvalCursor error %v != QueryWith error %v", cerr, aerr)
	}
}

// TestAutoSurfacesNonFragmentErrors pins the error classification the
// Auto fallback relies on: every ToASTA failure mode that step-wise can
// evaluate matches compile.ErrUnsupported, and autoCursor only degrades
// on that match.
func TestAutoSurfacesNonFragmentErrors(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.002, Seed: 7})
	eng := New(doc)
	for _, q := range []string{
		"//keyword/parent::*",
		"//item/ancestor::regions",
		"//item[contains(description, \"gold\")]",
	} {
		// Forced Optimized must report the fragment violation...
		_, err := eng.QueryWith(q, Optimized)
		if err == nil {
			t.Fatalf("%s: forced Optimized should fail", q)
		}
		if !errors.Is(err, compile.ErrUnsupported) {
			t.Errorf("%s: error %v must match compile.ErrUnsupported", q, err)
		}
		// ...and Auto must absorb exactly that class.
		cur, err := eng.EvalCursor(q, Auto)
		if err != nil {
			t.Fatalf("%s: Auto: %v", q, err)
		}
		if cur.Strategy() != Stepwise {
			t.Errorf("%s: Auto picked %v, want %v", q, cur.Strategy(), Stepwise)
		}
	}
}

// TestSliceStrategiesResumeMidAnswer is the regression test for the
// slice-cursor paging bug: every slice-backed strategy, resumed
// mid-answer via fresh cursors and SeekPast (the stateless continuation
// model), must deliver exactly the full answer across pages.
func TestSliceStrategiesResumeMidAnswer(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.004, Seed: 11})
	eng := New(doc)
	cases := []struct {
		strategy Strategy
		query    string
	}{
		{Stepwise, "/site/regions//item"},
		{Hybrid, "/site/regions//item/location"},
		{TopDownDet, "/site/regions//item"},
		{Optimized, "/site//item//keyword"}, // rope-backed, for contrast
	}
	for _, tc := range cases {
		full, err := eng.QueryWith(tc.query, tc.strategy)
		if err != nil {
			t.Fatalf("%v %s: %v", tc.strategy, tc.query, err)
		}
		if len(full.Nodes) < 10 {
			t.Fatalf("%v %s: answer too small (%d) to page", tc.strategy, tc.query, len(full.Nodes))
		}
		var paged []tree.NodeID
		last := tree.Nil
		buf := make([]tree.NodeID, 7)
		for {
			cur, err := eng.EvalCursor(tc.query, tc.strategy)
			if err != nil {
				t.Fatalf("%v %s: %v", tc.strategy, tc.query, err)
			}
			if last != tree.Nil {
				cur.SeekPast(last)
			}
			n := cur.NextBatch(buf)
			if n == 0 {
				break
			}
			paged = append(paged, buf[:n]...)
			last = buf[n-1]
		}
		if len(paged) != len(full.Nodes) {
			t.Fatalf("%v %s: paged %d nodes, full %d", tc.strategy, tc.query, len(paged), len(full.Nodes))
		}
		for i := range paged {
			if paged[i] != full.Nodes[i] {
				t.Fatalf("%v %s: node %d: paged %d != full %d", tc.strategy, tc.query, i, paged[i], full.Nodes[i])
			}
		}
	}
}
