package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xpath"
)

// This file is the observed-latency Auto selector: the replacement for
// driving every Auto decision off the single §5 constant. The paper's
// heuristic ("use the hybrid run when one label in the query has a low
// count") is a fine cold-start rule, but it is blind to what the
// machine actually measures — and Auto historically never even
// considered the TDSTA engine for restricted-fragment queries. The
// selector keys observations by canonical query *shape* (the
// normalized step/axis/label skeleton, i.e. the parsed path printed
// back), keeps an EWMA of observed latency and visited counts per
// eligible strategy, and picks the argmin with a deterministic
// epsilon-greedy exploration cadence so estimates never go stale.
// Decisions and feedback are tiny and allocation-free on the warm
// path: one lock-free map hit, one mutex'd argmin over at most three
// candidates, and one EWMA store at cursor close.
//
// A selector belongs to one Engine. The service builds a fresh engine
// per (document, generation), so shape keys are implicitly scoped to
// the document generation — a reloaded document starts cold, exactly
// as the stale-estimate story requires. The design follows
// janus-datalog's statistics-free planner argument: a tiny,
// explainable online model per shape ("which strategy won and why" is
// always reportable) beats both a static constant and an opaque
// global regression.

// DefaultAutoEpsilon is the default exploration floor: roughly one in
// 1/epsilon warm decisions per shape re-measures a non-best candidate.
const DefaultAutoEpsilon = 0.05

// exploreLatencyBound caps how much slower (by EWMA estimate) than the
// incumbent best a candidate may be and still earn exploration ticks.
// Within the bound a candidate is plausibly competitive and gets
// re-measured; past it, exploration would just periodically re-run a
// known-bad engine.
const exploreLatencyBound = 8

// ewmaAlpha weights new observations; 0.25 converges in a handful of
// runs while still smoothing scheduler noise.
const ewmaAlpha = 0.25

// AutoConfig configures the Auto selector.
type AutoConfig struct {
	// Adaptive enables the observed-latency model. When false the
	// selector still tracks shapes and observations (so /stats and the
	// short-circuit bugfixes work identically) but every decision is
	// the paper's §5 static heuristic.
	Adaptive bool
	// Epsilon is the exploration floor in (0,1); <=0 disables
	// exploration (pure exploitation after the initial probes).
	Epsilon float64
}

// DefaultAutoConfig is the daemon default: adaptive, with the standard
// exploration floor.
func DefaultAutoConfig() AutoConfig {
	return AutoConfig{Adaptive: true, Epsilon: DefaultAutoEpsilon}
}

// Candidate slots. A dense array indexed by slot keeps the per-shape
// state flat and the decision loop branch-predictable.
const (
	slotOptimized = iota // ASTA "Opt. Eval." (always eligible; stepwise fallback rides here)
	slotHybrid           // start-anywhere run (§4.4), chain queries only
	slotTDSTA            // minimized deterministic TDSTA + topdown_jump, restricted fragment only
	numSlots
)

// slotStrategy maps a candidate slot to the strategy Auto dispatches.
var slotStrategy = [numSlots]Strategy{Optimized, Hybrid, TopDownDet}

// Decision reasons, reported in explain profiles, /stats and the
// flight recorder. Constants so attaching one to a decision never
// allocates.
const (
	// ReasonStatic: adaptive mode off; the §5 count heuristic decided.
	ReasonStatic = "static-heuristic"
	// ReasonShortCircuit: a chain label is absent from the document, so
	// the answer is empty by construction — no engine runs at all.
	ReasonShortCircuit = "absent-chain-label"
	// ReasonCold: no candidate has been measured yet; the §5 heuristic
	// decides until observations arrive.
	ReasonCold = "cold-heuristic"
	// ReasonProbe: some candidate has never been measured; it runs once
	// so the argmin compares real numbers, not guesses.
	ReasonProbe = "probe-unmeasured"
	// ReasonExplore: the epsilon cadence fired; the least-observed
	// non-best candidate re-measures so estimates cannot go stale.
	ReasonExplore = "explore"
	// ReasonExploit: the candidate with the lowest EWMA observed
	// latency won.
	ReasonExploit = "min-ewma-latency"
	// ReasonOnly: only one strategy is eligible for this shape.
	ReasonOnly = "single-candidate"
)

// ewma is one candidate's running estimate.
type ewma struct {
	n         uint64  // observations folded in
	latencyNS float64 // EWMA of observed end-to-end latency
	visited   float64 // EWMA of nodes visited
}

func (w *ewma) add(latencyNS float64, visited int) {
	if w.n == 0 {
		w.latencyNS = latencyNS
		w.visited = float64(visited)
	} else {
		w.latencyNS += ewmaAlpha * (latencyNS - w.latencyNS)
		w.visited += ewmaAlpha * (float64(visited) - w.visited)
	}
	w.n++
}

// shapeStats is the selector's per-shape state. The immutable facts
// (shape string, chain-fragment membership, label counts, eligibility
// mask) are computed once at first sight; the mutable model lives
// behind mu.
type shapeStats struct {
	shape string
	// chain: inside the hybrid chain fragment. absent: chain whose
	// rarest label does not occur in the document (the answer is empty
	// by construction). minCount/maxCount: the §5 probe, cached because
	// the document is immutable for the engine's lifetime.
	chain    bool
	absent   bool
	minCount int
	maxCount int
	eligible [numSlots]bool

	mu sync.Mutex
	// n counts decisions (drives the deterministic exploration
	// cadence); est/wins are per-candidate model state.
	n          uint64
	est        [numSlots]ewma
	wins       [numSlots]uint64
	lastPick   Strategy
	lastReason string
	// Estimate-quality accounting: |observed-estimated|/observed summed
	// over observations that had a prior estimate to be wrong about.
	errRelSum float64
	errCount  uint64
}

// autoDecision is one routing decision: the strategy to dispatch, the
// slot feedback should credit, and the (constant) reason string.
type autoDecision struct {
	strategy Strategy
	slot     int
	reason   string
}

// selector is the per-engine Auto decision state.
type selector struct {
	cfg AutoConfig
	// period is the exploration cadence derived from Epsilon
	// (~round(1/epsilon) decisions per exploration); 0 disables it.
	period uint64

	// byQuery short-circuits raw query text to its shape state so the
	// warm path never re-canonicalizes; byShape is the canonical table
	// (several query spellings can share one shape).
	byQuery sync.Map // string -> *shapeStats
	mu      sync.Mutex
	byShape map[string]*shapeStats

	decisions     atomic.Uint64
	explorations  atomic.Uint64
	shortCircuits atomic.Uint64
	observations  atomic.Uint64
}

func newSelector(cfg AutoConfig) *selector {
	sel := &selector{cfg: cfg, byShape: make(map[string]*shapeStats)}
	if cfg.Epsilon > 0 {
		p := uint64(1/cfg.Epsilon + 0.5)
		if p < 2 {
			p = 2
		}
		sel.period = p
	}
	return sel
}

// shapeFor resolves a query to its shape state, creating it on first
// sight. The fast path is one lock-free sync.Map hit keyed by the raw
// query text.
func (sel *selector) shapeFor(query string, p *xpath.Path, e *Engine) *shapeStats {
	if v, ok := sel.byQuery.Load(query); ok {
		return v.(*shapeStats)
	}
	shape := p.String()
	sel.mu.Lock()
	st, ok := sel.byShape[shape]
	if !ok {
		min, max, chain := e.chainCounts(p)
		st = &shapeStats{
			shape:    shape,
			chain:    chain,
			absent:   chain && min == 0,
			minCount: min,
			maxCount: max,
		}
		st.eligible[slotOptimized] = true
		st.eligible[slotHybrid] = chain && !st.absent
		st.eligible[slotTDSTA] = tdstaEligible(p)
		sel.byShape[shape] = st
	}
	sel.mu.Unlock()
	sel.byQuery.Store(query, st)
	return st
}

// staticPick is the paper's §5 heuristic: hybrid when the rarest chain
// label's count is below hybridCountFraction of the most frequent
// one's, optimized otherwise. It is both the Adaptive=false behavior
// and the cold-key fallback.
func (st *shapeStats) staticPick() autoDecision {
	if st.chain && st.maxCount > 0 &&
		float64(st.minCount) <= hybridCountFraction*float64(st.maxCount) {
		return autoDecision{strategy: Hybrid, slot: slotHybrid}
	}
	return autoDecision{strategy: Optimized, slot: slotOptimized}
}

// decide picks the strategy for one Auto evaluation of shape st.
func (sel *selector) decide(st *shapeStats) autoDecision {
	sel.decisions.Add(1)
	if st.absent {
		// A chain with an absent label selects nothing: answer empty
		// without running any engine, and report it as a distinct
		// zero-cost outcome so it cannot pollute the Hybrid estimates.
		sel.shortCircuits.Add(1)
		st.mu.Lock()
		st.n++
		st.lastPick, st.lastReason = EmptyChain, ReasonShortCircuit
		st.mu.Unlock()
		return autoDecision{strategy: EmptyChain, slot: -1, reason: ReasonShortCircuit}
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	st.n++

	var d autoDecision
	switch {
	case !sel.cfg.Adaptive:
		d = st.staticPick()
		d.reason = ReasonStatic
	default:
		d = st.adaptivePick(sel)
	}
	if d.reason == ReasonExplore {
		sel.explorations.Add(1)
	}
	st.wins[d.slot]++
	st.lastPick, st.lastReason = d.strategy, d.reason
	return d
}

// adaptivePick is the observed-latency model. Caller holds st.mu.
func (st *shapeStats) adaptivePick(sel *selector) autoDecision {
	// Candidate census: how many strategies could serve this shape, and
	// which of them have never been measured.
	nElig, nMeasured := 0, 0
	firstUnmeasured, only := -1, -1
	for s := 0; s < numSlots; s++ {
		if !st.eligible[s] {
			continue
		}
		nElig++
		only = s
		if st.est[s].n > 0 {
			nMeasured++
		} else if firstUnmeasured < 0 {
			firstUnmeasured = s
		}
	}
	if nElig == 1 {
		return autoDecision{strategy: slotStrategy[only], slot: only, reason: ReasonOnly}
	}
	if nMeasured == 0 {
		// Nothing observed yet: the paper's heuristic decides, and its
		// run becomes the first observation.
		d := st.staticPick()
		d.reason = ReasonCold
		return d
	}
	if firstUnmeasured >= 0 {
		// Measure every candidate once before trusting any argmin.
		return autoDecision{strategy: slotStrategy[firstUnmeasured], slot: firstUnmeasured, reason: ReasonProbe}
	}
	best := st.argminLatency()
	if sel.period > 0 && st.n%sel.period == 0 {
		// Exploration tick: re-measure the least-observed non-best
		// candidate. Deterministic (a counter, not a RNG) so decisions
		// replay exactly and stay explainable. Candidates already
		// measured hopelessly slower than the incumbent are not worth
		// the tax (re-running a 200x-slower engine every Nth query
		// would dominate the shape's cost); they get their retry when
		// the document generation — and with it the selector — turns
		// over.
		bound := exploreLatencyBound * st.est[best].latencyNS
		probe := -1
		for s := 0; s < numSlots; s++ {
			if !st.eligible[s] || s == best || st.est[s].latencyNS > bound {
				continue
			}
			if probe < 0 || st.est[s].n < st.est[probe].n {
				probe = s
			}
		}
		if probe >= 0 {
			return autoDecision{strategy: slotStrategy[probe], slot: probe, reason: ReasonExplore}
		}
	}
	return autoDecision{strategy: slotStrategy[best], slot: best, reason: ReasonExploit}
}

// argminLatency returns the eligible slot with the lowest EWMA
// latency. Caller holds st.mu; every eligible slot has n>0.
func (st *shapeStats) argminLatency() int {
	best := -1
	for s := 0; s < numSlots; s++ {
		if !st.eligible[s] {
			continue
		}
		if best < 0 || st.est[s].latencyNS < st.est[best].latencyNS {
			best = s
		}
	}
	return best
}

// observe folds one completed evaluation back into the model. It runs
// at cursor close (so paged and streamed evaluations report their full
// cost), in both adaptive and static mode — static mode keeps the
// table warm so flipping -auto-adaptive on mid-flight starts informed,
// and both modes pay identical bookkeeping (the benchmark gate
// compares pure decision quality).
func (sel *selector) observe(st *shapeStats, slot int, elapsed time.Duration, visited int) {
	if st == nil || slot < 0 || slot >= numSlots {
		return
	}
	sel.observations.Add(1)
	lat := float64(elapsed)
	st.mu.Lock()
	w := &st.est[slot]
	if w.n > 0 && lat > 0 {
		diff := w.latencyNS - lat
		if diff < 0 {
			diff = -diff
		}
		st.errRelSum += diff / lat
		st.errCount++
	}
	w.add(lat, visited)
	st.mu.Unlock()
}

// explain renders one decision with its candidate estimates for the
// ?explain=1 select span. Detail path only — it allocates.
func (sel *selector) explain(st *shapeStats, d autoDecision) string {
	var b strings.Builder
	fmt.Fprintf(&b, "auto shape=%s pick=%s reason=%s", st.shape, d.strategy, d.reason)
	if d.strategy == EmptyChain {
		fmt.Fprintf(&b, " min_count=0 max_count=%d", st.maxCount)
		return b.String()
	}
	st.mu.Lock()
	for s := 0; s < numSlots; s++ {
		if !st.eligible[s] {
			continue
		}
		w := st.est[s]
		if w.n == 0 {
			fmt.Fprintf(&b, " %s=unmeasured", slotStrategy[s])
		} else {
			fmt.Fprintf(&b, " %s=%.0fus/n%d", slotStrategy[s], w.latencyNS/1e3, w.n)
		}
	}
	st.mu.Unlock()
	if st.chain {
		fmt.Fprintf(&b, " min_count=%d max_count=%d", st.minCount, st.maxCount)
	}
	return b.String()
}

// tdstaEligible mirrors compile.ToTDSTA's fragment check (absolute
// path, child/descendant axes with name or * tests, no predicates, no
// child step after a descendant step) without building the automaton,
// so the selector knows the candidate set before any compilation.
func tdstaEligible(p *xpath.Path) bool {
	if !p.Absolute || len(p.Steps) == 0 {
		return false
	}
	seenDesc := false
	for _, st := range p.Steps {
		if st.Axis != xpath.Child && st.Axis != xpath.Descendant {
			return false
		}
		if st.Test.Kind != xpath.TestName && st.Test.Kind != xpath.TestStar {
			return false
		}
		if len(st.Preds) > 0 {
			return false
		}
		if st.Axis == xpath.Descendant {
			seenDesc = true
		} else if seenDesc {
			return false
		}
	}
	return true
}

// AutoCandidate is one strategy's model state for a shape, as reported
// in SelectorStats.
type AutoCandidate struct {
	Strategy      string  `json:"strategy"`
	Observations  uint64  `json:"observations"`
	EWMALatencyUS float64 `json:"ewma_latency_us"`
	EWMAVisited   float64 `json:"ewma_visited"`
	Wins          uint64  `json:"wins"`
}

// AutoShape is one tracked query shape: who has been winning and why.
type AutoShape struct {
	Shape        string          `json:"shape"`
	Decisions    uint64          `json:"decisions"`
	LastStrategy string          `json:"last_strategy"`
	LastReason   string          `json:"last_reason"`
	Candidates   []AutoCandidate `json:"candidates"`
}

// SelectorStats is the Auto selector's observable state: the /stats
// payload and the source of the xpqd_auto_* Prometheus families.
type SelectorStats struct {
	Adaptive      bool    `json:"adaptive"`
	Epsilon       float64 `json:"epsilon"`
	Shapes        int     `json:"shapes"`
	Decisions     uint64  `json:"decisions"`
	Explorations  uint64  `json:"explorations"`
	ShortCircuits uint64  `json:"short_circuits"`
	Observations  uint64  `json:"observations"`
	// ExplorationRate = Explorations/Decisions; EstimateErrorPct is the
	// mean |observed-estimated|/observed latency error, in percent —
	// how honest the model's numbers are.
	ExplorationRate  float64           `json:"exploration_rate"`
	EstimateErrorPct float64           `json:"estimate_error_pct"`
	WinsByStrategy   map[string]uint64 `json:"wins_by_strategy,omitempty"`
	// TopShapes lists the most-decided shapes (capped) with their
	// per-candidate estimates.
	TopShapes []AutoShape `json:"top_shapes,omitempty"`

	// Raw accumulators for cross-shard aggregation (AddTo + Finalize).
	ErrRelSum float64 `json:"-"`
	ErrCount  uint64  `json:"-"`
}

// maxTopShapes caps the per-snapshot shape table so /stats stays
// bounded on adversarial query streams.
const maxTopShapes = 16

// stats snapshots the selector.
func (sel *selector) stats() SelectorStats {
	s := SelectorStats{
		Adaptive:       sel.cfg.Adaptive,
		Epsilon:        sel.cfg.Epsilon,
		Decisions:      sel.decisions.Load(),
		Explorations:   sel.explorations.Load(),
		ShortCircuits:  sel.shortCircuits.Load(),
		Observations:   sel.observations.Load(),
		WinsByStrategy: map[string]uint64{},
	}
	sel.mu.Lock()
	shapes := make([]*shapeStats, 0, len(sel.byShape))
	for _, st := range sel.byShape {
		shapes = append(shapes, st)
	}
	sel.mu.Unlock()
	s.Shapes = len(shapes)
	for _, st := range shapes {
		st.mu.Lock()
		as := AutoShape{
			Shape:        st.shape,
			Decisions:    st.n,
			LastStrategy: st.lastPick.String(),
			LastReason:   st.lastReason,
		}
		for slot := 0; slot < numSlots; slot++ {
			if !st.eligible[slot] {
				continue
			}
			w := st.est[slot]
			as.Candidates = append(as.Candidates, AutoCandidate{
				Strategy:      slotStrategy[slot].String(),
				Observations:  w.n,
				EWMALatencyUS: w.latencyNS / 1e3,
				EWMAVisited:   w.visited,
				Wins:          st.wins[slot],
			})
			if st.wins[slot] > 0 {
				s.WinsByStrategy[slotStrategy[slot].String()] += st.wins[slot]
			}
		}
		if st.absent && st.n > 0 {
			s.WinsByStrategy[EmptyChain.String()] += st.n
		}
		s.ErrRelSum += st.errRelSum
		s.ErrCount += st.errCount
		st.mu.Unlock()
		s.TopShapes = append(s.TopShapes, as)
	}
	s.Finalize()
	return s
}

// AddTo accumulates s into dst (cross-shard aggregation; the PoolStats
// pattern). Call Finalize on dst once every shard is added.
func (s SelectorStats) AddTo(dst *SelectorStats) {
	dst.Adaptive = s.Adaptive
	dst.Epsilon = s.Epsilon
	dst.Shapes += s.Shapes
	dst.Decisions += s.Decisions
	dst.Explorations += s.Explorations
	dst.ShortCircuits += s.ShortCircuits
	dst.Observations += s.Observations
	dst.ErrRelSum += s.ErrRelSum
	dst.ErrCount += s.ErrCount
	if len(s.WinsByStrategy) > 0 && dst.WinsByStrategy == nil {
		dst.WinsByStrategy = map[string]uint64{}
	}
	for k, v := range s.WinsByStrategy {
		dst.WinsByStrategy[k] += v
	}
	dst.TopShapes = append(dst.TopShapes, s.TopShapes...)
}

// Finalize computes the derived ratios and sorts/caps the shape table.
func (s *SelectorStats) Finalize() {
	if s.Decisions > 0 {
		s.ExplorationRate = float64(s.Explorations) / float64(s.Decisions)
	}
	if s.ErrCount > 0 {
		s.EstimateErrorPct = 100 * s.ErrRelSum / float64(s.ErrCount)
	}
	sort.Slice(s.TopShapes, func(i, j int) bool {
		if s.TopShapes[i].Decisions != s.TopShapes[j].Decisions {
			return s.TopShapes[i].Decisions > s.TopShapes[j].Decisions
		}
		return s.TopShapes[i].Shape < s.TopShapes[j].Shape
	})
	if len(s.TopShapes) > maxTopShapes {
		s.TopShapes = s.TopShapes[:maxTopShapes]
	}
}
