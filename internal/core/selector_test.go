package core

// The Auto selector's decision table and the three routing bugfixes it
// rode in with: hybrid errors must surface (not silently degrade),
// chains with an absent label must short-circuit to an empty answer
// without running (or polluting the estimates of) any engine, and the
// explain trace must say which engine each run span timed and whether
// it succeeded.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/obsv"
	"repro/internal/tree"
	"repro/internal/xmlparse"
	"repro/internal/xpath"
)

// selDoc: b is frequent (24×), c rare (1×), so /r/a/b has min=1 (the
// root) and max=24 — past the §5 threshold (1 <= 0.05·24), i.e. the
// static heuristic routes it to Hybrid.
func selDoc(t *testing.T) *tree.Document {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r><a>")
	for i := 0; i < 24; i++ {
		sb.WriteString("<b/>")
	}
	sb.WriteString("</a><a><c/></a></r>")
	d, err := xmlparse.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustPath(t *testing.T, q string) *xpath.Path {
	t.Helper()
	p, err := xpath.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// swapHybrid replaces the hybrid engine entry point for one test.
func swapHybrid(t *testing.T, fn func(*tree.Document, *index.Index, *xpath.Path) (hybrid.Result, error)) {
	t.Helper()
	orig := hybridEval
	hybridEval = fn
	t.Cleanup(func() { hybridEval = orig })
}

// TestAutoDecisionTable walks the selector through its whole decision
// vocabulary on one engine.
func TestAutoDecisionTable(t *testing.T) {
	eng := New(selDoc(t))
	eng.ConfigureAuto(AutoConfig{Adaptive: true, Epsilon: 0.05})
	sel := eng.auto

	// Cold chain key, rare label: the §5 heuristic decides — Hybrid.
	stChain := sel.shapeFor("/r/a/b", mustPath(t, "/r/a/b"), eng)
	if !stChain.eligible[slotHybrid] || !stChain.eligible[slotTDSTA] || !stChain.eligible[slotOptimized] {
		t.Fatalf("eligibility for /r/a/b = %v, want all three", stChain.eligible)
	}
	d := sel.decide(stChain)
	if d.strategy != Hybrid || d.reason != ReasonCold {
		t.Fatalf("cold rare chain: got (%v, %s), want (Hybrid, %s)", d.strategy, d.reason, ReasonCold)
	}

	// Cold chain key, no rare label: heuristic says Optimized. /r/a has
	// min=1 (root) and max=2, 1 > 0.05·2.
	stPlain := sel.shapeFor("/r/a", mustPath(t, "/r/a"), eng)
	if d := sel.decide(stPlain); d.strategy != Optimized || d.reason != ReasonCold {
		t.Fatalf("cold non-rare chain: got (%v, %s), want (Optimized, %s)", d.strategy, d.reason, ReasonCold)
	}

	// Out-of-fragment query: neither chain nor TDSTA eligible — the
	// single-candidate path, no probing ever.
	stBack := sel.shapeFor("//b/parent::*", mustPath(t, "//b/parent::*"), eng)
	if stBack.eligible[slotHybrid] || stBack.eligible[slotTDSTA] {
		t.Fatalf("eligibility for //b/parent::* = %v, want optimized only", stBack.eligible)
	}
	if d := sel.decide(stBack); d.strategy != Optimized || d.reason != ReasonOnly {
		t.Fatalf("out-of-fragment: got (%v, %s), want (Optimized, %s)", d.strategy, d.reason, ReasonOnly)
	}

	// One observation in: the unmeasured candidates are probed in slot
	// order before any argmin is trusted.
	sel.observe(stChain, slotHybrid, 50_000, 10)
	d = sel.decide(stChain)
	if d.strategy != Optimized || d.reason != ReasonProbe {
		t.Fatalf("probe 1: got (%v, %s), want (Optimized, %s)", d.strategy, d.reason, ReasonProbe)
	}
	sel.observe(stChain, slotOptimized, 80_000, 25)
	d = sel.decide(stChain)
	if d.strategy != TopDownDet || d.reason != ReasonProbe {
		t.Fatalf("probe 2: got (%v, %s), want (TopDownDet, %s)", d.strategy, d.reason, ReasonProbe)
	}

	// Fully measured with TDSTA cheapest: exploit must pick it — the
	// restricted-fragment engine the static heuristic never considered.
	sel.observe(stChain, slotTDSTA, 10_000, 5)
	d = sel.decide(stChain)
	if d.strategy != TopDownDet || d.reason != ReasonExploit {
		t.Fatalf("warm: got (%v, %s), want (TopDownDet, %s)", d.strategy, d.reason, ReasonExploit)
	}

	// New observations move the argmin: hybrid gets much cheaper.
	for i := 0; i < 20; i++ {
		sel.observe(stChain, slotHybrid, 1_000, 2)
	}
	if d := sel.decide(stChain); d.strategy != Hybrid {
		t.Fatalf("after hybrid speedup: got %v, want Hybrid", d.strategy)
	}
}

// TestAutoExplorationCadence pins the deterministic epsilon-greedy
// floor: with epsilon 0.5 every second warm decision re-measures a
// non-best candidate, and the exploration counter tracks it.
func TestAutoExplorationCadence(t *testing.T) {
	eng := New(selDoc(t))
	eng.ConfigureAuto(AutoConfig{Adaptive: true, Epsilon: 0.5})
	sel := eng.auto
	st := sel.shapeFor("/r/a/b", mustPath(t, "/r/a/b"), eng)
	sel.observe(st, slotOptimized, 10_000, 5)
	sel.observe(st, slotHybrid, 50_000, 10)
	sel.observe(st, slotTDSTA, 60_000, 10)

	explored := 0
	for i := 0; i < 10; i++ {
		d := sel.decide(st)
		switch d.reason {
		case ReasonExplore:
			explored++
			if d.strategy == Optimized {
				t.Fatalf("decision %d explored the incumbent best", i)
			}
		case ReasonExploit:
			if d.strategy != Optimized {
				t.Fatalf("decision %d exploited %v, want Optimized", i, d.strategy)
			}
		default:
			t.Fatalf("decision %d: unexpected reason %s", i, d.reason)
		}
		// Feed the decision back so estimates stay measured.
		sel.observe(st, d.slot, 10_000, 5)
	}
	if explored != 5 {
		t.Fatalf("explored %d of 10 decisions at epsilon 0.5, want 5", explored)
	}
	if got := sel.explorations.Load(); got != 5 {
		t.Fatalf("exploration counter = %d, want 5", got)
	}
}

// TestAutoStaticMode pins Adaptive=false: every decision is the §5
// heuristic, but observations still accumulate (flipping adaptive on
// later starts warm).
func TestAutoStaticMode(t *testing.T) {
	eng := New(selDoc(t))
	eng.ConfigureAuto(AutoConfig{Adaptive: false})
	for i := 0; i < 4; i++ {
		ans, err := eng.QueryWith("/r/a/b", Auto)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Strategy != Hybrid {
			t.Fatalf("static mode run %d picked %v, want Hybrid every time", i, ans.Strategy)
		}
	}
	s := eng.SelectorStats()
	if s.Adaptive {
		t.Fatal("stats report adaptive mode")
	}
	if s.Decisions != 4 || s.Observations != 4 {
		t.Fatalf("decisions=%d observations=%d, want 4/4", s.Decisions, s.Observations)
	}
	if len(s.TopShapes) != 1 || s.TopShapes[0].LastReason != ReasonStatic {
		t.Fatalf("top shapes = %+v, want one shape with reason %s", s.TopShapes, ReasonStatic)
	}
}

// TestAutoSurfacesHybridError is the silent-swallow regression test:
// a genuine hybrid evaluation failure during Auto's speculative
// attempt must surface to the caller, not silently degrade to
// Optimized (the old behavior this PR removes).
func TestAutoSurfacesHybridError(t *testing.T) {
	boom := errors.New("hybrid exploded mid-run")
	swapHybrid(t, func(*tree.Document, *index.Index, *xpath.Path) (hybrid.Result, error) {
		return hybrid.Result{}, boom
	})
	eng := New(selDoc(t))
	// /r/a/b routes to Hybrid cold (rare-label chain).
	_, err := eng.QueryWith("/r/a/b", Auto)
	if !errors.Is(err, boom) {
		t.Fatalf("Auto returned %v, want the injected hybrid error to surface", err)
	}
	// Forced Hybrid surfaces it too.
	if _, err := eng.QueryWith("/r/a/b", Hybrid); !errors.Is(err, boom) {
		t.Fatalf("forced Hybrid returned %v, want the injected error", err)
	}
}

// TestAutoDegradesOnHybridFragmentMismatch: only ErrUnsupported — the
// probe and the engine disagreeing about the fragment — may degrade,
// and the answer must still be correct.
func TestAutoDegradesOnHybridFragmentMismatch(t *testing.T) {
	swapHybrid(t, func(*tree.Document, *index.Index, *xpath.Path) (hybrid.Result, error) {
		return hybrid.Result{}, fmt.Errorf("%w: injected", hybrid.ErrUnsupported)
	})
	eng := New(selDoc(t))
	ans, err := eng.QueryWith("/r/a/b", Auto)
	if err != nil {
		t.Fatalf("fragment mismatch must degrade, got error %v", err)
	}
	if ans.Strategy != Optimized {
		t.Fatalf("degraded to %v, want Optimized", ans.Strategy)
	}
	want, err := eng.QueryWith("/r/a/b", Stepwise)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Nodes) != len(want.Nodes) {
		t.Fatalf("degraded answer %d nodes, oracle %d", len(ans.Nodes), len(want.Nodes))
	}
}

// TestAbsentChainLabelShortCircuit is the min=0 misroute regression:
// a chain with a label absent from the document used to satisfy
// 0 <= 0.05·max and always run Hybrid; now it answers empty without
// running any engine and cannot pollute the Hybrid estimates.
func TestAbsentChainLabelShortCircuit(t *testing.T) {
	// Any engine run would be visible: hybrid panics if invoked.
	swapHybrid(t, func(*tree.Document, *index.Index, *xpath.Path) (hybrid.Result, error) {
		panic("hybrid ran on an absent-label chain")
	})
	eng := New(selDoc(t))
	for _, q := range []string{"/r/a/zzz", "//zzz", "/r/zzz/b"} {
		ans, err := eng.QueryWith(q, Auto)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if ans.Strategy != EmptyChain {
			t.Fatalf("%s: strategy %v, want EmptyChain", q, ans.Strategy)
		}
		if len(ans.Nodes) != 0 || ans.Visited != 0 {
			t.Fatalf("%s: %d nodes, %d visited — want a zero-cost empty answer", q, len(ans.Nodes), ans.Visited)
		}
	}
	s := eng.SelectorStats()
	if s.ShortCircuits != 3 {
		t.Fatalf("short circuits = %d, want 3", s.ShortCircuits)
	}
	if s.Observations != 0 {
		t.Fatalf("observations = %d — a non-run must not feed any estimate", s.Observations)
	}
	if s.WinsByStrategy[EmptyChain.String()] != 3 {
		t.Fatalf("wins = %v, want 3 empty-chain", s.WinsByStrategy)
	}
	// The cursor path agrees (paged/streamed absent-label chains).
	cur, err := eng.EvalCursor("/r/a/zzz", Auto)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Strategy() != EmptyChain || cur.Count() != 0 {
		t.Fatalf("cursor strategy=%v count=%d, want EmptyChain/0", cur.Strategy(), cur.Count())
	}
	if cur.AutoReason() != ReasonShortCircuit {
		t.Fatalf("cursor reason = %q, want %q", cur.AutoReason(), ReasonShortCircuit)
	}
}

// TestEmptyChainIsNotForceable: the outcome label round-trips through
// String but is rejected as a request strategy.
func TestEmptyChainIsNotForceable(t *testing.T) {
	if EmptyChain.String() != "empty-chain" {
		t.Fatalf("String = %q", EmptyChain.String())
	}
	if _, ok := ParseStrategy("empty-chain"); ok {
		t.Fatal("ParseStrategy accepted empty-chain")
	}
}

// collectSpans flattens a profile span tree.
func collectSpans(spans []obsv.Span, into *[]obsv.Span) {
	for _, s := range spans {
		*into = append(*into, s)
		collectSpans(s.Children, into)
	}
}

// TestExplainRunSpanAnnotations is the anonymous-run-span golden test:
// when Auto's speculative Hybrid attempt fails and the optimized
// engine answers, the profile must carry BOTH run spans, each naming
// its engine and outcome, plus a select span explaining the decision.
func TestExplainRunSpanAnnotations(t *testing.T) {
	swapHybrid(t, func(*tree.Document, *index.Index, *xpath.Path) (hybrid.Result, error) {
		return hybrid.Result{}, fmt.Errorf("%w: injected", hybrid.ErrUnsupported)
	})
	eng := New(selDoc(t))
	tr := obsv.NewTrace(true)
	defer obsv.ReleaseTrace(tr)
	root := tr.Begin(obsv.SpanQuery)
	cur, err := eng.EvalCursorTrace("/r/a/b", Auto, tr)
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()
	tr.End(root)
	p := tr.Profile("rid")

	var flat []obsv.Span
	collectSpans(p.Spans, &flat)
	var details []string
	var selectDetail string
	for _, s := range flat {
		if s.Name == obsv.SpanRun {
			details = append(details, s.Detail)
		}
		if s.Name == obsv.SpanSelect {
			selectDetail = s.Detail
		}
	}
	// Golden: the failed speculative attempt and the engine that
	// answered, in execution order, unambiguously labeled.
	want := []string{"strategy=hybrid outcome=failed", "strategy=optimized outcome=ok"}
	if len(details) != len(want) {
		t.Fatalf("run spans %q, want %q", details, want)
	}
	for i := range want {
		if details[i] != want[i] {
			t.Fatalf("run span %d detail = %q, want %q", i, details[i], want[i])
		}
	}
	// The shape is the canonical (axis-explicit) skeleton, not the raw
	// query spelling.
	for _, frag := range []string{"shape=/child::r/child::a/child::b", "pick=hybrid", "reason=" + ReasonCold, "min_count=1", "max_count=24"} {
		if !strings.Contains(selectDetail, frag) {
			t.Fatalf("select span detail %q missing %q", selectDetail, frag)
		}
	}

	// Forced strategies annotate their run spans too.
	tr2 := obsv.NewTrace(true)
	defer obsv.ReleaseTrace(tr2)
	root = tr2.Begin(obsv.SpanQuery)
	cur, err = eng.EvalCursorTrace("/r/a/b", TopDownDet, tr2)
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()
	tr2.End(root)
	flat = flat[:0]
	collectSpans(tr2.Profile("rid2").Spans, &flat)
	found := false
	for _, s := range flat {
		if s.Name == obsv.SpanRun && s.Detail == "strategy=topdown-det outcome=ok" {
			found = true
		}
	}
	if !found {
		t.Fatalf("forced TDSTA run span not annotated: %+v", flat)
	}
}

// TestSelectorFeedbackAtClose pins the feedback path: estimates update
// when the cursor closes (or materializes), not before, and exactly
// once.
func TestSelectorFeedbackAtClose(t *testing.T) {
	eng := New(selDoc(t))
	sel := eng.auto
	cur, err := eng.EvalCursor("/r/a/b", Auto)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.observations.Load(); got != 0 {
		t.Fatalf("observations before close = %d, want 0", got)
	}
	cur.Close()
	if got := sel.observations.Load(); got != 1 {
		t.Fatalf("observations after close = %d, want 1", got)
	}
	cur.Close() // idempotent
	if got := sel.observations.Load(); got != 1 {
		t.Fatalf("observations after double close = %d, want 1", got)
	}
	// The materializing path reports too.
	if _, err := eng.QueryWith("/r/a/b", Auto); err != nil {
		t.Fatal(err)
	}
	if got := sel.observations.Load(); got != 2 {
		t.Fatalf("observations after QueryWith = %d, want 2", got)
	}
	// Forced strategies never touch the selector.
	if _, err := eng.QueryWith("/r/a/b", Optimized); err != nil {
		t.Fatal(err)
	}
	if got := sel.observations.Load(); got != 2 {
		t.Fatalf("forced strategy fed the selector (observations=%d)", got)
	}
}

// TestTDSTAEligibleMirrorsCompiler: the selector's fragment probe must
// agree with compile.ToTDSTA on representative queries, else Auto
// would probe candidates that cannot compile.
func TestTDSTAEligibleMirrorsCompiler(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"/r/a/b", true},
		{"/r/a//b", true},
		{"//b", true},
		{"/r/*/b", true},
		{"//a/b", false},   // child after descendant
		{"/r/a[b]", false}, // predicate
		{"b/c", false},     // relative
		{"//b/parent::*", false},
	}
	for _, c := range cases {
		if got := tdstaEligible(mustPath(t, c.q)); got != c.want {
			t.Errorf("tdstaEligible(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestExplorationSkipsHopelessCandidates(t *testing.T) {
	eng := New(selDoc(t))
	eng.ConfigureAuto(AutoConfig{Adaptive: true, Epsilon: 0.5})
	sel := eng.auto
	st := sel.shapeFor("/r/a/b", mustPath(t, "/r/a/b"), eng)
	// Hybrid measured 200x worse than the incumbent: far past the 8x
	// exploration bound. TDSTA within it.
	sel.observe(st, slotOptimized, 10_000, 5)
	sel.observe(st, slotHybrid, 2_000_000, 10)
	sel.observe(st, slotTDSTA, 50_000, 10)
	for i := 0; i < 20; i++ {
		d := sel.decide(st)
		if d.strategy == Hybrid {
			t.Fatalf("decision %d explored a candidate measured %dx past the bound", i, 200)
		}
		if d.reason == ReasonExplore && d.strategy != TopDownDet {
			t.Fatalf("decision %d explored %v, want only the in-bound TDSTA", i, d.strategy)
		}
		sel.observe(st, d.slot, 10_000, 5)
	}
	if sel.explorations.Load() == 0 {
		t.Fatal("in-bound candidate was never explored")
	}

	// When every non-best candidate is out of bound, the tick falls
	// through to exploit rather than burning a run on a known-bad pick.
	// "//a/b" has exactly two candidates (Optimized, Hybrid — the
	// descendant step is outside the TDSTA fragment).
	st2 := sel.shapeFor("//a/b", mustPath(t, "//a/b"), eng)
	sel.observe(st2, slotOptimized, 10_000, 5)
	sel.observe(st2, slotHybrid, 2_000_000, 10)
	for i := 0; i < 10; i++ {
		d := sel.decide(st2)
		if d.reason == ReasonExplore {
			t.Fatalf("decision %d explored with every alternative out of bound", i)
		}
		if d.reason != ReasonExploit || d.strategy != Optimized {
			t.Fatalf("decision %d: %v via %s, want exploit Optimized", i, d.strategy, d.reason)
		}
		sel.observe(st2, d.slot, 10_000, 5)
	}
}
