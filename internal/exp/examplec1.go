package exp

import (
	"fmt"
	"strings"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/tree"
)

// This file reproduces Example C.1: the query
//
//	//x[ (a1 or a2) and ... and (a_{2n-1} or a_{2n}) ]
//
// compiles to an ASTA of size linear in n, while any (even
// nondeterministic) STA requires the disjunctive normal form of the
// predicate — 2^n conjunctions — so the translation blows up
// exponentially. The table reports both sizes.

// C1Row is one line of the succinctness table.
type C1Row struct {
	// N is the number of (a or b) conjuncts.
	N int
	// States and Transitions describe the compiled ASTA (the paper
	// counts 2n+1 states and 4n+2 transitions).
	States, Transitions int
	// FormulaSize is the total formula size |δ| of the ASTA.
	FormulaSize int
	// DNFTerms is the number of conjunctive terms of the selecting
	// transition's formula in disjunctive normal form — the number of
	// STA transitions an alternation-free automaton needs (2^n).
	DNFTerms int
}

// ExampleC1 builds the query for each n and measures both encodings.
func ExampleC1(ns []int) ([]C1Row, error) {
	var rows []C1Row
	for _, n := range ns {
		query, names := c1Query(n)
		aut, err := compile.Compile(query, names)
		if err != nil {
			return nil, fmt.Errorf("n=%d: %w", n, err)
		}
		dnf := 0
		for _, t := range aut.Trans {
			if t.Selecting {
				dnf = dnfTerms(t.Phi)
			}
		}
		rows = append(rows, C1Row{
			N:           n,
			States:      aut.NumStates,
			Transitions: len(aut.Trans),
			FormulaSize: aut.Size(),
			DNFTerms:    dnf,
		})
	}
	return rows, nil
}

// c1Query builds //x[(a1 or a2) and ... ] and a label table containing
// all the names.
func c1Query(n int) (string, *tree.LabelTable) {
	names := tree.NewLabelTable()
	names.Intern("x")
	var sb strings.Builder
	sb.WriteString("//x[ ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(" and ")
		}
		a := fmt.Sprintf("a%d", 2*i+1)
		b := fmt.Sprintf("a%d", 2*i+2)
		names.Intern(a)
		names.Intern(b)
		fmt.Fprintf(&sb, "(%s or %s)", a, b)
	}
	sb.WriteString(" ]")
	return sb.String(), names
}

// dnfTerms counts the conjunctive terms of the DNF of f without
// materializing it: atoms have one term; Or sums; And multiplies; Not is
// pushed inward by De Morgan (swapping the two counts).
func dnfTerms(f *asta.Formula) int {
	terms, _ := dnfCnf(f)
	return terms
}

// dnfCnf returns (DNF terms, CNF clauses) of f.
func dnfCnf(f *asta.Formula) (int, int) {
	switch f.Kind {
	case asta.FAnd:
		ld, lc := dnfCnf(f.Left)
		rd, rc := dnfCnf(f.Right)
		return ld * rd, lc + rc
	case asta.FOr:
		ld, lc := dnfCnf(f.Left)
		rd, rc := dnfCnf(f.Right)
		return ld + rd, lc * rc
	case asta.FNot:
		d, c := dnfCnf(f.Left)
		return c, d
	default:
		return 1, 1
	}
}

// FormatExampleC1 renders the succinctness table.
func FormatExampleC1(rows []C1Row) string {
	var sb strings.Builder
	sb.WriteString("Example C.1: ASTA succinctness vs alternation-free STA\n")
	fmt.Fprintf(&sb, "%-4s %8s %8s %10s %14s %10s\n",
		"n", "states", "trans", "|formulas|", "DNF terms", "blow-up")
	for _, r := range rows {
		blow := float64(r.DNFTerms) / float64(r.FormulaSize)
		fmt.Fprintf(&sb, "%-4d %8d %8d %10d %14d %9.1fx\n",
			r.N, r.States, r.Transitions, r.FormulaSize, r.DNFTerms, blow)
	}
	return sb.String()
}
