// Package exp regenerates the paper's experimental tables and figures
// (§5 and Appendix D): Figure 3 (selected/visited node counts and memo
// table sizes per query), Figure 4 (evaluation time for the four
// optimization levels), Figure 5 (hybrid vs regular evaluation on the
// synthetic configurations A–D), Figure 8 (the engine against the
// step-wise baseline standing in for MonetDB/XQuery) and the
// ASTA-vs-STA succinctness table of Example C.1.
//
// Absolute times depend on the host and on this reproduction's Go
// substrate; the shapes the paper reports — which strategy wins, by
// what order of magnitude, where the crossovers sit — are the claims
// these harnesses check; run cmd/experiments to capture them on the
// current host.
package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/stepwise"
	"repro/internal/tree"
	"repro/internal/xmark"
	"repro/internal/xpath"
)

// Workload bundles a document with its prebuilt index.
type Workload struct {
	Doc   *tree.Document
	Index *index.Index
}

// NewWorkload generates the XMark document at the given scale and
// indexes it.
func NewWorkload(scale float64, seed int64) *Workload {
	d := xmark.Generate(xmark.Config{Scale: scale, Seed: seed})
	return &Workload{Doc: d, Index: index.New(d)}
}

// --- Figure 3 ---

// Fig3Row is one column of the Figure 3 table.
type Fig3Row struct {
	ID string
	// Selected is line (1): the number of selected nodes.
	Selected int
	// VisitedJump is line (2): nodes visited with jumping.
	VisitedJump int
	// VisitedNoJump is line (3): nodes visited without jumping (the
	// evaluator still skips subtrees whose state set is empty).
	VisitedNoJump int
	// MemoEntries is line (4): memoized configurations.
	MemoEntries int
	// Ratio is line (5): selected / visited-with-jumping, in percent.
	Ratio float64
}

// Figure3 computes the table for all fifteen queries.
func Figure3(w *Workload) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, q := range xmark.Queries() {
		aut, err := compile.Compile(q.XPath, w.Doc.Names())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		// The paper's jumping evaluator always applies the existential
		// semantics of §4.4 ("only one witness is checked"), which is
		// what lets Q13–Q15 prune their predicate states after the
		// first witness; InfoProp is that technique.
		jump := aut.Eval(w.Doc, w.Index, asta.Options{Jump: true, InfoProp: true})
		plain := aut.Eval(w.Doc, nil, asta.Options{})
		memo := aut.Eval(w.Doc, nil, asta.Options{Memo: true})
		row := Fig3Row{
			ID:            q.ID,
			Selected:      len(jump.Selected),
			VisitedJump:   jump.Stats.Visited,
			VisitedNoJump: plain.Stats.Visited,
			MemoEntries:   memo.Stats.MemoEntries,
		}
		if row.VisitedJump > 0 {
			row.Ratio = 100 * float64(row.Selected) / float64(row.VisitedJump)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure3 renders the table like the paper's Figure 3.
func FormatFigure3(rows []Fig3Row, totalNodes int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: selected and visited nodes (document: %d nodes)\n", totalNodes)
	fmt.Fprintf(&sb, "%-4s %12s %12s %14s %8s %8s\n",
		"Q", "(1)selected", "(2)visited+j", "(3)visited-nj", "(4)memo", "(5)%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %12d %12d %14d %8d %8.1f\n",
			r.ID, r.Selected, r.VisitedJump, r.VisitedNoJump, r.MemoEntries, r.Ratio)
	}
	return sb.String()
}

// --- Figure 4 ---

// Fig4Row is one query's timings across the four optimization levels.
type Fig4Row struct {
	ID                     string
	Naive, Jump, Memo, Opt time.Duration
}

// Figure4 times each query under each strategy; each measurement is the
// best of `repeats` runs (the paper takes the best of 5).
func Figure4(w *Workload, repeats int) ([]Fig4Row, error) {
	if repeats < 1 {
		repeats = 1
	}
	// Information propagation is an always-on implementation technique
	// in the paper's engine; the figure's series vary jumping and
	// memoization ("Naive" is the bare Algorithm 4.1).
	modes := []asta.Options{
		{},
		{Jump: true, InfoProp: true},
		{Memo: true, InfoProp: true},
		{Jump: true, Memo: true, InfoProp: true},
	}
	var rows []Fig4Row
	for _, q := range xmark.Queries() {
		aut, err := compile.Compile(q.XPath, w.Doc.Names())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		var ts [4]time.Duration
		for mi, opt := range modes {
			best := time.Duration(0)
			for rep := 0; rep < repeats; rep++ {
				start := time.Now()
				_ = aut.Eval(w.Doc, w.Index, opt)
				el := time.Since(start)
				if rep == 0 || el < best {
					best = el
				}
			}
			ts[mi] = best
		}
		rows = append(rows, Fig4Row{ID: q.ID, Naive: ts[0], Jump: ts[1], Memo: ts[2], Opt: ts[3]})
	}
	return rows, nil
}

// FormatFigure4 renders the timing table (milliseconds, log-plot data in
// the paper).
func FormatFigure4(rows []Fig4Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: query evaluation time (ms)\n")
	fmt.Fprintf(&sb, "%-4s %12s %12s %12s %12s\n", "Q", "Naive", "Jumping", "Memo.", "Opt.")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %12.3f %12.3f %12.3f %12.3f\n",
			r.ID, ms(r.Naive), ms(r.Jump), ms(r.Memo), ms(r.Opt))
	}
	return sb.String()
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// --- Figure 5 ---

// Fig5Row reports hybrid vs regular evaluation on one configuration.
type Fig5Row struct {
	Config string
	// Selected is row (1) of the figure's table.
	Selected int
	// HybridVisited is row (2): nodes visited by the hybrid run.
	HybridVisited int
	// RegularVisited is row (3): nodes visited by the regular
	// top-down+bottom-up (jumping) run.
	RegularVisited int
	// Times for both strategies.
	HybridTime, RegularTime time.Duration
	// TotalNodes sizes the document.
	TotalNodes int
}

// Figure5 builds the four configurations at the given scale and runs
// //listitem//keyword//emph both ways.
func Figure5(scale float64, repeats int) ([]Fig5Row, error) {
	if repeats < 1 {
		repeats = 1
	}
	p := xpath.MustParse(xmark.HybridQuery)
	var rows []Fig5Row
	for _, cfg := range xmark.Fig5Configs() {
		d := cfg.Build(scale)
		ix := index.New(d)
		aut, err := compile.ToASTA(p, d.Names())
		if err != nil {
			return nil, err
		}
		var hRes hybrid.Result
		var hTime time.Duration
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			hRes, err = hybrid.Eval(d, ix, p)
			el := time.Since(start)
			if err != nil {
				return nil, err
			}
			if rep == 0 || el < hTime {
				hTime = el
			}
		}
		var rRes asta.Result
		var rTime time.Duration
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			rRes = aut.Eval(d, ix, asta.Options{Jump: true, Memo: true, InfoProp: true})
			el := time.Since(start)
			if rep == 0 || el < rTime {
				rTime = el
			}
		}
		if len(hRes.Selected) != len(rRes.Selected) {
			return nil, fmt.Errorf("config %s: hybrid selected %d, regular %d",
				cfg.Name, len(hRes.Selected), len(rRes.Selected))
		}
		rows = append(rows, Fig5Row{
			Config:         cfg.Name,
			Selected:       len(hRes.Selected),
			HybridVisited:  hRes.Stats.Visited,
			RegularVisited: rRes.Stats.Visited,
			HybridTime:     hTime,
			RegularTime:    rTime,
			TotalNodes:     d.NumNodes(),
		})
	}
	return rows, nil
}

// FormatFigure5 renders the hybrid-vs-regular table.
func FormatFigure5(rows []Fig5Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: hybrid vs regular, query //listitem//keyword//emph\n")
	fmt.Fprintf(&sb, "%-4s %10s %12s %12s %12s %12s %10s\n",
		"Cfg", "(1)sel", "(2)hyb-vis", "(3)reg-vis", "hybrid(ms)", "regular(ms)", "nodes")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %10d %12d %12d %12.3f %12.3f %10d\n",
			r.Config, r.Selected, r.HybridVisited, r.RegularVisited,
			ms(r.HybridTime), ms(r.RegularTime), r.TotalNodes)
	}
	return sb.String()
}

// --- Figure 8 (Appendix D) ---

// Fig8Row compares the optimized engine against the step-wise baseline.
type Fig8Row struct {
	ID       string
	Engine   time.Duration
	Baseline time.Duration
	Selected int
}

// Figure8 runs all queries under both engines; the baseline stands in
// for MonetDB/XQuery (see DESIGN.md).
func Figure8(w *Workload, repeats int) ([]Fig8Row, error) {
	if repeats < 1 {
		repeats = 1
	}
	for _, q := range xmark.Queries() {
		if _, err := xpath.Parse(q.XPath); err != nil {
			return nil, err
		}
	}
	var rows []Fig8Row
	for _, q := range xmark.Queries() {
		p := xpath.MustParse(q.XPath)
		aut, err := compile.ToASTA(p, w.Doc.Names())
		if err != nil {
			return nil, err
		}
		var eng, base time.Duration
		var sel int
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			res := aut.Eval(w.Doc, w.Index, asta.Opt())
			el := time.Since(start)
			if rep == 0 || el < eng {
				eng = el
			}
			sel = len(res.Selected)
		}
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			res := stepwise.Eval(w.Doc, p, stepwise.Default())
			el := time.Since(start)
			if rep == 0 || el < base {
				base = el
			}
			if len(res.Selected) != sel {
				return nil, fmt.Errorf("%s: engines disagree (%d vs %d)", q.ID, sel, len(res.Selected))
			}
		}
		rows = append(rows, Fig8Row{ID: q.ID, Engine: eng, Baseline: base, Selected: sel})
	}
	return rows, nil
}

// FormatFigure8 renders the engine-vs-baseline table.
func FormatFigure8(rows []Fig8Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: automata engine vs step-wise baseline (MonetDB stand-in)\n")
	fmt.Fprintf(&sb, "%-4s %12s %12s %9s %10s\n", "Q", "engine(ms)", "baseline(ms)", "speedup", "selected")
	for _, r := range rows {
		speed := 0.0
		if r.Engine > 0 {
			speed = float64(r.Baseline) / float64(r.Engine)
		}
		fmt.Fprintf(&sb, "%-4s %12.3f %12.3f %8.1fx %10d\n",
			r.ID, ms(r.Engine), ms(r.Baseline), speed, r.Selected)
	}
	return sb.String()
}
