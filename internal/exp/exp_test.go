package exp_test

import (
	"strings"
	"testing"

	"repro/internal/exp"
)

func testWorkload(t *testing.T) *exp.Workload {
	t.Helper()
	return exp.NewWorkload(0.004, 1)
}

func TestFigure3Shape(t *testing.T) {
	w := testWorkload(t)
	rows, err := exp.Figure3(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	byID := map[string]exp.Fig3Row{}
	for _, r := range rows {
		byID[r.ID] = r
		// Structural invariants of the table.
		if r.Selected > r.VisitedJump {
			t.Errorf("%s: selected %d > visited-with-jumping %d", r.ID, r.Selected, r.VisitedJump)
		}
		if r.VisitedJump > r.VisitedNoJump {
			t.Errorf("%s: jumping visited more than non-jumping (%d > %d)",
				r.ID, r.VisitedJump, r.VisitedNoJump)
		}
		if r.Selected > 0 && r.Ratio <= 0 {
			t.Errorf("%s: ratio not computed", r.ID)
		}
	}
	// Paper shapes: Q01 touches a handful of nodes; Q10 selects exactly
	// the root; Q11..Q15 all select every keyword (same count).
	if byID["Q01"].VisitedJump > 25 {
		t.Errorf("Q01 visited %d with jumping, expected a handful", byID["Q01"].VisitedJump)
	}
	if byID["Q10"].Selected != 1 {
		t.Errorf("Q10 selected %d, want 1 (the site element)", byID["Q10"].Selected)
	}
	kw := byID["Q11"].Selected
	for _, id := range []string{"Q12", "Q13", "Q14", "Q15"} {
		if byID[id].Selected != kw {
			t.Errorf("%s selected %d, want %d (all keywords, as Q11)", id, byID[id].Selected, kw)
		}
	}
	// Q05's approximation is tight: visited ≈ listitems-top + selected
	// (paper: "we end up touching exactly the number of relevant
	// nodes"); allow slack but demand the same order of magnitude.
	q05 := byID["Q05"]
	if q05.VisitedJump > 4*q05.Selected+100 {
		t.Errorf("Q05: visited %d vs selected %d — approximation far from tight",
			q05.VisitedJump, q05.Selected)
	}
	out := exp.FormatFigure3(rows, w.Doc.NumNodes())
	if !strings.Contains(out, "Q15") {
		t.Error("formatted table incomplete")
	}
}

func TestFigure4Shape(t *testing.T) {
	w := testWorkload(t)
	rows, err := exp.Figure4(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Aggregate shape: opt should beat naive overall (per-query noise
	// at tiny scales is possible, totals must hold).
	var naive, opt int64
	for _, r := range rows {
		naive += r.Naive.Nanoseconds()
		opt += r.Opt.Nanoseconds()
	}
	if opt > naive {
		t.Errorf("total Opt time %d > total Naive time %d", opt, naive)
	}
	if s := exp.FormatFigure4(rows); !strings.Contains(s, "Opt.") {
		t.Error("format broken")
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := exp.Figure5(0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCfg := map[string]exp.Fig5Row{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	// A and B: hybrid visits a small fraction of what the regular run
	// visits (the paper's headline for the hybrid strategy).
	for _, c := range []string{"A", "B"} {
		r := byCfg[c]
		if r.HybridVisited*5 > r.RegularVisited {
			t.Errorf("config %s: hybrid visited %d vs regular %d — no big win",
				c, r.HybridVisited, r.RegularVisited)
		}
		if r.Selected != 4 {
			t.Errorf("config %s selected %d, want 4", c, r.Selected)
		}
	}
	// D: the worst case — hybrid visits FEWER nodes but does not win
	// big; at minimum the regular run must stay competitive in visits
	// within the same order of magnitude.
	d := byCfg["D"]
	if d.HybridVisited == 0 || d.RegularVisited == 0 {
		t.Errorf("config D: zero visit counts")
	}
	if s := exp.FormatFigure5(rows); !strings.Contains(s, "Cfg") {
		t.Error("format broken")
	}
}

func TestFigure8Shape(t *testing.T) {
	// Figure 8's claim is about documents large enough that per-query
	// fixed costs do not dominate; use a bigger workload than the other
	// figures (the paper's is 116MB).
	w := exp.NewWorkload(0.05, 1)
	rows, err := exp.Figure8(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape claims: the engine wins in aggregate, and on the
	// automata-logic queries Q12 and Q15 where the step-wise baseline
	// re-scans the document per predicate (//*//* is its worst case).
	var eng, base int64
	byID := map[string]exp.Fig8Row{}
	for _, r := range rows {
		eng += r.Engine.Nanoseconds()
		base += r.Baseline.Nanoseconds()
		byID[r.ID] = r
	}
	if eng > base {
		t.Errorf("engine total %dns slower than baseline %dns", eng, base)
	}
	if r := byID["Q15"]; r.Engine > r.Baseline {
		t.Errorf("Q15: engine %v slower than baseline %v", r.Engine, r.Baseline)
	}
	if s := exp.FormatFigure8(rows); !strings.Contains(s, "speedup") {
		t.Error("format broken")
	}
}

func TestExampleC1(t *testing.T) {
	rows, err := exp.ExampleC1([]int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.States != 2*r.N+2 { // paper counts 2n+1; +1 for the #doc init state
			t.Errorf("n=%d: states = %d, want %d", r.N, r.States, 2*r.N+2)
		}
		want := 1
		for i := 0; i < r.N; i++ {
			want *= 2
		}
		if r.DNFTerms != want {
			t.Errorf("n=%d: DNF terms = %d, want 2^n = %d", r.N, r.DNFTerms, want)
		}
	}
	// Linear vs exponential: at n=16 the ASTA must be tiny compared to
	// the DNF.
	last := rows[len(rows)-1]
	if last.FormulaSize > 400 {
		t.Errorf("ASTA formula size %d not linear-ish at n=16", last.FormulaSize)
	}
	if last.DNFTerms != 65536 {
		t.Errorf("DNF terms = %d", last.DNFTerms)
	}
	if s := exp.FormatExampleC1(rows); !strings.Contains(s, "blow-up") {
		t.Error("format broken")
	}
}

func TestScaling(t *testing.T) {
	rows, err := exp.Scaling("//listitem//keyword", []float64{0.002, 0.008}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, big := rows[0], rows[1]
	nodeGrowth := float64(big.Nodes) / float64(small.Nodes)
	naiveGrowth := float64(big.NaiveVisited) / float64(small.NaiveVisited)
	jumpGrowth := float64(big.JumpVisited) / float64(small.JumpVisited)
	selGrowth := float64(big.Selected) / float64(small.Selected)
	// Naive visits track |D|; jumping visits track the result size.
	if naiveGrowth < 0.7*nodeGrowth {
		t.Errorf("naive visits did not grow with |D|: %.2fx vs %.2fx nodes", naiveGrowth, nodeGrowth)
	}
	if jumpGrowth > 2.5*selGrowth {
		t.Errorf("jumping visits grew faster than the result: %.2fx vs %.2fx selected", jumpGrowth, selGrowth)
	}
	if s := exp.FormatScaling("//listitem//keyword", rows); !strings.Contains(s, "jump-vis") {
		t.Error("format broken")
	}
}
