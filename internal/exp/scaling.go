package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/asta"
	"repro/internal/compile"
	"repro/internal/index"
	"repro/internal/xmark"
)

// The scaling experiment makes the |D|-optimization claim of §1
// measurable: as the document grows, the naive evaluator's visits grow
// linearly with |D| while the jumping evaluator's visits track the
// result size. It is not a figure of the paper, but it is the paper's
// central asymptotic argument.

// ScalingRow reports one document size.
type ScalingRow struct {
	Scale                     float64
	Nodes                     int
	Selected                  int
	NaiveVisited, JumpVisited int
	NaiveTime, JumpTime       time.Duration
}

// Scaling runs the query at each scale.
func Scaling(query string, scales []float64, seed int64) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, sc := range scales {
		d := xmark.Generate(xmark.Config{Scale: sc, Seed: seed})
		ix := index.New(d)
		aut, err := compile.Compile(query, d.Names())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		naive := aut.Eval(d, nil, asta.Options{})
		naiveTime := time.Since(start)
		start = time.Now()
		jump := aut.Eval(d, ix, asta.Options{Jump: true, InfoProp: true})
		jumpTime := time.Since(start)
		if len(naive.Selected) != len(jump.Selected) {
			return nil, fmt.Errorf("scaling: engines disagree at scale %g", sc)
		}
		rows = append(rows, ScalingRow{
			Scale:        sc,
			Nodes:        d.NumNodes(),
			Selected:     len(jump.Selected),
			NaiveVisited: naive.Stats.Visited,
			JumpVisited:  jump.Stats.Visited,
			NaiveTime:    naiveTime,
			JumpTime:     jumpTime,
		})
	}
	return rows, nil
}

// FormatScaling renders the scaling table.
func FormatScaling(query string, rows []ScalingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scaling of %s: naive visits grow with |D|, jumping visits with the result\n", query)
	fmt.Fprintf(&sb, "%-8s %10s %10s %12s %12s %12s %12s\n",
		"scale", "nodes", "selected", "naive-vis", "jump-vis", "naive(ms)", "jump(ms)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8g %10d %10d %12d %12d %12.3f %12.3f\n",
			r.Scale, r.Nodes, r.Selected, r.NaiveVisited, r.JumpVisited,
			ms(r.NaiveTime), ms(r.JumpTime))
	}
	return sb.String()
}
