// Package hybrid implements the "start anywhere" evaluation strategy of
// §4.4: for a query like //listitem//keyword//emph, pick the step whose
// label has the lowest global count (the index answers counts in O(1)),
// jump directly to its occurrences, verify the upward context with
// parent moves (the paper's index has no upward jumps either) and match
// the remaining downward steps against the indexed occurrences of the
// final label inside each pivot's subtree. Configurations A and B of
// Figure 5 are the cases where this wins by orders of magnitude.
//
// The strategy applies to the fragment the paper demonstrates it on:
// absolute chains of child/descendant steps with name tests and no
// predicates. Eval reports ErrUnsupported otherwise so callers can fall
// back to the regular top-down+bottom-up engine.
package hybrid

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// ErrUnsupported reports a query outside the hybrid fragment.
var ErrUnsupported = errors.New("hybrid: query outside the chain fragment")

// Stats counts evaluator effort.
type Stats struct {
	// Visited counts nodes inspected: pivot occurrences, ancestor-walk
	// steps and downward candidates.
	Visited int
	// Pivot is the step index evaluation started from.
	Pivot int
}

// Result is the evaluation outcome.
type Result struct {
	Selected []tree.NodeID
	Stats    Stats
}

// Walk calls f for each selected node in document order, stopping early
// when f returns false — the uniform consumption surface shared with
// the automata engines' result types.
func (r *Result) Walk(f func(tree.NodeID) bool) { tree.WalkNodes(r.Selected, f) }

// chainStep is a normalized step of the supported fragment.
type chainStep struct {
	desc  bool // descendant axis (child otherwise)
	label tree.LabelID
}

// normalize validates the fragment and resolves labels; ok is false when
// a label is absent from the document (empty result).
func normalize(p *xpath.Path, names *tree.LabelTable) ([]chainStep, bool, error) {
	if !p.Absolute || len(p.Steps) == 0 {
		return nil, false, fmt.Errorf("%w: path must be absolute", ErrUnsupported)
	}
	// Validate the whole fragment before resolving labels, so queries
	// outside the fragment report ErrUnsupported even when some label
	// is absent from this document.
	for _, st := range p.Steps {
		if st.Axis != xpath.Child && st.Axis != xpath.Descendant {
			return nil, false, fmt.Errorf("%w: axis %v", ErrUnsupported, st.Axis)
		}
		if st.Test.Kind != xpath.TestName {
			return nil, false, fmt.Errorf("%w: node test %s", ErrUnsupported, st.Test)
		}
		if len(st.Preds) > 0 {
			return nil, false, fmt.Errorf("%w: predicates", ErrUnsupported)
		}
	}
	out := make([]chainStep, len(p.Steps))
	for i, st := range p.Steps {
		id, ok := names.Lookup(st.Test.Name)
		if !ok {
			return nil, false, nil
		}
		out[i] = chainStep{desc: st.Axis == xpath.Descendant, label: id}
	}
	return out, true, nil
}

// Eval evaluates a chain query starting from its cheapest step.
func Eval(d *tree.Document, ix *index.Index, p *xpath.Path) (Result, error) {
	steps, ok, err := normalize(p, d.Names())
	if err != nil {
		return Result{}, err
	}
	if !ok {
		return Result{}, nil
	}
	pivot := 0
	for i, st := range steps {
		if ix.Count(st.label) < ix.Count(steps[pivot].label) {
			pivot = i
		}
	}
	e := &evaluator{d: d, ix: ix, steps: steps}
	e.stats.Pivot = pivot

	last := len(steps) - 1
	var out []tree.NodeID
	for _, v := range ix.Occurrences(steps[pivot].label) {
		e.stats.Visited++
		if !e.matchUpTo(v, pivot) {
			continue
		}
		if pivot == last {
			out = append(out, v)
			continue
		}
		// Downward part: candidates are the indexed occurrences of the
		// final label inside v's subtree; each verifies the
		// intermediate chain by walking ancestors back toward v.
		occ := e.ix.Occurrences(steps[last].label)
		lo := sort.Search(len(occ), func(k int) bool { return occ[k] > v })
		end := e.d.LastDesc(v)
		for ; lo < len(occ) && occ[lo] <= end; lo++ {
			u := occ[lo]
			e.stats.Visited++
			if e.matchBetween(u, last, v, pivot) {
				out = append(out, u)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return Result{Selected: out[:w], Stats: e.stats}, nil
}

// EvalString parses and evaluates.
func EvalString(d *tree.Document, ix *index.Index, query string) (Result, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return Result{}, err
	}
	return Eval(d, ix, p)
}

type evaluator struct {
	d     *tree.Document
	ix    *index.Index
	steps []chainStep
	stats Stats
}

// matchUpTo reports whether u can serve as the step-i node of the chain,
// with steps[0..i-1] realized by ancestors (a backtracking match; chains
// and document depths are small).
func (e *evaluator) matchUpTo(u tree.NodeID, i int) bool {
	if u == tree.Nil || e.d.Label(u) != e.steps[i].label {
		return false
	}
	if i == 0 {
		if e.steps[0].desc {
			return true
		}
		return e.d.Parent(u) == e.d.Root()
	}
	if !e.steps[i].desc {
		e.stats.Visited++
		return e.matchUpTo(e.d.Parent(u), i-1)
	}
	for a := e.d.Parent(u); a != tree.Nil; a = e.d.Parent(a) {
		e.stats.Visited++
		if e.matchUpTo(a, i-1) {
			return true
		}
	}
	return false
}

// matchBetween reports whether u can serve as the step-k node with
// steps[pivot+1..k-1] realized strictly between the pivot node v and u.
func (e *evaluator) matchBetween(u tree.NodeID, k int, v tree.NodeID, pivot int) bool {
	if u == tree.Nil || u == v || e.d.Label(u) != e.steps[k].label {
		return false
	}
	if k == pivot+1 {
		if e.steps[k].desc {
			// u is inside v's subtree by construction.
			return true
		}
		return e.d.Parent(u) == v
	}
	if !e.steps[k].desc {
		e.stats.Visited++
		return e.matchBetween(e.d.Parent(u), k-1, v, pivot)
	}
	for a := e.d.Parent(u); a != tree.Nil && a != v; a = e.d.Parent(a) {
		e.stats.Visited++
		if e.matchBetween(a, k-1, v, pivot) {
			return true
		}
	}
	return false
}
