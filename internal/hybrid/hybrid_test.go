package hybrid_test

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/stepwise"
	"repro/internal/tgen"
	"repro/internal/tree"
	"repro/internal/xmark"
	"repro/internal/xpath"
)

var chainBattery = []string{
	"//a",
	"/a",
	"/a/b",
	"//a//b",
	"//a//b//c",
	"/a//b/c",
	"//a/b",
	"/a/b//c",
	"//a//a",
	"//a/b//c",
	"//b//a//c",
}

func sameNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHybridAgainstStepwise: the hybrid strategy computes the same node
// sets as the oracle on random documents for every chain query.
func TestHybridAgainstStepwise(t *testing.T) {
	paths := make([]*xpath.Path, len(chainBattery))
	for i, q := range chainBattery {
		paths[i] = xpath.MustParse(q)
	}
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{
			Labels:   []string{"a", "b", "c"},
			MaxNodes: 150,
		})
		ix := index.New(d)
		for qi, p := range paths {
			want := stepwise.Eval(d, p, stepwise.Default()).Selected
			got, err := hybrid.Eval(d, ix, p)
			if err != nil {
				t.Logf("%q: %v", chainBattery[qi], err)
				return false
			}
			if !sameNodes(got.Selected, want) {
				t.Logf("seed=%d %q: got %v want %v", seed, chainBattery[qi], got.Selected, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHybridPicksCheapestPivot(t *testing.T) {
	// Config A: 3 keywords among ~750 listitems — pivot must be the
	// keyword step (index 1).
	d := xmark.Fig5Configs()[0].Build(0.01)
	ix := index.New(d)
	res, err := hybrid.EvalString(d, ix, xmark.HybridQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pivot != 1 {
		t.Errorf("pivot = %d, want 1 (keyword)", res.Stats.Pivot)
	}
	if len(res.Selected) != 4 {
		t.Errorf("selected %d, want 4", len(res.Selected))
	}
	// The hybrid run should touch a tiny fraction of the document.
	if res.Stats.Visited > d.NumNodes()/10 {
		t.Errorf("hybrid visited %d of %d nodes", res.Stats.Visited, d.NumNodes())
	}
}

func TestHybridConfigBPivotIsEmph(t *testing.T) {
	d := xmark.Fig5Configs()[1].Build(0.01)
	ix := index.New(d)
	res, err := hybrid.EvalString(d, ix, xmark.HybridQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pivot != 2 {
		t.Errorf("pivot = %d, want 2 (emph: count 4)", res.Stats.Pivot)
	}
	if len(res.Selected) != 4 {
		t.Errorf("selected %d, want 4", len(res.Selected))
	}
	if res.Stats.Visited > 100 {
		t.Errorf("pure bottom-up run should touch ~a dozen nodes, visited %d", res.Stats.Visited)
	}
}

func TestHybridUnsupported(t *testing.T) {
	d := tgen.Star("r", "c", 3)
	ix := index.New(d)
	for _, q := range []string{
		"//a[b]",
		"//a/text()",
		"//*",
		"//a/following-sibling::b",
	} {
		_, err := hybrid.EvalString(d, ix, q)
		if !errors.Is(err, hybrid.ErrUnsupported) {
			t.Errorf("EvalString(%q) err = %v, want ErrUnsupported", q, err)
		}
	}
	if _, err := hybrid.EvalString(d, ix, "//a["); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestHybridMissingLabel(t *testing.T) {
	d := tgen.Star("r", "c", 3)
	ix := index.New(d)
	res, err := hybrid.EvalString(d, ix, "//zzz//c")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Errorf("selected %v, want empty", res.Selected)
	}
}

func TestHybridOnXMark(t *testing.T) {
	d := xmark.Generate(xmark.Config{Scale: 0.01, Seed: 1})
	ix := index.New(d)
	for _, q := range []string{"//listitem//keyword", "//listitem//keyword//emph", "/site/regions"} {
		want, err := stepwise.EvalString(d, q, stepwise.Default())
		if err != nil {
			t.Fatal(err)
		}
		got, err := hybrid.EvalString(d, ix, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameNodes(got.Selected, want.Selected) {
			t.Errorf("%q: hybrid %d nodes, oracle %d", q, len(got.Selected), len(want.Selected))
		}
	}
}

func BenchmarkHybridConfigA(b *testing.B) {
	d := xmark.Fig5Configs()[0].Build(0.05)
	ix := index.New(d)
	p := xpath.MustParse(xmark.HybridQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybrid.Eval(d, ix, p); err != nil {
			b.Fatal(err)
		}
	}
}
