package index

import (
	"sort"

	"repro/internal/labels"
	"repro/internal/tree"
)

// Cursors provides forward-only positions into the per-label occurrence
// arrays. An evaluator that queries positions in non-decreasing document
// order (which the jumping traversal of §4.3 does: binary preorder only
// moves right) gets amortized O(1) successor lookups instead of a binary
// search per jump: each cursor sweeps its array at most once per
// evaluation, galloping over large skips.
//
// Correctness requires monotone use: NextAfter(l, x) assumes x is at
// least as large as any previous bound passed for label l.
//
// Cursors are reusable: Reset rewinds only the labels an evaluation
// actually advanced (tracked in touched), so a query that swept three
// labels of a million-label document pays three writes, not a
// million — the cost model a pooled evaluation context needs for
// reuse to beat reallocation.
type Cursors struct {
	ix      *Index
	pos     []int32
	touched []tree.LabelID
}

// NewCursors returns fresh cursors for one evaluation pass.
func (ix *Index) NewCursors() *Cursors {
	return &Cursors{ix: ix, pos: make([]int32, len(ix.occ))}
}

// Index returns the index the cursors sweep.
func (c *Cursors) Index() *Index { return c.ix }

// Reset rewinds the cursors for reuse in O(touched): only positions a
// previous evaluation moved off zero are cleared. A reset cursor set
// is indistinguishable from a fresh NewCursors.
func (c *Cursors) Reset() {
	for _, l := range c.touched {
		c.pos[l] = 0
	}
	c.touched = c.touched[:0]
}

// MemBytes estimates the resident bytes of the cursor set.
func (c *Cursors) MemBytes() int64 {
	return int64(cap(c.pos))*4 + int64(cap(c.touched))*4
}

// NextAfter returns the first occurrence of label l strictly after x, or
// Nil. The cursor is left on the returned occurrence (peek semantics).
func (c *Cursors) NextAfter(l tree.LabelID, x tree.NodeID) tree.NodeID {
	if int(l) >= len(c.ix.occ) {
		return Nil
	}
	occ := c.ix.occ[l]
	i := int(c.pos[l])
	lin := 0
	for i < len(occ) && occ[i] <= x {
		i++
		lin++
		if lin == 8 {
			rest := occ[i:]
			i += sort.Search(len(rest), func(k int) bool { return rest[k] > x })
			break
		}
	}
	if i != int(c.pos[l]) {
		// A label leaves the zero position at most once per evaluation
		// (positions are monotone), so touched records each dirtied
		// label exactly once.
		if c.pos[l] == 0 {
			c.touched = append(c.touched, l)
		}
		c.pos[l] = int32(i)
	}
	if i < len(occ) {
		return occ[i]
	}
	return Nil
}

// TopMostEach enumerates the top-most L-labeled nodes of v's binary
// subtree in document order, like Index.TopMostEach but driven by the
// monotone cursors. ok is false for co-finite L.
func (c *Cursors) TopMostEach(v tree.NodeID, L labels.Set, fn func(tree.NodeID)) bool {
	ids, finite := L.Finite()
	if !finite {
		return false
	}
	end := c.ix.binEnd[v]
	after := v
	for {
		best := Nil
		for _, l := range ids {
			if u := c.NextAfter(l, after); u != Nil && u <= end && (best == Nil || u < best) {
				best = u
			}
		}
		if best == Nil {
			return true
		}
		fn(best)
		after = c.ix.binEnd[best]
	}
}

// Rt is the cursor-driven r_t(π, L): the first node on the rightmost
// binary path (following-sibling chain) of π whose label is in L, or
// Nil.
func (c *Cursors) Rt(v tree.NodeID, L labels.Set) tree.NodeID {
	d := c.ix.doc
	p := d.Parent(v)
	if p == tree.Nil {
		return Nil
	}
	ids, finite := L.Finite()
	if !finite {
		for u := d.NextSibling(v); u != tree.Nil; u = d.NextSibling(u) {
			if L.Contains(d.Label(u)) {
				return u
			}
		}
		return Nil
	}
	end := d.LastDesc(p)
	after := d.LastDesc(v)
	for {
		best := Nil
		for _, l := range ids {
			if u := c.NextAfter(l, after); u != Nil && u <= end && (best == Nil || u < best) {
				best = u
			}
		}
		if best == Nil {
			return Nil
		}
		if d.Parent(best) == p {
			return best
		}
		s := best
		for d.Parent(s) != p {
			s = d.Parent(s)
		}
		after = d.LastDesc(s)
	}
}
