package index_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/labels"
	"repro/internal/tgen"
	"repro/internal/tree"
)

// TestCursorsNextAfterMonotone: under monotone bounds, NextAfter equals
// the binary-search successor.
func TestCursorsNextAfterMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := tgen.Random(seed, tgen.Config{MaxNodes: 300, Labels: []string{"a", "b", "c"}})
		ix := index.New(d)
		cur := ix.NewCursors()
		aID, ok := d.Names().Lookup("a")
		if !ok {
			return true
		}
		occ := ix.Occurrences(aID)
		x := tree.NodeID(-1)
		for i := 0; i < 50; i++ {
			x += tree.NodeID(rng.Intn(12)) // non-decreasing bounds
			got := cur.NextAfter(aID, x)
			j := sort.Search(len(occ), func(k int) bool { return occ[k] > x })
			want := index.Nil
			if j < len(occ) {
				want = occ[j]
			}
			if got != want {
				t.Logf("seed=%d NextAfter(a, %d) = %d, want %d", seed, x, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCursorsTopMostEachMatchesIndex: the cursor-driven enumeration
// yields exactly Index.TopMost when traversed in document order.
func TestCursorsTopMostEachMatchesIndex(t *testing.T) {
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{MaxNodes: 250, Labels: []string{"a", "b", "c"}})
		ix := index.New(d)
		aID, okA := d.Names().Lookup("a")
		bID, okB := d.Names().Lookup("b")
		if !okA || !okB {
			return true
		}
		L := labels.Of(aID, bID)
		// Enumerate from a sequence of nodes in increasing preorder
		// (monotone use, as the evaluator guarantees).
		cur := ix.NewCursors()
		prevEnd := tree.NodeID(-1)
		for v := tree.NodeID(0); int(v) < d.NumNodes(); v += tree.NodeID(1 + int(v)%7) {
			if v <= prevEnd {
				continue // stay monotone: skip nodes inside the last scanned region
			}
			want, _ := ix.TopMost(v, L)
			var got []tree.NodeID
			if !cur.TopMostEach(v, L, func(u tree.NodeID) { got = append(got, u) }) {
				return false
			}
			if len(got) != len(want) {
				t.Logf("seed=%d v=%d: got %v want %v", seed, v, got, want)
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			prevEnd = ix.BinEnd(v)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCursorsRtMatchesIndex: cursor Rt equals Index.Rt under monotone use.
func TestCursorsRtMatchesIndex(t *testing.T) {
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{MaxNodes: 250, Labels: []string{"a", "b", "c"}})
		ix := index.New(d)
		aID, ok := d.Names().Lookup("a")
		if !ok {
			return true
		}
		L := labels.Of(aID)
		cur := ix.NewCursors()
		prevBound := tree.NodeID(-1)
		for v := tree.NodeID(1); int(v) < d.NumNodes(); v += tree.NodeID(1 + int(v)%5) {
			// Monotone requirement: Rt queries from lastDesc(v); only
			// issue queries with non-decreasing bounds.
			if d.LastDesc(v) < prevBound {
				continue
			}
			prevBound = d.LastDesc(v)
			if got, want := cur.Rt(v, L), ix.Rt(v, L); got != want {
				t.Logf("seed=%d Rt(%d) = %d, want %d", seed, v, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCursorsRtCofinite(t *testing.T) {
	d := tgen.Random(3, tgen.Config{MaxNodes: 100, Labels: []string{"a", "b"}})
	ix := index.New(d)
	aID, _ := d.Names().Lookup("a")
	cur := ix.NewCursors()
	// Co-finite sets take the chain-walk fallback, which is stateless,
	// so monotonicity is not required.
	for v := tree.NodeID(1); int(v) < d.NumNodes(); v++ {
		if got, want := cur.Rt(v, labels.Not(aID)), ix.Rt(v, labels.Not(aID)); got != want {
			t.Fatalf("Rt(%d, Σ\\{a}) = %d, want %d", v, got, want)
		}
	}
}

func TestCursorsReset(t *testing.T) {
	d := tgen.Star("r", "c", 10)
	ix := index.New(d)
	cID, _ := d.Names().Lookup("c")
	cur := ix.NewCursors()
	first := cur.NextAfter(cID, tree.NodeID(d.NumNodes())) // past the end
	if first != index.Nil {
		t.Fatalf("expected Nil past the end, got %d", first)
	}
	cur.Reset()
	if got := cur.NextAfter(cID, 0); got == index.Nil {
		t.Error("Reset did not rewind the cursor")
	}
}

// TestCursorsResetEqualsFresh is the reuse contract behind pooled
// evaluation contexts: after any monotone use pattern, a Reset cursor
// set must be indistinguishable from a fresh NewCursors — same answers
// for the same (label, bound) sequence, across every label, including
// ones the previous pass never touched. Reset itself is O(touched),
// which this test exercises by touching only a subset of labels per
// round.
func TestCursorsResetEqualsFresh(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := tgen.Random(seed, tgen.Config{MaxNodes: 400, Labels: names})
		ix := index.New(d)
		var ids []tree.LabelID
		for _, n := range names {
			if id, ok := d.Names().Lookup(n); ok {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return true
		}
		reused := ix.NewCursors()
		for round := 0; round < 4; round++ {
			// Each round touches a random subset of labels with a random
			// monotone bound sequence, then compares the reused (Reset)
			// cursors against brand-new ones, query by query.
			fresh := ix.NewCursors()
			sub := ids[:1+rng.Intn(len(ids))]
			bounds := make(map[tree.LabelID]tree.NodeID, len(sub))
			for _, l := range sub {
				bounds[l] = tree.NodeID(-1)
			}
			for i := 0; i < 60; i++ {
				l := sub[rng.Intn(len(sub))]
				bounds[l] += tree.NodeID(rng.Intn(9))
				got := reused.NextAfter(l, bounds[l])
				want := fresh.NextAfter(l, bounds[l])
				if got != want {
					t.Logf("seed=%d round=%d NextAfter(%d, %d) = %d, want %d",
						seed, round, l, bounds[l], got, want)
					return false
				}
			}
			reused.Reset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCursorsUnknownLabel(t *testing.T) {
	d := tgen.Star("r", "c", 3)
	ix := index.New(d)
	cur := ix.NewCursors()
	if got := cur.NextAfter(tree.LabelID(999), 0); got != index.Nil {
		t.Errorf("unknown label: %d", got)
	}
}
