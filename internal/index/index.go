// Package index implements the jumping tree index of §3.1.2 (Definition
// 3.2): given a document, it answers for any node π and finite label set L
//
//	Dt(π, L)      — first binary-tree descendant of π with label in L,
//	Ft(π, L, π0)  — first following node of π inside π0's binary subtree,
//	Lt(π, L)      — first labeled node on the leftmost binary path below π,
//	Rt(π, L)      — first labeled node on the rightmost binary path below π,
//
// plus O(1) global label counts and the bottom-most occurrences needed by
// the bottom-up algorithms (§3.2).
//
// All functions are over the first-child/next-sibling *binary* view of the
// document, because that is the tree the automata run on: the binary
// subtree of a node v is the contiguous preorder interval
// [v, LastDesc(Parent(v))] — v's own XML subtree plus everything under its
// following siblings. This interval property is what lets per-label sorted
// occurrence arrays answer Dt/Ft with one binary search per label in L,
// the Go stand-in for the paper's compressed-index jumps (see DESIGN.md).
package index

import (
	"sort"

	"repro/internal/labels"
	"repro/internal/tree"
)

// Nil mirrors the error node Ω of Definition 3.2.
const Nil = tree.Nil

// Index is an immutable jumping index over one document.
type Index struct {
	doc *tree.Document
	// occ[l] lists the nodes labeled l in preorder.
	occ [][]tree.NodeID
	// binEnd[v] is the last preorder node of v's *binary* subtree.
	binEnd []tree.NodeID
	// bottomMost[l] caches BottomMost answers, built lazily.
	bottomMost [][]tree.NodeID
	built      []bool
}

// New builds the index in O(n + Σ) time and space.
func New(d *tree.Document) *Index {
	n := d.NumNodes()
	sigma := d.Names().Size()
	ix := &Index{
		doc:        d,
		occ:        make([][]tree.NodeID, sigma),
		binEnd:     make([]tree.NodeID, n),
		bottomMost: make([][]tree.NodeID, sigma),
		built:      make([]bool, sigma),
	}
	counts := make([]int, sigma)
	for v := 0; v < n; v++ {
		counts[d.Label(tree.NodeID(v))]++
	}
	for l, c := range counts {
		ix.occ[l] = make([]tree.NodeID, 0, c)
	}
	for v := 0; v < n; v++ {
		node := tree.NodeID(v)
		ix.occ[d.Label(node)] = append(ix.occ[d.Label(node)], node)
		if p := d.Parent(node); p != tree.Nil {
			ix.binEnd[v] = d.LastDesc(p)
		} else {
			ix.binEnd[v] = tree.NodeID(n - 1)
		}
	}
	return ix
}

// Doc returns the indexed document.
func (ix *Index) Doc() *tree.Document { return ix.doc }

// Count returns the number of nodes labeled l; O(1) as in the paper's
// index ("our index provides the global count of a label in constant
// time", §5).
func (ix *Index) Count(l tree.LabelID) int {
	if int(l) >= len(ix.occ) {
		return 0
	}
	return len(ix.occ[l])
}

// CountSet returns the total occurrence count of a finite label set, and
// false for co-finite sets.
func (ix *Index) CountSet(L labels.Set) (int, bool) {
	ids, ok := L.Finite()
	if !ok {
		return 0, false
	}
	n := 0
	for _, l := range ids {
		n += ix.Count(l)
	}
	return n, true
}

// Occurrences returns the preorder-sorted nodes labeled l. The slice is
// shared; callers must not modify it.
func (ix *Index) Occurrences(l tree.LabelID) []tree.NodeID {
	if int(l) >= len(ix.occ) {
		return nil
	}
	return ix.occ[l]
}

// BinEnd returns the last preorder node of v's binary subtree.
func (ix *Index) BinEnd(v tree.NodeID) tree.NodeID { return ix.binEnd[v] }

// firstOccIn returns the first occurrence of label l in the preorder
// interval (after, end], or Nil.
func (ix *Index) firstOccIn(l tree.LabelID, after, end tree.NodeID) tree.NodeID {
	if int(l) >= len(ix.occ) {
		return Nil
	}
	occ := ix.occ[l]
	i := sort.Search(len(occ), func(i int) bool { return occ[i] > after })
	if i < len(occ) && occ[i] <= end {
		return occ[i]
	}
	return Nil
}

// firstIn returns the first node in (after, end] whose label is in L,
// which must be finite; the second result is false otherwise.
func (ix *Index) firstIn(L labels.Set, after, end tree.NodeID) (tree.NodeID, bool) {
	ids, ok := L.Finite()
	if !ok {
		return Nil, false
	}
	best := Nil
	for _, l := range ids {
		if u := ix.firstOccIn(l, after, end); u != Nil && (best == Nil || u < best) {
			best = u
		}
	}
	return best, true
}

// Dt is d_t(π, L): the first descendant of π in the binary tree (document
// order) whose label is in L, or Nil (Ω). L must be finite; ok is false
// otherwise (no jump possible for co-finite guards).
func (ix *Index) Dt(v tree.NodeID, L labels.Set) (tree.NodeID, bool) {
	return ix.firstIn(L, v, ix.binEnd[v])
}

// Ft is f_t(π, L, π0): the first following node of π (in the binary tree)
// whose label is in L and which is a binary descendant of π0, or Nil.
func (ix *Index) Ft(v tree.NodeID, L labels.Set, scope tree.NodeID) (tree.NodeID, bool) {
	return ix.firstIn(L, ix.binEnd[v], ix.binEnd[scope])
}

// Lt is l_t(π, L): the first node on the leftmost binary path strictly
// below π (i.e. π·1, π·1·1, ...; in XML terms the chain of first
// children) whose label is in L, or Nil. Paths are short (tree depth), so
// this walks the chain.
func (ix *Index) Lt(v tree.NodeID, L labels.Set) tree.NodeID {
	for u := ix.doc.FirstChild(v); u != tree.Nil; u = ix.doc.FirstChild(u) {
		if L.Contains(ix.doc.Label(u)) {
			return u
		}
	}
	return Nil
}

// Rt is r_t(π, L): the first node on the rightmost binary path strictly
// below π (π·2, π·2·2, ...; in XML terms the chain of following siblings)
// whose label is in L, or Nil. Sibling chains can be very long (that is
// precisely when jumping pays off), so instead of walking the chain this
// binary-searches the occurrence arrays and skips over intervening
// sibling subtrees: each iteration either answers or jumps past a sibling
// subtree containing a non-sibling occurrence.
func (ix *Index) Rt(v tree.NodeID, L labels.Set) tree.NodeID {
	p := ix.doc.Parent(v)
	if p == tree.Nil {
		return Nil // root has no siblings
	}
	ids, ok := L.Finite()
	if !ok {
		// Co-finite guard: fall back to walking the sibling chain.
		for u := ix.doc.NextSibling(v); u != tree.Nil; u = ix.doc.NextSibling(u) {
			if L.Contains(ix.doc.Label(u)) {
				return u
			}
		}
		return Nil
	}
	end := ix.doc.LastDesc(p)
	after := ix.doc.LastDesc(v) // skip v's own subtree
	for {
		best := Nil
		for _, l := range ids {
			if u := ix.firstOccIn(l, after, end); u != Nil && (best == Nil || u < best) {
				best = u
			}
		}
		if best == Nil {
			return Nil
		}
		if ix.doc.Parent(best) == p {
			return best // a true sibling of v
		}
		// best is buried inside some sibling's subtree; skip that
		// sibling entirely. The sibling is best's ancestor at v's depth.
		s := best
		for ix.doc.Parent(s) != p {
			s = ix.doc.Parent(s)
		}
		after = ix.doc.LastDesc(s)
	}
}

// TopMost returns, in document order, the top-most nodes with label in L
// within the binary subtree rooted at π: the nodes computed by
// π0 = Dt(π,L), π(n+1) = Ft(πn, L, π) in §3.1.2. ok is false for
// co-finite L. Single-label sets (the common case after compilation)
// walk the occurrence array with galloping advance — one binary search
// total instead of one per enumerated node.
func (ix *Index) TopMost(v tree.NodeID, L labels.Set) ([]tree.NodeID, bool) {
	ids, ok := L.Finite()
	if !ok {
		return nil, false
	}
	if len(ids) == 1 {
		return ix.topMostSingle(v, ids[0]), true
	}
	return ix.topMostMulti(v, ids), true
}

// TopMostEach enumerates the top-most L-labeled nodes of v's binary
// subtree in document order without allocating a result slice; the
// evaluator's hot jump path uses this. ok is false for co-finite L.
func (ix *Index) TopMostEach(v tree.NodeID, L labels.Set, fn func(tree.NodeID)) bool {
	ids, finite := L.Finite()
	if !finite {
		return false
	}
	end := ix.binEnd[v]
	// Fixed-size cursor array: compiled queries rarely have more than a
	// handful of essential labels; fall back to the allocating path
	// otherwise.
	const maxCursors = 8
	if len(ids) > maxCursors {
		for _, u := range ix.topMostMulti(v, ids) {
			fn(u)
		}
		return true
	}
	var occs [maxCursors][]tree.NodeID
	var idx [maxCursors]int
	n := 0
	for _, l := range ids {
		if int(l) >= len(ix.occ) {
			continue
		}
		occ := ix.occ[l]
		i := sort.Search(len(occ), func(k int) bool { return occ[k] > v })
		if i < len(occ) && occ[i] <= end {
			occs[n] = occ
			idx[n] = i
			n++
		}
	}
	if n == 0 {
		return true
	}
	for {
		best := Nil
		for c := 0; c < n; c++ {
			if idx[c] < len(occs[c]) && occs[c][idx[c]] <= end &&
				(best == Nil || occs[c][idx[c]] < best) {
				best = occs[c][idx[c]]
			}
		}
		if best == Nil {
			return true
		}
		fn(best)
		skip := ix.binEnd[best]
		for c := 0; c < n; c++ {
			lin := 0
			for idx[c] < len(occs[c]) && occs[c][idx[c]] <= skip {
				idx[c]++
				lin++
				if lin == 8 {
					rest := occs[c][idx[c]:]
					idx[c] += sort.Search(len(rest), func(k int) bool { return rest[k] > skip })
					break
				}
			}
		}
	}
}

// topMostMulti merges the occurrence arrays of several labels with one
// cursor each, advancing all cursors past each accepted node's binary
// subtree.
func (ix *Index) topMostMulti(v tree.NodeID, ids []tree.LabelID) []tree.NodeID {
	end := ix.binEnd[v]
	type cursor struct {
		occ []tree.NodeID
		i   int
	}
	cursors := make([]cursor, 0, len(ids))
	for _, l := range ids {
		if int(l) >= len(ix.occ) {
			continue
		}
		occ := ix.occ[l]
		i := sort.Search(len(occ), func(k int) bool { return occ[k] > v })
		if i < len(occ) && occ[i] <= end {
			cursors = append(cursors, cursor{occ, i})
		}
	}
	var out []tree.NodeID
	for {
		best := Nil
		for _, c := range cursors {
			if c.i < len(c.occ) && c.occ[c.i] <= end && (best == Nil || c.occ[c.i] < best) {
				best = c.occ[c.i]
			}
		}
		if best == Nil {
			return out
		}
		out = append(out, best)
		skip := ix.binEnd[best]
		for ci := range cursors {
			c := &cursors[ci]
			lin := 0
			for c.i < len(c.occ) && c.occ[c.i] <= skip {
				c.i++
				lin++
				if lin == 8 {
					rest := c.occ[c.i:]
					c.i += sort.Search(len(rest), func(k int) bool { return rest[k] > skip })
					break
				}
			}
		}
	}
}

func (ix *Index) topMostSingle(v tree.NodeID, l tree.LabelID) []tree.NodeID {
	if int(l) >= len(ix.occ) {
		return nil
	}
	occ := ix.occ[l]
	end := ix.binEnd[v]
	i := sort.Search(len(occ), func(k int) bool { return occ[k] > v })
	var out []tree.NodeID
	for i < len(occ) && occ[i] <= end {
		u := occ[i]
		out = append(out, u)
		// Skip occurrences inside u's binary subtree: linear advance
		// first (nested occurrences are rare), then gallop.
		skip := ix.binEnd[u]
		i++
		lin := 0
		for i < len(occ) && occ[i] <= skip {
			i++
			lin++
			if lin == 8 {
				rest := occ[i:]
				i += sort.Search(len(rest), func(k int) bool { return rest[k] > skip })
				break
			}
		}
	}
	return out
}

// BottomMost returns the nodes labeled l that have no XML descendant also
// labeled l, in document order. This is the starting frontier of the
// bottom-up algorithms (§3.2). Built lazily per label in O(count) time.
func (ix *Index) BottomMost(l tree.LabelID) []tree.NodeID {
	if int(l) >= len(ix.occ) {
		return nil
	}
	if ix.built[l] {
		return ix.bottomMost[l]
	}
	occ := ix.occ[l]
	var out []tree.NodeID
	for i, v := range occ {
		// v is bottom-most iff the next occurrence lies outside v's
		// subtree (occurrences are in preorder, so any descendant
		// occurrence would be the immediate successor range).
		if i+1 < len(occ) && occ[i+1] <= ix.doc.LastDesc(v) {
			continue
		}
		out = append(out, v)
	}
	ix.bottomMost[l] = out
	ix.built[l] = true
	return out
}

// AncestorWithLabel walks the parent chain from v (exclusive) and returns
// the nearest ancestor whose label is in L, or Nil. The paper's index has
// no upward jumps either ("it performs its upward part using only parent
// moves", §5), so this is a faithful parent-walk.
func (ix *Index) AncestorWithLabel(v tree.NodeID, L labels.Set) tree.NodeID {
	for u := ix.doc.Parent(v); u != tree.Nil; u = ix.doc.Parent(u) {
		if L.Contains(ix.doc.Label(u)) {
			return u
		}
	}
	return Nil
}
