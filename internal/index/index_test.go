package index_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/labels"
	"repro/internal/tgen"
	"repro/internal/tree"
)

// --- Naive oracles over the binary (fcns) view ---

// binDescendants lists the binary-tree descendants of v in document order
// (strictly below v: left subtree, then right subtree).
func binDescendants(d *tree.Document, v tree.NodeID) []tree.NodeID {
	var out []tree.NodeID
	var walk func(u tree.NodeID)
	walk = func(u tree.NodeID) {
		if u == tree.Nil {
			return
		}
		out = append(out, u)
		walk(d.BinaryLeft(u))
		walk(d.BinaryRight(u))
	}
	walk(d.BinaryLeft(v))
	walk(d.BinaryRight(v))
	return out
}

func naiveDt(d *tree.Document, v tree.NodeID, L labels.Set) tree.NodeID {
	for _, u := range binDescendants(d, v) {
		if L.Contains(d.Label(u)) {
			return u
		}
	}
	return tree.Nil
}

func naiveFt(d *tree.Document, v tree.NodeID, L labels.Set, scope tree.NodeID) tree.NodeID {
	// Following nodes of v within scope's binary subtree: binary
	// descendants of scope, in document order, after v's binary subtree.
	ds := binDescendants(d, scope)
	// v's binary subtree = v plus binDescendants(v).
	sub := map[tree.NodeID]bool{v: true}
	for _, u := range binDescendants(d, v) {
		sub[u] = true
	}
	started := false
	for _, u := range ds {
		if u == v {
			started = true
			continue
		}
		if !started || sub[u] {
			continue
		}
		if L.Contains(d.Label(u)) {
			return u
		}
	}
	return tree.Nil
}

func naiveLt(d *tree.Document, v tree.NodeID, L labels.Set) tree.NodeID {
	for u := d.BinaryLeft(v); u != tree.Nil; u = d.BinaryLeft(u) {
		if L.Contains(d.Label(u)) {
			return u
		}
	}
	return tree.Nil
}

func naiveRt(d *tree.Document, v tree.NodeID, L labels.Set) tree.NodeID {
	for u := d.BinaryRight(v); u != tree.Nil; u = d.BinaryRight(u) {
		if L.Contains(d.Label(u)) {
			return u
		}
	}
	return tree.Nil
}

func randomLabelSet(rng *rand.Rand, d *tree.Document) labels.Set {
	sigma := d.Names().Size()
	n := 1 + rng.Intn(2)
	ids := make([]tree.LabelID, n)
	for i := range ids {
		ids[i] = tree.LabelID(rng.Intn(sigma))
	}
	return labels.Of(ids...)
}

func TestJumpFunctionsAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := tgen.Random(seed, tgen.Config{MaxNodes: 120, Labels: []string{"a", "b", "c"}})
		ix := index.New(d)
		for trial := 0; trial < 30; trial++ {
			v := tree.NodeID(rng.Intn(d.NumNodes()))
			L := randomLabelSet(rng, d)
			if got, ok := ix.Dt(v, L); !ok || got != naiveDt(d, v, L) {
				return false
			}
			if got := ix.Lt(v, L); got != naiveLt(d, v, L) {
				return false
			}
			if got := ix.Rt(v, L); got != naiveRt(d, v, L) {
				return false
			}
			// Ft with a random scope that binarily contains v.
			scope := v
			if p := d.Parent(v); p != tree.Nil && rng.Intn(2) == 0 {
				scope = p
			}
			if got, ok := ix.Ft(v, L, scope); !ok || got != naiveFt(d, v, L, scope) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRtCofiniteFallback(t *testing.T) {
	d := tgen.Random(4, tgen.Config{MaxNodes: 150, Labels: []string{"a", "b", "c"}})
	ix := index.New(d)
	rng := rand.New(rand.NewSource(8))
	aID, _ := d.Names().Lookup("a")
	L := labels.Not(aID)
	for trial := 0; trial < 50; trial++ {
		v := tree.NodeID(rng.Intn(d.NumNodes()))
		if got := ix.Rt(v, L); got != naiveRt(d, v, L) {
			t.Fatalf("Rt(%d, Σ\\{a}) = %d, want %d", v, got, naiveRt(d, v, L))
		}
	}
}

func TestCount(t *testing.T) {
	d := tgen.Star("r", "c", 9)
	ix := index.New(d)
	c, _ := d.Names().Lookup("c")
	r, _ := d.Names().Lookup("r")
	if ix.Count(c) != 9 || ix.Count(r) != 1 {
		t.Errorf("Count wrong: c=%d r=%d", ix.Count(c), ix.Count(r))
	}
	if n, ok := ix.CountSet(labels.Of(c, r)); !ok || n != 10 {
		t.Errorf("CountSet = %d,%v", n, ok)
	}
	if _, ok := ix.CountSet(labels.Not(c)); ok {
		t.Errorf("CountSet of co-finite set should fail")
	}
	if ix.Count(tree.LabelID(999)) != 0 {
		t.Errorf("Count of unknown label should be 0")
	}
}

func TestOccurrencesSorted(t *testing.T) {
	d := tgen.Random(11, tgen.Config{MaxNodes: 300})
	ix := index.New(d)
	for l := tree.LabelID(0); int(l) < d.Names().Size(); l++ {
		occ := ix.Occurrences(l)
		for i := 1; i < len(occ); i++ {
			if occ[i-1] >= occ[i] {
				t.Fatalf("occurrences of label %d not strictly sorted", l)
			}
		}
		if len(occ) != d.CountLabel(l) {
			t.Fatalf("occurrence count mismatch for label %d", l)
		}
	}
}

func TestTopMost(t *testing.T) {
	// <r><a><a/><b/></a><c><a/></c></r>: top-most a's under r's binary
	// subtree are the first a (child of r) and the a under c.
	src := tree.NewBuilder()
	src.Open("r")
	src.Open("a")
	src.Open("a")
	src.Close()
	src.Open("b")
	src.Close()
	src.Close()
	src.Open("c")
	src.Open("a")
	src.Close()
	src.Close()
	src.Close()
	d := src.MustFinish()
	ix := index.New(d)
	a, _ := d.Names().Lookup("a")
	r := d.DocumentElement()
	// Binary-subtree semantics: the first a-child of r has the c-subtree
	// in its *binary* subtree (siblings are binary descendants), so it is
	// the single top-most a.
	tm, ok := ix.TopMost(r, labels.Of(a))
	if !ok || len(tm) != 1 {
		t.Fatalf("TopMost(r) = %v, %v; want exactly the first a", tm, ok)
	}
	if d.Parent(tm[0]) != r || d.LabelName(tm[0]) != "a" {
		t.Errorf("top-most a should be the a-child of r")
	}
	// From that a, the binary subtree spans its own XML subtree plus its
	// following sibling c's subtree: top-most a's are the nested a and
	// the a under c.
	tm2, _ := ix.TopMost(tm[0], labels.Of(a))
	if len(tm2) != 2 {
		t.Fatalf("TopMost(a) = %v, want 2 nodes", tm2)
	}
	if d.Parent(tm2[0]) != tm[0] {
		t.Errorf("first should be the nested a")
	}
	if d.LabelName(d.Parent(tm2[1])) != "c" {
		t.Errorf("second should be the a under c")
	}
}

// Property: TopMost returns exactly the L-labeled binary descendants with
// no L-labeled proper binary ancestor below the scope root.
func TestTopMostProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := tgen.Random(seed, tgen.Config{MaxNodes: 100, Labels: []string{"a", "b"}})
		ix := index.New(d)
		v := tree.NodeID(rng.Intn(d.NumNodes()))
		aID, ok := d.Names().Lookup("a")
		if !ok {
			return true
		}
		L := labels.Of(aID)
		got, _ := ix.TopMost(v, L)
		// Oracle: walk binary tree from v, stop descending at matches.
		var want []tree.NodeID
		var walk func(u tree.NodeID)
		walk = func(u tree.NodeID) {
			if u == tree.Nil {
				return
			}
			if L.Contains(d.Label(u)) {
				want = append(want, u)
				return
			}
			walk(d.BinaryLeft(u))
			walk(d.BinaryRight(u))
		}
		walk(d.BinaryLeft(v))
		walk(d.BinaryRight(v))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBottomMost(t *testing.T) {
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{MaxNodes: 150, Labels: []string{"a", "b"}})
		ix := index.New(d)
		aID, ok := d.Names().Lookup("a")
		if !ok {
			return true
		}
		got := ix.BottomMost(aID)
		// Oracle: an a-node with no a-descendant.
		var want []tree.NodeID
		for _, v := range ix.Occurrences(aID) {
			hasBelow := false
			for u := v + 1; u <= d.LastDesc(v); u++ {
				if d.Label(u) == aID {
					hasBelow = true
					break
				}
			}
			if !hasBelow {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	// Cached second call returns the same slice.
	d := tgen.Star("r", "a", 3)
	ix := index.New(d)
	aID, _ := d.Names().Lookup("a")
	first := ix.BottomMost(aID)
	second := ix.BottomMost(aID)
	if len(first) != 3 || len(second) != 3 {
		t.Errorf("BottomMost on star wrong: %v", first)
	}
}

func TestAncestorWithLabel(t *testing.T) {
	b := tree.NewBuilder()
	b.Open("r")
	b.Open("a")
	b.Open("b")
	x := b.Open("x")
	b.Close()
	b.Close()
	b.Close()
	b.Close()
	d := b.MustFinish()
	ix := index.New(d)
	a, _ := d.Names().Lookup("a")
	r, _ := d.Names().Lookup("r")
	if got := ix.AncestorWithLabel(x, labels.Of(a)); d.Label(got) != a {
		t.Errorf("nearest a-ancestor wrong")
	}
	if got := ix.AncestorWithLabel(x, labels.Of(r)); d.Label(got) != r {
		t.Errorf("nearest r-ancestor wrong")
	}
	z := d.Names().Intern("z")
	if got := ix.AncestorWithLabel(x, labels.Of(z)); got != tree.Nil {
		t.Errorf("missing ancestor should be Nil, got %d", got)
	}
}

func TestBinEnd(t *testing.T) {
	d := tgen.Random(21, tgen.Config{MaxNodes: 80})
	ix := index.New(d)
	for v := tree.NodeID(0); int(v) < d.NumNodes(); v++ {
		ds := binDescendants(d, v)
		want := v
		for _, u := range ds {
			if u > want {
				want = u
			}
		}
		if got := ix.BinEnd(v); got != want {
			t.Fatalf("BinEnd(%d) = %d, want %d", v, got, want)
		}
	}
}

func BenchmarkDt(b *testing.B) {
	d := tgen.Random(1, tgen.Config{MaxNodes: 100000, Labels: []string{"a", "b", "c", "d", "e"}})
	ix := index.New(d)
	aID, _ := d.Names().Lookup("a")
	L := labels.Of(aID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ix.Dt(tree.NodeID(i%d.NumNodes()), L)
	}
}

func BenchmarkRtSkipping(b *testing.B) {
	// Wide sibling list where the target label is rare and far right:
	// the skip-based Rt must not scan all siblings.
	bu := tree.NewBuilder()
	bu.Open("r")
	for i := 0; i < 100000; i++ {
		bu.Open("filler")
		bu.Open("x")
		bu.Close()
		bu.Close()
	}
	bu.Open("goal")
	bu.Close()
	bu.Close()
	d := bu.MustFinish()
	ix := index.New(d)
	g, _ := d.Names().Lookup("goal")
	first := d.FirstChild(d.DocumentElement())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ix.Rt(first, labels.Of(g)); got == tree.Nil {
			b.Fatal("goal not found")
		}
	}
}
