package index

import (
	"fmt"

	"repro/internal/tree"
)

// XQO2 sections for the jumping index. The per-label occurrence lists are
// stored as one concatenated preorder array plus a cumulative offset
// directory, so opening a mapped file rebuilds only the sigma slice
// headers — the occurrence data itself is aliased in place. The lazy
// BottomMost cache is not serialized; it rebuilds on demand as usual.
//
// Section kinds 32+ belong to this package (tree owns kinds below 32).
const (
	SecOccOff uint32 = 32 // []uint64, len sigma+1: cumulative occurrence offsets
	SecOccAll uint32 = 33 // []NodeID: all occurrence lists, concatenated by label
	SecBinEnd uint32 = 34 // []NodeID, len numNodes: binary-subtree ends
)

// AddSections serializes ix into w. The binEnd and occurrence arrays are
// aliased, not copied; only the offset directory is materialized.
func AddSections(w *tree.LayoutWriter, ix *Index) {
	occOff := make([]uint64, 0, len(ix.occ)+1)
	total := 0
	for _, occ := range ix.occ {
		occOff = append(occOff, uint64(total))
		total += len(occ)
	}
	occOff = append(occOff, uint64(total))
	occAll := make([]tree.NodeID, 0, total)
	for _, occ := range ix.occ {
		occAll = append(occAll, occ...)
	}
	w.Add(SecOccOff, tree.SliceBytes(occOff))
	w.Add(SecOccAll, tree.SliceBytes(occAll))
	w.Add(SecBinEnd, tree.SliceBytes(ix.binEnd))
}

// FromLayout reassembles the index for d from an opened container. Every
// occ[l] is a subslice of the mapped occurrence section; d must be the
// document opened from the same container (the occurrence node ids and
// binEnd values are validated against it).
func FromLayout(l *tree.Layout, d *tree.Document) (*Index, error) {
	n := d.NumNodes()
	sigma := d.Names().Size()
	occOffBytes := l.Section(SecOccOff)
	occOff, err := tree.AliasSlice[uint64](occOffBytes)
	if err != nil {
		return nil, fmt.Errorf("index: xqo2 occ offsets: %w", err)
	}
	if len(occOff) != sigma+1 {
		return nil, fmt.Errorf("index: xqo2: %d occ offsets for %d labels", len(occOff), sigma)
	}
	occAll, err := tree.AliasSlice[tree.NodeID](l.Section(SecOccAll))
	if err != nil {
		return nil, fmt.Errorf("index: xqo2 occurrences: %w", err)
	}
	// Every node occurs exactly once across all lists.
	if occOff[sigma] != uint64(len(occAll)) || len(occAll) != n {
		return nil, fmt.Errorf("index: xqo2: %d occurrences for %d nodes", len(occAll), n)
	}
	binEnd, err := tree.AliasSlice[tree.NodeID](l.Section(SecBinEnd))
	if err != nil {
		return nil, fmt.Errorf("index: xqo2 binEnd: %w", err)
	}
	if len(binEnd) != n {
		return nil, fmt.Errorf("index: xqo2: %d binEnd entries for %d nodes", len(binEnd), n)
	}
	ix := &Index{
		doc:        d,
		occ:        make([][]tree.NodeID, sigma),
		binEnd:     binEnd,
		bottomMost: make([][]tree.NodeID, sigma),
		built:      make([]bool, sigma),
	}
	// Per-label shape checks here are O(sigma): the offset directory must
	// be monotone within bounds, and each non-empty list's head must
	// actually carry the label — a cheap spot check that catches a
	// mis-paired occurrence section. Element-wise validation (every
	// occurrence strictly increasing and in range) is the opt-in
	// VerifyStructure pass; the default open trusts checksummed content.
	for lab := 0; lab < sigma; lab++ {
		lo, hi := occOff[lab], occOff[lab+1]
		if lo > hi || hi > uint64(len(occAll)) {
			return nil, fmt.Errorf("index: xqo2: label %d occ range [%d,%d) invalid", lab, lo, hi)
		}
		if hi > lo {
			if u := occAll[lo]; int(u) < n && d.Label(u) != tree.LabelID(lab) {
				return nil, fmt.Errorf("index: xqo2: label %d occurrence list starts at node %d carrying label %d", lab, u, d.Label(u))
			}
		}
		ix.occ[lab] = occAll[lo:hi:hi]
	}
	return ix, nil
}

// VerifyStructure runs the element-wise validation the zero-copy open
// skips by default: binEnd forming valid [v, n) intervals and every
// occurrence list strictly increasing within [0, n). See
// tree.Document.VerifyStructure for the trust model — this is the
// defense for files from outside this process, where a crafted value
// that passes the checksums would otherwise panic a later query.
func (ix *Index) VerifyStructure() error {
	n := ix.doc.NumNodes()
	binEnd := ix.binEnd
	// binEnd[v] must lie in [v, n): branchless OR/AND folds (sign of
	// binEnd[v]-v, sign of the raw value, AND of binEnd[v]-n), unrolled
	// four ways with independent accumulators so the 1-cycle fold chains
	// don't cap the scan; re-scan for the offending node on failure.
	var u0, u1, u2, u3 uint32
	a0, a1, a2, a3 := ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0)
	v := 0
	for ; v+4 <= len(binEnd); v += 4 {
		e0, e1, e2, e3 := binEnd[v], binEnd[v+1], binEnd[v+2], binEnd[v+3]
		u0 |= uint32(int32(e0)-int32(v)) | uint32(e0)
		a0 &= uint32(e0) - uint32(n)
		u1 |= uint32(int32(e1)-int32(v)-1) | uint32(e1)
		a1 &= uint32(e1) - uint32(n)
		u2 |= uint32(int32(e2)-int32(v)-2) | uint32(e2)
		a2 &= uint32(e2) - uint32(n)
		u3 |= uint32(int32(e3)-int32(v)-3) | uint32(e3)
		a3 &= uint32(e3) - uint32(n)
	}
	for ; v < len(binEnd); v++ {
		u0 |= uint32(int32(binEnd[v])-int32(v)) | uint32(binEnd[v])
		a0 &= uint32(binEnd[v]) - uint32(n)
	}
	if (u0|u1|u2|u3)>>31 != 0 || (len(binEnd) > 0 && (a0&a1&a2&a3)>>31 == 0) {
		for v, e := range binEnd {
			if int(e) < v || int(e) >= n {
				return fmt.Errorf("index: xqo2: node %d binEnd %d out of range", v, e)
			}
		}
	}
	for lab, occ := range ix.occ {
		// Strictly increasing within [0, n): OR-fold the sign of each
		// step u[i]-u[i-1]-1 (catches non-increase; the first element
		// folds its own sign bit to catch negatives) and AND-fold u-n
		// (clear top bit means some u >= n). Each step only depends on
		// two loads, so the four lanes run independently; re-scan with
		// branches only on failure.
		var b0, b1, b2, b3 uint32
		c0, c1, c2, c3 := ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0)
		if len(occ) > 0 {
			b0 |= uint32(occ[0])
			c0 &= uint32(occ[0]) - uint32(n)
			i := 1
			for ; i+4 <= len(occ); i += 4 {
				b0 |= uint32(int32(occ[i]) - int32(occ[i-1]) - 1)
				c0 &= uint32(occ[i]) - uint32(n)
				b1 |= uint32(int32(occ[i+1]) - int32(occ[i]) - 1)
				c1 &= uint32(occ[i+1]) - uint32(n)
				b2 |= uint32(int32(occ[i+2]) - int32(occ[i+1]) - 1)
				c2 &= uint32(occ[i+2]) - uint32(n)
				b3 |= uint32(int32(occ[i+3]) - int32(occ[i+2]) - 1)
				c3 &= uint32(occ[i+3]) - uint32(n)
			}
			for ; i < len(occ); i++ {
				b0 |= uint32(int32(occ[i]) - int32(occ[i-1]) - 1)
				c0 &= uint32(occ[i]) - uint32(n)
			}
		}
		if (b0|b1|b2|b3)>>31 != 0 || (len(occ) > 0 && (c0&c1&c2&c3)>>31 == 0) {
			p := -1
			for _, u := range occ {
				if int(u) >= n || int(u) <= p {
					return fmt.Errorf("index: xqo2: label %d occurrence %d invalid", lab, u)
				}
				p = int(u)
			}
		}
	}
	return nil
}
