package index

import (
	"sort"

	"repro/internal/tree"
)

// Apply derives the jumping index of a patched document from its parent
// generation's index and the splice Delta, without re-scanning the
// whole document. Occurrence lists are per-label sorted preorder
// arrays, and a subtree patch is one contiguous preorder splice, so
// each list updates with two binary searches plus a shifted copy; only
// binEnd — whose entries depend on parent lastDesc values that the
// splice moves — is rebuilt, in one linear pass over the already-built
// arrays of the new document (no label counting, no per-label append
// loop). BottomMost caches are dropped and rebuilt lazily as before.
func Apply(old *Index, newDoc *tree.Document, dl *tree.Delta) *Index {
	n := newDoc.NumNodes()
	sigma := newDoc.Names().Size()
	ix := &Index{
		doc:        newDoc,
		occ:        make([][]tree.NodeID, sigma),
		binEnd:     make([]tree.NodeID, n),
		bottomMost: make([][]tree.NodeID, sigma),
		built:      make([]bool, sigma),
	}
	var (
		q     = dl.At
		cut   = dl.At + tree.NodeID(dl.Removed)
		delta = tree.NodeID(dl.Inserted - dl.Removed)
	)
	// Occurrences of the grafted interval [q, q+Inserted), gathered from
	// the new document's label array (already remapped into the patched
	// label table by the splice).
	var inserted map[tree.LabelID][]tree.NodeID
	if dl.Inserted > 0 {
		inserted = make(map[tree.LabelID][]tree.NodeID)
		for v := q; v < q+tree.NodeID(dl.Inserted); v++ {
			l := newDoc.Label(v)
			inserted[l] = append(inserted[l], v)
		}
	}
	for l := 0; l < sigma; l++ {
		var occ []tree.NodeID
		if l < len(old.occ) {
			occ = old.occ[l]
		}
		// The removed interval [q, cut) occupies one contiguous run of
		// each sorted occurrence list.
		lo := sort.Search(len(occ), func(i int) bool { return occ[i] >= q })
		hi := lo + sort.Search(len(occ[lo:]), func(i int) bool { return occ[lo:][i] >= cut })
		ins := inserted[tree.LabelID(l)]
		out := make([]tree.NodeID, 0, lo+len(ins)+len(occ)-hi)
		out = append(out, occ[:lo]...)
		out = append(out, ins...)
		for _, v := range occ[hi:] {
			out = append(out, v+delta)
		}
		ix.occ[l] = out
	}
	// binEnd[v] = LastDesc(Parent(v)) is a pure function of the new
	// document's parent/lastDesc arrays; deriving it beats patching the
	// old values because suffix entries can reference prefix parents
	// whose lastDesc moved.
	for v := 0; v < n; v++ {
		node := tree.NodeID(v)
		if p := newDoc.Parent(node); p != tree.Nil {
			ix.binEnd[v] = newDoc.LastDesc(p)
		} else {
			ix.binEnd[v] = tree.NodeID(n - 1)
		}
	}
	return ix
}
