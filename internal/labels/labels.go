// Package labels implements finite and co-finite label sets over the
// document alphabet Σ. Automaton transitions guard on sets like {a} or
// Σ\{a} (see Example 2.1 of the paper); representing the complement
// symbolically keeps transitions independent of the concrete alphabet and
// makes "essential label" computations (§3.1.1) exact: a set is jumpable
// only when its positive enumeration is finite.
package labels

import (
	"sort"
	"strings"

	"repro/internal/tree"
)

// Set is an immutable set of labels: either a finite set {ids...} or a
// co-finite set Σ\{ids...}. The zero value is the empty set.
type Set struct {
	neg bool
	ids []tree.LabelID // sorted, unique
}

// None is the empty set.
var None = Set{}

// Any is the full alphabet Σ.
var Any = Set{neg: true}

// Of builds the finite set of the given labels.
func Of(ids ...tree.LabelID) Set {
	return Set{ids: normalize(ids)}
}

// Not builds the co-finite set Σ minus the given labels.
func Not(ids ...tree.LabelID) Set {
	return Set{neg: true, ids: normalize(ids)}
}

func normalize(ids []tree.LabelID) []tree.LabelID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]tree.LabelID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Contains reports whether l is in the set.
func (s Set) Contains(l tree.LabelID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= l })
	found := i < len(s.ids) && s.ids[i] == l
	return found != s.neg
}

// IsEmpty reports whether the set is the empty set. A co-finite set is
// never considered empty (the alphabet is unbounded from the set's point
// of view; concrete emptiness against a document alphabet is the caller's
// concern).
func (s Set) IsEmpty() bool { return !s.neg && len(s.ids) == 0 }

// IsAny reports whether the set is all of Σ.
func (s Set) IsAny() bool { return s.neg && len(s.ids) == 0 }

// SizeBytes estimates the heap footprint of the set (value header plus
// backing label slice); byte-weighted caches of automata that embed
// sets sum it into their entry weights.
func (s Set) SizeBytes() int64 { return 32 + 4*int64(len(s.ids)) }

// Finite reports whether the set is finite, and if so returns its
// elements in sorted order. Jumping functions require finite sets.
func (s Set) Finite() ([]tree.LabelID, bool) {
	if s.neg {
		return nil, false
	}
	return s.ids, true
}

// Negated reports whether the set is represented as a complement, and
// returns the excluded labels.
func (s Set) Negated() ([]tree.LabelID, bool) {
	if !s.neg {
		return nil, false
	}
	return s.ids, true
}

// Complement returns Σ \ s.
func (s Set) Complement() Set {
	return Set{neg: !s.neg, ids: s.ids}
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	switch {
	case !s.neg && !t.neg:
		return Set{ids: mergeUnion(s.ids, t.ids)}
	case s.neg && t.neg:
		return Set{neg: true, ids: mergeIntersect(s.ids, t.ids)}
	case s.neg: // (Σ\A) ∪ B = Σ \ (A\B)
		return Set{neg: true, ids: mergeMinus(s.ids, t.ids)}
	default:
		return Set{neg: true, ids: mergeMinus(t.ids, s.ids)}
	}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	switch {
	case !s.neg && !t.neg:
		return Set{ids: mergeIntersect(s.ids, t.ids)}
	case s.neg && t.neg:
		return Set{neg: true, ids: mergeUnion(s.ids, t.ids)}
	case s.neg: // (Σ\A) ∩ B = B \ A
		return Set{ids: mergeMinus(t.ids, s.ids)}
	default:
		return Set{ids: mergeMinus(s.ids, t.ids)}
	}
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s.Intersect(t.Complement()) }

// Equal reports set equality (as symbolic sets; a finite set never equals
// a co-finite one).
func (s Set) Equal(t Set) bool {
	if s.neg != t.neg || len(s.ids) != len(t.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != t.ids[i] {
			return false
		}
	}
	return true
}

// Overlaps reports whether s ∩ t is non-empty as a symbolic set (two
// co-finite sets always overlap).
func (s Set) Overlaps(t Set) bool {
	x := s.Intersect(t)
	return x.neg || len(x.ids) > 0
}

// String renders the set against a label table; nil table prints ids.
func (s Set) String(lt *tree.LabelTable) string {
	var sb strings.Builder
	if s.neg {
		if len(s.ids) == 0 {
			return "Σ"
		}
		sb.WriteString("Σ\\")
	}
	sb.WriteByte('{')
	for i, id := range s.ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		if lt != nil {
			sb.WriteString(lt.Name(id))
		} else {
			sb.WriteString(itoa(int(id)))
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func mergeUnion(a, b []tree.LabelID) []tree.LabelID {
	out := make([]tree.LabelID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func mergeIntersect(a, b []tree.LabelID) []tree.LabelID {
	var out []tree.LabelID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func mergeMinus(a, b []tree.LabelID) []tree.LabelID {
	var out []tree.LabelID
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}
