package labels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// evalAgainstUniverse materializes a symbolic set against a concrete
// alphabet [0, sigma) for oracle comparisons.
func materialize(s Set, sigma int) map[tree.LabelID]bool {
	m := make(map[tree.LabelID]bool)
	for l := tree.LabelID(0); int(l) < sigma; l++ {
		if s.Contains(l) {
			m[l] = true
		}
	}
	return m
}

func randomSet(rng *rand.Rand, sigma int) Set {
	n := rng.Intn(4)
	ids := make([]tree.LabelID, n)
	for i := range ids {
		ids[i] = tree.LabelID(rng.Intn(sigma))
	}
	if rng.Intn(2) == 0 {
		return Of(ids...)
	}
	return Not(ids...)
}

func TestBasics(t *testing.T) {
	s := Of(3, 1, 3, 2)
	if !s.Contains(1) || !s.Contains(2) || !s.Contains(3) || s.Contains(0) {
		t.Errorf("membership wrong: %v", s)
	}
	ids, ok := s.Finite()
	if !ok || len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("Finite() = %v, %v (dedup/sort failed)", ids, ok)
	}
	if None.Contains(0) || !None.IsEmpty() {
		t.Errorf("None misbehaves")
	}
	if !Any.Contains(42) || !Any.IsAny() {
		t.Errorf("Any misbehaves")
	}
	n := Not(5)
	if n.Contains(5) || !n.Contains(4) {
		t.Errorf("Not misbehaves")
	}
	if _, ok := n.Finite(); ok {
		t.Errorf("co-finite set claims to be finite")
	}
	if ex, ok := n.Negated(); !ok || len(ex) != 1 || ex[0] != 5 {
		t.Errorf("Negated() wrong")
	}
}

func TestComplementInvolution(t *testing.T) {
	s := Of(1, 2)
	if !s.Complement().Complement().Equal(s) {
		t.Errorf("double complement is not identity")
	}
	if !Any.Complement().Equal(None) {
		t.Errorf("¬Σ != ∅")
	}
}

// Property: all boolean operations agree with a concrete-universe oracle.
func TestAlgebraAgainstOracle(t *testing.T) {
	const sigma = 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSet(rng, sigma)
		b := randomSet(rng, sigma)
		ma, mb := materialize(a, sigma), materialize(b, sigma)
		union := materialize(a.Union(b), sigma)
		inter := materialize(a.Intersect(b), sigma)
		minus := materialize(a.Minus(b), sigma)
		comp := materialize(a.Complement(), sigma)
		for l := tree.LabelID(0); int(l) < sigma; l++ {
			if union[l] != (ma[l] || mb[l]) {
				return false
			}
			if inter[l] != (ma[l] && mb[l]) {
				return false
			}
			if minus[l] != (ma[l] && !mb[l]) {
				return false
			}
			if comp[l] != !ma[l] {
				return false
			}
		}
		// Overlaps consistency (within this universe overlapping implies
		// symbolic Overlaps; the converse can differ for co-finite sets
		// excluded entirely by a tiny universe, so only check one way).
		concrete := false
		for l := range inter {
			_ = l
			concrete = true
			break
		}
		if concrete && !a.Overlaps(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	if !Of(1, 2).Equal(Of(2, 1)) {
		t.Errorf("order-insensitive equality failed")
	}
	if Of(1).Equal(Not(1)) {
		t.Errorf("finite equals co-finite")
	}
	if Of(1).Equal(Of(1, 2)) {
		t.Errorf("different sizes equal")
	}
}

func TestString(t *testing.T) {
	lt := tree.NewLabelTable()
	a := lt.Intern("a")
	b := lt.Intern("b")
	if got := Of(a, b).String(lt); got != "{a,b}" {
		t.Errorf("String = %q", got)
	}
	if got := Not(a).String(lt); got != "Σ\\{a}" {
		t.Errorf("String = %q", got)
	}
	if got := Any.String(nil); got != "Σ" {
		t.Errorf("String = %q", got)
	}
	if got := Of(a).String(nil); got != "{2}" {
		t.Errorf("String(nil) = %q", got)
	}
}

func TestDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSet(rng, 6)
		b := randomSet(rng, 6)
		lhs := a.Union(b).Complement()
		rhs := a.Complement().Intersect(b.Complement())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
