// Package lint is a self-contained static-analysis framework in the
// style of golang.org/x/tools/go/analysis, built only on the standard
// library (the build environment is offline, so x/tools itself is not
// available). It typechecks the module with go/types using the source
// importer and runs a registered suite of analyzers over every
// package; cmd/xpqlint is the command-line driver and
// internal/lint/linttest replays analysistest-style fixtures with
// `// want "regexp"` expectations.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Run inspects a single
// typechecked package through its Pass and reports diagnostics; the
// return value is unused (kept for symmetry with go/analysis so the
// analyzers port forward if x/tools ever lands in the build image).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Dir       string // package directory on disk (for sibling-file reads)

	diags *[]Diagnostic
}

// A Diagnostic is one finding, with its position already resolved so
// results can be sorted and printed without the originating FileSet.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// PathHasSuffix reports whether the package's import path equals
// suffix or ends in "/"+suffix. Analyzers use it so the same config
// matches both real module packages ("repro/internal/store") and the
// short fixture paths linttest loads ("store").
func (p *Pass) PathHasSuffix(suffix string) bool {
	return PathHasSuffix(p.Pkg.Path(), suffix)
}

// PathHasSuffix is the package-level form of Pass.PathHasSuffix, for
// matching import paths of *other* packages (e.g. the package that
// defines a type under scrutiny).
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// ignoreRx matches suppression directives:
//
//	// xpqlint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line above it. The reason is
// mandatory — a bare ignore keeps firing.
var ignoreRx = regexp.MustCompile(`//\s*xpqlint:ignore\s+([a-z]+)\s+\S`)

// suppressed filters diags, dropping any whose position is covered by
// an xpqlint:ignore directive for that analyzer in files.
func suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// (file, line) pairs holding an ignore directive, per analyzer.
	type key struct {
		file string
		line int
		name string
	}
	ignores := map[key]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				ignores[key{pos.Filename, pos.Line, m[1]}] = true
				ignores[key{pos.Filename, pos.Line + 1, m[1]}] = true
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignores[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}

// Run applies every analyzer to every package and returns the merged
// findings in (file, line, column, analyzer) order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dir:       pkg.Dir,
				diags:     &diags,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		all = append(all, suppress(pkg.Fset, pkg.Files, diags)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}
