// Package arenaescape guards the lifetime discipline of the pooled
// evaluation-context arenas. Slices carved from a sliceArena (and
// entries handed out by tiStore/openTable) are valid only until the
// owning context's next Reset: the arena recycles the backing array in
// place. Any carved value that outlives the evaluation therefore reads
// recycled memory. The analyzer tracks locals initialized from
// carve/carveFull/copyOf/new calls (and locals re-sliced from them)
// and reports the three ways such a value can outlive its Reset:
//
//   - returned from an exported function or method (callers are
//     outside the arena's package and cannot see the Reset)
//   - stored into a package-level variable
//   - captured by a closure, or stored into a field of a type declared
//     outside the arena's package (both may be retained indefinitely)
//
// Unexported helpers returning carved memory to their in-package
// callers are the arena plumbing itself and stay legal.
//
// The same discipline covers slices aliased from an mmapx.Mapping via
// Data(): such a slice is backed by file pages that the runtime unmaps
// once the Mapping is unreachable, so a bare slice parked in a
// package-level variable, an exported return or a long-lived closure can
// dangle. Structures that retain the Mapping alongside the aliased
// arrays (the XQO2 zero-copy open path) hand the slice straight into a
// constructor call, which launders it — the callee owns keeping the
// Mapping reachable.
package arenaescape

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "arenaescape",
	Doc:  "arena-carved values must not escape their Reset lifetime",
	Run:  run,
}

// arena method sets that hand out lifetime-scoped storage: the pooled
// evaluation arenas (valid until Reset) and read-only mappings (valid
// while the Mapping is reachable).
var arenaTypes = map[string]bool{"sliceArena": true, "tiStore": true, "openTable": true, "Mapping": true}
var carveFns = map[string]bool{"carve": true, "carveFull": true, "copyOf": true, "new": true, "Data": true}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exported := fd.Name.IsExported()
			w := &escWalker{pass: pass, exported: exported, fn: fd.Name.Name, tracked: map[types.Object]bool{}}
			w.scan(fd.Body)
		}
	}
	return nil, nil
}

type escWalker struct {
	pass     *lint.Pass
	exported bool
	fn       string
	tracked  map[types.Object]bool
}

// isCarve reports whether call hands out arena storage.
func (w *escWalker) isCarve(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !carveFns[sel.Sel.Name] {
		return false
	}
	t := w.pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && arenaTypes[named.Obj().Name()]
}

func (w *escWalker) scan(body *ast.BlockStmt) {
	// Pass 1: find carved locals, propagating through plain re-slices
	// and aliases (x := carved[2:5]) until a fixpoint.
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := w.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = w.pass.TypesInfo.Uses[id]
					}
					if obj == nil || w.tracked[obj] {
						continue
					}
					if w.carvedExpr(rhs) {
						w.tracked[obj] = true
						grew = true
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i >= len(n.Names) {
						break
					}
					obj := w.pass.TypesInfo.Defs[n.Names[i]]
					if obj == nil || w.tracked[obj] {
						continue
					}
					if w.carvedExpr(v) {
						w.tracked[obj] = true
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	if len(w.tracked) == 0 {
		return
	}

	// Pass 2: report escapes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if !w.exported {
				return true
			}
			for _, r := range n.Results {
				if obj := w.trackedIn(r); obj != nil {
					w.pass.Reportf(n.Return, "arena-carved value %q escapes via return from exported %s: the backing array is recycled at the next Reset", obj.Name(), w.fn)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				obj := w.trackedIn(rhs)
				if obj == nil {
					continue
				}
				w.checkStore(n.Lhs[i], obj)
			}
		case *ast.FuncLit:
			for obj := range w.tracked {
				if usesObject(w.pass, n.Body, obj) {
					w.pass.Reportf(n.Pos(), "arena-carved value %q captured by a closure that may outlive the arena Reset", obj.Name())
				}
			}
			return false
		}
		return true
	})
}

// carvedExpr reports whether e yields arena storage: a carve call, or
// a slice/index of an already-tracked value.
func (w *escWalker) carvedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		return w.isCarve(e)
	case *ast.SliceExpr:
		return w.trackedIn(e.X) != nil
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[e]
		return obj != nil && w.tracked[obj]
	}
	return false
}

// trackedIn returns a tracked object referenced by e (not laundered
// through a call — copies made by callees are theirs to own).
func (w *escWalker) trackedIn(e ast.Expr) types.Object {
	var found types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			// Calls launder (callees copy what they keep); closures
			// are handled by the capture rule.
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil && w.tracked[obj] {
				found = obj
			}
		}
		return true
	})
	return found
}

// checkStore flags stores of carved values into homes that outlive the
// Reset: package-level variables and fields of foreign types.
func (w *escWalker) checkStore(lhs ast.Expr, obj types.Object) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		tgt := w.pass.TypesInfo.Uses[lhs]
		if tgt == nil {
			tgt = w.pass.TypesInfo.Defs[lhs]
		}
		if tgt != nil && tgt.Parent() == w.pass.Pkg.Scope() {
			w.pass.Reportf(lhs.Pos(), "arena-carved value %q stored into package-level %s: outlives the arena Reset", obj.Name(), lhs.Name)
		}
	case *ast.SelectorExpr:
		// Field store: fine into the arena package's own structures
		// (that is the memo-table design — they reset together),
		// fatal into a type declared elsewhere.
		t := w.pass.TypeOf(lhs.X)
		if t == nil {
			return
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			tpkg := named.Obj().Pkg()
			if tpkg != nil && tpkg != w.pass.Pkg {
				w.pass.Reportf(lhs.Pos(), "arena-carved value %q stored into field of %s.%s: the struct outlives the arena Reset", obj.Name(), tpkg.Name(), named.Obj().Name())
			}
		}
		// Rooted at a package-level variable?
		if root := rootIdent(lhs.X); root != nil {
			if tgt := w.pass.TypesInfo.Uses[root]; tgt != nil && tgt.Parent() == w.pass.Pkg.Scope() {
				w.pass.Reportf(lhs.Pos(), "arena-carved value %q stored into package-level %s: outlives the arena Reset", obj.Name(), root.Name)
			}
		}
	case *ast.IndexExpr:
		w.checkStore(lhs.X, obj)
	}
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func usesObject(pass *lint.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
