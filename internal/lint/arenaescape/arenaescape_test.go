package arenaescape

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, ".", Analyzer, "asta", "mapped")
}
