// Fixture for arenaescape: carved storage escaping (or not) its Reset
// lifetime. Mirrors internal/asta's arena shapes.
package asta

type sliceArena struct{ buf []int }

func (a *sliceArena) carve(n int) []int     { return a.buf[:n] }
func (a *sliceArena) carveFull(n int) []int { return a.buf[:n] }
func (a *sliceArena) copyOf(src []int) []int {
	dst := a.carve(len(src))
	copy(dst, src)
	return dst // unexported plumbing: legal
}

type foreignHolder struct{ rows []int } // stands in for a type from another package

var cache []int

// Escape 1: exported return.
func CarveForCaller(a *sliceArena, n int) []int {
	row := a.carve(n)
	return row // want "escapes via return from exported CarveForCaller"
}

// Escape 2: package-level store.
func Stash(a *sliceArena, n int) {
	row := a.carve(n)
	cache = row // want "stored into package-level cache"
}

// Escape 3: closure capture.
func Defer(a *sliceArena, n int) func() int {
	row := a.carveFull(n)
	return func() int { return row[0] } // want "captured by a closure"
}

// Escape 4: propagation through a re-slice, then exported return.
func CarveWindow(a *sliceArena, n int) []int {
	row := a.carve(n)
	win := row[2:4]
	return win // want "escapes via return from exported CarveWindow"
}

// Legal: carved rows stored into the package's own structures (the
// memo tables reset together with the arena).
type table struct{ rows [][]int }

func (t *table) fill(a *sliceArena, n int) {
	row := a.carve(n)
	t.rows = append(t.rows, row)
}

// Legal: unexported helpers hand carved memory to in-package callers.
func scratch(a *sliceArena, n int) []int {
	return a.carve(n)
}

// Legal: copying out of the arena launders the value.
func Materialize(a *sliceArena, n int) []int {
	row := a.carve(n)
	out := make([]int, len(row))
	copy(out, row)
	return out
}
