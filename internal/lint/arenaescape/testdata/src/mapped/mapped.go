// Fixture for arenaescape's mapping rules: slices aliased from a
// read-only Mapping (internal/mmapx) are backed by file pages that are
// unmapped once the Mapping becomes unreachable, so they must not be
// parked anywhere that drops the Mapping on the floor. Mirrors the XQO2
// zero-copy open path.
package mapped

type Mapping struct{ data []byte }

func (m *Mapping) Data() []byte { return m.data }

var residentHeader []byte

// Escape 1: exported return of mapping-aliased bytes — the caller has no
// handle on the Mapping keeping the pages alive.
func Header(m *Mapping) []byte {
	b := m.Data()
	return b[:24] // want "escapes via return from exported Header"
}

// Escape 2: package-level store outlives any particular Mapping.
func PinHeader(m *Mapping) {
	b := m.Data()
	hdr := b[:24]
	residentHeader = hdr // want "stored into package-level residentHeader"
}

// Escape 3: closure capture may outlive the Mapping.
func Reader(m *Mapping) func(int) byte {
	b := m.Data()
	return func(i int) byte { return b[i] } // want "captured by a closure"
}

// Legal: the zero-copy open shape — the aliased slice goes straight into
// a constructor call, and the callee retains the Mapping alongside it.
type layout struct {
	all []byte
	m   *Mapping
}

func openLayout(b []byte, m *Mapping) *layout { return &layout{all: b, m: m} }

func Open(m *Mapping) *layout {
	return openLayout(m.Data(), m)
}

// Legal: copying out of the mapping materializes heap bytes.
func Materialize(m *Mapping) []byte {
	b := m.Data()
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
