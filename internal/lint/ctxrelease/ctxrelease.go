// Package ctxrelease proves that every checkout from a pooled
// resource — evaluation-context worlds (ctxPool.checkout), evaluation
// cursors (EvalCursor/EvalCursorTrace) and span recorders
// (obsv.NewTrace) — is released on every path. The runtime guard
// (GuardTrips) only notices a leaked context after the damage, on the
// next checkout; this analyzer catches the leak at compile time.
//
// The check is flow-insensitive to find acquisitions, then
// path-refined: each function body is walked as an abstract
// interpretation with a live-resource set that forks at branches.
// A resource dies — stops needing a release on the current path —
// when it is
//
//   - released: Close/release/ReleaseTrace called with it (directly,
//     deferred, or inside a closure — the closure then owns it)
//   - transferred: returned, stored into a struct/map/slot, or passed
//     to any non-release call (ownership moves with the value)
//   - nil: on the error side of the `res, err :=` guard, or the nil
//     side of an explicit nil check
//
// A resource still live at a return (or at fallthrough function end)
// is reported at that exit. Discarding an acquisition's result (blank
// identifier or bare expression statement) is reported immediately.
package ctxrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "ctxrelease",
	Doc:  "pooled contexts, cursors and traces must be released on all paths, including error returns",
	Run:  run,
}

// An acquirer describes one pool-checkout function: who declares it,
// which result is the resource, and which call names release it.
type acquirer struct {
	pkg      string // suffix of the declaring package path
	fn       string
	result   int
	releases []string
	what     string
}

var acquirers = []acquirer{
	{pkg: "core", fn: "checkout", result: 0, releases: []string{"release"}, what: "pooled context"},
	{pkg: "core", fn: "EvalCursor", result: 0, releases: []string{"Close"}, what: "cursor"},
	{pkg: "core", fn: "EvalCursorTrace", result: 0, releases: []string{"Close"}, what: "cursor"},
	{pkg: "obsv", fn: "NewTrace", result: 0, releases: []string{"ReleaseTrace", "Release"}, what: "trace"},
}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &walker{pass: pass, tracked: map[types.Object]*tracked{}}
				w.walkFunc(fd.Body)
			}
		}
	}
	return nil, nil
}

type tracked struct {
	acq    acquirer
	acqPos token.Pos
	errObj types.Object // companion error variable, if any
}

type walker struct {
	pass    *lint.Pass
	tracked map[types.Object]*tracked
}

// live is the per-path set of unreleased resources.
type live map[types.Object]bool

func (l live) clone() live {
	c := make(live, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// acquisition returns the acquirer config if call is a tracked
// checkout.
func (w *walker) acquisition(call *ast.CallExpr) (acquirer, bool) {
	var name string
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		obj = w.pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		name = fun.Name
		obj = w.pass.TypesInfo.Uses[fun]
	default:
		return acquirer{}, false
	}
	if obj == nil || obj.Pkg() == nil {
		return acquirer{}, false
	}
	for _, a := range acquirers {
		if a.fn == name && lint.PathHasSuffix(obj.Pkg().Path(), a.pkg) {
			return a, true
		}
	}
	return acquirer{}, false
}

func (w *walker) walkFunc(body *ast.BlockStmt) {
	l := live{}
	w.walkStmts(body.List, l)
	if !terminates(body) {
		w.reportLive(body.Rbrace, l, "function end")
	}
}

func (w *walker) walkStmts(stmts []ast.Stmt, l live) {
	for _, s := range stmts {
		w.walkStmt(s, l)
	}
}

func (w *walker) walkStmt(s ast.Stmt, l live) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, l)
	case *ast.AssignStmt:
		w.walkAssign(s, l)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					w.walkValueSpec(vs, l)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if a, ok := w.acquisition(call); ok {
				w.pass.Reportf(call.Pos(), "%s from %s.%s is discarded: the checkout can never be released", a.what, a.pkg, a.fn)
				w.consumeArgs(call, l)
				return
			}
		}
		w.consumeExpr(s.X, l)
	case *ast.DeferStmt:
		// A deferred release covers every subsequent path.
		w.consumeExpr(s.Call, l)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.consumeExpr(r, l) // returning transfers ownership
		}
		w.reportLive(s.Return, l, "this return")
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, l)
		}
		w.consumeExpr(s.Cond, l)
		then := l.clone()
		els := l.clone()
		w.applyGuard(s.Cond, then, els)
		w.walkStmts(s.Body.List, then)
		elseTerm := false
		if s.Else != nil {
			w.walkStmt(s.Else, els)
			elseTerm = terminatesStmt(s.Else)
		}
		switch {
		case terminates(s.Body) && !elseTerm:
			replace(l, els)
		case !terminates(s.Body) && elseTerm:
			replace(l, then)
		case terminates(s.Body) && elseTerm:
			// Both exit: continuing state is unreachable; keep empty.
			replace(l, live{})
		default:
			union := then
			for k := range els {
				union[k] = true
			}
			replace(l, union)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, l)
		}
		if s.Cond != nil {
			w.consumeExpr(s.Cond, l)
		}
		body := l.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		// Releases inside the body are honored (zero-iteration loops
		// over a just-acquired resource do not occur in this codebase;
		// preferring silence over a false positive here).
		propagateDeaths(l, body)
	case *ast.RangeStmt:
		w.consumeExpr(s.X, l)
		body := l.clone()
		w.walkStmts(s.Body.List, body)
		propagateDeaths(l, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, l)
		}
		if s.Tag != nil {
			w.consumeExpr(s.Tag, l)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.consumeExpr(e, l)
			}
			w.walkStmts(cc.Body, l.clone())
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CaseClause).Body, l.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CommClause).Body, l.clone())
		}
	case *ast.GoStmt:
		w.consumeExpr(s.Call, l)
	case *ast.SendStmt:
		w.consumeExpr(s.Chan, l)
		w.consumeExpr(s.Value, l)
	case *ast.IncDecStmt:
		w.consumeExpr(s.X, l)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, l)
	}
}

func replace(dst, src live) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

// propagateDeaths marks resources dead in l that died during a loop
// body walk.
func propagateDeaths(l, body live) {
	for k := range l {
		if !body[k] {
			delete(l, k)
		}
	}
}

// applyGuard refines branch states for `err != nil` / `res == nil`
// style conditions: on the side where the acquisition failed, the
// resource is nil and needs no release.
func (w *walker) applyGuard(cond ast.Expr, then, els live) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	var operand ast.Expr
	switch {
	case isNil(be.X):
		operand = be.Y
	case isNil(be.Y):
		operand = be.X
	default:
		return
	}
	id, ok := operand.(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	nilSide, nonNilSide := then, els
	if be.Op == token.NEQ {
		// `x != nil` puts the nil world in the else branch for a
		// resource check — but for an *error* check the then branch
		// is the failure path where the resource is nil.
		nilSide, nonNilSide = els, then
	}
	_ = nonNilSide
	if w.tracked[obj] != nil {
		// Explicit nil check on the resource itself.
		delete(nilSide, obj)
		return
	}
	// Error companion: the resource paired with this err var is nil
	// on the error-non-nil side.
	for resObj, tr := range w.tracked {
		if tr.errObj == obj {
			errSide := then
			if be.Op == token.EQL {
				errSide = els
			}
			delete(errSide, resObj)
		}
	}
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// walkAssign registers acquisitions and consumes everything else.
func (w *walker) walkAssign(s *ast.AssignStmt, l live) {
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if a, ok := w.acquisition(call); ok {
				w.consumeArgs(call, l)
				w.registerAcquisition(s.Lhs, call, a, l)
				return
			}
		}
	}
	for _, r := range s.Rhs {
		w.consumeExpr(r, l)
	}
	for _, lhs := range s.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			w.consumeExpr(lhs, l)
		}
	}
}

func (w *walker) walkValueSpec(vs *ast.ValueSpec, l live) {
	if len(vs.Values) == 1 {
		if call, ok := vs.Values[0].(*ast.CallExpr); ok {
			if a, ok := w.acquisition(call); ok {
				w.consumeArgs(call, l)
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.registerAcquisition(lhs, call, a, l)
				return
			}
		}
	}
	for _, v := range vs.Values {
		w.consumeExpr(v, l)
	}
}

func (w *walker) registerAcquisition(lhs []ast.Expr, call *ast.CallExpr, a acquirer, l live) {
	if a.result >= len(lhs) {
		return
	}
	id, ok := lhs[a.result].(*ast.Ident)
	if !ok {
		// Assigned straight into a field or slot: ownership transfers
		// to that structure's owner.
		return
	}
	if id.Name == "_" {
		w.pass.Reportf(call.Pos(), "%s from %s.%s is discarded: the checkout can never be released", a.what, a.pkg, a.fn)
		return
	}
	obj := w.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	tr := &tracked{acq: a, acqPos: call.Pos()}
	// Companion error variable for the nil-on-error guard.
	for i, other := range lhs {
		if i == a.result {
			continue
		}
		if oid, ok := other.(*ast.Ident); ok && oid.Name != "_" {
			var oobj types.Object
			if oobj = w.pass.TypesInfo.Defs[oid]; oobj == nil {
				oobj = w.pass.TypesInfo.Uses[oid]
			}
			if oobj != nil && isErrorType(oobj.Type()) {
				tr.errObj = oobj
			}
		}
	}
	w.tracked[obj] = tr
	l[obj] = true
}

// consumeExpr scans an expression: release calls kill their resource,
// any other use of a live resource transfers ownership (also killing
// it — the new owner is responsible), and closures swallow whatever
// they capture.
func (w *walker) consumeExpr(e ast.Expr, l live) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure owns (and is trusted to release or carry)
			// everything it captures.
			for obj := range l {
				if usesObject(w.pass, n.Body, obj) {
					delete(l, obj)
				}
			}
			return false
		case *ast.CallExpr:
			w.consumeCall(n, l)
			return false
		case *ast.Ident:
			if obj := w.pass.TypesInfo.Uses[n]; obj != nil && l[obj] {
				delete(l, obj) // ownership transfer
			}
		}
		return true
	})
}

func (w *walker) consumeCall(call *ast.CallExpr, l live) {
	name := ""
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = fun.X
	case *ast.Ident:
		name = fun.Name
	default:
		w.consumeExpr(call.Fun, l)
	}

	// Receiver of a method call: `cur.Close()` releases; `cur.Next()`
	// is plain use and keeps the resource live.
	if recv != nil {
		if id, ok := recv.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
				if tr := w.tracked[obj]; tr != nil && l[obj] && releases(tr.acq, name) {
					delete(l, obj)
				}
			}
		} else {
			w.consumeExpr(recv, l)
		}
	}

	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil && l[obj] {
				// Passed by argument: to a release (done) or to a new
				// owner (their job now). Either way this path is
				// covered.
				delete(l, obj)
				continue
			}
		}
		w.consumeExpr(arg, l)
	}
}

func (w *walker) consumeArgs(call *ast.CallExpr, l live) {
	for _, arg := range call.Args {
		w.consumeExpr(arg, l)
	}
}

func releases(a acquirer, name string) bool {
	for _, r := range a.releases {
		if r == name {
			return true
		}
	}
	return false
}

func (w *walker) reportLive(at token.Pos, l live, where string) {
	for obj := range l {
		tr := w.tracked[obj]
		if tr == nil {
			continue
		}
		w.pass.Reportf(at, "%s %q (from %s.%s at %s) is not released on %s",
			tr.acq.what, obj.Name(), tr.acq.pkg, tr.acq.fn,
			w.pass.Fset.Position(tr.acqPos), where)
	}
}

func usesObject(pass *lint.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return terminatesStmt(b.List[len(b.List)-1])
}

func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				return sel.Sel.Name == "Exit" || sel.Sel.Name == "Fatal" || sel.Sel.Name == "Fatalf"
			}
		}
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && terminatesStmt(s.Else)
	}
	return false
}
