// Stub of repro/internal/core for ctxrelease fixtures: the pool
// checkout/release pair is package-private, so its cases live here.
package core

type Cursor struct{}

func (c *Cursor) Close()     {}
func (c *Cursor) Next() bool { return false }

type pooledCtx struct{}

type pool struct{}

func (p *pool) checkout(k string) (*pooledCtx, bool) { return nil, false }
func (p *pool) release(k string, pc *pooledCtx)      {}

type Engine struct{ pool pool }

func (e *Engine) EvalCursor(q string) (*Cursor, error)      { return nil, nil }
func (e *Engine) EvalCursorTrace(q string) (*Cursor, error) { return nil, nil }

func (e *Engine) leakyCheckout(leak bool) {
	pc, warm := e.pool.checkout("k")
	_ = warm
	if leak {
		return // want "pooled context .pc. .from core.checkout at .* is not released on this return"
	}
	e.pool.release("k", pc)
}

func (e *Engine) cleanCheckout() {
	pc, _ := e.pool.checkout("k")
	defer e.pool.release("k", pc)
}

// closureRelease is the cursor-construction pattern: the checkout is
// captured by a release closure that outlives the call, transferring
// ownership to whoever holds the closure.
func (e *Engine) closureRelease() func() {
	pc, _ := e.pool.checkout("k")
	return func() { e.pool.release("k", pc) }
}
