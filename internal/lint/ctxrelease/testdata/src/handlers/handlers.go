// Fixture for ctxrelease: handler-side cursor and trace lifecycles.
package handlers

import (
	"errors"

	"core"
	"obsv"
)

func bad() bool { return false }

// The bug class that motivated the analyzer: an early error return
// between checkout and Close.
func LeakOnEarlyReturn(e *core.Engine) error {
	cur, err := e.EvalCursor("q")
	if err != nil {
		return err // exempt: cur is nil on the error path
	}
	if bad() {
		return errors.New("mid-handler failure") // want "cursor .cur. .from core.EvalCursor at .* is not released on this return"
	}
	cur.Close()
	return nil
}

func LeakAtEnd() {
	tr := obsv.NewTrace(true)
	tr.Span("query")
} // want "trace .tr. .from obsv.NewTrace at .* is not released on function end"

func Discarded(e *core.Engine) {
	e.EvalCursorTrace("q") // want "cursor from core.EvalCursorTrace is discarded"
}

func BlankAssigned(e *core.Engine) {
	_, err := e.EvalCursor("q") // want "cursor from core.EvalCursor is discarded"
	_ = err
}

// Negative cases: every lifecycle below is sound.

func CleanDefer(e *core.Engine) error {
	cur, err := e.EvalCursor("q")
	if err != nil {
		return err
	}
	defer cur.Close()
	if bad() {
		return errors.New("covered by defer")
	}
	return nil
}

func CleanTrace() {
	tr := obsv.NewTrace(true)
	tr.Span("query")
	obsv.ReleaseTrace(tr)
}

type evalState struct {
	cur *core.Cursor
	tr  *obsv.Trace
}

// Ownership transfer into a returned struct — the prepare() pattern:
// the caller's defer is responsible from here on.
func Transfer(e *core.Engine) (*evalState, error) {
	tr := obsv.NewTrace(true)
	cur, err := e.EvalCursor("q")
	if err != nil {
		obsv.ReleaseTrace(tr)
		return nil, err
	}
	return &evalState{cur: cur, tr: tr}, nil
}

func ClosureOwns(e *core.Engine) func() {
	cur, err := e.EvalCursor("q")
	if err != nil {
		return func() {}
	}
	return func() { cur.Close() }
}

// Assigning the checkout straight into a field transfers ownership to
// the struct's owner (the prepare() explain path).
func FieldAssign(st *evalState) {
	st.tr = obsv.NewTrace(true)
}

func NilCheck(e *core.Engine) {
	cur, _ := e.EvalCursor("q")
	if cur == nil {
		return
	}
	cur.Close()
}
