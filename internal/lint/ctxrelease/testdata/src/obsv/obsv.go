// Stub of repro/internal/obsv for ctxrelease fixtures.
package obsv

type Trace struct{}

func NewTrace(detail bool) *Trace { return &Trace{} }
func ReleaseTrace(t *Trace)       {}

func (t *Trace) Span(name string) {}
