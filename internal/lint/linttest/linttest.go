// Package linttest replays analyzer fixtures the way
// golang.org/x/tools/go/analysis/analysistest does: fixture packages
// live under the analyzer's testdata/src/<pkg>, and every expected
// diagnostic is declared in-line with a trailing
//
//	// want "regexp"
//
// comment (several per line allowed). Run fails the test on any
// unmatched expectation and any unexpected diagnostic, so fixtures
// prove both that an analyzer fires (positive cases) and that it stays
// quiet (negative cases).
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)`)

type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src under dir, typechecks every fixture package
// found there, runs analyzer over the packages named by pkgs, and
// diffs the diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, analyzer *lint.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(dir, "testdata", "src")
	all, err := lint.LoadDirs(srcRoot)
	if err != nil {
		t.Fatalf("loading fixtures under %s: %v", srcRoot, err)
	}
	want := map[string]bool{}
	for _, p := range pkgs {
		want[p] = true
	}
	var selected []*lint.Package
	for _, p := range all {
		if want[p.Path] {
			selected = append(selected, p)
			delete(want, p.Path)
		}
	}
	for missing := range want {
		t.Fatalf("fixture package %q not found under %s", missing, srcRoot)
	}

	diags, err := lint.Run(selected, []*lint.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s: %v", analyzer.Name, err)
	}

	// Collect expectations keyed by file:line. Fixture _test.go files
	// are not loaded into packages (mirroring the real loader), but
	// analyzers may read and report into them — the metricnames golden
	// list does — so scan them for want comments too.
	expects := map[string][]*expectation{}
	addWants := func(fset *token.FileSet, f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				key := posKey(fset.Position(c.Pos()))
				for _, raw := range splitWants(m[1]) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, raw, err)
					}
					expects[key] = append(expects[key], &expectation{rx: rx, raw: raw})
				}
			}
		}
	}
	for _, p := range selected {
		for _, f := range p.Files {
			addWants(p.Fset, f)
		}
		tests, _ := filepath.Glob(filepath.Join(p.Dir, "*_test.go"))
		for _, path := range tests {
			f, err := parser.ParseFile(p.Fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", path, err)
			}
			addWants(p.Fset, f)
		}
	}

	for _, d := range diags {
		key := posKey(d.Pos)
		found := false
		for _, e := range expects[key] {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: no diagnostic matching %q", key, e.raw)
			}
		}
	}
}

func posKey(p token.Position) string {
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// splitWants parses the quoted regexps after a want marker:
// `"a" "b"` -> ["a", "b"].
func splitWants(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 || s[0] != '"' {
			return out
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err == nil {
			out = append(out, raw)
		}
		s = s[end+1:]
	}
}
