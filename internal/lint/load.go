package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// A Package is one typechecked package of the tree under analysis.
// Files holds only non-test sources: analyzers see the shipped code;
// sibling _test.go files (the metricnames golden list lives in one)
// are read from Dir by the analyzers that want them.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

var moduleRx = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule parses and typechecks every non-test package under the
// module rooted at root (located by its go.mod), returning packages in
// dependency order. Standard-library imports are typechecked from
// GOROOT source, so no compiled export data or network is needed.
func LoadModule(root string) ([]*Package, error) {
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleRx.FindSubmatch(mod)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	modPath := string(m[1])

	dirs := map[string]string{} // import path -> dir
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, rerr := filepath.Rel(root, dir)
		if rerr != nil {
			return rerr
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		dirs[imp] = dir
		return nil
	})
	if err != nil {
		return nil, err
	}
	return loadTree(dirs, modPath)
}

// LoadDirs typechecks a GOPATH-style fixture tree: every directory
// under srcRoot that contains .go files becomes a package whose import
// path is its path relative to srcRoot ("a", "core", ...). Used by
// linttest; _test.go files are ignored just as in LoadModule.
func LoadDirs(srcRoot string) ([]*Package, error) {
	dirs := map[string]string{}
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, rerr := filepath.Rel(srcRoot, dir)
		if rerr != nil {
			return rerr
		}
		dirs[filepath.ToSlash(rel)] = dir
		return nil
	})
	if err != nil {
		return nil, err
	}
	return loadTree(dirs, "")
}

// loadTree parses every package in dirs, orders them so intra-tree
// imports come first, and typechecks the lot with one shared FileSet
// and source importer.
func loadTree(dirs map[string]string, modPath string) ([]*Package, error) {
	fset := token.NewFileSet()
	type parsed struct {
		path, dir string
		files     []*ast.File
		imports   []string
	}
	byPath := map[string]*parsed{}
	for imp, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		p := &parsed{path: imp, dir: dir}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if excludedByBuildTags(f) {
				continue
			}
			p.files = append(p.files, f)
			for _, spec := range f.Imports {
				ipath, _ := strconv.Unquote(spec.Path.Value)
				p.imports = append(p.imports, ipath)
			}
		}
		if len(p.files) > 0 {
			byPath[imp] = p
		}
	}

	// Topological order over intra-tree imports (DFS; the go toolchain
	// already guarantees acyclicity for code that builds).
	var order []*parsed
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *parsed)
	visit = func(p *parsed) {
		if state[p.path] != 0 {
			return
		}
		state[p.path] = 1
		for _, imp := range p.imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.path] = 2
		order = append(order, p)
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		visit(byPath[p])
	}

	loaded := map[string]*Package{}
	imp := &treeImporter{loaded: loaded, std: importer.ForCompiler(fset, "source", nil)}
	var out []*Package
	for _, p := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", p.path, err)
		}
		pkg := &Package{Path: p.path, Dir: p.dir, Fset: fset, Files: p.files, Types: tpkg, Info: info}
		loaded[p.path] = pkg
		out = append(out, pkg)
	}
	return out, nil
}

// excludedByBuildTags reports whether a //go:build line rules the file
// out on the analyzer's own platform. Platform-variant files (the mmapx
// unix/fallback pair) would otherwise typecheck as duplicate
// declarations in one package.
func excludedByBuildTags(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false
			}
			return !expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH:
					return true
				case "unix":
					// The GOOSes the go tool treats as unix and that this
					// repo could plausibly run on.
					switch runtime.GOOS {
					case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "illumos", "aix":
						return true
					}
					return false
				}
				return strings.HasPrefix(tag, "go1") // language version tags
			})
		}
	}
	return false
}

// treeImporter resolves intra-tree imports from the packages already
// typechecked this run (dependency order guarantees availability) and
// everything else — the standard library — from GOROOT source.
type treeImporter struct {
	loaded map[string]*Package
	std    types.Importer
}

func (i *treeImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.loaded[path]; ok {
		return p.Types, nil
	}
	return i.std.Import(path)
}
