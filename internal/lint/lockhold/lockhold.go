// Package lockhold encodes the lock discipline of the serving path:
// the mutexes guarding store chains, shard engine tables, the compiled
// query cache and service metrics are all short-hold spinners on the
// hot path, so nothing slow or re-entrant may happen under one. While
// such a mutex is held the analyzer forbids
//
//   - channel operations (send, receive, select, range-over-channel)
//   - time.Sleep and any call into net or net/http
//   - acquiring another tracked lock (the codebase has no sanctioned
//     lock hierarchy: single-flight waits and retire callbacks all run
//     after unlocking, and the -race churn hammers only probe this
//     probabilistically — here it is structural)
//
// The walk is a path-sensitive abstract interpretation of each
// function body: branches fork the held-set, a deferred Unlock keeps
// the lock held to function end (by design — code after it is still
// under the lock), and lowercase lock()/unlock() wrappers (the shard
// lock-wait accounting) count as acquire/release of their receiver.
package lockhold

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation or nested tracked-lock acquisition while a store/shard/qcache/service mutex is held",
	Run:  run,
}

// trackedPkgs are the packages whose mutexes are hot-path spinners;
// short names match linttest fixtures.
var trackedPkgs = []string{
	"internal/store", "internal/shard", "internal/qcache", "internal/service", "internal/core",
	"store", "shard", "qcache", "service", "core",
}

func trackedPkg(path string) bool {
	for _, p := range trackedPkgs {
		if lint.PathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) (any, error) {
	if !trackedPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	w := &walker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.walkFunc(fd.Body)
			}
		}
	}
	return nil, nil
}

type walker struct {
	pass *lint.Pass
}

// held maps a lock key (the printed receiver expression, e.g. "s.mu"
// or "sh" for a lock() wrapper) to its acquisition position.
type held map[string]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h held) any() (string, token.Pos) {
	for k, v := range h {
		return k, v
	}
	return "", token.NoPos
}

// walkFunc analyzes one function body from an empty held-set. Nested
// function literals are analyzed the same way (they run on their own
// goroutine or later — the enclosing lock state does not transfer
// soundly, and a closure taking its own lock must still be checked).
func (w *walker) walkFunc(body *ast.BlockStmt) {
	w.walkStmts(body.List, held{})
}

func (w *walker) walkStmts(stmts []ast.Stmt, h held) {
	for _, s := range stmts {
		w.walkStmt(s, h)
	}
}

func (w *walker) walkStmt(s ast.Stmt, h held) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, h)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, h)
		}
		w.checkExpr(s.Cond, h)
		then := h.clone()
		w.walkStmts(s.Body.List, then)
		if s.Else != nil {
			els := h.clone()
			w.walkStmt(s.Else, els)
			// Continue with whichever branch falls through; if both
			// do, the union over-approximates (reports rather than
			// misses).
			switch {
			case terminates(s.Body) && !terminatesStmt(s.Else):
				replace(h, els)
			case !terminates(s.Body) && terminatesStmt(s.Else):
				replace(h, then)
			default:
				merged := then
				for k, v := range els {
					merged[k] = v
				}
				replace(h, merged)
			}
		} else if !terminates(s.Body) {
			for k, v := range then {
				h[k] = v
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, h)
		}
		body := h.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X, h)
		if t := w.pass.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && len(h) > 0 {
				k, pos := h.any()
				w.report(s.For, "range over channel", k, pos)
			}
		}
		body := h.clone()
		w.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, h)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.checkExpr(e, h)
			}
			w.walkStmts(cc.Body, h.clone())
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, h)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.walkStmts(cc.Body, h.clone())
		}
	case *ast.SelectStmt:
		if len(h) > 0 {
			k, pos := h.any()
			w.report(s.Select, "select", k, pos)
		}
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CommClause).Body, h.clone())
		}
	case *ast.SendStmt:
		if len(h) > 0 {
			k, pos := h.any()
			w.report(s.Arrow, "channel send", k, pos)
		}
		w.checkExpr(s.Chan, h)
		w.checkExpr(s.Value, h)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the held-set; its
		// body is checked independently via the FuncLit visit below.
		w.checkExpr(s.Call.Fun, h)
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the lock stays held for
		// the rest of the function, so nothing to clear. Other
		// deferred calls run after the critical section too.
		w.checkFuncLits(s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, h)
		}
	case *ast.ExprStmt:
		w.checkExpr(s.X, h)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.checkExpr(r, h)
		}
		for _, l := range s.Lhs {
			w.checkExpr(l, h)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, h)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, h)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, h)
	}
}

func replace(dst, src held) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// checkExpr scans an expression in order, applying lock effects and
// reporting blocking operations while anything is held.
func (w *walker) checkExpr(e ast.Expr, h held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkFunc(n.Body) // analyzed with its own empty held-set
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(h) > 0 {
				k, pos := h.any()
				w.report(n.OpPos, "channel receive", k, pos)
			}
		case *ast.CallExpr:
			w.checkCall(n, h)
		}
		return true
	})
}

func (w *walker) checkFuncLits(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkFunc(fl.Body)
			return false
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, h held) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name

	// Lock effects on sync mutexes owned by tracked code.
	if isMutex(w.pass.TypeOf(sel.X)) {
		key := exprString(w.pass.Fset, sel.X)
		switch name {
		case "Lock", "RLock":
			w.acquire(call.Pos(), key, h)
		case "Unlock", "RUnlock":
			w.release(key, h)
		}
		return
	}

	// lock()/unlock() wrappers on tracked types (the shard lock-wait
	// accounting): the receiver itself is the key, and a later
	// receiver.mu.Unlock() releases it by prefix.
	if name == "lock" || name == "unlock" {
		if t := w.pass.TypeOf(sel.X); t != nil && ownerTracked(t) {
			key := exprString(w.pass.Fset, sel.X)
			if name == "lock" {
				w.acquire(call.Pos(), key, h)
			} else {
				w.release(key, h)
			}
			return
		}
	}

	// Blocking calls.
	if len(h) == 0 {
		return
	}
	if obj := w.pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
		pkg := obj.Pkg().Path()
		if pkg == "time" && name == "Sleep" {
			k, pos := h.any()
			w.report(call.Pos(), "time.Sleep", k, pos)
		}
		if pkg == "net" || pkg == "net/http" {
			k, pos := h.any()
			w.report(call.Pos(), pkg+" call", k, pos)
		}
	}
}

func (w *walker) acquire(at token.Pos, key string, h held) {
	if prev, dup := h[key]; dup {
		w.report(at, "re-acquisition of "+key+" (self-deadlock)", key, prev)
		return
	}
	if len(h) > 0 {
		k, pos := h.any()
		w.report(at, "nested acquisition of "+key, k, pos)
	}
	h[key] = at
}

func (w *walker) release(key string, h held) {
	for k := range h {
		if k == key || len(key) > len(k)+1 && key[:len(k)] == k && key[len(k)] == '.' {
			delete(h, k)
		}
	}
}

func (w *walker) report(at token.Pos, what, lock string, acquired token.Pos) {
	w.pass.Reportf(at, "%s while %s is held (acquired at %s)",
		what, lock, w.pass.Fset.Position(acquired))
}

func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// ownerTracked reports whether t is a named type declared in a
// tracked package.
func ownerTracked(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && trackedPkg(obj.Pkg().Path())
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// terminates reports whether a block always transfers control out
// (return, panic, os.Exit, break/continue/goto).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return terminatesStmt(b.List[len(b.List)-1])
}

func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				return fun.Sel.Name == "Exit" || fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf"
			}
		}
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && terminatesStmt(s.Else)
	}
	return false
}
