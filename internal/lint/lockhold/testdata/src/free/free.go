// Negative fixture: a package outside the tracked set may hold its
// own mutexes across whatever it likes — lockhold must stay silent.
package free

import (
	"sync"
	"time"
)

type Worker struct {
	mu sync.Mutex
}

func (w *Worker) SleepUnder() {
	w.mu.Lock()
	defer w.mu.Unlock()
	time.Sleep(time.Millisecond)
}
