// Fixture for lockhold: blocking operations and nested acquisitions
// under a tracked mutex, plus clean patterns that must stay silent.
package qcache

import (
	"net/http"
	"sync"
	"time"
)

type Cache struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (c *Cache) SleepUnder() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while c.mu is held"
	c.mu.Unlock()
}

func (c *Cache) SendUnderDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ch <- 1 // want "channel send while c.mu is held"
}

func (c *Cache) RecvUnder() {
	c.mu.Lock()
	<-c.ch // want "channel receive while c.mu is held"
	c.mu.Unlock()
}

func (c *Cache) HTTPUnder() {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = http.Get("http://example.invalid/") // want "net/http call while c.mu is held"
}

func (c *Cache) SelectUnder() {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "select while c.mu is held"
	default:
	}
}

func (c *Cache) RangeChanUnder() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for range c.ch { // want "range over channel while c.mu is held"
	}
}

type Shard struct {
	mu    sync.Mutex
	inner sync.Mutex
}

func (s *Shard) Nested() {
	s.mu.Lock()
	s.inner.Lock() // want "nested acquisition of s.inner"
	s.inner.Unlock()
	s.mu.Unlock()
}

func (s *Shard) Twice() {
	s.mu.Lock()
	s.mu.Lock() // want "re-acquisition of s.mu"
	s.mu.Unlock()
}

// lock is the wrapper pattern the service shard uses for lock-wait
// accounting: acquiring it counts as holding the receiver.
func (s *Shard) lock() { s.mu.Lock() }

func (s *Shard) WrapperBlocked() {
	s.lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s is held"
	s.mu.Unlock()
}

// Negative cases below: all clean, no diagnostics.

func (c *Cache) UnlockThenBlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	<-c.ch
}

func (c *Cache) EarlyReturnBranch(hit bool) int {
	c.mu.Lock()
	if hit {
		c.mu.Unlock()
		return <-c.ch
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func (c *Cache) AsyncUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() { c.ch <- 1 }() // runs after release: fine
}

func (s *Shard) WrapperBalanced() {
	s.lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}
