package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/registry"
)

// pinnedAnalyzers is the contract: the suite ships exactly these.
// Removing one from the registry (or renaming it) fails CI here, so
// the lint gate cannot be quietly narrowed.
var pinnedAnalyzers = []string{
	"arenaescape",
	"ctxrelease",
	"lockhold",
	"metricnames",
	"nakedgen",
}

func TestRegistryPinned(t *testing.T) {
	got := registry.Analyzers()
	if len(got) != len(pinnedAnalyzers) {
		t.Fatalf("registry has %d analyzers, want %d — the registered set is part of the CI contract", len(got), len(pinnedAnalyzers))
	}
	for i, a := range got {
		if a.Name != pinnedAnalyzers[i] {
			t.Errorf("analyzer %d: %q, want %q", i, a.Name, pinnedAnalyzers[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestModuleLintClean runs the full multichecker over the module —
// CI green ⇔ repo lint-clean, with no separate tool invocation needed
// (the CI lint job runs cmd/xpqlint too, for the human-readable
// output, but this test alone already gates merges).
func TestModuleLintClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d): loader regression?", len(pkgs))
	}
	diags, err := lint.Run(pkgs, registry.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
