// Package metricnames pins the Prometheus exposition contract. The
// daemon writes its /metrics page by hand (no client library), so
// three drifts are one typo away: a family name that breaks the
// xpqd_* naming scheme, a family the golden exposition test no longer
// covers, and a /stats key silently missing its Prometheus twin. The
// analyzer activates on any package that registers families via
// PromWriter-style Family/Sample/Histogram calls and checks:
//
//   - names match ^(xpqd|go)_[a-z0-9_]+$ (go_* is reserved for the
//     runtime gauges) and carry non-empty help text
//   - counters end in _total; gauges and histograms do not
//   - every family is registered once, every Sample/Histogram/eachShard
//     emission names a registered family, and no family is dead
//   - the sibling golden test's promFamilies map and the registered set
//     agree exactly, including the family type
//   - every exported numeric field of the package's *Stats structs is
//     read by the exposition (fields with "Mean" in the name or a
//     "Rate" suffix are exempt: means and ratios are derivable in
//     PromQL from the exact sums and counts, so they are JSON-only by
//     design)
package metricnames

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "metricnames",
	Doc:  "Prometheus families keep the xpqd_* contract, match the golden test, and mirror every /stats key",
	Run:  run,
}

var nameRx = regexp.MustCompile(`^(xpqd|go)_[a-z0-9_]+$`)

type family struct {
	typ  string // "counter" | "gauge" | "histogram"
	pos  token.Pos
	used bool
}

func run(pass *lint.Pass) (any, error) {
	families := map[string]*family{}
	type emission struct {
		name string
		pos  token.Pos
	}
	var emissions []emission
	var metricFiles []*ast.File // files containing Family registrations

	for _, f := range pass.Files {
		registers := false
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeName(call) {
			case "Family":
				if len(call.Args) < 3 {
					return true
				}
				name, ok := strLit(call.Args[0])
				if !ok {
					pass.Reportf(call.Pos(), "family name must be a string literal so the contract is checkable")
					return true
				}
				registers = true
				if prev, dup := families[name]; dup {
					_ = prev
					pass.Reportf(call.Pos(), "family %s registered twice", name)
					return true
				}
				fam := &family{typ: famType(call.Args[2]), pos: call.Pos()}
				families[name] = fam
				if !nameRx.MatchString(name) {
					pass.Reportf(call.Pos(), "family %s breaks the naming contract %s", name, nameRx)
				}
				if help, ok := strLit(call.Args[1]); !ok || strings.TrimSpace(help) == "" {
					pass.Reportf(call.Pos(), "family %s has no help text", name)
				}
				switch fam.typ {
				case "counter":
					if !strings.HasSuffix(name, "_total") {
						pass.Reportf(call.Pos(), "counter %s must end in _total", name)
					}
				case "gauge", "histogram":
					if strings.HasSuffix(name, "_total") {
						pass.Reportf(call.Pos(), "%s %s must not end in _total (reserved for counters)", fam.typ, name)
					}
				}
			case "Sample", "Histogram":
				if len(call.Args) >= 1 {
					if name, ok := strLit(call.Args[0]); ok {
						emissions = append(emissions, emission{name, call.Pos()})
					}
				}
			case "eachShard":
				if len(call.Args) >= 3 {
					if name, ok := strLit(call.Args[2]); ok {
						emissions = append(emissions, emission{name, call.Pos()})
					}
				}
			}
			return true
		})
		if registers {
			metricFiles = append(metricFiles, f)
		}
	}
	if len(families) == 0 {
		return nil, nil // package registers no metrics: not in scope
	}

	for _, e := range emissions {
		if _, ok := families[e.name]; !ok {
			pass.Reportf(e.pos, "sample emitted for unregistered family %s", e.name)
		} else {
			families[e.name].used = true
		}
	}
	for name, fam := range families {
		if !fam.used {
			pass.Reportf(fam.pos, "family %s is registered but never emitted (dead family)", name)
		}
	}

	checkGolden(pass, families)
	checkStatsTwins(pass, metricFiles)
	return nil, nil
}

// checkGolden diffs the registered families against the promFamilies
// map in the package's *_test.go files (the golden exposition test).
// Both directions must agree: a family missing from the golden list is
// untested; a golden key with no registration is a stale contract.
func checkGolden(pass *lint.Pass, families map[string]*family) {
	paths, _ := filepath.Glob(filepath.Join(pass.Dir, "*_test.go"))
	var golden map[string]string
	goldenPos := map[string]token.Pos{}
	for _, path := range paths {
		f, err := parser.ParseFile(pass.Fset, path, nil, 0)
		if err != nil {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			spec, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, id := range spec.Names {
				if id.Name != "promFamilies" || i >= len(spec.Values) {
					continue
				}
				lit, ok := spec.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				golden = map[string]string{}
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					k, kok := strLit(kv.Key)
					v, vok := strLit(kv.Value)
					if kok && vok {
						golden[k] = v
						goldenPos[k] = kv.Key.Pos()
					}
				}
			}
			return true
		})
		if golden != nil {
			break
		}
	}
	if golden == nil {
		return // no golden test beside this package: nothing to diff
	}
	for name, fam := range families {
		want, ok := golden[name]
		if !ok {
			pass.Reportf(fam.pos, "family %s is not covered by the golden exposition test (promFamilies)", name)
			continue
		}
		if fam.typ != "" && want != fam.typ {
			pass.Reportf(fam.pos, "family %s registered as %s but golden-tested as %s", name, fam.typ, want)
		}
	}
	for name := range golden {
		if _, ok := families[name]; !ok {
			pass.Reportf(goldenPos[name], "golden test lists %s but no such family is registered", name)
		}
	}
}

// checkStatsTwins verifies the exposition reads every exported numeric
// field of the package's *Stats structs — the "/stats key without a
// Prometheus twin" drift. Mean/Rate fields are exempt (derivable).
func checkStatsTwins(pass *lint.Pass, metricFiles []*ast.File) {
	// The package's own *Stats struct types.
	statsStructs := map[*types.Struct]string{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasSuffix(name, "Stats") {
			continue
		}
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			statsStructs[st] = name
		}
	}
	if len(statsStructs) == 0 {
		return
	}

	// Fields the exposition actually reads.
	read := map[string]bool{} // "ShardStats.DocBytes"
	for _, f := range metricFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			t := pass.TypeOf(sel.X)
			if t == nil {
				return true
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if st, ok := t.Underlying().(*types.Struct); ok {
				if sname, tracked := statsStructs[st]; tracked {
					read[sname+"."+sel.Sel.Name] = true
				}
			}
			return true
		})
	}

	for st, sname := range statsStructs {
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if !fld.Exported() || !isNumeric(fld.Type()) {
				continue
			}
			if strings.Contains(fld.Name(), "Mean") || strings.HasSuffix(fld.Name(), "Rate") {
				continue
			}
			if !read[sname+"."+fld.Name()] {
				pass.Reportf(fld.Pos(), "/stats key %s.%s has no Prometheus twin: not read by the metrics exposition", sname, fld.Name())
			}
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

func strLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

// famType maps the third Family argument (obsv.TypeCounter et al, or a
// fixture-local equivalent) to the golden test's type strings.
func famType(e ast.Expr) string {
	name := ""
	switch e := e.(type) {
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.Ident:
		name = e.Name
	}
	switch name {
	case "TypeCounter":
		return "counter"
	case "TypeGauge":
		return "gauge"
	case "TypeHistogram":
		return "histogram"
	}
	return ""
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
