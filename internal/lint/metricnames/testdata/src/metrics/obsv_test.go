package metrics

// The golden exposition list, as the real obsv_http_test.go keeps it.
var promFamilies = map[string]string{
	"xpqd_good_total":     "counter",
	"xpqd_Bad_name":       "counter",
	"xpqd_notatotal":      "counter",
	"xpqd_gauge_total":    "gauge",
	"xpqd_nohelp_total":   "counter",
	"xpqd_dead_total":     "counter",
	"xpqd_mistyped_total": "gauge",
	"xpqd_stale_total":    "counter", // want "golden test lists xpqd_stale_total but no such family is registered"
}
