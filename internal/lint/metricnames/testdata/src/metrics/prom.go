// Fixture for metricnames: a hand-written exposition with one of each
// drift the analyzer catches, plus clean cases proving it stays quiet.
package metrics

type promWriter struct{}

const (
	TypeCounter = iota
	TypeGauge
	TypeHistogram
)

func (p *promWriter) Family(name, help string, typ int)               {}
func (p *promWriter) Sample(name string, v float64, labels ...string) {}

// PoolStats exercises the /stats twin check: Hits is read by the
// exposition, Drops is not; HitRate and MeanNS are exempt by
// convention (derivable in PromQL).
type PoolStats struct {
	Hits    uint64
	Drops   uint64 // want "stats key PoolStats.Drops has no Prometheus twin"
	HitRate float64
	MeanNS  int64
}

func Write(p *promWriter, ps PoolStats) {
	p.Family("xpqd_good_total", "A well-formed counter.", TypeCounter)
	p.Sample("xpqd_good_total", float64(ps.Hits))

	p.Family("xpqd_Bad_name", "Mixed case.", TypeCounter) // want "breaks the naming contract" "counter xpqd_Bad_name must end in _total"
	p.Sample("xpqd_Bad_name", 1)

	p.Family("xpqd_notatotal", "Counter without suffix.", TypeCounter) // want "counter xpqd_notatotal must end in _total"
	p.Sample("xpqd_notatotal", 1)

	p.Family("xpqd_gauge_total", "Gauge wearing a counter suffix.", TypeGauge) // want "gauge xpqd_gauge_total must not end in _total"
	p.Sample("xpqd_gauge_total", 1)

	p.Family("xpqd_nohelp_total", "", TypeCounter) // want "family xpqd_nohelp_total has no help text"
	p.Sample("xpqd_nohelp_total", 1)

	p.Family("xpqd_good_total", "Registered twice.", TypeCounter) // want "family xpqd_good_total registered twice"

	p.Family("xpqd_dead_total", "Never emitted.", TypeCounter) // want "family xpqd_dead_total is registered but never emitted"

	p.Sample("xpqd_ghost_total", 1) // want "sample emitted for unregistered family xpqd_ghost_total"

	p.Family("xpqd_ungolden_total", "Missing from the golden test.", TypeCounter) // want "family xpqd_ungolden_total is not covered by the golden exposition test"
	p.Sample("xpqd_ungolden_total", 1)

	p.Family("xpqd_mistyped_total", "Golden thinks gauge.", TypeCounter) // want "family xpqd_mistyped_total registered as counter but golden-tested as gauge"
	p.Sample("xpqd_mistyped_total", 1)
}
