// Negative fixture: a package with Stats structs but no Prometheus
// registrations is out of scope — the twin check must stay silent.
package nometrics

type CacheStats struct {
	Hits   uint64
	Misses uint64
}

func Sum(s CacheStats) uint64 { return s.Hits + s.Misses }
