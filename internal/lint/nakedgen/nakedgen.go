// Package nakedgen enforces the opacity of MVCC generation tokens
// (store.Gen). Generations are entropy-seeded per document chain, so
// outside internal/store their numeric value is meaningless: ordering
// two Gens, doing arithmetic on one, or converting one to/from a raw
// integer is always a latent bug (it "works" until a restart reseeds
// the chain). Identity comparison (==, !=) and the sanctioned
// String/ParseGen round-trip remain allowed; internal/store itself is
// exempt — it is the one place generation numerics are meaningful.
package nakedgen

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "nakedgen",
	Doc:  "store.Gen values must stay opaque outside internal/store: no ordering, arithmetic, or raw-integer conversions",
	Run:  run,
}

// genPkg matches both the real package and the fixture stub.
func isGenType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Gen" || obj.Pkg() == nil {
		return false
	}
	return lint.PathHasSuffix(obj.Pkg().Path(), "internal/store") ||
		obj.Pkg().Path() == "store"
}

func run(pass *lint.Pass) (any, error) {
	if pass.PathHasSuffix("internal/store") || pass.Pkg.Path() == "store" {
		return nil, nil // home turf: numerics are the implementation
	}
	genOperand := func(x, y ast.Expr) bool {
		tx, ty := pass.TypeOf(x), pass.TypeOf(y)
		return (tx != nil && isGenType(tx)) || (ty != nil && isGenType(ty))
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
					if genOperand(n.X, n.Y) {
						pass.Reportf(n.OpPos, "ordering comparison on store.Gen: generations are entropy-seeded, %s is meaningless outside internal/store", n.Op)
					}
				case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
					token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
					if genOperand(n.X, n.Y) {
						pass.Reportf(n.OpPos, "arithmetic on store.Gen: derive generations only from Patch/GetAsOf/ParseGen, never by %s", n.Op)
					}
				}
			case *ast.CallExpr:
				// Explicit conversions to or from Gen.
				tv, ok := pass.TypesInfo.Types[n.Fun]
				if !ok || !tv.IsType() || len(n.Args) != 1 {
					return true
				}
				dst := tv.Type
				src := pass.TypeOf(n.Args[0])
				if src == nil {
					return true
				}
				srcIsGen, dstIsGen := isGenType(src), isGenType(dst)
				if dstIsGen && !srcIsGen && isInteger(src) {
					pass.Reportf(n.Pos(), "integer-to-store.Gen conversion: obtain generations from Handle.Gen, GetAsOf or ParseGen")
				}
				if srcIsGen && !dstIsGen && isInteger(dst) {
					pass.Reportf(n.Pos(), "store.Gen-to-integer conversion: use Gen.String for wire formats; raw values must not leave the type")
				}
			}
			return true
		})
	}
	return nil, nil
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsUntyped) != 0
}
