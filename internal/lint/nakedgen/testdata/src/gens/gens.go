// Fixture for nakedgen: a consumer package misusing store.Gen.
package gens

import "store"

func Newer(a, b store.Gen) bool {
	return a > b // want "ordering comparison on store.Gen"
}

func Bump(g store.Gen) store.Gen {
	return g + 1 // want "arithmetic on store.Gen"
}

func Forge(raw uint64) store.Gen {
	return store.Gen(raw) // want "integer-to-store.Gen conversion"
}

func Leak(g store.Gen) uint64 {
	return uint64(g) // want "store.Gen-to-integer conversion"
}

// Negative cases: identity comparison, zero checks, the sanctioned
// string round-trip, and map keys are all fine.
func Same(a, b store.Gen) bool { return a == b }

func Absent(g store.Gen) bool { return g == store.NoGen }

func Wire(g store.Gen) string { return g.String() }

func Index(m map[store.Gen]int, g store.Gen) int { return m[g] }
