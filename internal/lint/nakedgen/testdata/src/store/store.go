// Stub of repro/internal/store for nakedgen fixtures. Arithmetic in
// here is legal: the analyzer exempts the defining package.
package store

type Gen uint64

const NoGen Gen = 0

func (g Gen) String() string { return "" }

func Next(g Gen) Gen { return g + 1 } // exempt: home package

func AsRaw(g Gen) uint64 { return uint64(g) } // exempt: home package
