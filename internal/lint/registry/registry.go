// Package registry is the single source of truth for which analyzers
// ship in xpqlint. cmd/xpqlint runs this set, and the meta-test in
// internal/lint pins it — removing an analyzer breaks the build gate,
// per the suite's acceptance contract.
package registry

import (
	"repro/internal/lint"
	"repro/internal/lint/arenaescape"
	"repro/internal/lint/ctxrelease"
	"repro/internal/lint/lockhold"
	"repro/internal/lint/metricnames"
	"repro/internal/lint/nakedgen"
)

// Analyzers returns the full registered suite, in stable order.
func Analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		arenaescape.Analyzer,
		ctxrelease.Analyzer,
		lockhold.Analyzer,
		metricnames.Analyzer,
		nakedgen.Analyzer,
	}
}
