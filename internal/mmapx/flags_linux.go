//go:build linux

package mmapx

import "syscall"

// MAP_POPULATE prefaults the whole mapping inside the mmap call: one
// page-table walk in the kernel instead of a trap per 4KiB page on first
// touch. Open is the preload path — the checksum pass reads every byte
// immediately anyway — so batching the faults is strictly cheaper.
const mapFlags = syscall.MAP_SHARED | syscall.MAP_POPULATE
