//go:build unix && !linux

package mmapx

import "syscall"

// Non-Linux unix has no MAP_POPULATE; pages fault in lazily on first
// touch (the open-time checksum pass warms them all anyway).
const mapFlags = syscall.MAP_SHARED
