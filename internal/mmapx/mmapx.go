// Package mmapx is a thin read-only memory-mapping layer for the XQO2
// resident document format. A Mapping hands out a []byte that aliases the
// file's pages; the tree/index layers reinterpret slices of it in place,
// so opening a corpus costs page-table setup instead of parsing.
//
// Lifetime rules (see DESIGN.md "Resident format & paging"):
//
//   - Release is advisory: it tells the OS the pages are cold
//     (madvise(DONTNEED) on Unix). The mapping stays valid — outstanding
//     readers simply refault the pages from the file — so the store can
//     shed resident memory for evicted documents without tracking readers.
//   - The mapping is unmapped only by a finalizer once nothing references
//     the Mapping anymore. Every structure aliasing the data keeps a
//     pointer to its Mapping, so slices never outlive their pages.
//
// On platforms without mmap the package falls back to reading the file
// into the heap; all APIs keep working, Release becomes a no-op and
// Mapped reports false so callers can account the bytes as heap.
package mmapx

import "sync/atomic"

// Mapping is a read-only view of a file's contents.
type Mapping struct {
	data []byte
	// mapped is true when data aliases file pages, false when the
	// fallback loaded it into the heap.
	mapped bool
	// released counts Release calls; the store surfaces it as the
	// map-fault proxy metric (each release means the next touch faults).
	released atomic.Int64
}

// Data returns the mapped bytes. The slice aliases the mapping; callers
// must not write to it and must keep the Mapping reachable for as long as
// any derived slice is in use.
func (m *Mapping) Data() []byte { return m.data }

// Len reports the mapping's size in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Mapped reports whether the bytes alias file pages (true) or were read
// into the heap by the fallback path (false).
func (m *Mapping) Mapped() bool { return m.mapped }

// Releases reports how many times Release dropped the mapping's pages.
func (m *Mapping) Releases() int64 { return m.released.Load() }
