//go:build !unix

package mmapx

import "os"

// Open falls back to reading the whole file into the heap on platforms
// without mmap. The Mapping API keeps working; Mapped reports false so
// the store accounts the bytes as heap-resident.
func Open(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data, mapped: false}, nil
}

// Release is a no-op for heap-backed fallbacks: the garbage collector,
// not the OS, owns these bytes.
func (m *Mapping) Release() error {
	m.released.Add(1)
	return nil
}

// Close drops the heap-backed bytes; the garbage collector reclaims them.
func (m *Mapping) Close() {
	m.data = nil
}
