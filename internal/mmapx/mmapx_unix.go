//go:build unix

package mmapx

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// Open maps path read-only. The returned Mapping is unmapped by a
// finalizer when it becomes unreachable; callers that alias its data must
// keep the Mapping reachable (tree.Document does, via its mapping field).
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{mapped: true}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapx: %s: file too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, mapFlags)
	if err != nil {
		return nil, fmt.Errorf("mmapx: mmap %s: %w", path, err)
	}
	m := &Mapping{data: data, mapped: true}
	runtime.SetFinalizer(m, (*Mapping).unmap)
	return m, nil
}

func (m *Mapping) unmap() {
	if m.data != nil {
		_ = syscall.Munmap(m.data)
		m.data = nil
	}
}

// Close unmaps immediately instead of waiting for the finalizer. It is
// only safe when no slice derived from Data is still in use — every
// aliased structure must already be dead. Callers that cannot prove that
// (the store, with MVCC readers possibly holding old generations) must
// use Release and let the finalizer unmap.
func (m *Mapping) Close() {
	runtime.SetFinalizer(m, nil)
	m.unmap()
}

// Release tells the OS the mapping's pages are cold and may be dropped
// (madvise(DONTNEED) for a file-backed read-only mapping discards the
// page-cache references; the next access refaults from the file). The
// mapping itself stays valid, so concurrent readers are safe — they just
// get slower. Errors are reported but harmless: the pages simply stay
// resident.
func (m *Mapping) Release() error {
	if len(m.data) == 0 {
		return nil
	}
	m.released.Add(1)
	if err := syscall.Madvise(m.data, syscall.MADV_DONTNEED); err != nil {
		return fmt.Errorf("mmapx: madvise: %w", err)
	}
	return nil
}
