package obsv

import (
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how a query ended; the flight recorder and the
// abort-cause metrics share the vocabulary.
const (
	OutcomeOK          = "ok"
	OutcomeError       = "error"
	OutcomeNotFound    = "not_found"
	OutcomeStaleCursor = "stale_cursor"
	// OutcomeAborted: the client went away mid-stream; Err says during
	// which write (header or chunk).
	OutcomeAborted = "aborted"
)

// Record is one flight-recorder entry: everything needed to answer
// "what was that query and why was it slow" without a debugger. The
// string fields alias the request's strings (no copies); the struct is
// copied whole into a preallocated ring slot.
type Record struct {
	// Seq is the global admission number (monotonic, assigned by Add);
	// Time is the request start.
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	RequestID string    `json:"request_id,omitempty"`
	Doc       string    `json:"doc"`
	Query     string    `json:"query"`
	Shard     int       `json:"shard"`
	Strategy  string    `json:"strategy,omitempty"`
	Outcome   string    `json:"outcome"`
	Err       string    `json:"error,omitempty"`
	ElapsedUS int64     `json:"elapsed_us"`
	// Count is the full answer cardinality, Sent how many nodes were
	// actually delivered (paging and aborts make them differ).
	Sent    int `json:"sent"`
	Count   int `json:"count"`
	Visited int `json:"visited"`
	// Engine counters for the slow-query post-mortem: a slow query
	// with CtxPoolHit=false rebuilt its scratch world; one with low
	// MemoHits ran cold automaton-wise.
	MemoHits   int  `json:"memo_hits"`
	Jumps      int  `json:"jumps"`
	QCacheHit  bool `json:"qcache_hit"`
	CtxPoolHit bool `json:"ctx_pool_hit"`
	// AutoReason is why the Auto selector routed the query to Strategy
	// (cold-heuristic, probe, explore, min EWMA latency, short-circuit);
	// empty for forced strategies.
	AutoReason string `json:"auto_reason,omitempty"`
	Streamed   bool   `json:"streamed,omitempty"`
	Slow       bool   `json:"slow,omitempty"`
}

// Flight is the always-on flight recorder: a fixed ring of the last N
// query records plus cheap aggregate counters. Add is designed for the
// hot path — one mutex-guarded struct copy; snapshots pay the copying.
// All methods are safe for concurrent use and nil-safe, so an
// unconfigured recorder costs one branch.
type Flight struct {
	slowNS atomic.Int64

	total   atomic.Uint64
	slow    atomic.Uint64
	aborted atomic.Uint64

	mu   sync.Mutex
	ring []Record
	next uint64 // ring admission count; next%len(ring) is the slot
}

// DefaultFlightRecords is the ring size when the creator does not
// choose one.
const DefaultFlightRecords = 256

// NewFlight builds a recorder holding the last n records (n <= 0 means
// DefaultFlightRecords). Queries at or above slow are flagged Slow;
// slow <= 0 disables the flag.
func NewFlight(n int, slow time.Duration) *Flight {
	if n <= 0 {
		n = DefaultFlightRecords
	}
	f := &Flight{ring: make([]Record, n)}
	f.slowNS.Store(int64(slow))
	return f
}

// SlowThreshold returns the current slow-query threshold (0 =
// disabled).
func (f *Flight) SlowThreshold() time.Duration {
	if f == nil {
		return 0
	}
	return time.Duration(f.slowNS.Load())
}

// SetSlowThreshold adjusts the threshold at runtime (tests, admin
// endpoints).
func (f *Flight) SetSlowThreshold(d time.Duration) {
	if f != nil {
		f.slowNS.Store(int64(d))
	}
}

// Add admits one record, stamping Seq and the Slow flag, and reports
// whether the query was slow (the caller decides whether to log it).
// Safe on nil (reports false).
func (f *Flight) Add(r Record) bool {
	if f == nil {
		return false
	}
	slowNS := f.slowNS.Load()
	r.Slow = slowNS > 0 && r.ElapsedUS*1000 >= slowNS
	f.total.Add(1)
	if r.Slow {
		f.slow.Add(1)
	}
	if r.Outcome == OutcomeAborted {
		f.aborted.Add(1)
	}
	f.mu.Lock()
	r.Seq = f.next
	f.ring[f.next%uint64(len(f.ring))] = r
	f.next++
	f.mu.Unlock()
	return r.Slow
}

// FlightStats is the snapshot form served at /debug/queries.
type FlightStats struct {
	// Total/Slow/Aborted count every record ever admitted, not just
	// those still resident in the ring.
	Total           uint64 `json:"total"`
	Slow            uint64 `json:"slow"`
	Aborted         uint64 `json:"aborted"`
	SlowThresholdMS int64  `json:"slow_threshold_ms"`
	Capacity        int    `json:"capacity"`
	// Records is newest-first.
	Records []Record `json:"records"`
}

// Snapshot copies out the most recent records (newest first), at most
// limit of them (limit <= 0 means all resident). slowOnly filters to
// flagged records. Safe on nil (returns an empty snapshot).
func (f *Flight) Snapshot(limit int, slowOnly bool) FlightStats {
	if f == nil {
		return FlightStats{}
	}
	out := FlightStats{
		Total:           f.total.Load(),
		Slow:            f.slow.Load(),
		Aborted:         f.aborted.Load(),
		SlowThresholdMS: f.SlowThreshold().Milliseconds(),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out.Capacity = len(f.ring)
	n := f.next
	resident := n
	if resident > uint64(len(f.ring)) {
		resident = uint64(len(f.ring))
	}
	if limit <= 0 || uint64(limit) > resident {
		limit = int(resident)
	}
	out.Records = make([]Record, 0, limit)
	for i := uint64(0); i < resident && len(out.Records) < limit; i++ {
		r := f.ring[(n-1-i)%uint64(len(f.ring))]
		if slowOnly && !r.Slow {
			continue
		}
		out.Records = append(out.Records, r)
	}
	return out
}

// Counts returns the lifetime admission counters (total, slow,
// aborted) without touching the ring; the /metrics exporter reads
// these. Safe on nil.
func (f *Flight) Counts() (total, slow, aborted uint64) {
	if f == nil {
		return 0, 0, 0
	}
	return f.total.Load(), f.slow.Load(), f.aborted.Load()
}
