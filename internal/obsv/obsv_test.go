package obsv

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace(true)
	defer ReleaseTrace(tr)
	root := tr.Begin(SpanQuery)
	a := tr.Begin(SpanRoute)
	tr.End(a)
	b := tr.Begin(SpanRun)
	p := tr.Begin(SpanParse)
	tr.End(p)
	c := tr.Begin(SpanCompile)
	tr.End(c)
	tr.End(b)
	tr.End(root)
	tr.C.Strategy = "optimized"
	tr.C.Visited = 42

	prof := tr.Profile("req-1")
	if prof == nil {
		t.Fatal("detail trace must produce a profile")
	}
	if prof.RequestID != "req-1" || prof.Counters.Visited != 42 {
		t.Errorf("profile head wrong: %+v", prof)
	}
	if len(prof.Spans) != 1 || prof.Spans[0].Name != SpanQuery {
		t.Fatalf("want one root span %q, got %+v", SpanQuery, prof.Spans)
	}
	kids := prof.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != SpanRoute || kids[1].Name != SpanRun {
		t.Fatalf("root children = %+v", kids)
	}
	if len(kids[1].Children) != 2 {
		t.Fatalf("eval children = %+v", kids[1].Children)
	}
	for _, s := range kids[1].Children {
		if s.DurUS < 0 || s.StartUS < 0 {
			t.Errorf("negative timing in %+v", s)
		}
	}
}

func TestTraceEndOutOfOrderClosesInner(t *testing.T) {
	tr := NewTrace(true)
	defer ReleaseTrace(tr)
	outer := tr.Begin("outer")
	tr.Begin("inner") // never explicitly ended
	tr.End(outer)
	prof := tr.Profile("")
	if len(prof.Spans) != 1 || len(prof.Spans[0].Children) != 1 {
		t.Fatalf("spans = %+v", prof.Spans)
	}
	if prof.Spans[0].Children[0].DurUS < 0 {
		t.Error("inner span left unclosed")
	}
}

func TestTraceNilAndNonDetailSafe(t *testing.T) {
	var tr *Trace
	tr.Reset(true)
	id := tr.Begin("x")
	tr.End(id)
	if tr.Profile("r") != nil || tr.Detail() {
		t.Error("nil trace must be inert")
	}

	nd := NewTrace(false)
	defer ReleaseTrace(nd)
	if id := nd.Begin("x"); id != -1 {
		t.Errorf("non-detail Begin = %d, want -1", id)
	}
	nd.C.Visited = 7 // counters still usable without detail
	if nd.Profile("r") != nil {
		t.Error("non-detail trace must not build a profile")
	}
}

func TestTraceOverflowDropsSpans(t *testing.T) {
	tr := NewTrace(true)
	defer ReleaseTrace(tr)
	root := tr.Begin("root")
	for i := 0; i < 3*maxSpans; i++ {
		tr.End(tr.Begin("leaf"))
	}
	tr.End(root)
	prof := tr.Profile("")
	if len(prof.Spans) != 1 {
		t.Fatalf("root count = %d", len(prof.Spans))
	}
	if got := len(prof.Spans[0].Children); got != maxSpans-1 {
		t.Errorf("kept %d children, want %d (truncated, not grown)", got, maxSpans-1)
	}
}

func TestTracePoolSteadyStateAllocFree(t *testing.T) {
	// Steady state: checkout, record, release. The fixed span array and
	// the pool make this allocation-free; a GC clearing the pool
	// mid-measurement can add the odd refill, hence the small ceiling
	// rather than zero.
	got := testing.AllocsPerRun(200, func() {
		tr := NewTrace(true)
		id := tr.Begin(SpanRun)
		tr.C.Visited = 10
		tr.End(id)
		ReleaseTrace(tr)
	})
	if got > 1 {
		t.Errorf("trace checkout/record/release = %.1f allocs/op, want <= 1", got)
	}
}

func TestFlightRingWrapAndOrder(t *testing.T) {
	f := NewFlight(4, 0)
	for i := 0; i < 10; i++ {
		f.Add(Record{Doc: "d", Query: "q", ElapsedUS: int64(i)})
	}
	snap := f.Snapshot(0, false)
	if snap.Total != 10 || snap.Capacity != 4 || len(snap.Records) != 4 {
		t.Fatalf("snapshot head: %+v", snap)
	}
	for i, r := range snap.Records {
		if want := int64(9 - i); r.ElapsedUS != want || r.Seq != uint64(9-i) {
			t.Errorf("records[%d] = elapsed %d seq %d, want %d (newest first)", i, r.ElapsedUS, r.Seq, want)
		}
	}
	if got := len(f.Snapshot(2, false).Records); got != 2 {
		t.Errorf("limit 2 returned %d", got)
	}
}

func TestFlightSlowThreshold(t *testing.T) {
	f := NewFlight(8, 5*time.Millisecond)
	if f.Add(Record{ElapsedUS: 1000}) {
		t.Error("1ms flagged slow at a 5ms threshold")
	}
	if !f.Add(Record{ElapsedUS: 5000}) {
		t.Error("5ms not flagged slow at a 5ms threshold")
	}
	if !f.Add(Record{ElapsedUS: 90000, Outcome: OutcomeAborted}) {
		t.Error("90ms not flagged slow")
	}
	total, slow, aborted := f.Counts()
	if total != 3 || slow != 2 || aborted != 1 {
		t.Errorf("counts = %d/%d/%d, want 3/2/1", total, slow, aborted)
	}
	onlySlow := f.Snapshot(0, true)
	if len(onlySlow.Records) != 2 {
		t.Fatalf("slowOnly returned %d records", len(onlySlow.Records))
	}
	for _, r := range onlySlow.Records {
		if !r.Slow {
			t.Errorf("non-slow record in slow snapshot: %+v", r)
		}
	}
	f.SetSlowThreshold(0)
	if f.Add(Record{ElapsedUS: 1 << 40}) {
		t.Error("threshold 0 must disable the flag")
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	if f.Add(Record{ElapsedUS: 1}) {
		t.Error("nil recorder flagged slow")
	}
	if s := f.Snapshot(0, false); s.Total != 0 || len(s.Records) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	if tot, _, _ := f.Counts(); tot != 0 {
		t.Error("nil counts nonzero")
	}
}

func TestPromWriterFormat(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Family("t_total", `a "quoted" help\line`, TypeCounter)
	p.Sample("t_total", 42, "shard", "0", "strategy", `we"ird\nm`+"\n")
	p.Family("t_gauge", "g", TypeGauge)
	p.Sample("t_gauge", 0.25)
	p.Sample("t_gauge", 1e16, "k", "v")
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantLines := []string{
		`# HELP t_total a "quoted" help\\line`,
		"# TYPE t_total counter",
		`t_total{shard="0",strategy="we\"ird\\nm\n"} 42`,
		"# HELP t_gauge g",
		"# TYPE t_gauge gauge",
		"t_gauge 0.25",
		`t_gauge{k="v"} 1e+16`,
	}
	got := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("line count %d, want %d:\n%s", len(got), len(wantLines), out)
	}
	for i := range wantLines {
		if got[i] != wantLines[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], wantLines[i])
		}
	}
}

func TestPromWriterHistogramCumulative(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Family("h_seconds", "h", TypeHistogram)
	p.Histogram("h_seconds", []float64{0.001, 0.01}, []uint64{3, 2, 1}, 0.5, "shard", "1")
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP h_seconds h\n" +
		"# TYPE h_seconds histogram\n" +
		`h_seconds_bucket{shard="1",le="0.001"} 3` + "\n" +
		`h_seconds_bucket{shard="1",le="0.01"} 5` + "\n" +
		`h_seconds_bucket{shard="1",le="+Inf"} 6` + "\n" +
		`h_seconds_sum{shard="1"} 0.5` + "\n" +
		`h_seconds_count{shard="1"} 6` + "\n"
	if sb.String() != want {
		t.Errorf("histogram exposition:\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
}
