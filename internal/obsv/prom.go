package obsv

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), written by hand:
// the daemon must not grow a client-library dependency for what is a
// line protocol. The writer keeps the invariants a scraper relies on —
// one # HELP and # TYPE line per family, emitted before its samples;
// label values escaped; numbers in a form Prometheus parses (integers
// without exponents, +Inf for the histogram overflow bucket).

// MetricType values for Family.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// PromWriter accumulates one exposition. Errors from the underlying
// writer are sticky and surfaced by Flush; intermediate calls stay
// unconditional so call sites read as a declaration of the exposition.
type PromWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewPromWriter wraps w. Call Family then Sample repeatedly, then
// Flush.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, buf: make([]byte, 0, 4096)}
}

// Family declares a metric family: its # HELP and # TYPE header.
func (p *PromWriter) Family(name, help, typ string) {
	p.buf = append(p.buf, "# HELP "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, escapeHelp(help)...)
	p.buf = append(p.buf, "\n# TYPE "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, typ...)
	p.buf = append(p.buf, '\n')
	p.flushBuf()
}

// Sample emits one sample line. labels are alternating key, value
// pairs; odd trailing elements are ignored.
func (p *PromWriter) Sample(name string, value float64, labels ...string) {
	p.buf = append(p.buf, name...)
	p.appendLabels(labels)
	p.buf = append(p.buf, ' ')
	p.appendValue(value)
	p.buf = append(p.buf, '\n')
	p.flushBuf()
}

// Histogram emits a conventional cumulative histogram family body:
// name_bucket{le="..."} lines (cumulative counts, ending with +Inf),
// name_sum and name_count. bounds and counts are parallel;
// counts[len(bounds)] is the overflow bin. The caller declared the
// family with TypeHistogram.
func (p *PromWriter) Histogram(name string, bounds []float64, counts []uint64, sum float64, labels ...string) {
	cum := uint64(0)
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		p.Sample(name+"_bucket", float64(cum),
			append(append([]string(nil), labels...), "le", formatFloat(b))...)
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	p.Sample(name+"_bucket", float64(cum),
		append(append([]string(nil), labels...), "le", "+Inf")...)
	p.Sample(name+"_sum", sum, labels...)
	p.Sample(name+"_count", float64(cum), labels...)
}

// Flush reports the first write error, if any.
func (p *PromWriter) Flush() error { return p.err }

func (p *PromWriter) appendLabels(labels []string) {
	if len(labels) < 2 {
		return
	}
	p.buf = append(p.buf, '{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			p.buf = append(p.buf, ',')
		}
		p.buf = append(p.buf, labels[i]...)
		p.buf = append(p.buf, '=', '"')
		p.buf = append(p.buf, escapeLabel(labels[i+1])...)
		p.buf = append(p.buf, '"')
	}
	p.buf = append(p.buf, '}')
}

// appendValue renders v the way Prometheus expects: integral values
// without an exponent (counters stay exact up to 2^53), +Inf/-Inf/NaN
// spelled out, everything else in shortest float form.
func (p *PromWriter) appendValue(v float64) {
	p.buf = append(p.buf, formatFloat(v)...)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (p *PromWriter) flushBuf() {
	if p.err == nil {
		_, p.err = p.w.Write(p.buf)
	}
	p.buf = p.buf[:0]
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return labelEscaper.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return helpEscaper.Replace(s)
}
