// Package obsv is the observability substrate of the serving layers:
// a pooled, allocation-free span recorder (per-query EXPLAIN-ANALYZE
// profiles), a ring-buffer flight recorder of recent queries with a
// slow-query threshold, and a dependency-free Prometheus text
// exposition writer. It is a leaf package — nothing here imports the
// engine — so every layer from the evaluator to the HTTP front end can
// record into it without import cycles.
//
// The design constraint is the warm path: PR 5 made repeated
// evaluation allocation-free, and instrumentation must not give that
// back. Three rules enforce it:
//
//   - a Trace is a fixed-size value reused through a sync.Pool; starting
//     a span is two stores and (only in detail mode) one clock read;
//   - every Trace method is nil-safe, so the engine call paths carry a
//     possibly-nil *Trace instead of branching at every site;
//   - the flight recorder writes one fixed-size record into a
//     preallocated ring slot under a mutex whose critical section is a
//     struct copy.
//
// Only the explain path (detail mode) reads the clock per span and
// only Profile — built once per explained request — allocates.
package obsv

import (
	"sync"
	"time"
)

// Span names used across the serving layers. Constants rather than an
// enum so profiles are self-describing JSON; the fixed set keeps the
// explain output stable for tools.
const (
	SpanQuery   = "query"   // whole request, root span
	SpanRoute   = "route"   // shard routing decision
	SpanEngine  = "engine"  // engine table lookup / (re)build
	SpanCursor  = "cursor"  // continuation-token decode + validation
	SpanParse   = "parse"   // XPath text -> AST
	SpanSelect  = "select"  // Auto strategy selection (chain-count probe)
	SpanCompile = "compile" // qcache lookup / automaton compilation
	SpanRun     = "run"     // automaton / baseline evaluation proper
	SpanSeek    = "seek"    // SeekPast to the resume position
	SpanPage    = "page"    // materializing one page (Eval)
	SpanStream  = "stream"  // NDJSON header+chunks+trailer (Stream)
)

// maxSpans bounds the spans one Trace can hold; the request pipeline
// produces at most ~10. Overflow is silently dropped (the profile
// stays truncated-but-valid) rather than allocated.
const maxSpans = 16

// span is one recorded phase. start is relative to the trace origin.
// detail is an optional annotation (Annotate): run spans carry the
// strategy that ran and whether it succeeded, the select span carries
// the Auto decision — so a profile with several run spans (a failed
// speculative attempt next to the engine that answered) stays
// unambiguous.
type span struct {
	name   string
	detail string
	parent int8
	start  time.Duration
	dur    time.Duration
}

// Counters are the engine-effort numbers lifted into a trace: what the
// evaluation did, as opposed to how long its phases took. They ride on
// the Trace so the explain profile and the flight record read one
// place.
type Counters struct {
	Strategy string `json:"strategy,omitempty"`
	Visited  int    `json:"visited"`
	Selected int    `json:"selected"`
	// MemoEntries/MemoHits/Jumps are ASTA evaluator counters (zero for
	// the baselines): configurations newly memoized, constant-time
	// memo lookups served, and index jump operations.
	MemoEntries int `json:"memo_entries"`
	MemoHits    int `json:"memo_hits"`
	Jumps       int `json:"jumps"`
	// QCacheHit: the compiled automaton came from the query cache.
	// CtxPoolHit: the evaluation ran in a warm pooled context.
	QCacheHit  bool `json:"qcache_hit"`
	CtxPoolHit bool `json:"ctx_pool_hit"`
	// AutoShape/AutoReason attribute an Auto-routed query to the
	// selector's canonical query shape and the reason its strategy won
	// (cold-heuristic, probe, explore, min EWMA latency, ...). Empty for
	// forced strategies.
	AutoShape  string `json:"auto_shape,omitempty"`
	AutoReason string `json:"auto_reason,omitempty"`
}

// Trace records one request's span tree and counters. The zero value
// is ready; Reset recycles it. Not safe for concurrent use (one trace
// belongs to one request). All methods are nil-safe no-ops so call
// sites thread a possibly-nil *Trace unconditionally.
type Trace struct {
	// C is filled by the layers as they learn things; exported so
	// lifting a counter is a store, not a call.
	C Counters

	detail bool
	origin time.Time
	n      int8
	open   int8 // innermost open span, -1 at top level
	spans  [maxSpans]span
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace checks a reset Trace out of the package pool. detail
// enables per-span clock reads (the explain path); without it spans
// record structure only and Begin/End never touch the clock. Return
// the trace with ReleaseTrace once nothing references it.
func NewTrace(detail bool) *Trace {
	tr := tracePool.Get().(*Trace)
	tr.Reset(detail)
	return tr
}

// ReleaseTrace parks a trace for reuse. Safe on nil.
func ReleaseTrace(tr *Trace) {
	if tr != nil {
		tracePool.Put(tr)
	}
}

// Reset clears the trace in place and stamps a new origin.
func (tr *Trace) Reset(detail bool) {
	if tr == nil {
		return
	}
	tr.C = Counters{}
	tr.detail = detail
	tr.n = 0
	tr.open = -1
	if detail {
		tr.origin = time.Now()
	} else {
		tr.origin = time.Time{}
	}
}

// Detail reports whether the trace records span timings (explain
// mode).
func (tr *Trace) Detail() bool { return tr != nil && tr.detail }

// Begin opens a span nested under the innermost open span and returns
// its id for End. On a nil trace, a non-detail trace, or span
// overflow it returns -1 (End ignores it) without reading the clock.
func (tr *Trace) Begin(name string) int8 {
	if tr == nil || !tr.detail || int(tr.n) >= maxSpans {
		return -1
	}
	id := tr.n
	tr.n++
	tr.spans[id] = span{name: name, parent: tr.open, start: time.Since(tr.origin)}
	tr.open = id
	return id
}

// Annotate attaches a detail string to the span returned by Begin
// (before or after End). The engine passes precomputed constants on the
// hot path, so annotating allocates nothing; nil traces and overflowed
// span ids are no-ops.
func (tr *Trace) Annotate(id int8, detail string) {
	if tr == nil || id < 0 || id >= tr.n {
		return
	}
	tr.spans[id].detail = detail
}

// End closes the span returned by Begin. Ending out of order closes
// the inner spans too (their durations stop with the outer one).
func (tr *Trace) End(id int8) {
	if tr == nil || id < 0 || id >= tr.n {
		return
	}
	now := time.Since(tr.origin)
	for tr.open >= id {
		s := &tr.spans[tr.open]
		if s.dur == 0 {
			s.dur = now - s.start
		}
		tr.open = s.parent
	}
}

// Span is one node of an explain profile's span tree. Durations are
// microseconds (matching the service's elapsed_us convention); StartUS
// is relative to the trace origin.
type Span struct {
	Name string `json:"name"`
	// Detail disambiguates same-named spans: run spans carry
	// "strategy=<name> outcome=ok|failed", the select span carries the
	// Auto decision with its candidate estimates.
	Detail   string `json:"detail,omitempty"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"dur_us"`
	Children []Span `json:"children,omitempty"`
}

// Profile is the JSON form of a completed trace: the span tree plus
// the engine counters — the payload of ?explain=1.
type Profile struct {
	RequestID string   `json:"request_id,omitempty"`
	Spans     []Span   `json:"spans"`
	Counters  Counters `json:"counters"`
}

// Profile materializes the trace into its JSON form. It allocates (the
// only method here that does) and is meant to run once per explained
// request, after every span has ended. Safe on nil (returns nil).
func (tr *Trace) Profile(requestID string) *Profile {
	if tr == nil || !tr.detail {
		return nil
	}
	tr.End(0) // settle any span left open by an error path
	p := &Profile{RequestID: requestID, Counters: tr.C}
	p.Spans = tr.children(-1)
	return p
}

// children builds the subtree of spans whose parent is id.
func (tr *Trace) children(id int8) []Span {
	var out []Span
	for i := int8(0); i < tr.n; i++ {
		s := &tr.spans[i]
		if s.parent != id {
			continue
		}
		out = append(out, Span{
			Name:     s.name,
			Detail:   s.detail,
			StartUS:  s.start.Microseconds(),
			DurUS:    s.dur.Microseconds(),
			Children: tr.children(i),
		})
	}
	return out
}
