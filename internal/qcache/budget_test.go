package qcache

import "testing"

// weighted is a test value with an explicit byte size.
type weighted struct{ n int64 }

func (w weighted) SizeBytes() int64 { return w.n }

// TestBudgetSharedAcrossCaches: two caches drawing on one budget — the
// inserting cache evicts its own tail once the summed resident bytes
// exceed the global bound, and the idle cache keeps its entries.
func TestBudgetSharedAcrossCaches(t *testing.T) {
	b := NewBudget(1000)
	idle := NewShared(100, 0, b)
	hot := NewShared(100, 0, b)

	idle.Put("idle-1", weighted{400})
	if got := b.Used(); got != 400 {
		t.Fatalf("budget used = %d, want 400", got)
	}
	hot.Put("hot-1", weighted{300})
	hot.Put("hot-2", weighted{300}) // total 1000: at the bound, nothing evicts
	if idle.Len() != 1 || hot.Len() != 2 || b.Used() != 1000 {
		t.Fatalf("at-bound state: idle=%d hot=%d used=%d", idle.Len(), hot.Len(), b.Used())
	}
	hot.Put("hot-3", weighted{300}) // over: hot evicts its own LRU tail (hot-1)
	if _, ok := hot.Get("hot-1"); ok {
		t.Error("hot-1 should have been evicted by the inserting cache")
	}
	if _, ok := hot.Get("hot-3"); !ok {
		t.Error("the just-inserted entry must never be the eviction victim")
	}
	if idle.Len() != 1 {
		t.Error("the idle cache must keep its working set; only the inserter pays")
	}
	if b.Over() {
		t.Errorf("budget still over after eviction: used=%d", b.Used())
	}
}

// TestBudgetReleasedOnRemove: Remove and RemovePrefix return their
// bytes to the shared budget.
func TestBudgetReleasedOnRemove(t *testing.T) {
	b := NewBudget(10_000)
	c := NewShared(100, 0, b)
	c.Put("doc\x00q1", weighted{100})
	c.Put("doc\x00q2", weighted{200})
	c.Put("other\x00q1", weighted{50})
	if got := b.Used(); got != 350 {
		t.Fatalf("used = %d, want 350", got)
	}
	if !c.Remove("doc\x00q1") {
		t.Fatal("remove failed")
	}
	if got := b.Used(); got != 250 {
		t.Errorf("used after Remove = %d, want 250", got)
	}
	if n := c.RemovePrefix("doc\x00"); n != 1 {
		t.Fatalf("RemovePrefix removed %d, want 1", n)
	}
	if got := b.Used(); got != 50 {
		t.Errorf("used after RemovePrefix = %d, want 50", got)
	}
}

// TestBudgetReplaceChargesDelta: replacing a key adjusts the budget by
// the size delta, not the sum.
func TestBudgetReplaceChargesDelta(t *testing.T) {
	b := NewBudget(10_000)
	c := NewShared(100, 0, b)
	c.Put("k", weighted{100})
	c.Put("k", weighted{700})
	if got := b.Used(); got != 700 {
		t.Errorf("used after replace = %d, want 700", got)
	}
}

// TestNilBudgetIsUnbounded: a nil budget (NewBudget(0)) must be inert —
// the NewSized path and every method tolerate it.
func TestNilBudgetIsUnbounded(t *testing.T) {
	if b := NewBudget(0); b != nil {
		t.Fatal("NewBudget(0) must be nil (no bound)")
	}
	var b *Budget
	if b.Over() || b.Used() != 0 || b.Max() != 0 {
		t.Error("nil budget must read as empty and never over")
	}
	c := NewShared(4, 0, nil)
	for i := 0; i < 10; i++ {
		c.Put(string(rune('a'+i)), weighted{1 << 20})
	}
	if c.Len() != 4 {
		t.Errorf("entry bound must still hold without a budget: len=%d", c.Len())
	}
}

// TestBudgetOversizeEntryNotCached: one entry larger than the whole
// shared budget is not admitted at all — caching it would leave the
// budget permanently over, and every other participating cache would
// wipe its working set on each insertion trying to fit a total that
// can never fit. Existing residents stay; replacing a resident key
// with an oversize value drops the key.
func TestBudgetOversizeEntryNotCached(t *testing.T) {
	b := NewBudget(500)
	c := NewShared(100, 0, b)
	other := NewShared(100, 0, b)
	other.Put("warm", weighted{200})
	c.Put("small", weighted{100})
	c.Put("huge", weighted{5000})
	if _, ok := c.Get("huge"); ok {
		t.Error("entry above the whole shared budget must not be cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("rejecting the oversize entry must not evict residents")
	}
	if got := b.Used(); got != 300 {
		t.Errorf("used = %d, want 300", got)
	}
	// Replacing a resident key with an oversize value drops the key and
	// returns its bytes.
	c.Put("small", weighted{9000})
	if _, ok := c.Get("small"); ok {
		t.Error("oversize replacement must drop the key")
	}
	if got := b.Used(); got != 200 {
		t.Errorf("used after oversize replace = %d, want 200", got)
	}
	// The sibling cache's working set survived throughout.
	if _, ok := other.Get("warm"); !ok {
		t.Error("sibling cache lost its resident to an uncacheable entry")
	}
	// Without a shared budget, a per-cache byte bound still admits an
	// oversize entry alone rather than thrash (unchanged behavior).
	solo := NewSized(100, 500)
	solo.Put("huge", weighted{5000})
	if _, ok := solo.Get("huge"); !ok {
		t.Error("per-cache byte bound must still admit an oversize entry alone")
	}
}
