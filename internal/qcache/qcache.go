// Package qcache is the compiled-query cache shared by core.Engine and
// the multi-document query service: a size-bounded LRU of compiled (and
// minimized) automata with single-flight compilation, so that N
// concurrent requests for the same uncached query trigger exactly one
// compilation and the automaton is amortized across every later
// evaluation — the regime where the paper's whole-query optimization
// pays for itself.
//
// Values are opaque (any): the same cache holds *asta.ASTA and minimized
// *sta.STA artifacts side by side; callers namespace their keys (the
// service uses docID\x00generation\x00kind\x00query, purging a
// document's entries as RemovePrefix(docID+"\x00")).
package qcache

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
)

// Cache is a concurrency-safe LRU keyed by string. The zero value is not
// usable; call New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call

	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key string
	val any
}

// call is an in-flight compilation other goroutines wait on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// DefaultCapacity bounds caches whose creator did not choose a size.
const DefaultCapacity = 256

// New returns a cache holding at most capacity entries; capacity <= 0
// falls back to DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// GetOrCompile returns the cached value for key, or runs compile to
// produce it. Concurrent callers with the same key share one compile
// call (single-flight); errors are returned to every waiter and nothing
// is cached. hit reports whether the value came from the cache without
// this caller waiting on a compilation.
func (c *Cache) GetOrCompile(key string, compile func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry).val, true, nil
	}
	c.misses++
	if cl, ok := c.inflight[key]; ok {
		// Another goroutine is compiling this key; wait for it.
		c.mu.Unlock()
		<-cl.done
		return cl.val, false, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	// A panicking compile must still release the in-flight entry and
	// wake waiters (with an error), or the key wedges forever; the
	// panic is re-raised for the caller after cleanup.
	var panicked any
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = r
				cl.err = fmt.Errorf("qcache: compile panicked: %v", r)
			}
		}()
		cl.val, cl.err = compile()
	}()
	close(cl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.add(key, cl.val)
	}
	c.mu.Unlock()
	if panicked != nil {
		panic(panicked)
	}
	return cl.val, false, cl.err
}

// Put inserts or replaces a value.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, val)
}

// add inserts under c.mu, evicting from the LRU tail past capacity.
func (c *Cache) add(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*entry).key)
		c.evictions++
	}
}

// Remove drops one key; it reports whether the key was present.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
	return ok
}

// RemovePrefix drops every key with the given prefix (the service purges
// a document's automata as `docID+"\x00"` on eviction) and returns the
// number removed.
func (c *Cache) RemovePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); strings.HasPrefix(e.key, prefix) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			n++
		}
		el = next
	}
	return n
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate is hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
