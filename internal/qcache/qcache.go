// Package qcache is the compiled-query cache shared by core.Engine and
// the multi-document query service: a size-bounded LRU of compiled (and
// minimized) automata with single-flight compilation, so that N
// concurrent requests for the same uncached query trigger exactly one
// compilation and the automaton is amortized across every later
// evaluation — the regime where the paper's whole-query optimization
// pays for itself.
//
// Values are opaque (any): the same cache holds *asta.ASTA and minimized
// *sta.STA artifacts side by side; callers namespace their keys (the
// service uses docID\x00generation\x00kind\x00query, purging a
// document's entries as RemovePrefix(docID+"\x00")).
package qcache

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Budget is a byte budget shared by several caches — the global
// admission bound over the sharded service's per-shard compiled-query
// LRUs. Each participating cache reports its resident-byte deltas to
// the budget; when the global total exceeds the maximum, the cache
// performing an insertion evicts from its own LRU tail until the total
// fits again (never the entry just inserted; an entry larger than the
// whole budget is not cached at all, since no amount of eviction could
// ever fit it). Enforcement is local to
// the inserting shard by design: no cross-shard lock is ever taken, so
// a hot shard pays its own admission pressure while idle shards keep
// their working sets warm. The atomic total makes over-budget checks
// racy by a single in-flight entry at worst, which is acceptable slack
// for a cache bound.
type Budget struct {
	max  int64
	used atomic.Int64
}

// NewBudget returns a budget of maxBytes shared bytes, or nil (meaning
// "no global bound", which every method tolerates) when maxBytes <= 0.
func NewBudget(maxBytes int64) *Budget {
	if maxBytes <= 0 {
		return nil
	}
	return &Budget{max: maxBytes}
}

func (b *Budget) add(n int64) {
	if b != nil {
		b.used.Add(n)
	}
}

// Over reports whether the summed resident bytes exceed the budget.
func (b *Budget) Over() bool { return b != nil && b.used.Load() > b.max }

// Used returns the summed resident bytes across participating caches.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Max returns the budget bound (0 for a nil budget).
func (b *Budget) Max() int64 {
	if b == nil {
		return 0
	}
	return b.max
}

// BudgetStats is a point-in-time snapshot of a shared budget.
type BudgetStats struct {
	UsedBytes int64 `json:"used_bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// Stats snapshots the budget.
func (b *Budget) Stats() BudgetStats {
	return BudgetStats{UsedBytes: b.Used(), MaxBytes: b.Max()}
}

// Cache is a concurrency-safe LRU keyed by string. The zero value is not
// usable; call New or NewSized.
type Cache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64   // 0 = no byte bound
	budget   *Budget // nil = no shared global bound
	curBytes int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call

	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key  string
	val  any
	size int64
}

// Sizer lets cached values report their heap footprint, so the LRU can
// bound bytes instead of entry count: one huge `//a[...]//b[...]` ASTA
// weighs what it costs, not the same as a three-state chain automaton.
// Values without it are charged DefaultEntryBytes.
type Sizer interface {
	SizeBytes() int64
}

// DefaultEntryBytes is the weight charged to values that do not
// implement Sizer — roughly a small compiled automaton.
const DefaultEntryBytes = 2048

func entrySize(val any) int64 {
	if s, ok := val.(Sizer); ok {
		if n := s.SizeBytes(); n > 0 {
			return n
		}
	}
	return DefaultEntryBytes
}

// call is an in-flight compilation other goroutines wait on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// DefaultCapacity bounds caches whose creator did not choose a size.
const DefaultCapacity = 256

// New returns a cache holding at most capacity entries; capacity <= 0
// falls back to DefaultCapacity.
func New(capacity int) *Cache {
	return NewSized(capacity, 0)
}

// NewSized returns a cache bounded by both an entry count and a byte
// budget (0 = entries only). Entry weights come from the values' Sizer
// implementation; eviction runs from the LRU tail until both bounds
// hold, but never evicts the entry just inserted (an oversize automaton
// is admitted alone rather than thrashing).
func NewSized(capacity int, maxBytes int64) *Cache {
	return NewShared(capacity, maxBytes, nil)
}

// NewShared returns a cache bounded like NewSized that additionally
// participates in a shared byte Budget (nil budget = NewSized): its
// resident bytes count toward the global total, and an insertion that
// finds the global total over budget evicts from this cache's own LRU
// tail until the total fits (or only the new entry remains).
func NewShared(capacity int, maxBytes int64, budget *Budget) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Cache{
		capacity: capacity,
		maxBytes: maxBytes,
		budget:   budget,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// GetOrCompile returns the cached value for key, or runs compile to
// produce it. Concurrent callers with the same key share one compile
// call (single-flight); errors are returned to every waiter and nothing
// is cached. hit reports whether the value came from the cache without
// this caller waiting on a compilation.
func (c *Cache) GetOrCompile(key string, compile func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry).val, true, nil
	}
	c.misses++
	if cl, ok := c.inflight[key]; ok {
		// Another goroutine is compiling this key; wait for it.
		c.mu.Unlock()
		<-cl.done
		return cl.val, false, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	// A panicking compile must still release the in-flight entry and
	// wake waiters (with an error), or the key wedges forever; the
	// panic is re-raised for the caller after cleanup.
	var panicked any
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = r
				cl.err = fmt.Errorf("qcache: compile panicked: %v", r)
			}
		}()
		cl.val, cl.err = compile()
	}()
	close(cl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.add(key, cl.val)
	}
	c.mu.Unlock()
	if panicked != nil {
		panic(panicked)
	}
	return cl.val, false, cl.err
}

// Put inserts or replaces a value.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, val)
}

// add inserts under c.mu, evicting from the LRU tail while either bound
// (entry count, byte budget) is exceeded.
func (c *Cache) add(key string, val any) {
	size := entrySize(val)
	// An entry larger than the entire shared budget must not be cached:
	// admitting it would leave the budget permanently over, and every
	// other participating cache would evict its whole working set on
	// each insertion trying to fit a total that can never fit. The
	// caller still gets the compiled value — it just isn't resident.
	if c.budget != nil && size > c.budget.max {
		if el, ok := c.items[key]; ok {
			e := el.Value.(*entry)
			c.curBytes -= e.size
			c.budget.add(-e.size)
			c.ll.Remove(el)
			delete(c.items, key)
		}
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.curBytes += size - e.size
		c.budget.add(size - e.size)
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.curBytes += size
		c.budget.add(size)
	}
	for c.ll.Len() > c.capacity ||
		(c.ll.Len() > 1 &&
			((c.maxBytes > 0 && c.curBytes > c.maxBytes) || c.budget.Over())) {
		tail := c.ll.Back()
		e := tail.Value.(*entry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.curBytes -= e.size
		c.budget.add(-e.size)
		c.evictions++
	}
}

// Remove drops one key; it reports whether the key was present.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if ok {
		size := el.Value.(*entry).size
		c.curBytes -= size
		c.budget.add(-size)
		c.ll.Remove(el)
		delete(c.items, key)
	}
	return ok
}

// RemovePrefix drops every key with the given prefix (the service purges
// a document's automata as `docID+"\x00"` on eviction) and returns the
// number removed.
func (c *Cache) RemovePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); strings.HasPrefix(e.key, prefix) {
			c.curBytes -= e.size
			c.budget.add(-e.size)
			c.ll.Remove(el)
			delete(c.items, e.key)
			n++
		}
		el = next
	}
	return n
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// SizeBytes is the summed weight of resident entries; MaxBytes is
	// the byte budget (0 = unbounded, entry count only).
	SizeBytes int64  `json:"size_bytes"`
	MaxBytes  int64  `json:"max_bytes,omitempty"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate is hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		SizeBytes: c.curBytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
