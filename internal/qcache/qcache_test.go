package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("size/capacity = %d/%d, want 2/2", st.Size, st.Capacity)
	}
}

func TestGetOrCompileCachesAndCounts(t *testing.T) {
	c := New(8)
	compiles := 0
	f := func() (any, error) { compiles++; return "v", nil }
	v, hit, err := c.GetOrCompile("k", f)
	if err != nil || v != "v" || hit {
		t.Fatalf("first call: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompile("k", f)
	if err != nil || v != "v" || !hit {
		t.Fatalf("second call: v=%v hit=%v err=%v", v, hit, err)
	}
	if compiles != 1 {
		t.Errorf("compiles = %d, want 1", compiles)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestGetOrCompileErrorNotCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompile("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Error("failed compile must not be cached")
	}
	if v, _, err := c.GetOrCompile("k", func() (any, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("retry after error: v=%v err=%v", v, err)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(8)
	var compiles atomic.Int64
	gate := make(chan struct{})
	const workers = 32
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, _, err := c.GetOrCompile("k", func() (any, error) {
				compiles.Add(1)
				return "shared", nil
			})
			if err != nil || v != "shared" {
				t.Errorf("v=%v err=%v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Errorf("compiles = %d, want 1 (single-flight)", n)
	}
}

func TestGetOrCompilePanicReleasesKey(t *testing.T) {
	c := New(8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic must propagate to the compiling caller")
			}
		}()
		c.GetOrCompile("k", func() (any, error) { panic("compile exploded") })
	}()
	// The key must not be wedged: a later call compiles normally.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.GetOrCompile("k", func() (any, error) { return "ok", nil })
		if err != nil || v != "ok" {
			t.Errorf("after panic: v=%v err=%v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after compile panic")
	}
}

func TestWaiterGetsErrorWhenCompilePanics(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.GetOrCompile("k", func() (any, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started
	errc := make(chan error, 1)
	go func() {
		// Joins the in-flight compile (or, if it loses the race with
		// cleanup, runs its own — which also errors, so err is non-nil
		// on both paths and the assertion below is deterministic).
		_, _, err := c.GetOrCompile("k", func() (any, error) {
			return nil, errors.New("fallback compile")
		})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter reach the in-flight wait
	close(release)
	select {
	case err := <-errc:
		if err == nil {
			t.Error("waiter must receive an error when the compile panics")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after compile panic")
	}
}

func TestRemovePrefix(t *testing.T) {
	c := New(16)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("doc1\x00q%d", i), i)
		c.Put(fmt.Sprintf("doc2\x00q%d", i), i)
	}
	if n := c.RemovePrefix("doc1\x00"); n != 4 {
		t.Errorf("removed %d, want 4", n)
	}
	if c.Len() != 4 {
		t.Errorf("len = %d, want 4", c.Len())
	}
	if _, ok := c.Get("doc2\x00q0"); !ok {
		t.Error("doc2 entries must survive")
	}
}
