package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("size/capacity = %d/%d, want 2/2", st.Size, st.Capacity)
	}
}

func TestGetOrCompileCachesAndCounts(t *testing.T) {
	c := New(8)
	compiles := 0
	f := func() (any, error) { compiles++; return "v", nil }
	v, hit, err := c.GetOrCompile("k", f)
	if err != nil || v != "v" || hit {
		t.Fatalf("first call: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompile("k", f)
	if err != nil || v != "v" || !hit {
		t.Fatalf("second call: v=%v hit=%v err=%v", v, hit, err)
	}
	if compiles != 1 {
		t.Errorf("compiles = %d, want 1", compiles)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestGetOrCompileErrorNotCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompile("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Error("failed compile must not be cached")
	}
	if v, _, err := c.GetOrCompile("k", func() (any, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("retry after error: v=%v err=%v", v, err)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(8)
	var compiles atomic.Int64
	gate := make(chan struct{})
	const workers = 32
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, _, err := c.GetOrCompile("k", func() (any, error) {
				compiles.Add(1)
				return "shared", nil
			})
			if err != nil || v != "shared" {
				t.Errorf("v=%v err=%v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Errorf("compiles = %d, want 1 (single-flight)", n)
	}
}

func TestGetOrCompilePanicReleasesKey(t *testing.T) {
	c := New(8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic must propagate to the compiling caller")
			}
		}()
		c.GetOrCompile("k", func() (any, error) { panic("compile exploded") })
	}()
	// The key must not be wedged: a later call compiles normally.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.GetOrCompile("k", func() (any, error) { return "ok", nil })
		if err != nil || v != "ok" {
			t.Errorf("after panic: v=%v err=%v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after compile panic")
	}
}

func TestWaiterGetsErrorWhenCompilePanics(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.GetOrCompile("k", func() (any, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started
	errc := make(chan error, 1)
	go func() {
		// Joins the in-flight compile (or, if it loses the race with
		// cleanup, runs its own — which also errors, so err is non-nil
		// on both paths and the assertion below is deterministic).
		_, _, err := c.GetOrCompile("k", func() (any, error) {
			return nil, errors.New("fallback compile")
		})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter reach the in-flight wait
	close(release)
	select {
	case err := <-errc:
		if err == nil {
			t.Error("waiter must receive an error when the compile panics")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after compile panic")
	}
}

func TestRemovePrefix(t *testing.T) {
	c := New(16)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("doc1\x00q%d", i), i)
		c.Put(fmt.Sprintf("doc2\x00q%d", i), i)
	}
	if n := c.RemovePrefix("doc1\x00"); n != 4 {
		t.Errorf("removed %d, want 4", n)
	}
	if c.Len() != 4 {
		t.Errorf("len = %d, want 4", c.Len())
	}
	if _, ok := c.Get("doc2\x00q0"); !ok {
		t.Error("doc2 entries must survive")
	}
}

// sized is a test value with an explicit Sizer weight.
type sized int64

func (s sized) SizeBytes() int64 { return int64(s) }

// TestByteBudgetEviction: with a byte budget, eviction is by summed
// entry weight in LRU order, not by entry count.
func TestByteBudgetEviction(t *testing.T) {
	c := NewSized(100, 100)
	c.Put("small-a", sized(20))
	c.Put("small-b", sized(20))
	c.Put("big", sized(50)) // 90 bytes resident, all fit
	if got := c.Stats().SizeBytes; got != 90 {
		t.Fatalf("SizeBytes = %d, want 90", got)
	}
	// 40 more bytes exceed the budget: the two LRU-oldest entries
	// (small-a, small-b) must go; evicting only one would not suffice.
	c.Put("mid", sized(40))
	if _, ok := c.Get("small-a"); ok {
		t.Error("small-a should have been evicted (LRU under byte pressure)")
	}
	if _, ok := c.Get("small-b"); ok {
		t.Error("small-b should have been evicted (one eviction was not enough)")
	}
	if _, ok := c.Get("big"); !ok {
		t.Error("big must survive: budget holds after evicting the two older entries")
	}
	if got := c.Stats().SizeBytes; got != 90 {
		t.Fatalf("SizeBytes after eviction = %d, want 90", got)
	}
}

// TestByteBudgetLRUOrderWithTouch: a Get refreshes recency, changing
// which mixed-size entries fall to byte pressure.
func TestByteBudgetLRUOrderWithTouch(t *testing.T) {
	c := NewSized(100, 100)
	c.Put("a", sized(40))
	c.Put("b", sized(40))
	c.Get("a") // a is now more recent than b
	c.Put("cc", sized(40))
	if _, ok := c.Get("b"); ok {
		t.Error("b was LRU and should have been evicted")
	}
	for _, k := range []string{"a", "cc"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
}

// TestOversizeEntryAdmitted: one entry larger than the whole budget is
// admitted alone instead of thrashing the cache empty.
func TestOversizeEntryAdmitted(t *testing.T) {
	c := NewSized(100, 100)
	c.Put("a", sized(30))
	c.Put("huge", sized(500))
	if _, ok := c.Get("huge"); !ok {
		t.Error("oversize entry must be admitted (alone)")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted to make room")
	}
	if got := c.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
}

// TestByteAccountingOnReplaceAndRemove: replacement adjusts the resident
// weight; Remove and RemovePrefix give bytes back.
func TestByteAccountingOnReplaceAndRemove(t *testing.T) {
	c := NewSized(100, 1000)
	c.Put("k", sized(100))
	c.Put("k", sized(40)) // replace shrinks
	if got := c.Stats().SizeBytes; got != 40 {
		t.Fatalf("after replace SizeBytes = %d, want 40", got)
	}
	c.Put("p\x00x", sized(60))
	c.Put("p\x00y", sized(70))
	c.RemovePrefix("p\x00")
	if got := c.Stats().SizeBytes; got != 40 {
		t.Fatalf("after RemovePrefix SizeBytes = %d, want 40", got)
	}
	c.Remove("k")
	if got := c.Stats().SizeBytes; got != 0 {
		t.Fatalf("after Remove SizeBytes = %d, want 0", got)
	}
}

// TestDefaultWeightForOpaqueValues: values without Sizer cost
// DefaultEntryBytes, keeping the byte bound meaningful for mixed
// caches.
func TestDefaultWeightForOpaqueValues(t *testing.T) {
	c := NewSized(100, 10*DefaultEntryBytes)
	for i := 0; i < 12; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if got := c.Len(); got != 10 {
		t.Errorf("Len = %d, want 10 (byte budget of 10 default weights)", got)
	}
}
