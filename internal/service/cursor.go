package service

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tree"
)

// Continuation tokens are opaque to clients but deliberately cheap for
// the server: base64url("c1\0doc\0generation\0lastNode"). The document
// id and generation pin the token to one loaded instance of one
// document — a resume after evict/reload decodes fine but fails the
// generation check, which is what keeps paged answers from silently
// mixing two trees. No server-side state is kept per cursor: resuming
// re-evaluates (hitting the compiled-automaton LRU) and seeks past the
// last delivered node.

const cursorVersion = "c1"

// encodeCursor builds the continuation token for a page ending at last.
func encodeCursor(doc string, gen uint64, last tree.NodeID) string {
	raw := cursorVersion + "\x00" + doc + "\x00" +
		strconv.FormatUint(gen, 10) + "\x00" +
		strconv.FormatInt(int64(last), 10)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursor parses a continuation token.
func decodeCursor(tok string) (doc string, gen uint64, last tree.NodeID, err error) {
	raw, derr := base64.RawURLEncoding.DecodeString(tok)
	if derr != nil {
		return "", 0, 0, fmt.Errorf("bad cursor: %v", derr)
	}
	parts := strings.Split(string(raw), "\x00")
	if len(parts) != 4 || parts[0] != cursorVersion {
		return "", 0, 0, fmt.Errorf("bad cursor: malformed token")
	}
	gen, gerr := strconv.ParseUint(parts[2], 10, 64)
	if gerr != nil {
		return "", 0, 0, fmt.Errorf("bad cursor: %v", gerr)
	}
	n, nerr := strconv.ParseInt(parts[3], 10, 32)
	if nerr != nil {
		return "", 0, 0, fmt.Errorf("bad cursor: %v", nerr)
	}
	return parts[1], gen, tree.NodeID(n), nil
}
