package service

import (
	"encoding/base64"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/store"
	"repro/internal/tree"
)

// Continuation tokens are opaque to clients but deliberately cheap for
// the server: base64url("c2\0shard\0doc\0generation\0lastNode"). The
// shard index pins the token to the partition that served the page, so
// a resume after the corpus was resharded (daemon restarted with a
// different -shards) and the id relocated fails the shard check; the
// document id and generation pin it to one loaded instance of one
// document — a resume after evict/reload decodes fine but fails the
// generation check. Both failures map to HTTP 410, which is what keeps
// paged answers from silently mixing two trees (or two partitions). No
// server-side state is kept per cursor: resuming re-evaluates (hitting
// the shard's compiled-automaton LRU) and seeks past the last delivered
// node — an O(log n) descent of the chunked result rope, so a resumed
// page costs O(page + log n) on top of the cached evaluation rather
// than a re-walk of every page already served.

const cursorVersion = "c2"

// encodeCursor builds the continuation token for a page of doc (owned
// by shard) ending at last.
func encodeCursor(shard int, doc string, gen store.Gen, last tree.NodeID) string {
	raw := cursorVersion + "\x00" + strconv.Itoa(shard) + "\x00" + doc + "\x00" +
		gen.String() + "\x00" +
		strconv.FormatInt(int64(last), 10)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursor parses a continuation token.
func decodeCursor(tok string) (shard int, doc string, gen store.Gen, last tree.NodeID, err error) {
	raw, derr := base64.RawURLEncoding.DecodeString(tok)
	if derr != nil {
		return 0, "", 0, 0, fmt.Errorf("bad cursor: %v", derr)
	}
	parts := strings.Split(string(raw), "\x00")
	if len(parts) != 5 || parts[0] != cursorVersion {
		return 0, "", 0, 0, fmt.Errorf("bad cursor: malformed token")
	}
	shard, serr := strconv.Atoi(parts[1])
	if serr != nil || shard < 0 {
		return 0, "", 0, 0, fmt.Errorf("bad cursor: malformed shard")
	}
	gen, gerr := store.ParseGen(parts[3])
	if gerr != nil {
		return 0, "", 0, 0, fmt.Errorf("bad cursor: malformed generation")
	}
	// The last-node field is validated explicitly rather than trusting
	// the ParseInt bit size: a negative id is not out-of-range for a
	// 32-bit parse (it used to be accepted and silently seek nowhere),
	// and an overflowing one used to surface a strconv range error.
	// Every value outside a NodeID's domain [0, MaxInt32] is rejected
	// uniformly as a malformed token (HTTP 400) — only shard relocation
	// and generation staleness are cursor-expiry conditions (410).
	n, nerr := strconv.ParseInt(parts[4], 10, 64)
	if nerr != nil || n < 0 || n > math.MaxInt32 {
		return 0, "", 0, 0, fmt.Errorf("bad cursor: node out of range")
	}
	return shard, parts[2], gen, tree.NodeID(n), nil
}
