package service

import (
	"encoding/base64"
	"strconv"
	"strings"
	"testing"

	"repro/internal/shard"
	"repro/internal/tree"
)

// rawToken assembles a continuation token from raw fields, bypassing
// encodeCursor's types so the test can produce values a well-behaved
// client never would (negative nodes, alien versions).
func rawToken(version, shard, doc, gen, last string) string {
	raw := strings.Join([]string{version, shard, doc, gen, last}, "\x00")
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// TestCursorTokenMatrix pins the full malformed-and-stale token
// contract of the paged API: every way a token can be syntactically
// broken — not base64, truncated, wrong version, wrong field count,
// negative or overflowing node id — is a client error (400, "bad
// cursor"), while the two legitimate expiry conditions — the document
// relocated to another shard, or reloaded under a new generation — are
// 410 Gone. The split matters to clients: a 400 token was never valid
// (do not retry), a 410 token was valid once (restart the page loop).
func TestCursorTokenMatrix(t *testing.T) {
	svc := New(shard.NewStore(1), Options{})
	if _, err := svc.Store().GenerateXMark("xm", 0.002, 1); err != nil {
		t.Fatal(err)
	}

	// Obtain one genuine continuation token and its raw fields.
	first := svc.Eval(Request{Doc: "xm", Query: "/site//item", Limit: 3})
	if first.Err != "" || first.Next == "" {
		t.Fatalf("seed page: err=%q next=%q", first.Err, first.Next)
	}
	cshard, cdoc, cgen, clast, err := decodeCursor(first.Next)
	if err != nil {
		t.Fatalf("decoding our own token: %v", err)
	}
	shardS := strconv.Itoa(cshard)
	genS := cgen.String()
	lastS := strconv.FormatInt(int64(clast), 10)

	// The genuine token must resume cleanly.
	if resume := svc.Eval(Request{Doc: "xm", Query: "/site//item", Limit: 3, Cursor: first.Next}); resume.Err != "" {
		t.Fatalf("genuine resume: %s", resume.Err)
	}

	cases := []struct {
		name   string
		cursor string
		code   int // expected HTTP status via statusFor
	}{
		{"not-base64", "%%%", 400},
		{"truncated", first.Next[:len(first.Next)-4], 400},
		{"missing-fields", base64.RawURLEncoding.EncodeToString([]byte("c2\x000\x00xm")), 400},
		{"wrong-version", rawToken("c1", shardS, cdoc, genS, lastS), 400},
		{"negative-node", rawToken("c2", shardS, cdoc, genS, "-5"), 400},
		{"node-overflow", rawToken("c2", shardS, cdoc, genS, "2147483648"), 400},
		{"node-not-numeric", rawToken("c2", shardS, cdoc, genS, "abc"), 400},
		{"negative-shard", rawToken("c2", "-1", cdoc, genS, lastS), 400},
		{"relocated-shard", rawToken("c2", strconv.Itoa(cshard+1), cdoc, genS, lastS), 410},
		{"stale-generation", rawToken("c2", shardS, cdoc, (cgen + 1).String(), lastS), 410},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := svc.Eval(Request{Doc: "xm", Query: "/site//item", Limit: 3, Cursor: tc.cursor})
			if resp.Err == "" {
				t.Fatalf("token %q must be rejected", tc.cursor)
			}
			if got := statusFor(resp); got != tc.code {
				t.Errorf("status = %d (%s), want %d", got, resp.Err, tc.code)
			}
			// 400-class rejections must present as malformed tokens, not
			// as strategy or evaluation failures.
			if tc.code == 400 && !strings.Contains(resp.Err, "bad cursor") {
				t.Errorf("error %q should identify a bad cursor", resp.Err)
			}
			if tc.code == 410 && !strings.Contains(resp.Err, "stale cursor") {
				t.Errorf("error %q should identify a stale cursor", resp.Err)
			}
		})
	}

	// Evict + reload rotates the generation for real: the old token must
	// go stale (410), and a fresh page loop must work.
	if !svc.EvictDoc("xm") {
		t.Fatal("evict failed")
	}
	if _, err := svc.Store().GenerateXMark("xm", 0.002, 1); err != nil {
		t.Fatal(err)
	}
	resp := svc.Eval(Request{Doc: "xm", Query: "/site//item", Limit: 3, Cursor: first.Next})
	if resp.Err == "" || statusFor(resp) != 410 {
		t.Fatalf("post-reload resume: err=%q status=%d, want 410", resp.Err, statusFor(resp))
	}
	if fresh := svc.Eval(Request{Doc: "xm", Query: "/site//item", Limit: 3}); fresh.Err != "" {
		t.Fatalf("fresh page after reload: %s", fresh.Err)
	}

	// A token whose node id is in range but beyond the document simply
	// yields an empty page (the answer has nothing past it) — that is a
	// data condition, not a protocol error.
	p2 := svc.Eval(Request{Doc: "xm", Query: "/site//item", Limit: 3})
	sh, dc, gn, _, err := decodeCursor(p2.Next)
	if err != nil {
		t.Fatal(err)
	}
	beyond := rawToken("c2", strconv.Itoa(sh), dc, gn.String(), "2147483647")
	maxed := svc.Eval(Request{Doc: "xm", Query: "/site//item", Limit: 3, Cursor: beyond})
	if maxed.Err != "" || len(maxed.Nodes) != 0 {
		t.Fatalf("in-range beyond-answer token: err=%q nodes=%d, want empty page", maxed.Err, len(maxed.Nodes))
	}
}

// TestNodeIDRoundTrip pins that every legal node id survives the token
// round trip unchanged, including the extremes of the NodeID domain.
func TestNodeIDRoundTrip(t *testing.T) {
	for _, last := range []tree.NodeID{0, 1, 1 << 20, 2147483647} {
		tok := encodeCursor(3, "doc-α", 42, last)
		sh, doc, gen, got, err := decodeCursor(tok)
		if err != nil {
			t.Fatalf("last=%d: %v", last, err)
		}
		if sh != 3 || doc != "doc-α" || gen != 42 || got != last {
			t.Fatalf("round trip (3,doc-α,42,%d) -> (%d,%s,%d,%d)", last, sh, doc, gen, got)
		}
	}
}
