package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// HTTP/JSON surface of the service, mounted by cmd/xpqd and exercised
// directly (via httptest) in tests:
//
//	POST   /query          Request           -> Response (limit/cursor paged)
//	POST   /query/stream   Request           -> NDJSON: header, chunks, trailer
//	POST   /batch   BatchRequest             -> BatchResponse
//	GET    /docs                             -> documents (with owning shard) + shard count
//	POST   /docs    LoadRequest              -> store.Stats
//	PATCH  /docs/{id}  PatchDocRequest       -> store.Stats (the new generation)
//	DELETE /docs/{id}                        -> 204
//	GET    /stats                            -> Stats
//	GET    /metrics                          -> Prometheus text exposition
//	GET    /debug/queries                    -> flight recorder (?n=, ?slow=1)
//	GET    /healthz                          -> 200 "ok"
//	GET    /debug/pprof/...                  -> pprof (opt-in via EnablePprof)
//
// The query endpoints accept ?explain=1 (or "explain": true in the
// body) to attach an EXPLAIN-ANALYZE span-tree profile to the response
// (for streams, to the trailer), and ?asof=<gen> (or "asof" in the
// body) to pin the query to one MVCC generation of the document. Every query request is tagged with a
// request id — X-Request-Id when the client sent one, generated
// otherwise — echoed in the response headers, the explain profile, the
// flight records and the logs.

// BatchRequest is the body of POST /batch.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchResponse is the reply of POST /batch.
type BatchResponse struct {
	Responses []Response `json:"responses"`
}

// LoadRequest is the body of POST /docs; exactly one source field must
// be set.
type LoadRequest struct {
	ID string `json:"id"`
	// XML is inline document text.
	XML string `json:"xml,omitempty"`
	// File is a server-side XML file path.
	File string `json:"file,omitempty"`
	// BinaryFile is a server-side file in the tree.WriteTo format.
	BinaryFile string `json:"binary_file,omitempty"`
	// XMarkScale generates a document instead of loading one.
	XMarkScale float64 `json:"xmark_scale,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// HandlerOptions configures the HTTP surface.
type HandlerOptions struct {
	// AllowFileLoads permits POST /docs to read server-side paths
	// (LoadRequest.File / BinaryFile). Off by default: an exposed
	// daemon must not hand out arbitrary readable files as queryable
	// documents.
	AllowFileLoads bool
	// StreamChunk is the nodes-per-chunk size of /query/stream
	// responses; <= 0 means DefaultStreamChunk.
	StreamChunk int
	// StreamWriteTimeout bounds each chunk write of /query/stream, so
	// a reader that stops consuming cannot pin the handler goroutine
	// (and the pinned evaluation state) forever; <= 0 means
	// DefaultStreamWriteTimeout. This is deliberately per-write, not
	// per-stream: arbitrarily long streams to live readers are fine.
	StreamWriteTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints leak internals and cost CPU, so an
	// exposed daemon opts in explicitly (-pprof).
	EnablePprof bool
}

// reqSeq numbers generated request ids within this process.
var reqSeq atomic.Uint64

// ridEpoch distinguishes restarts, so generated ids don't collide
// across process lifetimes in one log stream.
var ridEpoch = uint64(time.Now().UnixNano())

// ensureRequestID returns the client's X-Request-Id or generates one,
// and echoes it on the response.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = "q-" + strconv.FormatUint(ridEpoch&0xffffff, 16) + "-" + strconv.FormatUint(reqSeq.Add(1), 16)
	}
	w.Header().Set("X-Request-Id", rid)
	return rid
}

// wantExplain merges the ?explain=1 query parameter into the decoded
// request body's Explain field.
func wantExplain(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// asOf merges the ?asof=<gen> query parameter into the decoded request
// body's AsOf field (the parameter wins when both are set). A malformed
// value reports false and the caller answers 400.
func asOf(w http.ResponseWriter, r *http.Request, req *Request) bool {
	raw := r.URL.Query().Get("asof")
	if raw == "" {
		return true
	}
	gen, err := store.ParseGen(raw)
	if err != nil || gen == store.NoGen {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad asof: want a generation number"})
		return false
	}
	req.AsOf = gen
	return true
}

// DefaultStreamWriteTimeout is the per-chunk write deadline of
// /query/stream when HandlerOptions does not choose one.
const DefaultStreamWriteTimeout = 30 * time.Second

// deadlineWriter arms a fresh write deadline before every write; a
// stalled reader makes the blocked write fail with a timeout, which
// truncates the stream (the missing trailer tells the client).
type deadlineWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
	d  time.Duration
}

func (dw *deadlineWriter) Write(p []byte) (int, error) {
	_ = dw.rc.SetWriteDeadline(time.Now().Add(dw.d))
	return dw.w.Write(p)
}

// Flush implements http.Flusher so Stream keeps flushing per chunk.
func (dw *deadlineWriter) Flush() { _ = dw.rc.Flush() }

// NewHandler mounts the service's HTTP API on a fresh mux.
func NewHandler(s *Service, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decodeJSON(w, r, &req) {
			return
		}
		req.RequestID = ensureRequestID(w, r)
		req.Explain = req.Explain || wantExplain(r)
		if !asOf(w, r, &req) {
			return
		}
		resp := s.Eval(req)
		writeJSON(w, statusFor(resp), resp)
	})
	mux.HandleFunc("POST /query/stream", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decodeJSON(w, r, &req) {
			return
		}
		req.RequestID = ensureRequestID(w, r)
		req.Explain = req.Explain || wantExplain(r)
		if !asOf(w, r, &req) {
			return
		}
		// The content type goes out with the first flush; from then on
		// the response is committed and a failure truncates the stream.
		w.Header().Set("Content-Type", "application/x-ndjson")
		timeout := opts.StreamWriteTimeout
		if timeout <= 0 {
			timeout = DefaultStreamWriteTimeout
		}
		dw := &deadlineWriter{w: w, rc: http.NewResponseController(w), d: timeout}
		pre := s.Stream(dw, req, opts.StreamChunk)
		// Clear the armed deadline so it cannot leak into the next
		// request on a kept-alive connection.
		_ = dw.rc.SetWriteDeadline(time.Time{})
		if pre != nil {
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, statusFor(*pre), pre)
		}
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		// Sub-requests share the batch's request id, suffixed with
		// their index, so one batch is one greppable log prefix.
		rid := ensureRequestID(w, r)
		for i := range req.Requests {
			req.Requests[i].RequestID = rid + "." + strconv.Itoa(i)
		}
		// Per-request failures ride in each Response.Err; the batch is 200.
		writeJSON(w, http.StatusOK, BatchResponse{Responses: s.EvalBatch(req.Requests)})
	})
	mux.HandleFunc("GET /docs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"documents": s.Store().ListSharded(),
			"shards":    s.Store().NumShards(),
		})
	})
	mux.HandleFunc("POST /docs", func(w http.ResponseWriter, r *http.Request) {
		var req LoadRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if !opts.AllowFileLoads && (req.File != "" || req.BinaryFile != "") {
			writeJSON(w, http.StatusForbidden,
				errorBody{Error: "server-side file loads are disabled (start the daemon with -allow-file-loads)"})
			return
		}
		h, err := loadDoc(s, req)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, store.ErrExists) {
				code = http.StatusConflict
			}
			writeJSON(w, code, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusCreated, h.Stats)
	})
	mux.HandleFunc("PATCH /docs/{id}", func(w http.ResponseWriter, r *http.Request) {
		var req PatchDocRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		st, err := s.PatchDoc(r.PathValue("id"), req)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, store.ErrNotFound):
				code = http.StatusNotFound
			case errors.Is(err, store.ErrConflict):
				code = http.StatusConflict
			}
			writeJSON(w, code, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /docs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.EvictDoc(r.PathValue("id")) {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "no such document"})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /debug/queries", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit, _ := strconv.Atoi(q.Get("n"))
		slowOnly := q.Get("slow") == "1" || q.Get("slow") == "true"
		writeJSON(w, http.StatusOK, s.Flight().Snapshot(limit, slowOnly))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func loadDoc(s *Service, req LoadRequest) (*store.Handle, error) {
	sources := 0
	for _, set := range []bool{req.XML != "", req.File != "", req.BinaryFile != "", req.XMarkScale != 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of xml, file, binary_file, xmark_scale required")
	}
	switch {
	case req.XML != "":
		return s.Store().LoadXML(req.ID, []byte(req.XML))
	case req.File != "":
		return s.Store().LoadXMLFile(req.ID, req.File)
	case req.BinaryFile != "":
		return s.Store().LoadBinaryFile(req.ID, req.BinaryFile)
	default:
		return s.Store().GenerateXMark(req.ID, req.XMarkScale, req.Seed)
	}
}

// statusFor maps an Eval outcome to an HTTP status: unknown documents
// are 404, stale cursors (document reloaded under the token) are 410,
// everything else (parse errors, fragment violations) is 400.
func statusFor(resp Response) int {
	switch {
	case resp.Err == "":
		return http.StatusOK
	case resp.notFound:
		return http.StatusNotFound
	case resp.staleCursor:
		return http.StatusGone
	default:
		return http.StatusBadRequest
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
