package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/xmark"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(New(shard.NewStore(1), Options{}), HandlerOptions{}))
	t.Cleanup(srv.Close)
	return srv
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decoding body: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestDaemonEndToEnd is the acceptance scenario: load an XMark document
// over HTTP, run a 10-query batch, and observe a compiled-query cache
// hit rate > 0 on GET /stats.
func TestDaemonEndToEnd(t *testing.T) {
	srv := newTestServer(t)

	var docStats store.Stats
	code := doJSON(t, "POST", srv.URL+"/docs",
		LoadRequest{ID: "xm", XMarkScale: 0.002, Seed: 1}, &docStats)
	if code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	if docStats.Nodes == 0 || docStats.Source != store.SourceXMark {
		t.Fatalf("doc stats: %+v", docStats)
	}

	// A 10-query batch with repeats, so the LRU sees the same compiled
	// automata again. Strategy is forced: this test pins the LRU, and
	// adaptive Auto's probing would legitimately route repeats to
	// engines that compile nothing (hybrid), starving the cache.
	qs := xmark.Queries()
	var batch BatchRequest
	for i := 0; i < 10; i++ {
		batch.Requests = append(batch.Requests,
			Request{Doc: "xm", Query: qs[i%5].XPath, Strategy: "optimized"})
	}
	var batchResp BatchResponse
	if code := doJSON(t, "POST", srv.URL+"/batch", batch, &batchResp); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(batchResp.Responses) != 10 {
		t.Fatalf("batch responses = %d, want 10", len(batchResp.Responses))
	}
	for i, r := range batchResp.Responses {
		if r.Err != "" {
			t.Errorf("batch[%d] (%s): %s", i, batch.Requests[i].Query, r.Err)
		}
	}

	var stats Stats
	if code := doJSON(t, "GET", srv.URL+"/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.CacheHitRate <= 0 {
		t.Errorf("cache hit rate = %v, want > 0 (stats: %+v)", stats.CacheHitRate, stats.Cache)
	}
	if stats.Queries.Total != 10 {
		t.Errorf("query total = %d, want 10", stats.Queries.Total)
	}
	if len(stats.Documents) != 1 || stats.Documents[0].ID != "xm" {
		t.Errorf("documents = %+v", stats.Documents)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := newTestServer(t)
	if code := doJSON(t, "POST", srv.URL+"/docs",
		LoadRequest{ID: "d", XML: "<r><a><b/></a></r>"}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	var resp Response
	if code := doJSON(t, "POST", srv.URL+"/query",
		Request{Doc: "d", Query: "//b", Paths: true}, &resp); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if resp.Count != 1 || len(resp.Paths) != 1 || resp.Paths[0] != "/r/a/b" {
		t.Errorf("response: %+v", resp)
	}

	// Unknown document -> 404; bad query -> 400; bad body -> 400.
	if code := doJSON(t, "POST", srv.URL+"/query",
		Request{Doc: "ghost", Query: "//b"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown doc: status %d, want 404", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/query",
		Request{Doc: "d", Query: "///"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/query",
		map[string]any{"doc": "d", "nonsense": true}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
}

func TestDocLifecycleOverHTTP(t *testing.T) {
	srv := newTestServer(t)
	if code := doJSON(t, "POST", srv.URL+"/docs",
		LoadRequest{ID: "d", XML: "<r/>"}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	// Duplicate id -> 409; no source or two sources -> 400.
	if code := doJSON(t, "POST", srv.URL+"/docs",
		LoadRequest{ID: "d", XML: "<r/>"}, nil); code != http.StatusConflict {
		t.Errorf("duplicate: status %d, want 409", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/docs", LoadRequest{ID: "e"}, nil); code != http.StatusBadRequest {
		t.Errorf("no source: status %d, want 400", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/docs",
		LoadRequest{ID: "e", XML: "<r/>", XMarkScale: 1}, nil); code != http.StatusBadRequest {
		t.Errorf("two sources: status %d, want 400", code)
	}

	var docs struct {
		Documents []store.Stats `json:"documents"`
	}
	if code := doJSON(t, "GET", srv.URL+"/docs", nil, &docs); code != http.StatusOK || len(docs.Documents) != 1 {
		t.Fatalf("list: status %d, docs %+v", code, docs)
	}

	if code := doJSON(t, "DELETE", srv.URL+"/docs/d", nil, nil); code != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", code)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/docs/d", nil, nil); code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", code)
	}
}

func TestFileLoadsGated(t *testing.T) {
	// Default handler: server-side path reads are forbidden.
	srv := newTestServer(t)
	for _, req := range []LoadRequest{
		{ID: "f", File: "/etc/hostname"},
		{ID: "b", BinaryFile: "/etc/hostname"},
	} {
		if code := doJSON(t, "POST", srv.URL+"/docs", req, nil); code != http.StatusForbidden {
			t.Errorf("file load %+v: status %d, want 403", req, code)
		}
	}

	// Opt-in handler: loads work.
	doc := writeSmallBinary(t)
	open := httptest.NewServer(NewHandler(New(shard.NewStore(1), Options{}),
		HandlerOptions{AllowFileLoads: true}))
	defer open.Close()
	var stats store.Stats
	if code := doJSON(t, "POST", open.URL+"/docs",
		LoadRequest{ID: "b", BinaryFile: doc}, &stats); code != http.StatusCreated {
		t.Fatalf("allowed binary load: status %d", code)
	}
	if stats.Source != store.SourceBinary || stats.Nodes == 0 {
		t.Errorf("loaded stats: %+v", stats)
	}
}

// writeSmallBinary writes a small serialized document to a
// temp file and returns its path.
func writeSmallBinary(t *testing.T) string {
	t.Helper()
	st := store.New()
	h, err := st.LoadXML("tmp", []byte("<r><a/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.xqo")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Doc.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if want := "ok\n"; string(b) != want {
		t.Errorf("healthz body = %q, want %q", b, want)
	}
}
