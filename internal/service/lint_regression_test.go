package service

import (
	"io"
	"testing"

	"repro/internal/tree"
)

// TestGuardTripsZeroOnErrorPaths is the runtime twin of the xpqlint
// ctxrelease analyzer: it drives every forced error path between
// cursor checkout and Close — parse errors, unknown documents and
// strategies, malformed/stale/relocated cursors, asof mismatches,
// rejected patches, header- and chunk-abort streams — and asserts the
// context pool's generation guard never trips. A trip would mean some
// error return leaked a checked-out evaluation context and the pool
// had to reset it on the next checkout: exactly the leak class the
// analyzer proves absent at compile time.
func TestGuardTripsZeroOnErrorPaths(t *testing.T) {
	s := newTestService(t, Options{})

	// Warm the pools so later checkouts actually reuse contexts (a
	// leak is only observable as a guard trip on a warm pool).
	for i := 0; i < 3; i++ {
		if resp := s.Eval(Request{Doc: "d1", Query: "//a/b"}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}

	// Error before checkout: parse failure, unknown strategy, unknown
	// document.
	if resp := s.Eval(Request{Doc: "d1", Query: "///"}); resp.Err == "" {
		t.Fatal("parse error expected")
	}
	if resp := s.Eval(Request{Doc: "d1", Query: "//a", Strategy: "bogus"}); resp.Err == "" {
		t.Fatal("strategy error expected")
	}
	if resp := s.Eval(Request{Doc: "ghost", Query: "//a"}); resp.Err == "" {
		t.Fatal("missing-document error expected")
	}

	// Cursor-token error paths: malformed token, wrong document,
	// generation/asof mismatch, stale generation.
	page := s.Eval(Request{Doc: "d1", Query: "//a/b", Limit: 1})
	if page.Err != "" || page.Next == "" {
		t.Fatalf("paged eval: %+v", page)
	}
	if resp := s.Eval(Request{Doc: "d1", Query: "//a/b", Cursor: "not-a-token"}); resp.Err == "" {
		t.Fatal("malformed cursor accepted")
	}
	if _, err := s.Store().LoadXML("d2", []byte("<r><a><b/></a></r>")); err != nil {
		t.Fatal(err)
	}
	if resp := s.Eval(Request{Doc: "d2", Query: "//a/b", Cursor: page.Next}); resp.Err == "" {
		t.Fatal("cross-document cursor accepted")
	}
	if resp := s.Eval(Request{Doc: "d1", Query: "//a/b", Cursor: page.Next, AsOf: page.Gen + 1}); resp.Err == "" {
		t.Fatal("asof/cursor generation mismatch accepted")
	}
	// Patch twice so the paged cursor's pinned generation retires once
	// its lease lapses; a rejected patch exercises that error path too.
	if _, err := s.PatchDoc("d1", PatchDocRequest{Op: "replace", Node: tree.NodeID(1), XML: "<a><b>y</b></a>", BaseGen: page.Gen + 1}); err == nil {
		t.Fatal("patch against a wrong base generation accepted")
	}
	if _, err := s.PatchDoc("d1", PatchDocRequest{Op: "replace", Node: tree.NodeID(1), XML: "<a><b>y</b></a>"}); err != nil {
		t.Fatal(err)
	}

	// Stream abort paths: header write fails, then a chunk write fails.
	s.Stream(&failAfter{n: 0}, Request{Doc: "d1", Query: "//a/b"}, 1)
	s.Stream(&failAfter{n: 1}, Request{Doc: "d1", Query: "//a/b"}, 1)
	if pre := s.Stream(io.Discard, Request{Doc: "d1", Query: "//a/b"}, 2); pre != nil {
		t.Fatalf("clean stream refused: %+v", pre)
	}

	// More warm traffic: if any error path above leaked its context,
	// the guard fires on these checkouts.
	for i := 0; i < 3; i++ {
		if resp := s.Eval(Request{Doc: "d1", Query: "//a/b"}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}

	st := s.Stats()
	if st.Pool.GuardTrips != 0 {
		t.Fatalf("GuardTrips = %d after forced error paths; a checkout leaked (ctxrelease invariant broken at runtime)", st.Pool.GuardTrips)
	}
	if st.Queries.Errors == 0 {
		t.Fatal("test exercised no error paths")
	}
}
