package service

import (
	"sync"
	"time"

	"repro/internal/core"
)

// latencyBuckets are the histogram upper bounds in microseconds
// (100µs … 1s, then +Inf).
var latencyBuckets = []int64{100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000}

// metrics accumulates per-query counters; one instance per Service.
// A plain mutex keeps the histogram and counters mutually consistent;
// query latencies dwarf the critical section.
type metrics struct {
	mu            sync.Mutex
	total         uint64
	errors        uint64
	visitedNodes  uint64
	selectedNodes uint64
	byStrategy    map[string]uint64
	bucketCounts  []uint64 // len(latencyBuckets)+1, last is overflow
	latencySumUS  int64
	latencyMaxUS  int64

	// Streaming counters: one recordStream per stream whose header
	// went out, split by how it ended. Completed and aborted streams
	// are counted separately — and only completed streams feed the
	// first-byte/chunk-write latency aggregates, so a broken pipe's
	// stalled final write cannot pollute the latency means the
	// capacity planning reads. Chunk latencies cover
	// encode+write+flush.
	streamsCompleted uint64
	streamsAborted   uint64
	abortHeaderWrite uint64
	abortChunkWrite  uint64
	streamChunks     uint64
	streamNodes      uint64
	// Latency aggregates, completed streams only. latencyChunks is
	// the chunk count underlying chunkWriteSumUS (aborted streams'
	// chunks are excluded from the mean's denominator too).
	latencyChunks   uint64
	firstByteSumUS  int64
	firstByteMaxUS  int64
	chunkWriteSumUS int64
	chunkWriteMaxUS int64
}

// abortCause says which write the client abandoned; recorded so the
// abort metrics (and flight records) can distinguish a reader that
// never got data from one that stopped mid-answer.
type abortCause uint8

const (
	abortNone abortCause = iota
	abortHeaderWrite
	abortChunkWrite
)

func (c abortCause) String() string {
	switch c {
	case abortHeaderWrite:
		return "header_write"
	case abortChunkWrite:
		return "chunk_write"
	}
	return "none"
}

func (m *metrics) record(strat core.Strategy, elapsedUS int64, visited, selected int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.byStrategy == nil {
		m.byStrategy = make(map[string]uint64)
		m.bucketCounts = make([]uint64, len(latencyBuckets)+1)
	}
	m.total++
	m.visitedNodes += uint64(visited)
	m.selectedNodes += uint64(selected)
	m.byStrategy[strat.String()]++
	i := 0
	for i < len(latencyBuckets) && elapsedUS > latencyBuckets[i] {
		i++
	}
	m.bucketCounts[i]++
	m.latencySumUS += elapsedUS
	if elapsedUS > m.latencyMaxUS {
		m.latencyMaxUS = elapsedUS
	}
}

func (m *metrics) recordStream(cause abortCause, chunks, nodes int, firstByteUS, chunkSumUS, chunkMaxUS int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streamChunks += uint64(chunks)
	m.streamNodes += uint64(nodes)
	if cause != abortNone {
		// Aborted: count the stream and what it delivered, but keep
		// its write latencies out of the aggregates — a broken pipe
		// measures the client's death, not the server's latency.
		m.streamsAborted++
		switch cause {
		case abortHeaderWrite:
			m.abortHeaderWrite++
		case abortChunkWrite:
			m.abortChunkWrite++
		}
		return
	}
	m.streamsCompleted++
	m.latencyChunks += uint64(chunks)
	m.firstByteSumUS += firstByteUS
	if firstByteUS > m.firstByteMaxUS {
		m.firstByteMaxUS = firstByteUS
	}
	m.chunkWriteSumUS += chunkSumUS
	if chunkMaxUS > m.chunkWriteMaxUS {
		m.chunkWriteMaxUS = chunkMaxUS
	}
}

func (m *metrics) recordError() {
	m.mu.Lock()
	m.errors++
	m.total++
	m.mu.Unlock()
}

// addTo accumulates m's raw counters into dst — the per-shard metrics
// are merged this way (sums of sums, maxes of maxes) so the aggregate
// snapshot computes means from true totals rather than averaging
// per-shard means. dst is private to the caller and needs no lock.
func (m *metrics) addTo(dst *metrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst.total += m.total
	dst.errors += m.errors
	dst.visitedNodes += m.visitedNodes
	dst.selectedNodes += m.selectedNodes
	if m.byStrategy != nil {
		if dst.byStrategy == nil {
			dst.byStrategy = make(map[string]uint64)
			dst.bucketCounts = make([]uint64, len(latencyBuckets)+1)
		}
		for k, v := range m.byStrategy {
			dst.byStrategy[k] += v
		}
		for i, c := range m.bucketCounts {
			dst.bucketCounts[i] += c
		}
	}
	dst.latencySumUS += m.latencySumUS
	if m.latencyMaxUS > dst.latencyMaxUS {
		dst.latencyMaxUS = m.latencyMaxUS
	}
	dst.streamsCompleted += m.streamsCompleted
	dst.streamsAborted += m.streamsAborted
	dst.abortHeaderWrite += m.abortHeaderWrite
	dst.abortChunkWrite += m.abortChunkWrite
	dst.streamChunks += m.streamChunks
	dst.streamNodes += m.streamNodes
	dst.latencyChunks += m.latencyChunks
	dst.firstByteSumUS += m.firstByteSumUS
	if m.firstByteMaxUS > dst.firstByteMaxUS {
		dst.firstByteMaxUS = m.firstByteMaxUS
	}
	dst.chunkWriteSumUS += m.chunkWriteSumUS
	if m.chunkWriteMaxUS > dst.chunkWriteMaxUS {
		dst.chunkWriteMaxUS = m.chunkWriteMaxUS
	}
}

// LatencyBucket is one histogram bin: count of queries with latency
// <= LEMicros (the last bucket has LEMicros == 0, meaning +Inf).
type LatencyBucket struct {
	LEMicros int64  `json:"le_us,omitempty"`
	Count    uint64 `json:"count"`
}

// QueryStats is the cumulative query-side picture.
type QueryStats struct {
	Total  uint64 `json:"total"`
	Errors uint64 `json:"errors"`
	// VisitedNodes sums the nodes touched across all successful runs.
	VisitedNodes  uint64            `json:"visited_nodes"`
	SelectedNodes uint64            `json:"selected_nodes"`
	ByStrategy    map[string]uint64 `json:"by_strategy,omitempty"`
	Latency       []LatencyBucket   `json:"latency_histogram,omitempty"`
	// LatencySumUS is the raw sum behind the mean; the Prometheus
	// exporter needs it (histogram _sum must be exact, not
	// mean*count).
	LatencySumUS  int64       `json:"latency_sum_us"`
	LatencyMeanUS int64       `json:"latency_mean_us"`
	LatencyMaxUS  int64       `json:"latency_max_us"`
	Streaming     StreamStats `json:"streaming"`
}

// StreamStats is the cumulative streaming picture: how many NDJSON
// streams ran, how quickly their first byte went out, and how long
// chunk writes take (the chunk-write latency is the backpressure
// signal: slow readers show up here, not in server memory).
type StreamStats struct {
	// Streams counts every stream whose header went out; Completed
	// and Aborted split it by ending (completed = trailer delivered,
	// aborted = client gone mid-stream), with the aborted side broken
	// down by which write failed. Latency aggregates cover completed
	// streams only, so broken pipes don't pollute them.
	// xpqlint:ignore metricnames derivable: streams = completed + aborted (both exported)
	Streams   uint64 `json:"streams"`
	Completed uint64 `json:"completed"`
	// xpqlint:ignore metricnames derivable: sum of xpqd_streams_aborted_total over the cause label
	Aborted            uint64 `json:"aborted"`
	AbortedHeaderWrite uint64 `json:"aborted_header_write,omitempty"`
	AbortedChunkWrite  uint64 `json:"aborted_chunk_write,omitempty"`
	Chunks             uint64 `json:"chunks"`
	Nodes              uint64 `json:"nodes"`
	FirstByteSumUS     int64  `json:"first_byte_sum_us"`
	FirstByteMeanUS    int64  `json:"first_byte_mean_us"`
	FirstByteMaxUS     int64  `json:"first_byte_max_us"`
	ChunkWriteSumUS    int64  `json:"chunk_write_sum_us"`
	ChunkWriteMean     int64  `json:"chunk_write_mean_us"`
	ChunkWriteMaxUS    int64  `json:"chunk_write_max_us"`
}

func (m *metrics) snapshot() QueryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	qs := QueryStats{
		Total:         m.total,
		Errors:        m.errors,
		VisitedNodes:  m.visitedNodes,
		SelectedNodes: m.selectedNodes,
		LatencyMaxUS:  m.latencyMaxUS,
	}
	qs.LatencySumUS = m.latencySumUS
	if n := m.total - m.errors; n > 0 {
		qs.LatencyMeanUS = m.latencySumUS / int64(n)
	}
	qs.Streaming = StreamStats{
		Streams:            m.streamsCompleted + m.streamsAborted,
		Completed:          m.streamsCompleted,
		Aborted:            m.streamsAborted,
		AbortedHeaderWrite: m.abortHeaderWrite,
		AbortedChunkWrite:  m.abortChunkWrite,
		Chunks:             m.streamChunks,
		Nodes:              m.streamNodes,
		FirstByteSumUS:     m.firstByteSumUS,
		FirstByteMaxUS:     m.firstByteMaxUS,
		ChunkWriteSumUS:    m.chunkWriteSumUS,
		ChunkWriteMaxUS:    m.chunkWriteMaxUS,
	}
	if m.streamsCompleted > 0 {
		qs.Streaming.FirstByteMeanUS = m.firstByteSumUS / int64(m.streamsCompleted)
	}
	if m.latencyChunks > 0 {
		qs.Streaming.ChunkWriteMean = m.chunkWriteSumUS / int64(m.latencyChunks)
	}
	if m.byStrategy != nil {
		qs.ByStrategy = make(map[string]uint64, len(m.byStrategy))
		for k, v := range m.byStrategy {
			qs.ByStrategy[k] = v
		}
		qs.Latency = make([]LatencyBucket, len(m.bucketCounts))
		for i, c := range m.bucketCounts {
			b := LatencyBucket{Count: c}
			if i < len(latencyBuckets) {
				b.LEMicros = latencyBuckets[i]
			}
			qs.Latency[i] = b
		}
	}
	return qs
}

// timer wraps the monotonic clock; a named type keeps time usage in one
// place for tests.
type timer struct{ start time.Time }

func startTimer() timer { return timer{start: time.Now()} }

func (t timer) elapsedMicros() int64 { return time.Since(t.start).Microseconds() }
