package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tree"
	"repro/internal/xmark"
)

// The mmap differential harness: the same XMark document served from
// the heap (parsed/generated) and from a zero-copy mapped XQO2 file
// must produce byte-identical answers for every paper query, under
// every strategy, through every delivery mode (materialized Eval,
// paged Eval, NDJSON stream). This is the end-to-end proof that the
// aliased arrays, the word-level BP kernels and the reconstructed
// index are observationally equivalent to their heap-built twins.

// answerKey renders a node sequence (plus the full-answer count) into
// the canonical byte string the differential comparison uses.
func answerKey(count int, nodes []tree.NodeID) string {
	return fmt.Sprintf("count=%d nodes=%v", count, nodes)
}

// pagedAnswer drains a query through the paged API, 7 nodes at a time.
func pagedAnswer(t *testing.T, svc *Service, req Request) (string, string) {
	t.Helper()
	var nodes []tree.NodeID
	count := -1
	req.Limit = 7
	for {
		resp := svc.Eval(req)
		if resp.Err != "" {
			return "", resp.Err
		}
		count = resp.Count
		nodes = append(nodes, resp.Nodes...)
		if resp.Next == "" {
			break
		}
		req.Cursor = resp.Next
	}
	return answerKey(count, nodes), ""
}

// streamedAnswer drains a query through the NDJSON stream, re-parsing
// the chunk lines back into a node sequence.
func streamedAnswer(t *testing.T, svc *Service, req Request) (string, string) {
	t.Helper()
	var buf bytes.Buffer
	if pre := svc.Stream(&buf, req, 5); pre != nil {
		return "", pre.Err
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("stream produced no header")
	}
	var hdr StreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("bad stream header: %v", err)
	}
	var nodes []tree.NodeID
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if len(lines) == 0 {
		t.Fatal("stream had no trailer")
	}
	var tr StreamTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil {
		t.Fatalf("bad stream trailer: %v", err)
	}
	if !tr.Done {
		t.Fatalf("stream not done: %+v", tr)
	}
	for _, line := range lines[:len(lines)-1] {
		var ch StreamChunk
		if err := json.Unmarshal(line, &ch); err != nil {
			t.Fatalf("bad stream chunk: %v", err)
		}
		nodes = append(nodes, ch.Nodes...)
	}
	return answerKey(hdr.Count, nodes), ""
}

func TestMmapDifferentialMatrix(t *testing.T) {
	scales := []float64{0.001, 0.002, 0.004}
	strategies := []string{"auto", "naive", "jumping", "memoized", "optimized",
		"hybrid", "topdown-det", "stepwise"}
	for _, scale := range scales {
		d := xmark.Generate(xmark.Config{Scale: scale, Seed: 42})
		path := filepath.Join(t.TempDir(), "xm.xqo2")
		if err := store.SaveXQO2File(path, d); err != nil {
			t.Fatal(err)
		}
		heap := New(shard.NewStore(1), Options{})
		if _, err := heap.Store().Add("xm", d, store.SourceXMark); err != nil {
			t.Fatal(err)
		}
		mapped := New(shard.NewStore(1), Options{})
		if _, err := mapped.Store().LoadMapped("xm", path); err != nil {
			t.Fatal(err)
		}
		for _, q := range xmark.Queries() {
			for _, strat := range strategies {
				tag := fmt.Sprintf("scale=%g %s strategy=%s", scale, q.ID, strat)
				req := Request{Doc: "xm", Query: q.XPath, Strategy: strat}

				// Materialized: whole answer in one Response.
				hr, mr := heap.Eval(req), mapped.Eval(req)
				if hr.Err != mr.Err {
					t.Fatalf("%s: error mismatch: heap=%q mapped=%q", tag, hr.Err, mr.Err)
				}
				if hr.Err != "" {
					continue // both reject (e.g. unsupported strategy): agreed
				}
				hk := answerKey(hr.Count, hr.Nodes)
				if mk := answerKey(mr.Count, mr.Nodes); hk != mk {
					t.Fatalf("%s materialized: heap %s != mapped %s", tag, hk, mk)
				}

				// Paged: 7-node pages via continuation tokens.
				hp, herr := pagedAnswer(t, heap, req)
				mp, merr := pagedAnswer(t, mapped, req)
				if herr != merr {
					t.Fatalf("%s paged: error mismatch: heap=%q mapped=%q", tag, herr, merr)
				}
				if hp != mp {
					t.Fatalf("%s paged: heap %s != mapped %s", tag, hp, mp)
				}
				if hp != hk {
					t.Fatalf("%s paged answer diverges from materialized: %s != %s", tag, hp, hk)
				}

				// Streamed: NDJSON chunks of 5.
				hs, herr := streamedAnswer(t, heap, req)
				ms, merr := streamedAnswer(t, mapped, req)
				if herr != merr {
					t.Fatalf("%s streamed: error mismatch: heap=%q mapped=%q", tag, herr, merr)
				}
				if hs != ms {
					t.Fatalf("%s streamed: heap %s != mapped %s", tag, hs, ms)
				}
				if hs != hk {
					t.Fatalf("%s streamed answer diverges from materialized: %s != %s", tag, hs, hk)
				}
			}
		}
	}
}
