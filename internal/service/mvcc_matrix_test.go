package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/store"
)

// The cursor-pinning matrix: a continuation token pins an MVCC
// generation, so resuming must succeed (200) — against the pinned
// tree, not the latest — for every event that leaves the pinned
// generation alive, and fail with 410 exactly when the generation is
// gone. Both delivery modes (paged Eval, NDJSON stream) are driven
// through all four scenarios:
//
//	                      paged  streamed
//	patch same document    200     200    (serves the old generation)
//	patch other document   200     200
//	GC of pinned gen       410     410    (lease expired + swept)
//	daemon restart         410     410    (entropy-seeded generations)

const matrixXML = "<r><a><b/><b/></a><a><b/><b/></a><a><b/><b/></a></r>"

// matrixService builds a 1-shard service with documents d1 and d2.
func matrixService(t *testing.T, ttl time.Duration) *Service {
	t.Helper()
	svc := New(shard.NewStore(1), Options{CursorTTL: ttl})
	for _, id := range []string{"d1", "d2"} {
		if _, err := svc.Store().LoadXML(id, []byte(matrixXML)); err != nil {
			t.Fatal(err)
		}
	}
	return svc
}

// grow patches doc by appending one more <a><b/><b/></a> subtree under
// the document element, bumping the generation.
func grow(t *testing.T, svc *Service, doc string) {
	t.Helper()
	if _, err := svc.PatchDoc(doc, PatchDocRequest{Op: "insert", Node: 1, XML: "<a><b/><b/></a>"}); err != nil {
		t.Fatalf("patch %s: %v", doc, err)
	}
}

// pagedToken returns the first page (2 of 6 //b nodes) and its token.
func pagedToken(t *testing.T, svc *Service) Response {
	t.Helper()
	resp := svc.Eval(Request{Doc: "d1", Query: "//b", Limit: 2})
	if resp.Err != "" || resp.Next == "" || resp.Count != 6 {
		t.Fatalf("first page: err=%q next=%q count=%d", resp.Err, resp.Next, resp.Count)
	}
	return resp
}

// runStream drives one NDJSON stream; pre is non-nil when the stream
// was refused before the header.
func runStream(t *testing.T, svc *Service, req Request) (StreamHeader, []StreamChunk, StreamTrailer, *Response) {
	t.Helper()
	var buf bytes.Buffer
	pre := svc.Stream(&buf, req, 2)
	var header StreamHeader
	var chunks []StreamChunk
	var trailer StreamTrailer
	if pre != nil {
		return header, chunks, trailer, pre
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header: %v", err)
	}
	for _, l := range lines[1 : len(lines)-1] {
		var c StreamChunk
		if err := json.Unmarshal([]byte(l), &c); err != nil {
			t.Fatalf("chunk: %v", err)
		}
		chunks = append(chunks, c)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("trailer: %v", err)
	}
	return header, chunks, trailer, nil
}

// streamToken returns a mid-answer stream token and the stream's
// pinned generation.
func streamToken(t *testing.T, svc *Service) (string, store.Gen) {
	t.Helper()
	header, _, trailer, pre := runStream(t, svc, Request{Doc: "d1", Query: "//b", Limit: 2})
	if pre != nil {
		t.Fatalf("seed stream refused: %+v", pre)
	}
	if trailer.Cursor == "" || header.Count != 6 {
		t.Fatalf("seed stream: cursor=%q count=%d", trailer.Cursor, header.Count)
	}
	return trailer.Cursor, header.Gen
}

func TestCursorPinningMatrixPaged(t *testing.T) {
	t.Run("patch-same-doc", func(t *testing.T) {
		svc := matrixService(t, time.Hour)
		first := pagedToken(t, svc)
		grow(t, svc, "d1")
		// Latest moved on (8 //b nodes now) but the token's generation
		// still serves the old tree: exactly the 4 remaining nodes.
		rest := svc.Eval(Request{Doc: "d1", Query: "//b", Cursor: first.Next})
		if rest.Err != "" || statusFor(rest) != 200 {
			t.Fatalf("resume after same-doc patch: err=%q status=%d", rest.Err, statusFor(rest))
		}
		if rest.Gen != first.Gen || rest.Count != 6 || len(rest.Nodes) != 4 {
			t.Fatalf("resume served gen=%d count=%d nodes=%d, want pinned gen=%d count=6 nodes=4",
				rest.Gen, rest.Count, len(rest.Nodes), first.Gen)
		}
		// The latest generation answers the patched tree.
		if latest := svc.Eval(Request{Doc: "d1", Query: "//b"}); latest.Count != 8 || latest.Gen == first.Gen {
			t.Fatalf("latest: count=%d gen=%d (pinned %d), want 8 on a new generation", latest.Count, latest.Gen, first.Gen)
		}
	})
	t.Run("patch-other-doc", func(t *testing.T) {
		svc := matrixService(t, time.Hour)
		first := pagedToken(t, svc)
		grow(t, svc, "d2")
		rest := svc.Eval(Request{Doc: "d1", Query: "//b", Cursor: first.Next})
		if rest.Err != "" || statusFor(rest) != 200 || len(rest.Nodes) != 4 {
			t.Fatalf("resume after other-doc patch: err=%q status=%d nodes=%d", rest.Err, statusFor(rest), len(rest.Nodes))
		}
	})
	t.Run("gc-of-pinned-gen", func(t *testing.T) {
		svc := matrixService(t, 20*time.Millisecond)
		first := pagedToken(t, svc)
		grow(t, svc, "d1")
		time.Sleep(40 * time.Millisecond)
		svc.Stats() // the stats sweep is the lease janitor
		rest := svc.Eval(Request{Doc: "d1", Query: "//b", Cursor: first.Next})
		if statusFor(rest) != 410 || !strings.Contains(rest.Err, "stale cursor") {
			t.Fatalf("resume after GC: status=%d err=%q, want 410 stale cursor", statusFor(rest), rest.Err)
		}
	})
	t.Run("daemon-restart", func(t *testing.T) {
		svc := matrixService(t, time.Hour)
		first := pagedToken(t, svc)
		svc2 := matrixService(t, time.Hour) // same corpus, fresh process state
		rest := svc2.Eval(Request{Doc: "d1", Query: "//b", Cursor: first.Next})
		if statusFor(rest) != 410 || !strings.Contains(rest.Err, "stale cursor") {
			t.Fatalf("resume after restart: status=%d err=%q, want 410 stale cursor", statusFor(rest), rest.Err)
		}
	})
}

func TestCursorPinningMatrixStreamed(t *testing.T) {
	countNodes := func(chunks []StreamChunk) int {
		n := 0
		for _, c := range chunks {
			n += len(c.Nodes)
		}
		return n
	}
	t.Run("patch-same-doc", func(t *testing.T) {
		svc := matrixService(t, time.Hour)
		tok, gen := streamToken(t, svc)
		grow(t, svc, "d1")
		header, chunks, trailer, pre := runStream(t, svc, Request{Doc: "d1", Query: "//b", Cursor: tok})
		if pre != nil {
			t.Fatalf("resume after same-doc patch refused: %+v (status %d)", pre, statusFor(*pre))
		}
		if header.Gen != gen || header.Count != 6 || countNodes(chunks) != 4 || !trailer.Done {
			t.Fatalf("resume served gen=%d count=%d nodes=%d done=%v, want pinned gen=%d count=6 nodes=4",
				header.Gen, header.Count, countNodes(chunks), trailer.Done, gen)
		}
	})
	t.Run("patch-other-doc", func(t *testing.T) {
		svc := matrixService(t, time.Hour)
		tok, _ := streamToken(t, svc)
		grow(t, svc, "d2")
		_, chunks, trailer, pre := runStream(t, svc, Request{Doc: "d1", Query: "//b", Cursor: tok})
		if pre != nil || countNodes(chunks) != 4 || !trailer.Done {
			t.Fatalf("resume after other-doc patch: pre=%+v nodes=%d", pre, countNodes(chunks))
		}
	})
	t.Run("gc-of-pinned-gen", func(t *testing.T) {
		svc := matrixService(t, 20*time.Millisecond)
		tok, _ := streamToken(t, svc)
		grow(t, svc, "d1")
		time.Sleep(40 * time.Millisecond)
		svc.Stats()
		_, _, _, pre := runStream(t, svc, Request{Doc: "d1", Query: "//b", Cursor: tok})
		if pre == nil || statusFor(*pre) != 410 || !strings.Contains(pre.Err, "stale cursor") {
			t.Fatalf("resume after GC: pre=%+v, want 410 stale cursor", pre)
		}
	})
	t.Run("daemon-restart", func(t *testing.T) {
		svc := matrixService(t, time.Hour)
		tok, _ := streamToken(t, svc)
		svc2 := matrixService(t, time.Hour)
		_, _, _, pre := runStream(t, svc2, Request{Doc: "d1", Query: "//b", Cursor: tok})
		if pre == nil || statusFor(*pre) != 410 || !strings.Contains(pre.Err, "stale cursor") {
			t.Fatalf("resume after restart: pre=%+v, want 410 stale cursor", pre)
		}
	})
}

// TestAsOfTimeTravel pins the explicit time-travel path: a query with
// AsOf set reads the pinned generation while it lives (kept here by an
// open cursor lease), disagreeing AsOf+cursor is a client error, and a
// retired generation answers 410.
func TestAsOfTimeTravel(t *testing.T) {
	svc := matrixService(t, time.Hour)
	first := pagedToken(t, svc) // holds a lease on gen 1
	grow(t, svc, "d1")

	old := svc.Eval(Request{Doc: "d1", Query: "//b", AsOf: first.Gen})
	if old.Err != "" || old.Count != 6 || old.Gen != first.Gen {
		t.Fatalf("asof old gen: err=%q count=%d gen=%d", old.Err, old.Count, old.Gen)
	}
	latest := svc.Eval(Request{Doc: "d1", Query: "//b"})
	if latest.Count != 8 {
		t.Fatalf("latest count = %d, want 8", latest.Count)
	}
	// asof the latest generation works too.
	if byGen := svc.Eval(Request{Doc: "d1", Query: "//b", AsOf: latest.Gen}); byGen.Count != 8 {
		t.Fatalf("asof latest: count = %d, want 8", byGen.Count)
	}
	// Cursor and asof must agree.
	conflict := svc.Eval(Request{Doc: "d1", Query: "//b", Cursor: first.Next, AsOf: latest.Gen})
	if statusFor(conflict) != 400 || !strings.Contains(conflict.Err, "asof") {
		t.Fatalf("cursor/asof disagreement: status=%d err=%q, want 400", statusFor(conflict), conflict.Err)
	}
	// A never-existing generation is gone (410), with asof phrasing.
	gone := svc.Eval(Request{Doc: "d1", Query: "//b", AsOf: first.Gen + 1000})
	if statusFor(gone) != 410 {
		t.Fatalf("asof unknown gen: status=%d err=%q, want 410", statusFor(gone), gone.Err)
	}
	// Unknown document: 404 regardless of asof.
	if miss := svc.Eval(Request{Doc: "nope", Query: "//b", AsOf: 3}); statusFor(miss) != 404 {
		t.Fatalf("asof missing doc: status=%d", statusFor(miss))
	}
}
