package service

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/xmlparse"
)

// TestMVCCChurnHammer is the mutation-era concurrency hammer: on every
// shard of a 4-shard service at once — concurrent patchers bumping
// generations (with base-gen CAS conflicts), generation GC (short
// cursor leases + the stats sweep), warm pooled one-shot and paged
// Evals, asof time-travel reads, and NDJSON streaming readers resuming
// across patches. Every observation must be clean: a successful answer
// with an internally consistent (gen, count) pair, or one of the
// expected errors (409-class patch conflicts, 410-class stale
// cursors). Run under -race (CI does); the pooled evaluation contexts
// must never cross engines (GuardTrips == 0) even while generations
// churn underneath them.
func TestMVCCChurnHammer(t *testing.T) {
	const shards = 4
	const docsN = 8
	svc := New(shard.NewStore(shards), Options{CursorTTL: 50 * time.Millisecond})
	// Half the corpus is heap-backed (parsed XML), half mmap-backed
	// (XQO2 save + zero-copy open) under a deliberately tight resident
	// budget, so the paging enforcer's releases and re-charges race the
	// patchers and readers below.
	const seedXML = "<r><a><b/><b/></a><a><b/><b/></a></r>"
	var mappedBytes int64
	for i := 0; i < docsN; i++ {
		id := fmt.Sprintf("d%d", i)
		if i%2 == 0 {
			if _, err := svc.Store().LoadXML(id, []byte(seedXML)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		d, err := xmlparse.Parse([]byte(seedXML))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), id+".xqo2")
		if err := store.SaveXQO2File(path, d); err != nil {
			t.Fatal(err)
		}
		h, err := svc.Store().LoadMapped(id, path)
		if err != nil {
			t.Fatal(err)
		}
		mappedBytes = h.Stats.MappedBytes
	}
	// Budget for about one and a half mapped documents across the whole
	// store: cold mappings are continuously released and re-heated.
	svc.Store().SetResidentBudget(mappedBytes + mappedBytes/2)
	docID := func(i int) string { return fmt.Sprintf("d%d", i%docsN) }

	iters := 120
	if testing.Short() {
		iters = 25
	}

	// fail collects the first unexpected observation per goroutine
	// (t.Errorf is not callable after the test function returns).
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 10 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	start := make(chan struct{})

	// Patchers: alternate unconditional patches with base-gen CAS
	// patches that race each other (conflicts expected and tolerated).
	for g := 0; g < docsN; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				id := docID(g)
				if i%3 == 0 {
					latest := svc.Eval(Request{Doc: id, Query: "//b", Limit: 1})
					if latest.Err != "" {
						fail("patcher probe %s: %s", id, latest.Err)
						return
					}
					_, err := svc.PatchDoc(id, PatchDocRequest{
						Op: "insert", Node: 1, XML: "<a><b/></a>", BaseGen: latest.Gen})
					if err != nil && !strings.Contains(err.Error(), "not latest") {
						fail("CAS patch %s: %v", id, err)
						return
					}
				} else {
					op := PatchDocRequest{Op: "insert", Node: 1, XML: "<a><b/></a>"}
					if i%5 == 4 {
						// Shrink occasionally so documents don't balloon:
						// replace the whole document element.
						op = PatchDocRequest{Op: "replace", Node: 1, XML: "<r><a><b/><b/></a><a><b/><b/></a></r>"}
					}
					if _, err := svc.PatchDoc(docID(g), op); err != nil {
						fail("patch %s: %v", id, err)
						return
					}
				}
			}
		}()
	}

	// Paged readers: page loops that tolerate exactly 410 mid-loop (the
	// lease is short by design) and otherwise demand pinned-generation
	// consistency: every page of one loop reports the same gen and count.
	for g := 0; g < docsN; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				id := docID(g + 1)
				first := svc.Eval(Request{Doc: id, Query: "//b", Limit: 2})
				if first.Err != "" {
					fail("first page %s: %s", id, first.Err)
					return
				}
				gen, count, cursor := first.Gen, first.Count, first.Next
				for hops := 0; cursor != "" && hops < 4; hops++ {
					page := svc.Eval(Request{Doc: id, Query: "//b", Limit: 2, Cursor: cursor})
					if page.staleCursor {
						break // lease expired mid-loop: legitimate 410
					}
					if page.Err != "" {
						fail("resume %s: %s", id, page.Err)
						return
					}
					if page.Gen != gen || page.Count != count {
						fail("page drifted: %s gen %d->%d count %d->%d", id, gen, page.Gen, count, page.Count)
						return
					}
					cursor = page.Next
				}
			}
		}()
	}

	// Streaming readers (header-consistency: trailer nodes must match
	// what the pinned generation promised).
	for g := 0; g < shards; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				id := docID(g + 3)
				if pre := svc.Stream(io.Discard, Request{Doc: id, Query: "//b"}, 2); pre != nil {
					fail("stream %s refused: %s", id, pre.Err)
					return
				}
			}
		}()
	}

	// AsOf readers: grab the current gen, then keep reading it while
	// patchers move latest; 410 (gen retired) is legitimate, a changed
	// answer under the same gen is not.
	for g := 0; g < shards; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				id := docID(g + 5)
				pin := svc.Eval(Request{Doc: id, Query: "//b"})
				if pin.Err != "" {
					fail("asof seed %s: %s", id, pin.Err)
					return
				}
				for r := 0; r < 3; r++ {
					again := svc.Eval(Request{Doc: id, Query: "//b", AsOf: pin.Gen})
					if again.staleCursor {
						break // generation retired underneath: legitimate
					}
					if again.Err != "" {
						fail("asof %s gen %d: %s", id, pin.Gen, again.Err)
						return
					}
					if again.Count != pin.Count {
						fail("asof drifted: %s gen %d count %d->%d", id, pin.Gen, pin.Count, again.Count)
						return
					}
				}
			}
		}()
	}

	// The janitor: stats sweeps retiring expired leases while everyone
	// else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iters; i++ {
			svc.Stats()
			time.Sleep(time.Millisecond)
		}
	}()

	close(start)
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	st := svc.Stats()
	if st.Pool.GuardTrips != 0 {
		t.Errorf("generation guard tripped %d times: pooled contexts crossed engines", st.Pool.GuardTrips)
	}
	if st.MVCC.Patches == 0 || st.MVCC.Retired == 0 {
		t.Errorf("hammer did not churn: %+v", st.MVCC)
	}
	// After the dust settles and leases expire, the chains must drain
	// back to (roughly) one live generation per document.
	time.Sleep(60 * time.Millisecond)
	if got := svc.Stats().MVCC; got.LiveGenerations > docsN {
		t.Errorf("generations leaked: %d live for %d documents (%+v)", got.LiveGenerations, docsN, got)
	}
}
