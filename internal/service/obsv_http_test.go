package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/shard"
)

// The observability surface: explain profiles per strategy, the
// Prometheus exposition (names, types and label sets pinned by a
// golden list), the flight recorder, and snapshot/serving races under
// document churn.

// spanNames flattens a profile's span tree into a set.
func spanNames(spans []obsv.Span, into map[string]bool) {
	for _, s := range spans {
		into[s.Name] = true
		spanNames(s.Children, into)
	}
}

func TestExplainAllStrategies(t *testing.T) {
	s := newTestService(t, Options{})
	for _, strat := range []string{"", "auto", "naive", "jumping", "memoized", "optimized", "hybrid", "topdown-det", "stepwise"} {
		// The TDSTA fragment wants child steps before descendant steps.
		query := "//a/b"
		if strat == "topdown-det" {
			query = "/r/a/b"
		}
		resp := s.Eval(Request{Doc: "d1", Query: query, Strategy: strat, Explain: true, RequestID: "rid-" + strat})
		if resp.Err != "" {
			t.Fatalf("strategy %q: %s", strat, resp.Err)
		}
		p := resp.Explain
		if p == nil {
			t.Fatalf("strategy %q: no explain profile", strat)
		}
		if p.RequestID != "rid-"+strat {
			t.Errorf("strategy %q: profile request id %q", strat, p.RequestID)
		}
		if p.Counters.Strategy != resp.Strategy {
			t.Errorf("strategy %q: counters say %q, response says %q", strat, p.Counters.Strategy, resp.Strategy)
		}
		if p.Counters.Selected != resp.Count || p.Counters.Visited != resp.Visited {
			t.Errorf("strategy %q: counters %+v vs response count=%d visited=%d",
				strat, p.Counters, resp.Count, resp.Visited)
		}
		if len(p.Spans) != 1 || p.Spans[0].Name != obsv.SpanQuery {
			t.Fatalf("strategy %q: want a single %q root span, got %+v", strat, obsv.SpanQuery, p.Spans)
		}
		names := map[string]bool{}
		spanNames(p.Spans, names)
		for _, want := range []string{obsv.SpanRoute, obsv.SpanEngine, obsv.SpanParse, obsv.SpanRun, obsv.SpanPage} {
			if !names[want] {
				t.Errorf("strategy %q: missing span %q in %v", strat, want, names)
			}
		}
	}
	// Explain costs nothing when not asked for.
	if resp := s.Eval(Request{Doc: "d1", Query: "//a/b"}); resp.Explain != nil {
		t.Error("unexplained request grew a profile")
	}
	// Failed requests still profile the phases they reached.
	resp := s.Eval(Request{Doc: "d1", Query: "///", Explain: true})
	if resp.Err == "" || resp.Explain == nil {
		t.Fatalf("bad query: err=%q explain=%v, want both", resp.Err, resp.Explain)
	}
}

func TestExplainHTTPQueryAndStream(t *testing.T) {
	srv := newTestServer(t)
	mustLoad(t, srv.URL, "d1")

	// /query?explain=1 with a caller-chosen request id.
	body := strings.NewReader(`{"doc":"d1","query":"//a/b"}`)
	req, err := http.NewRequest("POST", srv.URL+"/query?explain=1", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "test-42")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.Header.Get("X-Request-Id") != "test-42" {
		t.Errorf("request id not echoed: %q", hr.Header.Get("X-Request-Id"))
	}
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Explain == nil || resp.Explain.RequestID != "test-42" {
		t.Fatalf("explain = %+v, want profile with request id test-42", resp.Explain)
	}

	// /query/stream?explain=1: the profile rides the trailer and
	// includes the stream span.
	hr2, err := http.Post(srv.URL+"/query/stream?explain=1", "application/json",
		strings.NewReader(`{"doc":"d1","query":"//a/b"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	var trailer StreamTrailer
	sc := bufio.NewScanner(hr2.Body)
	for sc.Scan() {
		var probe struct {
			Done bool `json:"done"`
		}
		line := sc.Bytes()
		if json.Unmarshal(line, &probe) == nil && probe.Done {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatal(err)
			}
		}
	}
	if trailer.Explain == nil {
		t.Fatal("stream trailer has no explain profile")
	}
	names := map[string]bool{}
	spanNames(trailer.Explain.Spans, names)
	if !names[obsv.SpanStream] {
		t.Errorf("stream profile lacks the %q span: %v", obsv.SpanStream, names)
	}
	// A generated request id must have been assigned.
	if hr2.Header.Get("X-Request-Id") == "" || trailer.Explain.RequestID == "" {
		t.Error("stream request did not get a generated request id")
	}
}

func mustLoad(t *testing.T, base, id string) {
	t.Helper()
	code := doJSON(t, "POST", base+"/docs",
		LoadRequest{ID: id, XML: "<r><a><b>x</b></a><a><b/><b/></a><c/></r>"}, nil)
	if code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
}

// failAfter fails every write past the first n.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("client gone")
	}
	f.n--
	return len(p), nil
}

// promFamilies are the exported metric families and their types; the
// golden list is the compatibility contract of /metrics — renaming or
// retyping a family breaks dashboards, so it must break this test
// first.
var promFamilies = map[string]string{
	"xpqd_qcache_budget_used_bytes":         "gauge",
	"xpqd_qcache_budget_max_bytes":          "gauge",
	"xpqd_queries_total":                    "counter",
	"xpqd_query_errors_total":               "counter",
	"xpqd_visited_nodes_total":              "counter",
	"xpqd_selected_nodes_total":             "counter",
	"xpqd_queries_by_strategy_total":        "counter",
	"xpqd_query_duration_seconds":           "histogram",
	"xpqd_query_duration_max_seconds":       "gauge",
	"xpqd_streams_completed_total":          "counter",
	"xpqd_streams_aborted_total":            "counter",
	"xpqd_stream_chunks_total":              "counter",
	"xpqd_stream_nodes_total":               "counter",
	"xpqd_stream_first_byte_seconds_total":  "counter",
	"xpqd_stream_first_byte_max_seconds":    "gauge",
	"xpqd_stream_chunk_write_seconds_total": "counter",
	"xpqd_stream_chunk_write_max_seconds":   "gauge",
	"xpqd_qcache_entries":                   "gauge",
	"xpqd_qcache_capacity":                  "gauge",
	"xpqd_qcache_bytes":                     "gauge",
	"xpqd_qcache_hits_total":                "counter",
	"xpqd_qcache_misses_total":              "counter",
	"xpqd_qcache_evictions_total":           "counter",
	"xpqd_ctx_pool_hits_total":              "counter",
	"xpqd_ctx_pool_misses_total":            "counter",
	"xpqd_ctx_pool_guard_trips_total":       "counter",
	"xpqd_ctx_pool_drops_total":             "counter",
	"xpqd_ctx_pool_resident":                "gauge",
	"xpqd_ctx_pool_arena_bytes":             "gauge",
	"xpqd_shard_documents":                  "gauge",
	"xpqd_shard_engines":                    "gauge",
	"xpqd_doc_bytes":                        "gauge",
	"xpqd_resident_bytes":                   "gauge",
	"xpqd_lock_wait_seconds_total":          "counter",
	"xpqd_lock_wait_max_seconds":            "gauge",
	"xpqd_lock_acquires_total":              "counter",
	"xpqd_auto_shapes":                      "gauge",
	"xpqd_auto_decisions_total":             "counter",
	"xpqd_auto_explorations_total":          "counter",
	"xpqd_auto_short_circuits_total":        "counter",
	"xpqd_auto_observations_total":          "counter",
	"xpqd_auto_wins_total":                  "counter",
	"xpqd_auto_estimate_error_pct":          "gauge",
	"xpqd_mvcc_generations_live":            "gauge",
	"xpqd_mvcc_generations_pinned":          "gauge",
	"xpqd_mvcc_patches_total":               "counter",
	"xpqd_mvcc_generations_retired_total":   "counter",
	"xpqd_store_mapped_bytes":               "gauge",
	"xpqd_store_mapped_charged_bytes":       "gauge",
	"xpqd_store_map_faults_total":           "counter",
	"xpqd_documents":                        "gauge",
	"xpqd_shards":                           "gauge",
	"xpqd_heap_alloc_objects_total":         "counter",
	"xpqd_flight_queries_total":             "counter",
	"xpqd_slow_queries_total":               "counter",
	"xpqd_aborted_queries_total":            "counter",
	"xpqd_uptime_seconds":                   "gauge",
	"go_goroutines":                         "gauge",
	"go_heap_objects_bytes":                 "gauge",
	"go_gc_cycles_total":                    "counter",
}

var promSampleRE = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

func TestPrometheusExposition(t *testing.T) {
	// The byte budget is set so the conditional xpqd_qcache_budget_*
	// families appear — the golden list covers them, and xpqlint's
	// metricnames analyzer insists every registered family is tested.
	s := newTestService(t, Options{CacheBytesTotal: 1 << 20})
	// Traffic covering the series: several strategies, an error, a
	// completed stream, a header-abort and a chunk-abort stream.
	for _, strat := range []string{"", "optimized", "stepwise", "hybrid"} {
		if resp := s.Eval(Request{Doc: "d1", Query: "//a/b", Strategy: strat}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}
	if resp := s.Eval(Request{Doc: "d1", Query: "/r/a/b", Strategy: "topdown-det"}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	s.Eval(Request{Doc: "d1", Query: "///"})
	if pre := s.Stream(io.Discard, Request{Doc: "d1", Query: "//a/b"}, 2); pre != nil {
		t.Fatalf("stream refused: %+v", pre)
	}
	s.Stream(&failAfter{n: 0}, Request{Doc: "d1", Query: "//a/b"}, 2) // header abort
	s.Stream(&failAfter{n: 1}, Request{Doc: "d1", Query: "//a/b"}, 2) // chunk abort

	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	// Parse: every line is a well-formed comment or sample; families
	// are declared before their samples; collect name -> type and the
	// label keys seen per family.
	types := map[string]string{}
	labels := map[string]map[string]bool{}
	var lastBucketCum = map[string]float64{} // labels-sans-le -> cumulative count
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name := m[1]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q before its family declaration", line)
		}
		if labels[family] == nil {
			labels[family] = map[string]bool{}
		}
		if m[2] != "" {
			for _, kv := range strings.Split(strings.Trim(m[2], "{}"), ",") {
				k, _, ok := strings.Cut(kv, "=")
				if !ok {
					t.Fatalf("bad label pair %q in %q", kv, line)
				}
				labels[family][k] = true
			}
		}
		// Histogram buckets must be cumulative per label set.
		if strings.HasSuffix(name, "_bucket") && types[family] == "histogram" {
			key := regexp.MustCompile(`le="[^"]*",?`).ReplaceAllString(line[:strings.Index(line, " ")], "")
			v, _ := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if v < lastBucketCum[key] {
				t.Errorf("non-cumulative histogram at %q", line)
			}
			lastBucketCum[key] = v
		}
	}

	// The golden family list: exact names and types, nothing missing,
	// nothing undeclared.
	for name, typ := range promFamilies {
		if types[name] != typ {
			t.Errorf("family %s: type %q, want %q (missing?)", name, types[name], typ)
		}
	}
	for name, typ := range types {
		if promFamilies[name] != typ {
			t.Errorf("undeclared family %s (%s) exported; add it to the golden list", name, typ)
		}
	}

	// Label-set spot checks.
	if !labels["xpqd_queries_total"]["shard"] {
		t.Error("xpqd_queries_total lacks the shard label")
	}
	if !labels["xpqd_queries_by_strategy_total"]["strategy"] {
		t.Error("xpqd_queries_by_strategy_total lacks the strategy label")
	}
	if !labels["xpqd_streams_aborted_total"]["cause"] {
		t.Error("xpqd_streams_aborted_total lacks the cause label")
	}
	for _, cause := range []string{`cause="header_write"`, `cause="chunk_write"`} {
		if !strings.Contains(text, cause) {
			t.Errorf("exposition lacks %s samples", cause)
		}
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Error("histogram lacks the +Inf bucket")
	}

	// The abort split: 1 completed + 2 aborted streams, and the abort
	// latencies stayed out of the completed-stream aggregates.
	st := s.Stats()
	str := st.Queries.Streaming
	if str.Completed != 1 || str.Aborted != 2 || str.AbortedHeaderWrite != 1 || str.AbortedChunkWrite != 1 {
		t.Errorf("stream split = %+v, want 1 completed, 1+1 aborted", str)
	}
	if str.Streams != str.Completed+str.Aborted {
		t.Errorf("Streams = %d, want Completed+Aborted = %d", str.Streams, str.Completed+str.Aborted)
	}
	if str.FirstByteMeanUS != str.FirstByteSumUS { // mean over exactly 1 completed stream
		t.Errorf("first-byte mean %d vs sum %d: aborted streams polluted the aggregate",
			str.FirstByteMeanUS, str.FirstByteSumUS)
	}
}

func TestFlightRecorderService(t *testing.T) {
	s := newTestService(t, Options{FlightRecords: 8})
	s.Eval(Request{Doc: "d1", Query: "//a/b", RequestID: "ok-1"})
	s.Eval(Request{Doc: "nope", Query: "//a"})
	s.Eval(Request{Doc: "d1", Query: "///"})
	s.Stream(&failAfter{n: 1}, Request{Doc: "d1", Query: "//a/b"}, 1)

	fs := s.Flight().Snapshot(0, false)
	if fs.Total != 4 || fs.Aborted != 1 {
		t.Fatalf("flight totals = %+v, want 4 total / 1 aborted", fs)
	}
	if len(fs.Records) != 4 {
		t.Fatalf("resident records = %d, want 4", len(fs.Records))
	}
	// Newest first.
	for i := 1; i < len(fs.Records); i++ {
		if fs.Records[i].Seq >= fs.Records[i-1].Seq {
			t.Fatalf("records not newest-first: %d then %d", fs.Records[i-1].Seq, fs.Records[i].Seq)
		}
	}
	byOutcome := map[string]int{}
	for _, r := range fs.Records {
		byOutcome[r.Outcome]++
	}
	if byOutcome[obsv.OutcomeOK] != 1 || byOutcome[obsv.OutcomeNotFound] != 1 ||
		byOutcome[obsv.OutcomeError] != 1 || byOutcome[obsv.OutcomeAborted] != 1 {
		t.Errorf("outcomes = %v", byOutcome)
	}
	if fs.Records[3].RequestID != "ok-1" || !fs.Records[0].Streamed {
		t.Errorf("record detail wrong: oldest=%+v newest=%+v", fs.Records[3], fs.Records[0])
	}
	if got := s.Flight().Snapshot(2, false); len(got.Records) != 2 {
		t.Errorf("limit 2 returned %d records", len(got.Records))
	}

	// Dropping the threshold to ~0 marks subsequent queries slow.
	s.Flight().SetSlowThreshold(time.Nanosecond)
	s.Eval(Request{Doc: "d1", Query: "//c"})
	slow := s.Flight().Snapshot(0, true)
	if len(slow.Records) == 0 || slow.Records[0].Query != "//c" {
		t.Errorf("slow filter: %+v", slow.Records)
	}
}

func TestDebugQueriesHTTP(t *testing.T) {
	srv := newTestServer(t)
	mustLoad(t, srv.URL, "d1")
	for i := 0; i < 3; i++ {
		var resp Response
		doJSON(t, "POST", srv.URL+"/query", Request{Doc: "d1", Query: "//a/b"}, &resp)
	}
	var fs obsv.FlightStats
	if code := doJSON(t, "GET", srv.URL+"/debug/queries?n=2", nil, &fs); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if fs.Total != 3 || len(fs.Records) != 2 {
		t.Fatalf("flight = total %d, %d records; want 3 total, 2 records", fs.Total, len(fs.Records))
	}
	if fs.Records[0].RequestID == "" {
		t.Error("HTTP query got no generated request id in its flight record")
	}
}

// TestObsvChurnRace hammers /stats, /metrics and /debug/queries
// snapshots while queries run and documents are evicted and reloaded —
// the scrape-during-churn scenario. Run with -race.
func TestObsvChurnRace(t *testing.T) {
	s := New(shard.NewStore(4), Options{
		SlowQuery:     time.Millisecond,
		FlightRecords: 32,
		// Churn makes queries legitimately slow; keep the Warn spam out
		// of the test log.
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	const docs = 4
	docXML := []byte("<r><a><b>x</b></a><a><b/><b/></a><c/></r>")
	for i := 0; i < docs; i++ {
		if _, err := s.Store().LoadXML(fmt.Sprintf("d%d", i), docXML); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		worker(func(i int) {
			doc := fmt.Sprintf("d%d", i%docs)
			s.Eval(Request{Doc: doc, Query: "//a/b", Explain: i%7 == 0})
			if i%3 == 0 {
				s.Stream(io.Discard, Request{Doc: doc, Query: "//a"}, 2)
			}
		})
	}
	worker(func(i int) { // churn: evict + reload
		doc := fmt.Sprintf("d%d", i%docs)
		s.EvictDoc(doc)
		_, _ = s.Store().LoadXML(doc, docXML)
	})
	worker(func(i int) { // scrapers
		_ = s.Stats()
		_ = s.WriteMetrics(io.Discard)
		_ = s.Flight().Snapshot(8, i%2 == 0)
	})
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := s.WriteMetrics(io.Discard); err != nil {
		t.Fatal(err)
	}
}
