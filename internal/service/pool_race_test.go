package service

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tree"
)

// TestPoolSafetyHammer is the pooled-context leak hunt: one document
// id on one engine, hammered by concurrent optimized evaluations
// (one-shot, paged — which abandon cursors mid-answer and Close them
// back into the pool — and streamed) while churners evict and reload
// the id with two different document variants. Pooled evaluation
// contexts retain interned-set tables, memo recipes, jump analyses and
// arenas across requests; the invariant under test is that none of
// that state ever crosses a reload: every successful answer must equal
// the fresh-context oracle of exactly one variant, bit for bit. Run
// under -race (CI does).
func TestPoolSafetyHammer(t *testing.T) {
	const id = "hot"
	// The optimized ASTA path is the pooled one; force it explicitly so
	// Auto's hybrid shortcut can't bypass the pool.
	const strat = "optimized"
	queries := []string{"//keyword", "//listitem//keyword", "/site//keyword"}
	seeds := []int64{1, 2}

	// Fresh-context oracle: ground truth per (variant, query) computed
	// on isolated services — every evaluation there binds a brand-new
	// context, so no pooled state can contaminate the expectation.
	exp := make(map[string]map[string][]tree.NodeID) // query → key(nodes) → nodes
	for _, q := range queries {
		exp[q] = make(map[string][]tree.NodeID)
	}
	for _, seed := range seeds {
		ref := New(shard.NewStore(1), Options{Workers: 1})
		if _, err := ref.Store().GenerateXMark("truth", 0.002, seed); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			resp := ref.Eval(Request{Doc: "truth", Query: q, Strategy: strat})
			if resp.Err != "" || len(resp.Nodes) == 0 {
				t.Fatalf("oracle seed=%d %s: count=%d err=%q", seed, q, len(resp.Nodes), resp.Err)
			}
			exp[q][key(resp.Nodes)] = resp.Nodes
		}
	}
	matches := func(q string, nodes []tree.NodeID) bool {
		_, ok := exp[q][key(nodes)]
		return ok
	}
	cleanErr := func(resp *Response) bool {
		return resp.notFound || resp.staleCursor ||
			strings.Contains(resp.Err, "no such document")
	}

	ss := shard.NewStore(1)
	svc := New(ss, Options{CacheSize: 16})
	if _, err := ss.GenerateXMark(id, 0.002, seeds[0]); err != nil {
		t.Fatal(err)
	}

	var readersWG, churnWG sync.WaitGroup
	stop := make(chan struct{})

	// Churner: evict + reload alternating variants, so engines (and
	// with them context pools) are torn down and rebuilt continuously.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			svc.EvictDoc(id)
			if _, err := ss.GenerateXMark(id, 0.002, seeds[i%2]); err != nil &&
				!errors.Is(err, store.ErrExists) {
				t.Errorf("churn reload: %v", err)
				return
			}
		}
	}()

	for g := 0; g < 6; g++ {
		g := g
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			const iters = 40
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				switch i % 3 {
				case 0: // one-shot
					resp := svc.Eval(Request{Doc: id, Query: q, Strategy: strat})
					if resp.Err != "" {
						if !cleanErr(&resp) {
							t.Errorf("dirty error: %+v", resp)
						}
						continue
					}
					if !matches(q, resp.Nodes) {
						t.Errorf("%s: answer matches no fresh-context oracle (%d nodes)", q, len(resp.Nodes))
					}
				case 1: // paged: every page checks out and Closes a context
					var nodes []tree.NodeID
					cursor := ""
					for {
						resp := svc.Eval(Request{Doc: id, Query: q, Strategy: strat, Limit: 7, Cursor: cursor})
						if resp.Err != "" {
							if !cleanErr(&resp) {
								t.Errorf("dirty page error: %+v", resp)
							}
							nodes = nil
							break
						}
						nodes = append(nodes, resp.Nodes...)
						if resp.Next == "" {
							break
						}
						cursor = resp.Next
					}
					if nodes != nil && !matches(q, nodes) {
						t.Errorf("%s: paged answer matches no fresh-context oracle (%d nodes)", q, len(nodes))
					}
				case 2: // streamed: context rides the whole stream
					var buf bytes.Buffer
					if pre := svc.Stream(&buf, Request{Doc: id, Query: q, Strategy: strat}, 8); pre != nil {
						if !cleanErr(pre) {
							t.Errorf("dirty stream preflight: %+v", pre)
						}
						continue
					}
					nodes, err := parseStreamNodes(&buf)
					if err != nil {
						t.Errorf("%s: %v", q, err)
						continue
					}
					if !matches(q, nodes) {
						t.Errorf("%s: streamed answer matches no fresh-context oracle (%d nodes)", q, len(nodes))
					}
				}
			}
		}()
	}

	readersWG.Wait()
	close(stop)
	churnWG.Wait()

	// The structural keying (pool per engine per automaton) must have
	// held on its own: the generation guard is the backstop, and a trip
	// here means contexts crossed engines.
	st := svc.Stats()
	if st.Pool.GuardTrips != 0 {
		t.Errorf("generation guard tripped %d times: contexts crossed engines", st.Pool.GuardTrips)
	}
	if st.Queries.Total == 0 {
		t.Error("hammer served no queries")
	}
}

// TestStatsExposesPool: after warm repeat queries, /stats must report
// pool hits, resident contexts with arena bytes, and the allocs/op
// estimate fields.
func TestStatsExposesPool(t *testing.T) {
	ss := shard.NewStore(2)
	svc := New(ss, Options{})
	if _, err := ss.GenerateXMark("xm", 0.002, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if resp := svc.Eval(Request{Doc: "xm", Query: "//listitem//keyword", Strategy: "optimized"}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}
	st := svc.Stats()
	if st.Pool.Hits == 0 {
		t.Errorf("no pool hits after repeat queries: %+v", st.Pool)
	}
	if st.Pool.Resident == 0 || st.Pool.ArenaBytes <= 0 {
		t.Errorf("no resident pooled context reported: %+v", st.Pool)
	}
	if st.PoolHitRate <= 0 || st.PoolHitRate >= 1 {
		t.Errorf("pool hit rate %v out of range", st.PoolHitRate)
	}
	if st.HeapAllocObjects == 0 {
		t.Error("heap alloc counter not wired")
	}
	if st.AllocsPerQuery <= 0 {
		t.Error("allocs-per-query estimate not wired")
	}
	// Per-shard breakdown: the owning shard carries the pool numbers.
	var found bool
	for _, sh := range st.Shards {
		if sh.Pool.Hits > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no shard reports pool hits")
	}
}
