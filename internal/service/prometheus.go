package service

import (
	"io"
	"runtime"
	runtimemetrics "runtime/metrics"
	"strconv"
	"time"

	"repro/internal/obsv"
)

// The /metrics endpoint: the same numbers /stats serves as JSON,
// re-expressed in the Prometheus text exposition format (written by
// hand — see internal/obsv/prom.go — so the daemon stays free of
// client-library dependencies). Per-shard series carry a shard label;
// PromQL sums them, so no aggregate duplicates are exported. Exact
// sums (latency, first-byte, chunk-write, lock-wait) back every mean
// /stats reports, and durations are seconds per Prometheus convention
// (the JSON API keeps its microseconds).

// WriteMetrics writes one Prometheus exposition of the service's
// metrics to w: per-shard query counters and latency histograms,
// streaming counters split by completion/abort cause, compiled-query
// cache and context-pool counters, resident-byte gauges, flight
// recorder totals, and Go runtime gauges.
func (s *Service) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	p := obsv.NewPromWriter(w)

	// Histogram bounds in seconds, converted once from the service's
	// microsecond bucket bounds (the overflow bin becomes +Inf).
	bounds := make([]float64, len(latencyBuckets))
	for i, us := range latencyBuckets {
		bounds[i] = float64(us) / 1e6
	}

	p.Family("xpqd_queries_total", "Queries handled, including errors.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_queries_total", func(ss *ShardStats) float64 { return float64(ss.Queries.Total) })
	p.Family("xpqd_query_errors_total", "Queries that failed (parse errors, unknown documents, stale cursors).", obsv.TypeCounter)
	eachShard(p, st, "xpqd_query_errors_total", func(ss *ShardStats) float64 { return float64(ss.Queries.Errors) })
	p.Family("xpqd_visited_nodes_total", "Nodes touched by successful evaluations.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_visited_nodes_total", func(ss *ShardStats) float64 { return float64(ss.Queries.VisitedNodes) })
	p.Family("xpqd_selected_nodes_total", "Nodes selected by successful evaluations.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_selected_nodes_total", func(ss *ShardStats) float64 { return float64(ss.Queries.SelectedNodes) })

	p.Family("xpqd_queries_by_strategy_total", "Successful queries by execution strategy.", obsv.TypeCounter)
	for i := range st.Shards {
		ss := &st.Shards[i]
		for strat, n := range ss.Queries.ByStrategy {
			p.Sample("xpqd_queries_by_strategy_total", float64(n),
				"shard", shardLabel(ss.Shard), "strategy", strat)
		}
	}

	p.Family("xpqd_query_duration_seconds", "End-to-end query latency (successful queries).", obsv.TypeHistogram)
	for i := range st.Shards {
		ss := &st.Shards[i]
		counts := make([]uint64, len(ss.Queries.Latency))
		for j, b := range ss.Queries.Latency {
			counts[j] = b.Count
		}
		p.Histogram("xpqd_query_duration_seconds", bounds, counts,
			float64(ss.Queries.LatencySumUS)/1e6, "shard", shardLabel(ss.Shard))
	}
	p.Family("xpqd_query_duration_max_seconds", "Worst query latency observed.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_query_duration_max_seconds", func(ss *ShardStats) float64 { return float64(ss.Queries.LatencyMaxUS) / 1e6 })

	// Streaming: completed and aborted streams are separate counters
	// (aborts carry their cause), and the latency sums cover completed
	// streams only — mirroring StreamStats.
	p.Family("xpqd_streams_completed_total", "NDJSON streams that delivered their trailer.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_streams_completed_total", func(ss *ShardStats) float64 { return float64(ss.Queries.Streaming.Completed) })
	p.Family("xpqd_streams_aborted_total", "NDJSON streams cut short by the client, by failed write.", obsv.TypeCounter)
	for i := range st.Shards {
		ss := &st.Shards[i]
		p.Sample("xpqd_streams_aborted_total", float64(ss.Queries.Streaming.AbortedHeaderWrite),
			"shard", shardLabel(ss.Shard), "cause", abortHeaderWrite.String())
		p.Sample("xpqd_streams_aborted_total", float64(ss.Queries.Streaming.AbortedChunkWrite),
			"shard", shardLabel(ss.Shard), "cause", abortChunkWrite.String())
	}
	p.Family("xpqd_stream_chunks_total", "NDJSON chunk lines written (completed and aborted streams).", obsv.TypeCounter)
	eachShard(p, st, "xpqd_stream_chunks_total", func(ss *ShardStats) float64 { return float64(ss.Queries.Streaming.Chunks) })
	p.Family("xpqd_stream_nodes_total", "Answer nodes delivered over streams.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_stream_nodes_total", func(ss *ShardStats) float64 { return float64(ss.Queries.Streaming.Nodes) })
	p.Family("xpqd_stream_first_byte_seconds_total", "Summed time to first byte, completed streams only.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_stream_first_byte_seconds_total", func(ss *ShardStats) float64 { return float64(ss.Queries.Streaming.FirstByteSumUS) / 1e6 })
	p.Family("xpqd_stream_first_byte_max_seconds", "Worst time to first byte.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_stream_first_byte_max_seconds", func(ss *ShardStats) float64 { return float64(ss.Queries.Streaming.FirstByteMaxUS) / 1e6 })
	p.Family("xpqd_stream_chunk_write_seconds_total", "Summed chunk encode+write+flush time, completed streams only.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_stream_chunk_write_seconds_total", func(ss *ShardStats) float64 { return float64(ss.Queries.Streaming.ChunkWriteSumUS) / 1e6 })
	p.Family("xpqd_stream_chunk_write_max_seconds", "Worst single chunk write.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_stream_chunk_write_max_seconds", func(ss *ShardStats) float64 { return float64(ss.Queries.Streaming.ChunkWriteMaxUS) / 1e6 })

	// Compiled-query cache, per shard.
	p.Family("xpqd_qcache_entries", "Compiled automata resident in the query cache.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_qcache_entries", func(ss *ShardStats) float64 { return float64(ss.Cache.Size) })
	p.Family("xpqd_qcache_capacity", "Query cache entry capacity.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_qcache_capacity", func(ss *ShardStats) float64 { return float64(ss.Cache.Capacity) })
	p.Family("xpqd_qcache_bytes", "Estimated bytes of cached compiled automata.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_qcache_bytes", func(ss *ShardStats) float64 { return float64(ss.Cache.SizeBytes) })
	p.Family("xpqd_qcache_hits_total", "Query cache hits.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_qcache_hits_total", func(ss *ShardStats) float64 { return float64(ss.Cache.Hits) })
	p.Family("xpqd_qcache_misses_total", "Query cache misses (compilations).", obsv.TypeCounter)
	eachShard(p, st, "xpqd_qcache_misses_total", func(ss *ShardStats) float64 { return float64(ss.Cache.Misses) })
	p.Family("xpqd_qcache_evictions_total", "Query cache evictions.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_qcache_evictions_total", func(ss *ShardStats) float64 { return float64(ss.Cache.Evictions) })

	// Evaluation-context pool, per shard.
	p.Family("xpqd_ctx_pool_hits_total", "Evaluations served by a warm pooled context.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_ctx_pool_hits_total", func(ss *ShardStats) float64 { return float64(ss.Pool.Hits) })
	p.Family("xpqd_ctx_pool_misses_total", "Cold context checkouts (fresh or guard-reset).", obsv.TypeCounter)
	eachShard(p, st, "xpqd_ctx_pool_misses_total", func(ss *ShardStats) float64 { return float64(ss.Pool.Misses) })
	p.Family("xpqd_ctx_pool_guard_trips_total", "Generation-guard resets on checkout.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_ctx_pool_guard_trips_total", func(ss *ShardStats) float64 { return float64(ss.Pool.GuardTrips) })
	p.Family("xpqd_ctx_pool_drops_total", "Contexts discarded instead of pooled.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_ctx_pool_drops_total", func(ss *ShardStats) float64 { return float64(ss.Pool.Drops) })
	p.Family("xpqd_ctx_pool_resident", "Contexts currently parked in pools.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_ctx_pool_resident", func(ss *ShardStats) float64 { return float64(ss.Pool.Resident) })
	p.Family("xpqd_ctx_pool_arena_bytes", "Scratch bytes kept warm by pooled contexts.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_ctx_pool_arena_bytes", func(ss *ShardStats) float64 { return float64(ss.Pool.ArenaBytes) })

	// Observed-latency Auto selector, per shard. Wins carry a strategy
	// label; the gauges summarize model quality (estimate error) and
	// behavior (exploration is derivable as explorations/decisions).
	p.Family("xpqd_auto_shapes", "Query shapes tracked by the Auto selector.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_auto_shapes", func(ss *ShardStats) float64 { return float64(ss.Auto.Shapes) })
	p.Family("xpqd_auto_decisions_total", "Auto routing decisions.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_auto_decisions_total", func(ss *ShardStats) float64 { return float64(ss.Auto.Decisions) })
	p.Family("xpqd_auto_explorations_total", "Auto decisions spent re-measuring a non-best candidate.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_auto_explorations_total", func(ss *ShardStats) float64 { return float64(ss.Auto.Explorations) })
	p.Family("xpqd_auto_short_circuits_total", "Chain queries answered empty from the index (absent label), no engine run.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_auto_short_circuits_total", func(ss *ShardStats) float64 { return float64(ss.Auto.ShortCircuits) })
	p.Family("xpqd_auto_observations_total", "Completed evaluations fed back into the selector.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_auto_observations_total", func(ss *ShardStats) float64 { return float64(ss.Auto.Observations) })
	p.Family("xpqd_auto_wins_total", "Auto decisions by winning strategy.", obsv.TypeCounter)
	for i := range st.Shards {
		ss := &st.Shards[i]
		for strat, n := range ss.Auto.WinsByStrategy {
			p.Sample("xpqd_auto_wins_total", float64(n),
				"shard", shardLabel(ss.Shard), "strategy", strat)
		}
	}
	p.Family("xpqd_auto_estimate_error_pct", "Mean |observed-estimated|/observed latency error of the selector's EWMA model, percent.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_auto_estimate_error_pct", func(ss *ShardStats) float64 { return ss.Auto.EstimateErrorPct })

	// MVCC generation chains, per shard.
	p.Family("xpqd_mvcc_generations_live", "Readable document generations resident per shard.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_mvcc_generations_live", func(ss *ShardStats) float64 { return float64(ss.MVCC.LiveGenerations) })
	p.Family("xpqd_mvcc_generations_pinned", "Non-latest generations kept alive by cursors or leases.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_mvcc_generations_pinned", func(ss *ShardStats) float64 { return float64(ss.MVCC.PinnedGenerations) })
	p.Family("xpqd_mvcc_patches_total", "Subtree patches applied.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_mvcc_patches_total", func(ss *ShardStats) float64 { return float64(ss.MVCC.Patches) })
	p.Family("xpqd_mvcc_generations_retired_total", "Generations garbage-collected after their readers drained.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_mvcc_generations_retired_total", func(ss *ShardStats) float64 { return float64(ss.MVCC.Retired) })

	// Mapped (mmap-backed) documents, per shard.
	p.Family("xpqd_store_mapped_bytes", "Bytes of mmap-backed document files per shard.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_store_mapped_bytes", func(ss *ShardStats) float64 { return float64(ss.Mapped.MappedBytes) })
	p.Family("xpqd_store_mapped_charged_bytes", "Mapped bytes counted hot against the resident budget.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_store_mapped_charged_bytes", func(ss *ShardStats) float64 { return float64(ss.Mapped.ChargedBytes) })
	p.Family("xpqd_store_map_faults_total", "Accesses that re-heated a budget-released mapping.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_store_map_faults_total", func(ss *ShardStats) float64 { return float64(ss.Mapped.MapFaults) })

	// Residency and contention, per shard.
	p.Family("xpqd_shard_documents", "Documents resident per shard.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_shard_documents", func(ss *ShardStats) float64 { return float64(ss.Documents) })
	p.Family("xpqd_shard_engines", "Engines attached per shard.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_shard_engines", func(ss *ShardStats) float64 { return float64(ss.Engines) })
	p.Family("xpqd_doc_bytes", "Resident bytes of documents plus jumping indexes.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_doc_bytes", func(ss *ShardStats) float64 { return float64(ss.DocBytes) })
	p.Family("xpqd_resident_bytes", "Documents, indexes and cached automata resident per shard.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_resident_bytes", func(ss *ShardStats) float64 { return float64(ss.ResidentBytes) })
	p.Family("xpqd_lock_wait_seconds_total", "Summed wait for the shard engine-table lock.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_lock_wait_seconds_total", func(ss *ShardStats) float64 { return float64(ss.LockWaitTotalNS) / 1e9 })
	p.Family("xpqd_lock_wait_max_seconds", "Worst single wait for the shard engine-table lock.", obsv.TypeGauge)
	eachShard(p, st, "xpqd_lock_wait_max_seconds", func(ss *ShardStats) float64 { return float64(ss.LockWaitMaxNS) / 1e9 })
	p.Family("xpqd_lock_acquires_total", "Shard engine-table lock acquisitions.", obsv.TypeCounter)
	eachShard(p, st, "xpqd_lock_acquires_total", func(ss *ShardStats) float64 { return float64(ss.LockAcquires) })

	// Service-wide gauges (no shard label).
	if st.CacheBudget != nil {
		p.Family("xpqd_qcache_budget_used_bytes", "Bytes charged against the shared compile budget.", obsv.TypeGauge)
		p.Sample("xpqd_qcache_budget_used_bytes", float64(st.CacheBudget.UsedBytes))
		p.Family("xpqd_qcache_budget_max_bytes", "Shared compile budget ceiling.", obsv.TypeGauge)
		p.Sample("xpqd_qcache_budget_max_bytes", float64(st.CacheBudget.MaxBytes))
	}
	p.Family("xpqd_documents", "Documents resident across all shards.", obsv.TypeGauge)
	p.Sample("xpqd_documents", float64(len(st.Documents)))
	p.Family("xpqd_shards", "Serving partitions.", obsv.TypeGauge)
	p.Sample("xpqd_shards", float64(len(st.Shards)))
	p.Family("xpqd_heap_alloc_objects_total", "Heap objects allocated process-wide since the service started.", obsv.TypeCounter)
	p.Sample("xpqd_heap_alloc_objects_total", float64(st.HeapAllocObjects))

	// Flight recorder lifetime counters (ring residency is bounded, so
	// only the monotonic admissions are exported).
	total, slow, aborted := s.flight.Counts()
	p.Family("xpqd_flight_queries_total", "Queries admitted to the flight recorder.", obsv.TypeCounter)
	p.Sample("xpqd_flight_queries_total", float64(total))
	p.Family("xpqd_slow_queries_total", "Queries at or above the slow-query threshold.", obsv.TypeCounter)
	p.Sample("xpqd_slow_queries_total", float64(slow))
	p.Family("xpqd_aborted_queries_total", "Queries whose client went away mid-response.", obsv.TypeCounter)
	p.Sample("xpqd_aborted_queries_total", float64(aborted))

	p.Family("xpqd_uptime_seconds", "Seconds since the service was constructed.", obsv.TypeGauge)
	p.Sample("xpqd_uptime_seconds", time.Since(s.started).Seconds())

	// Go runtime gauges, via runtime/metrics (no stop-the-world read).
	samples := []runtimemetrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
	}
	runtimemetrics.Read(samples)
	p.Family("go_goroutines", "Live goroutines.", obsv.TypeGauge)
	p.Sample("go_goroutines", float64(runtime.NumGoroutine()))
	if samples[0].Value.Kind() == runtimemetrics.KindUint64 {
		p.Family("go_heap_objects_bytes", "Bytes of live heap objects.", obsv.TypeGauge)
		p.Sample("go_heap_objects_bytes", float64(samples[0].Value.Uint64()))
	}
	if samples[1].Value.Kind() == runtimemetrics.KindUint64 {
		p.Family("go_gc_cycles_total", "Completed GC cycles.", obsv.TypeCounter)
		p.Sample("go_gc_cycles_total", float64(samples[1].Value.Uint64()))
	}

	return p.Flush()
}

// eachShard emits one sample per shard with a shard label.
func eachShard(p *obsv.PromWriter, st Stats, name string, value func(*ShardStats) float64) {
	for i := range st.Shards {
		p.Sample(name, value(&st.Shards[i]), "shard", shardLabel(st.Shards[i].Shard))
	}
}

func shardLabel(i int) string { return strconv.Itoa(i) }
