package service

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/shard"
)

// TestConcurrentMixedWorkload hammers one Service from many goroutines
// with a mix of single queries, batches, and document add/evict churn,
// and asserts every successful answer matches single-threaded
// evaluation. Run under -race (CI does) this is the service's
// thread-safety proof.
func TestConcurrentMixedWorkload(t *testing.T) {
	docXML := func(i int) []byte {
		return []byte(fmt.Sprintf(
			"<r><a><b>t%d</b></a><a><b/><b/></a><c><b/></c></r>", i))
	}
	queries := []string{"//b", "//a/b", "/r/c", "//a", "/r/a/b", "//c//b"}

	// Single-threaded ground truth on a reference service with the same
	// stable documents.
	ref := New(shard.NewStore(1), Options{Workers: 1})
	stable := []string{"s0", "s1", "s2"}
	for i, id := range stable {
		if _, err := ref.Store().LoadXML(id, docXML(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := make(map[string][]int32)
	for _, id := range stable {
		for _, q := range queries {
			resp := ref.Eval(Request{Doc: id, Query: q})
			if resp.Err != "" {
				t.Fatalf("%s %s: %s", id, q, resp.Err)
			}
			nodes := make([]int32, len(resp.Nodes))
			for i, v := range resp.Nodes {
				nodes[i] = int32(v)
			}
			want[id+"|"+q] = nodes
		}
	}

	s := New(shard.NewStore(1), Options{Workers: 4, CacheSize: 8})
	for i, id := range stable {
		if _, err := s.Store().LoadXML(id, docXML(i)); err != nil {
			t.Fatal(err)
		}
	}

	check := func(resp Response) {
		if resp.Err != "" {
			t.Errorf("%s %s: %s", resp.Doc, resp.Query, resp.Err)
			return
		}
		got := make([]int32, len(resp.Nodes))
		for i, v := range resp.Nodes {
			got[i] = int32(v)
		}
		key := resp.Doc + "|" + resp.Query
		if exp := want[key]; !reflect.DeepEqual(got, exp) && !(len(got) == 0 && len(exp) == 0) {
			t.Errorf("%s: concurrent answer %v != sequential %v", key, got, exp)
		}
	}

	const goroutines = 12
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				docID := stable[(g+i)%len(stable)]
				q := queries[(g*7+i)%len(queries)]
				switch i % 4 {
				case 0: // single query through the adaptive Auto selector
					check(s.Eval(Request{Doc: docID, Query: q}))
				case 1: // single query, forced engine (the adaptive
					// selector may settle on hybrid, which compiles no
					// automaton — the cache-hit assertion below needs
					// traffic that deterministically uses the LRU)
					check(s.Eval(Request{Doc: docID, Query: q, Strategy: "optimized"}))
				case 2: // batch across stable docs
					reqs := make([]Request, 0, len(stable))
					for _, id := range stable {
						reqs = append(reqs, Request{Doc: id, Query: q})
					}
					for _, resp := range s.EvalBatch(reqs) {
						check(resp)
					}
				case 3: // churn a goroutine-private doc: add, query, evict
					id := fmt.Sprintf("churn-%d", g)
					if _, err := s.Store().LoadXML(id, docXML(0)); err != nil {
						t.Errorf("load %s: %v", id, err)
						continue
					}
					resp := s.Eval(Request{Doc: id, Query: "//b"})
					if resp.Err != "" {
						t.Errorf("churn query: %s", resp.Err)
					} else if resp.Count != len(want["s0|//b"]) {
						t.Errorf("churn count = %d, want %d", resp.Count, len(want["s0|//b"]))
					}
					if !s.EvictDoc(id) {
						t.Errorf("evict %s failed", id)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.Queries.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Queries.Errors)
	}
	if st.Cache.Hits == 0 {
		t.Error("expected compiled-query cache hits under repetition")
	}
	if len(st.Documents) != len(stable) {
		t.Errorf("resident docs = %d, want %d (churn docs evicted)", len(st.Documents), len(stable))
	}
}
