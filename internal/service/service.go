// Package service is the long-lived query-serving layer over the
// engine: a document store, one shared size-bounded LRU of compiled and
// minimized automata (keyed by document, artifact kind and query, with
// single-flight compilation), a worker-pool batch API, and per-query
// metrics. It is the amortization layer the paper's whole-query
// optimization assumes — compile once, evaluate many times — extended
// across many resident documents and concurrent clients.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/qcache"
	"repro/internal/store"
	"repro/internal/tree"
)

// ErrNoDocument is wrapped by Eval errors for queries against ids not
// resident in the store; the HTTP layer maps it to 404.
var ErrNoDocument = errors.New("no such document")

// Options configures a Service.
type Options struct {
	// CacheSize bounds the compiled-query LRU (entries, shared across
	// all documents); <= 0 means qcache.DefaultCapacity.
	CacheSize int
	// CacheBytes adds a byte budget to the LRU, weighing each entry by
	// its automaton's SizeBytes estimate; 0 keeps the entry bound only.
	CacheBytes int64
	// Workers sizes the batch worker pool; <= 0 means GOMAXPROCS.
	Workers int
}

// Service serves queries over the documents resident in its store. All
// methods are safe for concurrent use.
type Service struct {
	store   *store.Store
	cache   *qcache.Cache
	workers int

	mu      sync.Mutex
	engines map[string]engineEntry
	// generation increments per engine created. Cache keys embed the
	// generation (docID\x00gen\x00...), so a compilation that was
	// in flight when EvictDoc purged the prefix can only re-insert
	// under the dead generation — a reloaded document under the same
	// id gets a fresh generation and can never hit the stale entry.
	generation uint64

	metrics metrics
}

// engineEntry pins the store handle an engine was built from, so
// engine() can detect evict/reload churn done directly on the store
// (bypassing EvictDoc) and rebuild instead of serving the old tree.
// gen is the generation the engine was created under; cursor tokens
// embed it so a resume against a reloaded document fails cleanly
// instead of serving a page of a different tree.
type engineEntry struct {
	handle *store.Handle
	engine *core.Engine
	gen    uint64
}

// New builds a service around a (possibly pre-populated) store.
func New(st *store.Store, opts Options) *Service {
	if st == nil {
		st = store.New()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Service{
		store:   st,
		cache:   qcache.NewSized(opts.CacheSize, opts.CacheBytes),
		workers: workers,
		engines: make(map[string]engineEntry),
		// Seed the generation with process entropy: cursor tokens embed
		// it, and a counter restarting at zero would let a token issued
		// by a previous daemon process pass the staleness check against
		// a same-named document with different contents.
		generation: uint64(time.Now().UnixNano()),
	}
}

// Store exposes the underlying document store (loads may bypass the
// service; engines attach lazily at first query).
func (s *Service) Store() *store.Store { return s.store }

// engine returns the per-document engine and its generation, creating
// it on first use and rebuilding it whenever the store's handle for the
// id has changed (evict + reload through Store() directly). Engines
// share the service LRU, namespaced by document id and generation.
func (s *Service) engine(docID string) (*core.Engine, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.store.Get(docID)
	if !ok {
		delete(s.engines, docID)
		return nil, 0, fmt.Errorf("service: %w: %q", ErrNoDocument, docID)
	}
	if ent, ok := s.engines[docID]; ok && ent.handle == h {
		return ent.engine, ent.gen, nil
	}
	s.generation++
	prefix := docID + "\x00" + strconv.FormatUint(s.generation, 10) + "\x00"
	e := core.NewWithIndex(h.Doc, h.Index, s.cache, prefix)
	s.engines[docID] = engineEntry{handle: h, engine: e, gen: s.generation}
	return e, s.generation, nil
}

// EvictDoc removes a document from the store, drops its engine, and
// purges its compiled automata from the LRU. It reports whether the
// document was resident.
func (s *Service) EvictDoc(docID string) bool {
	ok := s.store.Evict(docID)
	s.mu.Lock()
	delete(s.engines, docID)
	s.mu.Unlock()
	s.cache.RemovePrefix(docID + "\x00")
	return ok
}

// Request is one query against one resident document.
type Request struct {
	// Doc is the document id in the store.
	Doc string `json:"doc"`
	// Query is the XPath text.
	Query string `json:"query"`
	// Strategy names an execution strategy; empty means auto.
	Strategy string `json:"strategy,omitempty"`
	// Paths asks for the label path of each selected node.
	Paths bool `json:"paths,omitempty"`
	// Limit caps the returned node list (0 = all remaining); Count
	// always reports the full cardinality. When the limit cuts the
	// answer short the Response carries a continuation token in Next.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes a paged answer: the opaque Next token of the
	// previous page. The token pins the document generation; resuming
	// after an evict/reload fails with a stale-cursor error (HTTP 410)
	// rather than serving a page of a different tree.
	Cursor string `json:"cursor,omitempty"`
}

// Response is the outcome of one Request.
type Response struct {
	Doc      string `json:"doc"`
	Query    string `json:"query"`
	Strategy string `json:"strategy,omitempty"`
	// Count is the full answer cardinality, even when Nodes is truncated.
	Count int           `json:"count"`
	Nodes []tree.NodeID `json:"nodes"`
	Paths []string      `json:"paths,omitempty"`
	// Visited counts nodes touched by the run — the paper's measure of
	// how little of the document the optimized evaluation looks at.
	Visited   int    `json:"visited"`
	ElapsedUS int64  `json:"elapsed_us"`
	Err       string `json:"error,omitempty"`
	// Next is the opaque continuation token for the next page; empty
	// when the answer is exhausted.
	Next string `json:"next,omitempty"`
	// notFound / staleCursor distinguish error classes for the HTTP
	// status mapping (404 / 410) without parsing Err text.
	notFound    bool
	staleCursor bool
}

// evalState is the outcome of prepare: everything Eval and Stream need
// to page or stream an answer.
type evalState struct {
	resp  Response
	cur   *core.Cursor
	eng   *core.Engine
	gen   uint64
	timer timer
}

// prepare runs the shared front half of Eval and Stream: strategy
// parsing, engine lookup, cursor-token validation (document and
// generation must match), evaluation, and seeking to the resume
// position. On failure the returned state's resp.Err is set (and
// metrics recorded); on success resp carries Strategy/Count/Visited.
func (s *Service) prepare(req Request) evalState {
	st := evalState{resp: Response{Doc: req.Doc, Query: req.Query}}
	strat, ok := core.ParseStrategy(req.Strategy)
	if !ok {
		st.resp.Err = fmt.Sprintf("unknown strategy %q", req.Strategy)
		s.metrics.recordError()
		return st
	}
	eng, gen, err := s.engine(req.Doc)
	if err != nil {
		st.resp.Err = err.Error()
		st.resp.notFound = errors.Is(err, ErrNoDocument)
		s.metrics.recordError()
		return st
	}
	var after tree.NodeID
	haveAfter := false
	if req.Cursor != "" {
		cdoc, cgen, clast, err := decodeCursor(req.Cursor)
		if err != nil {
			st.resp.Err = err.Error()
			s.metrics.recordError()
			return st
		}
		if cdoc != req.Doc {
			st.resp.Err = fmt.Sprintf("cursor is for document %q, not %q", cdoc, req.Doc)
			s.metrics.recordError()
			return st
		}
		if cgen != gen {
			st.resp.Err = fmt.Sprintf("stale cursor: document %q was reloaded since the cursor was issued", req.Doc)
			st.resp.staleCursor = true
			s.metrics.recordError()
			return st
		}
		after, haveAfter = clast, true
	}
	st.timer = startTimer()
	cur, err := eng.EvalCursor(req.Query, strat)
	if err != nil {
		st.resp.ElapsedUS = st.timer.elapsedMicros()
		st.resp.Err = err.Error()
		s.metrics.recordError()
		return st
	}
	if haveAfter {
		cur.SeekPast(after)
	}
	st.resp.Strategy = cur.Strategy().String()
	st.resp.Count = cur.Count()
	st.resp.Visited = cur.Visited()
	st.cur, st.eng, st.gen = cur, eng, gen
	return st
}

// Eval evaluates one request, returning at most Limit nodes (all
// remaining when Limit <= 0) from the resume position, plus a Next
// token when the answer has more pages.
func (s *Service) Eval(req Request) Response {
	st := s.prepare(req)
	if st.cur == nil {
		return st.resp
	}
	resp := st.resp
	limit := req.Limit
	if limit <= 0 {
		limit = resp.Count
	}
	nodes := make([]tree.NodeID, 0, min(limit, resp.Count))
	for len(nodes) < limit {
		v, ok := st.cur.Next()
		if !ok {
			break
		}
		nodes = append(nodes, v)
	}
	// A non-empty remainder means this page was cut short: hand out a
	// resumption token pinned to the engine generation.
	if _, more := st.cur.Next(); more && len(nodes) > 0 {
		resp.Next = encodeCursor(req.Doc, st.gen, nodes[len(nodes)-1])
	}
	resp.Nodes = nodes
	if req.Paths {
		resp.Paths = make([]string, len(nodes))
		for i, v := range nodes {
			resp.Paths[i] = st.eng.Doc().Path(v)
		}
	}
	elapsed := st.timer.elapsedMicros()
	resp.ElapsedUS = elapsed
	s.metrics.record(st.cur.Strategy(), elapsed, resp.Visited, resp.Count)
	return resp
}

// EvalBatch fans the requests across the worker pool and returns the
// responses in request order. Individual failures land in the matching
// Response.Err; the batch itself never fails.
func (s *Service) EvalBatch(reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := s.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			out[i] = s.Eval(r)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = s.Eval(reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Stats is a point-in-time snapshot of the whole service.
type Stats struct {
	Documents []store.Stats `json:"documents"`
	// Cache covers the shared compiled-query LRU across all documents.
	Cache        qcache.Stats `json:"cache"`
	CacheHitRate float64      `json:"cache_hit_rate"`
	Queries      QueryStats   `json:"queries"`
}

// Stats snapshots the store, cache and query counters.
func (s *Service) Stats() Stats {
	cs := s.cache.Stats()
	return Stats{
		Documents:    s.store.List(),
		Cache:        cs,
		CacheHitRate: cs.HitRate(),
		Queries:      s.metrics.snapshot(),
	}
}
