// Package service is the long-lived query-serving layer over the
// engine: a document store, one shared size-bounded LRU of compiled and
// minimized automata (keyed by document, artifact kind and query, with
// single-flight compilation), a worker-pool batch API, and per-query
// metrics. It is the amortization layer the paper's whole-query
// optimization assumes — compile once, evaluate many times — extended
// across many resident documents and concurrent clients.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/qcache"
	"repro/internal/store"
	"repro/internal/tree"
)

// ErrNoDocument is wrapped by Eval errors for queries against ids not
// resident in the store; the HTTP layer maps it to 404.
var ErrNoDocument = errors.New("no such document")

// Options configures a Service.
type Options struct {
	// CacheSize bounds the compiled-query LRU (entries, shared across
	// all documents); <= 0 means qcache.DefaultCapacity.
	CacheSize int
	// Workers sizes the batch worker pool; <= 0 means GOMAXPROCS.
	Workers int
}

// Service serves queries over the documents resident in its store. All
// methods are safe for concurrent use.
type Service struct {
	store   *store.Store
	cache   *qcache.Cache
	workers int

	mu      sync.Mutex
	engines map[string]engineEntry
	// generation increments per engine created. Cache keys embed the
	// generation (docID\x00gen\x00...), so a compilation that was
	// in flight when EvictDoc purged the prefix can only re-insert
	// under the dead generation — a reloaded document under the same
	// id gets a fresh generation and can never hit the stale entry.
	generation uint64

	metrics metrics
}

// engineEntry pins the store handle an engine was built from, so
// engine() can detect evict/reload churn done directly on the store
// (bypassing EvictDoc) and rebuild instead of serving the old tree.
type engineEntry struct {
	handle *store.Handle
	engine *core.Engine
}

// New builds a service around a (possibly pre-populated) store.
func New(st *store.Store, opts Options) *Service {
	if st == nil {
		st = store.New()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Service{
		store:   st,
		cache:   qcache.New(opts.CacheSize),
		workers: workers,
		engines: make(map[string]engineEntry),
	}
}

// Store exposes the underlying document store (loads may bypass the
// service; engines attach lazily at first query).
func (s *Service) Store() *store.Store { return s.store }

// engine returns the per-document engine, creating it on first use and
// rebuilding it whenever the store's handle for the id has changed
// (evict + reload through Store() directly). Engines share the service
// LRU, namespaced by document id and generation.
func (s *Service) engine(docID string) (*core.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.store.Get(docID)
	if !ok {
		delete(s.engines, docID)
		return nil, fmt.Errorf("service: %w: %q", ErrNoDocument, docID)
	}
	if ent, ok := s.engines[docID]; ok && ent.handle == h {
		return ent.engine, nil
	}
	s.generation++
	prefix := docID + "\x00" + strconv.FormatUint(s.generation, 10) + "\x00"
	e := core.NewWithIndex(h.Doc, h.Index, s.cache, prefix)
	s.engines[docID] = engineEntry{handle: h, engine: e}
	return e, nil
}

// EvictDoc removes a document from the store, drops its engine, and
// purges its compiled automata from the LRU. It reports whether the
// document was resident.
func (s *Service) EvictDoc(docID string) bool {
	ok := s.store.Evict(docID)
	s.mu.Lock()
	delete(s.engines, docID)
	s.mu.Unlock()
	s.cache.RemovePrefix(docID + "\x00")
	return ok
}

// Request is one query against one resident document.
type Request struct {
	// Doc is the document id in the store.
	Doc string `json:"doc"`
	// Query is the XPath text.
	Query string `json:"query"`
	// Strategy names an execution strategy; empty means auto.
	Strategy string `json:"strategy,omitempty"`
	// Paths asks for the label path of each selected node.
	Paths bool `json:"paths,omitempty"`
	// Limit truncates the returned node list (0 = all); Count always
	// reports the full cardinality.
	Limit int `json:"limit,omitempty"`
}

// Response is the outcome of one Request.
type Response struct {
	Doc      string `json:"doc"`
	Query    string `json:"query"`
	Strategy string `json:"strategy,omitempty"`
	// Count is the full answer cardinality, even when Nodes is truncated.
	Count int           `json:"count"`
	Nodes []tree.NodeID `json:"nodes"`
	Paths []string      `json:"paths,omitempty"`
	// Visited counts nodes touched by the run — the paper's measure of
	// how little of the document the optimized evaluation looks at.
	Visited   int    `json:"visited"`
	ElapsedUS int64  `json:"elapsed_us"`
	Err       string `json:"error,omitempty"`
	// notFound distinguishes unknown-document errors for the HTTP
	// status mapping without parsing Err text.
	notFound bool
}

// Eval evaluates one request.
func (s *Service) Eval(req Request) Response {
	resp := Response{Doc: req.Doc, Query: req.Query}
	strat, ok := core.ParseStrategy(req.Strategy)
	if !ok {
		resp.Err = fmt.Sprintf("unknown strategy %q", req.Strategy)
		s.metrics.recordError()
		return resp
	}
	eng, err := s.engine(req.Doc)
	if err != nil {
		resp.Err = err.Error()
		resp.notFound = errors.Is(err, ErrNoDocument)
		s.metrics.recordError()
		return resp
	}
	timer := startTimer()
	ans, err := eng.QueryWith(req.Query, strat)
	elapsed := timer.elapsedMicros()
	resp.ElapsedUS = elapsed
	if err != nil {
		resp.Err = err.Error()
		s.metrics.recordError()
		return resp
	}
	resp.Strategy = ans.Strategy.String()
	resp.Count = len(ans.Nodes)
	resp.Visited = ans.Visited
	nodes := ans.Nodes
	if req.Limit > 0 && len(nodes) > req.Limit {
		nodes = nodes[:req.Limit]
	}
	resp.Nodes = nodes
	if req.Paths {
		resp.Paths = make([]string, len(nodes))
		for i, v := range nodes {
			resp.Paths[i] = eng.Doc().Path(v)
		}
	}
	s.metrics.record(ans.Strategy, elapsed, ans.Visited, len(ans.Nodes))
	return resp
}

// EvalBatch fans the requests across the worker pool and returns the
// responses in request order. Individual failures land in the matching
// Response.Err; the batch itself never fails.
func (s *Service) EvalBatch(reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := s.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			out[i] = s.Eval(r)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = s.Eval(reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Stats is a point-in-time snapshot of the whole service.
type Stats struct {
	Documents []store.Stats `json:"documents"`
	// Cache covers the shared compiled-query LRU across all documents.
	Cache        qcache.Stats `json:"cache"`
	CacheHitRate float64      `json:"cache_hit_rate"`
	Queries      QueryStats   `json:"queries"`
}

// Stats snapshots the store, cache and query counters.
func (s *Service) Stats() Stats {
	cs := s.cache.Stats()
	return Stats{
		Documents:    s.store.List(),
		Cache:        cs,
		CacheHitRate: cs.HitRate(),
		Queries:      s.metrics.snapshot(),
	}
}
