// Package service is the long-lived query-serving layer over the
// engine, sharded end to end: the document corpus is partitioned over N
// goroutine-affine shards by consistent hashing on the document id
// (shard.Router), and each shard owns its slice of everything the hot
// path touches — a store partition, a byte-weighted compiled-query LRU
// (optionally governed by one global byte budget), an engine table, a
// generation counter, and its own metrics. A query therefore contends
// only with queries for documents on the same shard; there is no
// cross-shard lock anywhere on the request path. It is the amortization
// layer the paper's whole-query optimization assumes — compile once,
// evaluate many times — extended across many resident documents,
// concurrent clients, and now many contention-free partitions.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/qcache"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tree"
	"repro/internal/xmlparse"
)

// ErrNoDocument is wrapped by Eval errors for queries against ids not
// resident in the store; the HTTP layer maps it to 404.
var ErrNoDocument = errors.New("no such document")

// Options configures a Service.
type Options struct {
	// Shards is the partition count used when New is given a nil store;
	// <= 0 means 1. When a store is supplied its shard count wins.
	Shards int
	// CacheSize bounds each per-shard compiled-query LRU (entries);
	// <= 0 means qcache.DefaultCapacity per shard.
	CacheSize int
	// CacheBytes adds a per-shard byte budget to each LRU, weighing each
	// entry by its automaton's SizeBytes estimate; 0 keeps the entry
	// bound only.
	CacheBytes int64
	// CacheBytesTotal adds one global byte budget across every shard's
	// LRU: a shard admitting an entry while the summed resident bytes
	// exceed the budget evicts from its own tail until the total fits.
	// 0 keeps the per-shard bounds only.
	CacheBytesTotal int64
	// Workers sizes the batch worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// SlowQuery is the flight recorder's slow-query threshold: queries
	// at or above it are flagged in /debug/queries and logged at Warn.
	// 0 disables slow flagging.
	SlowQuery time.Duration
	// FlightRecords sizes the flight recorder ring (last-N queries at
	// /debug/queries); <= 0 means obsv.DefaultFlightRecords.
	FlightRecords int
	// Logger receives structured query logs (slow queries at Warn,
	// per-query records at Debug); nil means slog.Default().
	Logger *slog.Logger
	// StaticAuto disables the observed-latency Auto selector, reverting
	// every Auto decision to the paper's §5 static count heuristic. The
	// zero value (adaptive on) is the daemon default.
	StaticAuto bool
	// AutoEpsilon is the selector's exploration floor; <= 0 means
	// core.DefaultAutoEpsilon.
	AutoEpsilon float64
	// CursorTTL bounds how long an unredeemed continuation token keeps
	// its document generation alive (the MVCC lease horizon); <= 0 means
	// DefaultCursorTTL.
	CursorTTL time.Duration
}

// DefaultCursorTTL is the continuation-token lease lifetime when
// Options does not choose one: long enough for an interactive page
// loop, short enough that abandoned tokens don't pin retired
// generations indefinitely.
const DefaultCursorTTL = 60 * time.Second

// Service serves queries over the documents resident in its sharded
// store. All methods are safe for concurrent use.
type Service struct {
	store     *shard.Store
	shards    []*svcShard
	budget    *qcache.Budget
	workers   int
	flight    *obsv.Flight
	logger    *slog.Logger
	started   time.Time
	cursorTTL time.Duration
	// allocs0 is the process's cumulative heap-allocation count when
	// the service was built; /stats reports the delta per query as the
	// observed steady-state allocs/op.
	allocs0 uint64
}

// heapAllocObjects reads the runtime's cumulative heap allocation
// counter (objects, not bytes) — cheap (no stop-the-world), process
// wide.
func heapAllocObjects() uint64 {
	s := []runtimemetrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() == runtimemetrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// svcShard is one serving partition: the store partition it fronts,
// its compiled-query LRU, its engine table, and its metrics. Requests
// for documents on different shards never touch the same svcShard.
type svcShard struct {
	index int
	part  *store.Store
	cache *qcache.Cache

	// engines is keyed docID\x00generation — one engine per resident
	// (document, generation). Cache keys extend the same prefix
	// (docID\x00gen\x00...), so a compilation that was in flight when a
	// generation retired can only re-insert under the dead generation's
	// namespace — a patched or reloaded document gets a fresh store
	// generation and can never hit the stale entry. The store's retire
	// callback purges both maps when a generation's readers drain.
	mu      sync.Mutex
	engines map[string]engineEntry

	// Lock-wait accounting for mu: how long engine lookups queued behind
	// other requests for this shard — the contention signal sharding
	// exists to shrink, surfaced per shard in /stats.
	lockWaitNS    atomic.Int64
	lockWaitMaxNS atomic.Int64
	lockAcquires  atomic.Uint64

	// autoCfg configures the Auto selector of every engine this shard
	// builds (selector state itself is per engine, hence per document
	// generation).
	autoCfg core.AutoConfig

	metrics metrics
}

// engineEntry pins the store handle an engine was built from. Handles
// are immutable per generation, so an entry never goes stale — it is
// simply purged when its generation retires.
type engineEntry struct {
	handle *store.Handle
	engine *core.Engine
}

// New builds a service around a (possibly pre-populated) sharded store;
// nil means a fresh store with opts.Shards partitions.
func New(ss *shard.Store, opts Options) *Service {
	if ss == nil {
		ss = shard.NewStore(opts.Shards)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	ttl := opts.CursorTTL
	if ttl <= 0 {
		ttl = DefaultCursorTTL
	}
	s := &Service{
		store:     ss,
		budget:    qcache.NewBudget(opts.CacheBytesTotal),
		workers:   workers,
		flight:    obsv.NewFlight(opts.FlightRecords, opts.SlowQuery),
		logger:    logger,
		started:   time.Now(),
		cursorTTL: ttl,
		allocs0:   heapAllocObjects(),
	}
	autoCfg := core.AutoConfig{Adaptive: !opts.StaticAuto, Epsilon: opts.AutoEpsilon}
	if autoCfg.Epsilon <= 0 {
		autoCfg.Epsilon = core.DefaultAutoEpsilon
	}
	for i := 0; i < ss.NumShards(); i++ {
		sh := &svcShard{
			index:   i,
			part:    ss.Part(i),
			cache:   qcache.NewShared(opts.CacheSize, opts.CacheBytes, s.budget),
			engines: make(map[string]engineEntry),
			autoCfg: autoCfg,
		}
		// When a generation's last reader drains, drop its engine and its
		// slice of the compiled-query cache — the serving-layer half of
		// the store's generation GC.
		sh.part.OnRetire(func(id string, gen store.Gen) {
			key := engineKey(id, gen)
			sh.lock()
			delete(sh.engines, key)
			sh.mu.Unlock()
			sh.cache.RemovePrefix(key + "\x00")
		})
		s.shards = append(s.shards, sh)
	}
	return s
}

// Store exposes the underlying sharded document store (loads may bypass
// the service; engines attach lazily at first query).
func (s *Service) Store() *shard.Store { return s.store }

// Flight exposes the always-on query flight recorder (the /debug/queries
// data source).
func (s *Service) Flight() *obsv.Flight { return s.flight }

// NumShards reports the serving partition count.
func (s *Service) NumShards() int { return len(s.shards) }

// shardFor returns the serving shard owning docID — the single routing
// decision every request makes, shared with the store's router so
// engines, caches and documents always agree on placement.
func (s *Service) shardFor(docID string) *svcShard {
	return s.shards[s.store.ShardFor(docID)]
}

// lock acquires the shard mutex, accounting the wait.
func (sh *svcShard) lock() {
	start := time.Now()
	sh.mu.Lock()
	w := time.Since(start).Nanoseconds()
	sh.lockAcquires.Add(1)
	sh.lockWaitNS.Add(w)
	for {
		cur := sh.lockWaitMaxNS.Load()
		if w <= cur || sh.lockWaitMaxNS.CompareAndSwap(cur, w) {
			return
		}
	}
}

// engineKey names one (document, generation) engine — also the prefix
// (plus a trailing NUL) of its compiled-query cache namespace.
func engineKey(docID string, gen store.Gen) string {
	return docID + "\x00" + gen.String()
}

// engine returns the shard's engine for one resident (document,
// generation) handle, creating it on first use. Engines share the
// shard's LRU, namespaced by document id and store generation, so a
// patched document's old and new generations compile and cache
// independently.
func (sh *svcShard) engine(h *store.Handle) *core.Engine {
	key := engineKey(h.ID, h.Gen)
	sh.lock()
	defer sh.mu.Unlock()
	if ent, ok := sh.engines[key]; ok && ent.handle == h {
		return ent.engine
	}
	e := core.NewWithIndex(h.Doc, h.Index, sh.cache, key+"\x00")
	e.ConfigureAuto(sh.autoCfg)
	sh.engines[key] = engineEntry{handle: h, engine: e}
	return e
}

// EvictDoc removes a document from its shard, drops the shard's engines
// for every generation of it, and purges its compiled automata from the
// shard's LRU. The store's retire callbacks do most of this per
// generation already; the prefix sweeps are the belt-and-braces for
// engines raced into existence against a retiring generation. It
// reports whether the document was resident.
func (s *Service) EvictDoc(docID string) bool {
	sh := s.shardFor(docID)
	ok := sh.part.Evict(docID)
	prefix := docID + "\x00"
	sh.lock()
	for key := range sh.engines {
		if strings.HasPrefix(key, prefix) {
			delete(sh.engines, key)
		}
	}
	sh.mu.Unlock()
	sh.cache.RemovePrefix(prefix)
	return ok
}

// PatchDocRequest is one subtree mutation of a resident document (the
// body of PATCH /docs/{id}).
type PatchDocRequest struct {
	// Op is "insert", "delete" or "replace".
	Op string `json:"op"`
	// Node is the patch target: the subtree root to delete or replace,
	// or the parent element receiving an insert.
	Node tree.NodeID `json:"node"`
	// Before (insert only) is the existing child of Node the fragment is
	// inserted before; omitted appends after the last child.
	Before *tree.NodeID `json:"before,omitempty"`
	// XML is the grafted fragment (insert/replace): one element.
	XML string `json:"xml,omitempty"`
	// BaseGen, when non-zero, makes the patch conditional: it applies
	// only while BaseGen is still the latest generation (optimistic
	// concurrency; HTTP 409 on conflict).
	BaseGen store.Gen `json:"base_gen,omitempty"`
}

// PatchDoc applies one subtree mutation, publishing a new MVCC
// generation of the document with incrementally maintained indexes.
// Readers of older generations (open cursors, asof queries) are
// untouched. Returns the new generation's stats.
func (s *Service) PatchDoc(docID string, req PatchDocRequest) (store.Stats, error) {
	op, ok := tree.ParsePatchOp(req.Op)
	if !ok {
		return store.Stats{}, fmt.Errorf("service: unknown patch op %q (want insert, delete or replace)", req.Op)
	}
	pt := tree.Patch{Op: op, Node: req.Node, Before: tree.Nil}
	if req.Before != nil {
		pt.Before = *req.Before
	}
	if req.XML != "" {
		frag, err := xmlparse.Parse([]byte(req.XML))
		if err != nil {
			return store.Stats{}, fmt.Errorf("service: parsing patch fragment: %w", err)
		}
		pt.Frag = frag
	}
	h, err := s.store.Patch(docID, req.BaseGen, pt)
	if err != nil {
		return store.Stats{}, err
	}
	return h.Stats, nil
}

// Request is one query against one resident document.
type Request struct {
	// Doc is the document id in the store.
	Doc string `json:"doc"`
	// Query is the XPath text.
	Query string `json:"query"`
	// Strategy names an execution strategy; empty means auto.
	Strategy string `json:"strategy,omitempty"`
	// Paths asks for the label path of each selected node.
	Paths bool `json:"paths,omitempty"`
	// Limit caps the returned node list (0 = all remaining); Count
	// always reports the full cardinality. When the limit cuts the
	// answer short the Response carries a continuation token in Next.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes a paged answer: the opaque Next token of the
	// previous page. The token pins the owning shard and the document
	// generation, and holds a store lease on that generation, so the
	// page loop keeps reading the tree it started on even while the
	// document is patched underneath it. The resume fails with a
	// stale-cursor error (HTTP 410) only once the pinned generation is
	// actually gone — garbage-collected after the lease expired, evicted,
	// reloaded, or relocated by a reshard.
	Cursor string `json:"cursor,omitempty"`
	// AsOf pins the query to one MVCC generation of the document (a Gen
	// from an earlier response) instead of the latest — time travel
	// across patches, for as long as that generation stays live. Zero
	// means latest. The HTTP layer also sets it from ?asof=.
	AsOf store.Gen `json:"asof,omitempty"`
	// Explain asks for an EXPLAIN-ANALYZE-style profile of this query:
	// the Response (or stream trailer) carries a span tree with
	// per-phase timings and engine counters. The HTTP layer also sets
	// it from ?explain=1.
	Explain bool `json:"explain,omitempty"`
	// RequestID tags the query in logs, flight records and explain
	// profiles. The HTTP layer fills it (X-Request-Id or generated);
	// it never comes from the request body.
	RequestID string `json:"-"`
}

// Response is the outcome of one Request.
type Response struct {
	Doc      string `json:"doc"`
	Query    string `json:"query"`
	Strategy string `json:"strategy,omitempty"`
	// Gen is the MVCC generation the answer was computed against; pass
	// it back as AsOf to keep reading this exact tree across patches.
	Gen store.Gen `json:"gen,omitempty"`
	// Count is the full answer cardinality, even when Nodes is truncated.
	Count int           `json:"count"`
	Nodes []tree.NodeID `json:"nodes"`
	Paths []string      `json:"paths,omitempty"`
	// Visited counts nodes touched by the run — the paper's measure of
	// how little of the document the optimized evaluation looks at.
	Visited   int    `json:"visited"`
	ElapsedUS int64  `json:"elapsed_us"`
	Err       string `json:"error,omitempty"`
	// Next is the opaque continuation token for the next page; empty
	// when the answer is exhausted.
	Next string `json:"next,omitempty"`
	// Explain is the span-tree profile, present when the request asked
	// for one.
	Explain *obsv.Profile `json:"explain,omitempty"`
	// notFound / staleCursor distinguish error classes for the HTTP
	// status mapping (404 / 410) without parsing Err text.
	notFound    bool
	staleCursor bool
}

// evalState is the outcome of prepare: everything Eval and Stream need
// to page or stream an answer.
type evalState struct {
	resp Response
	sh   *svcShard
	cur  *core.Cursor
	eng  *core.Engine
	gen  store.Gen
	// fromCursor marks a resumed request: on successful consumption the
	// incoming token's lease on gen is redeemed (after any new token's
	// lease is issued).
	fromCursor bool
	timer      timer
	// tr is non-nil for explained requests; root is its open
	// whole-request span.
	tr   *obsv.Trace
	root int8
}

// prepare runs the shared front half of Eval and Stream: shard routing,
// strategy parsing, cursor-token validation (shard and document must
// match; the token's generation becomes the target), generation-pinned
// handle lookup, engine lookup, evaluation, and seeking to the resume
// position. On failure the returned state's resp.Err is set (and
// metrics recorded on the owning shard); on success resp carries
// Gen/Strategy/Count/Visited.
func (s *Service) prepare(req Request) evalState {
	st := evalState{resp: Response{Doc: req.Doc, Query: req.Query}, timer: startTimer()}
	if req.Explain {
		// The trace is pooled and its methods are nil-safe, so the
		// non-explain path pays one nil check per phase.
		st.tr = obsv.NewTrace(true)
		st.root = st.tr.Begin(obsv.SpanQuery)
	}
	sp := st.tr.Begin(obsv.SpanRoute)
	sh := s.shardFor(req.Doc)
	st.tr.End(sp)
	st.sh = sh
	strat, ok := core.ParseStrategy(req.Strategy)
	if !ok {
		st.resp.Err = fmt.Sprintf("unknown strategy %q", req.Strategy)
		sh.metrics.recordError()
		return st
	}
	// The target generation: the cursor token's, an explicit asof, or
	// zero for latest.
	tgen := req.AsOf
	var after tree.NodeID
	haveAfter := false
	if req.Cursor != "" {
		// Error exits leave the cursor span open; Profile settles it.
		sp = st.tr.Begin(obsv.SpanCursor)
		cshard, cdoc, cgen, clast, err := decodeCursor(req.Cursor)
		if err != nil {
			st.resp.Err = err.Error()
			sh.metrics.recordError()
			return st
		}
		if cdoc != req.Doc {
			st.resp.Err = fmt.Sprintf("cursor is for document %q, not %q", cdoc, req.Doc)
			sh.metrics.recordError()
			return st
		}
		if cshard != sh.index {
			// The corpus was resharded since the token was issued (e.g.
			// the daemon restarted with a different -shards) and the id
			// relocated; the pinned partition no longer owns it.
			st.resp.Err = fmt.Sprintf("stale cursor: document %q was relocated to a different shard since the cursor was issued", req.Doc)
			st.resp.staleCursor = true
			sh.metrics.recordError()
			return st
		}
		if req.AsOf != 0 && req.AsOf != cgen {
			st.resp.Err = fmt.Sprintf("cursor pins generation %d but the request asks asof %d", cgen, req.AsOf)
			sh.metrics.recordError()
			return st
		}
		tgen = cgen
		after, haveAfter = clast, true
		st.fromCursor = true
		st.tr.End(sp)
	}
	sp = st.tr.Begin(obsv.SpanEngine)
	var h *store.Handle
	if tgen == 0 {
		var ok bool
		if h, ok = sh.part.Get(req.Doc); !ok {
			st.tr.End(sp)
			st.resp.Err = fmt.Sprintf("service: %v: %q", ErrNoDocument, req.Doc)
			st.resp.notFound = true
			sh.metrics.recordError()
			return st
		}
	} else {
		var err error
		if h, err = sh.part.GetAsOf(req.Doc, tgen); err != nil {
			st.tr.End(sp)
			switch {
			case errors.Is(err, store.ErrNotFound):
				st.resp.Err = fmt.Sprintf("service: %v: %q", ErrNoDocument, req.Doc)
				st.resp.notFound = true
			case st.fromCursor:
				st.resp.Err = fmt.Sprintf("stale cursor: generation %d of document %q is gone (patched away, evicted, or the cursor lease expired)", tgen, req.Doc)
				st.resp.staleCursor = true
			default:
				st.resp.Err = fmt.Sprintf("generation %d of document %q is gone (no live cursor or lease kept it)", tgen, req.Doc)
				st.resp.staleCursor = true
			}
			sh.metrics.recordError()
			return st
		}
	}
	eng := sh.engine(h)
	st.tr.End(sp)
	st.resp.Gen = h.Gen
	cur, err := eng.EvalCursorTrace(req.Query, strat, st.tr)
	if err != nil {
		st.resp.ElapsedUS = st.timer.elapsedMicros()
		st.resp.Err = err.Error()
		sh.metrics.recordError()
		return st
	}
	if haveAfter {
		sp = st.tr.Begin(obsv.SpanSeek)
		cur.SeekPast(after)
		st.tr.End(sp)
	}
	st.resp.Strategy = cur.Strategy().String()
	st.resp.Count = cur.Count()
	st.resp.Visited = cur.Visited()
	st.cur, st.eng, st.gen = cur, eng, h.Gen
	return st
}

// outcomeOf classifies a finished response for the flight recorder.
func outcomeOf(resp *Response) string {
	switch {
	case resp.notFound:
		return obsv.OutcomeNotFound
	case resp.staleCursor:
		return obsv.OutcomeStaleCursor
	case resp.Err != "":
		return obsv.OutcomeError
	}
	return obsv.OutcomeOK
}

// explain settles the request trace into its Profile and releases the
// trace; nil for non-explained requests. Runs once, after every phase
// span has ended (the stream path calls it before the trailer write so
// the profile travels in-band).
func (s *Service) explain(st *evalState, req *Request, resp *Response) *obsv.Profile {
	if st.tr == nil {
		return nil
	}
	c := &st.tr.C
	c.Strategy = resp.Strategy
	c.Visited = resp.Visited
	c.Selected = resp.Count
	if cur := st.cur; cur != nil {
		c.MemoEntries = cur.MemoEntries()
		c.MemoHits = cur.MemoHits()
		c.Jumps = cur.Jumps()
		c.QCacheHit = cur.QCacheHit()
		c.CtxPoolHit = cur.CtxPoolHit()
		c.AutoShape = cur.AutoShape()
		c.AutoReason = cur.AutoReason()
	}
	st.tr.End(st.root)
	p := st.tr.Profile(req.RequestID)
	obsv.ReleaseTrace(st.tr)
	st.tr = nil
	return p
}

// finish closes out one request's observability: a flight-recorder
// entry on every exit path (success, client error, stream abort) and a
// structured log line — slow queries at Warn, everything else at Debug.
// outcome/errText may override the response classification (stream
// aborts: the evaluation succeeded but the client went away).
func (s *Service) finish(st *evalState, req *Request, resp *Response, outcome, errText string, sent int, streamed bool) {
	if st.tr != nil {
		// The profile was never delivered (e.g. the stream aborted
		// before the trailer); don't leak the pooled trace.
		obsv.ReleaseTrace(st.tr)
		st.tr = nil
	}
	elapsed := resp.ElapsedUS
	if elapsed == 0 {
		elapsed = st.timer.elapsedMicros()
	}
	if errText == "" {
		errText = resp.Err
	}
	rec := obsv.Record{
		Time:      st.timer.start,
		RequestID: req.RequestID,
		Doc:       req.Doc,
		Query:     req.Query,
		Strategy:  resp.Strategy,
		Outcome:   outcome,
		Err:       errText,
		ElapsedUS: elapsed,
		Sent:      sent,
		Count:     resp.Count,
		Visited:   resp.Visited,
		Streamed:  streamed,
	}
	if st.sh != nil {
		rec.Shard = st.sh.index
	}
	if cur := st.cur; cur != nil {
		rec.MemoHits = cur.MemoHits()
		rec.Jumps = cur.Jumps()
		rec.QCacheHit = cur.QCacheHit()
		rec.CtxPoolHit = cur.CtxPoolHit()
		rec.AutoReason = cur.AutoReason()
	}
	slow := s.flight.Add(rec)
	level := slog.LevelDebug
	msg := "query"
	if slow {
		level, msg = slog.LevelWarn, "slow query"
	}
	if !s.logger.Enabled(context.Background(), level) {
		return
	}
	s.logger.LogAttrs(context.Background(), level, msg,
		slog.String("req_id", req.RequestID),
		slog.String("doc", req.Doc),
		slog.String("query", req.Query),
		slog.Int("shard", rec.Shard),
		slog.String("strategy", resp.Strategy),
		slog.String("outcome", outcome),
		slog.String("err", errText),
		slog.Int64("elapsed_us", elapsed),
		slog.Int("sent", sent),
		slog.Int("count", resp.Count),
		slog.Int("visited", resp.Visited),
		slog.Bool("qcache_hit", rec.QCacheHit),
		slog.Bool("ctx_pool_hit", rec.CtxPoolHit),
		slog.Bool("streamed", streamed),
	)
}

// Eval evaluates one request, returning at most Limit nodes (all
// remaining when Limit <= 0) from the resume position, plus a Next
// token when the answer has more pages.
func (s *Service) Eval(req Request) Response {
	st := s.prepare(req)
	if st.cur == nil {
		st.resp.Explain = s.explain(&st, &req, &st.resp)
		s.finish(&st, &req, &st.resp, outcomeOf(&st.resp), "", 0, false)
		return st.resp
	}
	// Return the evaluation context to its pool even when the page
	// limit leaves the cursor unexhausted — the next request for this
	// (document, query) wants the warm context, not the GC.
	defer st.cur.Close()
	resp := st.resp
	sp := st.tr.Begin(obsv.SpanPage)
	limit := req.Limit
	if limit <= 0 {
		limit = resp.Count
	}
	nodes := make([]tree.NodeID, 0, min(limit, resp.Count))
	for len(nodes) < limit {
		v, ok := st.cur.Next()
		if !ok {
			break
		}
		nodes = append(nodes, v)
	}
	// A non-empty remainder means this page was cut short: hand out a
	// resumption token pinned to the owning shard and store generation,
	// with a lease keeping that generation alive for the token's TTL.
	if _, more := st.cur.Next(); more && len(nodes) > 0 {
		resp.Next = encodeCursor(st.sh.index, req.Doc, st.gen, nodes[len(nodes)-1])
		_ = st.sh.part.Lease(req.Doc, st.gen, time.Now().Add(s.cursorTTL))
	}
	// Only now — with any successor token's lease in place — release the
	// consumed token's lease. Failed resumes never redeem: the client may
	// retry the same token until its lease expires.
	if st.fromCursor {
		st.sh.part.Redeem(req.Doc, st.gen)
	}
	resp.Nodes = nodes
	if req.Paths {
		resp.Paths = make([]string, len(nodes))
		for i, v := range nodes {
			resp.Paths[i] = st.eng.Doc().Path(v)
		}
	}
	st.tr.End(sp)
	elapsed := st.timer.elapsedMicros()
	resp.ElapsedUS = elapsed
	st.sh.metrics.record(st.cur.Strategy(), elapsed, resp.Visited, resp.Count)
	resp.Explain = s.explain(&st, &req, &resp)
	s.finish(&st, &req, &resp, obsv.OutcomeOK, "", len(nodes), false)
	return resp
}

// EvalBatch fans the requests across the worker pool and returns the
// responses in request order. Individual failures land in the matching
// Response.Err; the batch itself never fails.
func (s *Service) EvalBatch(reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := s.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			out[i] = s.Eval(r)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = s.Eval(reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// ShardStats is the point-in-time picture of one serving partition.
type ShardStats struct {
	Shard     int `json:"shard"`
	Documents int `json:"documents"`
	// DocBytes estimates the resident bytes of the shard's documents
	// plus their jumping indexes; ResidentBytes adds the shard's share
	// of the compiled-query cache.
	DocBytes      int64 `json:"doc_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	Engines       int   `json:"engines"`
	// Cache covers this shard's compiled-query LRU only.
	Cache        qcache.Stats `json:"cache"`
	CacheHitRate float64      `json:"cache_hit_rate"`
	// Lock-wait tells how long requests queued for this shard's engine
	// table — the per-shard contention signal. The total is the exact
	// sum behind the mean (the Prometheus exporter needs it).
	LockWaitTotalNS int64      `json:"lock_wait_total_ns"`
	LockWaitMeanNS  int64      `json:"lock_wait_mean_ns"`
	LockWaitMaxNS   int64      `json:"lock_wait_max_ns"`
	LockAcquires    uint64     `json:"lock_acquires"`
	Queries         QueryStats `json:"queries"`
	// Pool aggregates the evaluation-context pools of this shard's
	// engines: hit rate is the fraction of queries served by a warm,
	// allocation-free context, ArenaBytes the scratch memory those
	// pooled contexts keep resident.
	Pool        core.PoolStats `json:"ctx_pool"`
	PoolHitRate float64        `json:"ctx_pool_hit_rate"`
	// Auto aggregates the observed-latency Auto selectors of this
	// shard's engines: shapes tracked, wins per strategy, exploration
	// rate, estimate error, and the most-decided shapes with their
	// per-candidate estimates and winner reasons.
	Auto core.SelectorStats `json:"auto"`
	// MVCC reports this shard's generation chains: live and pinned
	// generations, patches applied, generations retired.
	MVCC store.MVCCStats `json:"mvcc"`
	// Mapped reports this shard's mmap-backed documents: total mapped
	// bytes, the charged (presumed-OS-resident) subset under the
	// resident budget, and map faults (touches that re-heated a
	// released mapping).
	Mapped store.MappedStats `json:"mapped"`
}

// Stats is a point-in-time snapshot of the whole service plus the
// per-shard breakdown.
type Stats struct {
	Documents []store.Stats `json:"documents"`
	Shards    []ShardStats  `json:"shards"`
	// Cache aggregates the per-shard compiled-query LRUs (sizes and
	// counters summed).
	Cache        qcache.Stats `json:"cache"`
	CacheHitRate float64      `json:"cache_hit_rate"`
	// CacheBudget reports the shared byte budget when one is configured.
	CacheBudget *qcache.BudgetStats `json:"cache_budget,omitempty"`
	Queries     QueryStats          `json:"queries"`
	// Pool aggregates the evaluation-context pools across all shards.
	Pool        core.PoolStats `json:"ctx_pool"`
	PoolHitRate float64        `json:"ctx_pool_hit_rate"`
	// Auto aggregates the Auto selector tables across all shards.
	Auto core.SelectorStats `json:"auto"`
	// MVCC aggregates the generation chains across all shards. Taking
	// the snapshot sweeps expired cursor leases, so stats/metrics
	// scraping doubles as the lease janitor.
	MVCC store.MVCCStats `json:"mvcc"`
	// Mapped aggregates mmap-backed document accounting across shards.
	Mapped store.MappedStats `json:"mapped"`
	// HeapAllocObjects is the process's cumulative heap allocations
	// since the service started; AllocsPerQuery divides it by the
	// query total — the observed (process-wide, so conservative)
	// steady-state allocs/op. Warm context pooling should hold this
	// near the floor set by response assembly rather than evaluation.
	HeapAllocObjects uint64 `json:"heap_alloc_objects"`
	// xpqlint:ignore metricnames derivable: xpqd_heap_alloc_objects_total / xpqd_queries_total in PromQL
	AllocsPerQuery float64 `json:"allocs_per_query_estimate"`
}

// Stats snapshots the store, caches and query counters, globally and
// per shard.
func (s *Service) Stats() Stats {
	out := Stats{Documents: make([]store.Stats, 0, s.store.Len())}
	var agg metrics
	for _, sh := range s.shards {
		cs := sh.cache.Stats()
		var docBytes int64
		docs := sh.part.List()
		out.Documents = append(out.Documents, docs...)
		for _, d := range docs {
			docBytes += d.MemBytes
		}
		sh.mu.Lock()
		engines := len(sh.engines)
		var pool core.PoolStats
		// Seed the config fields so a shard with no engines yet still
		// reports the configured mode.
		auto := core.SelectorStats{Adaptive: sh.autoCfg.Adaptive, Epsilon: sh.autoCfg.Epsilon}
		for _, ent := range sh.engines {
			ent.engine.PoolStats().AddTo(&pool)
			ent.engine.SelectorStats().AddTo(&auto)
		}
		sh.mu.Unlock()
		auto.Finalize()
		mvcc := sh.part.MVCC()
		mapped := sh.part.Mapped()
		ss := ShardStats{
			Shard:         sh.index,
			Documents:     len(docs),
			DocBytes:      docBytes,
			ResidentBytes: docBytes + cs.SizeBytes,
			Engines:       engines,
			Cache:         cs,
			CacheHitRate:  cs.HitRate(),
			LockWaitMaxNS: sh.lockWaitMaxNS.Load(),
			LockAcquires:  sh.lockAcquires.Load(),
			Queries:       sh.metrics.snapshot(),
			Pool:          pool,
			PoolHitRate:   pool.HitRate(),
			Auto:          auto,
			MVCC:          mvcc,
			Mapped:        mapped,
		}
		pool.AddTo(&out.Pool)
		auto.AddTo(&out.Auto)
		mvcc.AddTo(&out.MVCC)
		out.Mapped.MappedBytes += mapped.MappedBytes
		out.Mapped.ChargedBytes += mapped.ChargedBytes
		out.Mapped.MapFaults += mapped.MapFaults
		ss.LockWaitTotalNS = sh.lockWaitNS.Load()
		if ss.LockAcquires > 0 {
			ss.LockWaitMeanNS = ss.LockWaitTotalNS / int64(ss.LockAcquires)
		}
		out.Shards = append(out.Shards, ss)
		out.Cache.Size += cs.Size
		out.Cache.Capacity += cs.Capacity
		out.Cache.SizeBytes += cs.SizeBytes
		out.Cache.MaxBytes += cs.MaxBytes
		out.Cache.Hits += cs.Hits
		out.Cache.Misses += cs.Misses
		out.Cache.Evictions += cs.Evictions
		sh.metrics.addTo(&agg)
	}
	sort.Slice(out.Documents, func(i, j int) bool {
		return out.Documents[i].ID < out.Documents[j].ID
	})
	out.CacheHitRate = out.Cache.HitRate()
	if s.budget != nil {
		bs := s.budget.Stats()
		out.CacheBudget = &bs
	}
	out.Queries = agg.snapshot()
	out.PoolHitRate = out.Pool.HitRate()
	out.Auto.Finalize()
	if now := heapAllocObjects(); now > s.allocs0 {
		out.HeapAllocObjects = now - s.allocs0
		if out.Queries.Total > 0 {
			out.AllocsPerQuery = float64(out.HeapAllocObjects) / float64(out.Queries.Total)
		}
	}
	return out
}
