package service

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/xmark"
)

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	s := New(shard.NewStore(1), opts)
	if _, err := s.Store().LoadXML("d1",
		[]byte("<r><a><b>x</b></a><a><b/><b/></a><c/></r>")); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvalBasics(t *testing.T) {
	s := newTestService(t, Options{})
	resp := s.Eval(Request{Doc: "d1", Query: "//a/b"})
	if resp.Err != "" {
		t.Fatalf("err: %s", resp.Err)
	}
	if resp.Count != 3 || len(resp.Nodes) != 3 {
		t.Errorf("count = %d nodes = %d, want 3", resp.Count, len(resp.Nodes))
	}
	if resp.Strategy == "" || resp.Strategy == "auto" {
		t.Errorf("strategy = %q, want the concrete engine that ran", resp.Strategy)
	}

	limited := s.Eval(Request{Doc: "d1", Query: "//a/b", Limit: 2, Paths: true})
	if limited.Count != 3 || len(limited.Nodes) != 2 || len(limited.Paths) != 2 {
		t.Errorf("limit: count=%d nodes=%d paths=%d, want 3/2/2",
			limited.Count, len(limited.Nodes), len(limited.Paths))
	}
	if limited.Paths[0] != "/r/a/b" {
		t.Errorf("path = %q, want /r/a/b", limited.Paths[0])
	}
}

func TestEvalErrors(t *testing.T) {
	s := newTestService(t, Options{})
	if resp := s.Eval(Request{Doc: "nope", Query: "//a"}); resp.Err == "" {
		t.Error("unknown doc must error")
	}
	if resp := s.Eval(Request{Doc: "d1", Query: "//a", Strategy: "warp"}); resp.Err == "" {
		t.Error("unknown strategy must error")
	}
	if resp := s.Eval(Request{Doc: "d1", Query: "///"}); resp.Err == "" {
		t.Error("bad query must error")
	}
	st := s.Stats()
	if st.Queries.Errors != 3 {
		t.Errorf("error counter = %d, want 3", st.Queries.Errors)
	}
}

func TestRepeatedQuerySkipsRecompilation(t *testing.T) {
	s := newTestService(t, Options{})
	first := s.Stats().Cache
	if first.Hits != 0 {
		t.Fatalf("fresh cache has hits: %+v", first)
	}
	for i := 0; i < 5; i++ {
		if resp := s.Eval(Request{Doc: "d1", Query: "//a/b", Strategy: "optimized"}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}
	cs := s.Stats().Cache
	// First evaluation compiles (one miss); the other four hit the LRU.
	if cs.Misses != 1 || cs.Hits != 4 {
		t.Errorf("hits/misses = %d/%d, want 4/1 (recompilation skipped)", cs.Hits, cs.Misses)
	}
	if cs.Size != 1 {
		t.Errorf("cache size = %d, want 1", cs.Size)
	}
}

func TestCacheKeyedPerDocument(t *testing.T) {
	s := newTestService(t, Options{})
	if _, err := s.Store().LoadXML("d2", []byte("<r><a><b/></a></r>")); err != nil {
		t.Fatal(err)
	}
	s.Eval(Request{Doc: "d1", Query: "//a/b", Strategy: "optimized"})
	s.Eval(Request{Doc: "d2", Query: "//a/b", Strategy: "optimized"})
	if cs := s.Stats().Cache; cs.Size != 2 || cs.Misses != 2 {
		t.Errorf("same query on two docs must compile per doc: %+v", cs)
	}
}

func TestEvictPurgesCompiledQueries(t *testing.T) {
	s := newTestService(t, Options{})
	s.Eval(Request{Doc: "d1", Query: "//a/b", Strategy: "optimized"})
	s.Eval(Request{Doc: "d1", Query: "//c", Strategy: "optimized"})
	if got := s.Stats().Cache.Size; got != 2 {
		t.Fatalf("cache size = %d, want 2", got)
	}
	if !s.EvictDoc("d1") {
		t.Fatal("evict failed")
	}
	if got := s.Stats().Cache.Size; got != 0 {
		t.Errorf("cache size after evict = %d, want 0", got)
	}
	if resp := s.Eval(Request{Doc: "d1", Query: "//a"}); resp.Err == "" {
		t.Error("evicted doc must not answer")
	}
	if s.EvictDoc("d1") {
		t.Error("double evict = true")
	}
}

func TestReloadedDocGetsFreshCacheNamespace(t *testing.T) {
	// An id evicted and reloaded with different content must never be
	// answered from automata compiled against the old document — the
	// engine generation in the cache key guarantees it even if a stale
	// entry were re-inserted by an in-flight compile after the purge.
	s := New(shard.NewStore(1), Options{})
	if _, err := s.Store().LoadXML("d", []byte("<r><a><b/></a></r>")); err != nil {
		t.Fatal(err)
	}
	if resp := s.Eval(Request{Doc: "d", Query: "//b", Strategy: "optimized"}); resp.Count != 1 {
		t.Fatalf("old doc count = %d, want 1", resp.Count)
	}
	if !s.EvictDoc("d") {
		t.Fatal("evict failed")
	}
	if _, err := s.Store().LoadXML("d", []byte("<r><a><b/><b/><b/></a></r>")); err != nil {
		t.Fatal(err)
	}
	resp := s.Eval(Request{Doc: "d", Query: "//b", Strategy: "optimized"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.Count != 3 {
		t.Errorf("reloaded doc count = %d, want 3 (stale automaton served?)", resp.Count)
	}
	// The reload compiled fresh: the second eval is a miss, not a hit.
	if cs := s.Stats().Cache; cs.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one per generation)", cs.Misses)
	}
}

func TestStoreBypassReloadRebuildsEngine(t *testing.T) {
	// Evict/reload done directly on the exposed Store() (bypassing
	// Service.EvictDoc) must not leave a stale engine serving the old
	// tree: engine() revalidates the store handle on every call.
	s := New(shard.NewStore(1), Options{})
	if _, err := s.Store().LoadXML("d", []byte("<r><a><b/></a></r>")); err != nil {
		t.Fatal(err)
	}
	if resp := s.Eval(Request{Doc: "d", Query: "//b"}); resp.Count != 1 {
		t.Fatalf("old doc count = %d, want 1", resp.Count)
	}
	if !s.Store().Evict("d") {
		t.Fatal("store evict failed")
	}
	if resp := s.Eval(Request{Doc: "d", Query: "//b"}); resp.Err == "" {
		t.Error("evicted doc must not answer even with a cached engine")
	}
	if _, err := s.Store().LoadXML("d", []byte("<r><b/><b/><b/><b/></r>")); err != nil {
		t.Fatal(err)
	}
	if resp := s.Eval(Request{Doc: "d", Query: "//b"}); resp.Count != 4 {
		t.Errorf("reloaded doc count = %d, want 4 (stale engine served?)", resp.Count)
	}
}

func TestNulDocIDRejected(t *testing.T) {
	s := New(shard.NewStore(1), Options{})
	if _, err := s.Store().LoadXML("a\x00b", []byte("<r/>")); err == nil {
		t.Error("NUL in doc id must be rejected (it aliases cache-key namespaces)")
	}
}

func TestEvalBatchOrderAndResults(t *testing.T) {
	s := New(shard.NewStore(1), Options{Workers: 4})
	if _, err := s.Store().GenerateXMark("xm", 0.002, 1); err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for _, q := range xmark.Queries() {
		reqs = append(reqs, Request{Doc: "xm", Query: q.XPath})
	}
	// Sequential ground truth.
	want := make([]Response, len(reqs))
	for i, r := range reqs {
		want[i] = s.Eval(r)
	}
	got := s.EvalBatch(reqs)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Err != "" {
			t.Errorf("req %d (%s): %s", i, reqs[i].Query, got[i].Err)
			continue
		}
		if got[i].Doc != want[i].Doc || got[i].Query != want[i].Query {
			t.Errorf("req %d answered out of order: got (%s,%s)", i, got[i].Doc, got[i].Query)
		}
		if !reflect.DeepEqual(got[i].Nodes, want[i].Nodes) {
			t.Errorf("req %d (%s): batch answer differs from sequential", i, reqs[i].Query)
		}
	}
	if s.EvalBatch(nil) == nil {
		t.Error("empty batch must return empty non-error slice")
	}
}

func TestStatsHistogramAndStrategies(t *testing.T) {
	s := newTestService(t, Options{})
	queries := []string{"//a", "//b", "//c", "/r/a", "/r/a/b", "/r/c", "//a/b"}
	for _, q := range queries {
		if resp := s.Eval(Request{Doc: "d1", Query: q}); resp.Err != "" {
			t.Fatalf("%s: %s", q, resp.Err)
		}
	}
	qs := s.Stats().Queries
	if qs.Total != 7 {
		t.Fatalf("total = %d, want 7", qs.Total)
	}
	var inBuckets uint64
	for _, b := range qs.Latency {
		inBuckets += b.Count
	}
	if inBuckets != 7 {
		t.Errorf("histogram counts sum to %d, want 7", inBuckets)
	}
	var byStrat uint64
	for _, c := range qs.ByStrategy {
		byStrat += c
	}
	if byStrat != 7 {
		t.Errorf("by-strategy counts sum to %d, want 7", byStrat)
	}
	if qs.VisitedNodes == 0 || qs.SelectedNodes == 0 {
		t.Errorf("visited/selected = %d/%d, want > 0", qs.VisitedNodes, qs.SelectedNodes)
	}
}

func TestStatsSelectorTable(t *testing.T) {
	s := newTestService(t, Options{})
	// Warm one multi-candidate shape so the table has a learned entry.
	for i := 0; i < 6; i++ {
		if resp := s.Eval(Request{Doc: "d1", Query: "//a/b"}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}
	// An absent chain label short-circuits without running any engine;
	// /stats must report it as its own outcome, and explain + the flight
	// recorder must carry the selector's attribution.
	resp := s.Eval(Request{Doc: "d1", Query: "/r/nosuch/x", Explain: true})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.Count != 0 {
		t.Errorf("absent label count = %d, want 0", resp.Count)
	}
	if resp.Strategy != "empty-chain" {
		t.Errorf("strategy = %q, want empty-chain", resp.Strategy)
	}
	if resp.Explain == nil {
		t.Fatal("no explain profile")
	}
	if got := resp.Explain.Counters.AutoReason; got != "absent-chain-label" {
		t.Errorf("explain auto_reason = %q, want absent-chain-label", got)
	}
	if got := resp.Explain.Counters.AutoShape; got == "" {
		t.Error("explain auto_shape is empty")
	}

	st := s.Stats()
	if !st.Auto.Adaptive {
		t.Error("default service must run the adaptive selector")
	}
	if st.Auto.Epsilon != core.DefaultAutoEpsilon {
		t.Errorf("epsilon = %g, want default %g", st.Auto.Epsilon, core.DefaultAutoEpsilon)
	}
	if st.Auto.Shapes < 2 || st.Auto.Decisions < 7 {
		t.Errorf("selector table: shapes=%d decisions=%d, want >=2/>=7",
			st.Auto.Shapes, st.Auto.Decisions)
	}
	if st.Auto.ShortCircuits != 1 {
		t.Errorf("short circuits = %d, want 1", st.Auto.ShortCircuits)
	}
	if st.Auto.Observations == 0 {
		t.Error("no feedback observations flowed to /stats")
	}
	var warm, absent *core.AutoShape
	for i := range st.Auto.TopShapes {
		sh := &st.Auto.TopShapes[i]
		switch sh.Shape {
		case "/descendant::a/child::b":
			warm = sh
		case "/child::r/child::nosuch/child::x":
			absent = sh
		}
	}
	if warm == nil {
		t.Fatalf("warm shape missing from top_shapes: %+v", st.Auto.TopShapes)
	}
	// Per-shape winner + reason: the acceptance criterion.
	if warm.LastStrategy == "" || warm.LastReason == "" {
		t.Errorf("warm shape lacks winner/reason: %+v", warm)
	}
	if len(warm.Candidates) == 0 || warm.Candidates[0].Observations == 0 {
		t.Errorf("warm shape has no measured candidates: %+v", warm.Candidates)
	}
	if absent == nil {
		t.Fatalf("absent shape missing from top_shapes: %+v", st.Auto.TopShapes)
	}
	if absent.LastStrategy != "empty-chain" || absent.LastReason != "absent-chain-label" {
		t.Errorf("absent shape = %s/%s, want empty-chain/absent-chain-label",
			absent.LastStrategy, absent.LastReason)
	}
	if st.Auto.WinsByStrategy["empty-chain"] != 1 {
		t.Errorf("wins_by_strategy[empty-chain] = %d, want 1", st.Auto.WinsByStrategy["empty-chain"])
	}
	// The per-shard view carries the same table.
	if len(st.Shards) != 1 || st.Shards[0].Auto.Decisions != st.Auto.Decisions {
		t.Errorf("per-shard selector table disagrees with the aggregate")
	}

	// The flight recorder attributes the short-circuit too.
	recs := s.Flight().Snapshot(0, false).Records
	found := false
	for _, r := range recs {
		if r.Query == "/r/nosuch/x" {
			found = true
			if r.AutoReason != "absent-chain-label" {
				t.Errorf("flight auto_reason = %q, want absent-chain-label", r.AutoReason)
			}
		}
	}
	if !found {
		t.Error("short-circuit query missing from flight recorder")
	}
}

func TestStatsSelectorStaticMode(t *testing.T) {
	s := newTestService(t, Options{StaticAuto: true})
	for i := 0; i < 3; i++ {
		if resp := s.Eval(Request{Doc: "d1", Query: "//a/b"}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}
	st := s.Stats()
	if st.Auto.Adaptive {
		t.Error("StaticAuto service reports adaptive")
	}
	if len(st.Auto.TopShapes) == 0 || st.Auto.TopShapes[0].LastReason != "static-heuristic" {
		t.Errorf("static mode top_shapes = %+v, want static-heuristic reason", st.Auto.TopShapes)
	}
	// Static mode still measures (warm handoff on a mode flip).
	if st.Auto.Observations != 3 {
		t.Errorf("static-mode observations = %d, want 3", st.Auto.Observations)
	}
}
