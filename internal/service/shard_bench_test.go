package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
)

// The shard-scaling benchmark: one mixed workload — a hot set of eight
// XMark documents hit concurrently with cheap point queries, paged
// evals and NDJSON streams, plus evict/reload churn of eight short-
// lived documents — served by 1, 2, 4 and 8 shards over a corpus whose
// compiled-query cache holds ~2k resident automata. Per-query costs are
// identical across shard counts (same documents, same automata, all
// warm); what sharding changes is the blast radius of the registry-
// level operations: evicting a document purges its automata with a
// prefix scan of the owning LRU under that LRU's lock, so a single
// registry scans (and locks) the entire resident cache on every evict,
// while an 8-shard registry scans one eighth — and only queries routed
// to that shard can queue behind it. The aggregate-QPS spread between
// shards-1 and shards-8 measures exactly that single-registry cost.
// GOMAXPROCS is raised to 8 for the duration so CI machines exercise
// real cross-thread handoffs.

const (
	shardBenchHotDocs   = 8
	shardBenchChurnDocs = 8
	shardBenchScale     = 0.0005
	// shardBenchResidentQueries automata are compiled per hot document
	// up front, so the LRUs carry a production-shaped resident set for
	// the evict scans to walk.
	shardBenchResidentQueries = 256
	shardBenchChurnXML        = "<r><a><keyword/></a><b><keyword/></b></r>"
)

// shardBenchQueries are cheap cached queries with small answers, run
// step-wise (occurrence-list joins, no per-node automaton state): the
// regime where serving-layer overhead is a visible fraction of the
// request, as in high-QPS point-query traffic.
var shardBenchQueries = []string{
	"/site/categories",
	"/site/regions",
	"/site/people",
	"//keyword",
}

const shardBenchStrategy = "stepwise"

func shardBenchService(tb testing.TB, shards int) (*Service, []string, []string) {
	tb.Helper()
	ss := shard.NewStore(shards)
	// One capacity well above the resident set in every configuration,
	// so no entry-count eviction muddies the comparison.
	svc := New(ss, Options{CacheSize: 4096})
	hot := make([]string, shardBenchHotDocs)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot-%d", i)
		if _, err := ss.GenerateXMark(hot[i], shardBenchScale, int64(i+1)); err != nil {
			tb.Fatal(err)
		}
	}
	churn := make([]string, shardBenchChurnDocs)
	for i := range churn {
		churn[i] = fmt.Sprintf("churn-%d", i)
		if _, err := ss.LoadXML(churn[i], []byte(shardBenchChurnXML)); err != nil {
			tb.Fatal(err)
		}
	}
	// Fill the caches with a production-shaped resident set of compiled
	// automata (distinct label chains; matching nothing is fine), and
	// warm every hot (doc, query) pair the load will issue.
	for _, id := range hot {
		for i := 0; i < shardBenchResidentQueries; i++ {
			q := fmt.Sprintf("//n%d//keyword", i)
			if resp := svc.Eval(Request{Doc: id, Query: q, Strategy: "optimized"}); resp.Err != "" {
				tb.Fatalf("%s %s: %s", id, q, resp.Err)
			}
		}
		for _, q := range shardBenchQueries {
			if resp := svc.Eval(Request{Doc: id, Query: q, Strategy: shardBenchStrategy}); resp.Err != "" {
				tb.Fatalf("%s %s: %s", id, q, resp.Err)
			}
		}
	}
	return svc, hot, churn
}

// shardBenchBody is one operation of the mixed load, dealt round-robin
// over documents and queries: mostly one-shot point evals, with paged
// evals, full NDJSON streams, and evict+reload churn mixed in.
func shardBenchBody(b *testing.B, svc *Service, hot, churn []string) {
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1)) * 7919 // offset workers so they spread over the hot set
		for pb.Next() {
			i++
			id := hot[i%len(hot)]
			q := shardBenchQueries[i%len(shardBenchQueries)]
			switch i % 8 {
			case 0:
				// Churn: evict one short-lived document (purging its
				// automata — the registry-wide prefix scan) and reload
				// it. Another worker may race us to the reload; losing
				// that race cleanly is part of the workload.
				cid := churn[i%len(churn)]
				svc.EvictDoc(cid)
				if _, err := svc.Store().LoadXML(cid, []byte(shardBenchChurnXML)); err != nil &&
					!errors.Is(err, store.ErrExists) {
					b.Error(err)
					return
				}
			case 1:
				if pre := svc.Stream(io.Discard, Request{Doc: id, Query: q, Strategy: shardBenchStrategy}, DefaultStreamChunk); pre != nil {
					b.Error(pre.Err)
					return
				}
			case 2:
				if resp := svc.Eval(Request{Doc: id, Query: q, Strategy: shardBenchStrategy, Limit: 25}); resp.Err != "" {
					b.Error(resp.Err)
					return
				}
			default:
				if resp := svc.Eval(Request{Doc: id, Query: q, Strategy: shardBenchStrategy, Limit: 10}); resp.Err != "" {
					b.Error(resp.Err)
					return
				}
			}
		}
	})
}

var shardBenchCounts = []int{1, 2, 4, 8}

func BenchmarkShardScaling(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	for _, n := range shardBenchCounts {
		n := n
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			svc, hot, churn := shardBenchService(b, n)
			b.SetParallelism(4) // 4 x GOMAXPROCS concurrent clients
			b.ReportAllocs()
			b.ResetTimer()
			shardBenchBody(b, svc, hot, churn)
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}

// shardBenchJSON is one trajectory point of the BENCH_shard.json series.
type shardBenchJSON struct {
	Benchmark string   `json:"benchmark"`
	Variant   string   `json:"variant"`
	HotDocs   int      `json:"hot_docs"`
	ChurnDocs int      `json:"churn_docs"`
	Scale     float64  `json:"scale"`
	Resident  int      `json:"resident_automata_per_doc"`
	Queries   []string `json:"queries"`
	Clients   int      `json:"clients"`
	NsPerOp   int64    `json:"ns_per_op"`
	QPS       float64  `json:"qps"`
	BytesOp   int64    `json:"alloc_bytes_per_op"`
	AllocsOp  int64    `json:"allocs_per_op"`
	GoVersion string   `json:"go_version"`
}

// TestEmitShardBenchJSON runs the shard-scaling comparison via
// testing.Benchmark and writes the results as JSON — the shards-1 entry
// is the single-registry baseline the sharded entries are measured
// against. Skipped unless BENCH_SHARD_JSON names the output file:
//
//	BENCH_SHARD_JSON=BENCH_shard.json go test -run TestEmitShardBenchJSON ./internal/service
func TestEmitShardBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_SHARD_JSON")
	if path == "" {
		t.Skip("set BENCH_SHARD_JSON=<file> to emit the benchmark trajectory point")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	clients := 4 * runtime.GOMAXPROCS(0)
	var out []shardBenchJSON
	for _, n := range shardBenchCounts {
		svc, hot, churn := shardBenchService(t, n)
		r := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(4)
			b.ReportAllocs()
			shardBenchBody(b, svc, hot, churn)
		})
		out = append(out, shardBenchJSON{
			Benchmark: "BenchmarkShardScaling",
			Variant:   fmt.Sprintf("shards-%d", n),
			HotDocs:   shardBenchHotDocs,
			ChurnDocs: shardBenchChurnDocs,
			Scale:     shardBenchScale,
			Resident:  shardBenchResidentQueries,
			Queries:   shardBenchQueries,
			Clients:   clients,
			NsPerOp:   r.NsPerOp(),
			QPS:       float64(r.N) / r.T.Seconds(),
			BytesOp:   r.AllocedBytesPerOp(),
			AllocsOp:  r.AllocsPerOp(),
			GoVersion: runtime.Version(),
		})
		t.Logf("shards-%d: %d ops, %.0f qps", n, r.N, float64(r.N)/r.T.Seconds())
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
