package service

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tree"
)

// TestShardedChurnHammer is the sharded concurrency hammer: on every
// shard of an 8-shard service at once — loads (XML and XMark, with a
// racing duplicate loader exercising the store's single-flight),
// evictions, one-shot and paged Evals, and NDJSON streams, including
// evict-while-streaming. Every observation must be one of exactly two
// things: a clean error (document missing, stale cursor, or ErrExists
// on the racing load) or a complete answer equal to one single load's
// ground truth. Run under -race (CI does) this is the sharded serving
// layer's thread-safety proof.
func TestShardedChurnHammer(t *testing.T) {
	const query = "//keyword"
	const smallXML = "<r><keyword/><a><keyword/><b><keyword/></b></a></r>"
	xmarkSeeds := []int64{1, 2}

	// Ground truth per load variant, computed on isolated single-shard
	// services. XMark generation is deterministic in (scale, seed), so
	// the truth is the same for every document id.
	exp := make(map[string][]tree.NodeID)
	addTruth := func(load func(ss *shard.Store) error) {
		t.Helper()
		ref := New(shard.NewStore(1), Options{Workers: 1})
		if err := load(ref.Store()); err != nil {
			t.Fatal(err)
		}
		resp := ref.Eval(Request{Doc: "truth", Query: query})
		if resp.Err != "" || len(resp.Nodes) == 0 {
			t.Fatalf("ground truth: count=%d err=%q", len(resp.Nodes), resp.Err)
		}
		exp[key(resp.Nodes)] = resp.Nodes
	}
	for _, seed := range xmarkSeeds {
		seed := seed
		addTruth(func(ss *shard.Store) error {
			_, err := ss.GenerateXMark("truth", 0.002, seed)
			return err
		})
	}
	addTruth(func(ss *shard.Store) error {
		_, err := ss.LoadXML("truth", []byte(smallXML))
		return err
	})

	matchesSomeLoad := func(nodes []tree.NodeID) bool {
		_, ok := exp[key(nodes)]
		return ok
	}
	cleanErr := func(resp *Response) bool {
		return resp.notFound || resp.staleCursor ||
			strings.Contains(resp.Err, "no such document")
	}

	ss := shard.NewStore(8)
	svc := New(ss, Options{CacheSize: 16})
	ids := idsCoveringAllShards(t, ss)
	for _, id := range ids {
		if _, err := ss.GenerateXMark(id, 0.002, xmarkSeeds[0]); err != nil {
			t.Fatal(err)
		}
	}

	var readersWG, churnWG sync.WaitGroup
	stop := make(chan struct{})

	for _, id := range ids {
		id := id

		// Churn: evict, then reload as XMark or XML with rotating content.
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				svc.EvictDoc(id)
				var err error
				if i%3 == 2 {
					_, err = ss.LoadXML(id, []byte(smallXML))
				} else {
					_, err = ss.GenerateXMark(id, 0.002, xmarkSeeds[i%2])
				}
				// The duplicate loader below may have won the slot.
				if err != nil && !errors.Is(err, store.ErrExists) {
					t.Errorf("churn reload %s: %v", id, err)
					return
				}
			}
		}()

		// Duplicate loader: races the churner for the same id, so the
		// single-flight load path runs under contention on every shard.
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ss.LoadXML(id, []byte(smallXML)); err != nil &&
					!errors.Is(err, store.ErrExists) {
					t.Errorf("dup load %s: %v", id, err)
					return
				}
			}
		}()

		// Reader: full streams (evict-while-streaming lands here) and
		// paged evals, interleaved.
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			const iters = 30
			for i := 0; i < iters; i++ {
				if i%2 == 0 {
					var buf bytes.Buffer
					if pre := svc.Stream(&buf, Request{Doc: id, Query: query}, 4); pre != nil {
						if !cleanErr(pre) {
							t.Errorf("%s: dirty stream preflight: %+v", id, pre)
						}
						continue
					}
					nodes, err := parseStreamNodes(&buf)
					if err != nil {
						t.Errorf("%s: %v", id, err)
						continue
					}
					if !matchesSomeLoad(nodes) {
						t.Errorf("%s: torn stream: %d nodes match no single load", id, len(nodes))
					}
					continue
				}
				var nodes []tree.NodeID
				cursor := ""
				for {
					resp := svc.Eval(Request{Doc: id, Query: query, Limit: 5, Cursor: cursor})
					if resp.Err != "" {
						if !cleanErr(&resp) {
							t.Errorf("%s: dirty page error: %+v", id, resp)
						}
						nodes = nil
						break
					}
					nodes = append(nodes, resp.Nodes...)
					if resp.Next == "" {
						break
					}
					cursor = resp.Next
				}
				if nodes != nil && !matchesSomeLoad(nodes) {
					t.Errorf("%s: torn/stale pagination: %d nodes match no single load", id, len(nodes))
				}
			}
		}()
	}

	readersWG.Wait()
	close(stop)
	churnWG.Wait()

	// The hammer must have exercised every shard, not just warmed one.
	for i, sh := range svc.Stats().Shards {
		if sh.Queries.Total == 0 {
			t.Errorf("shard %d served no queries during the hammer", i)
		}
	}
}
