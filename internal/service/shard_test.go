package service

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/shard"
)

// idsCoveringAllShards probes synthetic ids until every shard of ss
// owns at least one, returning one id per shard (index-aligned).
func idsCoveringAllShards(t testing.TB, ss *shard.Store) []string {
	t.Helper()
	ids := make([]string, ss.NumShards())
	found := 0
	for i := 0; found < len(ids); i++ {
		if i > 100_000 {
			t.Fatal("could not cover every shard with synthetic ids")
		}
		id := fmt.Sprintf("doc-%d", i)
		if s := ss.ShardFor(id); ids[s] == "" {
			ids[s] = id
			found++
		}
	}
	return ids
}

// TestShardedServiceServesAllShards loads one document per shard of an
// 8-shard service and checks queries, eviction and reload behave
// identically on every partition.
func TestShardedServiceServesAllShards(t *testing.T) {
	ss := shard.NewStore(8)
	svc := New(ss, Options{})
	ids := idsCoveringAllShards(t, ss)
	for i, id := range ids {
		xml := fmt.Sprintf("<r><a><b>s%d</b></a><a><b/></a></r>", i)
		if _, err := svc.Store().LoadXML(id, []byte(xml)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		resp := svc.Eval(Request{Doc: id, Query: "//a/b"})
		if resp.Err != "" || resp.Count != 2 {
			t.Fatalf("%s: count=%d err=%q", id, resp.Count, resp.Err)
		}
	}
	st := svc.Stats()
	if len(st.Shards) != 8 {
		t.Fatalf("stats shards = %d, want 8", len(st.Shards))
	}
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Errorf("shard %d reports index %d", i, sh.Shard)
		}
		if sh.Documents != 1 || sh.Engines != 1 {
			t.Errorf("shard %d: docs=%d engines=%d, want 1/1", i, sh.Documents, sh.Engines)
		}
		if sh.DocBytes <= 0 || sh.ResidentBytes < sh.DocBytes {
			t.Errorf("shard %d: doc_bytes=%d resident=%d", i, sh.DocBytes, sh.ResidentBytes)
		}
		if sh.Queries.Total != 1 {
			t.Errorf("shard %d served %d queries, want 1", i, sh.Queries.Total)
		}
		if sh.LockAcquires == 0 {
			t.Errorf("shard %d recorded no lock acquisitions", i)
		}
	}
	if st.Queries.Total != 8 {
		t.Errorf("aggregate total = %d, want 8", st.Queries.Total)
	}
	if len(st.Documents) != 8 {
		t.Errorf("aggregate documents = %d, want 8", len(st.Documents))
	}

	// Evicting a document touches only its own shard's cache and count.
	if !svc.EvictDoc(ids[3]) {
		t.Fatal("evict failed")
	}
	st = svc.Stats()
	if st.Shards[3].Documents != 0 {
		t.Error("evicted shard still reports a document")
	}
	for i, sh := range st.Shards {
		if i != 3 && sh.Documents != 1 {
			t.Errorf("shard %d lost a document to shard 3's eviction", i)
		}
	}
}

// TestCursorPinnedToShard: a continuation token names the partition
// that issued it. A token presented for a document the router now
// places elsewhere (the resharding case) must answer 410-stale, never a
// page from the wrong partition.
func TestCursorPinnedToShard(t *testing.T) {
	ss := shard.NewStore(4)
	svc := New(ss, Options{})
	if _, err := svc.Store().GenerateXMark("xm", 0.002, 1); err != nil {
		t.Fatal(err)
	}
	first := svc.Eval(Request{Doc: "xm", Query: "//keyword", Limit: 3})
	if first.Err != "" || first.Next == "" {
		t.Fatalf("first page: err=%q next=%q", first.Err, first.Next)
	}
	home := ss.ShardFor("xm")

	// The genuine token resumes.
	resumed := svc.Eval(Request{Doc: "xm", Query: "//keyword", Limit: 3, Cursor: first.Next})
	if resumed.Err != "" || len(resumed.Nodes) == 0 {
		t.Fatalf("genuine resume: %+v", resumed)
	}

	// Re-mint the same token under a different shard index — what a
	// pre-reshard daemon would have handed out — and present it.
	cshard, cdoc, cgen, clast, err := decodeCursor(first.Next)
	if err != nil {
		t.Fatal(err)
	}
	if cshard != home {
		t.Fatalf("token pins shard %d, router owns %d", cshard, home)
	}
	forged := encodeCursor((home+1)%4, cdoc, cgen, clast)
	resp := svc.Eval(Request{Doc: "xm", Query: "//keyword", Limit: 3, Cursor: forged})
	if !resp.staleCursor {
		t.Fatalf("relocated cursor must be stale (410), got %+v", resp)
	}
	if !strings.Contains(resp.Err, "relocated") {
		t.Errorf("relocated cursor error should say so: %q", resp.Err)
	}
	if len(resp.Nodes) != 0 {
		t.Error("stale cursor must not deliver nodes")
	}

	// A v1-era (or otherwise malformed) token is a 400-class error, not
	// a crash and not a page.
	bad := svc.Eval(Request{Doc: "xm", Query: "//keyword", Cursor: "bm90LWEtY3Vyc29y"})
	if bad.Err == "" || bad.staleCursor {
		t.Errorf("malformed cursor: %+v", bad)
	}
}

// TestPerShardCacheIsolation: compiled automata live on the owning
// shard's LRU; hits on one shard do not touch another's counters, and
// the aggregate view sums them.
func TestPerShardCacheIsolation(t *testing.T) {
	ss := shard.NewStore(4)
	svc := New(ss, Options{})
	ids := idsCoveringAllShards(t, ss)
	for _, id := range ids {
		if _, err := svc.Store().LoadXML(id, []byte("<r><a><b/></a></r>")); err != nil {
			t.Fatal(err)
		}
	}
	// Query shard 0's doc five times: one compile, four hits — all on
	// shard 0's cache.
	for i := 0; i < 5; i++ {
		if resp := svc.Eval(Request{Doc: ids[0], Query: "//a/b", Strategy: "optimized"}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}
	st := svc.Stats()
	if hits := st.Shards[0].Cache.Hits; hits != 4 {
		t.Errorf("shard 0 cache hits = %d, want 4", hits)
	}
	for i := 1; i < 4; i++ {
		if c := st.Shards[i].Cache; c.Hits != 0 || c.Misses != 0 || c.Size != 0 {
			t.Errorf("shard %d cache touched by shard 0's queries: %+v", i, c)
		}
	}
	if st.Cache.Hits != 4 || st.Cache.Size != 1 {
		t.Errorf("aggregate cache hits=%d size=%d, want 4/1", st.Cache.Hits, st.Cache.Size)
	}
	if st.CacheHitRate <= 0 {
		t.Error("aggregate hit rate must be > 0")
	}
}

// TestGlobalCacheByteBudget: with CacheBytesTotal set, the summed
// resident bytes across all shard LRUs stay at or under the budget
// (modulo one oversize entry admitted alone), and /stats surfaces the
// budget.
func TestGlobalCacheByteBudget(t *testing.T) {
	const budget = 8 * 1024
	ss := shard.NewStore(4)
	svc := New(ss, Options{CacheBytesTotal: budget})
	ids := idsCoveringAllShards(t, ss)
	for _, id := range ids {
		if _, err := svc.Store().GenerateXMark(id, 0.001, 3); err != nil {
			t.Fatal(err)
		}
	}
	// Compile a spread of distinct automata on every shard.
	for i := 0; i < 40; i++ {
		for _, id := range ids {
			// Distinct label names yield distinct compiled automata to
			// fill the caches with; matching nothing is fine.
			q := fmt.Sprintf("//n%d//keyword", i)
			if resp := svc.Eval(Request{Doc: id, Query: q, Strategy: "optimized"}); resp.Err != "" {
				t.Fatalf("%s %s: %s", id, q, resp.Err)
			}
		}
	}
	st := svc.Stats()
	if st.CacheBudget == nil {
		t.Fatal("stats must surface the configured budget")
	}
	if st.CacheBudget.MaxBytes != budget {
		t.Errorf("budget max = %d, want %d", st.CacheBudget.MaxBytes, budget)
	}
	if st.CacheBudget.UsedBytes != st.Cache.SizeBytes {
		t.Errorf("budget used=%d but shard LRUs sum to %d", st.CacheBudget.UsedBytes, st.Cache.SizeBytes)
	}
	if st.Cache.SizeBytes > budget {
		t.Errorf("resident compiled bytes %d exceed global budget %d", st.Cache.SizeBytes, budget)
	}
	if st.Cache.Evictions == 0 {
		t.Error("expected budget-driven evictions (raise the query count if automata shrank)")
	}
}
