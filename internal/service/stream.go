package service

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/obsv"
	"repro/internal/store"
	"repro/internal/tree"
)

// The streaming result path: instead of one Response holding the whole
// node set, the answer is written as NDJSON — a header line, then
// fixed-size chunk lines, then a trailer — with a flush after every
// line so the first chunk reaches the client while the rest of the
// answer is still being walked. Writes go straight to the connection,
// so a slow reader throttles the producer (backpressure) instead of
// growing a buffer; peak memory is one chunk, not one answer.

// DefaultStreamChunk is the nodes-per-chunk default for streams whose
// creator did not choose a size.
const DefaultStreamChunk = 512

// StreamHeader is the first NDJSON line of a stream.
type StreamHeader struct {
	Doc      string `json:"doc"`
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	// Gen is the MVCC generation the stream reads; pass it back as AsOf
	// to keep reading this exact tree across patches.
	Gen store.Gen `json:"gen,omitempty"`
	// Count is the full answer cardinality (an O(1) metadata read on
	// rope-backed answers).
	Count   int `json:"count"`
	Visited int `json:"visited"`
}

// StreamChunk is one payload line: a bounded batch of answer nodes in
// preorder.
type StreamChunk struct {
	Nodes []tree.NodeID `json:"nodes"`
	Paths []string      `json:"paths,omitempty"`
}

// StreamTrailer is the last NDJSON line. A stream that ends without a
// trailer was truncated (the connection failed mid-stream); clients
// must treat the trailer, not EOF, as the completion signal. Cursor
// resumes a stream that a Limit cut short. Err is reserved for future
// in-band failures — today evaluation completes before the header is
// written, so nothing can fail in-band.
type StreamTrailer struct {
	Done      bool   `json:"done"`
	Chunks    int    `json:"chunks"`
	Nodes     int    `json:"nodes"`
	Cursor    string `json:"cursor,omitempty"`
	ElapsedUS int64  `json:"elapsed_us"`
	Err       string `json:"error,omitempty"`
	// Explain carries the span-tree profile when the request asked for
	// one; in a stream it rides the trailer (the header is written
	// before the stream phase has happened).
	Explain *obsv.Profile `json:"explain,omitempty"`
}

// Stream evaluates req and writes the answer to w as NDJSON
// (header, chunks of chunkSize nodes, trailer), flushing after every
// line when w implements http.Flusher. Limit and Cursor page exactly
// like Eval. When the request cannot start (bad strategy, unknown
// document, stale cursor, parse error) nothing is written and the
// failed Response is returned for the caller to deliver; once the
// header line is out the return is nil, and a write failure (client
// gone) truncates the stream — the missing trailer is the signal.
func (s *Service) Stream(w io.Writer, req Request, chunkSize int) *Response {
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunk
	}
	st := s.prepare(req)
	if st.cur == nil {
		st.resp.Explain = s.explain(&st, &req, &st.resp)
		s.finish(&st, &req, &st.resp, outcomeOf(&st.resp), "", 0, true)
		return &st.resp
	}
	// Recycle the evaluation context on every exit path, including
	// client-gone truncations and limit-cut pages.
	defer st.cur.Close()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	writeLine := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	spStream := st.tr.Begin(obsv.SpanStream)
	header := StreamHeader{
		Doc:      req.Doc,
		Query:    req.Query,
		Strategy: st.resp.Strategy,
		Gen:      st.resp.Gen,
		Count:    st.resp.Count,
		Visited:  st.resp.Visited,
	}
	if !writeLine(header) {
		// Client gone before the header. The evaluation still ran, so
		// the query counters must see it, and the stream is counted —
		// with its abort cause — but kept out of the latency
		// aggregates, whose means are per-completed-stream.
		st.sh.metrics.record(st.cur.Strategy(), st.timer.elapsedMicros(), st.resp.Visited, st.resp.Count)
		st.sh.metrics.recordStream(abortHeaderWrite, 0, 0, 0, 0, 0)
		s.finish(&st, &req, &st.resp, obsv.OutcomeAborted, "client gone: header write failed", 0, true)
		return nil
	}
	// First byte is measured after the header's encode+write+flush: it
	// is the time until the client actually has data, not until the
	// server was ready to produce it.
	firstByteUS := st.timer.elapsedMicros()

	limit := req.Limit
	if limit <= 0 {
		limit = st.resp.Count
	}
	var (
		buf          = make([]tree.NodeID, chunkSize)
		sent, chunks int
		chunkSumUS   int64
		chunkMaxUS   int64
		last         tree.NodeID
	)
	for sent < limit {
		want := len(buf)
		if rem := limit - sent; rem < want {
			want = rem
		}
		n := st.cur.NextBatch(buf[:want])
		if n == 0 {
			break
		}
		chunk := StreamChunk{Nodes: buf[:n]}
		if req.Paths {
			chunk.Paths = make([]string, n)
			for i, v := range buf[:n] {
				chunk.Paths[i] = st.eng.Doc().Path(v)
			}
		}
		t := startTimer()
		ok := writeLine(chunk)
		us := t.elapsedMicros()
		chunkSumUS += us
		if us > chunkMaxUS {
			chunkMaxUS = us
		}
		if !ok {
			// Client went away mid-stream. The evaluation itself ran to
			// completion, so it counts as a query; then account for the
			// chunks that did go out.
			st.sh.metrics.record(st.cur.Strategy(), st.timer.elapsedMicros(), st.resp.Visited, st.resp.Count)
			st.sh.metrics.recordStream(abortChunkWrite, chunks, sent, firstByteUS, chunkSumUS, chunkMaxUS)
			s.finish(&st, &req, &st.resp, obsv.OutcomeAborted, "client gone: chunk write failed", sent, true)
			return nil
		}
		sent += n
		chunks++
		last = buf[n-1]
	}
	st.tr.End(spStream)
	trailer := StreamTrailer{
		Done:      true,
		Chunks:    chunks,
		Nodes:     sent,
		ElapsedUS: st.timer.elapsedMicros(),
	}
	if _, more := st.cur.Next(); more && sent > 0 {
		trailer.Cursor = encodeCursor(st.sh.index, req.Doc, st.gen, last)
		_ = st.sh.part.Lease(req.Doc, st.gen, time.Now().Add(s.cursorTTL))
	}
	// The incoming token was consumed only if the stream completed:
	// redeem its lease after the successor's is in place. Aborted
	// streams never redeem — the client may retry the same token until
	// its lease expires.
	if st.fromCursor {
		st.sh.part.Redeem(req.Doc, st.gen)
	}
	trailer.Explain = s.explain(&st, &req, &st.resp)
	writeLine(trailer)
	st.sh.metrics.record(st.cur.Strategy(), trailer.ElapsedUS, st.resp.Visited, st.resp.Count)
	st.sh.metrics.recordStream(abortNone, chunks, sent, firstByteUS, chunkSumUS, chunkMaxUS)
	st.resp.ElapsedUS = trailer.ElapsedUS
	s.finish(&st, &req, &st.resp, obsv.OutcomeOK, "", sent, true)
	return nil
}
