package service

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/shard"
)

// The stream-vs-materialize benchmark: one XMark document whose
// /site//* answer exceeds 100k nodes, delivered (a) the classic way —
// Eval materializes the node slice and the whole Response is JSON
// encoded in one piece — and (b) over the streaming path — the rope is
// walked cursor-wise into fixed NDJSON chunks. The two numbers that
// matter: allocated bytes per answer (the streaming path must be far
// below: no 100k-element slice, no multi-MB JSON blob) and first-byte
// latency (streaming emits its header+first chunk before the answer is
// fully encoded; materializing cannot say anything before the end).

const (
	benchStreamScale = 0.1
	benchStreamQuery = "/site//*"
)

func benchService(tb testing.TB) *Service {
	tb.Helper()
	svc := New(shard.NewStore(1), Options{})
	if _, err := svc.Store().GenerateXMark("xm", benchStreamScale, 1); err != nil {
		tb.Fatal(err)
	}
	// Warm the compiled-automaton cache; the benchmark measures result
	// delivery, not compilation.
	if resp := svc.Eval(Request{Doc: "xm", Query: benchStreamQuery, Limit: 1}); resp.Err != "" {
		tb.Fatal(resp.Err)
	}
	return svc
}

// firstByteWriter discards output but records when the first byte and
// every subsequent write happen.
type firstByteWriter struct {
	start     time.Time
	firstByte time.Duration
	n         int64
}

func (w *firstByteWriter) Write(p []byte) (int, error) {
	if w.firstByte == 0 && len(p) > 0 {
		w.firstByte = time.Since(w.start)
	}
	w.n += int64(len(p))
	return len(p), nil
}

func BenchmarkStreamVsMaterialize(b *testing.B) {
	svc := benchService(b)
	req := Request{Doc: "xm", Query: benchStreamQuery}

	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		var firstByteNS int64
		for i := 0; i < b.N; i++ {
			w := &firstByteWriter{start: time.Now()}
			resp := svc.Eval(req)
			if resp.Err != "" {
				b.Fatal(resp.Err)
			}
			if err := json.NewEncoder(w).Encode(resp); err != nil {
				b.Fatal(err)
			}
			firstByteNS += int64(w.firstByte)
		}
		b.ReportMetric(float64(firstByteNS)/float64(b.N), "first-byte-ns/op")
	})

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		var firstByteNS int64
		for i := 0; i < b.N; i++ {
			w := &firstByteWriter{start: time.Now()}
			if pre := svc.Stream(w, req, DefaultStreamChunk); pre != nil {
				b.Fatal(pre.Err)
			}
			firstByteNS += int64(w.firstByte)
		}
		b.ReportMetric(float64(firstByteNS)/float64(b.N), "first-byte-ns/op")
	})

	// With per-node label paths the delivery layer dominates the
	// allocation picture: the materializing path builds one
	// 100k-string slice, the stream holds one chunk's worth.
	reqPaths := Request{Doc: "xm", Query: benchStreamQuery, Paths: true}
	b.Run("materialize-paths", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := &firstByteWriter{start: time.Now()}
			resp := svc.Eval(reqPaths)
			if resp.Err != "" {
				b.Fatal(resp.Err)
			}
			if err := json.NewEncoder(w).Encode(resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream-paths", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := &firstByteWriter{start: time.Now()}
			if pre := svc.Stream(w, reqPaths, DefaultStreamChunk); pre != nil {
				b.Fatal(pre.Err)
			}
		}
	})
}

// BenchmarkCursorPaging measures one limit/cursor page against the
// materializing full answer: the bounded-memory unit of the paged API.
func BenchmarkCursorPaging(b *testing.B) {
	svc := benchService(b)
	b.Run("page-1k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp := svc.Eval(Request{Doc: "xm", Query: benchStreamQuery, Limit: 1000})
			if resp.Err != "" || resp.Next == "" {
				b.Fatalf("err=%q next=%q", resp.Err, resp.Next)
			}
		}
	})
}

// benchJSON is one trajectory point of the BENCH_*.json series.
type benchJSON struct {
	Benchmark string  `json:"benchmark"`
	Variant   string  `json:"variant"`
	Query     string  `json:"query"`
	Scale     float64 `json:"scale"`
	AnswerN   int     `json:"answer_nodes"`
	NsPerOp   int64   `json:"ns_per_op"`
	BytesOp   int64   `json:"alloc_bytes_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	FirstByte float64 `json:"first_byte_ns_per_op,omitempty"`
	GoVersion string  `json:"go_version"`
}

// TestEmitBenchJSON runs the stream-vs-materialize comparison via
// testing.Benchmark and writes the results as JSON, starting the
// BENCH_*.json trajectory. Skipped unless BENCH_JSON names the output
// file:
//
//	BENCH_JSON=BENCH_stream.json go test -run TestEmitBenchJSON ./internal/service
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<file> to emit the benchmark trajectory point")
	}
	svc := benchService(t)
	req := Request{Doc: "xm", Query: benchStreamQuery}
	count := svc.Eval(Request{Doc: "xm", Query: benchStreamQuery, Limit: 1}).Count

	variants := []struct {
		name string
		run  func(w io.Writer) error
	}{
		{"materialize", func(w io.Writer) error {
			resp := svc.Eval(req)
			return json.NewEncoder(w).Encode(resp)
		}},
		{"stream", func(w io.Writer) error {
			pre := svc.Stream(w, req, DefaultStreamChunk)
			if pre != nil {
				t.Fatal(pre.Err)
			}
			return nil
		}},
	}
	var out []benchJSON
	for _, v := range variants {
		v := v
		var firstByteNS int64
		var ops int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			firstByteNS, ops = 0, b.N
			for i := 0; i < b.N; i++ {
				w := &firstByteWriter{start: time.Now()}
				if err := v.run(w); err != nil {
					b.Fatal(err)
				}
				firstByteNS += int64(w.firstByte)
			}
		})
		out = append(out, benchJSON{
			Benchmark: "BenchmarkStreamVsMaterialize",
			Variant:   v.name,
			Query:     benchStreamQuery,
			Scale:     benchStreamScale,
			AnswerN:   count,
			NsPerOp:   r.NsPerOp(),
			BytesOp:   r.AllocedBytesPerOp(),
			AllocsOp:  r.AllocsPerOp(),
			FirstByte: float64(firstByteNS) / float64(ops),
			GoVersion: runtime.Version(),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
