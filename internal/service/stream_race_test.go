package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/tree"
)

// TestStreamEvictReloadRace is the streaming hammer: readers stream and
// page one document while a churn goroutine evicts and reloads it with
// different contents under the same id. Every observation must be one
// of exactly two things — a clean error (document missing, or a stale
// cursor refused by the generation check) or a complete answer equal to
// one single load's ground truth. A torn page (nodes from two loads
// mixed) or a stale page (resume serving the old tree after reload)
// fails the test. Run under -race (CI does) this also proves the
// streaming path data-race-free.
func TestStreamEvictReloadRace(t *testing.T) {
	const query = "//keyword"
	seeds := []int64{1, 2, 3}

	// Ground truth per seed, computed on isolated stores.
	exp := make(map[string][]tree.NodeID)
	for _, seed := range seeds {
		ref := New(shard.NewStore(1), Options{Workers: 1})
		if _, err := ref.Store().GenerateXMark("hot", 0.002, seed); err != nil {
			t.Fatal(err)
		}
		resp := ref.Eval(Request{Doc: "hot", Query: query})
		if resp.Err != "" || len(resp.Nodes) < 10 {
			t.Fatalf("seed %d ground truth: count=%d err=%q", seed, len(resp.Nodes), resp.Err)
		}
		exp[key(resp.Nodes)] = resp.Nodes
	}

	matchesSomeSeed := func(nodes []tree.NodeID) bool {
		_, ok := exp[key(nodes)]
		return ok
	}
	cleanErr := func(resp *Response) bool {
		return resp.notFound || resp.staleCursor ||
			strings.Contains(resp.Err, "no such document")
	}

	svc := New(shard.NewStore(1), Options{CacheSize: 16})
	if _, err := svc.Store().GenerateXMark("hot", 0.002, seeds[0]); err != nil {
		t.Fatal(err)
	}

	var readersWG, churnWG sync.WaitGroup
	stop := make(chan struct{})

	// Churn: evict + reload with a rotating seed.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			svc.EvictDoc("hot")
			if _, err := svc.Store().GenerateXMark("hot", 0.002, seeds[i%len(seeds)]); err != nil {
				t.Errorf("churn reload: %v", err)
				return
			}
		}
	}()

	const readers = 6
	const iters = 60
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			for i := 0; i < iters; i++ {
				if i%2 == 0 {
					// Full stream into a buffer; preflight failures
					// must be clean, successes must match one seed.
					var buf bytes.Buffer
					if pre := svc.Stream(&buf, Request{Doc: "hot", Query: query}, 8); pre != nil {
						if !cleanErr(pre) {
							t.Errorf("reader %d: dirty stream preflight: %+v", r, pre)
						}
						continue
					}
					nodes, err := parseStreamNodes(&buf)
					if err != nil {
						t.Errorf("reader %d: %v", r, err)
						continue
					}
					if !matchesSomeSeed(nodes) {
						t.Errorf("reader %d: torn stream: %d nodes match no single load", r, len(nodes))
					}
					continue
				}
				// Paged reads: every completed pagination must match one
				// seed; interrupted ones must end in a clean error.
				var nodes []tree.NodeID
				cursor := ""
				for {
					resp := svc.Eval(Request{Doc: "hot", Query: query, Limit: 5, Cursor: cursor})
					if resp.Err != "" {
						if !cleanErr(&resp) {
							t.Errorf("reader %d: dirty page error: %+v", r, resp)
						}
						nodes = nil
						break
					}
					nodes = append(nodes, resp.Nodes...)
					if resp.Next == "" {
						break
					}
					cursor = resp.Next
				}
				if nodes != nil && !matchesSomeSeed(nodes) {
					t.Errorf("reader %d: torn/stale pagination: %d nodes match no single load", r, len(nodes))
				}
			}
		}(r)
	}

	readersWG.Wait()
	close(stop)
	churnWG.Wait()
}

// key canonicalizes a node list for set comparison.
func key(nodes []tree.NodeID) string {
	var sb strings.Builder
	for _, v := range nodes {
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}

// parseStreamNodes concatenates the node chunks of a buffered NDJSON
// stream, failing on malformed lines or a trailer error.
func parseStreamNodes(buf *bytes.Buffer) ([]tree.NodeID, error) {
	sc := bufio.NewScanner(buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var nodes []tree.NodeID
	line := 0
	sawTrailer := false
	for sc.Scan() {
		raw := sc.Bytes()
		if line == 0 {
			var h StreamHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("stream header: %v", err)
			}
			line++
			continue
		}
		if bytes.Contains(raw, []byte(`"done"`)) {
			var tr StreamTrailer
			if err := json.Unmarshal(raw, &tr); err != nil {
				return nil, fmt.Errorf("stream trailer: %v", err)
			}
			if tr.Err != "" {
				return nil, fmt.Errorf("stream trailer error: %s", tr.Err)
			}
			sawTrailer = true
			line++
			continue
		}
		var c StreamChunk
		if err := json.Unmarshal(raw, &c); err != nil {
			return nil, fmt.Errorf("stream chunk: %v", err)
		}
		nodes = append(nodes, c.Nodes...)
		line++
	}
	if !sawTrailer {
		return nil, fmt.Errorf("stream ended without trailer")
	}
	return nodes, sc.Err()
}
