package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/shard"
	"repro/internal/tree"
)

// streamLines POSTs req to /query/stream and returns the parsed NDJSON
// lines: header, chunks, trailer.
func streamLines(t *testing.T, url string, req Request) (StreamHeader, []StreamChunk, StreamTrailer) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		header  StreamHeader
		chunks  []StreamChunk
		trailer StreamTrailer
		line    int
	)
	for sc.Scan() {
		raw := sc.Bytes()
		switch {
		case line == 0:
			if err := json.Unmarshal(raw, &header); err != nil {
				t.Fatalf("header line: %v", err)
			}
		case bytes.Contains(raw, []byte(`"done"`)):
			if err := json.Unmarshal(raw, &trailer); err != nil {
				t.Fatalf("trailer line: %v", err)
			}
		default:
			var c StreamChunk
			if err := json.Unmarshal(raw, &c); err != nil {
				t.Fatalf("chunk line %d: %v", line, err)
			}
			chunks = append(chunks, c)
		}
		line++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return header, chunks, trailer
}

// TestStreamEndToEnd loads an XMark document and checks that
// /query/stream delivers the exact one-shot answer as bounded NDJSON
// chunks with a well-formed header and trailer.
func TestStreamEndToEnd(t *testing.T) {
	svc := New(shard.NewStore(1), Options{})
	if _, err := svc.Store().GenerateXMark("xm", 0.004, 5); err != nil {
		t.Fatal(err)
	}
	srv := newTestHTTP(t, svc, HandlerOptions{StreamChunk: 16})

	// Strategy forced: the point is chunked delivery parity with the
	// one-shot path; adaptive Auto would probe a different engine on
	// the second evaluation and fail the header strategy comparison.
	const query = "//listitem//keyword"
	one := svc.Eval(Request{Doc: "xm", Query: query, Strategy: "optimized"})
	if one.Err != "" {
		t.Fatal(one.Err)
	}
	if one.Count < 32 {
		t.Fatalf("answer too small (%d) to exercise chunking", one.Count)
	}

	header, chunks, trailer := streamLines(t, srv, Request{Doc: "xm", Query: query, Strategy: "optimized"})
	if header.Count != one.Count || header.Strategy != one.Strategy {
		t.Fatalf("header %+v vs one-shot count=%d strategy=%s", header, one.Count, one.Strategy)
	}
	var got []tree.NodeID
	for i, c := range chunks {
		if len(c.Nodes) == 0 || len(c.Nodes) > 16 {
			t.Fatalf("chunk %d has %d nodes, want 1..16", i, len(c.Nodes))
		}
		got = append(got, c.Nodes...)
	}
	if len(chunks) < 2 {
		t.Fatalf("answer of %d nodes produced %d chunks; chunking is not happening", one.Count, len(chunks))
	}
	if len(got) != len(one.Nodes) {
		t.Fatalf("streamed %d nodes, one-shot %d", len(got), len(one.Nodes))
	}
	for i := range got {
		if got[i] != one.Nodes[i] {
			t.Fatalf("node %d: streamed %d, one-shot %d", i, got[i], one.Nodes[i])
		}
	}
	if !trailer.Done || trailer.Nodes != one.Count || trailer.Chunks != len(chunks) || trailer.Cursor != "" {
		t.Fatalf("trailer %+v, want done with %d nodes in %d chunks and no cursor", trailer, one.Count, len(chunks))
	}

	stats := svc.Stats()
	if stats.Queries.Streaming.Streams == 0 || stats.Queries.Streaming.Chunks == 0 {
		t.Fatalf("streaming metrics not recorded: %+v", stats.Queries.Streaming)
	}
	// Compiled automata implement Sizer, so the shared LRU must report
	// a real byte weight.
	if stats.Cache.SizeBytes <= 0 {
		t.Fatalf("cache SizeBytes = %d, want > 0 (automata are Sizers)", stats.Cache.SizeBytes)
	}
}

// TestStreamLimitAndResume checks that a Limit-cut stream hands out a
// trailer cursor and that resuming from it streams exactly the
// remainder.
func TestStreamLimitAndResume(t *testing.T) {
	svc := New(shard.NewStore(1), Options{})
	if _, err := svc.Store().GenerateXMark("xm", 0.004, 5); err != nil {
		t.Fatal(err)
	}
	srv := newTestHTTP(t, svc, HandlerOptions{StreamChunk: 8})

	const query = "//keyword"
	one := svc.Eval(Request{Doc: "xm", Query: query})
	if one.Err != "" || one.Count < 30 {
		t.Fatalf("want a ≥30-node answer, got count=%d err=%q", one.Count, one.Err)
	}
	limit := one.Count / 2
	_, chunks, trailer := streamLines(t, srv, Request{Doc: "xm", Query: query, Limit: limit})
	if trailer.Nodes != limit || trailer.Cursor == "" {
		t.Fatalf("trailer %+v, want %d nodes and a resume cursor", trailer, limit)
	}
	var got []tree.NodeID
	for _, c := range chunks {
		got = append(got, c.Nodes...)
	}
	_, chunks2, trailer2 := streamLines(t, srv, Request{Doc: "xm", Query: query, Cursor: trailer.Cursor})
	for _, c := range chunks2 {
		got = append(got, c.Nodes...)
	}
	if trailer2.Cursor != "" {
		t.Fatalf("second stream not exhausted: %+v", trailer2)
	}
	if len(got) != len(one.Nodes) {
		t.Fatalf("resumed stream total %d nodes, one-shot %d", len(got), len(one.Nodes))
	}
	for i := range got {
		if got[i] != one.Nodes[i] {
			t.Fatalf("node %d: resumed %d, one-shot %d", i, got[i], one.Nodes[i])
		}
	}
}

// TestStreamPreflightErrors: failures before the first byte must come
// back as plain JSON errors with the right status, not broken NDJSON.
func TestStreamPreflightErrors(t *testing.T) {
	svc := New(shard.NewStore(1), Options{})
	if _, err := svc.Store().GenerateXMark("xm", 0.002, 5); err != nil {
		t.Fatal(err)
	}
	srv := newTestHTTP(t, svc, HandlerOptions{})

	post := func(req Request) (int, Response) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv+"/query/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	if code, out := post(Request{Doc: "nope", Query: "//a"}); code != http.StatusNotFound || out.Err == "" {
		t.Fatalf("unknown doc: status %d, err %q", code, out.Err)
	}
	if code, out := post(Request{Doc: "xm", Query: "//a["}); code != http.StatusBadRequest || out.Err == "" {
		t.Fatalf("parse error: status %d, err %q", code, out.Err)
	}
	if code, out := post(Request{Doc: "xm", Query: "//a", Cursor: "!!!"}); code != http.StatusBadRequest || out.Err == "" {
		t.Fatalf("bad cursor: status %d, err %q", code, out.Err)
	}
}

// TestCursorStaleAfterReload: a cursor issued against one load of a
// document must be refused (410) once the document is evicted and
// reloaded, even under the same id.
func TestCursorStaleAfterReload(t *testing.T) {
	svc := New(shard.NewStore(1), Options{})
	if _, err := svc.Store().GenerateXMark("xm", 0.002, 5); err != nil {
		t.Fatal(err)
	}
	first := svc.Eval(Request{Doc: "xm", Query: "//keyword", Limit: 3})
	if first.Err != "" || first.Next == "" {
		t.Fatalf("want a first page with a cursor, got err=%q next=%q", first.Err, first.Next)
	}

	svc.EvictDoc("xm")
	if _, err := svc.Store().GenerateXMark("xm", 0.002, 6); err != nil {
		t.Fatal(err)
	}
	resp := svc.Eval(Request{Doc: "xm", Query: "//keyword", Limit: 3, Cursor: first.Next})
	if resp.Err == "" || !resp.staleCursor {
		t.Fatalf("stale cursor accepted: %+v", resp)
	}
	if got := statusFor(resp); got != http.StatusGone {
		t.Fatalf("stale cursor status %d, want 410", got)
	}

	// A cursor for one document must not open another.
	other := svc.Eval(Request{Doc: "xm", Query: "//keyword", Limit: 3})
	if other.Err != "" || other.Next == "" {
		t.Fatalf("fresh page: %+v", other)
	}
	cross := svc.Eval(Request{Doc: "ym", Query: "//keyword", Cursor: other.Next})
	if cross.Err == "" {
		t.Fatal("cross-document cursor accepted")
	}
}

// newTestHTTP mounts the handler for an existing service and returns
// the base URL.
func newTestHTTP(t *testing.T, svc *Service, opts HandlerOptions) string {
	t.Helper()
	srv := httptest.NewServer(NewHandler(svc, opts))
	t.Cleanup(srv.Close)
	return srv.URL
}
