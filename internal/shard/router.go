// Package shard partitions the multi-document serving layer: a
// consistent-hash Router assigns every document id to one of N
// partitions, and Store fans the single-registry store API out over N
// goroutine-affine partitions so huge corpora stop contending on one
// registry lock. Consistent hashing (a ring of virtual nodes per
// shard, hashed with FNV-1a) keeps the assignment deterministic across
// process restarts, and makes growing N -> N+1 shards relocate only
// ~1/(N+1) of the ids — every relocated id lands on the new shard —
// instead of reshuffling the whole corpus the way `hash(id) % N` would.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerShard is the number of ring points per shard. 256 keeps each
// shard's share of the key space within a few percent of uniform (the
// relative deviation of consistent hashing shrinks like 1/sqrt(vnodes))
// while the ring stays small enough to rebuild in microseconds.
const vnodesPerShard = 256

type ringPoint struct {
	hash  uint64
	shard int
}

// Router maps document ids onto shard indexes with consistent hashing.
// It is immutable after construction and safe for concurrent use.
type Router struct {
	n    int
	ring []ringPoint
}

// NewRouter builds a router over n shards; n < 1 is clamped to 1.
func NewRouter(n int) *Router {
	if n < 1 {
		n = 1
	}
	r := &Router{n: n, ring: make([]ringPoint, 0, n*vnodesPerShard)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.ring = append(r.ring, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
	return r
}

// NumShards reports the shard count.
func (r *Router) NumShards() int { return r.n }

// Shard returns the shard index owning id: the shard of the first ring
// point at or after hash(id), wrapping past the highest point.
func (r *Router) Shard(id string) int {
	if r.n == 1 {
		return 0
	}
	h := hash64(id)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// hash64 is FNV-1a over the id bytes followed by a murmur3-style
// 64-bit finalizer. FNV alone leaves similar ids (sequential "doc-N",
// the ring's own "shard-i-vnode-j" labels) correlated in the high bits
// the ring is ordered by, which skews shard shares far past the
// 1/sqrt(vnodes) ideal; the finalizer's avalanche restores uniformity.
// Everything here is stable across processes, platforms, and Go
// releases (unlike hash/maphash), which is what lets a routing decision
// survive a daemon restart and keeps shard-qualified cursor tokens
// resolvable.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
