package shard

import (
	"fmt"
	"testing"
)

// syntheticIDs are the 10k doc ids the distribution properties are
// checked over: a mix of sequential, hierarchical and hash-unfriendly
// shapes, the way real corpora name documents.
func syntheticIDs() []string {
	ids := make([]string, 0, 10_000)
	for i := 0; i < 4000; i++ {
		ids = append(ids, fmt.Sprintf("doc-%d", i))
	}
	for i := 0; i < 3000; i++ {
		ids = append(ids, fmt.Sprintf("tenant-%d/corpus/xmark-%d.xml", i%97, i))
	}
	for i := 0; i < 3000; i++ {
		ids = append(ids, fmt.Sprintf("%08x", i*2654435761))
	}
	return ids
}

// TestRouterDeterministicAcrossRestarts pins routing to fixed golden
// assignments: the router must give the same answer in every process,
// on every platform, forever — shard-qualified cursor tokens and warm
// replicas depend on it. If this test ever fails, the hash or ring
// construction changed and every persisted routing decision is invalid.
func TestRouterDeterministicAcrossRestarts(t *testing.T) {
	// Two independently constructed routers agree on everything (no
	// map-iteration or seed dependence)...
	a, b := NewRouter(4), NewRouter(4)
	for _, id := range syntheticIDs() {
		if a.Shard(id) != b.Shard(id) {
			t.Fatalf("routers disagree on %q: %d vs %d", id, a.Shard(id), b.Shard(id))
		}
	}
	// ...and match the assignments recorded when the ring was designed
	// (a simulated process restart).
	golden := map[string]int{
		"doc-0":    2,
		"doc-1":    2,
		"doc-2":    2,
		"xm":       0,
		"hot":      3,
		"tenant-7": 2,
	}
	for id, want := range golden {
		if got := a.Shard(id); got != want {
			t.Errorf("Shard(%q) = %d, want pinned %d (routing is no longer restart-stable)", id, got, want)
		}
	}
}

// TestRouterUniformity checks the consistent-hash ring spreads 10k
// synthetic ids within ±20% of the uniform share at every shard count
// the daemon is likely to run.
func TestRouterUniformity(t *testing.T) {
	ids := syntheticIDs()
	for _, n := range []int{2, 3, 4, 8, 16} {
		r := NewRouter(n)
		counts := make([]int, n)
		for _, id := range ids {
			counts[r.Shard(id)]++
		}
		mean := float64(len(ids)) / float64(n)
		for s, c := range counts {
			if dev := float64(c)/mean - 1; dev < -0.20 || dev > 0.20 {
				t.Errorf("n=%d shard %d holds %d ids (%.1f%% of uniform share %0.f)",
					n, s, c, 100*float64(c)/mean, mean)
			}
		}
	}
}

// TestRouterReshardingRelocation checks the defining consistent-hashing
// property: growing N -> N+1 shards relocates at most 1.5x the ideal
// 1/(N+1) fraction of ids, and every relocated id lands on the new
// shard (ids never shuffle between surviving shards).
func TestRouterReshardingRelocation(t *testing.T) {
	ids := syntheticIDs()
	for n := 1; n <= 8; n++ {
		old, grown := NewRouter(n), NewRouter(n+1)
		moved := 0
		for _, id := range ids {
			was, is := old.Shard(id), grown.Shard(id)
			if was == is {
				continue
			}
			moved++
			if is != n {
				t.Errorf("n=%d->%d: %q moved shard %d -> %d, not to the new shard %d",
					n, n+1, id, was, is, n)
			}
		}
		limit := int(1.5 * float64(len(ids)) / float64(n+1))
		if moved > limit {
			t.Errorf("n=%d->%d relocated %d of %d ids, want <= %d (1.5x ideal %d)",
				n, n+1, moved, len(ids), limit, len(ids)/(n+1))
		}
		if moved == 0 && n >= 1 {
			t.Errorf("n=%d->%d relocated nothing; the new shard would start empty forever", n, n+1)
		}
	}
}

// TestRouterEdgeCases pins clamping and the single-shard fast path.
func TestRouterEdgeCases(t *testing.T) {
	if got := NewRouter(0).NumShards(); got != 1 {
		t.Errorf("NewRouter(0) shards = %d, want 1", got)
	}
	if got := NewRouter(-3).Shard("anything"); got != 0 {
		t.Errorf("negative shard count must clamp to one shard, got shard %d", got)
	}
	r := NewRouter(8)
	for _, id := range []string{"", "a", "\x00", "doc-0"} {
		if s := r.Shard(id); s < 0 || s >= 8 {
			t.Errorf("Shard(%q) = %d out of range", id, s)
		}
	}
}
