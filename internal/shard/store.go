package shard

import (
	"io"
	"sort"
	"time"

	"repro/internal/store"
	"repro/internal/tree"
)

// Store is the sharded document registry: N independent store.Store
// partitions behind a consistent-hash Router. Every id-addressed call
// touches exactly one partition, so loads, lookups and evictions of
// documents on different shards never contend on a shared lock. The
// method set mirrors store.Store, which lets the serving layer (and
// tests) treat a 1-shard Store as a drop-in single registry.
type Store struct {
	router *Router
	parts  []*store.Store
}

// NewStore builds an n-shard store; n < 1 is clamped to 1.
func NewStore(n int) *Store {
	r := NewRouter(n)
	parts := make([]*store.Store, r.NumShards())
	for i := range parts {
		parts[i] = store.New()
	}
	return &Store{router: r, parts: parts}
}

// Router exposes the routing function (shared with the serving layer so
// cursor tokens and cache placement agree with document placement).
func (s *Store) Router() *Router { return s.router }

// NumShards reports the partition count.
func (s *Store) NumShards() int { return len(s.parts) }

// ShardFor returns the partition index owning id.
func (s *Store) ShardFor(id string) int { return s.router.Shard(id) }

// Part returns partition i directly (per-shard stats, tests).
func (s *Store) Part(i int) *store.Store { return s.parts[i] }

func (s *Store) part(id string) *store.Store { return s.parts[s.router.Shard(id)] }

// Add registers an already-built document on the owning shard.
func (s *Store) Add(id string, d *tree.Document, src store.Source) (*store.Handle, error) {
	return s.part(id).Add(id, d, src)
}

// LoadXML parses XML bytes and registers the document on its shard.
func (s *Store) LoadXML(id string, src []byte) (*store.Handle, error) {
	return s.part(id).LoadXML(id, src)
}

// LoadXMLFile reads and parses an XML file and registers the document.
func (s *Store) LoadXMLFile(id, path string) (*store.Handle, error) {
	return s.part(id).LoadXMLFile(id, path)
}

// LoadBinary reads a document in the tree.WriteTo format and registers it.
func (s *Store) LoadBinary(id string, r io.Reader) (*store.Handle, error) {
	return s.part(id).LoadBinary(id, r)
}

// LoadBinaryFile reads a serialized document file and registers it.
func (s *Store) LoadBinaryFile(id, path string) (*store.Handle, error) {
	return s.part(id).LoadBinaryFile(id, path)
}

// GenerateXMark generates a deterministic XMark document and registers it.
func (s *Store) GenerateXMark(id string, scale float64, seed int64) (*store.Handle, error) {
	return s.part(id).GenerateXMark(id, scale, seed)
}

// LoadMapped opens an XQO2 file zero-copy (mmap) and registers it on the
// owning shard.
func (s *Store) LoadMapped(id, path string) (*store.Handle, error) {
	return s.part(id).LoadMapped(id, path)
}

// SetResidentBudget splits a process-wide mapped-bytes budget evenly
// across shards; 0 or negative means unlimited everywhere. Per-shard
// budgets keep enforcement lock-local, at the cost of a shard not being
// able to borrow headroom from an idle neighbor.
func (s *Store) SetResidentBudget(b int64) {
	per := b
	if b > 0 {
		per = b / int64(len(s.parts))
		if per < 1 {
			per = 1
		}
	}
	for _, p := range s.parts {
		p.SetResidentBudget(per)
	}
}

// SetVerifyResident toggles full structural verification for every
// shard's mapped loads (see store.Store.SetVerifyResident).
func (s *Store) SetVerifyResident(v bool) {
	for _, p := range s.parts {
		p.SetVerifyResident(v)
	}
}

// Mapped aggregates mapped-document accounting across all shards.
func (s *Store) Mapped() store.MappedStats {
	var out store.MappedStats
	for _, p := range s.parts {
		st := p.Mapped()
		out.MappedBytes += st.MappedBytes
		out.ChargedBytes += st.ChargedBytes
		out.MapFaults += st.MapFaults
	}
	return out
}

// Get returns the handle for id from its owning shard.
func (s *Store) Get(id string) (*store.Handle, bool) {
	return s.part(id).Get(id)
}

// Evict removes id from its owning shard, reporting whether it was present.
func (s *Store) Evict(id string) bool {
	return s.part(id).Evict(id)
}

// Patch applies a subtree patch on the owning shard, publishing a new
// generation of id (see store.Store.Patch).
func (s *Store) Patch(id string, base store.Gen, pt tree.Patch) (*store.Handle, error) {
	return s.part(id).Patch(id, base, pt)
}

// GetAsOf returns a specific generation of id from its owning shard.
func (s *Store) GetAsOf(id string, gen store.Gen) (*store.Handle, error) {
	return s.part(id).GetAsOf(id, gen)
}

// Lease keeps (id, gen) readable until the deadline on the owning shard.
func (s *Store) Lease(id string, gen store.Gen, until time.Time) error {
	return s.part(id).Lease(id, gen, until)
}

// Redeem releases one outstanding lease on (id, gen).
func (s *Store) Redeem(id string, gen store.Gen) {
	s.part(id).Redeem(id, gen)
}

// MVCC aggregates generation-chain statistics across all shards.
func (s *Store) MVCC() store.MVCCStats {
	var out store.MVCCStats
	for _, p := range s.parts {
		p.MVCC().AddTo(&out)
	}
	return out
}

// Len reports the number of resident documents across all shards.
func (s *Store) Len() int {
	n := 0
	for _, p := range s.parts {
		n += p.Len()
	}
	return n
}

// List returns a merged snapshot of per-document stats sorted by id —
// the single-registry view, shard placement elided.
func (s *Store) List() []store.Stats {
	out := make([]store.Stats, 0, s.Len())
	for _, p := range s.parts {
		out = append(out, p.List()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DocStats is one resident document plus the shard that owns it.
type DocStats struct {
	store.Stats
	Shard int `json:"shard"`
}

// ListSharded returns the merged per-document stats annotated with each
// document's owning shard, sorted by id.
func (s *Store) ListSharded() []DocStats {
	out := make([]DocStats, 0, s.Len())
	for i, p := range s.parts {
		for _, st := range p.List() {
			out = append(out, DocStats{Stats: st, Shard: i})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
