package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/store"
)

// TestShardedStoreRoutesAndMerges loads documents across a 4-shard
// store and checks placement agrees with the router, the merged views
// see everything, and id-addressed operations resolve regardless of
// which shard owns the id.
func TestShardedStoreRoutesAndMerges(t *testing.T) {
	s := NewStore(4)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	ids := make([]string, 12)
	for i := range ids {
		ids[i] = fmt.Sprintf("doc-%d", i)
		xml := fmt.Sprintf("<r><a>d%d</a></r>", i)
		if _, err := s.LoadXML(ids[i], []byte(xml)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ids))
	}
	for _, id := range ids {
		h, ok := s.Get(id)
		if !ok || h.ID != id {
			t.Fatalf("Get(%q) = %v, %v", id, h, ok)
		}
		// The document lives on exactly the partition the router names.
		want := s.ShardFor(id)
		if _, ok := s.Part(want).Get(id); !ok {
			t.Errorf("%q missing from its routed partition %d", id, want)
		}
		for p := 0; p < s.NumShards(); p++ {
			if p == want {
				continue
			}
			if _, ok := s.Part(p).Get(id); ok {
				t.Errorf("%q resident on partition %d, routed to %d", id, p, want)
			}
		}
	}
	// Placement spans more than one partition for a dozen ids.
	used := map[int]bool{}
	for _, id := range ids {
		used[s.ShardFor(id)] = true
	}
	if len(used) < 2 {
		t.Errorf("12 documents all landed on one shard: %v", used)
	}

	list := s.List()
	if len(list) != len(ids) {
		t.Fatalf("List merged %d docs, want %d", len(list), len(ids))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("List not sorted: %q before %q", list[i-1].ID, list[i].ID)
		}
	}
	sharded := s.ListSharded()
	if len(sharded) != len(ids) {
		t.Fatalf("ListSharded merged %d docs, want %d", len(sharded), len(ids))
	}
	for _, d := range sharded {
		if d.Shard != s.ShardFor(d.ID) {
			t.Errorf("ListSharded reports %q on shard %d, router says %d", d.ID, d.Shard, s.ShardFor(d.ID))
		}
	}

	if !s.Evict(ids[3]) || s.Evict(ids[3]) {
		t.Error("evict must succeed once then report absent")
	}
	if _, ok := s.Get(ids[3]); ok {
		t.Error("evicted doc still resolvable")
	}
	if s.Len() != len(ids)-1 {
		t.Errorf("Len after evict = %d, want %d", s.Len(), len(ids)-1)
	}
}

// TestShardedStoreDuplicateAcrossCalls checks ErrExists surfaces
// through the sharded facade exactly as on a flat store.
func TestShardedStoreDuplicateAcrossCalls(t *testing.T) {
	s := NewStore(8)
	if _, err := s.LoadXML("dup", []byte("<r/>")); err != nil {
		t.Fatal(err)
	}
	_, err := s.GenerateXMark("dup", 0.001, 1)
	if !errors.Is(err, store.ErrExists) {
		t.Fatalf("duplicate id error = %v, want ErrExists", err)
	}
}

// TestOneShardStoreIsFlat pins the drop-in property the service tests
// rely on: a 1-shard store behaves as the single registry.
func TestOneShardStoreIsFlat(t *testing.T) {
	s := NewStore(1)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("d%d", i)
		if _, err := s.LoadXML(id, []byte("<r/>")); err != nil {
			t.Fatal(err)
		}
		if s.ShardFor(id) != 0 {
			t.Fatalf("1-shard store routed %q to shard %d", id, s.ShardFor(id))
		}
	}
	if s.Part(0).Len() != 5 || s.Len() != 5 {
		t.Errorf("partition holds %d docs, store reports %d, want 5/5", s.Part(0).Len(), s.Len())
	}
}
