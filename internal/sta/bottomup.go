package sta

import (
	"repro/internal/index"
	"repro/internal/labels"
	"repro/internal/tree"
)

// EvalBottomUpDet runs a bottom-up deterministic, bottom-up complete STA
// over the full binary tree: the "pure bottom-up" evaluation of §3.2.
// Implemented as a reverse-preorder sweep (binary children have larger
// preorder ranks than their binary parent, so one backward pass is a
// bottom-up evaluation); LeafReduction is the paper's literal
// leaf-sequence algorithm and computes the same run (tested).
func (a *STA) EvalBottomUpDet(d *tree.Document) Result {
	n := d.NumNodes()
	run := make(Run, n)
	res := Result{Run: run, Visited: n}
	if len(a.Bottom) != 1 {
		return Result{Run: run}
	}
	q0 := a.Bottom[0]
	for v := n - 1; v >= 0; v-- {
		node := tree.NodeID(v)
		ql, qr := q0, q0
		if c := d.BinaryLeft(node); c != tree.Nil {
			ql = run[c]
		}
		if c := d.BinaryRight(node); c != tree.Nil {
			qr = run[c]
		}
		q, ok := a.SourceDet(ql, qr, d.Label(node))
		if !ok {
			return Result{Run: make(Run, 0), Visited: n - v}
		}
		run[v] = q
	}
	if !a.inTop[run[0]] {
		return Result{Run: run, Visited: n}
	}
	res.Accepted = true
	for v := tree.NodeID(0); int(v) < n; v++ {
		if a.IsSelecting(run[v], d.Label(v)) {
			res.Selected = append(res.Selected, v)
		}
	}
	return res
}

// leafEntry is one element of the reduction list of Algorithm B.2: a
// completed binary subtree (rooted at a real node, or a # leaf slot)
// together with its state.
type leafEntry struct {
	// parent is the binary parent of the subtree root; side is 1 for a
	// left child, 2 for a right child. The document root has parent Nil.
	parent tree.NodeID
	side   int8
	state  State
}

// LeafReduction is the literal Algorithm B.2: start from the sequence of
// all # leaves of the binary tree in preorder, each in state q0, and
// repeatedly replace two sibling entries by their parent with
// δ(q1, q2, label). It returns the full run and acceptance. It exists to
// validate EvalBottomUpDet against the paper's pseudocode; both compute
// the unique bottom-up run.
func (a *STA) LeafReduction(d *tree.Document) (Run, bool) {
	n := d.NumNodes()
	run := make(Run, n)
	if len(a.Bottom) != 1 {
		return nil, false
	}
	q0 := a.Bottom[0]

	// binParent/binSide for real nodes.
	binParent := make([]tree.NodeID, n)
	binSide := make([]int8, n)
	binParent[0] = tree.Nil
	for v := tree.NodeID(0); int(v) < n; v++ {
		if c := d.BinaryLeft(v); c != tree.Nil {
			binParent[c] = v
			binSide[c] = 1
		}
		if c := d.BinaryRight(v); c != tree.Nil {
			binParent[c] = v
			binSide[c] = 2
		}
	}

	// Shift-reduce over the preorder leaf sequence. A stack entry whose
	// top two elements are the left and right children of the same
	// parent is reduced immediately; this performs exactly the
	// reductions of the recursive formulation (the reduction system is
	// confluent — each parent has a unique pair of children).
	var stack []leafEntry
	reduce := func() bool {
		for len(stack) >= 2 {
			r := stack[len(stack)-1]
			l := stack[len(stack)-2]
			if l.parent != r.parent || l.parent == tree.Nil || l.side != 1 || r.side != 2 {
				return true
			}
			v := l.parent
			q, ok := a.SourceDet(l.state, r.state, d.Label(v))
			if !ok {
				return false
			}
			run[v] = q
			stack = stack[:len(stack)-2]
			stack = append(stack, leafEntry{binParent[v], binSide[v], q})
		}
		return true
	}
	// Emit the # leaves in binary preorder, reducing eagerly after each.
	var walk func(v tree.NodeID) bool
	walk = func(v tree.NodeID) bool {
		if l := d.BinaryLeft(v); l != tree.Nil {
			if !walk(l) {
				return false
			}
		} else {
			stack = append(stack, leafEntry{v, 1, q0})
			if !reduce() {
				return false
			}
		}
		if r := d.BinaryRight(v); r != tree.Nil {
			if !walk(r) {
				return false
			}
		} else {
			stack = append(stack, leafEntry{v, 2, q0})
			if !reduce() {
				return false
			}
		}
		return true
	}
	if !walk(0) {
		return nil, false
	}
	if len(stack) != 1 {
		return nil, false
	}
	return run, a.inTop[stack[0].state]
}

// BottomUpUniversal returns the bottom-up universal state q⊤ (non-changing
// and in T, Definition 2.4) if the automaton has one.
func (a *STA) BottomUpUniversal() (State, bool) {
	for q := State(0); int(q) < a.NumStates; q++ {
		if a.NonChanging(q) && a.inTop[q] && !a.IsMarking(q) {
			return q, true
		}
	}
	return NoState, false
}

// RelevantBottomUp computes the bottom-up relevant nodes of a full run
// per Lemma 3.2. Children at # positions carry q0.
func (a *STA) RelevantBottomUp(d *tree.Document, run Run) []tree.NodeID {
	if len(a.Bottom) != 1 {
		return nil
	}
	q0 := a.Bottom[0]
	qTop, hasTop := a.BottomUpUniversal()
	trivial := func(q State) bool { return q == q0 || (hasTop && q == qTop) }
	var out []tree.NodeID
	for v := tree.NodeID(0); int(v) < d.NumNodes(); v++ {
		q := run[v]
		if a.IsSelecting(q, d.Label(v)) {
			out = append(out, v)
			continue
		}
		if hasTop && q == qTop {
			continue
		}
		ql, qr := q0, q0
		if c := d.BinaryLeft(v); c != tree.Nil {
			ql = run[c]
		}
		if c := d.BinaryRight(v); c != tree.Nil {
			qr = run[c]
		}
		switch {
		case q == ql && q == qr:
		case q == ql && trivial(qr):
		case q == qr && trivial(ql):
		default:
			out = append(out, v)
		}
	}
	return out
}

// bottomUpEssential computes the labels on which a region of q0-states
// can change: δ(q0, q0, l) ≠ q0 or (q0, l) selecting. A binary subtree
// containing no such label evaluates to q0 without being visited.
func (a *STA) bottomUpEssential() (labels.Set, bool) {
	if len(a.Bottom) != 1 {
		return labels.Any, false
	}
	q0 := a.Bottom[0]
	loop := labels.None
	for _, t := range a.Trans {
		if t.From == q0 && t.Dest.Left == q0 && t.Dest.Right == q0 {
			loop = loop.Union(t.Guard)
		}
	}
	// A label is skippable iff the (q0, q0) pair maps back to q0 on it
	// and it is not a selecting configuration of q0.
	essential := loop.Minus(a.selOf[q0]).Complement()
	_, fin := essential.Finite()
	return essential, fin
}

// EvalBottomUpJump is the bottomup_jump evaluator sketched in §3.2: a
// bottom-up run that never enters binary subtrees containing no
// essential label — such regions reduce to q0 unobserved. It is the
// skipping counterpart of EvalBottomUpDet; ancestor hops are performed
// with parent moves, as in the paper's implementation ("the tree indexes
// that we use do not implement the ancestor jumps efficiently").
func (a *STA) EvalBottomUpJump(d *tree.Document, ix *index.Index) Result {
	n := d.NumNodes()
	run := make(Run, n)
	for i := range run {
		run[i] = NoState
	}
	if len(a.Bottom) != 1 {
		return Result{Run: run}
	}
	q0 := a.Bottom[0]
	essential, finite := a.bottomUpEssential()
	if !finite {
		// No skipping possible; fall back to the full sweep.
		return a.EvalBottomUpDet(d)
	}
	res := Result{Run: run}

	// hasEssential reports whether v's binary subtree contains an
	// essential label (including v itself).
	hasEssential := func(v tree.NodeID) bool {
		if essential.Contains(d.Label(v)) {
			return true
		}
		u, _ := ix.Dt(v, essential)
		return u != index.Nil
	}

	// Iterative postorder over the binary tree, skipping dead regions.
	type frame struct {
		v        tree.NodeID
		expanded bool
	}
	state := func(c tree.NodeID) State {
		if c == tree.Nil {
			return q0
		}
		if run[c] == NoState {
			return q0 // skipped region
		}
		return run[c]
	}
	stack := []frame{{v: 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if !f.expanded {
			f.expanded = true
			if !hasEssential(f.v) {
				// Whole region reduces to q0 unvisited.
				stack = stack[:len(stack)-1]
				continue
			}
			for _, c := range []tree.NodeID{d.BinaryRight(f.v), d.BinaryLeft(f.v)} {
				if c != tree.Nil {
					stack = append(stack, frame{v: c})
				}
			}
			continue
		}
		v := f.v
		stack = stack[:len(stack)-1]
		q, ok := a.SourceDet(state(d.BinaryLeft(v)), state(d.BinaryRight(v)), d.Label(v))
		if !ok {
			return Result{Run: make(Run, 0), Visited: res.Visited}
		}
		run[v] = q
		res.Visited++
		if a.IsSelecting(q, d.Label(v)) {
			res.Selected = append(res.Selected, v)
		}
	}
	root := run[0]
	if root == NoState {
		root = q0
	}
	if !a.inTop[root] {
		return Result{Run: run, Visited: res.Visited}
	}
	res.Accepted = true
	sortNodes(res.Selected)
	return res
}
