package sta

import (
	"repro/internal/labels"
	"repro/internal/tree"
)

// This file provides the automata used as running examples in the paper;
// they anchor the test suite to the text.

// ExampleDescADescB builds A_//a//b of Example 2.1: the top-down
// deterministic STA selecting all b-descendants of a-nodes.
//
//	q0, {a}    -> (q1, q0)
//	q0, Σ\{a}  -> (q0, q0)
//	q1, {b}    => (q1, q1)
//	q1, Σ\{b}  -> (q1, q1)
func ExampleDescADescB(a, b tree.LabelID) *STA {
	const q0, q1 = 0, 1
	return (&STA{
		NumStates: 2,
		Top:       []State{q0},
		Bottom:    []State{q0, q1},
		Trans: []Transition{
			{From: q0, Guard: labels.Of(a), Dest: Pair{q1, q0}},
			{From: q0, Guard: labels.Not(a), Dest: Pair{q0, q0}},
			{From: q1, Guard: labels.Of(b), Dest: Pair{q1, q1}, Selecting: true},
			{From: q1, Guard: labels.Not(b), Dest: Pair{q1, q1}},
		},
	}).Finalize()
}

// ExampleRootA builds the recognizer of §3 for the DTD
// "<!ELEMENT a ANY>": accepts exactly the trees whose root is labeled a.
// Only the root is relevant; everything else is skipped via q⊤.
//
//	q0, {a}   -> (q⊤, q⊤)
//	q0, Σ\{a} -> (q⊥, q⊥)
//	q⊤, Σ     -> (q⊤, q⊤)
//	q⊥, Σ     -> (q⊥, q⊥)
func ExampleRootA(a tree.LabelID) *STA {
	const q0, qTop, qBot = 0, 1, 2
	return (&STA{
		NumStates: 3,
		Top:       []State{q0},
		Bottom:    []State{qTop},
		Trans: []Transition{
			{From: q0, Guard: labels.Of(a), Dest: Pair{qTop, qTop}},
			{From: q0, Guard: labels.Not(a), Dest: Pair{qBot, qBot}},
			{From: qTop, Guard: labels.Any, Dest: Pair{qTop, qTop}},
			{From: qBot, Guard: labels.Any, Dest: Pair{qBot, qBot}},
		},
	}).Finalize()
}

// ExampleAWithDescB builds the bottom-up deterministic STA for //a[.//b]
// (Example A.1 / B.1 of the paper): it selects all a-nodes with a
// b-labeled node among their proper XML descendants — their *left*
// subtree under the fcns encoding.
//
// The two-state automaton printed in Example A.1 reads only the left
// child state, which loses b-occurrences that reach a node through its
// right (next-sibling) edge; three states are needed to both propagate
// "b occurs somewhere below-or-right" upward and select only on "b
// occurs in the left subtree":
//
//	q0: no b in the node's self∪binary-subtree region,
//	qR: b in the region but not in the left subtree (self or right only),
//	qL: b in the left subtree (selection fires here on label a).
//
// q0 is the bottom state; all states are top (the automaton accepts
// every tree and is bottom-up complete).
func ExampleAWithDescB(a, b tree.LabelID) *STA {
	const q0, qR, qL = 0, 1, 2
	sta := &STA{
		NumStates: 3,
		Top:       []State{q0, qR, qL},
		Bottom:    []State{q0},
	}
	all := []State{q0, qR, qL}
	for _, r := range all {
		// Left region contains a b: qL, selecting on a.
		for _, l := range []State{qR, qL} {
			sta.Trans = append(sta.Trans,
				Transition{From: qL, Guard: labels.Of(a), Dest: Pair{l, r}, Selecting: true},
				Transition{From: qL, Guard: labels.Not(a), Dest: Pair{l, r}},
			)
		}
		// Left region clean; b here or to the right: qR.
		sta.Trans = append(sta.Trans,
			Transition{From: qR, Guard: labels.Of(b), Dest: Pair{q0, r}})
		if r != q0 {
			sta.Trans = append(sta.Trans,
				Transition{From: qR, Guard: labels.Not(b), Dest: Pair{q0, r}})
		}
	}
	// Entirely clean region.
	sta.Trans = append(sta.Trans,
		Transition{From: q0, Guard: labels.Not(b), Dest: Pair{q0, q0}})
	return sta.Finalize()
}
