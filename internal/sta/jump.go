package sta

import (
	"sort"

	"repro/internal/index"
	"repro/internal/labels"
	"repro/internal/tree"
)

// JumpKind classifies how a subtree entered in a given state can be
// traversed, per the case analysis of Lemma 3.1 / Algorithm B.1.
type JumpKind int

// Jump kinds.
const (
	// JumpNone: mixed looping behavior; the node must be visited.
	JumpNone JumpKind = iota
	// JumpTopMost: the state loops on both children for non-essential
	// labels — jump to the top-most essential-labeled nodes (dt/ft).
	JumpTopMost
	// JumpLeftPath: the state loops on the left child and ignores the
	// right (q⊤) — jump along the leftmost path (lt).
	JumpLeftPath
	// JumpRightPath: symmetric — jump along the rightmost path (rt).
	JumpRightPath
	// JumpFail: the state is a sink; no accepting run exists.
	JumpFail
)

// JumpInfo is the per-state relevance analysis: which labels are
// essential (§2, after Definition 2.4 — labels on which the state changes
// or selects) and how the non-essential remainder loops.
type JumpInfo struct {
	Kind      JumpKind
	Essential labels.Set
}

// AnalyzeState computes the JumpInfo of q for a minimal (or at least
// sink/universal-normalized) TDSTA. The analysis is conservative: when in
// doubt it returns JumpNone, which only costs visits, never correctness.
func (a *STA) AnalyzeState(q State) JumpInfo {
	if a.IsTopDownSink(q) {
		return JumpInfo{Kind: JumpFail}
	}
	// Jumping past a region assigns q to all its skipped # leaves (and
	// q⊤ to ignored siblings); that is only sound when q ∈ B, otherwise
	// a fully non-essential subtree must be rejected, which requires
	// visiting it. Minimal automata for satisfiable queries always have
	// their looping states in B, so this guard costs nothing in practice.
	if !a.inBot[q] {
		return JumpInfo{Kind: JumpNone}
	}
	essential := a.selOf[q] // selected nodes are always relevant
	loopBoth := labels.None
	loopLeft := labels.None  // (q, q⊤)
	loopRight := labels.None // (q⊤, q)
	for _, ti := range a.byFrom[q] {
		t := a.Trans[ti]
		guard := t.Guard.Minus(essential)
		switch {
		case t.Selecting:
			essential = essential.Union(t.Guard)
		case t.Dest.Left == q && t.Dest.Right == q:
			loopBoth = loopBoth.Union(guard)
		case t.Dest.Left == q && a.IsTopDownUniversal(t.Dest.Right):
			loopLeft = loopLeft.Union(guard)
		case t.Dest.Right == q && a.IsTopDownUniversal(t.Dest.Left):
			loopRight = loopRight.Union(guard)
		default:
			essential = essential.Union(t.Guard)
		}
	}
	loopBoth = loopBoth.Minus(essential)
	loopLeft = loopLeft.Minus(essential)
	loopRight = loopRight.Minus(essential)
	// A pure looping pattern is required; mixtures cannot jump.
	switch {
	case loopLeft.IsEmpty() && loopRight.IsEmpty() && essential.Union(loopBoth).IsAny():
		if _, ok := essential.Finite(); !ok {
			return JumpInfo{Kind: JumpNone}
		}
		return JumpInfo{Kind: JumpTopMost, Essential: essential}
	case loopBoth.IsEmpty() && loopRight.IsEmpty() && essential.Union(loopLeft).IsAny():
		return JumpInfo{Kind: JumpLeftPath, Essential: essential}
	case loopBoth.IsEmpty() && loopLeft.IsEmpty() && essential.Union(loopRight).IsAny():
		if _, ok := essential.Finite(); !ok {
			return JumpInfo{Kind: JumpNone}
		}
		return JumpInfo{Kind: JumpRightPath, Essential: essential}
	default:
		return JumpInfo{Kind: JumpNone}
	}
}

// RelevantTopDown computes the top-down relevant nodes of a full run per
// Lemma 3.1: π is relevant iff (R(π), t(π)) ∈ S or the destination pair
// breaks all three looping patterns. Used as the oracle for Theorem 3.1.
func (a *STA) RelevantTopDown(d *tree.Document, run Run) []tree.NodeID {
	var out []tree.NodeID
	for v := tree.NodeID(0); int(v) < d.NumNodes(); v++ {
		q := run[v]
		if q == NoState {
			continue
		}
		l := d.Label(v)
		if a.IsSelecting(q, l) {
			out = append(out, v)
			continue
		}
		dest, ok := a.DestDet(q, l)
		if !ok {
			continue
		}
		switch {
		case dest.Left == q && dest.Right == q:
		case dest.Left == q && a.IsTopDownUniversal(dest.Right):
		case dest.Right == q && a.IsTopDownUniversal(dest.Left):
		default:
			out = append(out, v)
		}
	}
	return out
}

// EvalTopDownJump is Algorithm B.1 (topdown_jump): it evaluates a minimal
// top-down deterministic complete STA visiting only (a superset of) the
// top-down relevant nodes, jumping with the index's dt/ft/lt/rt
// functions. The returned run is partial: states are recorded exactly at
// the visited nodes (Theorem 3.1).
func (a *STA) EvalTopDownJump(d *tree.Document, ix *index.Index) Result {
	n := d.NumNodes()
	run := make(Run, n)
	for i := range run {
		run[i] = NoState
	}
	res := Result{Run: run}
	if n == 0 {
		res.Accepted = len(a.Top) == 1 && a.inBot[a.Top[0]]
		return res
	}
	info := make([]JumpInfo, a.NumStates)
	for q := 0; q < a.NumStates; q++ {
		info[q] = a.AnalyzeState(State(q))
	}

	type frame struct {
		v tree.NodeID
		q State
	}
	var stack []frame
	fail := false

	// push schedules the relevant nodes of the subtree rooted at v
	// entered in state q (relevant_nodes of Algorithm B.1).
	push := func(v tree.NodeID, q State) {
		ji := info[q]
		switch ji.Kind {
		case JumpFail:
			fail = true
		case JumpNone:
			stack = append(stack, frame{v, q})
		case JumpTopMost:
			if ji.Essential.Contains(d.Label(v)) {
				stack = append(stack, frame{v, q})
				return
			}
			tops, _ := ix.TopMost(v, ji.Essential)
			for i := len(tops) - 1; i >= 0; i-- {
				stack = append(stack, frame{tops[i], q})
			}
		case JumpLeftPath:
			if ji.Essential.Contains(d.Label(v)) {
				stack = append(stack, frame{v, q})
				return
			}
			if u := ix.Lt(v, ji.Essential); u != index.Nil {
				stack = append(stack, frame{u, q})
			}
		case JumpRightPath:
			if ji.Essential.Contains(d.Label(v)) {
				stack = append(stack, frame{v, q})
				return
			}
			if u := ix.Rt(v, ji.Essential); u != index.Nil {
				stack = append(stack, frame{u, q})
			}
		}
	}

	push(0, a.Top[0])
	// Collect selected nodes; the stack is LIFO over right-pushed
	// reversed sibling lists, so pops come in document order already for
	// TopMost fan-out, but interleaved subtree recursion can reorder —
	// sort at the end via insertion into a slice then final sort.
	for len(stack) > 0 && !fail {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		q, v := f.q, f.v
		l := d.Label(v)
		run[v] = q
		res.Visited++
		dest, ok := a.DestDet(q, l)
		if !ok {
			fail = true
			break
		}
		if a.IsSelecting(q, l) {
			res.Selected = append(res.Selected, v)
		}
		right := d.BinaryRight(v)
		if right == tree.Nil {
			if !a.inBot[dest.Right] {
				fail = true
				break
			}
		} else if info[dest.Right].Kind == JumpFail {
			fail = true
			break
		} else {
			push(right, dest.Right)
		}
		left := d.BinaryLeft(v)
		if left == tree.Nil {
			if !a.inBot[dest.Left] {
				fail = true
				break
			}
		} else if info[dest.Left].Kind == JumpFail {
			fail = true
			break
		} else {
			push(left, dest.Left)
		}
	}
	if fail {
		return Result{Run: make(Run, 0), Visited: res.Visited}
	}
	res.Accepted = true
	sortNodes(res.Selected)
	return res
}

func sortNodes(ns []tree.NodeID) {
	// The DFS visits nodes in document order, so results are almost
	// always already sorted; verify cheaply and only sort on violation.
	for i := 1; i < len(ns); i++ {
		if ns[i-1] > ns[i] {
			sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
			return
		}
	}
}
