package sta

import (
	"fmt"
	"strings"

	"repro/internal/labels"
	"repro/internal/tree"
)

// MakeTopDownComplete returns an equivalent automaton in which δ(q, l) is
// non-empty for every q and l, adding a fresh sink state if needed.
// Deterministic automata stay deterministic.
func (a *STA) MakeTopDownComplete() *STA {
	missing := make([]labels.Set, a.NumStates)
	needSink := false
	for q := 0; q < a.NumStates; q++ {
		cover := labels.None
		for _, ti := range a.byFrom[q] {
			cover = cover.Union(a.Trans[ti].Guard)
		}
		missing[q] = cover.Complement()
		if !missing[q].IsEmpty() {
			needSink = true
		}
	}
	if !needSink {
		return a
	}
	out := &STA{
		NumStates: a.NumStates + 1,
		Top:       append([]State(nil), a.Top...),
		Bottom:    append([]State(nil), a.Bottom...),
		Trans:     append([]Transition(nil), a.Trans...),
	}
	sink := State(a.NumStates)
	for q := 0; q < a.NumStates; q++ {
		if !missing[q].IsEmpty() {
			out.Trans = append(out.Trans, Transition{
				From: State(q), Guard: missing[q], Dest: Pair{sink, sink},
			})
		}
	}
	out.Trans = append(out.Trans, Transition{
		From: sink, Guard: labels.Any, Dest: Pair{sink, sink},
	})
	return out.Finalize()
}

// partitionKey is the initial Moore partition: states are separated when
// they differ on final-set membership or on their selecting labels —
// exactly the four-way initial relation E0 of Appendix A.2, generalized
// to per-label selecting sets.
func (a *STA) partitionKey(q State, bottomUp bool) string {
	final := a.inBot[q]
	if bottomUp {
		final = a.inTop[q]
	}
	return fmt.Sprintf("%v|%s", final, a.selOf[q].String(nil))
}

// MinimizeTopDown returns the unique minimal TDSTA equivalent to a
// (Theorem A.1). The automaton must be top-down deterministic and
// top-down complete. Unreachable states are dropped first.
func (a *STA) MinimizeTopDown() *STA {
	reach := a.Reachable(a.Top)
	alpha := a.EffectiveAlphabet()

	// class[q] is q's current equivalence class; start from E0.
	class := make([]int, a.NumStates)
	keys := make(map[string]int)
	for q := 0; q < a.NumStates; q++ {
		if !reach[q] {
			class[q] = -1
			continue
		}
		k := a.partitionKey(State(q), false)
		id, ok := keys[k]
		if !ok {
			id = len(keys)
			keys[k] = id
		}
		class[q] = id
	}

	for {
		next := make([]int, a.NumStates)
		sigs := make(map[string]int)
		for q := 0; q < a.NumStates; q++ {
			if !reach[q] {
				next[q] = -1
				continue
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "c%d", class[q])
			for _, l := range alpha {
				dest, ok := a.DestDet(State(q), l)
				if !ok {
					sb.WriteString("|∅")
					continue
				}
				fmt.Fprintf(&sb, "|%d,%d", class[dest.Left], class[dest.Right])
			}
			sig := sb.String()
			id, ok := sigs[sig]
			if !ok {
				id = len(sigs)
				sigs[sig] = id
			}
			next[q] = id
		}
		// Stable iff the partition has the same number of classes.
		if len(sigs) == countClasses(class) {
			break
		}
		class = next
	}
	return a.quotient(class)
}

// MinimizeBottomUp returns the minimal BDSTA equivalent to a. The
// automaton must be bottom-up deterministic and bottom-up complete.
func (a *STA) MinimizeBottomUp() *STA {
	gen := a.generable()
	alpha := a.EffectiveAlphabet()
	class := make([]int, a.NumStates)
	keys := make(map[string]int)
	for q := 0; q < a.NumStates; q++ {
		if !gen[q] {
			class[q] = -1
			continue
		}
		k := a.partitionKey(State(q), true)
		id, ok := keys[k]
		if !ok {
			id = len(keys)
			keys[k] = id
		}
		class[q] = id
	}
	// Precompute source lookups once per (q1, q2, l).
	for {
		next := make([]int, a.NumStates)
		sigs := make(map[string]int)
		for q := 0; q < a.NumStates; q++ {
			if !gen[q] {
				next[q] = -1
				continue
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "c%d", class[q])
			for other := 0; other < a.NumStates; other++ {
				if !gen[other] {
					continue
				}
				for _, l := range alpha {
					if s, ok := a.SourceDet(State(q), State(other), l); ok {
						fmt.Fprintf(&sb, "|L%d", class[s])
					} else {
						sb.WriteString("|L∅")
					}
					if s, ok := a.SourceDet(State(other), State(q), l); ok {
						fmt.Fprintf(&sb, "|R%d", class[s])
					} else {
						sb.WriteString("|R∅")
					}
				}
			}
			sig := sb.String()
			id, ok := sigs[sig]
			if !ok {
				id = len(sigs)
				sigs[sig] = id
			}
			next[q] = id
		}
		if len(sigs) == countClasses(class) {
			break
		}
		class = next
	}
	return a.quotient(class)
}

// generable returns the states reachable bottom-up: B at the leaves,
// closed under δ upward.
func (a *STA) generable() []bool {
	gen := make([]bool, a.NumStates)
	for _, q := range a.Bottom {
		gen[q] = true
	}
	for changed := true; changed; {
		changed = false
		for _, t := range a.Trans {
			if !gen[t.From] && gen[t.Dest.Left] && gen[t.Dest.Right] {
				gen[t.From] = true
				changed = true
			}
		}
	}
	return gen
}

func countClasses(class []int) int {
	seen := make(map[int]bool)
	for _, c := range class {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}

// quotient builds the automaton over equivalence classes. class[q] == -1
// marks dropped (unreachable) states.
func (a *STA) quotient(class []int) *STA {
	// Renumber classes densely in order of first occurrence.
	renum := make(map[int]State)
	for q := 0; q < a.NumStates; q++ {
		if class[q] < 0 {
			continue
		}
		if _, ok := renum[class[q]]; !ok {
			renum[class[q]] = State(len(renum))
		}
	}
	out := &STA{NumStates: len(renum)}
	seenTop := make(map[State]bool)
	for _, q := range a.Top {
		if class[q] < 0 {
			continue
		}
		c := renum[class[q]]
		if !seenTop[c] {
			seenTop[c] = true
			out.Top = append(out.Top, c)
		}
	}
	seenBot := make(map[State]bool)
	for _, q := range a.Bottom {
		if class[q] < 0 {
			continue
		}
		c := renum[class[q]]
		if !seenBot[c] {
			seenBot[c] = true
			out.Bottom = append(out.Bottom, c)
		}
	}
	// Emit transitions from one representative per class, merging guards
	// of transitions with identical (dest, selecting).
	repDone := make(map[State]bool)
	type tkey struct {
		from State
		dest Pair
		sel  bool
	}
	merged := make(map[tkey]labels.Set)
	var order []tkey
	for q := 0; q < a.NumStates; q++ {
		if class[q] < 0 {
			continue
		}
		c := renum[class[q]]
		if repDone[c] {
			continue
		}
		repDone[c] = true
		for _, ti := range a.byFrom[q] {
			t := a.Trans[ti]
			if class[t.Dest.Left] < 0 || class[t.Dest.Right] < 0 {
				continue // transition into dropped states cannot fire
			}
			k := tkey{
				from: c,
				dest: Pair{renum[class[t.Dest.Left]], renum[class[t.Dest.Right]]},
				sel:  t.Selecting,
			}
			if _, ok := merged[k]; !ok {
				order = append(order, k)
				merged[k] = t.Guard
			} else {
				merged[k] = merged[k].Union(t.Guard)
			}
		}
	}
	for _, k := range order {
		out.Trans = append(out.Trans, Transition{
			From: k.from, Guard: merged[k], Dest: k.dest, Selecting: k.sel,
		})
	}
	return out.Finalize()
}

// Equivalent reports whether a and b select the same nodes and accept the
// same trees on the given sample documents; a cheap stand-in for the
// EXPTIME-complete exact equivalence used by tests.
func Equivalent(a, b *STA, docs []*tree.Document) bool {
	for _, d := range docs {
		ra, rb := a.Eval(d), b.Eval(d)
		if ra.Accepted != rb.Accepted {
			return false
		}
		if len(ra.Selected) != len(rb.Selected) {
			return false
		}
		for i := range ra.Selected {
			if ra.Selected[i] != rb.Selected[i] {
				return false
			}
		}
	}
	return true
}
