package sta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/labels"
	"repro/internal/tgen"
	"repro/internal/tree"
)

// randomTDSTA generates a random complete top-down deterministic STA
// over the labels {a, b, c}: for every state and every guard cell of the
// partition {a}, {b}, {c}, Σ\{a,b,c}, one destination pair, with random
// bottom membership and selecting flags.
func randomTDSTA(rng *rand.Rand, numStates int, a, b, c tree.LabelID) *STA {
	guards := []labels.Set{
		labels.Of(a), labels.Of(b), labels.Of(c), labels.Not(a, b, c),
	}
	aut := &STA{
		NumStates: numStates,
		Top:       []State{State(rng.Intn(numStates))},
	}
	for q := 0; q < numStates; q++ {
		if rng.Intn(3) > 0 { // bias toward accepting leaves
			aut.Bottom = append(aut.Bottom, State(q))
		}
		for _, g := range guards {
			aut.Trans = append(aut.Trans, Transition{
				From:      State(q),
				Guard:     g,
				Dest:      Pair{State(rng.Intn(numStates)), State(rng.Intn(numStates))},
				Selecting: rng.Intn(6) == 0,
			})
		}
	}
	return aut.Finalize()
}

// sampleDocs builds a shared pool of sample documents over {a,b,c} for
// equivalence checks.
func sampleDocs(n int) []*tree.Document {
	docs := make([]*tree.Document, 0, n)
	for seed := int64(100); len(docs) < n; seed++ {
		docs = append(docs, tgen.Random(seed, tgen.Config{
			Labels:   []string{"a", "b", "c"},
			MaxNodes: 60,
		}))
	}
	// Plus degenerate shapes.
	docs = append(docs, tgen.Chain("a", 12), tgen.Chain("b", 1), tgen.Star("a", "c", 8))
	return docs
}

// TestMinimizeRandomTDSTA: on random deterministic automata,
// minimization (a) preserves acceptance and selection on sample trees,
// (b) never grows, (c) is idempotent, and (d) leaves at most one sink
// and one universal state.
func TestMinimizeRandomTDSTA(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b, c := lt.Intern("a"), lt.Intern("b"), lt.Intern("c")
	docs := sampleDocs(12)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		aut := randomTDSTA(rng, 2+rng.Intn(6), a, b, c)
		if !aut.IsTopDownDeterministic() || !aut.IsTopDownComplete() {
			t.Logf("generator produced a bad automaton")
			return false
		}
		min := aut.MinimizeTopDown()
		if min.NumStates > aut.NumStates {
			t.Logf("minimization grew: %d -> %d", aut.NumStates, min.NumStates)
			return false
		}
		if !min.IsTopDownDeterministic() {
			t.Logf("minimal automaton not deterministic")
			return false
		}
		if !Equivalent(aut, min, docs) {
			t.Logf("seed=%d: minimized automaton differs\noriginal:\n%s\nminimal:\n%s",
				seed, aut.String(lt), min.String(lt))
			return false
		}
		again := min.MinimizeTopDown()
		if again.NumStates != min.NumStates {
			t.Logf("not idempotent: %d -> %d", min.NumStates, again.NumStates)
			return false
		}
		sinks, universals := 0, 0
		for q := State(0); int(q) < min.NumStates; q++ {
			if min.IsTopDownSink(q) {
				sinks++
			}
			if min.IsTopDownUniversal(q) {
				universals++
			}
		}
		return sinks <= 1 && universals <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestJumpOnRandomMinimalTDSTA: topdown_jump agrees with the full run on
// random minimal automata — Theorem 3.1 beyond the hand-built examples.
func TestJumpOnRandomMinimalTDSTA(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b, c := lt.Intern("a"), lt.Intern("b"), lt.Intern("c")
	docs := sampleDocs(8)
	indexes := make([]*index.Index, len(docs))
	for i, d := range docs {
		indexes[i] = index.New(d)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		min := randomTDSTA(rng, 2+rng.Intn(5), a, b, c).MinimizeTopDown()
		for i, d := range docs {
			full := min.EvalTopDownDet(d)
			jump := min.EvalTopDownJump(d, indexes[i])
			if full.Accepted != jump.Accepted {
				t.Logf("seed=%d doc=%d acceptance: full=%v jump=%v\n%s",
					seed, i, full.Accepted, jump.Accepted, min.String(lt))
				return false
			}
			if !full.Accepted {
				continue
			}
			if len(full.Selected) != len(jump.Selected) {
				t.Logf("seed=%d doc=%d selection differs: %v vs %v",
					seed, i, full.Selected, jump.Selected)
				return false
			}
			for k := range full.Selected {
				if full.Selected[k] != jump.Selected[k] {
					return false
				}
			}
			if jump.Visited > full.Visited {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBottomUpJumpOnRandomBDSTA: the skipping bottom-up evaluator agrees
// with the full sweep on randomized bottom-up deterministic automata.
func TestBottomUpJumpOnRandomBDSTA(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b := lt.Intern("a"), lt.Intern("b")
	docs := sampleDocs(8)
	indexes := make([]*index.Index, len(docs))
	for i, d := range docs {
		indexes[i] = index.New(d)
	}
	aut := ExampleAWithDescB(a, b)
	for i, d := range docs {
		full := aut.EvalBottomUpDet(d)
		jump := aut.EvalBottomUpJump(d, indexes[i])
		if full.Accepted != jump.Accepted || len(full.Selected) != len(jump.Selected) {
			t.Fatalf("doc %d: full=%v/%d jump=%v/%d", i,
				full.Accepted, len(full.Selected), jump.Accepted, len(jump.Selected))
		}
	}
}
