package sta

import (
	"repro/internal/tree"
)

// Run is an assignment of states to document nodes (indexed by preorder
// NodeID). States of the implicit binary leaves (#) are not materialized;
// acceptance at leaves is checked during evaluation.
type Run []State

// Result bundles the outcome of an evaluation.
type Result struct {
	// Accepted reports whether an accepting run exists.
	Accepted bool
	// Run is the state assignment (complete for full evaluations,
	// partial — NoState elsewhere — for jumping evaluations).
	Run Run
	// Selected lists the selected nodes in document order.
	Selected []tree.NodeID
	// Visited counts the nodes the evaluator touched.
	Visited int
}

// Walk calls f for each selected node in document order, stopping early
// when f returns false — the uniform consumption surface shared with
// the other engines' result types.
func (r *Result) Walk(f func(tree.NodeID) bool) { tree.WalkNodes(r.Selected, f) }

// EvalTopDownDet runs a top-down deterministic, top-down complete STA over
// the full binary tree of the document: the "extreme |Q|-optimization"
// evaluator of §1, visiting every node exactly once in document order.
func (a *STA) EvalTopDownDet(d *tree.Document) Result {
	n := d.NumNodes()
	run := make(Run, n)
	for i := range run {
		run[i] = NoState
	}
	res := Result{Run: run}
	if n == 0 {
		res.Accepted = len(a.Top) == 1 && a.inBot[a.Top[0]]
		return res
	}
	run[0] = a.Top[0]
	accepted := true
	for v := tree.NodeID(0); int(v) < n; v++ {
		q := run[v]
		res.Visited++
		dest, ok := a.DestDet(q, d.Label(v))
		if !ok {
			return Result{Run: run} // not complete; reject
		}
		if a.IsSelecting(q, d.Label(v)) {
			res.Selected = append(res.Selected, v)
		}
		if c := d.BinaryLeft(v); c != tree.Nil {
			run[c] = dest.Left
		} else if !a.inBot[dest.Left] {
			accepted = false
		}
		if c := d.BinaryRight(v); c != tree.Nil {
			run[c] = dest.Right
		} else if !a.inBot[dest.Right] {
			accepted = false
		}
	}
	if !accepted {
		return Result{Run: run, Visited: res.Visited}
	}
	res.Accepted = true
	return res
}

// stateSets is a per-node array of state sets, as bool matrices.
type stateSets [][]bool

func newStateSets(n, states int) stateSets {
	flat := make([]bool, n*states)
	out := make(stateSets, n)
	for i := range out {
		out[i] = flat[i*states : (i+1)*states]
	}
	return out
}

// Possible computes, for every node, the set of states q such that the
// subtree below that binary position admits a run from q (the bottom-up
// reachability DP). It is the reference nondeterministic semantics and
// the oracle all optimized evaluators are tested against.
func (a *STA) Possible(d *tree.Document) stateSets {
	n := d.NumNodes()
	poss := newStateSets(n, a.NumStates)
	// Reverse preorder: binary children (first child, next sibling) have
	// larger preorder ids, so they are done before their binary parent.
	for v := n - 1; v >= 0; v-- {
		node := tree.NodeID(v)
		l := d.Label(node)
		left := d.BinaryLeft(node)
		right := d.BinaryRight(node)
		for _, t := range a.Trans {
			if poss[v][t.From] || !t.Guard.Contains(l) {
				continue
			}
			okL := left == tree.Nil && a.inBot[t.Dest.Left] ||
				left != tree.Nil && poss[left][t.Dest.Left]
			if !okL {
				continue
			}
			okR := right == tree.Nil && a.inBot[t.Dest.Right] ||
				right != tree.Nil && poss[right][t.Dest.Right]
			if okR {
				poss[v][t.From] = true
			}
		}
	}
	return poss
}

// Eval computes the exact semantics of a (possibly nondeterministic) STA
// on a document: acceptance, and the set A(t) of nodes selected by *some*
// accepting run (Definition 2.3). Runs in O(|δ| · |D|).
func (a *STA) Eval(d *tree.Document) Result {
	n := d.NumNodes()
	res := Result{Visited: n}
	poss := a.Possible(d)
	// acc[v][q]: q is assumed at v by at least one accepting run.
	acc := newStateSets(n, a.NumStates)
	any := false
	for _, q := range a.Top {
		if poss[0][q] {
			acc[0][q] = true
			any = true
		}
	}
	if !any {
		return res
	}
	res.Accepted = true
	for v := 0; v < n; v++ {
		node := tree.NodeID(v)
		l := d.Label(node)
		left := d.BinaryLeft(node)
		right := d.BinaryRight(node)
		selected := false
		for _, t := range a.Trans {
			if !acc[v][t.From] || !t.Guard.Contains(l) {
				continue
			}
			okL := left == tree.Nil && a.inBot[t.Dest.Left] ||
				left != tree.Nil && poss[left][t.Dest.Left]
			okR := right == tree.Nil && a.inBot[t.Dest.Right] ||
				right != tree.Nil && poss[right][t.Dest.Right]
			if !okL || !okR {
				continue
			}
			// Transition usable by an accepting run.
			if left != tree.Nil {
				acc[left][t.Dest.Left] = true
			}
			if right != tree.Nil {
				acc[right][t.Dest.Right] = true
			}
			if !selected && a.IsSelecting(t.From, l) {
				selected = true
			}
		}
		if selected {
			res.Selected = append(res.Selected, node)
		}
	}
	return res
}

// Accepts reports whether t ∈ L(A).
func (a *STA) Accepts(d *tree.Document) bool {
	poss := a.Possible(d)
	for _, q := range a.Top {
		if poss[0][q] {
			return true
		}
	}
	return false
}
