// Package sta implements the selecting tree automata of §2 and §3 of the
// paper: the STA model over binary (first-child/next-sibling) trees,
// top-down and bottom-up deterministic subclasses, reference run
// semantics, minimization (Appendix A), the relevant-node
// characterizations (Lemma 3.1 and 3.2) and the jumping evaluation
// algorithms topdown_jump (Appendix B.1) and a bottom-up skipping
// evaluator (§3.2 / Appendix B.2).
package sta

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/labels"
	"repro/internal/tree"
)

// State is an automaton state.
type State int32

// NoState marks the absence of a state.
const NoState State = -1

// Pair is a destination pair (q1, q2): the states sent to the left and
// right child of a binary node.
type Pair struct {
	Left, Right State
}

// Transition is q, L -> (q1, q2); Selecting marks the double arrow form
// q, L => (q1, q2), meaning (q, l) is a selecting configuration for every
// l in L.
type Transition struct {
	From      State
	Guard     labels.Set
	Dest      Pair
	Selecting bool
}

// STA is a selecting tree automaton (Definition 2.1). Construct one by
// filling the exported fields and calling Finalize.
type STA struct {
	// NumStates is |Q|; states are 0..NumStates-1.
	NumStates int
	// Top and Bottom are the sets T and B.
	Top, Bottom []State
	// Trans is δ.
	Trans []Transition

	byFrom  [][]int32
	inTop   []bool
	inBot   []bool
	selOf   []labels.Set // per-state selecting labels, derived from Trans
	alpha   []tree.LabelID
	isFinal bool
}

// Finalize builds lookup structures; it must be called after the exported
// fields are set and before any query. It returns the automaton for
// chaining.
func (a *STA) Finalize() *STA {
	a.byFrom = make([][]int32, a.NumStates)
	a.selOf = make([]labels.Set, a.NumStates)
	for i := range a.selOf {
		a.selOf[i] = labels.None
	}
	for i, t := range a.Trans {
		a.byFrom[t.From] = append(a.byFrom[t.From], int32(i))
		if t.Selecting {
			a.selOf[t.From] = a.selOf[t.From].Union(t.Guard)
		}
	}
	a.inTop = make([]bool, a.NumStates)
	for _, q := range a.Top {
		a.inTop[q] = true
	}
	a.inBot = make([]bool, a.NumStates)
	for _, q := range a.Bottom {
		a.inBot[q] = true
	}
	a.alpha = a.mentionedLabels()
	a.isFinal = true
	return a
}

// SizeBytes estimates the resident size of the (minimized) automaton:
// transitions with their guard sets plus the lookup structures built by
// Finalize. The byte-weighted compiled-query LRU weighs cache entries
// with it, so the estimate only needs to be proportionally honest.
func (a *STA) SizeBytes() int64 {
	const transFixed = 48 // Transition struct less the guard's backing
	b := int64(128)       // STA header and slice headers
	b += 4 * int64(len(a.Top)+len(a.Bottom))
	for i := range a.Trans {
		b += transFixed + a.Trans[i].Guard.SizeBytes()
	}
	for _, row := range a.byFrom {
		b += 24 + 4*int64(len(row))
	}
	b += int64(len(a.inTop) + len(a.inBot))
	for _, s := range a.selOf {
		b += s.SizeBytes()
	}
	b += 4 * int64(len(a.alpha))
	return b
}

func (a *STA) mentionedLabels() []tree.LabelID {
	seen := make(map[tree.LabelID]bool)
	for _, t := range a.Trans {
		if ids, ok := t.Guard.Finite(); ok {
			for _, l := range ids {
				seen[l] = true
			}
		} else if ids, ok := t.Guard.Negated(); ok {
			for _, l := range ids {
				seen[l] = true
			}
		}
	}
	out := make([]tree.LabelID, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EffectiveAlphabet returns the labels mentioned in any guard plus one
// fresh label standing for "every other symbol"; per-label algorithms
// (minimization, determinism checks) iterate this set, which is sound
// because guards cannot distinguish unmentioned labels.
func (a *STA) EffectiveAlphabet() []tree.LabelID {
	fresh := tree.LabelID(0)
	if n := len(a.alpha); n > 0 {
		fresh = a.alpha[n-1] + 1
	}
	out := make([]tree.LabelID, len(a.alpha), len(a.alpha)+1)
	copy(out, a.alpha)
	return append(out, fresh)
}

// InTop reports q ∈ T.
func (a *STA) InTop(q State) bool { return a.inTop[q] }

// InBottom reports q ∈ B.
func (a *STA) InBottom(q State) bool { return a.inBot[q] }

// SelectingLabels returns the labels l with (q, l) ∈ S.
func (a *STA) SelectingLabels(q State) labels.Set { return a.selOf[q] }

// IsSelecting reports whether (q, l) is a selecting configuration.
func (a *STA) IsSelecting(q State, l tree.LabelID) bool {
	return a.selOf[q].Contains(l)
}

// IsMarking reports whether state q selects on any label.
func (a *STA) IsMarking(q State) bool { return !a.selOf[q].IsEmpty() }

// TransOf returns the indices into Trans of q's transitions.
func (a *STA) TransOf(q State) []int32 { return a.byFrom[q] }

// Dest returns δ(q, l): all destination pairs reachable from q reading l.
func (a *STA) Dest(q State, l tree.LabelID) []Pair {
	var out []Pair
	for _, ti := range a.byFrom[q] {
		if a.Trans[ti].Guard.Contains(l) {
			out = append(out, a.Trans[ti].Dest)
		}
	}
	return out
}

// DestDet returns the unique destination pair of a deterministic
// automaton, or ok=false if there is none (the automaton is then not
// top-down complete) .
func (a *STA) DestDet(q State, l tree.LabelID) (Pair, bool) {
	for _, ti := range a.byFrom[q] {
		if a.Trans[ti].Guard.Contains(l) {
			return a.Trans[ti].Dest, true
		}
	}
	return Pair{}, false
}

// Sources returns δ(q1, q2, l): all states q with a transition
// q, L -> (q1, q2) and l ∈ L.
func (a *STA) Sources(q1, q2 State, l tree.LabelID) []State {
	var out []State
	for _, t := range a.Trans {
		if t.Dest.Left == q1 && t.Dest.Right == q2 && t.Guard.Contains(l) {
			out = append(out, t.From)
		}
	}
	return out
}

// SourceDet returns the unique source state of a bottom-up deterministic
// automaton for (q1, q2, l), or ok=false.
func (a *STA) SourceDet(q1, q2 State, l tree.LabelID) (State, bool) {
	for _, t := range a.Trans {
		if t.Dest.Left == q1 && t.Dest.Right == q2 && t.Guard.Contains(l) {
			return t.From, true
		}
	}
	return NoState, false
}

// IsTopDownDeterministic reports whether |T| == 1 and δ(q, l) has at most
// one element for all q, l (Definition after 2.1; completeness is checked
// separately).
func (a *STA) IsTopDownDeterministic() bool {
	if len(a.Top) != 1 {
		return false
	}
	for q := 0; q < a.NumStates; q++ {
		ts := a.byFrom[q]
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if a.Trans[ts[i]].Guard.Overlaps(a.Trans[ts[j]].Guard) {
					return false
				}
			}
		}
	}
	return true
}

// IsTopDownComplete reports whether δ(q, l) is non-empty for every q and
// every label of the effective alphabet.
func (a *STA) IsTopDownComplete() bool {
	for q := State(0); int(q) < a.NumStates; q++ {
		cover := labels.None
		for _, ti := range a.byFrom[q] {
			cover = cover.Union(a.Trans[ti].Guard)
		}
		if !cover.IsAny() {
			return false
		}
	}
	return true
}

// IsBottomUpDeterministic reports whether |B| == 1 and δ(q1, q2, l) has at
// most one element for all q1, q2, l.
func (a *STA) IsBottomUpDeterministic() bool {
	if len(a.Bottom) != 1 {
		return false
	}
	for i := 0; i < len(a.Trans); i++ {
		for j := i + 1; j < len(a.Trans); j++ {
			ti, tj := a.Trans[i], a.Trans[j]
			if ti.Dest == tj.Dest && ti.From != tj.From && ti.Guard.Overlaps(tj.Guard) {
				return false
			}
		}
	}
	return true
}

// IsBottomUpComplete reports whether δ(q1, q2, l) is non-empty for every
// pair of states and every label of the effective alphabet.
func (a *STA) IsBottomUpComplete() bool {
	alpha := a.EffectiveAlphabet()
	for q1 := State(0); int(q1) < a.NumStates; q1++ {
		for q2 := State(0); int(q2) < a.NumStates; q2++ {
			for _, l := range alpha {
				if _, ok := a.SourceDet(q1, q2, l); !ok {
					// Non-deterministic automata may have several
					// sources; any is fine for completeness.
					if len(a.Sources(q1, q2, l)) == 0 {
						return false
					}
				}
			}
		}
	}
	return true
}

// NonChanging reports whether q is non-changing (Definition 2.4):
// δ(q, l) = {(q, q)} for every label.
func (a *STA) NonChanging(q State) bool {
	cover := labels.None
	for _, ti := range a.byFrom[q] {
		t := a.Trans[ti]
		if t.Dest.Left != q || t.Dest.Right != q {
			return false
		}
		cover = cover.Union(t.Guard)
	}
	return cover.IsAny()
}

// IsTopDownUniversal reports whether q is a non-changing state in B that
// never selects: the q⊤ whose subtrees can be ignored entirely.
func (a *STA) IsTopDownUniversal(q State) bool {
	return a.NonChanging(q) && a.inBot[q] && !a.IsMarking(q)
}

// IsTopDownSink reports whether q is a non-changing state outside B: the
// q⊥ from which nothing accepts.
func (a *STA) IsTopDownSink(q State) bool {
	return a.NonChanging(q) && !a.inBot[q]
}

// Reachable returns the states reachable from the given roots through
// transition right-hand sides (Definition A.1).
func (a *STA) Reachable(roots []State) []bool {
	seen := make([]bool, a.NumStates)
	var stack []State
	for _, q := range roots {
		if !seen[q] {
			seen[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ti := range a.byFrom[q] {
			for _, nq := range []State{a.Trans[ti].Dest.Left, a.Trans[ti].Dest.Right} {
				if !seen[nq] {
					seen[nq] = true
					stack = append(stack, nq)
				}
			}
		}
	}
	return seen
}

// Restrict returns A[q1..qn] (Definition A.2): the automaton with T
// replaced by the given states and everything unreachable dropped.
// State numbering is preserved (unreachable states keep their ids but
// lose transitions), which keeps comparisons simple.
func (a *STA) Restrict(roots ...State) *STA {
	seen := a.Reachable(roots)
	out := &STA{NumStates: a.NumStates, Top: append([]State(nil), roots...)}
	for _, q := range a.Bottom {
		if seen[q] {
			out.Bottom = append(out.Bottom, q)
		}
	}
	for _, t := range a.Trans {
		if seen[t.From] {
			out.Trans = append(out.Trans, t)
		}
	}
	return out.Finalize()
}

// String renders the automaton for debugging; lt may be nil.
func (a *STA) String(lt *tree.LabelTable) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "STA{states=%d top=%v bottom=%v\n", a.NumStates, a.Top, a.Bottom)
	for _, t := range a.Trans {
		arrow := "->"
		if t.Selecting {
			arrow = "=>"
		}
		fmt.Fprintf(&sb, "  q%d, %s %s (q%d, q%d)\n", t.From, t.Guard.String(lt), arrow, t.Dest.Left, t.Dest.Right)
	}
	sb.WriteString("}")
	return sb.String()
}
