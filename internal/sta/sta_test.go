package sta

import (
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/labels"
	"repro/internal/tgen"
	"repro/internal/tree"
)

// abcDoc generates a random document over labels a, b, c.
func abcDoc(seed int64, maxNodes int) *tree.Document {
	return tgen.Random(seed, tgen.Config{
		Labels:   []string{"a", "b", "c"},
		MaxNodes: maxNodes,
	})
}

// ids returns the label ids of a and b, interning them so the automata
// are well-defined even if the random doc lacks one of them.
func abIDs(d *tree.Document) (tree.LabelID, tree.LabelID) {
	return d.Names().Intern("a"), d.Names().Intern("b")
}

// oracleDescADescB selects all b-nodes with a proper a-labeled XML
// ancestor: the semantics of //a//b.
func oracleDescADescB(d *tree.Document, a, b tree.LabelID) []tree.NodeID {
	var out []tree.NodeID
	for v := tree.NodeID(0); int(v) < d.NumNodes(); v++ {
		if d.Label(v) != b {
			continue
		}
		for u := d.Parent(v); u != tree.Nil; u = d.Parent(u) {
			if d.Label(u) == a {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// oracleAWithDescB selects all a-nodes with a proper b-labeled XML
// descendant: the semantics of //a[.//b].
func oracleAWithDescB(d *tree.Document, a, b tree.LabelID) []tree.NodeID {
	var out []tree.NodeID
	for v := tree.NodeID(0); int(v) < d.NumNodes(); v++ {
		if d.Label(v) != a {
			continue
		}
		for u := v + 1; u <= d.LastDesc(v); u++ {
			if d.Label(u) == b {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func sameNodes(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDescADescBTopDownDet(t *testing.T) {
	d := abcDoc(1, 200)
	a, b := abIDs(d)
	aut := ExampleDescADescB(a, b)
	if !aut.IsTopDownDeterministic() {
		t.Fatal("A_//a//b should be top-down deterministic")
	}
	if !aut.IsTopDownComplete() {
		t.Fatal("A_//a//b should be top-down complete")
	}
	if aut.IsBottomUpDeterministic() {
		t.Fatal("A_//a//b is not bottom-up deterministic (paper, after Ex. 2.1)")
	}
	res := aut.EvalTopDownDet(d)
	if !res.Accepted {
		t.Fatal("A_//a//b accepts every tree")
	}
	if want := oracleDescADescB(d, a, b); !sameNodes(res.Selected, want) {
		t.Errorf("selected %v, want %v", res.Selected, want)
	}
	if res.Visited != d.NumNodes() {
		t.Errorf("full evaluation should visit all %d nodes, visited %d", d.NumNodes(), res.Visited)
	}
}

// Property: the deterministic evaluator agrees with the nondeterministic
// reference semantics on random documents.
func TestDetAgreesWithReference(t *testing.T) {
	f := func(seed int64) bool {
		d := abcDoc(seed, 150)
		a, b := abIDs(d)
		aut := ExampleDescADescB(a, b)
		det := aut.EvalTopDownDet(d)
		ref := aut.Eval(d)
		return det.Accepted == ref.Accepted && sameNodes(det.Selected, ref.Selected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRootARecognizer(t *testing.T) {
	d := abcDoc(3, 80)
	aut := ExampleRootA(tree.LabelDoc)
	if !aut.Accepts(d) {
		t.Error("recognizer for root=#doc should accept any built document")
	}
	res := aut.EvalTopDownDet(d)
	if !res.Accepted || len(res.Selected) != 0 {
		t.Errorf("recognizer selected %v", res.Selected)
	}
	aID, _ := d.Names().Lookup("a")
	rej := ExampleRootA(aID)
	if rej.Accepts(d) {
		t.Error("recognizer for root=a should reject a #doc-rooted document")
	}
	if rej.EvalTopDownDet(d).Accepted {
		t.Error("deterministic evaluation should also reject")
	}
}

func TestUniversalAndSinkDetection(t *testing.T) {
	aut := ExampleRootA(tree.LabelDoc)
	if !aut.IsTopDownUniversal(1) {
		t.Error("q⊤ not detected as universal")
	}
	if !aut.IsTopDownSink(2) {
		t.Error("q⊥ not detected as sink")
	}
	if aut.IsTopDownUniversal(0) || aut.IsTopDownSink(0) {
		t.Error("q0 misclassified")
	}
	if !aut.NonChanging(1) || !aut.NonChanging(2) || aut.NonChanging(0) {
		t.Error("NonChanging wrong")
	}
}

// bloatDescADescB builds an equivalent of A_//a//b with redundant and
// unreachable states, to exercise minimization.
func bloatDescADescB(a, b tree.LabelID) *STA {
	// q0, q1 as usual; q2 duplicates q0; q3 duplicates q1; q4 unreachable.
	return (&STA{
		NumStates: 5,
		Top:       []State{0},
		Bottom:    []State{0, 1, 2, 3, 4},
		Trans: []Transition{
			{From: 0, Guard: labels.Of(a), Dest: Pair{3, 2}},
			{From: 0, Guard: labels.Not(a), Dest: Pair{2, 0}},
			{From: 2, Guard: labels.Of(a), Dest: Pair{1, 0}},
			{From: 2, Guard: labels.Not(a), Dest: Pair{0, 2}},
			{From: 1, Guard: labels.Of(b), Dest: Pair{3, 1}, Selecting: true},
			{From: 1, Guard: labels.Not(b), Dest: Pair{1, 3}},
			{From: 3, Guard: labels.Of(b), Dest: Pair{1, 3}, Selecting: true},
			{From: 3, Guard: labels.Not(b), Dest: Pair{3, 1}},
			{From: 4, Guard: labels.Any, Dest: Pair{4, 4}},
		},
	}).Finalize()
}

func TestMinimizeTopDown(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b := lt.Intern("a"), lt.Intern("b")
	bloated := bloatDescADescB(a, b)
	if !bloated.IsTopDownDeterministic() || !bloated.IsTopDownComplete() {
		t.Fatal("bloated automaton should be deterministic and complete")
	}
	min := bloated.MinimizeTopDown()
	if min.NumStates != 2 {
		t.Fatalf("minimal automaton has %d states, want 2:\n%s", min.NumStates, min.String(lt))
	}
	// Equivalence on sample documents.
	var docs []*tree.Document
	for seed := int64(0); seed < 15; seed++ {
		docs = append(docs, abcDoc(seed, 100))
	}
	if !Equivalent(bloated, min, docs) {
		t.Error("minimized automaton not equivalent to original")
	}
	if !Equivalent(min, ExampleDescADescB(a, b), docs) {
		t.Error("minimized automaton differs from the canonical A_//a//b")
	}
	// Idempotence.
	min2 := min.MinimizeTopDown()
	if min2.NumStates != min.NumStates {
		t.Errorf("re-minimizing changed state count: %d -> %d", min.NumStates, min2.NumStates)
	}
}

func TestMinimalHasAtMostOneSinkAndUniversal(t *testing.T) {
	lt := tree.NewLabelTable()
	a := lt.Intern("a")
	// Recognizer with two redundant sinks and two redundant universals.
	aut := (&STA{
		NumStates: 5,
		Top:       []State{0},
		Bottom:    []State{1, 2},
		Trans: []Transition{
			{From: 0, Guard: labels.Of(a), Dest: Pair{1, 2}},
			{From: 0, Guard: labels.Not(a), Dest: Pair{3, 4}},
			{From: 1, Guard: labels.Any, Dest: Pair{1, 1}},
			{From: 2, Guard: labels.Any, Dest: Pair{2, 2}},
			{From: 3, Guard: labels.Any, Dest: Pair{3, 3}},
			{From: 4, Guard: labels.Any, Dest: Pair{4, 4}},
		},
	}).Finalize()
	min := aut.MinimizeTopDown()
	if min.NumStates != 3 {
		t.Fatalf("minimal has %d states, want 3 (q0, q⊤, q⊥)", min.NumStates)
	}
	sinks, universals := 0, 0
	for q := State(0); int(q) < min.NumStates; q++ {
		if min.IsTopDownSink(q) {
			sinks++
		}
		if min.IsTopDownUniversal(q) {
			universals++
		}
	}
	if sinks != 1 || universals != 1 {
		t.Errorf("sinks=%d universals=%d, want 1 and 1", sinks, universals)
	}
}

func TestMakeTopDownComplete(t *testing.T) {
	lt := tree.NewLabelTable()
	a := lt.Intern("a")
	partial := (&STA{
		NumStates: 1,
		Top:       []State{0},
		Bottom:    []State{0},
		Trans: []Transition{
			{From: 0, Guard: labels.Of(a), Dest: Pair{0, 0}},
		},
	}).Finalize()
	if partial.IsTopDownComplete() {
		t.Fatal("partial automaton should not be complete")
	}
	full := partial.MakeTopDownComplete()
	if !full.IsTopDownComplete() {
		t.Fatal("completion failed")
	}
	if full.NumStates != 2 {
		t.Errorf("expected one added sink, got %d states", full.NumStates)
	}
	// Completing an already complete automaton is the identity.
	if again := full.MakeTopDownComplete(); again != full {
		t.Errorf("completing a complete automaton should return it unchanged")
	}
	// a-chains accepted, anything else rejected.
	aChain := tgen.Chain("a", 5)
	if full.EvalTopDownDet(aChain).Accepted {
		// Chain includes the #doc root whose label is not a; reject.
		t.Log("note: #doc root rejects as expected")
	}
}

// Theorem 3.1: topdown_jump computes exactly the states of the full run
// at exactly the top-down relevant nodes.
func TestTopDownJumpTheorem(t *testing.T) {
	f := func(seed int64) bool {
		d := abcDoc(seed, 200)
		a, b := abIDs(d)
		aut := ExampleDescADescB(a, b) // already minimal
		ix := index.New(d)
		full := aut.EvalTopDownDet(d)
		jump := aut.EvalTopDownJump(d, ix)
		if jump.Accepted != full.Accepted {
			return false
		}
		if !sameNodes(jump.Selected, full.Selected) {
			return false
		}
		relevant := aut.RelevantTopDown(d, full.Run)
		relSet := make(map[tree.NodeID]bool, len(relevant))
		for _, v := range relevant {
			relSet[v] = true
		}
		// States must agree exactly on relevant nodes; the jump run may
		// assign NoState elsewhere but never a wrong state.
		for v := tree.NodeID(0); int(v) < d.NumNodes(); v++ {
			if relSet[v] {
				if jump.Run[v] != full.Run[v] {
					return false
				}
			} else if jump.Run[v] != NoState && jump.Run[v] != full.Run[v] {
				return false
			}
		}
		// Visits are bounded by the full traversal.
		return jump.Visited <= full.Visited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJumpVisitsOnlyRelevantForRootRecognizer(t *testing.T) {
	d := abcDoc(5, 300)
	ix := index.New(d)
	aut := ExampleRootA(tree.LabelDoc)
	res := aut.EvalTopDownJump(d, ix)
	if !res.Accepted {
		t.Fatal("should accept")
	}
	if res.Visited != 1 {
		t.Errorf("recognizer should visit exactly the root, visited %d", res.Visited)
	}
}

func TestJumpVisitCountsOnChain(t *testing.T) {
	// //a//b over c-chain with an a in the middle and b's below: the
	// jumping run should visit approximately only the a and the b's.
	b := tree.NewBuilder()
	for i := 0; i < 50; i++ {
		b.Open("c")
	}
	b.Open("a")
	for i := 0; i < 50; i++ {
		b.Open("c")
	}
	b.Open("b")
	b.Close()
	for i := 0; i < 50; i++ {
		b.Close()
	}
	b.Close()
	for i := 0; i < 50; i++ {
		b.Close()
	}
	d := b.MustFinish()
	aID, _ := d.Names().Lookup("a")
	bID, _ := d.Names().Lookup("b")
	aut := ExampleDescADescB(aID, bID)
	ix := index.New(d)
	res := aut.EvalTopDownJump(d, ix)
	if !res.Accepted || len(res.Selected) != 1 {
		t.Fatalf("selected %v", res.Selected)
	}
	if res.Visited > 3 {
		t.Errorf("jump visited %d nodes on a 102-node chain; want <= 3 (the a, the b)", res.Visited)
	}
}

func TestAnalyzeStateKinds(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b := lt.Intern("a"), lt.Intern("b")
	aut := ExampleDescADescB(a, b)
	ji := aut.AnalyzeState(0)
	if ji.Kind != JumpTopMost {
		t.Errorf("q0 kind = %v, want JumpTopMost", ji.Kind)
	}
	if ids, _ := ji.Essential.Finite(); len(ids) != 1 || ids[0] != a {
		t.Errorf("q0 essential = %v, want {a}", ji.Essential.String(lt))
	}
	ji = aut.AnalyzeState(1)
	if ji.Kind != JumpTopMost {
		t.Errorf("q1 kind = %v, want JumpTopMost", ji.Kind)
	}
	if ids, _ := ji.Essential.Finite(); len(ids) != 1 || ids[0] != b {
		t.Errorf("q1 essential = %v, want {b} (selection makes b essential)", ji.Essential.String(lt))
	}
	rec := ExampleRootA(a)
	if rec.AnalyzeState(2).Kind != JumpFail {
		t.Errorf("sink should analyze as JumpFail")
	}
}

// --- Bottom-up ---

func TestBottomUpDetSelectsAWithDescB(t *testing.T) {
	f := func(seed int64) bool {
		d := abcDoc(seed, 150)
		a, b := abIDs(d)
		aut := ExampleAWithDescB(a, b)
		if !aut.IsBottomUpDeterministic() {
			return false
		}
		res := aut.EvalBottomUpDet(d)
		if !res.Accepted {
			return false
		}
		return sameNodes(res.Selected, oracleAWithDescB(d, a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLeafReductionMatchesSweep(t *testing.T) {
	f := func(seed int64) bool {
		d := abcDoc(seed, 120)
		a, b := abIDs(d)
		aut := ExampleAWithDescB(a, b)
		sweep := aut.EvalBottomUpDet(d)
		run, accepted := aut.LeafReduction(d)
		if accepted != sweep.Accepted {
			return false
		}
		for v := range run {
			if run[v] != sweep.Run[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBottomUpJumpMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		d := abcDoc(seed, 200)
		a, b := abIDs(d)
		aut := ExampleAWithDescB(a, b)
		ix := index.New(d)
		full := aut.EvalBottomUpDet(d)
		jump := aut.EvalBottomUpJump(d, ix)
		if jump.Accepted != full.Accepted {
			return false
		}
		if !sameNodes(jump.Selected, full.Selected) {
			return false
		}
		return jump.Visited <= full.Visited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBottomUpJumpSkipsDeadRegions(t *testing.T) {
	// A document of c's with a single a(b) island: the bottom-up jump
	// should visit only around the island.
	bld := tree.NewBuilder()
	bld.Open("r")
	for i := 0; i < 100; i++ {
		bld.Open("c")
		bld.Close()
	}
	bld.Open("a")
	bld.Open("b")
	bld.Close()
	bld.Close()
	for i := 0; i < 100; i++ {
		bld.Open("c")
		bld.Close()
	}
	bld.Close()
	d := bld.MustFinish()
	a, b := abIDs(d)
	aut := ExampleAWithDescB(a, b)
	ix := index.New(d)
	res := aut.EvalBottomUpJump(d, ix)
	if !res.Accepted || len(res.Selected) != 1 {
		t.Fatalf("selected %v", res.Selected)
	}
	if res.Visited > 110 {
		t.Errorf("bottom-up jump visited %d of %d nodes", res.Visited, d.NumNodes())
	}
	if res.Visited >= d.NumNodes() {
		t.Errorf("no skipping happened at all")
	}
}

func TestRelevantBottomUpIncludesSelected(t *testing.T) {
	d := abcDoc(9, 150)
	a, b := abIDs(d)
	aut := ExampleAWithDescB(a, b)
	res := aut.EvalBottomUpDet(d)
	rel := aut.RelevantBottomUp(d, res.Run)
	relSet := make(map[tree.NodeID]bool, len(rel))
	for _, v := range rel {
		relSet[v] = true
	}
	for _, v := range res.Selected {
		if !relSet[v] {
			t.Errorf("selected node %d not relevant", v)
		}
	}
	if len(rel) > d.NumNodes() {
		t.Errorf("more relevant nodes than nodes")
	}
}

func TestMinimizeBottomUp(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b := lt.Intern("a"), lt.Intern("b")
	aut := ExampleAWithDescB(a, b)
	min := aut.MinimizeBottomUp()
	if min.NumStates != 3 {
		t.Fatalf("minimal BDSTA has %d states, want 3:\n%s", min.NumStates, min.String(lt))
	}
	var docs []*tree.Document
	for seed := int64(20); seed < 35; seed++ {
		docs = append(docs, abcDoc(seed, 80))
	}
	if !Equivalent(aut, min, docs) {
		t.Error("bottom-up minimization changed semantics")
	}
}

func TestRestrictAndReachable(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b := lt.Intern("a"), lt.Intern("b")
	aut := ExampleDescADescB(a, b)
	// From q1, only q1 is reachable.
	sub := aut.Restrict(1)
	seen := aut.Reachable([]State{1})
	if seen[0] {
		t.Error("q0 should not be reachable from q1")
	}
	if len(sub.Top) != 1 || sub.Top[0] != 1 {
		t.Errorf("Restrict top = %v", sub.Top)
	}
	for _, tr := range sub.Trans {
		if tr.From == 0 {
			t.Error("Restrict kept transition of unreachable state")
		}
	}
}

func TestStringRendering(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b := lt.Intern("a"), lt.Intern("b")
	s := ExampleDescADescB(a, b).String(lt)
	if len(s) == 0 {
		t.Error("empty rendering")
	}
}

func TestEffectiveAlphabet(t *testing.T) {
	lt := tree.NewLabelTable()
	a, b := lt.Intern("a"), lt.Intern("b")
	aut := ExampleDescADescB(a, b)
	alpha := aut.EffectiveAlphabet()
	if len(alpha) != 3 { // a, b, fresh
		t.Errorf("effective alphabet = %v, want 3 labels", alpha)
	}
	for _, l := range alpha[:2] {
		if l != a && l != b {
			t.Errorf("unexpected label %d", l)
		}
	}
	if alpha[2] != b+1 {
		t.Errorf("fresh label = %d", alpha[2])
	}
}

func BenchmarkEvalTopDownDet(b *testing.B) {
	d := abcDoc(1, 50000)
	a, bb := abIDs(d)
	aut := ExampleDescADescB(a, bb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = aut.EvalTopDownDet(d)
	}
}

func BenchmarkEvalTopDownJump(b *testing.B) {
	d := abcDoc(1, 50000)
	a, bb := abIDs(d)
	aut := ExampleDescADescB(a, bb)
	ix := index.New(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = aut.EvalTopDownJump(d, ix)
	}
}
