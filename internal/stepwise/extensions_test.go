package stepwise_test

import (
	"testing"

	"repro/internal/stepwise"
	"repro/internal/xmlparse"
)

func TestBackwardAxes(t *testing.T) {
	d, err := xmlparse.ParseString(`<r><a><b><c/></b></a><b/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		query string
		want  int
	}{
		{"//c/parent::b", 1},
		{"//c/parent::a", 0},
		{"//c/..", 1},
		{"//c/ancestor::a", 1},
		{"//c/ancestor::*", 3}, // b, a, r
		{"//c/ancestor-or-self::*", 4},
		{"//b/ancestor::r", 1},
		{"//c/../..", 1}, // the a element
	}
	for _, tc := range cases {
		res, err := stepwise.EvalString(d, tc.query, stepwise.Default())
		if err != nil {
			t.Errorf("%q: %v", tc.query, err)
			continue
		}
		if len(res.Selected) != tc.want {
			t.Errorf("%q selected %d, want %d", tc.query, len(res.Selected), tc.want)
		}
	}
}

func TestContains(t *testing.T) {
	d, err := xmlparse.ParseString(
		`<lib><book><title>XPath Whole Query Optimization</title></book>` +
			`<book><title>Succinct Trees</title><note>about xpath too</note></book></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		query string
		want  int
	}{
		{`//book[contains(title, "XPath")]`, 1},
		{`//book[contains(title, "t")]`, 2},
		{`//book[contains(., "xpath")]`, 1}, // whole-subtree text
		{`//book[contains(title, "zzz")]`, 0},
		{`//book[contains(title/text(), "Succinct")]`, 1},
		{`//book[not(contains(title, "XPath"))]`, 1},
	}
	for _, tc := range cases {
		res, err := stepwise.EvalString(d, tc.query, stepwise.Default())
		if err != nil {
			t.Errorf("%q: %v", tc.query, err)
			continue
		}
		if len(res.Selected) != tc.want {
			t.Errorf("%q selected %d, want %d", tc.query, len(res.Selected), tc.want)
		}
	}
}
