// Package stepwise is a classical step-at-a-time Core XPath evaluator in
// the O(|D|·|Q|) style of Gottlob, Koch & Pichler [6]: each location step
// maps a sorted duplicate-free context node set to the next one, with
// staircase-join-style pruning [9] on the descendant axis. It plays two
// roles in this reproduction:
//
//  1. the comparator engine for the Figure 8 experiment (the paper
//     compares against MonetDB/XQuery, whose pathfinder evaluates these
//     navigational queries in the same step-wise fashion), and
//  2. the independent semantic oracle the automata engines are tested
//     against — it shares no code with them.
package stepwise

import (
	"sort"
	"strings"

	"repro/internal/tree"
	"repro/internal/xpath"
)

// Stats counts evaluator effort.
type Stats struct {
	// Visited counts node inspections (context nodes and scanned
	// candidates).
	Visited int
}

// Options configures the evaluator.
type Options struct {
	// Staircase enables the staircase-join pruning of covered context
	// nodes on the descendant axis (on by default via Default).
	Staircase bool
}

// Default returns the standard configuration.
func Default() Options { return Options{Staircase: true} }

// Result is the evaluation outcome.
type Result struct {
	Selected []tree.NodeID
	Stats    Stats
}

// Walk calls f for each selected node in document order, stopping early
// when f returns false — the uniform consumption surface shared with
// the automata engines' result types.
func (r *Result) Walk(f func(tree.NodeID) bool) { tree.WalkNodes(r.Selected, f) }

// Eval evaluates a parsed query over the document.
func Eval(d *tree.Document, p *xpath.Path, opt Options) Result {
	e := &evaluator{d: d, opt: opt}
	ctx := []tree.NodeID{d.Root()}
	out := e.path(ctx, p.Steps)
	return Result{Selected: out, Stats: e.stats}
}

// EvalString parses and evaluates a query.
func EvalString(d *tree.Document, query string, opt Options) (Result, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return Result{}, err
	}
	return Eval(d, p, opt), nil
}

type evaluator struct {
	d     *tree.Document
	opt   Options
	stats Stats
}

// path maps a context set through all steps.
func (e *evaluator) path(ctx []tree.NodeID, steps []xpath.Step) []tree.NodeID {
	for _, st := range steps {
		ctx = e.step(ctx, st)
		if len(ctx) == 0 {
			return nil
		}
	}
	return ctx
}

// step maps a sorted duplicate-free context through one location step.
func (e *evaluator) step(ctx []tree.NodeID, st xpath.Step) []tree.NodeID {
	var out []tree.NodeID
	switch st.Axis {
	case xpath.Child, xpath.Attribute:
		for _, v := range ctx {
			for c := e.d.FirstChild(v); c != tree.Nil; c = e.d.NextSibling(c) {
				e.stats.Visited++
				if e.match(c, st.Test) {
					out = append(out, c)
				}
			}
		}
	case xpath.Descendant:
		covered := tree.NodeID(-1)
		for _, v := range ctx {
			if e.opt.Staircase && v <= covered {
				// Staircase join: v's subtree is inside a previous
				// context node's subtree; its descendants are already
				// collected.
				continue
			}
			end := e.d.LastDesc(v)
			for c := v + 1; c <= end; c++ {
				e.stats.Visited++
				if e.match(c, st.Test) {
					out = append(out, c)
				}
			}
			if end > covered {
				covered = end
			}
		}
	case xpath.FollowingSibling:
		for _, v := range ctx {
			for c := e.d.NextSibling(v); c != tree.Nil; c = e.d.NextSibling(c) {
				e.stats.Visited++
				if e.match(c, st.Test) {
					out = append(out, c)
				}
			}
		}
	case xpath.Self:
		for _, v := range ctx {
			e.stats.Visited++
			if e.match(v, st.Test) {
				out = append(out, v)
			}
		}
	case xpath.Parent:
		for _, v := range ctx {
			if p := e.d.Parent(v); p != tree.Nil {
				e.stats.Visited++
				if e.match(p, st.Test) {
					out = append(out, p)
				}
			}
		}
	case xpath.Ancestor, xpath.AncestorOrSelf:
		for _, v := range ctx {
			u := v
			if st.Axis == xpath.Ancestor {
				u = e.d.Parent(v)
			}
			for ; u != tree.Nil; u = e.d.Parent(u) {
				e.stats.Visited++
				if e.match(u, st.Test) {
					out = append(out, u)
				}
			}
		}
	}
	out = sortDedup(out)
	if len(st.Preds) == 0 {
		return out
	}
	w := 0
	for _, v := range out {
		keep := true
		for _, p := range st.Preds {
			if !e.pred(v, p) {
				keep = false
				break
			}
		}
		if keep {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// match applies a node test.
func (e *evaluator) match(v tree.NodeID, t xpath.NodeTest) bool {
	l := e.d.Label(v)
	switch t.Kind {
	case xpath.TestName:
		return e.d.LabelName(v) == t.Name
	case xpath.TestStar:
		return l != tree.LabelDoc && l != tree.LabelText && !isAttr(e.d, v)
	case xpath.TestNode:
		return l != tree.LabelDoc && !isAttr(e.d, v)
	case xpath.TestText:
		return l == tree.LabelText
	}
	return false
}

func isAttr(d *tree.Document, v tree.NodeID) bool {
	return strings.HasPrefix(d.LabelName(v), "@")
}

// pred evaluates a predicate at one candidate node.
func (e *evaluator) pred(v tree.NodeID, p xpath.Pred) bool {
	switch q := p.(type) {
	case *xpath.And:
		return e.pred(v, q.Left) && e.pred(v, q.Right)
	case *xpath.Or:
		return e.pred(v, q.Left) || e.pred(v, q.Right)
	case *xpath.Not:
		return !e.pred(v, q.Inner)
	case *xpath.PathPred:
		start := v
		if q.Path.Absolute {
			start = e.d.Root()
		}
		return len(e.path([]tree.NodeID{start}, q.Path.Steps)) > 0
	case *xpath.Contains:
		start := v
		if q.Path.Absolute {
			start = e.d.Root()
		}
		for _, u := range e.path([]tree.NodeID{start}, q.Path.Steps) {
			if strings.Contains(e.textContent(u), q.Needle) {
				return true
			}
		}
		return false
	}
	return false
}

// textContent concatenates the text of u's #text descendants (or u's own
// text for a text node), the string value of the XPath data model.
func (e *evaluator) textContent(u tree.NodeID) string {
	if e.d.Label(u) == tree.LabelText {
		return e.d.Text(u)
	}
	var sb strings.Builder
	for v := u; v <= e.d.LastDesc(u); v++ {
		if e.d.Label(v) == tree.LabelText {
			sb.WriteString(e.d.Text(v))
		}
	}
	return sb.String()
}

func sortDedup(ns []tree.NodeID) []tree.NodeID {
	if len(ns) < 2 {
		return ns
	}
	sorted := true
	for i := 1; i < len(ns); i++ {
		if ns[i-1] > ns[i] {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	w := 1
	for i := 1; i < len(ns); i++ {
		if ns[i] != ns[w-1] {
			ns[w] = ns[i]
			w++
		}
	}
	return ns[:w]
}
