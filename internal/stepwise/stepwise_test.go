package stepwise_test

import (
	"testing"
	"testing/quick"

	"repro/internal/stepwise"
	"repro/internal/tgen"
	"repro/internal/tree"
	"repro/internal/xmlparse"
	"repro/internal/xpath"
)

func evalQ(t *testing.T, d *tree.Document, q string) []tree.NodeID {
	t.Helper()
	res, err := stepwise.EvalString(d, q, stepwise.Default())
	if err != nil {
		t.Fatalf("EvalString(%q): %v", q, err)
	}
	return res.Selected
}

func names(d *tree.Document, ns []tree.NodeID) []string {
	out := make([]string, len(ns))
	for i, v := range ns {
		out[i] = d.LabelName(v)
	}
	return out
}

func TestBasicAxes(t *testing.T) {
	d, err := xmlparse.ParseString(`<r><a><b/><c/></a><a><b/></a><b/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := evalQ(t, d, "/r/a"); len(got) != 2 {
		t.Errorf("/r/a = %v", names(d, got))
	}
	if got := evalQ(t, d, "//b"); len(got) != 3 {
		t.Errorf("//b = %v", names(d, got))
	}
	if got := evalQ(t, d, "/r/a/b"); len(got) != 2 {
		t.Errorf("/r/a/b = %v", names(d, got))
	}
	if got := evalQ(t, d, "//a[c]"); len(got) != 1 {
		t.Errorf("//a[c] = %v", names(d, got))
	}
	if got := evalQ(t, d, "//a[not(c)]"); len(got) != 1 {
		t.Errorf("//a[not(c)] = %v", names(d, got))
	}
	if got := evalQ(t, d, "//a/following-sibling::b"); len(got) != 1 {
		t.Errorf("following-sibling = %v", names(d, got))
	}
	if got := evalQ(t, d, "/r/*"); len(got) != 3 {
		t.Errorf("/r/* = %v", names(d, got))
	}
}

func TestAttributesAndText(t *testing.T) {
	d, err := xmlparse.ParseString(`<r><a x="1">hello</a><a/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := evalQ(t, d, "//a/@x"); len(got) != 1 || d.LabelName(got[0]) != "@x" {
		t.Errorf("//a/@x = %v", names(d, got))
	}
	if got := evalQ(t, d, "//a[@x]"); len(got) != 1 {
		t.Errorf("//a[@x] = %v", names(d, got))
	}
	if got := evalQ(t, d, "//a/text()"); len(got) != 1 {
		t.Errorf("//a/text() = %v", names(d, got))
	}
	// * and node() must not match the encoded attributes.
	if got := evalQ(t, d, "//a/*"); len(got) != 0 {
		t.Errorf("//a/* = %v, attributes leaked", names(d, got))
	}
	if got := evalQ(t, d, "/r/node()"); len(got) != 2 {
		t.Errorf("/r/node() = %v", names(d, got))
	}
}

func TestResultsSortedAndDeduped(t *testing.T) {
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{Labels: []string{"a", "b"}, MaxNodes: 150})
		for _, q := range []string{"//a//b", "//a//a", "//*//*", "//a[.//b]//b"} {
			res, err := stepwise.EvalString(d, q, stepwise.Default())
			if err != nil {
				return false
			}
			for i := 1; i < len(res.Selected); i++ {
				if res.Selected[i-1] >= res.Selected[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: staircase pruning never changes results, only effort.
func TestStaircaseEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		d := tgen.Random(seed, tgen.Config{Labels: []string{"a", "b", "c"}, MaxNodes: 200})
		for _, q := range []string{"//a//b", "//a//a//a", "//a[.//b]//c"} {
			p := xpath.MustParse(q)
			with := stepwise.Eval(d, p, stepwise.Options{Staircase: true})
			without := stepwise.Eval(d, p, stepwise.Options{Staircase: false})
			if len(with.Selected) != len(without.Selected) {
				return false
			}
			for i := range with.Selected {
				if with.Selected[i] != without.Selected[i] {
					return false
				}
			}
			if with.Stats.Visited > without.Stats.Visited {
				return false // pruning must not increase work
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStaircaseReducesWorkOnNestedContexts(t *testing.T) {
	// Deep a-chain: //a//a has n contexts, all nested; staircase
	// evaluates only the outermost subtree once.
	d := tgen.Chain("a", 200)
	p := xpath.MustParse("//a//a")
	with := stepwise.Eval(d, p, stepwise.Options{Staircase: true})
	without := stepwise.Eval(d, p, stepwise.Options{Staircase: false})
	if without.Stats.Visited < 10*with.Stats.Visited {
		t.Errorf("staircase saving too small: %d vs %d", with.Stats.Visited, without.Stats.Visited)
	}
}

func TestEmptyResults(t *testing.T) {
	d := tgen.Star("r", "c", 5)
	if got := evalQ(t, d, "//zzz"); got != nil {
		t.Errorf("//zzz = %v", got)
	}
	if got := evalQ(t, d, "/r/c[x]"); got != nil {
		t.Errorf("filtered all = %v", got)
	}
}

func TestParseErrorPropagates(t *testing.T) {
	d := tgen.Star("r", "c", 1)
	if _, err := stepwise.EvalString(d, "/r[", stepwise.Default()); err == nil {
		t.Error("expected parse error")
	}
}

func BenchmarkStepwiseDescendant(b *testing.B) {
	d := tgen.Random(1, tgen.Config{Labels: []string{"a", "b", "c", "d"}, MaxNodes: 50000})
	p := xpath.MustParse("//a//b[c]")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stepwise.Eval(d, p, stepwise.Default())
	}
}
