package store

import (
	"fmt"
	"strconv"
)

// Gen is one MVCC generation id within a document's chain. Outside this
// package a Gen is an opaque token: it is obtained from a Handle (or a
// decoded continuation token), compared only for identity, and handed
// back to the chain operations that understand it — Patch, GetAsOf,
// Pin/Unpin, Lease/Redeem. Ordering and arithmetic are meaningless
// across loads (counters are entropy-seeded per incarnation), so the
// xpqlint nakedgen analyzer rejects both, along with conversions to and
// from raw integers, anywhere but here. NoGen (the zero value) means
// "latest, whatever it is".
type Gen uint64

// NoGen is the absent generation: "latest" in lookups, "unconditional"
// as a patch base.
const NoGen Gen = 0

// String renders the generation for wire formats (cursor tokens, logs).
// It is the only sanctioned path from a Gen to text.
func (g Gen) String() string { return strconv.FormatUint(uint64(g), 10) }

// ParseGen is the inverse of String — the only sanctioned path from
// wire text back to a Gen.
func ParseGen(s string) (Gen, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return NoGen, fmt.Errorf("store: bad generation %q: %w", s, err)
	}
	return Gen(v), nil
}
