package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/index"
	"repro/internal/tree"
	"repro/internal/xmark"
	"repro/internal/xmlparse"
)

// BenchmarkMmapOpenVsParse is the startup-cost benchmark behind the
// BENCH_mmap.json open gate (CI enforces open ≤ 0.05× parse): bringing a
// document online from its XQO2 resident file — mmap, section-table
// walk, checksums, alias the arrays in place — against the pre-resident
// preload path, which parses the XML corpus and rebuilds the succinct
// view and jumping index from scratch. A third row decodes the XQO1 wire
// format (the intermediate option: no XML parse, but still a full
// rebuild) for reference. Every variant ends at the same place: a
// queryable (Document, Succinct, Index) triple.
func BenchmarkMmapOpenVsParse(b *testing.B) {
	d := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 42})
	dir := b.TempDir()

	xqo2 := filepath.Join(dir, "doc.xqo2")
	if err := SaveXQO2File(xqo2, d); err != nil {
		b.Fatal(err)
	}
	xmlSrc := []byte(d.XMLString())
	var wire bytes.Buffer
	if _, err := d.WriteTo(&wire); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(xqo2)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("mmap-open", func(b *testing.B) {
		b.SetBytes(fi.Size())
		for i := 0; i < b.N; i++ {
			od, succ, ix, m, err := OpenXQO2(xqo2)
			if err != nil {
				b.Fatal(err)
			}
			if od.NumNodes() != d.NumNodes() || succ == nil || ix == nil || m == nil {
				b.Fatal("open returned a different document")
			}
			// Unmap eagerly, outside the timed region: teardown is not
			// open cost, and leaving b.N mappings to the finalizer piles
			// up page tables and GC work that pollutes the measurement.
			b.StopTimer()
			m.Close()
			b.StartTimer()
		}
	})

	b.Run("parse", func(b *testing.B) {
		b.SetBytes(int64(len(xmlSrc)))
		for i := 0; i < b.N; i++ {
			pd, err := xmlparse.Parse(xmlSrc)
			if err != nil {
				b.Fatal(err)
			}
			succ := tree.NewSuccinct(pd)
			ix := index.New(pd)
			// The XML round trip drops empty text nodes (~1% of the
			// count), so require same-magnitude, not identity.
			if pd.NumNodes() < d.NumNodes()*9/10 || succ == nil || ix == nil {
				b.Fatal("parse returned a different document")
			}
		}
	})

	b.Run("decode-xqo1", func(b *testing.B) {
		b.SetBytes(int64(wire.Len()))
		for i := 0; i < b.N; i++ {
			pd, err := tree.ReadDocument(bytes.NewReader(wire.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			succ := tree.NewSuccinct(pd)
			ix := index.New(pd)
			if pd.NumNodes() != d.NumNodes() || succ == nil || ix == nil {
				b.Fatal("decode returned a different document")
			}
		}
	})
}

// BenchmarkMappedMemoryPressure drives a mapped corpus roughly 4× the
// resident budget through round-robin reads: every access to a released
// document re-charges it and forces the enforcer to shed the
// least-recently-used mapping, so the steady state is continuous
// release/refault churn — the "corpus beyond RAM" serving regime. The
// per-op faults metric comes from the store's own accounting.
func BenchmarkMappedMemoryPressure(b *testing.B) {
	const docsN = 8
	s := New()
	dir := b.TempDir()
	ids := make([]string, docsN)
	var total int64
	for i := 0; i < docsN; i++ {
		ids[i] = string(rune('a' + i))
		d := xmark.Generate(xmark.Config{Scale: 0.01, Seed: int64(i + 1)})
		path := filepath.Join(dir, ids[i]+".xqo2")
		if err := SaveXQO2File(path, d); err != nil {
			b.Fatal(err)
		}
		h, err := s.LoadMapped(ids[i], path)
		if err != nil {
			b.Fatal(err)
		}
		total += h.Stats.MappedBytes
	}
	s.SetResidentBudget(total / 4)

	before := s.Mapped()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, ok := s.Get(ids[i%docsN])
		if !ok {
			b.Fatal("document vanished")
		}
		// Touch the document's arrays across the file: label reads fault
		// the label section, text reads fault the text blob.
		d := h.Doc
		n := tree.NodeID(0)
		for hops := 0; hops < 64; hops++ {
			step := tree.NodeID(1 + (i+hops)%7)
			n = (n + step*997) % tree.NodeID(d.NumNodes())
			_ = d.Label(n)
			_ = d.Text(n)
		}
	}
	b.StopTimer()
	after := s.Mapped()
	if b.N > 0 {
		b.ReportMetric(float64(after.MapFaults-before.MapFaults)/float64(b.N), "faults/op")
	}
	if after.ChargedBytes > total/4 {
		b.Fatalf("budget not enforced: %d charged for budget %d", after.ChargedBytes, total/4)
	}
}
