package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/tree"
)

// ErrGone is wrapped by GetAsOf/Lease when the requested generation of
// a resident document has been retired (garbage-collected); the HTTP
// layer maps it to 410 for cursor resumes.
var ErrGone = errors.New("generation retired")

// ErrConflict is wrapped by Patch when the caller's base generation is
// no longer the latest — the optimistic-concurrency failure. The HTTP
// layer maps it to 409.
var ErrConflict = errors.New("base generation is not latest")

// chain is the MVCC history of one document: an append-only sequence of
// immutable generations. latest is read lock-free on the query fast
// path; gens holds every generation still readable (latest, plus older
// ones kept alive by cursor pins or leases).
type chain struct {
	mu      sync.Mutex
	latest  atomic.Pointer[Handle]
	gens    map[Gen]*genEntry
	nextGen Gen
	evicted bool
}

// genEntry tracks what keeps one generation alive: explicit pins
// (open streaming reads) and time-bounded leases (issued cursor
// tokens, redeemed when the cursor is consumed). Leases are fungible —
// any redeem releases the soonest-expiring one — because the store
// cannot tell which outstanding token came back.
type genEntry struct {
	h      *Handle
	pins   int
	leases []int64 // unix-nano expiries, unordered
}

// genSeedMask keeps entropy-seeded generation counters within 2^52 so
// they survive a round trip through JSON numbers (float64 mantissa).
const genSeedMask = 1<<52 - 1

// newChain wraps a freshly built generation-one handle. The counter is
// seeded from the clock (scrambled by the Fibonacci-hashing constant)
// rather than starting at 1, so a generation id never aliases a
// different incarnation of the same document id — across evict+reload
// and across daemon restarts.
func newChain(h *Handle) *chain {
	seed := Gen(uint64(time.Now().UnixNano())*0x9E3779B97F4A7C15) & genSeedMask
	if seed == 0 {
		seed = 1
	}
	h.Gen = seed
	h.Stats.Gen = seed
	ch := &chain{
		gens:    map[Gen]*genEntry{seed: {h: h}},
		nextGen: seed + 1,
	}
	ch.latest.Store(h)
	return ch
}

// Patch applies a subtree patch to the latest generation of id and
// publishes the result as a new generation, maintaining the index (and
// the balanced-parentheses view, if built) incrementally from the
// parent generation instead of rebuilding. If base is non-zero the
// patch only applies when base is still the latest generation
// (optimistic concurrency); base zero means "latest, whatever it is".
// Existing readers are untouched: they keep the generation they pinned.
func (s *Store) Patch(id string, base Gen, pt tree.Patch) (*Handle, error) {
	ch := s.chainFor(id)
	if ch == nil {
		return nil, fmt.Errorf("store: document %q: %w", id, ErrNotFound)
	}
	ch.mu.Lock()
	cur := ch.latest.Load()
	if cur == nil || ch.evicted {
		ch.mu.Unlock()
		return nil, fmt.Errorf("store: document %q: %w", id, ErrNotFound)
	}
	if base != NoGen && cur.Gen != base {
		ch.mu.Unlock()
		return nil, fmt.Errorf("store: document %q: patch base gen %d, latest is %d: %w",
			id, base, cur.Gen, ErrConflict)
	}
	newDoc, dl, err := cur.Doc.Apply(pt)
	if err != nil {
		ch.mu.Unlock()
		return nil, err
	}
	gen := ch.nextGen
	ch.nextGen++
	h := &Handle{
		ID:    id,
		Gen:   gen,
		Doc:   newDoc,
		Index: index.Apply(cur.Index, newDoc, dl),
		succ:  &succCell{},
	}
	// Splice the BP view forward only if the parent generation already
	// built one; otherwise stay lazy — Succinct() rebuilds on demand.
	if cur.succ != nil {
		if ps := cur.succ.p.Load(); ps != nil {
			h.succ.p.Store(tree.SpliceSuccinct(ps, newDoc, dl))
		}
	}
	h.Stats = Stats{
		ID:       id,
		Gen:      gen,
		Nodes:    newDoc.NumNodes(),
		Labels:   newDoc.Names().Size(),
		MemBytes: estimateBytes(newDoc),
		Source:   SourcePatch,
		LoadedAt: time.Now(),
	}
	ch.gens[gen] = &genEntry{h: h}
	ch.latest.Store(h)
	retiredGens := ch.sweepLocked(time.Now().UnixNano())
	ch.mu.Unlock()
	s.patches.Add(1)
	s.notifyRetired(id, retiredGens)
	return h, nil
}

// GetAsOf returns the handle for a specific generation of id. A missing
// document is ErrNotFound; a resident document whose requested
// generation has been retired is ErrGone (the time-travel window
// closed).
func (s *Store) GetAsOf(id string, gen Gen) (*Handle, error) {
	ch := s.chainFor(id)
	if ch == nil {
		return nil, fmt.Errorf("store: document %q: %w", id, ErrNotFound)
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	e, ok := ch.gens[gen]
	if !ok {
		return nil, fmt.Errorf("store: document %q generation %d: %w", id, gen, ErrGone)
	}
	s.touchMapped(id)
	return e.h, nil
}

// Pin takes a reference on (id, gen), keeping the generation readable
// across later patches until Unpin. Used by streaming reads for the
// duration of the response.
func (s *Store) Pin(id string, gen Gen) error {
	ch := s.chainFor(id)
	if ch == nil {
		return fmt.Errorf("store: document %q: %w", id, ErrNotFound)
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	e, ok := ch.gens[gen]
	if !ok {
		return fmt.Errorf("store: document %q generation %d: %w", id, gen, ErrGone)
	}
	e.pins++
	return nil
}

// Unpin drops a Pin reference. When the last pin and lease of a
// non-latest generation drain, the generation is retired.
func (s *Store) Unpin(id string, gen Gen) {
	ch := s.chainFor(id)
	if ch == nil {
		return
	}
	ch.mu.Lock()
	if e, ok := ch.gens[gen]; ok && e.pins > 0 {
		e.pins--
	}
	retiredGens := ch.sweepLocked(time.Now().UnixNano())
	ch.mu.Unlock()
	s.notifyRetired(id, retiredGens)
}

// Lease keeps (id, gen) readable until the deadline — the lifetime of
// an issued cursor token. Redeem releases it early when the token is
// consumed; an abandoned token simply expires.
func (s *Store) Lease(id string, gen Gen, until time.Time) error {
	ch := s.chainFor(id)
	if ch == nil {
		return fmt.Errorf("store: document %q: %w", id, ErrNotFound)
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	e, ok := ch.gens[gen]
	if !ok {
		return fmt.Errorf("store: document %q generation %d: %w", id, gen, ErrGone)
	}
	e.leases = append(e.leases, until.UnixNano())
	return nil
}

// Redeem releases one outstanding lease on (id, gen) — the
// soonest-expiring one, since leases are fungible — and sweeps.
func (s *Store) Redeem(id string, gen Gen) {
	ch := s.chainFor(id)
	if ch == nil {
		return
	}
	ch.mu.Lock()
	if e, ok := ch.gens[gen]; ok && len(e.leases) > 0 {
		min := 0
		for i, exp := range e.leases {
			if exp < e.leases[min] {
				min = i
			}
		}
		e.leases[min] = e.leases[len(e.leases)-1]
		e.leases = e.leases[:len(e.leases)-1]
	}
	retiredGens := ch.sweepLocked(time.Now().UnixNano())
	ch.mu.Unlock()
	s.notifyRetired(id, retiredGens)
}

// sweepLocked retires every generation that is not the latest and has
// no pins and no unexpired leases. Caller holds ch.mu; the retired
// generation ids are returned so the callback can run outside locks.
func (ch *chain) sweepLocked(nowNS int64) []Gen {
	latest := ch.latest.Load()
	var retired []Gen
	for gen, e := range ch.gens {
		// Compact expired leases first so they can't keep a gen alive.
		kept := e.leases[:0]
		for _, exp := range e.leases {
			if exp > nowNS {
				kept = append(kept, exp)
			}
		}
		e.leases = kept
		if latest != nil && e.h == latest && !ch.evicted {
			continue
		}
		if e.pins == 0 && len(e.leases) == 0 {
			delete(ch.gens, gen)
			retired = append(retired, gen)
		}
	}
	return retired
}

// notifyRetired fires the retire callback for each generation, outside
// all store and chain locks.
func (s *Store) notifyRetired(id string, gens []Gen) {
	if len(gens) == 0 {
		return
	}
	s.retired.Add(uint64(len(gens)))
	s.mu.RLock()
	fn := s.retireFn
	s.mu.RUnlock()
	if fn == nil {
		return
	}
	for _, g := range gens {
		fn(id, g)
	}
}

// MVCCStats aggregates the store's generation-chain accounting.
type MVCCStats struct {
	// LiveGenerations counts readable generations across all documents
	// (at least one per resident document).
	LiveGenerations int `json:"live_generations"`
	// PinnedGenerations counts non-latest generations kept alive by
	// pins or leases — the time-travel working set.
	PinnedGenerations int `json:"pinned_generations"`
	// Patches counts successfully applied patches since process start.
	Patches uint64 `json:"patches"`
	// Retired counts generations garbage-collected since process start.
	Retired uint64 `json:"retired"`
}

// AddTo accumulates m into dst (for cross-shard aggregation).
func (m MVCCStats) AddTo(dst *MVCCStats) {
	dst.LiveGenerations += m.LiveGenerations
	dst.PinnedGenerations += m.PinnedGenerations
	dst.Patches += m.Patches
	dst.Retired += m.Retired
}

// MVCC reports generation-chain statistics. It sweeps expired leases as
// a side effect, so periodic stats scraping doubles as the lease
// janitor — no dedicated background goroutine needed.
func (s *Store) MVCC() MVCCStats {
	s.mu.RLock()
	type idChain struct {
		id string
		ch *chain
	}
	chains := make([]idChain, 0, len(s.docs))
	for id, ch := range s.docs {
		chains = append(chains, idChain{id, ch})
	}
	s.mu.RUnlock()
	st := MVCCStats{
		Patches: s.patches.Load(),
		Retired: s.retired.Load(),
	}
	now := time.Now().UnixNano()
	for _, ic := range chains {
		ic.ch.mu.Lock()
		retiredGens := ic.ch.sweepLocked(now)
		latest := ic.ch.latest.Load()
		st.LiveGenerations += len(ic.ch.gens)
		for _, e := range ic.ch.gens {
			if e.h != latest {
				st.PinnedGenerations++
			}
		}
		ic.ch.mu.Unlock()
		s.notifyRetired(ic.id, retiredGens)
		st.Retired = s.retired.Load()
	}
	return st
}
