package store_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/qcache"
	"repro/internal/store"
	"repro/internal/tree"
)

// The MVCC mutation oracle: random seeded patch sequences are applied
// through Store.Patch — the incremental path (array splice, index
// splice, BP bit splice) — and after every step the patched
// generation's index, succinct view and query answers are compared
// against a parse-from-scratch rebuild of the same document. A failing
// sequence is shrunk by greedy step removal (delta debugging) before
// being reported, so the log shows a minimal reproducer, not a
// 25-step haystack.

// oracleLabels is the alphabet of generated documents and fragments.
var oracleLabels = []string{"a", "b", "c", "item", "name"}

// oracleQueries covers the answer shapes the engine distinguishes:
// child and descendant steps, chains (hybrid/TDSTA eligible),
// predicates, and absent-label short-circuits.
var oracleQueries = []string{
	"//a",
	"//a/b",
	"//a//c",
	"//item//name",
	"//b[c]",
	"//name",
}

// oracleStrategies is every forceable strategy plus Auto; strategies
// that reject a query must reject it identically on both engines.
var oracleStrategies = []core.Strategy{
	core.Auto, core.Naive, core.Jumping, core.Memoized,
	core.Optimized, core.Hybrid, core.TopDownDet, core.Stepwise,
}

// randDoc builds a random document over oracleLabels.
func randDoc(rng *rand.Rand) *tree.Document {
	b := tree.NewBuilder()
	var gen func(depth int)
	gen = func(depth int) {
		b.Open(oracleLabels[rng.Intn(len(oracleLabels))])
		kids := rng.Intn(4)
		if depth >= 4 {
			kids = 0
		}
		for i := 0; i < kids; i++ {
			if rng.Intn(5) == 0 {
				b.Text(fmt.Sprintf("t%d", rng.Intn(50)))
			} else {
				gen(depth + 1)
			}
		}
		b.Close()
	}
	gen(0)
	return b.MustFinish()
}

// randPatch draws one patch applicable to d.
func randPatch(rng *rand.Rand, d *tree.Document) tree.Patch {
	n := d.NumNodes()
	frag := randDoc(rng)
	for {
		switch rng.Intn(3) {
		case 0: // insert
			parent := tree.NodeID(1 + rng.Intn(n-1))
			if d.Label(parent) == tree.LabelText {
				continue
			}
			before := tree.Nil
			if rng.Intn(2) == 0 && d.FirstChild(parent) != tree.Nil {
				var kids []tree.NodeID
				for c := d.FirstChild(parent); c != tree.Nil; c = d.NextSibling(c) {
					kids = append(kids, c)
				}
				before = kids[rng.Intn(len(kids))]
			}
			return tree.Patch{Op: tree.OpInsert, Node: parent, Before: before, Frag: frag}
		case 1: // delete
			v := tree.NodeID(1 + rng.Intn(n-1))
			if v == d.DocumentElement() {
				continue
			}
			return tree.Patch{Op: tree.OpDelete, Node: v, Before: tree.Nil}
		default: // replace
			v := tree.NodeID(1 + rng.Intn(n-1))
			return tree.Patch{Op: tree.OpReplace, Node: v, Before: tree.Nil, Frag: frag}
		}
	}
}

// evalAll materializes one query under one strategy.
func evalAll(eng *core.Engine, q string, s core.Strategy) ([]tree.NodeID, error) {
	cur, err := eng.EvalCursor(q, s)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []tree.NodeID
	buf := make([]tree.NodeID, 64)
	for {
		n := cur.NextBatch(buf)
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}

// checkHandle compares one patched generation against a from-scratch
// rebuild: index contents, succinct view, and every (query, strategy)
// answer.
func checkHandle(h *store.Handle) error {
	d := h.Doc
	// Jumping index: occurrence lists and binEnd, entry for entry.
	fresh := index.New(d)
	sigma := d.Names().Size()
	for l := 0; l < sigma; l++ {
		got := h.Index.Occurrences(tree.LabelID(l))
		want := fresh.Occurrences(tree.LabelID(l))
		if len(got) != len(want) {
			return fmt.Errorf("index occ[%d]: %d entries, want %d", l, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("index occ[%d][%d] = %d, want %d", l, i, got[i], want[i])
			}
		}
	}
	for v := 0; v < d.NumNodes(); v++ {
		if got, want := h.Index.BinEnd(tree.NodeID(v)), fresh.BinEnd(tree.NodeID(v)); got != want {
			return fmt.Errorf("index binEnd[%d] = %d, want %d", v, got, want)
		}
	}
	// Succinct view: excess sequence (hence every bit) plus navigation.
	gs, ws := h.Succinct(), tree.NewSuccinct(d)
	if gs.NumNodes() != ws.NumNodes() {
		return fmt.Errorf("succinct nodes = %d, want %d", gs.NumNodes(), ws.NumNodes())
	}
	for i := 0; i < 2*ws.NumNodes(); i++ {
		if gs.Excess(i) != ws.Excess(i) {
			return fmt.Errorf("succinct excess(%d) = %d, want %d", i, gs.Excess(i), ws.Excess(i))
		}
	}
	for v := tree.NodeID(0); int(v) < ws.NumNodes(); v++ {
		if gs.OpenPos(v) != ws.OpenPos(v) || gs.Parent(v) != ws.Parent(v) ||
			gs.FirstChild(v) != ws.FirstChild(v) || gs.NextSibling(v) != ws.NextSibling(v) ||
			gs.LastDesc(v) != ws.LastDesc(v) || gs.Depth(v) != ws.Depth(v) {
			return fmt.Errorf("succinct navigation differs at node %d", v)
		}
	}
	// Query answers: the engine over the incrementally maintained index
	// must agree with an engine whose index was built from scratch, for
	// every strategy (Auto's short-circuits read the index, so a wrong
	// occurrence list shows up as a wrong empty answer here).
	engInc := core.NewWithIndex(d, h.Index, qcache.New(qcache.DefaultCapacity), "")
	engFresh := core.New(d)
	for _, q := range oracleQueries {
		for _, s := range oracleStrategies {
			got, gerr := evalAll(engInc, q, s)
			want, werr := evalAll(engFresh, q, s)
			if (gerr == nil) != (werr == nil) {
				return fmt.Errorf("%s %v: incremental err=%v, fresh err=%v", q, s, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			if len(got) != len(want) {
				return fmt.Errorf("%s %v: %d nodes, want %d", q, s, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("%s %v: node[%d] = %d, want %d", q, s, i, got[i], want[i])
				}
			}
		}
	}
	return nil
}

// errInapplicable marks a candidate sequence whose patches no longer
// fit the document they are applied to (a shrink artifact, not a bug).
var errInapplicable = errors.New("sequence inapplicable")

// runSequence replays patches through a fresh store, checking every
// generation. The returned error is errInapplicable when a patch
// cannot apply (only possible for shrunk subsequences), or a wrapped
// invariant failure. With mapped set, the base generation enters the
// store through an XQO2 save + zero-copy mmap open instead of Add, so
// every patched generation is a copy-on-write descendant of arrays
// aliasing a file mapping.
func runSequence(base *tree.Document, patches []tree.Patch, mapped bool) error {
	s := store.New()
	if mapped {
		dir, err := os.MkdirTemp("", "xqo2oracle")
		if err != nil {
			return fmt.Errorf("seed: %w", err)
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "base.xqo2")
		if err := store.SaveXQO2File(path, base); err != nil {
			return fmt.Errorf("seed: %w", err)
		}
		if _, err := s.LoadMapped("d", path); err != nil {
			return fmt.Errorf("seed: %w", err)
		}
	} else if _, err := s.Add("d", base, store.SourceDirect); err != nil {
		return fmt.Errorf("seed: %w", err)
	}
	for i, pt := range patches {
		h, err := s.Patch("d", 0, pt)
		if err != nil {
			return fmt.Errorf("step %d: %w", i, errInapplicable)
		}
		if err := checkHandle(h); err != nil {
			return fmt.Errorf("step %d (%s node %d): %w", i, pt.Op, pt.Node, err)
		}
	}
	return nil
}

// shrink greedily removes steps while the sequence still fails with a
// real invariant error (inapplicable candidates are kept out).
func shrink(base *tree.Document, patches []tree.Patch, mapped bool) []tree.Patch {
	cur := patches
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := append(append([]tree.Patch{}, cur[:i]...), cur[i+1:]...)
			if err := runSequence(base, cand, mapped); err != nil && !errors.Is(err, errInapplicable) {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

func describe(patches []tree.Patch) string {
	var b strings.Builder
	for i, pt := range patches {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s node=%d before=%d", pt.Op, pt.Node, pt.Before)
		if pt.Frag != nil {
			fmt.Fprintf(&b, " frag=%s", pt.Frag.XMLString())
		}
	}
	return b.String()
}

// TestMVCCOracleDifferential is the headline property test: for several
// seeds, a random patch sequence is applied through the store's
// incremental path and every intermediate generation is verified —
// index, succinct view, all-strategy query answers — against a
// from-scratch rebuild.
func TestMVCCOracleDifferential(t *testing.T) {
	steps := 25
	if testing.Short() {
		steps = 8
	}
	// Every seed runs twice: once with a heap-built base generation and
	// once with an mmap-backed one (XQO2 save + zero-copy open), proving
	// the copy-on-write patch path never aliases — or corrupts — the
	// mapped file's arrays.
	for _, mapped := range []bool{false, true} {
		name := "heap-base"
		if mapped {
			name = "mapped-base"
		}
		for seed := int64(1); seed <= 6; seed++ {
			seed, mapped := seed, mapped
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				base := randDoc(rng)
				// Generate the sequence by actually applying each patch (a
				// patch is drawn against the document it will hit).
				doc := base
				var patches []tree.Patch
				for i := 0; i < steps; i++ {
					pt := randPatch(rng, doc)
					next, _, err := doc.Apply(pt)
					if err != nil {
						t.Fatalf("generating step %d: %v", i, err)
					}
					patches = append(patches, pt)
					doc = next
				}
				if err := runSequence(base, patches, mapped); err != nil {
					min := shrink(base, patches, mapped)
					t.Fatalf("seed %d failed: %v\nshrunk to %d step(s): %s\nbase: %s",
						seed, err, len(min), describe(min), base.XMLString())
				}
			})
		}
	}
}

// TestMVCCGenerationChain pins the lifecycle rules: pinned generations
// survive patches, unpinned non-latest generations retire, leases keep
// generations alive until expiry, base-gen conflicts are rejected, and
// evict retires everything (pins included).
func TestMVCCGenerationChain(t *testing.T) {
	s := store.New()
	var retired []store.Gen
	s.OnRetire(func(id string, gen store.Gen) { retired = append(retired, gen) })

	rng := rand.New(rand.NewSource(7))
	base := randDoc(rng)
	h1, err := s.Add("d", base, store.SourceDirect)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Gen == 0 {
		t.Fatal("generation must be non-zero")
	}
	want1, err := evalAll(core.NewWithIndex(h1.Doc, h1.Index, qcache.New(16), ""), "//a", core.Auto)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Pin("d", h1.Gen); err != nil {
		t.Fatal(err)
	}
	h2, err := s.Patch("d", h1.Gen, randPatch(rng, h1.Doc))
	if err != nil {
		t.Fatal(err)
	}
	h3, err := s.Patch("d", 0, randPatch(rng, h2.Doc))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Gen != h1.Gen+1 || h3.Gen != h2.Gen+1 {
		t.Fatalf("generations must be sequential: %d %d %d", h1.Gen, h2.Gen, h3.Gen)
	}

	// Wrong base: optimistic concurrency rejects.
	if _, err := s.Patch("d", h1.Gen, randPatch(rng, h3.Doc)); !errors.Is(err, store.ErrConflict) {
		t.Fatalf("stale base: err = %v, want ErrConflict", err)
	}
	if _, err := s.Patch("nope", 0, randPatch(rng, h3.Doc)); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("missing doc: err = %v, want ErrNotFound", err)
	}

	// h2 had no pins or leases, so publishing h3 retired it; h1 is
	// pinned and must still serve its original tree.
	if _, err := s.GetAsOf("d", h2.Gen); !errors.Is(err, store.ErrGone) {
		t.Fatalf("unpinned middle generation: err = %v, want ErrGone", err)
	}
	hp, err := s.GetAsOf("d", h1.Gen)
	if err != nil {
		t.Fatalf("pinned generation: %v", err)
	}
	got1, err := evalAll(core.NewWithIndex(hp.Doc, hp.Index, qcache.New(16), ""), "//a", core.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got1) != fmt.Sprint(want1) {
		t.Fatalf("pinned generation answered %v, want %v", got1, want1)
	}

	// Unpinning the last reference retires h1.
	s.Unpin("d", h1.Gen)
	if _, err := s.GetAsOf("d", h1.Gen); !errors.Is(err, store.ErrGone) {
		t.Fatalf("after unpin: err = %v, want ErrGone", err)
	}

	// A lease keeps a superseded generation alive until it expires.
	if err := s.Lease("d", h3.Gen, time.Now().Add(25*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	h4, err := s.Patch("d", 0, randPatch(rng, h3.Doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetAsOf("d", h3.Gen); err != nil {
		t.Fatalf("leased generation: %v", err)
	}
	time.Sleep(40 * time.Millisecond)
	s.MVCC() // stats snapshot doubles as the lease janitor
	if _, err := s.GetAsOf("d", h3.Gen); !errors.Is(err, store.ErrGone) {
		t.Fatalf("after lease expiry: err = %v, want ErrGone", err)
	}

	// Redeem releases a lease without waiting for the clock.
	if err := s.Lease("d", h4.Gen, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	h5, err := s.Patch("d", 0, randPatch(rng, h4.Doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetAsOf("d", h4.Gen); err != nil {
		t.Fatalf("hour-leased generation: %v", err)
	}
	s.Redeem("d", h4.Gen)
	if _, err := s.GetAsOf("d", h4.Gen); !errors.Is(err, store.ErrGone) {
		t.Fatalf("after redeem: err = %v, want ErrGone", err)
	}

	// Evict retires everything, pins notwithstanding.
	if err := s.Pin("d", h5.Gen); err != nil {
		t.Fatal(err)
	}
	if !s.Evict("d") {
		t.Fatal("evict reported not-present")
	}
	if _, err := s.GetAsOf("d", h5.Gen); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("after evict: err = %v, want ErrNotFound", err)
	}

	// Every generation ever created retired exactly once.
	seen := map[store.Gen]int{}
	for _, g := range retired {
		seen[g]++
	}
	for _, g := range []store.Gen{h1.Gen, h2.Gen, h3.Gen, h4.Gen, h5.Gen} {
		if seen[g] != 1 {
			t.Errorf("generation %d retired %d times, want 1 (all: %v)", g, seen[g], retired)
		}
	}

	st := s.MVCC()
	if st.Patches != 4 {
		t.Errorf("patches = %d, want 4", st.Patches)
	}
	if st.Retired != 5 {
		t.Errorf("retired = %d, want 5", st.Retired)
	}
}
