package store_test

import (
	"testing"

	"repro/internal/store"
	"repro/internal/tree"
	"repro/internal/xmark"
	"repro/internal/xmlparse"
)

// BenchmarkPatchVsReload is the cost model behind the PATCH endpoint:
// applying one subtree patch — splicing the tree, incrementally
// maintaining the jumping index and the balanced-parentheses structure,
// publishing a new MVCC generation — against the alternative the patch
// path replaces, a full reload (parse from XML + index build + BP
// build) of the same document. CI gates the ratio: patch-apply must
// stay at or below 0.25× full-reload ns/op on the XMark scale-0.05
// document (BENCH_mvcc.json pins the seeded numbers, ~0.01×).
func BenchmarkPatchVsReload(b *testing.B) {
	src := []byte(xmark.Generate(xmark.Config{Scale: 0.05, Seed: 42}).XMLString())
	frag, err := xmlparse.Parse([]byte("<item><mailbox><mail><date/></mail></mailbox></item>"))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("patch-apply", func(b *testing.B) {
		s := store.New()
		h, err := s.LoadXML("d", src)
		if err != nil {
			b.Fatal(err)
		}
		// Build the BP structure up front so every patch pays its
		// incremental maintenance (a handle without one skips the splice).
		_ = h.Succinct()
		// A stable target: the first small non-root subtree. Replacing it
		// with the fragment over and over keeps the document size constant
		// after the first iteration, so every op does the same work.
		target := tree.Nil
		for v := tree.NodeID(2); v <= tree.NodeID(h.Doc.NumNodes()); v++ {
			if h.Doc.SubtreeSize(v) <= 8 {
				target = v
				break
			}
		}
		if target == tree.Nil {
			b.Fatal("no small subtree to replace")
		}
		pt := tree.Patch{Op: tree.OpReplace, Node: target, Before: tree.Nil, Frag: frag}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Patch("d", 0, pt); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("full-reload", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := store.New()
			h, err := s.LoadXML("d", src)
			if err != nil {
				b.Fatal(err)
			}
			// The patch path maintains the BP structure; a fair reload
			// rebuilds it too.
			_ = h.Succinct()
		}
	})
}
