package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tree"
	"repro/internal/xmlparse"
)

func parsed(t *testing.T, xml string) *tree.Document {
	t.Helper()
	d, err := xmlparse.Parse([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestConcurrentLoadSingleFlight is the duplicate-index-build
// regression test: two concurrent loads of the same id must run exactly
// one build (parse + index). The loser waits on the winner's in-flight
// load and returns ErrExists without ever invoking its own build —
// before single-flighting, both sides paid the full build and one
// discarded it on ErrExists.
func TestConcurrentLoadSingleFlight(t *testing.T) {
	s := New()
	doc := parsed(t, "<r><a/><b/></r>")
	var builds atomic.Int32
	winnerBuilding := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var winHandle *Handle
	var winErr error
	go func() {
		defer wg.Done()
		winHandle, winErr = s.load("d", SourceXML, func() (*tree.Document, error) {
			builds.Add(1)
			close(winnerBuilding)
			<-release // hold the load slot until the loser has committed to waiting
			return doc, nil
		})
	}()

	<-winnerBuilding // the winner holds the load slot from here on
	wg.Add(1)
	var loseErr error
	go func() {
		defer wg.Done()
		_, loseErr = s.load("d", SourceXML, func() (*tree.Document, error) {
			builds.Add(1)
			return doc, nil
		})
	}()
	// The loser is now either blocked on the in-flight call or about to
	// be; releasing the winner lets both finish in either interleaving.
	close(release)
	wg.Wait()

	if winErr != nil || winHandle == nil {
		t.Fatalf("winner: %v", winErr)
	}
	if !errors.Is(loseErr, ErrExists) {
		t.Fatalf("loser error = %v, want ErrExists", loseErr)
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("builds = %d, want 1 (loser must not parse or index)", n)
	}
	if h, ok := s.Get("d"); !ok || h != winHandle {
		t.Error("winner's handle not resident")
	}
}

// TestSingleFlightLoserRetriesAfterWinnerFails: when the in-flight load
// fails (e.g. a parse error), a concurrent loader of the same id must
// not be poisoned with ErrExists — it takes over the slot and runs its
// own build.
func TestSingleFlightLoserRetriesAfterWinnerFails(t *testing.T) {
	s := New()
	doc := parsed(t, "<r/>")
	winnerBuilding := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var winErr error
	go func() {
		defer wg.Done()
		_, winErr = s.load("d", SourceXML, func() (*tree.Document, error) {
			close(winnerBuilding)
			<-release
			return nil, fmt.Errorf("synthetic parse failure")
		})
	}()

	<-winnerBuilding
	wg.Add(1)
	var h2 *Handle
	var err2 error
	go func() {
		defer wg.Done()
		h2, err2 = s.load("d", SourceXML, func() (*tree.Document, error) { return doc, nil })
	}()
	close(release)
	wg.Wait()

	if winErr == nil {
		t.Fatal("winner must surface its build error")
	}
	if err2 != nil || h2 == nil {
		t.Fatalf("second loader after failed winner: %v", err2)
	}
	if _, ok := s.Get("d"); !ok {
		t.Error("second loader's document not resident")
	}
}

// TestSingleFlightBuildPanicReleasesSlot: a panicking build must not
// wedge every later load of the id, and waiters must get an error, not
// a hang.
func TestSingleFlightBuildPanicReleasesSlot(t *testing.T) {
	s := New()
	doc := parsed(t, "<r/>")
	func() {
		defer func() { recover() }()
		_, _ = s.load("d", SourceXML, func() (*tree.Document, error) { panic("boom") })
	}()
	h, err := s.load("d", SourceXML, func() (*tree.Document, error) { return doc, nil })
	if err != nil || h == nil {
		t.Fatalf("load after panicked build: %v", err)
	}
}

// TestConcurrentGenerateXMarkSingleFlight hammers the public surface:
// many goroutines generating the same id concurrently must yield
// exactly one resident document and ErrExists everywhere else, with no
// torn state.
func TestConcurrentGenerateXMarkSingleFlight(t *testing.T) {
	s := New()
	const loaders = 8
	var wins, exists atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.GenerateXMark("xm", 0.001, 7)
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrExists):
				exists.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 || exists.Load() != loaders-1 {
		t.Errorf("wins=%d exists=%d, want 1/%d", wins.Load(), exists.Load(), loaders-1)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

// TestSingleFlightEpochFencedByEvict pins the (id, epoch) load-slot
// keying: an Evict racing an in-flight load must fence that load out.
// Two regressions hide here. First, a build that finishes after the
// evict must not publish its pre-evict state — it retries under the
// current epoch instead. Second, a load that starts after the evict
// must not wait on (or be answered by) the fenced slot: with id-only
// keying it would have joined the stale build's slot and returned
// ErrExists against state that was evicted, leaving the stale tree
// resident.
func TestSingleFlightEpochFencedByEvict(t *testing.T) {
	// blockedLoad starts a load of "d" whose first build blocks until
	// release is closed; it reports how many times build ran.
	blockedLoad := func(s *Store, doc *tree.Document, builds *atomic.Int32) (building, release chan struct{}, done func() error) {
		building = make(chan struct{})
		release = make(chan struct{})
		errc := make(chan error, 1)
		go func() {
			_, err := s.load("d", SourceDirect, func() (*tree.Document, error) {
				if builds.Add(1) == 1 {
					close(building)
					<-release
				}
				return doc, nil
			})
			errc <- err
		}()
		return building, release, func() error { return <-errc }
	}

	t.Run("retry-under-new-epoch", func(t *testing.T) {
		s := New()
		doc := parsed(t, "<r><old/></r>")
		var builds atomic.Int32
		building, release, done := blockedLoad(s, doc, &builds)
		<-building
		// The evict lands mid-build: nothing resident yet, but the epoch
		// fence must still advance so the in-flight build cannot publish
		// under the retired epoch.
		s.Evict("d")
		close(release)
		// The fenced build's publish is discarded (errSuperseded); with
		// nothing resident, the loader retries under the new epoch and
		// the second build publishes.
		if err := done(); err != nil {
			t.Fatalf("fenced loader: %v", err)
		}
		if n := builds.Load(); n != 2 {
			t.Fatalf("loader built %d times, want 2 (fenced original + post-evict retry)", n)
		}
		if _, ok := s.Get("d"); !ok {
			t.Fatal("document missing after retried load")
		}
	})

	t.Run("post-evict-loader-wins", func(t *testing.T) {
		s := New()
		stale := parsed(t, "<r><old/></r>")
		fresh := parsed(t, "<r><new/></r>")
		var builds atomic.Int32
		building, release, done := blockedLoad(s, stale, &builds)
		<-building
		s.Evict("d")
		// A post-evict loader must get its own (id, epoch=1) slot — not
		// join the fenced build — and win immediately. With id-only slot
		// keying this load would have blocked on the stale build and the
		// pre-evict tree would end up resident.
		if _, err := s.load("d", SourceDirect, func() (*tree.Document, error) { return fresh, nil }); err != nil {
			t.Fatalf("post-evict load: %v", err)
		}
		close(release)
		// The fenced loader's publish is discarded; its retry finds the
		// fresh document resident and reports ErrExists without a second
		// build.
		if err := done(); !errors.Is(err, ErrExists) {
			t.Fatalf("fenced loader: err = %v, want ErrExists", err)
		}
		h, ok := s.Get("d")
		if !ok {
			t.Fatal("document missing")
		}
		if got := h.Doc.XMLString(); got != "<r><new></new></r>" {
			t.Fatalf("resident document = %q: the fenced pre-evict build leaked through", got)
		}
		if n := builds.Load(); n != 1 {
			t.Fatalf("fenced loader built %d times, want 1 (retry short-circuits on ErrExists)", n)
		}
	})
}
