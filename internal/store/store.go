// Package store is the document registry of the multi-document query
// service: a concurrency-safe map from document id to a *generation
// chain* — the MVCC history of one logical document. Documents arrive
// from three sources — XML parsing, the binary tree serialization
// (tree.WriteTo/tree.ReadDocument), or XMark generation — and the store
// builds the index.Index exactly once per generation: at load time for
// generation one, and incrementally (array splice + index splice, see
// Patch in mvcc.go) for every patched generation after it. Each
// generation is immutable; readers pin the one they started on and are
// never invalidated by later patches.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/mmapx"
	"repro/internal/tree"
	"repro/internal/xmark"
	"repro/internal/xmlparse"
)

// ErrExists is wrapped by Add when the document id is already taken;
// callers branch on it with errors.Is (the HTTP layer maps it to 409).
var ErrExists = errors.New("already loaded")

// ErrNotFound is wrapped by generation-chain operations (Patch,
// GetAsOf, Lease) against ids not resident in the store; the HTTP
// layer maps it to 404.
var ErrNotFound = errors.New("no such document")

// errSuperseded is the internal signal that a build finished under an
// epoch an Evict has since retired: the load loop discards the build
// and retries under the current epoch instead of publishing stale state.
var errSuperseded = errors.New("load superseded by evict")

// Source identifies how a document entered the store.
type Source string

// Document sources.
const (
	SourceXML    Source = "xml"
	SourceBinary Source = "binary"
	SourceXMark  Source = "xmark"
	SourceDirect Source = "direct"
	// SourcePatch marks generations derived by an incremental subtree
	// patch rather than a from-source load.
	SourcePatch Source = "patch"
	// SourceMapped marks documents opened zero-copy from an mmap'd XQO2
	// file (see xqo2.go); their arrays alias file pages, not the heap.
	SourceMapped Source = "mapped"
)

// Stats describes one resident document generation.
type Stats struct {
	ID string `json:"id"`
	// Gen is the generation this snapshot describes. Generations are
	// per-document, strictly increasing, and entropy-seeded per load so
	// a generation-pinned token can never alias a different incarnation
	// of the same id (including across daemon restarts).
	Gen Gen `json:"gen"`
	// Nodes counts all tree nodes including the synthetic root.
	Nodes int `json:"nodes"`
	// Labels is the alphabet size |Σ| (distinct element names plus the
	// two reserved labels).
	Labels int `json:"labels"`
	// MemBytes estimates the resident size of the document plus its
	// index (flat arrays, occurrence lists, text and label tables). For
	// mapped documents this working set is file-backed, not heap.
	MemBytes int64 `json:"mem_bytes"`
	// MappedBytes is the size of the XQO2 mapping backing this document
	// (zero for heap-backed documents and patched generations, which
	// copy-on-write into the heap).
	MappedBytes int64     `json:"mapped_bytes,omitempty"`
	Source      Source    `json:"source"`
	LoadedAt    time.Time `json:"loaded_at"`
	// LiveGens counts this document's generations still readable
	// (latest plus everything pinned by cursors or leases); filled by
	// List, not meaningful on a Handle's own Stats.
	LiveGens int `json:"live_gens,omitempty"`
}

// succCell lazily caches a generation's balanced-parentheses view. It
// sits behind a pointer so Handle stays trivially copyable.
type succCell struct {
	p atomic.Pointer[tree.Succinct]
}

// Handle is an immutable view of one generation of one resident
// document. The document and index never change after the generation is
// built, so a Handle stays valid after the generation is retired or the
// entry evicted from the store.
type Handle struct {
	ID string
	// Gen is this generation's id within the document's chain.
	Gen   Gen
	Doc   *tree.Document
	Index *index.Index
	Stats Stats
	succ  *succCell
	// mapping is the XQO2 mapping the generation aliases; nil for
	// heap-backed documents. The store uses it for resident-budget
	// release; the Document's own reference keeps it alive.
	mapping *mmapx.Mapping
}

// Succinct returns the generation's balanced-parentheses view, building
// it on first use. Patched generations whose parent already built one
// inherit a bit-spliced copy instead (see Patch), so the build cost is
// paid at most once per load chain.
func (h *Handle) Succinct() *tree.Succinct {
	if h.succ == nil {
		return tree.NewSuccinct(h.Doc)
	}
	if s := h.succ.p.Load(); s != nil {
		return s
	}
	s := tree.NewSuccinct(h.Doc)
	// A racing builder produces an identical view; either may win.
	h.succ.p.Store(s)
	return s
}

// Store is a concurrency-safe registry of loaded documents.
type Store struct {
	mu   sync.RWMutex
	docs map[string]*chain
	// epochs fences the single-flight load slots against eviction: the
	// per-id epoch bumps on every Evict, load slots are keyed (id,
	// epoch), and a build may only publish into the epoch it started
	// under. Keying on the id alone let a patch/evict racing a reload
	// hand a waiting loser a stale build.
	epochs  map[string]uint64
	loading map[loadKey]*loadCall
	// retireFn is invoked (outside all store locks) for every retired
	// (id, generation); the serving layer uses it to drop the matching
	// engine and compiled-query cache entries.
	retireFn func(id string, gen Gen)
	patches  atomic.Uint64
	retired  atomic.Uint64
	// Mapped-document paging state (see xqo2.go): mapped tracks each
	// resident mapping (guarded by mu); the counters keep the Get fast
	// path free of locks when no mappings exist.
	mapped       map[string]*mappedEntry
	mappedCount  atomic.Int32
	chargedBytes atomic.Int64
	mapBudget    atomic.Int64
	mapFaults    atomic.Uint64
	// verifyResident selects OpenXQO2Verified for LoadMapped (full
	// element-wise validation for files from outside this process).
	verifyResident atomic.Bool
}

// loadKey identifies one single-flight load slot: the document id plus
// the eviction epoch the load started under.
type loadKey struct {
	id    string
	epoch uint64
}

// loadCall is one in-flight load other loaders of the same id wait on:
// parse + index build are the expensive parts of a load, and two
// concurrent loads of the same id must not both pay them when only one
// can win the slot. The loser observes the winner's outcome through err.
type loadCall struct {
	done chan struct{}
	err  error
}

// New returns an empty store.
func New() *Store {
	return &Store{
		docs:    make(map[string]*chain),
		epochs:  make(map[string]uint64),
		loading: make(map[loadKey]*loadCall),
		mapped:  make(map[string]*mappedEntry),
	}
}

// OnRetire registers the callback invoked for every retired
// (document, generation) — after the last pin and lease of a non-latest
// generation drain, or for all generations on evict. The callback runs
// outside store locks. Register before serving traffic; later retires
// use the latest registration.
func (s *Store) OnRetire(fn func(id string, gen Gen)) {
	s.mu.Lock()
	s.retireFn = fn
	s.mu.Unlock()
}

// load is the single-flight core of every registration path. build runs
// outside the lock (concurrent loads of distinct ids overlap), but at
// most one build per (id, epoch) is ever in flight: a concurrent load
// of the same id waits, and when the winner succeeds the loser returns
// ErrExists without having parsed or indexed anything. If the winner
// fails — or its epoch was retired by an Evict mid-build — the waiter
// (or the winner itself) retries for the current epoch's load slot.
func (s *Store) load(id string, src Source, build func() (*tree.Document, error)) (*Handle, error) {
	return s.loadHandle(id, func() (*Handle, error) {
		d, err := build()
		if err != nil {
			return nil, err
		}
		return buildHandle(id, d, src), nil
	})
}

// loadHandle is load for builders that produce a complete Handle — the
// mapped-open path arrives with its index and succinct view already
// aliased from the file, so the document-only builder shape doesn't fit.
func (s *Store) loadHandle(id string, build func() (*Handle, error)) (*Handle, error) {
	if id == "" {
		return nil, fmt.Errorf("store: empty document id")
	}
	// NUL is the delimiter of the service's compiled-query cache keys;
	// an id containing it would alias another document's namespace.
	if strings.ContainsRune(id, 0) {
		return nil, fmt.Errorf("store: document id must not contain NUL")
	}
	for {
		s.mu.Lock()
		if _, exists := s.docs[id]; exists {
			s.mu.Unlock()
			return nil, fmt.Errorf("store: document %q %w", id, ErrExists)
		}
		ep := s.epochs[id]
		key := loadKey{id, ep}
		if c, inflight := s.loading[key]; inflight {
			s.mu.Unlock()
			<-c.done
			if c.err == nil {
				return nil, fmt.Errorf("store: document %q %w", id, ErrExists)
			}
			// The winner failed (e.g. a parse error) or was superseded
			// by an evict; this source may still be loadable — retry
			// for the current load slot.
			continue
		}
		c := &loadCall{done: make(chan struct{})}
		s.loading[key] = c
		s.mu.Unlock()

		h, err := s.runBuild(id, build, c, ep)
		if errors.Is(err, errSuperseded) {
			continue
		}
		return h, err
	}
}

// runBuild executes one build while holding the load slot for (id,
// epoch), publishing the generation chain and waking waiters. A
// panicking build (or parser) must still release the slot and wake
// waiters with an error, or every later load of the id would wedge; the
// panic is re-raised.
func (s *Store) runBuild(id string, build func() (*Handle, error), c *loadCall, ep uint64) (h *Handle, err error) {
	finished := false
	defer func() {
		if !finished {
			err = fmt.Errorf("store: loading %q panicked", id)
		}
		s.mu.Lock()
		delete(s.loading, loadKey{id, ep})
		if err == nil {
			if s.epochs[id] != ep {
				// An Evict landed while this build ran: the slot's epoch
				// is dead, and publishing would clobber newer state with
				// a stale build. Discard; the load loop retries.
				h, err = nil, errSuperseded
			} else {
				s.docs[id] = newChain(h)
				if h.mapping != nil {
					// Register the mapping for budget accounting in the
					// same critical section as the publish, so an Evict
					// can never observe the chain without the mapping.
					s.registerMappedLocked(id, h.mapping)
				}
			}
		}
		s.mu.Unlock()
		c.err = err
		close(c.done)
	}()
	h, err = build()
	finished = true
	return h, err
}

// buildHandle constructs the immutable handle, building the index —
// the expensive step the single-flight protocol exists to deduplicate.
// The generation is stamped at publish time (newChain).
func buildHandle(id string, d *tree.Document, src Source) *Handle {
	h := &Handle{ID: id, Doc: d, Index: index.New(d), succ: &succCell{}}
	h.Stats = Stats{
		ID:       id,
		Nodes:    d.NumNodes(),
		Labels:   d.Names().Size(),
		MemBytes: estimateBytes(d),
		Source:   src,
		LoadedAt: time.Now(),
	}
	return h
}

// Add registers an already-built document under id, building its index.
// It fails if the id is taken (evict first to replace).
func (s *Store) Add(id string, d *tree.Document, src Source) (*Handle, error) {
	return s.load(id, src, func() (*tree.Document, error) { return d, nil })
}

// LoadXML parses XML bytes and registers the document. Parsing is
// single-flighted per id: a concurrent load of an id already being
// loaded waits instead of parsing and indexing a document it can only
// lose to ErrExists.
func (s *Store) LoadXML(id string, src []byte) (*Handle, error) {
	return s.load(id, SourceXML, func() (*tree.Document, error) {
		d, err := xmlparse.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("store: parsing %q: %w", id, err)
		}
		return d, nil
	})
}

// LoadXMLFile reads and parses an XML file and registers the document.
func (s *Store) LoadXMLFile(id, path string) (*Handle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return s.LoadXML(id, data)
}

// LoadBinary reads a document in the tree.WriteTo format and registers
// it; for large XMark trees this skips XML parsing entirely.
func (s *Store) LoadBinary(id string, r io.Reader) (*Handle, error) {
	return s.load(id, SourceBinary, func() (*tree.Document, error) {
		d, err := tree.ReadDocument(r)
		if err != nil {
			return nil, fmt.Errorf("store: reading %q: %w", id, err)
		}
		return d, nil
	})
}

// LoadBinaryFile reads a serialized document file and registers it.
func (s *Store) LoadBinaryFile(id, path string) (*Handle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return s.LoadBinary(id, f)
}

// GenerateXMark generates a deterministic XMark document at the given
// scale and registers it.
func (s *Store) GenerateXMark(id string, scale float64, seed int64) (*Handle, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("store: xmark scale must be > 0, got %v", scale)
	}
	return s.load(id, SourceXMark, func() (*tree.Document, error) {
		return xmark.Generate(xmark.Config{Scale: scale, Seed: seed}), nil
	})
}

// chainFor returns the generation chain for id, or nil.
func (s *Store) chainFor(id string) *chain {
	s.mu.RLock()
	ch := s.docs[id]
	s.mu.RUnlock()
	return ch
}

// Get returns the latest-generation handle for id.
func (s *Store) Get(id string) (*Handle, bool) {
	ch := s.chainFor(id)
	if ch == nil {
		return nil, false
	}
	h := ch.latest.Load()
	if h != nil {
		s.touchMapped(id)
	}
	return h, h != nil
}

// Evict removes id from the store, retiring every generation of its
// chain (pins and leases included — eviction is administrative and
// overrides them: later resumes answer 410). Handles already obtained
// stay usable; the memory is reclaimed once they are dropped. The
// id's eviction epoch bumps, so an in-flight load that started before
// the evict can no longer publish.
func (s *Store) Evict(id string) bool {
	s.mu.Lock()
	ch, ok := s.docs[id]
	delete(s.docs, id)
	s.epochs[id]++
	me := s.mapped[id]
	if me != nil {
		s.dropMappedLocked(id, me)
	}
	s.mu.Unlock()
	if me != nil {
		// Outside the lock: tell the OS the evicted document's pages are
		// cold. The mapping stays valid for handles still in flight; it
		// is unmapped by its finalizer once the last one drops.
		_ = me.m.Release()
	}
	if !ok {
		return false
	}
	ch.mu.Lock()
	ch.evicted = true
	ch.latest.Store(nil)
	gens := make([]Gen, 0, len(ch.gens))
	for g := range ch.gens {
		gens = append(gens, g)
		delete(ch.gens, g)
	}
	ch.mu.Unlock()
	s.notifyRetired(id, gens)
	return true
}

// List returns a snapshot of latest-generation stats sorted by id, each
// annotated with its chain's live generation count.
func (s *Store) List() []Stats {
	s.mu.RLock()
	chains := make([]*chain, 0, len(s.docs))
	for _, ch := range s.docs {
		chains = append(chains, ch)
	}
	s.mu.RUnlock()
	out := make([]Stats, 0, len(chains))
	for _, ch := range chains {
		h := ch.latest.Load()
		if h == nil {
			continue
		}
		st := h.Stats
		st.Gen = h.Gen
		ch.mu.Lock()
		st.LiveGens = len(ch.gens)
		ch.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of resident documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// estimateBytes approximates the resident size of a document and its
// index: six per-node int32 arrays in the document (labels, parent,
// firstChild, nextSibling, lastDesc, depth) plus the text-offset array,
// two more per-node arrays in the index (occurrence lists partition the
// nodes; binEnd), the text blob, and the label table.
func estimateBytes(d *tree.Document) int64 {
	n := int64(d.NumNodes())
	b := n*(7+2)*4 + int64(d.TextBytes())
	for _, name := range d.Names().Names() {
		b += int64(len(name)) + 16
	}
	return b
}
