// Package store is the document registry of the multi-document query
// service: a concurrency-safe map from document id to an immutable
// loaded document plus its jumping index. Documents arrive from three
// sources — XML parsing, the binary tree serialization
// (tree.WriteTo/tree.ReadDocument), or XMark generation — and the store
// builds the index.Index exactly once per document, at load time, so
// every engine and every query over that document shares it.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/tree"
	"repro/internal/xmark"
	"repro/internal/xmlparse"
)

// ErrExists is wrapped by Add when the document id is already taken;
// callers branch on it with errors.Is (the HTTP layer maps it to 409).
var ErrExists = errors.New("already loaded")

// Source identifies how a document entered the store.
type Source string

// Document sources.
const (
	SourceXML    Source = "xml"
	SourceBinary Source = "binary"
	SourceXMark  Source = "xmark"
	SourceDirect Source = "direct"
)

// Stats describes one resident document.
type Stats struct {
	ID string `json:"id"`
	// Nodes counts all tree nodes including the synthetic root.
	Nodes int `json:"nodes"`
	// Labels is the alphabet size |Σ| (distinct element names plus the
	// two reserved labels).
	Labels int `json:"labels"`
	// MemBytes estimates the resident size of the document plus its
	// index (flat arrays, occurrence lists, text and label tables).
	MemBytes int64     `json:"mem_bytes"`
	Source   Source    `json:"source"`
	LoadedAt time.Time `json:"loaded_at"`
}

// Handle is an immutable view of one resident document. The document
// and index never change after load, so a Handle stays valid after the
// entry is evicted from the store.
type Handle struct {
	ID    string
	Doc   *tree.Document
	Index *index.Index
	Stats Stats
}

// Store is a concurrency-safe registry of loaded documents.
type Store struct {
	mu      sync.RWMutex
	docs    map[string]*Handle
	loading map[string]*loadCall
}

// loadCall is one in-flight load other loaders of the same id wait on:
// parse + index build are the expensive parts of a load, and two
// concurrent loads of the same id must not both pay them when only one
// can win the slot. The loser observes the winner's outcome through err.
type loadCall struct {
	done chan struct{}
	err  error
}

// New returns an empty store.
func New() *Store {
	return &Store{
		docs:    make(map[string]*Handle),
		loading: make(map[string]*loadCall),
	}
}

// load is the single-flight core of every registration path. build runs
// outside the lock (concurrent loads of distinct ids overlap), but at
// most one build per id is ever in flight: a concurrent load of the
// same id waits, and when the winner succeeds the loser returns
// ErrExists without having parsed or indexed anything. If the winner
// fails, one waiter takes over the load slot and runs its own build.
func (s *Store) load(id string, src Source, build func() (*tree.Document, error)) (*Handle, error) {
	if id == "" {
		return nil, fmt.Errorf("store: empty document id")
	}
	// NUL is the delimiter of the service's compiled-query cache keys;
	// an id containing it would alias another document's namespace.
	if strings.ContainsRune(id, 0) {
		return nil, fmt.Errorf("store: document id must not contain NUL")
	}
	for {
		s.mu.Lock()
		if _, exists := s.docs[id]; exists {
			s.mu.Unlock()
			return nil, fmt.Errorf("store: document %q %w", id, ErrExists)
		}
		if c, inflight := s.loading[id]; inflight {
			s.mu.Unlock()
			<-c.done
			if c.err == nil {
				return nil, fmt.Errorf("store: document %q %w", id, ErrExists)
			}
			// The winner failed (e.g. a parse error); this source may
			// still be loadable — retry for the load slot.
			continue
		}
		c := &loadCall{done: make(chan struct{})}
		s.loading[id] = c
		s.mu.Unlock()

		h, err := s.runBuild(id, src, build, c)
		if err != nil {
			return nil, err
		}
		return h, nil
	}
}

// runBuild executes one build while holding the load slot for id,
// publishing the handle and waking waiters. A panicking build (or
// parser) must still release the slot and wake waiters with an error,
// or every later load of the id would wedge; the panic is re-raised.
func (s *Store) runBuild(id string, src Source, build func() (*tree.Document, error), c *loadCall) (h *Handle, err error) {
	finished := false
	defer func() {
		if !finished {
			err = fmt.Errorf("store: loading %q panicked", id)
		}
		s.mu.Lock()
		delete(s.loading, id)
		if err == nil {
			s.docs[id] = h
		}
		s.mu.Unlock()
		c.err = err
		close(c.done)
	}()
	d, err := build()
	if err == nil {
		h = buildHandle(id, d, src)
	}
	finished = true
	return h, err
}

// buildHandle constructs the immutable handle, building the index —
// the expensive step the single-flight protocol exists to deduplicate.
func buildHandle(id string, d *tree.Document, src Source) *Handle {
	h := &Handle{ID: id, Doc: d, Index: index.New(d)}
	h.Stats = Stats{
		ID:       id,
		Nodes:    d.NumNodes(),
		Labels:   d.Names().Size(),
		MemBytes: estimateBytes(d),
		Source:   src,
		LoadedAt: time.Now(),
	}
	return h
}

// Add registers an already-built document under id, building its index.
// It fails if the id is taken (evict first to replace).
func (s *Store) Add(id string, d *tree.Document, src Source) (*Handle, error) {
	return s.load(id, src, func() (*tree.Document, error) { return d, nil })
}

// LoadXML parses XML bytes and registers the document. Parsing is
// single-flighted per id: a concurrent load of an id already being
// loaded waits instead of parsing and indexing a document it can only
// lose to ErrExists.
func (s *Store) LoadXML(id string, src []byte) (*Handle, error) {
	return s.load(id, SourceXML, func() (*tree.Document, error) {
		d, err := xmlparse.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("store: parsing %q: %w", id, err)
		}
		return d, nil
	})
}

// LoadXMLFile reads and parses an XML file and registers the document.
func (s *Store) LoadXMLFile(id, path string) (*Handle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return s.LoadXML(id, data)
}

// LoadBinary reads a document in the tree.WriteTo format and registers
// it; for large XMark trees this skips XML parsing entirely.
func (s *Store) LoadBinary(id string, r io.Reader) (*Handle, error) {
	return s.load(id, SourceBinary, func() (*tree.Document, error) {
		d, err := tree.ReadDocument(r)
		if err != nil {
			return nil, fmt.Errorf("store: reading %q: %w", id, err)
		}
		return d, nil
	})
}

// LoadBinaryFile reads a serialized document file and registers it.
func (s *Store) LoadBinaryFile(id, path string) (*Handle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return s.LoadBinary(id, f)
}

// GenerateXMark generates a deterministic XMark document at the given
// scale and registers it.
func (s *Store) GenerateXMark(id string, scale float64, seed int64) (*Handle, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("store: xmark scale must be > 0, got %v", scale)
	}
	return s.load(id, SourceXMark, func() (*tree.Document, error) {
		return xmark.Generate(xmark.Config{Scale: scale, Seed: seed}), nil
	})
}

// Get returns the handle for id.
func (s *Store) Get(id string) (*Handle, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.docs[id]
	return h, ok
}

// Evict removes id from the store, reporting whether it was present.
// Handles already obtained stay usable; the memory is reclaimed once
// they are dropped.
func (s *Store) Evict(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.docs[id]
	delete(s.docs, id)
	return ok
}

// List returns a snapshot of per-document stats sorted by id.
func (s *Store) List() []Stats {
	s.mu.RLock()
	out := make([]Stats, 0, len(s.docs))
	for _, h := range s.docs {
		out = append(out, h.Stats)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of resident documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// estimateBytes approximates the resident size of a document and its
// index: six per-node int32 arrays in the document (labels, parent,
// firstChild, nextSibling, lastDesc, depth), two in the index
// (occurrence lists partition the nodes; binEnd), text contents, and
// the label table.
func estimateBytes(d *tree.Document) int64 {
	n := int64(d.NumNodes())
	b := n * (6 + 2) * 4
	for v := tree.NodeID(0); int(v) < d.NumNodes(); v++ {
		if t := d.Text(v); t != "" {
			b += int64(len(t)) + 16 // string header + map entry overhead
		}
	}
	for _, name := range d.Names().Names() {
		b += int64(len(name)) + 16
	}
	return b
}
